file(REMOVE_RECURSE
  "CMakeFiles/depprof.dir/depprof_cli.cpp.o"
  "CMakeFiles/depprof.dir/depprof_cli.cpp.o.d"
  "depprof"
  "depprof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
