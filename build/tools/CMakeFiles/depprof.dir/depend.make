# Empty dependencies file for depprof.
# This may be replaced when dependencies are built.
