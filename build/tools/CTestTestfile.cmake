# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/depprof" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plugins "/root/repo/build/tools/depprof" "plugins")
set_tests_properties(cli_plugins PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_text "/root/repo/build/tools/depprof" "run" "ep" "--stats")
set_tests_properties(cli_run_text PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_csv "/root/repo/build/tools/depprof" "run" "ep" "--format" "csv")
set_tests_properties(cli_run_csv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_dot "/root/repo/build/tools/depprof" "run" "ep" "--format" "dot")
set_tests_properties(cli_run_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_plugins "/root/repo/build/tools/depprof" "run" "cg" "--plugin" "all" "--storage" "perfect")
set_tests_properties(cli_run_plugins PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_parallel "/root/repo/build/tools/depprof" "run" "is" "--parallel" "--workers" "4" "--queue" "mutex")
set_tests_properties(cli_run_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_mt "/root/repo/build/tools/depprof" "run" "water-spatial" "--mt-threads" "4" "--storage" "perfect" "--plugin" "comm-matrix")
set_tests_properties(cli_run_mt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/depprof" "frobnicate")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
