file(REMOVE_RECURSE
  "CMakeFiles/mt_test.dir/mt_test.cpp.o"
  "CMakeFiles/mt_test.dir/mt_test.cpp.o.d"
  "mt_test"
  "mt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
