file(REMOVE_RECURSE
  "CMakeFiles/formatter_test.dir/formatter_test.cpp.o"
  "CMakeFiles/formatter_test.dir/formatter_test.cpp.o.d"
  "formatter_test"
  "formatter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
