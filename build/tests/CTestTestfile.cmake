# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;22;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sig_test "/root/repo/build/tests/sig_test")
set_tests_properties(sig_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;23;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(queue_test "/root/repo/build/tests/queue_test")
set_tests_properties(queue_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;24;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;25;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(detector_test "/root/repo/build/tests/detector_test")
set_tests_properties(detector_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;26;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(profiler_test "/root/repo/build/tests/profiler_test")
set_tests_properties(profiler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;27;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(instrument_test "/root/repo/build/tests/instrument_test")
set_tests_properties(instrument_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;28;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(formatter_test "/root/repo/build/tests/formatter_test")
set_tests_properties(formatter_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;29;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;30;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mt_test "/root/repo/build/tests/mt_test")
set_tests_properties(mt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;31;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;32;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harness_test "/root/repo/build/tests/harness_test")
set_tests_properties(harness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;33;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(framework_test "/root/repo/build/tests/framework_test")
set_tests_properties(framework_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;34;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(oracle_test "/root/repo/build/tests/oracle_test")
set_tests_properties(oracle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;19;add_test;/root/repo/tests/CMakeLists.txt;35;depprof_test;/root/repo/tests/CMakeLists.txt;0;")
