file(REMOVE_RECURSE
  "CMakeFiles/ablation_sighash.dir/ablation_sighash.cpp.o"
  "CMakeFiles/ablation_sighash.dir/ablation_sighash.cpp.o.d"
  "ablation_sighash"
  "ablation_sighash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sighash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
