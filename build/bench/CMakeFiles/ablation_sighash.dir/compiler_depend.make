# Empty compiler generated dependencies file for ablation_sighash.
# This may be replaced when dependencies are built.
