# Empty compiler generated dependencies file for fig6_slowdown_par.
# This may be replaced when dependencies are built.
