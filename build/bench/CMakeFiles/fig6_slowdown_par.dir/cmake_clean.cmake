file(REMOVE_RECURSE
  "CMakeFiles/fig6_slowdown_par.dir/fig6_slowdown_par.cpp.o"
  "CMakeFiles/fig6_slowdown_par.dir/fig6_slowdown_par.cpp.o.d"
  "fig6_slowdown_par"
  "fig6_slowdown_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_slowdown_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
