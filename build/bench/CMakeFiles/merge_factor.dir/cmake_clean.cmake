file(REMOVE_RECURSE
  "CMakeFiles/merge_factor.dir/merge_factor.cpp.o"
  "CMakeFiles/merge_factor.dir/merge_factor.cpp.o.d"
  "merge_factor"
  "merge_factor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
