# Empty dependencies file for merge_factor.
# This may be replaced when dependencies are built.
