file(REMOVE_RECURSE
  "CMakeFiles/fig7_memory_seq.dir/fig7_memory_seq.cpp.o"
  "CMakeFiles/fig7_memory_seq.dir/fig7_memory_seq.cpp.o.d"
  "fig7_memory_seq"
  "fig7_memory_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memory_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
