# Empty compiler generated dependencies file for fig7_memory_seq.
# This may be replaced when dependencies are built.
