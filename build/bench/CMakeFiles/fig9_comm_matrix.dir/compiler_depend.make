# Empty compiler generated dependencies file for fig9_comm_matrix.
# This may be replaced when dependencies are built.
