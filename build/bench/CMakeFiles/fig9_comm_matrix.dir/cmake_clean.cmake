file(REMOVE_RECURSE
  "CMakeFiles/fig9_comm_matrix.dir/fig9_comm_matrix.cpp.o"
  "CMakeFiles/fig9_comm_matrix.dir/fig9_comm_matrix.cpp.o.d"
  "fig9_comm_matrix"
  "fig9_comm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
