file(REMOVE_RECURSE
  "CMakeFiles/fig8_memory_par.dir/fig8_memory_par.cpp.o"
  "CMakeFiles/fig8_memory_par.dir/fig8_memory_par.cpp.o.d"
  "fig8_memory_par"
  "fig8_memory_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_memory_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
