# Empty compiler generated dependencies file for table1_fpr_fnr.
# This may be replaced when dependencies are built.
