file(REMOVE_RECURSE
  "CMakeFiles/table1_fpr_fnr.dir/table1_fpr_fnr.cpp.o"
  "CMakeFiles/table1_fpr_fnr.dir/table1_fpr_fnr.cpp.o.d"
  "table1_fpr_fnr"
  "table1_fpr_fnr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fpr_fnr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
