# Empty dependencies file for harness_smoke.
# This may be replaced when dependencies are built.
