file(REMOVE_RECURSE
  "CMakeFiles/harness_smoke.dir/harness_smoke.cpp.o"
  "CMakeFiles/harness_smoke.dir/harness_smoke.cpp.o.d"
  "harness_smoke"
  "harness_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
