file(REMOVE_RECURSE
  "CMakeFiles/table2_loops.dir/table2_loops.cpp.o"
  "CMakeFiles/table2_loops.dir/table2_loops.cpp.o.d"
  "table2_loops"
  "table2_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
