file(REMOVE_RECURSE
  "CMakeFiles/fig5_slowdown_seq.dir/fig5_slowdown_seq.cpp.o"
  "CMakeFiles/fig5_slowdown_seq.dir/fig5_slowdown_seq.cpp.o.d"
  "fig5_slowdown_seq"
  "fig5_slowdown_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_slowdown_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
