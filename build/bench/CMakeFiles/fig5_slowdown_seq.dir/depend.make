# Empty dependencies file for fig5_slowdown_seq.
# This may be replaced when dependencies are built.
