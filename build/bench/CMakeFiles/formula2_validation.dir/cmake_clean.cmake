file(REMOVE_RECURSE
  "CMakeFiles/formula2_validation.dir/formula2_validation.cpp.o"
  "CMakeFiles/formula2_validation.dir/formula2_validation.cpp.o.d"
  "formula2_validation"
  "formula2_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formula2_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
