# Empty dependencies file for formula2_validation.
# This may be replaced when dependencies are built.
