file(REMOVE_RECURSE
  "libdepprof_analysis.a"
)
