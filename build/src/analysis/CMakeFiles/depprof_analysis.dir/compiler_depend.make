# Empty compiler generated dependencies file for depprof_analysis.
# This may be replaced when dependencies are built.
