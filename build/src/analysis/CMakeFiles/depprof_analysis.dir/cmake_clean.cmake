file(REMOVE_RECURSE
  "CMakeFiles/depprof_analysis.dir/comm_matrix.cpp.o"
  "CMakeFiles/depprof_analysis.dir/comm_matrix.cpp.o.d"
  "CMakeFiles/depprof_analysis.dir/loop_parallelism.cpp.o"
  "CMakeFiles/depprof_analysis.dir/loop_parallelism.cpp.o.d"
  "libdepprof_analysis.a"
  "libdepprof_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
