# Empty dependencies file for depprof_mt.
# This may be replaced when dependencies are built.
