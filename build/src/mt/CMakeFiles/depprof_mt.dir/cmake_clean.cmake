file(REMOVE_RECURSE
  "CMakeFiles/depprof_mt.dir/race_report.cpp.o"
  "CMakeFiles/depprof_mt.dir/race_report.cpp.o.d"
  "libdepprof_mt.a"
  "libdepprof_mt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_mt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
