file(REMOVE_RECURSE
  "libdepprof_mt.a"
)
