file(REMOVE_RECURSE
  "libdepprof_framework.a"
)
