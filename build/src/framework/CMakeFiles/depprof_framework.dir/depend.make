# Empty dependencies file for depprof_framework.
# This may be replaced when dependencies are built.
