file(REMOVE_RECURSE
  "CMakeFiles/depprof_framework.dir/dep_graph.cpp.o"
  "CMakeFiles/depprof_framework.dir/dep_graph.cpp.o.d"
  "CMakeFiles/depprof_framework.dir/loop_table.cpp.o"
  "CMakeFiles/depprof_framework.dir/loop_table.cpp.o.d"
  "CMakeFiles/depprof_framework.dir/plugin.cpp.o"
  "CMakeFiles/depprof_framework.dir/plugin.cpp.o.d"
  "CMakeFiles/depprof_framework.dir/program_model.cpp.o"
  "CMakeFiles/depprof_framework.dir/program_model.cpp.o.d"
  "libdepprof_framework.a"
  "libdepprof_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
