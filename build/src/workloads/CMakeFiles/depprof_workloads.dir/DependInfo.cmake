
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/nas/bt.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/bt.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/bt.cpp.o.d"
  "/root/repo/src/workloads/nas/cg.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/cg.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/cg.cpp.o.d"
  "/root/repo/src/workloads/nas/ep.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/ep.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/ep.cpp.o.d"
  "/root/repo/src/workloads/nas/ft.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/ft.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/ft.cpp.o.d"
  "/root/repo/src/workloads/nas/is.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/is.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/is.cpp.o.d"
  "/root/repo/src/workloads/nas/lu.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/lu.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/lu.cpp.o.d"
  "/root/repo/src/workloads/nas/mg.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/mg.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/mg.cpp.o.d"
  "/root/repo/src/workloads/nas/sp.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/sp.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/nas/sp.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/splash/water_spatial.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/splash/water_spatial.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/splash/water_spatial.cpp.o.d"
  "/root/repo/src/workloads/starbench/bodytrack.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/bodytrack.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/bodytrack.cpp.o.d"
  "/root/repo/src/workloads/starbench/cray.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/cray.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/cray.cpp.o.d"
  "/root/repo/src/workloads/starbench/h264dec.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/h264dec.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/h264dec.cpp.o.d"
  "/root/repo/src/workloads/starbench/kmeans.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/kmeans.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/kmeans.cpp.o.d"
  "/root/repo/src/workloads/starbench/md5.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/md5.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/md5.cpp.o.d"
  "/root/repo/src/workloads/starbench/rayrot.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rayrot.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rayrot.cpp.o.d"
  "/root/repo/src/workloads/starbench/rgbyuv.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rgbyuv.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rgbyuv.cpp.o.d"
  "/root/repo/src/workloads/starbench/rotate.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rotate.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rotate.cpp.o.d"
  "/root/repo/src/workloads/starbench/rotcc.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rotcc.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/rotcc.cpp.o.d"
  "/root/repo/src/workloads/starbench/streamcluster.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/streamcluster.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/streamcluster.cpp.o.d"
  "/root/repo/src/workloads/starbench/tinyjpeg.cpp" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/tinyjpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/depprof_workloads.dir/starbench/tinyjpeg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/instrument/CMakeFiles/depprof_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/mt/CMakeFiles/depprof_mt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/depprof_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/depprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/depprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/depprof_sig.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
