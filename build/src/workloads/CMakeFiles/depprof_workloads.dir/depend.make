# Empty dependencies file for depprof_workloads.
# This may be replaced when dependencies are built.
