file(REMOVE_RECURSE
  "libdepprof_workloads.a"
)
