file(REMOVE_RECURSE
  "CMakeFiles/depprof_common.dir/heatmap.cpp.o"
  "CMakeFiles/depprof_common.dir/heatmap.cpp.o.d"
  "CMakeFiles/depprof_common.dir/location.cpp.o"
  "CMakeFiles/depprof_common.dir/location.cpp.o.d"
  "CMakeFiles/depprof_common.dir/mem_stats.cpp.o"
  "CMakeFiles/depprof_common.dir/mem_stats.cpp.o.d"
  "CMakeFiles/depprof_common.dir/table.cpp.o"
  "CMakeFiles/depprof_common.dir/table.cpp.o.d"
  "libdepprof_common.a"
  "libdepprof_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
