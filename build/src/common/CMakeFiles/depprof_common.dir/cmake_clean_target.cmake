file(REMOVE_RECURSE
  "libdepprof_common.a"
)
