# Empty compiler generated dependencies file for depprof_common.
# This may be replaced when dependencies are built.
