# Empty dependencies file for depprof_instrument.
# This may be replaced when dependencies are built.
