file(REMOVE_RECURSE
  "CMakeFiles/depprof_instrument.dir/runtime.cpp.o"
  "CMakeFiles/depprof_instrument.dir/runtime.cpp.o.d"
  "libdepprof_instrument.a"
  "libdepprof_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
