file(REMOVE_RECURSE
  "libdepprof_instrument.a"
)
