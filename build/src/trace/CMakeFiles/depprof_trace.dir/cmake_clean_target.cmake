file(REMOVE_RECURSE
  "libdepprof_trace.a"
)
