# Empty compiler generated dependencies file for depprof_trace.
# This may be replaced when dependencies are built.
