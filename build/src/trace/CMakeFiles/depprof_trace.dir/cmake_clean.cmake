file(REMOVE_RECURSE
  "CMakeFiles/depprof_trace.dir/call_tree.cpp.o"
  "CMakeFiles/depprof_trace.dir/call_tree.cpp.o.d"
  "CMakeFiles/depprof_trace.dir/generators.cpp.o"
  "CMakeFiles/depprof_trace.dir/generators.cpp.o.d"
  "CMakeFiles/depprof_trace.dir/trace_io.cpp.o"
  "CMakeFiles/depprof_trace.dir/trace_io.cpp.o.d"
  "libdepprof_trace.a"
  "libdepprof_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
