
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dep.cpp" "src/core/CMakeFiles/depprof_core.dir/dep.cpp.o" "gcc" "src/core/CMakeFiles/depprof_core.dir/dep.cpp.o.d"
  "/root/repo/src/core/formatter.cpp" "src/core/CMakeFiles/depprof_core.dir/formatter.cpp.o" "gcc" "src/core/CMakeFiles/depprof_core.dir/formatter.cpp.o.d"
  "/root/repo/src/core/parallel_profiler.cpp" "src/core/CMakeFiles/depprof_core.dir/parallel_profiler.cpp.o" "gcc" "src/core/CMakeFiles/depprof_core.dir/parallel_profiler.cpp.o.d"
  "/root/repo/src/core/serial_profiler.cpp" "src/core/CMakeFiles/depprof_core.dir/serial_profiler.cpp.o" "gcc" "src/core/CMakeFiles/depprof_core.dir/serial_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/depprof_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/depprof_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/depprof_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
