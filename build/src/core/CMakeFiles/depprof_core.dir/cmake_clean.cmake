file(REMOVE_RECURSE
  "CMakeFiles/depprof_core.dir/dep.cpp.o"
  "CMakeFiles/depprof_core.dir/dep.cpp.o.d"
  "CMakeFiles/depprof_core.dir/formatter.cpp.o"
  "CMakeFiles/depprof_core.dir/formatter.cpp.o.d"
  "CMakeFiles/depprof_core.dir/parallel_profiler.cpp.o"
  "CMakeFiles/depprof_core.dir/parallel_profiler.cpp.o.d"
  "CMakeFiles/depprof_core.dir/serial_profiler.cpp.o"
  "CMakeFiles/depprof_core.dir/serial_profiler.cpp.o.d"
  "libdepprof_core.a"
  "libdepprof_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
