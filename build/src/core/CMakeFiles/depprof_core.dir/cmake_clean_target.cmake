file(REMOVE_RECURSE
  "libdepprof_core.a"
)
