# Empty compiler generated dependencies file for depprof_core.
# This may be replaced when dependencies are built.
