file(REMOVE_RECURSE
  "CMakeFiles/depprof_harness.dir/accuracy.cpp.o"
  "CMakeFiles/depprof_harness.dir/accuracy.cpp.o.d"
  "CMakeFiles/depprof_harness.dir/runner.cpp.o"
  "CMakeFiles/depprof_harness.dir/runner.cpp.o.d"
  "CMakeFiles/depprof_harness.dir/table2.cpp.o"
  "CMakeFiles/depprof_harness.dir/table2.cpp.o.d"
  "libdepprof_harness.a"
  "libdepprof_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
