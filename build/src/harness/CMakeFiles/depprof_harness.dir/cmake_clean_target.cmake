file(REMOVE_RECURSE
  "libdepprof_harness.a"
)
