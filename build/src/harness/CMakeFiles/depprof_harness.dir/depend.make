# Empty dependencies file for depprof_harness.
# This may be replaced when dependencies are built.
