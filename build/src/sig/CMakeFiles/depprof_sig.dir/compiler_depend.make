# Empty compiler generated dependencies file for depprof_sig.
# This may be replaced when dependencies are built.
