file(REMOVE_RECURSE
  "CMakeFiles/depprof_sig.dir/fpr_model.cpp.o"
  "CMakeFiles/depprof_sig.dir/fpr_model.cpp.o.d"
  "libdepprof_sig.a"
  "libdepprof_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depprof_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
