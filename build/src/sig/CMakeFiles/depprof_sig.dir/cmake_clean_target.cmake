file(REMOVE_RECURSE
  "libdepprof_sig.a"
)
