# Empty dependencies file for comm_pattern.
# This may be replaced when dependencies are built.
