file(REMOVE_RECURSE
  "CMakeFiles/comm_pattern.dir/comm_pattern.cpp.o"
  "CMakeFiles/comm_pattern.dir/comm_pattern.cpp.o.d"
  "comm_pattern"
  "comm_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
