
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/depprof_core.dir/DependInfo.cmake"
  "/root/repo/build/src/instrument/CMakeFiles/depprof_instrument.dir/DependInfo.cmake"
  "/root/repo/build/src/mt/CMakeFiles/depprof_mt.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/depprof_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/depprof_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/depprof_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/depprof_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/framework/CMakeFiles/depprof_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/depprof_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/depprof_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
