file(REMOVE_RECURSE
  "CMakeFiles/profile_trace.dir/profile_trace.cpp.o"
  "CMakeFiles/profile_trace.dir/profile_trace.cpp.o.d"
  "profile_trace"
  "profile_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
