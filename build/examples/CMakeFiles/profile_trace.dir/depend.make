# Empty dependencies file for profile_trace.
# This may be replaced when dependencies are built.
