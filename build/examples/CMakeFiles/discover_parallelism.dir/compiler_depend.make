# Empty compiler generated dependencies file for discover_parallelism.
# This may be replaced when dependencies are built.
