file(REMOVE_RECURSE
  "CMakeFiles/discover_parallelism.dir/discover_parallelism.cpp.o"
  "CMakeFiles/discover_parallelism.dir/discover_parallelism.cpp.o.d"
  "discover_parallelism"
  "discover_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discover_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
