# Empty dependencies file for framework_tour.
# This may be replaced when dependencies are built.
