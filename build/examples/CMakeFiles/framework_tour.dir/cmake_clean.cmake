file(REMOVE_RECURSE
  "CMakeFiles/framework_tour.dir/framework_tour.cpp.o"
  "CMakeFiles/framework_tour.dir/framework_tour.cpp.o.d"
  "framework_tour"
  "framework_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
