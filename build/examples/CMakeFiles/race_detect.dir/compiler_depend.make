# Empty compiler generated dependencies file for race_detect.
# This may be replaced when dependencies are built.
