// Tests for the Fig. 1 / Fig. 3 output format and the CSV exporter.

#include <gtest/gtest.h>

#include "core/formatter.hpp"

namespace depprof {
namespace {

DepKey key(DepType type, std::uint32_t sink_line, std::uint32_t src_line,
           std::uint32_t var = 0, std::uint16_t sink_tid = 0,
           std::uint16_t src_tid = 0) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink_line).packed();
  k.src_loc = src_line ? SourceLocation(1, src_line).packed() : 0;
  k.var = var;
  k.sink_tid = sink_tid;
  k.src_tid = src_tid;
  return k;
}

TEST(Formatter, SequentialFig1Format) {
  const std::uint32_t var_i = var_registry().intern("i");
  DepMap deps;
  deps.add(key(DepType::kRaw, 60, 60, var_i), 0);
  deps.add(key(DepType::kWar, 60, 60, var_i), 0);
  deps.add(key(DepType::kInit, 60, 0, var_i), 0);

  const std::string out = format_deps(deps);
  // Fig. 1 line 2: "1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}"
  EXPECT_NE(out.find("1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}"),
            std::string::npos)
      << out;
}

TEST(Formatter, TypeOrderRawWarWawInit) {
  DepMap deps;
  deps.add(key(DepType::kInit, 10, 0), 0);
  deps.add(key(DepType::kWaw, 10, 5), 0);
  deps.add(key(DepType::kRaw, 10, 5), 0);
  deps.add(key(DepType::kWar, 10, 5), 0);
  const std::string out = format_deps(deps);
  const auto raw = out.find("{RAW");
  const auto war = out.find("{WAR");
  const auto waw = out.find("{WAW");
  const auto init = out.find("{INIT");
  EXPECT_LT(raw, war);
  EXPECT_LT(war, waw);
  EXPECT_LT(waw, init);
}

TEST(Formatter, ControlRegionsBgnEndWithIterations) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 63, 59), 0);

  ControlFlowLog cf;
  LoopRecord loop;
  loop.loop_id = SourceLocation(1, 60).packed();
  loop.begin_loc = SourceLocation(1, 60).packed();
  loop.end_loc = SourceLocation(1, 74).packed();
  loop.iterations = 1200;
  cf.loops.push_back(loop);

  const std::string out = format_deps(deps, &cf);
  const auto bgn = out.find("1:60 BGN loop");
  const auto nom = out.find("1:63 NOM");
  const auto end = out.find("1:74 END loop 1200");
  ASSERT_NE(bgn, std::string::npos) << out;
  ASSERT_NE(nom, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  EXPECT_LT(bgn, nom);
  EXPECT_LT(nom, end);
}

TEST(Formatter, BgnBeforeNomOnSameLine) {
  // Fig. 1: "1:60 BGN loop" precedes "1:60 NOM ..." on the same line number.
  DepMap deps;
  deps.add(key(DepType::kRaw, 60, 60), 0);
  ControlFlowLog cf;
  LoopRecord loop;
  loop.begin_loc = SourceLocation(1, 60).packed();
  loop.end_loc = SourceLocation(1, 74).packed();
  cf.loops.push_back(loop);
  const std::string out = format_deps(deps, &cf);
  EXPECT_LT(out.find("1:60 BGN loop"), out.find("1:60 NOM"));
}

TEST(Formatter, ParallelFig3FormatWithThreadIds) {
  const std::uint32_t var_iter = var_registry().intern("iter");
  DepMap deps;
  deps.add(key(DepType::kWar, 58, 77, var_iter, /*sink_tid=*/2, /*src_tid=*/2), 0);

  FormatOptions opts;
  opts.show_tids = true;
  const std::string out = format_deps(deps, nullptr, opts);
  // Fig. 3 line 1: "4:58|2 NOM {WAR 4:77|2|iter}" (our file id is 1).
  EXPECT_NE(out.find("1:58|2 NOM {WAR 1:77|2|iter}"), std::string::npos) << out;
}

TEST(Formatter, SeparateLinesPerSinkThread) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 64, 75, 0, /*sink_tid=*/2), 0);
  deps.add(key(DepType::kRaw, 64, 75, 0, /*sink_tid=*/3), 0);
  FormatOptions opts;
  opts.show_tids = true;
  const std::string out = format_deps(deps, nullptr, opts);
  EXPECT_NE(out.find("1:64|2 NOM"), std::string::npos);
  EXPECT_NE(out.find("1:64|3 NOM"), std::string::npos);
}

TEST(Formatter, RaceMarkAndCounts) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), kReversed);
  deps.add(key(DepType::kRaw, 20, 10), 0);
  FormatOptions opts;
  opts.show_counts = true;
  opts.mark_races = true;
  const std::string out = format_deps(deps, nullptr, opts);
  EXPECT_NE(out.find("x2"), std::string::npos);
  EXPECT_NE(out.find("!}"), std::string::npos);
}

TEST(Formatter, CsvExportRoundTrip) {
  const std::uint32_t var_x = var_registry().intern("x");
  const std::uint32_t loop5 = SourceLocation(1, 5).packed();
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, var_x, 1, 2), kLoopCarried | kCrossThread,
           {loop5, 1, 1, true});
  deps.add(key(DepType::kInit, 20, 0, var_x), 0);
  const std::string csv = deps_csv(deps);
  EXPECT_NE(csv.find("type,sink,sink_tid,source,src_tid,var,count,carried,"
                     "cross_thread,reversed,locked,carried_level,carried_loop,"
                     "d0,d1,d2p"),
            std::string::npos);
  EXPECT_NE(csv.find("RAW,1:20,1,1:10,2,x,1,1,1,0,0,1,1:5,0,1,0"),
            std::string::npos)
      << csv;
  EXPECT_NE(csv.find("INIT,1:20,0,*,0,x,1,0,0,0,0,0,,0,0,0"),
            std::string::npos)
      << csv;
}

TEST(Formatter, DistanceAnnotation) {
  const std::uint32_t loop5 = SourceLocation(1, 5).packed();
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), kLoopCarried, {loop5, 1, 1, true});
  deps.add(key(DepType::kRaw, 20, 10), kLoopCarried, {loop5, 1, 9, true});
  deps.add(key(DepType::kRaw, 20, 10), 0, {loop5, 2, 0, true});
  FormatOptions opts;
  opts.show_distances = true;
  const std::string out = format_deps(deps, nullptr, opts);
  // Per-level carry buckets: level 1 has one d=1 and one d>=2 instance,
  // level 2 one iteration-local (d=0) instance.
  EXPECT_NE(out.find("L1=0|1|1"), std::string::npos) << out;
  EXPECT_NE(out.find("L2=1|0|0"), std::string::npos) << out;
  opts.show_distances = false;
  EXPECT_EQ(format_deps(deps, nullptr, opts).find("L1="), std::string::npos);
}

TEST(Formatter, EmptyMapYieldsEmptyOutput) {
  DepMap deps;
  EXPECT_TRUE(format_deps(deps).empty());
}

TEST(Formatter, InitOnlyMapFormatsEverySink) {
  // A map holding nothing but first-writes (src_loc == 0 throughout) must
  // render one NOM line per sink with the '*' source placeholder — the
  // formatter must never try to resolve the absent source location.
  DepMap deps;
  deps.add(key(DepType::kInit, 12, 0), 0);
  deps.add(key(DepType::kInit, 10, 0), 0);
  const std::string out = format_deps(deps);
  const auto first = out.find("1:10 NOM {INIT *}");
  const auto second = out.find("1:12 NOM {INIT *}");
  ASSERT_NE(first, std::string::npos) << out;
  ASSERT_NE(second, std::string::npos) << out;
  EXPECT_LT(first, second);

  const std::string csv = deps_csv(deps);
  EXPECT_NE(csv.find("INIT,1:10,0,*,"), std::string::npos) << csv;
  EXPECT_NE(csv.find("INIT,1:12,0,*,"), std::string::npos) << csv;
}

TEST(Formatter, UnknownDistanceLandsInConservativeBucket) {
  // A carried instance whose common level lies beyond the event iteration
  // window has no measured distance: it must land in the d>=2 bucket (the
  // conservative choice), never in d0 or d1.
  const std::uint32_t loop5 = SourceLocation(1, 5).packed();
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), kLoopCarried,
           {loop5, 1, 0, /*distance_known=*/false});
  FormatOptions opts;
  opts.show_distances = true;
  EXPECT_NE(format_deps(deps, nullptr, opts).find("L1=0|0|1"),
            std::string::npos);
  const std::string csv = deps_csv(deps);
  EXPECT_NE(csv.find(",1,0,0,0,1,1:5,0,0,1"), std::string::npos) << csv;
}

}  // namespace
}  // namespace depprof
