#!/bin/sh
# Cross-attribution schedule-replay regression (PR 7).
#
# Replays the committed schedule tests/corpus/is_unpacked_w8_cross_attribution.sched
# against `depprof run is --slots 337311 --parallel --workers 8 --no-pack`
# and requires the dependence map to match the serial run byte for byte.
#
# Before the ChunkPool was sealed, this exact replay failed every run: the
# schedule starves the workers so the producer's grow-on-demand pool runs
# `new Chunk()` mid-profile, which shifts the target's own heap layout until
# IS's mid-run `cursor` allocation aliases `sorted` in the modulo signature
# (see the header of the .sched file for the measured deltas).  With the
# sealed pool the layout is schedule-independent and the replay is clean.
#
# The failure is a heap-layout property, so the demonstration pins every
# input the layout depends on:
#   - ASLR off via setarch -R when available (plain fallback; the sealed-pool
#     profiler passes either way),
#   - a scrubbed environment (env -i + a fixed variable set) because the size
#     of the environment block shifts the target heap by tens of thousands of
#     words — enough to move the cursor allocation out of (or into) sorted's
#     aliasing window,
#   - fixed-length argv: the binary and the schedule are copied to constant
#     paths under /tmp/dp7regress before running, since argv strings sit in
#     the same stack region as the environment.
# The slot count 337311 was solved against deltas measured under exactly this
# shape: pre-fix scheduled delta 2708488 = 8*337311 + 10000 lands mid-window,
# while the post-fix (33168), serial (33348), and keys-pair (53200/53380)
# deltas all stay clear.
set -e

DEPPROF="$1"
SCHED="$2"
[ -x "$DEPPROF" ] || { echo "usage: $0 <depprof> <schedule-file>" >&2; exit 2; }
[ -f "$SCHED" ] || { echo "missing schedule file: $SCHED" >&2; exit 2; }

WRAP=""
if command -v setarch >/dev/null 2>&1; then
  if setarch "$(uname -m)" -R true 2>/dev/null; then
    WRAP="$(command -v setarch) $(uname -m) -R"
  fi
fi

# Fixed path, not mktemp: the path length is part of the pinned layout.
TMP=/tmp/dp7regress
rm -rf "$TMP"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT
cp "$DEPPROF" "$TMP/depprof"
cp "$SCHED" "$TMP/s.sched"

env -i DEPPROF_LAYOUT_DIAG=1 \
  $WRAP "$TMP/depprof" run is --slots 337311 --format csv \
  > "$TMP/serial.csv" 2> "$TMP/serial.err"

env -i DEPPROF_LAYOUT_DIAG=1 DEPPROF_SCHED=1 DEPPROF_SCHED_SEED=10 \
  DEPPROF_SCHED_ALGO=pct DEPPROF_SCHED_REPLAY="$TMP/s.sched" \
  $WRAP "$TMP/depprof" run is --slots 337311 --parallel --workers 8 --no-pack \
  --format csv > "$TMP/parallel.csv" 2> "$TMP/parallel.err"

if ! cmp -s "$TMP/serial.csv" "$TMP/parallel.csv"; then
  echo "FAIL: scheduled parallel run diverged from the serial map" >&2
  echo "--- layout diagnostics:" >&2
  grep -h layout-diag "$TMP/serial.err" "$TMP/parallel.err" >&2 || true
  echo "--- serial vs parallel diff (cross-attribution regression):" >&2
  diff "$TMP/serial.csv" "$TMP/parallel.csv" >&2 || true
  exit 1
fi
echo "ok: schedule replay matches the serial map"
