// Tests for Algorithm 1 (the dependence detector) and the dependence model:
// RAW/WAR/WAW/INIT construction, RAR suppression, lifetime removal,
// loop-carried attribution over the interned nest contexts (innermost
// common loop + per-level distance buckets), the address-tag gating,
// merging, and migration state transfer.

#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/signature.hpp"
#include "trace/nest.hpp"

namespace depprof {
namespace {

AccessEvent ev(std::uint64_t addr, AccessKind kind, std::uint32_t line,
               std::uint32_t var = 7) {
  AccessEvent e;
  e.addr = addr;
  e.kind = kind;
  e.loc = SourceLocation(1, line).packed();
  e.var = var;
  return e;
}

AccessEvent rd(std::uint64_t addr, std::uint32_t line) {
  return ev(addr, AccessKind::kRead, line);
}
AccessEvent wr(std::uint64_t addr, std::uint32_t line) {
  return ev(addr, AccessKind::kWrite, line);
}
AccessEvent fr(std::uint64_t addr) { return ev(addr, AccessKind::kFree, 0); }

DepKey key(DepType type, std::uint32_t sink_line, std::uint32_t src_line,
           std::uint32_t var = 7) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink_line).packed();
  k.src_loc = src_line ? SourceLocation(1, src_line).packed() : 0;
  k.var = var;
  return k;
}

using PerfectDetector = DetectorCore<PerfectSignature<SeqSlot>>;

PerfectDetector make_perfect() { return PerfectDetector{{}, {}}; }

// ------------------------------------------------------------ Algorithm 1

TEST(Detector, FirstWriteIsInit) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_NE(deps.find(key(DepType::kInit, 10, 0)), nullptr);
}

TEST(Detector, ReadAfterWriteBuildsRaw) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  det.process(rd(100, 20), deps);
  EXPECT_NE(deps.find(key(DepType::kRaw, 20, 10)), nullptr);
}

TEST(Detector, WriteAfterReadBuildsWar) {
  auto det = make_perfect();
  DepMap deps;
  det.process(rd(100, 10), deps);
  det.process(wr(100, 20), deps);
  EXPECT_NE(deps.find(key(DepType::kWar, 20, 10)), nullptr);
}

TEST(Detector, WriteAfterWriteBuildsWaw) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  det.process(wr(100, 20), deps);
  EXPECT_NE(deps.find(key(DepType::kWaw, 20, 10)), nullptr);
}

TEST(Detector, InitAndWarCoexistOnOneSink) {
  // Fig. 1 line 1:65: "{WAR 1:67|temp2} {INIT *}" — a first write that is
  // also the sink of a WAR against an earlier read.
  auto det = make_perfect();
  DepMap deps;
  det.process(rd(100, 67), deps);
  det.process(wr(100, 65), deps);
  EXPECT_NE(deps.find(key(DepType::kInit, 65, 0)), nullptr);
  EXPECT_NE(deps.find(key(DepType::kWar, 65, 67)), nullptr);
}

TEST(Detector, RarIsIgnored) {
  auto det = make_perfect();
  DepMap deps;
  det.process(rd(100, 10), deps);
  det.process(rd(100, 20), deps);
  EXPECT_EQ(deps.size(), 0u);
}

TEST(Detector, ReadWithoutPriorWriteBuildsNothing) {
  auto det = make_perfect();
  DepMap deps;
  det.process(rd(100, 10), deps);
  EXPECT_EQ(deps.size(), 0u);
}

TEST(Detector, RawUsesLatestWrite) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  det.process(wr(100, 11), deps);
  det.process(rd(100, 20), deps);
  EXPECT_NE(deps.find(key(DepType::kRaw, 20, 11)), nullptr);
  EXPECT_EQ(deps.find(key(DepType::kRaw, 20, 10)), nullptr);
}

TEST(Detector, VarNameComesFromSink) {
  auto det = make_perfect();
  DepMap deps;
  det.process(ev(100, AccessKind::kWrite, 10, /*var=*/3), deps);
  det.process(ev(100, AccessKind::kRead, 20, /*var=*/4), deps);
  EXPECT_NE(deps.find(key(DepType::kRaw, 20, 10, /*var=*/4)), nullptr);
}

// ----------------------------------------------------- lifetime analysis

TEST(Detector, FreeRemovesAddressState) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  det.process(fr(100), deps);
  det.process(rd(100, 20), deps);  // re-used memory: no stale RAW
  EXPECT_EQ(deps.find(key(DepType::kRaw, 20, 10)), nullptr);
  det.process(wr(100, 30), deps);  // and the next write is an INIT again
  EXPECT_NE(deps.find(key(DepType::kInit, 30, 0)), nullptr);
}

TEST(Detector, FreeRemovesReadStateToo) {
  auto det = make_perfect();
  DepMap deps;
  det.process(rd(100, 10), deps);
  det.process(fr(100), deps);
  det.process(wr(100, 20), deps);
  EXPECT_EQ(deps.find(key(DepType::kWar, 20, 10)), nullptr);
}

// ------------------------------------------------- loop-nest attribution

/// Stamps `e` with a nest context and a root-anchored iteration window.
AccessEvent with_nest(AccessEvent e, std::uint32_t ctx,
                      std::initializer_list<std::uint32_t> iters) {
  e.ctx = ctx;
  std::size_t i = 0;
  for (std::uint32_t v : iters) {
    if (i < kNestIters) e.iters[i] = v;
    ++i;
  }
  return e;
}

TEST(Detector, SameIterationIsNotCarried) {
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), ctx, {5}), deps);
  det.process(with_nest(rd(100, 20), ctx, {5}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->flags & kLoopCarried, 0);
  EXPECT_EQ(info->levels[0].loop, 1u);  // attributed, distance 0
  EXPECT_EQ(info->levels[0].d0, 1u);
  EXPECT_EQ(info->levels[0].carried(), 0u);
}

TEST(Detector, DifferentIterationIsCarried) {
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), ctx, {5}), deps);
  det.process(with_nest(rd(100, 20), ctx, {6}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
  EXPECT_EQ(info->carried_loop(), 1u);
  EXPECT_EQ(info->carried_level(), 1u);
  EXPECT_EQ(info->levels[0].d1, 1u);
}

TEST(Detector, DifferentEntryOfSameLoopIsNotCarriedByIt) {
  // A loop re-entered from an outer context: same static loop id, same
  // iteration index, different dynamic entries — not carried by that loop.
  NestForest& f = nest_forest();
  const std::uint32_t e1 = f.enter(NestForest::kRoot, 1);
  const std::uint32_t e2 = f.enter(NestForest::kRoot, 1);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), e1, {5}), deps);
  det.process(with_nest(rd(100, 20), e2, {5}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->flags & kLoopCarried, 0);
  EXPECT_NE(info->flags & kCrossLoop, 0);  // no shared dynamic context
  EXPECT_EQ(info->carried_level(), 0u);
}

TEST(Detector, OuterLoopCarriedThroughParentLevel) {
  // The SP pattern: inner loop re-entered per time step; the dependence is
  // carried by the outer loop (the innermost *common* entry), not the
  // inner one.
  NestForest& f = nest_forest();
  const std::uint32_t outer = f.enter(NestForest::kRoot, 1);
  const std::uint32_t in1 = f.enter(outer, 2);
  const std::uint32_t in2 = f.enter(outer, 2);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), in1, {0, 3}), deps);
  det.process(with_nest(rd(100, 20), in2, {1, 3}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
  EXPECT_EQ(info->carried_loop(), 1u);  // attributed to the outer loop
  EXPECT_EQ(info->carried_level(), 1u);
  EXPECT_EQ(info->levels[0].d1, 1u);  // time-step distance 1
}

TEST(Detector, GrandparentLoopCarriedThroughThirdLevel) {
  // The h264dec pattern: frames > slices > macroblocks; the reference-frame
  // dependence is carried by the grandparent (frame) loop.
  NestForest& f = nest_forest();
  const std::uint32_t frames = f.enter(NestForest::kRoot, 1);
  const std::uint32_t s1 = f.enter(frames, 2);
  const std::uint32_t s2 = f.enter(frames, 2);
  const std::uint32_t m1 = f.enter(s1, 3);
  const std::uint32_t m2 = f.enter(s2, 3);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), m1, {0, 1, 2}), deps);
  det.process(with_nest(rd(100, 20), m2, {1, 1, 2}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
  EXPECT_EQ(info->carried_loop(), 1u);
  EXPECT_EQ(info->carried_level(), 1u);
}

TEST(Detector, InnermostCommonLoopWins) {
  // Both endpoints share the whole nest; the inner iteration differs — the
  // dependence is attributed to the innermost common loop (level 2).
  NestForest& f = nest_forest();
  const std::uint32_t outer = f.enter(NestForest::kRoot, 1);
  const std::uint32_t inner = f.enter(outer, 2);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), inner, {0, 3}), deps);
  det.process(with_nest(rd(100, 20), inner, {0, 4}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->carried_loop(), 2u);
  EXPECT_EQ(info->carried_level(), 2u);
  EXPECT_EQ(info->levels[1].loop, 2u);
}

TEST(Detector, CarriedDistanceBucketed) {
  // Reads of a[i-4]: every carried instance has iteration distance 4,
  // which lands in the >= 2 bucket.
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  auto det = make_perfect();
  DepMap deps;
  for (std::uint32_t i = 0; i < 16; ++i) {
    if (i >= 4) det.process(with_nest(rd(100 + (i - 4), 20), ctx, {i}), deps);
    det.process(with_nest(wr(100 + i, 10), ctx, {i}), deps);
  }
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
  EXPECT_EQ(info->levels[0].d0, 0u);
  EXPECT_EQ(info->levels[0].d1, 0u);
  EXPECT_EQ(info->levels[0].d2p, 12u);
  EXPECT_EQ(info->min_carried_bucket(), 2u);
}

TEST(Detector, DistanceBucketsAccumulate) {
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), ctx, {0}), deps);
  det.process(with_nest(rd(100, 20), ctx, {1}), deps);  // d = 1
  det.process(with_nest(wr(100, 10), ctx, {1}), deps);
  det.process(with_nest(rd(100, 20), ctx, {6}), deps);  // d = 5
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->levels[0].d1, 1u);
  EXPECT_EQ(info->levels[0].d2p, 1u);
  EXPECT_EQ(info->min_carried_bucket(), 1u);
}

TEST(Detector, DeepNestBeyondWindowIsConservativelyCarried) {
  // Common entry deeper than the event's iteration window: the distance is
  // unknown, so the instance lands in the carried >= 2 bucket rather than
  // being guessed independent.
  NestForest& f = nest_forest();
  std::uint32_t ctx = NestForest::kRoot;
  for (std::uint32_t d = 1; d <= kNestIters + 2; ++d) ctx = f.enter(ctx, d);
  auto det = make_perfect();
  DepMap deps;
  det.process(with_nest(wr(100, 10), ctx, {1, 1, 1, 1, 1, 1, 1}), deps);
  det.process(with_nest(rd(100, 20), ctx, {1, 1, 1, 1, 1, 1, 1}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
  // Level clamps to the last window row; the bucket is ">= 2 / unknown".
  EXPECT_EQ(info->levels[kNestLevels - 1].d2p, 1u);
}

TEST(DepMap, MergeCombinesBuckets) {
  DepMap a, b;
  a.add(key(DepType::kRaw, 20, 10), kLoopCarried, {1, 1, 3, true});
  b.add(key(DepType::kRaw, 20, 10), kLoopCarried, {1, 1, 1, true});
  a.merge(b);
  const DepInfo* info = a.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->levels[0].d1, 1u);
  EXPECT_EQ(info->levels[0].d2p, 1u);
  EXPECT_EQ(info->min_carried_bucket(), 1u);
}

TEST(Detector, NoLoopContextNoFlags) {
  auto det = make_perfect();
  DepMap deps;
  det.process(wr(100, 10), deps);
  det.process(rd(100, 20), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->flags, 0);
}

// --------------------------------------------------------- tag gating

TEST(Detector, CollidingAddressStillBuildsDepButNoCarriedFlag) {
  // Modulo collision: addr and addr + slots share a slot.  The dependence
  // record is built (approximate membership), but the loop-context compare
  // is gated off by the address tag, so no carried flag can be fabricated.
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  DetectorCore<Signature<SeqSlot>> det{
      Signature<SeqSlot>(128, SigHash::kModulo),
      Signature<SeqSlot>(128, SigHash::kModulo)};
  DepMap deps;
  det.process(with_nest(wr(5, 10), ctx, {3}), deps);
  det.process(with_nest(rd(5 + 128, 20), ctx, {4}), deps);  // collides
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr) << "false dependence is still reported";
  EXPECT_EQ(info->flags & kLoopCarried, 0) << "but never classified carried";
  EXPECT_EQ(info->carried_level(), 0u) << "and never attributed";
}

TEST(Detector, SameAddressKeepsCarriedFlagUnderSignature) {
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  DetectorCore<Signature<SeqSlot>> det{Signature<SeqSlot>(128),
                                       Signature<SeqSlot>(128)};
  DepMap deps;
  det.process(with_nest(wr(5, 10), ctx, {3}), deps);
  det.process(with_nest(rd(5, 20), ctx, {4}), deps);
  const DepInfo* info = deps.find(key(DepType::kRaw, 20, 10));
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kLoopCarried, 0);
}

// ------------------------------------------------------------- MT slots

AccessEvent mt_ev(std::uint64_t addr, AccessKind kind, std::uint32_t line,
                  std::uint16_t tid, std::uint64_t ts) {
  AccessEvent e = ev(addr, kind, line);
  e.tid = tid;
  e.ts = ts;
  return e;
}

TEST(Detector, CrossThreadFlagAndThreadIds) {
  DetectorCore<PerfectSignature<MtSlot>> det{{}, {}};
  DepMap deps;
  det.process(mt_ev(100, AccessKind::kWrite, 10, /*tid=*/1, /*ts=*/1), deps);
  det.process(mt_ev(100, AccessKind::kRead, 20, /*tid=*/2, /*ts=*/2), deps);
  DepKey k = key(DepType::kRaw, 20, 10);
  k.sink_tid = 2;
  k.src_tid = 1;
  const DepInfo* info = deps.find(k);
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kCrossThread, 0);
  EXPECT_EQ(info->flags & kReversed, 0);
}

TEST(Detector, TimestampReversalFlagsPotentialRace) {
  DetectorCore<PerfectSignature<MtSlot>> det{{}, {}};
  DepMap deps;
  // The write reached the worker first but carries a LATER timestamp than
  // the read that follows: access/push atomicity was violated (Sec. V-B).
  det.process(mt_ev(100, AccessKind::kWrite, 10, 1, /*ts=*/9), deps);
  det.process(mt_ev(100, AccessKind::kRead, 20, 2, /*ts=*/5), deps);
  DepKey k = key(DepType::kRaw, 20, 10);
  k.sink_tid = 2;
  k.src_tid = 1;
  const DepInfo* info = deps.find(k);
  ASSERT_NE(info, nullptr);
  EXPECT_NE(info->flags & kReversed, 0);
}

// ------------------------------------------------------------- migration

TEST(Detector, ExtractAdoptMovesPerAddressState) {
  auto from = make_perfect();
  auto to = make_perfect();
  DepMap deps;
  from.process(wr(100, 10), deps);
  from.process(rd(100, 15), deps);

  auto st = from.extract_state(100);
  EXPECT_TRUE(st.has_read);
  EXPECT_TRUE(st.has_write);
  to.adopt_state(100, st);

  // The new owner continues the history seamlessly: a read builds RAW
  // against the migrated write.
  to.process(rd(100, 20), deps);
  EXPECT_NE(deps.find(key(DepType::kRaw, 20, 10)), nullptr);
  // And the old owner no longer knows the address.
  from.process(rd(100, 30), deps);
  EXPECT_EQ(deps.find(key(DepType::kRaw, 30, 10)), nullptr);
}

// ------------------------------------------------------------- DepMap

TEST(DepMap, MergesIdenticalInstances) {
  DepMap deps;
  const DepKey k = key(DepType::kRaw, 20, 10);
  deps.add(k, 0);
  deps.add(k, kLoopCarried, {3, 1, 1, true});
  deps.add(k, kCrossThread);
  EXPECT_EQ(deps.size(), 1u);
  const DepInfo* info = deps.find(k);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->count, 3u);
  EXPECT_EQ(info->flags, kLoopCarried | kCrossThread);  // flags accumulate
  EXPECT_EQ(info->carried_loop(), 3u);
  EXPECT_EQ(deps.instances(), 3u);
}

TEST(DepMap, MergeCombinesMaps) {
  DepMap a, b;
  a.add(key(DepType::kRaw, 20, 10), 0);
  b.add(key(DepType::kRaw, 20, 10), kLoopCarried, {9, 1, 1, true});
  b.add(key(DepType::kWar, 21, 11), 0);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.instances(), 3u);
  EXPECT_EQ(a.find(key(DepType::kRaw, 20, 10))->count, 2u);
  EXPECT_NE(a.find(key(DepType::kRaw, 20, 10))->flags & kLoopCarried, 0);
}

TEST(DepMap, SortedIsDeterministic) {
  DepMap deps;
  deps.add(key(DepType::kWar, 30, 10), 0);
  deps.add(key(DepType::kRaw, 20, 10), 0);
  deps.add(key(DepType::kRaw, 20, 5), 0);
  auto sorted = deps.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_LE(sorted[0].first.sink_loc, sorted[1].first.sink_loc);
  EXPECT_LE(sorted[1].first.sink_loc, sorted[2].first.sink_loc);
}

TEST(DepMap, AddManyMatchesRepeatedAdds) {
  DepMap bulk, loop;
  const DepKey k = key(DepType::kRaw, 20, 10);
  bulk.add_many(k, 5);
  for (int i = 0; i < 5; ++i) loop.add(k, 0);
  EXPECT_EQ(bulk.size(), loop.size());
  EXPECT_EQ(bulk.instances(), loop.instances());
  const DepInfo* info = bulk.find(k);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->count, 5u);
  EXPECT_EQ(info->flags, 0u);
  // Unattributed instances touch no level bucket.
  EXPECT_EQ(info->carried_level(), 0u);
  EXPECT_EQ(info->min_carried_bucket(), 0u);
  bulk.add_many(k, 0);  // zero-count bulk add is a no-op
  EXPECT_EQ(bulk.instances(), 5u);
  EXPECT_EQ(bulk.size(), 1u);
}

TEST(DepMap, FoldMatchesReplayedAdds) {
  // fold() is the batched kernel's flush: one pre-aggregated record per key
  // must land exactly as the per-event adds it replaces.
  const DepKey k = key(DepType::kRaw, 20, 10);
  DepMap replayed;
  replayed.add(k, kLoopCarried, {3, 2, 1, true});
  replayed.add(k, kLoopCarried, {3, 2, 9, true});
  replayed.add(k, kCrossThread);

  DepMap folded;
  DepInfo rec;
  // Build the pre-aggregated record exactly as the batched accumulator does.
  apply_dep_instance(rec, kLoopCarried, {3, 2, 1, true});
  apply_dep_instance(rec, kLoopCarried, {3, 2, 9, true});
  apply_dep_instance(rec, kCrossThread, {});
  folded.fold(k, rec);

  EXPECT_EQ(folded.instances(), replayed.instances());
  const DepInfo* a = folded.find(k);
  const DepInfo* b = replayed.find(k);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->count, b->count);
  EXPECT_EQ(a->flags, b->flags);
  for (std::size_t d = 0; d < kNestLevels; ++d) {
    EXPECT_EQ(a->levels[d].loop, b->levels[d].loop) << "level " << d;
    EXPECT_EQ(a->levels[d].d0, b->levels[d].d0) << "level " << d;
    EXPECT_EQ(a->levels[d].d1, b->levels[d].d1) << "level " << d;
    EXPECT_EQ(a->levels[d].d2p, b->levels[d].d2p) << "level " << d;
  }
}

TEST(DepMap, FoldCombinesLevelBuckets) {
  // Folding a record on top of an existing entry must sum the per-level
  // buckets and max-join the loop ids — never overwrite either side.
  const DepKey k = key(DepType::kRaw, 20, 10);
  DepMap deps;
  deps.add(k, kLoopCarried, {3, 1, 5, true});  // level 1, d>=2 bucket
  DepInfo rec;
  apply_dep_instance(rec, kLoopCarried, {7, 1, 1, true});  // level 1, d=1
  apply_dep_instance(rec, 0, {2, 2, 0, true});             // level 2, d=0
  deps.fold(k, rec);
  const DepInfo* info = deps.find(k);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->count, 3u);
  EXPECT_EQ(info->levels[0].loop, 7u);  // max-join of 3 and 7
  EXPECT_EQ(info->levels[0].d1, 1u);
  EXPECT_EQ(info->levels[0].d2p, 1u);
  EXPECT_EQ(info->levels[1].loop, 2u);
  EXPECT_EQ(info->levels[1].d0, 1u);
  EXPECT_EQ(info->min_carried_bucket(), 1u);
}

TEST(DepMap, MergeFromTransfersAndEmptiesSource) {
  DepMap a, b;
  a.add(key(DepType::kRaw, 20, 10), 0);
  b.add(key(DepType::kRaw, 20, 10), kLoopCarried, {9, 1, 1, true});
  b.add(key(DepType::kWar, 21, 11), 0);
  a.merge_from(b);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.instances(), 0u);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.instances(), 3u);
  EXPECT_EQ(a.find(key(DepType::kRaw, 20, 10))->count, 2u);
  EXPECT_NE(a.find(key(DepType::kRaw, 20, 10))->flags & kLoopCarried, 0);
}

TEST(DepMap, MergeFromKeepsMemChargeExact) {
  MemStats::instance().reset();
  DepMap a, b;
  a.add(key(DepType::kRaw, 20, 10), 0);
  const std::int64_t per_entry =
      MemStats::instance().bytes(MemComponent::kDepMaps);
  ASSERT_GT(per_entry, 0);
  b.add(key(DepType::kRaw, 20, 10), 0);  // duplicate: collapses on merge
  b.add(key(DepType::kWar, 21, 11), 0);  // unique: transfers
  ASSERT_EQ(MemStats::instance().bytes(MemComponent::kDepMaps), 3 * per_entry);

  a.merge_from(b);
  // Two live entries remain, and the transfer never allocated a shadow copy:
  // the high-water mark is the pre-merge three entries, not four.
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kDepMaps), 2 * per_entry);
  EXPECT_EQ(MemStats::instance().peak(MemComponent::kDepMaps), 3 * per_entry);
}

TEST(DepMap, SortedHandlesInitOnlyEntries) {
  // INIT keys have src_loc == 0 (no source statement); sorting must order
  // them by sink without touching the absent source.
  DepMap deps;
  deps.add(key(DepType::kInit, 12, 0), 0);
  deps.add(key(DepType::kInit, 10, 0), 0);
  deps.add(key(DepType::kInit, 11, 0), 0);
  auto sorted = deps.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LT(sorted[i - 1].first.sink_loc, sorted[i].first.sink_loc);
  for (const auto& [k, info] : sorted) {
    EXPECT_EQ(k.type, DepType::kInit);
    EXPECT_EQ(k.src_loc, 0u);
  }
}

TEST(DepMap, MoveLeavesSourceEmpty) {
  DepMap a;
  a.add(key(DepType::kRaw, 20, 10), 0);
  DepMap b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  EXPECT_EQ(a.instances(), 0u);
}

TEST(DepMap, ChargesAndReleasesMemory) {
  MemStats::instance().reset();
  {
    DepMap deps;
    deps.add(key(DepType::kRaw, 20, 10), 0);
    EXPECT_GT(MemStats::instance().bytes(MemComponent::kDepMaps), 0);
  }
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kDepMaps), 0);
}

TEST(DepTypeName, AllNames) {
  EXPECT_STREQ(dep_type_name(DepType::kInit), "INIT");
  EXPECT_STREQ(dep_type_name(DepType::kRaw), "RAW");
  EXPECT_STREQ(dep_type_name(DepType::kWar), "WAR");
  EXPECT_STREQ(dep_type_name(DepType::kWaw), "WAW");
}

}  // namespace
}  // namespace depprof
