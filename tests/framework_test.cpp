// Tests for the Sec. VIII program-analysis framework: call tree, dependence
// graph, loop table, program model, and the plugin registry.

#include <gtest/gtest.h>

#include "core/profiler.hpp"
#include "framework/plugin.hpp"
#include "framework/program_model.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"
#include "trace/trace.hpp"

DP_FILE("framework_test");

namespace depprof {
namespace {

DepKey key(DepType type, std::uint32_t sink, std::uint32_t src,
           std::uint32_t var = 0) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink).packed();
  k.src_loc = src ? SourceLocation(1, src).packed() : 0;
  k.var = var;
  return k;
}

// --------------------------------------------------------------- CallTree

TEST(CallTreeTest, RootOnlyByDefault) {
  CallTree tree;
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.depth(CallTree::kRoot), 0u);
}

TEST(CallTreeTest, ChildOfCreatesOncePerPath) {
  CallTree tree;
  const auto a = tree.child_of(CallTree::kRoot, 100, 1);
  const auto a2 = tree.child_of(CallTree::kRoot, 100, 1);
  EXPECT_EQ(a, a2);
  const auto b = tree.child_of(a, 100, 1);  // same function, deeper path
  EXPECT_NE(b, a);
  EXPECT_EQ(tree.depth(b), 2u);
  EXPECT_EQ(tree.node(b).parent, a);
}

TEST(CallTreeTest, RenderListsCalls) {
  const auto fn = var_registry().intern("compute");
  CallTree tree;
  const auto n = tree.child_of(CallTree::kRoot, SourceLocation(1, 5).packed(), fn);
  tree.node(n).calls = 3;
  const std::string out = tree.render();
  EXPECT_NE(out.find("compute"), std::string::npos);
  EXPECT_NE(out.find("x3"), std::string::npos);
}

TEST(CallTreeTest, RuntimeBuildsTreeFromGuards) {
  Runtime::instance().reset();
  TraceRecorder rec;
  Runtime::instance().attach(&rec);
  {
    DP_FUNCTION("outer");
    for (int i = 0; i < 2; ++i) {
      DP_FUNCTION("inner");
    }
  }
  Runtime::instance().detach();
  const CallTree tree = Runtime::instance().call_tree();
  ASSERT_EQ(tree.size(), 3u);  // root, outer, inner
  const CallNode& root = tree.node(CallTree::kRoot);
  ASSERT_EQ(root.children.size(), 1u);
  const CallNode& outer = tree.node(root.children[0]);
  EXPECT_EQ(outer.calls, 1u);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(tree.node(outer.children[0]).calls, 2u);
  Runtime::instance().reset();
}

// --------------------------------------------------------------- DepGraph

TEST(DepGraphTest, EdgesAndQueries) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 1), 0);
  deps.add(key(DepType::kRaw, 30, 20, 1), 0);
  deps.add(key(DepType::kWar, 10, 20, 1), 0);
  const DepGraph g(deps);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_EQ(g.nodes().size(), 3u);

  const auto out10 = g.out_edges(SourceLocation(1, 10).packed());
  ASSERT_EQ(out10.size(), 1u);
  EXPECT_EQ(out10[0]->type, DepType::kRaw);

  const auto in20 = g.in_edges(SourceLocation(1, 20).packed());
  ASSERT_EQ(in20.size(), 1u);
}

TEST(DepGraphTest, RawReachability) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), 0);
  deps.add(key(DepType::kRaw, 30, 20), 0);
  deps.add(key(DepType::kWar, 40, 30), 0);  // WAR breaks the RAW chain
  const DepGraph g(deps);
  const auto reach = g.raw_reachable(SourceLocation(1, 10).packed());
  EXPECT_EQ(reach.size(), 2u);  // 20 and 30, not 40
  EXPECT_FALSE(g.has_raw_cycle());
}

TEST(DepGraphTest, DetectsRawCycle) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), 0);
  deps.add(key(DepType::kRaw, 10, 20), 0);  // recurrence
  EXPECT_TRUE(DepGraph(deps).has_raw_cycle());
}

TEST(DepGraphTest, DotExportMentionsEdgesAndStyles) {
  const auto var = var_registry().intern("acc");
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, var), kLoopCarried, {5, 1, 1, true});
  deps.add(key(DepType::kWaw, 20, 10, var), 0);
  deps.add(key(DepType::kInit, 10, 0, var), 0);
  const std::string dot = DepGraph(deps).to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("RAW acc"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);   // carried
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // WAW
  EXPECT_EQ(dot.find("INIT"), std::string::npos);  // INIT pseudo-edges skipped
}

// -------------------------------------------------------------- LoopTable

TEST(LoopTableTest, AggregatesPerLoop) {
  ControlFlowLog cf;
  LoopRecord loop;
  loop.loop_id = SourceLocation(1, 10).packed();
  loop.begin_loc = SourceLocation(1, 10).packed();
  loop.end_loc = SourceLocation(1, 30).packed();
  loop.iterations = 100;
  loop.entries = 2;
  cf.loops.push_back(loop);

  DepMap deps;
  DepKey inside = key(DepType::kRaw, 15, 12);
  deps.add(inside, kLoopCarried, {loop.loop_id, 1, 1, true});
  deps.add(inside, kLoopCarried, {loop.loop_id, 1, 1, true});
  deps.add(key(DepType::kRaw, 50, 40), 0);  // outside the loop body

  const LoopTable table(deps, cf, {});
  ASSERT_EQ(table.rows().size(), 1u);
  const LoopRow& row = table.rows()[0];
  EXPECT_EQ(row.dep_kinds, 1u);
  EXPECT_EQ(row.dep_instances, 2u);
  EXPECT_EQ(row.carried_raw, 1u);
  EXPECT_EQ(row.min_carried_bucket, 1u);
  EXPECT_EQ(row.verdict, LoopVerdictKind::kSerial);
  EXPECT_FALSE(row.parallelizable);
  EXPECT_NE(table.find(loop.loop_id), nullptr);
  EXPECT_EQ(table.find(12345), nullptr);
  EXPECT_NE(table.render().find("serial"), std::string::npos);
}

// ----------------------------------------------------------- ProgramModel

TEST(ProgramModelTest, FromRunBundlesEverything) {
  Runtime::instance().reset();
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  auto profiler = make_serial_profiler(cfg);
  Runtime::instance().attach(profiler.get());
  {
    DP_FUNCTION("kernel");
    double acc = 0.0;
    DP_LOOP_BEGIN();
    for (int i = 0; i < 8; ++i) {
      DP_LOOP_ITER();
      DP_UPDATE(acc);
      acc += i;
    }
    DP_LOOP_END();
  }
  Runtime::instance().detach();

  const ProgramModel model = ProgramModel::from_run(*profiler);
  EXPECT_GT(model.deps().size(), 0u);
  EXPECT_EQ(model.control_flow().loops.size(), 1u);
  EXPECT_EQ(model.call_tree().size(), 2u);  // root + kernel
  EXPECT_GT(model.dep_graph().edge_count(), 0u);
  EXPECT_EQ(model.loop_table().rows().size(), 1u);
  // The carried self-RAW on acc blocks the loop (no reduction hint given).
  EXPECT_FALSE(model.loop_table().rows()[0].parallelizable);
  Runtime::instance().reset();
}

// ---------------------------------------------------------------- Plugins

TEST(PluginTest, RegistryHasBuiltins) {
  auto& reg = PluginRegistry::instance();
  EXPECT_GE(reg.all().size(), 5u);
  EXPECT_NE(reg.find("loop-parallelism"), nullptr);
  EXPECT_NE(reg.find("comm-matrix"), nullptr);
  EXPECT_NE(reg.find("race-report"), nullptr);
  EXPECT_NE(reg.find("hot-deps"), nullptr);
  EXPECT_NE(reg.find("self-parallelism"), nullptr);
  EXPECT_EQ(reg.find("no-such-plugin"), nullptr);
}

TEST(PluginTest, HotDepsRanksByCount) {
  DepMap deps;
  for (int i = 0; i < 5; ++i) deps.add(key(DepType::kRaw, 20, 10), 0);
  deps.add(key(DepType::kRaw, 30, 10), 0);
  ProgramModel model(std::move(deps), {}, {}, {});
  auto plugin = make_hot_deps_plugin(1);
  const std::string out = plugin->run(model);
  EXPECT_NE(out.find("x5"), std::string::npos);
  EXPECT_EQ(out.find("1:30"), std::string::npos);  // only the top entry
}

TEST(PluginTest, SelfParallelismPrefersParallelHotLoops) {
  ControlFlowLog cf;
  LoopRecord par;  // hot, parallel loop
  par.loop_id = SourceLocation(1, 10).packed();
  par.begin_loc = par.loop_id;
  par.end_loc = SourceLocation(1, 20).packed();
  par.iterations = 1000;
  par.entries = 1;
  LoopRecord seq = par;  // equally hot but carried
  seq.loop_id = SourceLocation(1, 40).packed();
  seq.begin_loc = seq.loop_id;
  seq.end_loc = SourceLocation(1, 50).packed();
  cf.loops = {par, seq};

  DepMap deps;
  for (int i = 0; i < 100; ++i) {
    deps.add(key(DepType::kRaw, 15, 12), 0);  // intra-iteration work
    deps.add(key(DepType::kRaw, 45, 42), kLoopCarried, {seq.loop_id, 1, 1, true});
  }
  ProgramModel model(std::move(deps), cf, {}, {});
  const std::string out = make_self_parallelism_plugin()->run(model);
  // The parallel loop (1:10) must rank above the serialized one (1:40).
  EXPECT_LT(out.find("1:10"), out.find("1:40")) << out;
}

TEST(PluginTest, DepDistanceReportsBlockingAdvice) {
  const std::uint32_t loop5 = SourceLocation(1, 5).packed();
  DepMap deps;
  DepKey k = key(DepType::kRaw, 20, 10, var_registry().intern("a"));
  deps.add(k, kLoopCarried, {loop5, 1, 4, true});
  deps.add(k, kLoopCarried, {loop5, 1, 4, true});
  ProgramModel model(std::move(deps), {}, {}, {});
  const std::string out = make_dep_distance_plugin()->run(model);
  // Both instances sit in the d>=2 bucket: a gap of independent iterations
  // remains, so blocking/unrolling advice applies.
  EXPECT_NE(out.find("gapped: blocking/unrolling may apply"),
            std::string::npos)
      << out;

  DepMap serial_deps;
  serial_deps.add(key(DepType::kRaw, 20, 10), kLoopCarried,
                  {loop5, 1, 1, true});
  ProgramModel serial_model(std::move(serial_deps), {}, {}, {});
  EXPECT_NE(make_dep_distance_plugin()->run(serial_model).find(
                "serializing recurrence"),
            std::string::npos);
}

TEST(PluginTest, SelfParallelismUsesBucketForCarriedLoops) {
  ControlFlowLog cf;
  LoopRecord loop;
  loop.loop_id = SourceLocation(1, 10).packed();
  loop.begin_loc = loop.loop_id;
  loop.end_loc = SourceLocation(1, 30).packed();
  loop.iterations = 1000;
  loop.entries = 1;
  cf.loops.push_back(loop);
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 12), kLoopCarried,
           {loop.loop_id, 1, 8, true});
  ProgramModel model(std::move(deps), cf, {}, {});
  const LoopRow& row = model.loop_table().rows()[0];
  EXPECT_FALSE(row.parallelizable);
  EXPECT_EQ(row.verdict, LoopVerdictKind::kSerial);
  // Only d>=2 instances: at least one independent iteration between
  // conflicting ones, so SP floors at 2 rather than serializing fully.
  EXPECT_EQ(row.min_carried_bucket, 2u);
  const std::string out = make_self_parallelism_plugin()->run(model);
  EXPECT_NE(out.find("self-parallelism"), std::string::npos);
}

TEST(PluginTest, CustomPluginCanBeRegistered) {
  class CountPlugin final : public AnalysisPlugin {
   public:
    std::string name() const override { return "dep-count"; }
    std::string description() const override { return "counts dependences"; }
    std::string run(const ProgramModel& model) override {
      return std::to_string(model.deps().size()) + " dependences\n";
    }
  };
  PluginRegistry reg;
  reg.add(std::make_unique<CountPlugin>());
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10), 0);
  ProgramModel model(std::move(deps), {}, {}, {});
  EXPECT_EQ(reg.find("dep-count")->run(model), "1 dependences\n");
}

}  // namespace
}  // namespace depprof
