// Deterministic schedule exploration (ISSUE 7): the controller, the
// ownership/epoch hand-off invariant, the sealed chunk pool, the v4 repro
// format, and the schedule-shrinking rung.
//
// The determinism tests run the real parallel pipeline on trace-based cases
// (synthetic, fixed addresses), where recorded schedules are byte-stable:
// same seed => same grant sequence AND same sites.  Live workloads add
// target-allocator jitter that can shift chunk-fill boundaries (site drift;
// see DESIGN.md), which is why replay follows thread names — but none of
// that applies here, so these tests pin the strong property.

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/chunk.hpp"
#include "oracle/corpus.hpp"
#include "oracle/harness.hpp"
#include "oracle/shrinker.hpp"
#include "sched/sched.hpp"
#include "trace/generators.hpp"

namespace depprof {
namespace {

Trace small_trace() {
  GenParams p;
  p.accesses = 600;
  p.distinct = 128;
  return gen_strided(p);
}

ProfilerConfig sched_cfg(unsigned workers, bool pack) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.workers = workers;
  cfg.chunk_size = 16;
  cfg.pack = pack;
  return cfg;
}

TEST(ScheduleTraceTest, FormatParseRoundTrip) {
  sched::ScheduleTrace t;
  t.steps.push_back({"main", "produce.stage"});
  t.steps.push_back({"w0", "queue.pop"});
  t.steps.push_back({"w1", "pool.release"});
  sched::ScheduleTrace back;
  std::string error;
  ASSERT_TRUE(sched::ScheduleTrace::parse(back, t.format(), &error)) << error;
  ASSERT_EQ(back.steps.size(), 3u);
  EXPECT_EQ(back.steps[1].thread, "w0");
  EXPECT_EQ(back.steps[1].site, "queue.pop");
  EXPECT_EQ(back.format(), t.format());
}

TEST(SchedHarnessTest, RecordingIsDeterministicOnTraceCases) {
  const Trace trace = small_trace();
  const ProfilerConfig cfg = sched_cfg(2, false);
  SchedSpec spec;
  spec.seed = 7;
  spec.algo = sched::Algo::kRandomWalk;
  const CaseOutcome a = run_case(trace, cfg, &spec);
  const CaseOutcome b = run_case(trace, cfg, &spec);
  ASSERT_TRUE(a.ok) << a.detail;
  ASSERT_TRUE(b.ok) << b.detail;
  EXPECT_EQ(a.violations, 0u);
  EXPECT_FALSE(a.schedule.empty());
  // Byte-stable: grants and sites, not just the thread-turn sequence.
  EXPECT_EQ(a.schedule.format(), b.schedule.format());
}

TEST(SchedHarnessTest, SeedsDivergeAndReplayIsFaithful) {
  const Trace trace = small_trace();
  const ProfilerConfig cfg = sched_cfg(2, true);
  SchedSpec explore;
  explore.seed = 1;
  const CaseOutcome rec = run_case(trace, cfg, &explore);
  ASSERT_TRUE(rec.ok) << rec.detail;
  SchedSpec other;
  other.seed = 2;
  const CaseOutcome rec2 = run_case(trace, cfg, &other);
  ASSERT_TRUE(rec2.ok) << rec2.detail;
  EXPECT_NE(rec.schedule.format(), rec2.schedule.format())
      << "different seeds should explore different interleavings";

  SchedSpec replay;
  replay.replay = rec.schedule;
  const CaseOutcome rep = run_case(trace, cfg, &replay);
  ASSERT_TRUE(rep.ok) << rep.detail;
  EXPECT_EQ(rep.sched_divergences, 0u)
      << "replaying a just-recorded schedule on a trace case must not drift";
  EXPECT_EQ(rep.schedule.format(), rec.schedule.format());
}

TEST(SchedHarnessTest, PctExplorationHoldsAtEightWorkers) {
  const Trace trace = small_trace();
  const ProfilerConfig cfg = sched_cfg(8, false);
  SchedSpec spec;
  spec.seed = 3;
  spec.algo = sched::Algo::kPct;
  const CaseOutcome out = run_case(trace, cfg, &spec);
  ASSERT_TRUE(out.ok) << out.detail;
  EXPECT_EQ(out.violations, 0u);
}

TEST(ChunkPoolTest, SealedAcquireBlocksInsteadOfAllocating) {
  ChunkPool pool(4, 4, /*sealed=*/true, WaitKind::kPark);
  ASSERT_EQ(pool.allocated(), 4u);
  Chunk* held[4];
  for (Chunk*& c : held) c = pool.acquire();
  EXPECT_EQ(pool.pool_size(), 0u);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    held[0]->kind = Chunk::Kind::kData;
    pool.release(held[0]);
  });
  Chunk* waited = pool.acquire();  // must block until the release, not new
  releaser.join();
  EXPECT_EQ(waited, held[0]);
  EXPECT_EQ(pool.allocated(), 4u) << "sealed pools never grow";
  EXPECT_GE(pool.acquire_stalls(), 1u);
  pool.release(waited);
  for (int i = 1; i < 4; ++i) pool.release(held[i]);
}

TEST(ChunkPoolTest, RecycledChunkLeaksNoStaleHeader) {
  // Pool of one: the second acquire must hand back the same chunk, and
  // every header field a previous use could have dirtied must be reset —
  // a stale `packed` flag would make the worker misparse the payload.
  ChunkPool pool(1, 1, /*sealed=*/true, WaitKind::kSpin);
  Chunk* c = pool.acquire();
  const std::uint32_t gen_before = c->gen.load();
  c->kind = Chunk::Kind::kMigrateOut;
  c->count = 77;
  c->payload = 5;
  c->addr = 0xdeadbeef;
  c->packed = true;
  c->records = 13;
  c->bytes = 4096;
  c->payload_bytes()[0] = 0xAB;
  pool.release(c);

  Chunk* again = pool.acquire();
  ASSERT_EQ(again, c);
  EXPECT_EQ(again->kind, Chunk::Kind::kData);
  EXPECT_EQ(again->count, 0u);
  EXPECT_EQ(again->payload, 0u);
  EXPECT_EQ(again->addr, 0u);
  EXPECT_FALSE(again->packed);
  EXPECT_EQ(again->records, 0u);
  EXPECT_EQ(again->bytes, 0u);
  EXPECT_GT(again->gen.load(), gen_before) << "recycle bumps the epoch";
  pool.release(again);
}

TEST(ChunkInvariantTest, WrongHandoffBumpsViolationCounter) {
  auto c = std::make_unique<Chunk>();  // owner starts kOwnerPool
  const std::uint64_t before = sched::violation_count();
  // Legal transition: no violation.
  chunk_handoff(*c, Chunk::kOwnerPool, Chunk::kOwnerProducer, "test.legal");
  EXPECT_EQ(sched::violation_count(), before);
  // Double pop: claims producer-owned but it is already worker-owned.
  c->owner.store(Chunk::kOwnerWorker | 3);
  chunk_handoff(*c, Chunk::kOwnerProducer, Chunk::kOwnerWorker | 1,
                "test.double-pop");
  EXPECT_EQ(sched::violation_count(), before + 1);
}

TEST(ReproV4Test, SchedSectionRoundTrips) {
  ReproCase repro;
  repro.note = "sched round trip";
  repro.cfg.workers = 8;
  repro.cfg.pack = false;
  repro.sched = true;
  repro.sched_seed = 42;
  repro.sched_algo = sched::Algo::kPct;
  repro.schedule.steps.push_back({"w0", "queue.pop"});
  repro.schedule.steps.push_back({"main", "produce.stage"});
  AccessEvent ev;
  ev.kind = AccessKind::kWrite;
  ev.addr = 0x1000;
  ev.loc = 1;
  repro.trace.events.push_back(ev);

  const std::string text = format_repro(repro);
  EXPECT_NE(text.find("depfuzz-repro v4"), std::string::npos);
  EXPECT_NE(text.find("sched seed=42 algo=pct"), std::string::npos);
  EXPECT_NE(text.find("sstep w0 queue.pop"), std::string::npos);

  ReproCase back;
  std::string error;
  ASSERT_TRUE(parse_repro(back, text, &error)) << error;
  EXPECT_TRUE(back.sched);
  EXPECT_EQ(back.sched_seed, 42u);
  EXPECT_EQ(back.sched_algo, sched::Algo::kPct);
  ASSERT_EQ(back.schedule.steps.size(), 2u);
  EXPECT_EQ(back.schedule.steps[1].thread, "main");
  EXPECT_EQ(back.schedule.steps[1].site, "produce.stage");
}

TEST(ReproV4Test, ScheduleFreeCasesStillWriteV3) {
  ReproCase repro;
  AccessEvent ev;
  ev.kind = AccessKind::kRead;
  ev.addr = 0x2000;
  repro.trace.events.push_back(ev);
  const std::string text = format_repro(repro);
  EXPECT_NE(text.find("depfuzz-repro v3"), std::string::npos);
  EXPECT_EQ(text.find("sched"), std::string::npos);
  ReproCase back;
  ASSERT_TRUE(parse_repro(back, text));
  EXPECT_FALSE(back.sched);
}

TEST(ReproV4Test, LegacyVersionsRejectSchedDirectives) {
  std::string error;
  ReproCase out;
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect slots=16 sighash=modulo "
                           "mt=0 workers=1 queue=mutex wait=spin chunk=1 "
                           "qcap=4 modulo_routing=0 dedup=0 pack=0\n"
                           "sched seed=1 algo=random\n",
                           &error));
  EXPECT_NE(error.find("requires v4"), std::string::npos) << error;
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v4\n"
                           "config storage=perfect slots=16 sighash=modulo "
                           "mt=0 workers=1 queue=mutex wait=spin chunk=1 "
                           "qcap=4 modulo_routing=0 dedup=0 pack=0\n"
                           "sstep w0 queue.pop\n",
                           &error));
  EXPECT_NE(error.find("before sched"), std::string::npos) << error;
}

TEST(ShrinkScheduleTest, DropsScheduleWhenFailureIsScheduleFree) {
  sched::ScheduleTrace schedule;
  for (int i = 0; i < 32; ++i) schedule.steps.push_back({"w0", "queue.pop"});
  bool dropped = false;
  const sched::ScheduleTrace out = shrink_schedule(
      Trace{}, ProfilerConfig{}, schedule,
      [](const Trace&, const ProfilerConfig&, const sched::ScheduleTrace*) {
        return true;  // fails with or without a controller
      },
      nullptr, &dropped);
  EXPECT_TRUE(dropped);
  EXPECT_TRUE(out.empty());
}

TEST(ShrinkScheduleTest, TruncatesToTheShortestFailingPrefix) {
  sched::ScheduleTrace schedule;
  for (int i = 0; i < 100; ++i)
    schedule.steps.push_back({"w0", "site" + std::to_string(i)});
  bool dropped = false;
  ShrinkStats st;
  const sched::ScheduleTrace out = shrink_schedule(
      Trace{}, ProfilerConfig{}, schedule,
      [](const Trace&, const ProfilerConfig&,
         const sched::ScheduleTrace* s) {
        // Schedule-dependent failure that needs the first 10 steps.
        return s != nullptr && s->steps.size() >= 10;
      },
      &st, &dropped);
  EXPECT_FALSE(dropped);
  EXPECT_EQ(out.steps.size(), 10u);
  EXPECT_EQ(out.steps[9].site, "site9") << "truncation keeps the prefix";
  EXPECT_EQ(st.final_events, 10u);
}

}  // namespace
}  // namespace depprof
