// End-to-end tests of multi-threaded target support (Sec. V): thread ids in
// dependence endpoints, cross-thread RAW detection (communication), race
// detection via timestamp reversal on an intentionally racy kernel, and the
// absence of false races under proper lock regions.

#include <gtest/gtest.h>

#include <thread>

#include "analysis/comm_matrix.hpp"
#include "core/profiler.hpp"
#include "harness/runner.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"
#include "mt/instrumented_mutex.hpp"
#include "mt/race_report.hpp"
#include "oracle/exact_oracle.hpp"
#include "trace/generators.hpp"
#include "workloads/workload.hpp"

DP_FILE("mt_test");

namespace depprof {
namespace {

std::unique_ptr<IProfiler> make_mt_profiler(unsigned workers = 4) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  cfg.workers = workers;
  cfg.queue = QueueKind::kLockFreeMpmc;
  return make_parallel_profiler(cfg);
}

/// Producer thread writes a shared cell under a lock; consumer reads it
/// under the same lock — a clean producer/consumer pattern.
void producer_consumer_kernel(int rounds) {
  double shared = 0.0;
  InstrumentedMutex mu;
  std::thread producer([&] {
    for (int i = 0; i < rounds; ++i) {
      std::lock_guard lock(mu);
      DP_WRITE(shared);
      shared = i;
    }
  });
  std::thread consumer([&] {
    double sink = 0.0;
    for (int i = 0; i < rounds; ++i) {
      std::lock_guard lock(mu);
      DP_READ(shared);
      sink += shared;
    }
    (void)sink;
  });
  producer.join();
  consumer.join();
}

TEST(MtProfiling, CrossThreadRawDetected) {
  auto prof = make_mt_profiler();
  Runtime::instance().reset();
  Runtime::instance().attach(prof.get(), /*mt_mode=*/true);
  producer_consumer_kernel(200);
  Runtime::instance().detach();

  bool cross_raw = false;
  for (const auto& [key, info] : prof->dependences()) {
    if (key.type == DepType::kRaw && (info.flags & kCrossThread)) {
      cross_raw = true;
      EXPECT_NE(key.sink_tid, key.src_tid);
    }
  }
  EXPECT_TRUE(cross_raw);
}

TEST(MtProfiling, NoFalseRacesUnderLockRegions) {
  // Accesses and pushes are atomic inside lock regions (Fig. 4), so the
  // worker must never observe a timestamp reversal.
  auto prof = make_mt_profiler();
  Runtime::instance().reset();
  Runtime::instance().attach(prof.get(), true);
  producer_consumer_kernel(500);
  Runtime::instance().detach();
  const RaceReport report = find_races(prof->dependences());
  EXPECT_EQ(report.confirmed_count(), 0u)
      << format_race_report(report);
}

TEST(MtProfiling, RacyKernelYieldsPotentialRace) {
  // Two threads hammer a shared counter WITHOUT lock regions.  Chunked
  // buffering then decouples access order from push order, and the
  // timestamp check exposes the reversal (Sec. V-B).  The race is real: the
  // unsynchronized counter is exactly what the check is designed to catch.
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  cfg.workers = 2;
  cfg.chunk_size = 64;  // buffering without lock-region flushes
  auto prof = make_parallel_profiler(cfg);

  Runtime::instance().reset();
  Runtime::instance().attach(prof.get(), true);
  std::atomic<int> counter{0};
  auto hammer = [&] {
    for (int i = 0; i < 3000; ++i) {
      DP_READ(counter);
      DP_WRITE(counter);
      counter.fetch_add(1, std::memory_order_relaxed);
      // Interleave the two threads even on a single-core host.
      if (i % 16 == 0) std::this_thread::yield();
    }
  };
  std::thread a(hammer), b(hammer);
  a.join();
  b.join();
  Runtime::instance().detach();

  const RaceReport report = find_races(prof->dependences());
  EXPECT_GT(report.confirmed_count(), 0u);
}

TEST(MtProfiling, WaterSpatialShowsNeighbourPattern) {
  const Workload* w = find_workload("water-spatial");
  ASSERT_NE(w, nullptr);
  const unsigned threads = 4;

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  cfg.workers = 4;
  RunOptions opts;
  opts.target_threads = threads;
  opts.parallel_pipeline = true;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);

  const CommMatrix comm = build_comm_matrix(m.deps, threads + 1);
  // Halo exchange: each worker communicates with its ring neighbours.
  std::uint64_t neighbour = 0, non_neighbour = 0;
  for (unsigned p = 1; p <= threads; ++p) {
    for (unsigned c = 1; c <= threads; ++c) {
      if (p == c) continue;
      const unsigned d = (p > c ? p - c : c - p);
      const bool is_neighbour = d == 1 || d == threads - 1;
      (is_neighbour ? neighbour : non_neighbour) += comm.counts[p][c];
    }
  }
  EXPECT_GT(neighbour, 0u);
  EXPECT_GT(neighbour, non_neighbour * 2)
      << "halo traffic must dominate the banded pattern";

  // Properly synchronized kernel: no confirmed races.
  EXPECT_EQ(find_races(m.deps).confirmed_count(), 0u);
}

TEST(MtProfiling, ThreadIdsAppearInDependenceEndpoints) {
  auto prof = make_mt_profiler();
  Runtime::instance().reset();
  Runtime::instance().attach(prof.get(), true);
  producer_consumer_kernel(50);
  Runtime::instance().detach();
  bool nonzero_tid = false;
  for (const auto& [key, info] : prof->dependences()) {
    (void)info;
    if (key.sink_tid != 0 || key.src_tid != 0) nonzero_tid = true;
  }
  EXPECT_TRUE(nonzero_tid);
}

// ----------------------------------------------------- race-report triage
//
// Unit-level pinning of the Sec. V-B triage rules on hand-built maps and
// generator traces — these failed against the original find_races (flag-OR
// confirmation, no lock suppression, misleading unconfirmed line).

DepKey race_key(DepType type, std::uint32_t sink_line, std::uint32_t src_line,
                std::uint16_t sink_tid, std::uint16_t src_tid) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink_line).packed();
  k.src_loc = SourceLocation(1, src_line).packed();
  k.var = 1;
  k.sink_tid = sink_tid;
  k.src_tid = src_tid;
  return k;
}

TEST(RaceTriage, OneReversalAmongManyDoesNotInflateInstances) {
  // 3000 well-ordered cross-thread instances merge with a single reversed
  // one under the same key.  The OR-merged kReversed flag says "a reversal
  // happened"; the finding must quote how often (1), not the key's total
  // merge count (3001).
  DepMap deps;
  const DepKey k = race_key(DepType::kRaw, 20, 10, 2, 1);
  for (int i = 0; i < 3000; ++i) deps.add(k, kCrossThread);
  deps.add(k, kCrossThread | kReversed);

  const RaceReport r = find_races(deps);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].confirmed);
  EXPECT_EQ(r.findings[0].instances, 1u)
      << "one reversal among 3001 merged instances is one reversal";
  EXPECT_EQ(r.findings[0].total, 3001u);
}

TEST(RaceTriage, FullyLockProtectedKeysAreSuppressedNotUnconfirmed) {
  // Mutex-protected churn: every access of the gen_churn MT interleaving is
  // inside a lock region, so every conflicting pair was mutually excluded
  // by the target itself — no key may surface as an unconfirmed candidate.
  GenParams p;
  p.accesses = 4000;
  p.distinct = 32;
  Trace t = gen_churn(p, /*free_ratio=*/0.05, /*threads=*/4);
  const DepMap deps = oracle_dependences(t, /*mt_targets=*/true);

  const RaceReport r = find_races(deps, /*include_unconfirmed=*/true);
  EXPECT_EQ(r.confirmed_count(), 0u) << format_race_report(r);
  EXPECT_TRUE(r.findings.empty())
      << "lock-protected dependences listed as race candidates:\n"
      << format_race_report(r);
  EXPECT_GT(r.suppressed_by_lock, 0u);
  EXPECT_EQ(r.unconfirmed, 0u);
}

TEST(RaceTriage, PartiallyLockedKeysStayUnconfirmed) {
  // One instance outside lock regions is enough to keep the candidate: the
  // suppression must require *every* observed conflict to be excluded.
  DepMap deps;
  const DepKey k = race_key(DepType::kWaw, 30, 31, 2, 1);
  deps.add(k, kCrossThread | kLockProtected);
  deps.add(k, kCrossThread);

  const RaceReport off = find_races(deps);
  EXPECT_TRUE(off.findings.empty());
  EXPECT_EQ(off.unconfirmed, 1u);
  EXPECT_EQ(off.suppressed_by_lock, 0u);

  const RaceReport on = find_races(deps, /*include_unconfirmed=*/true);
  ASSERT_EQ(on.findings.size(), 1u);
  EXPECT_FALSE(on.findings[0].confirmed);
}

TEST(RaceTriage, FormatRendersActualSuppressionState) {
  // One confirmed race plus one unconfirmed candidate, with unconfirmed
  // listing OFF: the header must say the candidate exists but is not
  // listed — the original code printed findings.size() - confirmed_count(),
  // which is always 0 exactly when unconfirmed findings are excluded.
  DepMap deps;
  deps.add(race_key(DepType::kRaw, 20, 10, 2, 1), kCrossThread | kReversed);
  deps.add(race_key(DepType::kWaw, 21, 11, 2, 1), kCrossThread);
  deps.add(race_key(DepType::kRaw, 22, 12, 2, 1),
           kCrossThread | kLockProtected);

  const std::string hidden = format_race_report(find_races(deps));
  EXPECT_NE(hidden.find("1 confirmed"), std::string::npos) << hidden;
  EXPECT_NE(hidden.find("1 unconfirmed"), std::string::npos) << hidden;
  EXPECT_NE(hidden.find("not listed"), std::string::npos) << hidden;
  EXPECT_NE(hidden.find("1 suppressed by lock regions"), std::string::npos)
      << hidden;

  const std::string listed = format_race_report(find_races(deps, true));
  EXPECT_NE(listed.find("1 unconfirmed"), std::string::npos) << listed;
  EXPECT_EQ(listed.find("not listed"), std::string::npos) << listed;
}

TEST(InstrumentedMutexTest, LockableContract) {
  InstrumentedMutex mu;
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
  {
    std::lock_guard lock(mu);
  }
  {
    std::unique_lock lock(mu, std::try_to_lock);
    EXPECT_TRUE(lock.owns_lock());
  }
}

}  // namespace
}  // namespace depprof
