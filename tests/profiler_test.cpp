// Integration tests of the serial profiler and the parallel pipeline:
// configuration handling, canonical word granularity, and the central
// soundness property — for sequential targets the parallel profiler
// produces exactly the same dependences as the serial one (Sec. V-A's
// premise), across queue kinds, worker counts, chunk sizes, and with the
// load balancer migrating hot addresses mid-run.

#include <gtest/gtest.h>

#include <tuple>

#if defined(__linux__)
#include <sched.h>
#endif

#include "core/formatter.hpp"
#include "core/profiler.hpp"
#include "harness/accuracy.hpp"
#include "instrument/dedup.hpp"
#include "oracle/harness.hpp"
#include "queue/queues.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace depprof {
namespace {

DepMap run_serial(const Trace& t, const ProfilerConfig& cfg) {
  auto p = make_serial_profiler(cfg);
  replay(t, *p);
  return p->take_dependences();
}

DepMap run_parallel(const Trace& t, const ProfilerConfig& cfg) {
  auto p = make_parallel_profiler(cfg);
  replay(t, *p);
  return p->take_dependences();
}

bool same_deps(const DepMap& a, const DepMap& b) {
  const AccuracyResult r = compare_deps(a, b);
  return r.false_positives == 0 && r.false_negatives == 0 &&
         a.size() == b.size();
}

ProfilerConfig perfect_cfg() {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  return cfg;
}

// -------------------------------------------------------------- serial

TEST(SerialProfiler, CountsEvents) {
  GenParams p;
  p.accesses = 1000;
  const Trace t = gen_uniform(p);
  auto prof = make_serial_profiler(perfect_cfg());
  replay(t, *prof);
  EXPECT_EQ(prof->stats().events, 1000u);
}

TEST(SerialProfiler, WordGranularityUnifiesSubWordAccesses) {
  auto prof = make_serial_profiler(perfect_cfg());
  AccessEvent w;
  w.addr = 0x1000;
  w.kind = AccessKind::kWrite;
  w.loc = SourceLocation(1, 10).packed();
  prof->on_access(w);
  AccessEvent r = w;
  r.addr = 0x1002;  // same 4-byte word
  r.kind = AccessKind::kRead;
  r.loc = SourceLocation(1, 20).packed();
  prof->on_access(r);
  prof->finish();
  DepKey k;
  k.type = DepType::kRaw;
  k.sink_loc = SourceLocation(1, 20).packed();
  k.src_loc = SourceLocation(1, 10).packed();
  EXPECT_NE(prof->dependences().find(k), nullptr);
}

TEST(SerialProfiler, AllStorageBackendsRun) {
  GenParams p;
  p.accesses = 5000;
  p.distinct = 500;
  const Trace t = gen_uniform(p);
  for (StorageKind s : {StorageKind::kSignature, StorageKind::kPerfect,
                        StorageKind::kShadow, StorageKind::kHashTable,
                        StorageKind::kPacked}) {
    ProfilerConfig cfg;
    cfg.storage = s;
    cfg.slots = 1u << 16;
    auto prof = make_serial_profiler(cfg);
    replay(t, *prof);
    EXPECT_GT(prof->dependences().size(), 0u) << storage_kind_name(s);
  }
}

TEST(SerialProfiler, ExactBackendsAgree) {
  // Perfect signature, shadow memory, and hash table are all exact: they
  // must produce identical dependence sets on any trace.
  GenParams p;
  p.accesses = 20'000;
  p.distinct = 2'000;
  const Trace t = gen_uniform(p);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  const DepMap perfect = run_serial(t, cfg);
  cfg.storage = StorageKind::kShadow;
  const DepMap shadow = run_serial(t, cfg);
  cfg.storage = StorageKind::kHashTable;
  const DepMap table = run_serial(t, cfg);
  cfg.storage = StorageKind::kPacked;
  const DepMap packed = run_serial(t, cfg);
  EXPECT_TRUE(same_deps(perfect, shadow));
  EXPECT_TRUE(same_deps(perfect, table));
  EXPECT_TRUE(same_deps(perfect, packed));
}

TEST(SerialProfiler, LargeSignatureMatchesPerfectOnSmallTrace) {
  GenParams p;
  p.accesses = 10'000;
  p.distinct = 1'000;
  const Trace t = gen_uniform(p);
  ProfilerConfig sig;
  sig.storage = StorageKind::kSignature;
  sig.slots = 1u << 22;  // far larger than the footprint: zero collisions
  ProfilerConfig perfect = perfect_cfg();
  EXPECT_TRUE(same_deps(run_serial(t, perfect), run_serial(t, sig)));
}

// ------------------------------------------- serial == parallel (property)

struct EquivCase {
  QueueKind queue;
  unsigned workers;
  std::size_t chunk;
  bool modulo_routing;
};

class SerialParallelEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(SerialParallelEquivalence, IdenticalDependences) {
  const EquivCase c = GetParam();
  GenParams p;
  p.accesses = 60'000;
  p.distinct = 3'000;
  p.write_ratio = 0.4;
  const Trace t = gen_uniform(p);

  ProfilerConfig cfg = perfect_cfg();
  const DepMap serial = run_serial(t, cfg);

  cfg.queue = c.queue;
  cfg.workers = c.workers;
  cfg.chunk_size = c.chunk;
  cfg.modulo_routing = c.modulo_routing;
  const DepMap parallel = run_parallel(t, cfg);

  EXPECT_TRUE(same_deps(serial, parallel))
      << queue_kind_name(c.queue) << " workers=" << c.workers
      << " chunk=" << c.chunk;
  // Instance counts must match too, not only the key sets.
  EXPECT_EQ(serial.instances(), parallel.instances());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SerialParallelEquivalence,
    ::testing::Values(EquivCase{QueueKind::kLockFreeSpsc, 1, 512, false},
                      EquivCase{QueueKind::kLockFreeSpsc, 4, 512, false},
                      EquivCase{QueueKind::kLockFreeSpsc, 8, 64, false},
                      EquivCase{QueueKind::kLockFreeSpsc, 16, 1, false},
                      EquivCase{QueueKind::kLockFreeMpmc, 4, 128, false},
                      EquivCase{QueueKind::kMutex, 4, 512, false},
                      EquivCase{QueueKind::kMutex, 8, 32, true},
                      EquivCase{QueueKind::kLockFreeSpsc, 4, 512, true}));

// Oversubscription axis (ISSUE 7): eight workers plus the producer pinned
// to at most two CPUs, so the kernel preempts pipeline threads mid-hand-off
// constantly — the regime where the unpacked cross-attribution flake lived.
// Covers both the packed and unpacked staging paths.
TEST(SerialParallelEquivalence, OversubscribedWorkersMatchSerial) {
#if defined(__linux__)
  cpu_set_t saved;
  CPU_ZERO(&saved);
  if (sched_getaffinity(0, sizeof(saved), &saved) != 0)
    GTEST_SKIP() << "sched_getaffinity unavailable";
  cpu_set_t pinned;
  CPU_ZERO(&pinned);
  CPU_SET(0, &pinned);
  if (CPU_ISSET(1, &saved)) CPU_SET(1, &pinned);
  if (sched_setaffinity(0, sizeof(pinned), &pinned) != 0)
    GTEST_SKIP() << "cannot pin CPUs";

  GenParams p;
  p.accesses = 60'000;
  p.distinct = 3'000;
  p.write_ratio = 0.4;
  const Trace t = gen_uniform(p);
  ProfilerConfig cfg = perfect_cfg();
  const DepMap serial = run_serial(t, cfg);
  cfg.workers = 8;
  cfg.chunk_size = 64;
  cfg.pack = false;
  const DepMap unpacked = run_parallel(t, cfg);
  cfg.pack = true;
  const DepMap packed = run_parallel(t, cfg);

  sched_setaffinity(0, sizeof(saved), &saved);  // before any EXPECT fires

  EXPECT_TRUE(same_deps(serial, unpacked)) << "unpacked staging, workers=8";
  EXPECT_EQ(serial.instances(), unpacked.instances());
  EXPECT_TRUE(same_deps(serial, packed)) << "packed staging, workers=8";
  EXPECT_EQ(serial.instances(), packed.instances());
#else
  GTEST_SKIP() << "CPU affinity is Linux-only";
#endif
}

TEST(ParallelProfiler, EquivalenceOnLoopTrace) {
  GenParams p;
  p.distinct = 500;
  const Trace t = gen_loop(p, /*iters=*/20, /*carried=*/true);
  ProfilerConfig cfg = perfect_cfg();
  const DepMap serial = run_serial(t, cfg);
  cfg.workers = 8;
  const DepMap parallel = run_parallel(t, cfg);
  EXPECT_TRUE(same_deps(serial, parallel));
  // Carried flags survive the pipeline and the merge.
  bool carried_found = false;
  for (const auto& [k, info] : parallel)
    if (k.type == DepType::kRaw && (info.flags & kLoopCarried)) carried_found = true;
  EXPECT_TRUE(carried_found);
}

TEST(ParallelProfiler, EquivalenceWithSignatureStorage) {
  // Signature-based worker state must behave identically whether the
  // address stream is processed by 1 worker or split over 8 — each address
  // is owned by exactly one worker, so its slot history is the same.
  GenParams p;
  p.accesses = 40'000;
  p.distinct = 2'000;
  const Trace t = gen_uniform(p);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 22;  // collision-free regime
  const DepMap serial = run_serial(t, cfg);
  cfg.workers = 8;
  const DepMap parallel = run_parallel(t, cfg);
  EXPECT_TRUE(same_deps(serial, parallel));
}

// ------------------------------------------------------- load balancing

TEST(ParallelProfiler, LoadBalancerPreservesDependences) {
  // Hot-skewed stream with aggressive rebalancing: migrations must never
  // corrupt per-address signature state (FIFO migrate/adopt protocol).
  GenParams p;
  p.accesses = 300'000;
  p.distinct = 2'000;
  const Trace t = gen_zipf(p, 1.4);

  ProfilerConfig cfg = perfect_cfg();
  const DepMap serial = run_serial(t, cfg);

  cfg.workers = 4;
  cfg.chunk_size = 32;
  cfg.load_balance.enabled = true;
  cfg.load_balance.eval_interval_chunks = 200;
  cfg.load_balance.imbalance_threshold = 1.05;
  cfg.load_balance.top_k = 10;
  cfg.load_balance.max_rounds = 64;

  auto prof = make_parallel_profiler(cfg);
  replay(t, *prof);
  const ProfilerStats st = prof->stats();
  EXPECT_GT(st.migrated_addresses, 0u) << "test must actually exercise migration";
  EXPECT_GT(st.redistribution_rounds, 0u);
  EXPECT_TRUE(same_deps(serial, prof->dependences()));
}

TEST(ParallelProfiler, LoadBalancerRespectsMaxRounds) {
  GenParams p;
  p.accesses = 100'000;
  p.distinct = 500;
  const Trace t = gen_zipf(p, 1.5);
  ProfilerConfig cfg = perfect_cfg();
  cfg.workers = 4;
  cfg.chunk_size = 16;
  cfg.load_balance.enabled = true;
  cfg.load_balance.eval_interval_chunks = 50;
  cfg.load_balance.imbalance_threshold = 1.0;
  cfg.load_balance.max_rounds = 3;
  auto prof = make_parallel_profiler(cfg);
  replay(t, *prof);
  EXPECT_LE(prof->stats().redistribution_rounds, 3u);
}

// ------------------------------------------------------------ statistics

TEST(ParallelProfiler, StatsAccountAllEvents) {
  GenParams p;
  p.accesses = 10'000;
  const Trace t = gen_uniform(p);
  ProfilerConfig cfg = perfect_cfg();
  cfg.workers = 4;
  auto prof = make_parallel_profiler(cfg);
  replay(t, *prof);
  const ProfilerStats st = prof->stats();
  EXPECT_EQ(st.events, 10'000u);
  std::uint64_t worker_sum = 0;
  for (auto e : st.worker_events) worker_sum += e;
  EXPECT_EQ(worker_sum, 10'000u);
  EXPECT_GT(st.chunks, 0u);
  EXPECT_EQ(st.worker_busy_sec.size(), 4u);
}

TEST(SerialProfiler, BatchedKernelCountersTrack) {
  GenParams p;
  p.accesses = 5'000;
  p.distinct = 200;
  const Trace t = gen_uniform(p);
  ProfilerConfig cfg = perfect_cfg();

  cfg.batched_detect = true;
  auto batched = make_serial_profiler(cfg);
  replay(t, *batched);
  const obs::StageSnapshot* d = batched->stats().stages.find("detect[0]");
  ASSERT_NE(d, nullptr);
  EXPECT_GT(d->kernel_batches, 0u);
  EXPECT_GT(d->prefetches, 0u);
  // K events ahead within each batch: never more prefetches than events.
  EXPECT_LE(d->prefetches, 5'000u);

  cfg.batched_detect = false;
  auto per_event = make_serial_profiler(cfg);
  replay(t, *per_event);
  const obs::StageSnapshot* e = per_event->stats().stages.find("detect[0]");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kernel_batches, 0u);
  EXPECT_EQ(e->prefetches, 0u);
}

TEST(ParallelProfiler, FinishIsIdempotent) {
  ProfilerConfig cfg = perfect_cfg();
  cfg.workers = 2;
  auto prof = make_parallel_profiler(cfg);
  AccessEvent e;
  e.addr = 0x1000;
  e.kind = AccessKind::kWrite;
  e.loc = SourceLocation(1, 1).packed();
  prof->on_access(e);
  prof->finish();
  prof->finish();  // second finish must be a no-op
  EXPECT_EQ(prof->dependences().size(), 1u);
}

TEST(ParallelProfiler, DestructionWithoutFinishIsSafe) {
  ProfilerConfig cfg = perfect_cfg();
  cfg.workers = 4;
  auto prof = make_parallel_profiler(cfg);
  AccessEvent e;
  e.addr = 0x1000;
  e.kind = AccessKind::kWrite;
  e.loc = SourceLocation(1, 1).packed();
  prof->on_access(e);
  // Dropping the profiler without finish() must join workers, not hang.
}

// ---------------------- all backends × all queues (byte-identical merges)

struct BackendQueueCase {
  StorageKind storage;
  QueueKind queue;
};

class BackendQueueEquivalence
    : public ::testing::TestWithParam<BackendQueueCase> {};

TEST_P(BackendQueueEquivalence, ByteIdenticalMergedMaps) {
  const BackendQueueCase c = GetParam();
  GenParams p;
  p.accesses = 30'000;
  p.distinct = 1'500;
  p.write_ratio = 0.4;
  // Randomize the trace per backend so the matrix does not reuse one stream.
  p.seed = 42 + static_cast<unsigned>(c.storage) * 1337 +
           static_cast<unsigned>(c.queue) * 17;
  const Trace t = gen_uniform(p);

  ProfilerConfig cfg;
  cfg.storage = c.storage;
  // The signature backend only matches serial==parallel in the
  // collision-free regime: the per-worker signatures partition the address
  // set differently than the single serial signature, so collisions (and
  // hence false dependences) would otherwise differ.  The generator's
  // address span is far below this slot count, so modulo indexing is
  // injective for every store.
  cfg.slots = 1u << 18;
  cfg.batched_detect = false;
  const DepMap serial = run_serial(t, cfg);

  // The batched kernel is a pure reorganization of the detect loop: the
  // serial batched run must already reproduce the per-event map byte for
  // byte before the parallel matrix gets involved.
  cfg.batched_detect = true;
  EXPECT_EQ(deps_csv(serial), deps_csv(run_serial(t, cfg)))
      << storage_kind_name(c.storage) << " serial batched != per-event";

  cfg.queue = c.queue;
  cfg.workers = 4;
  cfg.chunk_size = 128;
  // Neither waiting nor the batched kernel is a semantics knob: every
  // wait strategy × kernel combination must reproduce the byte-identical
  // merged map.
  for (bool batched : {false, true}) {
    cfg.batched_detect = batched;
    for (WaitKind wait : {WaitKind::kSpin, WaitKind::kYield, WaitKind::kPark}) {
      cfg.wait = wait;
      auto prof = make_parallel_profiler(cfg);
      ASSERT_NE(prof, nullptr) << storage_kind_name(c.storage);
      replay(t, *prof);
      EXPECT_EQ(deps_csv(serial), deps_csv(prof->dependences()))
          << storage_kind_name(c.storage) << " over "
          << queue_kind_name(c.queue) << " wait=" << wait_kind_name(wait)
          << " batched=" << batched;
    }
  }

  // Front-end reduction axes: the full dedup × pack lattice must reproduce
  // the same merged map, with the deduplicated RLE stream feeding both
  // profilers when dedup is on (the serial baseline above stays raw, so
  // this also asserts dedup is map-preserving per backend and queue).
  const RleStream rle = dedup_stream(t.events.data(), t.events.size());
  cfg.batched_detect = true;
  cfg.wait = WaitKind::kSpin;
  for (bool dedup : {false, true}) {
    for (bool pack : {false, true}) {
      cfg.dedup = dedup;
      cfg.pack = pack;
      {
        auto prof = make_serial_profiler(cfg);
        if (dedup) replay_rle(rle, *prof);
        else replay(t, *prof);
        EXPECT_EQ(deps_csv(serial), deps_csv(prof->dependences()))
            << storage_kind_name(c.storage) << " serial dedup=" << dedup
            << " pack=" << pack;
      }
      auto prof = make_parallel_profiler(cfg);
      ASSERT_NE(prof, nullptr) << storage_kind_name(c.storage);
      if (dedup) replay_rle(rle, *prof);
      else replay(t, *prof);
      EXPECT_EQ(deps_csv(serial), deps_csv(prof->dependences()))
          << storage_kind_name(c.storage) << " over "
          << queue_kind_name(c.queue) << " dedup=" << dedup
          << " pack=" << pack;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackendsAllQueues, BackendQueueEquivalence,
    ::testing::Values(
        BackendQueueCase{StorageKind::kSignature, QueueKind::kLockFreeSpsc},
        BackendQueueCase{StorageKind::kSignature, QueueKind::kLockFreeMpmc},
        BackendQueueCase{StorageKind::kSignature, QueueKind::kMutex},
        BackendQueueCase{StorageKind::kPerfect, QueueKind::kLockFreeSpsc},
        BackendQueueCase{StorageKind::kPerfect, QueueKind::kLockFreeMpmc},
        BackendQueueCase{StorageKind::kPerfect, QueueKind::kMutex},
        BackendQueueCase{StorageKind::kShadow, QueueKind::kLockFreeSpsc},
        BackendQueueCase{StorageKind::kShadow, QueueKind::kLockFreeMpmc},
        BackendQueueCase{StorageKind::kShadow, QueueKind::kMutex},
        BackendQueueCase{StorageKind::kHashTable, QueueKind::kLockFreeSpsc},
        BackendQueueCase{StorageKind::kHashTable, QueueKind::kLockFreeMpmc},
        BackendQueueCase{StorageKind::kHashTable, QueueKind::kMutex},
        BackendQueueCase{StorageKind::kPacked, QueueKind::kLockFreeSpsc},
        BackendQueueCase{StorageKind::kPacked, QueueKind::kLockFreeMpmc},
        BackendQueueCase{StorageKind::kPacked, QueueKind::kMutex}));

// ----------------- sampling axis (ISSUE 8): off / 100% / 50% / 10% duty

class SamplingEquivalence : public ::testing::TestWithParam<StorageKind> {};

TEST_P(SamplingEquivalence, SubsetContractAndSerialParallelIdentity) {
  const StorageKind storage = GetParam();
  GenParams p;
  p.distinct = 400;
  p.seed = 7 + static_cast<unsigned>(storage);
  const Trace t = gen_loop(p, /*iters=*/24, /*carried=*/true);

  ProfilerConfig cfg;
  cfg.storage = storage;
  cfg.slots = 1u << 18;  // collision-free regime for the signature backend
  const DepMap full = run_serial(t, cfg);

  struct Duty {
    unsigned burst, skip;
    const char* name;
  };
  // samp100 keeps every unit (skip = 0): sample_stream is the identity, so
  // the sampled maps must be byte-identical to the unsampled run — the
  // budget=100% no-op guarantee.  The gapped points must satisfy the subset
  // contract instead, and serial == parallel holds at every duty point.
  constexpr Duty kDuties[] = {
      {8, 0, "samp100"}, {4, 4, "samp50"}, {1, 9, "samp10"}};
  for (const Duty& d : kDuties) {
    const Trace sampled = sample_stream(t, d.burst, d.skip);
    const DepMap serial = run_serial(sampled, cfg);
    if (d.skip == 0) {
      EXPECT_EQ(deps_csv(full), deps_csv(serial))
          << storage_kind_name(storage) << ' ' << d.name
          << ": skip=0 must be byte-identical to the unsampled run";
    } else {
      const SubsetReport sub = check_sampled_subset(full, serial);
      EXPECT_TRUE(sub.ok)
          << storage_kind_name(storage) << ' ' << d.name << ": " << sub.detail;
      EXPECT_GT(sub.sampled_edges, 0u)
          << storage_kind_name(storage) << ' ' << d.name
          << ": sampled run kept no evidence at all";
      EXPECT_LE(sub.recall, 1.0);
    }
    ProfilerConfig pcfg = cfg;
    pcfg.workers = 4;
    pcfg.chunk_size = 64;
    const DepMap parallel = run_parallel(sampled, pcfg);
    EXPECT_EQ(deps_csv(serial), deps_csv(parallel))
        << storage_kind_name(storage) << ' ' << d.name
        << ": serial != parallel on the sampled stream";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SamplingEquivalence,
                         ::testing::Values(StorageKind::kSignature,
                                           StorageKind::kPerfect,
                                           StorageKind::kShadow,
                                           StorageKind::kHashTable,
                                           StorageKind::kPacked));

}  // namespace
}  // namespace depprof
