// Tests for the Sec. VII analyses: loop-parallelism discovery and the
// communication matrix, plus the race-report extraction of Sec. V-B.

#include <gtest/gtest.h>

#include "analysis/comm_matrix.hpp"
#include "analysis/loop_parallelism.hpp"
#include "mt/race_report.hpp"

namespace depprof {
namespace {

DepKey key(DepType type, std::uint32_t sink_line, std::uint32_t src_line,
           std::uint16_t sink_tid = 0, std::uint16_t src_tid = 0) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink_line).packed();
  k.src_loc = src_line ? SourceLocation(1, src_line).packed() : 0;
  k.sink_tid = sink_tid;
  k.src_tid = src_tid;
  return k;
}

LoopRecord loop(std::uint32_t begin, std::uint32_t end) {
  LoopRecord l;
  l.loop_id = SourceLocation(1, begin).packed();
  l.begin_loc = SourceLocation(1, begin).packed();
  l.end_loc = SourceLocation(1, end).packed();
  l.iterations = 100;
  return l;
}

// ------------------------------------------------------- loop parallelism

TEST(LoopParallelism, NoDepsMeansParallelizable) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].parallelizable);
}

TEST(LoopParallelism, CarriedRawBlocks) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried,
           SourceLocation(1, 10).packed());
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].parallelizable);
  ASSERT_EQ(verdicts[0].blockers.size(), 1u);
}

TEST(LoopParallelism, CarriedByOtherLoopDoesNotBlock) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  cf.loops.push_back(loop(12, 18));  // inner loop
  DepMap deps;
  // Carried by the *inner* loop only.
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried,
           SourceLocation(1, 12).packed());
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].parallelizable) << "outer not blocked by inner-carried";
  EXPECT_FALSE(verdicts[1].parallelizable);
}

TEST(LoopParallelism, CarriedWarAndWawDoNotBlock) {
  // Privatizable dependences (WAR/WAW) do not prevent parallelization.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kWar, 15, 16), kLoopCarried, SourceLocation(1, 10).packed());
  deps.add(key(DepType::kWaw, 15, 15), kLoopCarried, SourceLocation(1, 10).packed());
  const auto verdicts = analyze_loops(deps, cf);
  EXPECT_TRUE(verdicts[0].parallelizable);
}

TEST(LoopParallelism, DepOutsideLoopRangeIgnored) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 25, 26), kLoopCarried,
           SourceLocation(1, 10).packed());  // lines outside [10, 20]
  const auto verdicts = analyze_loops(deps, cf);
  EXPECT_TRUE(verdicts[0].parallelizable);
}

TEST(LoopParallelism, ReductionSelfDepFiltered) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 15), kLoopCarried,
           SourceLocation(1, 10).packed());
  LoopAnalysisOptions opts;
  opts.reduction_lines = {SourceLocation(1, 15).packed()};
  EXPECT_TRUE(analyze_loops(deps, cf, opts)[0].parallelizable);
  // Without the reduction hint the same dependence blocks.
  EXPECT_FALSE(analyze_loops(deps, cf)[0].parallelizable);
}

TEST(LoopParallelism, CrossLoopBackwardHeuristicBlocks) {
  // Dependence with no shared dynamic context (deep nesting): a backward
  // source-order dependence inside the loop body is conservatively carried.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 25), kCrossLoop, 0);  // src after sink
  EXPECT_FALSE(analyze_loops(deps, cf)[0].parallelizable);
  DepMap fwd;
  fwd.add(key(DepType::kRaw, 25, 15), kCrossLoop, 0);  // forward: fine
  EXPECT_TRUE(analyze_loops(fwd, cf)[0].parallelizable);
}

TEST(LoopParallelism, FormatListsVerdictsAndBlockers) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried,
           SourceLocation(1, 10).packed());
  const auto verdicts = analyze_loops(deps, cf);
  const std::string out = format_loop_verdicts(verdicts);
  EXPECT_NE(out.find("NOT parallelizable"), std::string::npos);
  EXPECT_NE(out.find("blocked by RAW"), std::string::npos);
}

// --------------------------------------------------------- comm matrix

TEST(CommMatrix, CrossThreadRawCounts) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, /*sink=*/2, /*src=*/1), kCrossThread);
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread);
  deps.add(key(DepType::kRaw, 21, 11, 3, 2), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps);
  ASSERT_EQ(m.threads(), 4u);
  EXPECT_EQ(m.counts[1][2], 2u);  // producer 1 -> consumer 2
  EXPECT_EQ(m.counts[2][3], 1u);
  EXPECT_EQ(m.total(), 3u);
}

TEST(CommMatrix, SameThreadAndNonRawExcluded) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 1, 1), 0);             // same thread
  deps.add(key(DepType::kWar, 20, 10, 2, 1), kCrossThread);  // not RAW
  deps.add(key(DepType::kWaw, 20, 10, 2, 1), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps, 4);
  EXPECT_EQ(m.total(), 0u);
}

TEST(CommMatrix, ExplicitSizeClampsIds) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 9, 1), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps, 4);  // tid 9 out of range
  EXPECT_EQ(m.threads(), 4u);
  EXPECT_EQ(m.total(), 0u);
}

TEST(CommMatrix, FormatRendersHeatmap) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 1, 0), kCrossThread);
  const std::string art = format_comm_matrix(build_comm_matrix(deps, 2));
  EXPECT_NE(art.find("producer"), std::string::npos);
  EXPECT_NE(art.find("consumer"), std::string::npos);
}

// ---------------------------------------------------------- race report

TEST(RaceReport, ReversedDepsAreConfirmedRaces) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread | kReversed);
  deps.add(key(DepType::kWaw, 21, 11, 2, 1), kCrossThread);
  const RaceReport r = find_races(deps);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].confirmed);
  EXPECT_EQ(r.confirmed_count(), 1u);
}

TEST(RaceReport, UnconfirmedCrossThreadDepsOptional) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread);
  EXPECT_EQ(find_races(deps).findings.size(), 0u);
  const RaceReport r = find_races(deps, /*include_unconfirmed=*/true);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_FALSE(r.findings[0].confirmed);
}

TEST(RaceReport, InitNeverReported) {
  DepMap deps;
  deps.add(key(DepType::kInit, 20, 0), kReversed);
  EXPECT_TRUE(find_races(deps, true).findings.empty());
}

TEST(RaceReport, FormatMentionsConfirmation) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread | kReversed);
  const std::string out = format_race_report(find_races(deps));
  EXPECT_NE(out.find("[RACE]"), std::string::npos);
  EXPECT_NE(out.find("timestamp reversal"), std::string::npos);
}

}  // namespace
}  // namespace depprof
