// Tests for the Sec. VII analyses: loop-parallelism discovery and the
// communication matrix, plus the race-report extraction of Sec. V-B.

#include <gtest/gtest.h>

#include "analysis/comm_matrix.hpp"
#include "analysis/loop_parallelism.hpp"
#include "analysis/report.hpp"
#include "harness/runner.hpp"
#include "instrument/runtime.hpp"
#include "mt/race_report.hpp"
#include "workloads/workload.hpp"

namespace depprof {
namespace {

DepKey key(DepType type, std::uint32_t sink_line, std::uint32_t src_line,
           std::uint16_t sink_tid = 0, std::uint16_t src_tid = 0) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink_line).packed();
  k.src_loc = src_line ? SourceLocation(1, src_line).packed() : 0;
  k.sink_tid = sink_tid;
  k.src_tid = src_tid;
  return k;
}

LoopRecord loop(std::uint32_t begin, std::uint32_t end) {
  LoopRecord l;
  l.loop_id = SourceLocation(1, begin).packed();
  l.begin_loc = SourceLocation(1, begin).packed();
  l.end_loc = SourceLocation(1, end).packed();
  l.iterations = 100;
  return l;
}

/// Nest attribution carried by loop `begin_line` at nest depth `level` with
/// the given carried distance.
DepAttribution at(std::uint32_t begin_line, std::uint32_t level,
                  std::uint32_t dist) {
  return {SourceLocation(1, begin_line).packed(), level, dist, true};
}

// ------------------------------------------------------- loop parallelism

TEST(LoopParallelism, NoDepsMeansParallelizable) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].kind, LoopVerdictKind::kDoallSafe);
  EXPECT_TRUE(verdicts[0].parallelizable());
}

TEST(LoopParallelism, CarriedRawBlocks) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried, at(10, 1, 1));
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_EQ(verdicts[0].kind, LoopVerdictKind::kSerial);
  EXPECT_FALSE(verdicts[0].parallelizable());
  ASSERT_EQ(verdicts[0].blockers.size(), 1u);
}

TEST(LoopParallelism, CarriedByOtherLoopDoesNotBlock) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  cf.loops.push_back(loop(12, 18));  // inner loop
  DepMap deps;
  // Innermost common loop of the endpoints is the *inner* loop.
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried, at(12, 2, 1));
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].parallelizable()) << "outer not blocked by inner-carried";
  EXPECT_FALSE(verdicts[1].parallelizable());
}

TEST(LoopParallelism, IterationLocalDepDoesNotBlock) {
  // A distance-0 attribution at the loop's level is not carried: the
  // endpoints execute in the same iteration.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), 0, at(10, 1, 0));
  const auto verdicts = analyze_loops(deps, cf);
  EXPECT_EQ(verdicts[0].kind, LoopVerdictKind::kDoallSafe);
}

TEST(LoopParallelism, CrossLoopWithoutCommonLoopDoesNotBlock) {
  // Endpoints in disjoint dynamic nests share no loop: nothing carries the
  // dependence, whatever the source order.  (The old source-order heuristic
  // for backward cross-loop dependences is gone — attribution decides.)
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 25), kCrossLoop, {});  // src after sink
  EXPECT_EQ(analyze_loops(deps, cf)[0].kind, LoopVerdictKind::kDoallSafe);
}

TEST(LoopParallelism, CarriedWarAndWawArePrivatizable) {
  // WAR/WAW carried by the loop do not prevent parallelization; they are
  // reported as privatization work.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kWar, 15, 16), kLoopCarried, at(10, 1, 1));
  deps.add(key(DepType::kWaw, 15, 15), kLoopCarried, at(10, 1, 2));
  const auto verdicts = analyze_loops(deps, cf);
  EXPECT_EQ(verdicts[0].kind, LoopVerdictKind::kDoallSafe);
  EXPECT_TRUE(verdicts[0].parallelizable());
  EXPECT_EQ(verdicts[0].privatizable.size(), 2u);
}

TEST(LoopParallelism, WarWawPrivatizableAtEveryNestLevel) {
  // Three nested loops, each carrying a WAR/WAW at its own level: every
  // level stays parallelizable and lists its own privatization work.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 40));
  cf.loops.push_back(loop(12, 30));
  cf.loops.push_back(loop(14, 20));
  DepMap deps;
  deps.add(key(DepType::kWar, 15, 16), kLoopCarried, at(10, 1, 1));
  deps.add(key(DepType::kWaw, 17, 17), kLoopCarried, at(12, 2, 1));
  deps.add(key(DepType::kWar, 18, 19), kLoopCarried, at(14, 3, 2));
  const auto verdicts = analyze_loops(deps, cf);
  ASSERT_EQ(verdicts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(verdicts[i].kind, LoopVerdictKind::kDoallSafe) << "loop " << i;
    EXPECT_EQ(verdicts[i].privatizable.size(), 1u) << "loop " << i;
  }
}

TEST(LoopParallelism, ReductionSelfDepFiltered) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 15), kLoopCarried, at(10, 1, 1));
  LoopAnalysisOptions opts;
  opts.reduction_lines = {SourceLocation(1, 15).packed()};
  const auto hinted = analyze_loops(deps, cf, opts);
  EXPECT_EQ(hinted[0].kind, LoopVerdictKind::kReductionSuspect);
  EXPECT_TRUE(hinted[0].parallelizable());
  ASSERT_EQ(hinted[0].reductions.size(), 1u);
  // Without the reduction hint the same dependence blocks.
  EXPECT_EQ(analyze_loops(deps, cf)[0].kind, LoopVerdictKind::kSerial);
}

TEST(LoopParallelism, ReductionFilteredAtEveryNestLevel) {
  // A reduction update carried by an inner loop must also be filtered when
  // the same line's dependence is attributed to an outer level (the sum
  // crosses outer iterations too).
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 40));
  cf.loops.push_back(loop(12, 30));
  cf.loops.push_back(loop(14, 20));
  DepMap deps;
  const DepKey k = key(DepType::kRaw, 15, 15);
  deps.add(k, kLoopCarried, at(14, 3, 1));  // carried by innermost
  deps.add(k, kLoopCarried, at(12, 2, 1));  // and across middle iterations
  deps.add(k, kLoopCarried, at(10, 1, 1));  // and across outer iterations
  LoopAnalysisOptions opts;
  opts.reduction_lines = {SourceLocation(1, 15).packed()};
  const auto verdicts = analyze_loops(deps, cf, opts);
  ASSERT_EQ(verdicts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(verdicts[i].kind, LoopVerdictKind::kReductionSuspect)
        << "loop " << i;
    EXPECT_TRUE(verdicts[i].parallelizable()) << "loop " << i;
  }
  // Without the hint all three levels are serial.
  for (const auto& v : analyze_loops(deps, cf))
    EXPECT_EQ(v.kind, LoopVerdictKind::kSerial);
}

TEST(LoopParallelism, FormatListsVerdictsAndBlockers) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried, at(10, 1, 1));
  const auto verdicts = analyze_loops(deps, cf);
  const std::string out = format_loop_verdicts(verdicts);
  EXPECT_NE(out.find("serial"), std::string::npos);
  EXPECT_NE(out.find("blocked by carried RAW"), std::string::npos);
}

TEST(LoopParallelism, FormatNamesReductionsAndPrivatization) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 15), kLoopCarried, at(10, 1, 1));
  deps.add(key(DepType::kWar, 16, 17), kLoopCarried, at(10, 1, 1));
  LoopAnalysisOptions opts;
  opts.reduction_lines = {SourceLocation(1, 15).packed()};
  const std::string out = format_loop_verdicts(analyze_loops(deps, cf, opts));
  EXPECT_NE(out.find("reduction-suspect"), std::string::npos);
  EXPECT_NE(out.find("reduction update at"), std::string::npos);
  EXPECT_NE(out.find("privatize"), std::string::npos);
}

// ------------------------------------------------------------- report

TEST(Report, TextTreeIndentsNestedLoops) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  cf.loops.push_back(loop(12, 20));
  const std::uint32_t outer = cf.loops[0].loop_id;
  const std::uint32_t inner = cf.loops[1].loop_id;
  cf.edges.push_back({0, outer, 1});
  cf.edges.push_back({outer, inner, 5});
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried, at(12, 2, 1));
  const auto verdicts = analyze_loops(deps, cf);
  const std::string out = render_loop_report(verdicts, cf);
  // Outer at column 0, inner indented beneath it, each with its verdict.
  EXPECT_NE(out.find("loop 1:10-1:30"), std::string::npos) << out;
  EXPECT_NE(out.find("\n  loop 1:12-1:20"), std::string::npos) << out;
  EXPECT_LT(out.find("1:10"), out.find("1:12"));
  EXPECT_NE(out.find("verdict=DOALL-safe"), std::string::npos);
  EXPECT_NE(out.find("verdict=serial"), std::string::npos);
  EXPECT_NE(out.find("blocked by carried RAW"), std::string::npos);
}

TEST(Report, JsonNestsChildrenAndFlags) {
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 30));
  cf.loops.push_back(loop(12, 20));
  cf.edges.push_back({0, cf.loops[0].loop_id, 1});
  cf.edges.push_back({cf.loops[0].loop_id, cf.loops[1].loop_id, 5});
  DepMap deps;
  deps.add(key(DepType::kRaw, 15, 16), kLoopCarried, at(12, 2, 1));
  ReportOptions opts;
  opts.json = true;
  const std::string out =
      render_loop_report(analyze_loops(deps, cf), cf, opts);
  // The inner loop's object appears inside the outer loop's children array.
  const auto outer_pos = out.find("\"loop\":\"1:10\"");
  const auto children = out.find("\"children\":[", outer_pos);
  const auto inner_pos = out.find("\"loop\":\"1:12\"");
  ASSERT_NE(outer_pos, std::string::npos) << out;
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(children, inner_pos);
  EXPECT_NE(out.find("\"parallelizable\":false"), std::string::npos);
  EXPECT_NE(out.find("\"verdict\":\"serial\""), std::string::npos);
}

TEST(Report, LoopsUnreachableFromNestTreeStillRender) {
  // A replayed run has verdicts but no nest edges: every loop must still
  // appear (at top level) rather than being silently dropped.
  ControlFlowLog cf;
  cf.loops.push_back(loop(10, 20));
  cf.loops.push_back(loop(30, 40));
  DepMap deps;
  const std::string out = render_loop_report(analyze_loops(deps, cf), cf);
  EXPECT_NE(out.find("loop 1:10-1:20"), std::string::npos) << out;
  EXPECT_NE(out.find("loop 1:30-1:40"), std::string::npos);
}

TEST(Report, CheckScoresVerdictsAgainstTruth) {
  std::vector<LoopVerdict> verdicts(3);
  verdicts[0].loop = loop(10, 20);
  verdicts[0].kind = LoopVerdictKind::kDoallSafe;
  verdicts[1].loop = loop(30, 40);
  verdicts[1].kind = LoopVerdictKind::kSerial;
  verdicts[2].loop = loop(50, 60);
  verdicts[2].kind = LoopVerdictKind::kReductionSuspect;

  // Reduction-suspect counts as parallelizable (Table II semantics).
  const ReportCheck ok = check_verdicts(
      verdicts, {{"a", true}, {"b", false}, {"c", true}});
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.matched, 3u);
  EXPECT_EQ(ok.total, 3u);

  const ReportCheck bad = check_verdicts(
      verdicts, {{"a", true}, {"b", true}, {"c", true}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.matched, 2u);
  ASSERT_EQ(bad.mismatches.size(), 1u);
  EXPECT_NE(bad.mismatches[0].find("b"), std::string::npos);
  EXPECT_NE(bad.mismatches[0].find("serial"), std::string::npos);

  // A loop-count mismatch is itself a failure, even if the prefix agrees.
  const ReportCheck counts =
      check_verdicts(verdicts, {{"a", true}, {"b", false}});
  EXPECT_FALSE(counts.ok());
  EXPECT_NE(counts.mismatches[0].find("count mismatch"), std::string::npos);
}

TEST(Report, GoldenIsWorkloadMatchesOmpTruth) {
  // End-to-end golden: profile the NAS IS analogue with perfect storage and
  // pin each loop's verdict against the OpenMP annotation ground truth —
  // histogram parallel via reduction, prefix and permute serial (scan and
  // cursor recurrence), verify DOALL.
  const Workload* w = find_workload("is");
  ASSERT_NE(w, nullptr);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  RunOptions opts;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);
  LoopAnalysisOptions ao;
  ao.reduction_lines = Runtime::instance().reduction_lines();
  const auto verdicts = analyze_loops(m.deps, m.control_flow, ao);
  ASSERT_EQ(verdicts.size(), 4u);
  EXPECT_EQ(verdicts[0].kind, LoopVerdictKind::kReductionSuspect);
  EXPECT_EQ(verdicts[1].kind, LoopVerdictKind::kSerial);
  EXPECT_EQ(verdicts[2].kind, LoopVerdictKind::kSerial);
  EXPECT_EQ(verdicts[3].kind, LoopVerdictKind::kDoallSafe);

  std::vector<LoopExpectation> truth;
  for (const LoopTruth& t : w->loops)
    truth.push_back({t.label, t.parallelizable});
  const ReportCheck chk = check_verdicts(verdicts, truth);
  EXPECT_TRUE(chk.ok()) << (chk.mismatches.empty() ? ""
                                                   : chk.mismatches[0]);
  EXPECT_EQ(chk.matched, 4u);

  const std::string text = render_loop_report(verdicts, m.control_flow);
  EXPECT_NE(text.find("verdict=reduction-suspect"), std::string::npos) << text;
  EXPECT_NE(text.find("reduction update at"), std::string::npos);
  EXPECT_NE(text.find("verdict=DOALL-safe"), std::string::npos);
}

// --------------------------------------------------------- comm matrix

TEST(CommMatrix, CrossThreadRawCounts) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, /*sink=*/2, /*src=*/1), kCrossThread);
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread);
  deps.add(key(DepType::kRaw, 21, 11, 3, 2), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps);
  ASSERT_EQ(m.threads(), 4u);
  EXPECT_EQ(m.counts[1][2], 2u);  // producer 1 -> consumer 2
  EXPECT_EQ(m.counts[2][3], 1u);
  EXPECT_EQ(m.total(), 3u);
}

TEST(CommMatrix, SameThreadAndNonRawExcluded) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 1, 1), 0);             // same thread
  deps.add(key(DepType::kWar, 20, 10, 2, 1), kCrossThread);  // not RAW
  deps.add(key(DepType::kWaw, 20, 10, 2, 1), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps, 4);
  EXPECT_EQ(m.total(), 0u);
}

TEST(CommMatrix, ExplicitSizeClampsIds) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 9, 1), kCrossThread);
  const CommMatrix m = build_comm_matrix(deps, 4);  // tid 9 out of range
  EXPECT_EQ(m.threads(), 4u);
  EXPECT_EQ(m.total(), 0u);
}

TEST(CommMatrix, FormatRendersHeatmap) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 1, 0), kCrossThread);
  const std::string art = format_comm_matrix(build_comm_matrix(deps, 2));
  EXPECT_NE(art.find("producer"), std::string::npos);
  EXPECT_NE(art.find("consumer"), std::string::npos);
}

// ---------------------------------------------------------- race report

TEST(RaceReport, ReversedDepsAreConfirmedRaces) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread | kReversed);
  deps.add(key(DepType::kWaw, 21, 11, 2, 1), kCrossThread);
  const RaceReport r = find_races(deps);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_TRUE(r.findings[0].confirmed);
  EXPECT_EQ(r.confirmed_count(), 1u);
}

TEST(RaceReport, UnconfirmedCrossThreadDepsOptional) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread);
  EXPECT_EQ(find_races(deps).findings.size(), 0u);
  const RaceReport r = find_races(deps, /*include_unconfirmed=*/true);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_FALSE(r.findings[0].confirmed);
}

TEST(RaceReport, InitNeverReported) {
  DepMap deps;
  deps.add(key(DepType::kInit, 20, 0), kReversed);
  EXPECT_TRUE(find_races(deps, true).findings.empty());
}

TEST(RaceReport, FormatMentionsConfirmation) {
  DepMap deps;
  deps.add(key(DepType::kRaw, 20, 10, 2, 1), kCrossThread | kReversed);
  const std::string out = format_race_report(find_races(deps));
  EXPECT_NE(out.find("[RACE]"), std::string::npos);
  EXPECT_NE(out.find("timestamp reversal"), std::string::npos);
}

}  // namespace
}  // namespace depprof
