// Tests for the instrumentation runtime and macros: event assembly, loop
// context tracking (entries, iterations, three-level nesting), control-flow
// records, lifetime events, lock regions, thread ids, timestamps, and the
// disabled-runtime fast path.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/timer.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"
#include "trace/nest.hpp"
#include "trace/trace.hpp"

DP_FILE("instrument_test");

namespace depprof {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override { Runtime::instance().reset(); }
  void TearDown() override {
    Runtime::instance().detach();
    Runtime::instance().reset();
  }

  TraceRecorder recorder_;
  Trace& capture() {
    Runtime::instance().detach();
    return recorder_.trace();
  }
};

TEST_F(RuntimeTest, DisabledRuntimeEmitsNothing) {
  int x = 0;
  DP_WRITE(x);
  x = 1;
  DP_READ(x);
  EXPECT_EQ(x, 1);
  Runtime::instance().attach(&recorder_);
  Runtime::instance().detach();
  EXPECT_TRUE(recorder_.trace().events.empty());
}

TEST_F(RuntimeTest, RecordsAddressKindLocationVar) {
  Runtime::instance().attach(&recorder_);
  double value = 0.0;
  DP_WRITE(value);
  value = 1.0;
  DP_READ(value);
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].addr, reinterpret_cast<std::uintptr_t>(&value));
  EXPECT_TRUE(t.events[0].is_write());
  EXPECT_TRUE(t.events[1].is_read());
  EXPECT_EQ(t.events[0].addr, t.events[1].addr);
  EXPECT_LT(t.events[0].location().line(), t.events[1].location().line());
  EXPECT_EQ(var_registry().name(t.events[0].var), "value");
}

TEST_F(RuntimeTest, LoopContextAttachedToAccesses) {
  Runtime::instance().attach(&recorder_);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 3; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 3u);
  const std::uint32_t ctx = t.events[0].ctx;
  ASSERT_NE(ctx, NestForest::kRoot);
  EXPECT_NE(nest_forest().loop(ctx), 0u);
  EXPECT_EQ(nest_forest().depth(ctx), 1u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(t.events[i].ctx, ctx) << "one dynamic entry, one context";
    EXPECT_EQ(t.events[i].iters[0], static_cast<std::uint32_t>(i + 1));
  }
}

TEST_F(RuntimeTest, LoopEntriesAreDistinct) {
  Runtime::instance().attach(&recorder_);
  int a = 0;
  for (int round = 0; round < 2; ++round) {
    DP_LOOP_BEGIN();
    for (int i = 0; i < 2; ++i) {
      DP_LOOP_ITER();
      DP_WRITE(a);
      a = i;
    }
    DP_LOOP_END();
  }
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 4u);
  // Same static loop, but each DP_LOOP_BEGIN interns a fresh forest node:
  // the two rounds are distinguishable dynamic entries.
  EXPECT_EQ(nest_forest().loop(t.events[0].ctx),
            nest_forest().loop(t.events[2].ctx));
  EXPECT_NE(t.events[0].ctx, t.events[2].ctx);
}

TEST_F(RuntimeTest, ThreeLevelNestingRecorded) {
  Runtime::instance().attach(&recorder_);
  int a = 0;
  DP_LOOP_BEGIN();  // outer
  DP_LOOP_ITER();
  {
    DP_LOOP_BEGIN();  // middle
    DP_LOOP_ITER();
    {
      DP_LOOP_BEGIN();  // inner
      DP_LOOP_ITER();
      DP_WRITE(a);
      a = 1;
      DP_LOOP_END();
    }
    DP_LOOP_END();
  }
  DP_LOOP_END();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 1u);
  const AccessEvent& e = t.events[0];
  const NestForest& forest = nest_forest();
  ASSERT_EQ(forest.depth(e.ctx), 3u);
  const std::uint32_t inner = e.ctx;
  const std::uint32_t middle = forest.parent(inner);
  const std::uint32_t outer = forest.parent(middle);
  EXPECT_EQ(forest.parent(outer), NestForest::kRoot);
  EXPECT_NE(forest.loop(inner), 0u);
  EXPECT_NE(forest.loop(middle), 0u);
  EXPECT_NE(forest.loop(outer), 0u);
  EXPECT_NE(forest.loop(inner), forest.loop(middle));
  EXPECT_NE(forest.loop(middle), forest.loop(outer));
  // Root-anchored iteration window: one DP_LOOP_ITER at each level.
  EXPECT_EQ(e.iters[0], 1u);
  EXPECT_EQ(e.iters[1], 1u);
  EXPECT_EQ(e.iters[2], 1u);
}

TEST_F(RuntimeTest, NestEdgesFormLoopTree) {
  Runtime::instance().attach(&recorder_);
  int a = 0;
  DP_LOOP_BEGIN();  // outer
  DP_LOOP_ITER();
  {
    DP_LOOP_BEGIN();  // inner
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = 1;
    DP_LOOP_END();
  }
  DP_LOOP_END();
  Runtime::instance().detach();
  const ControlFlowLog cf = Runtime::instance().control_flow();
  ASSERT_EQ(cf.loops.size(), 2u);
  const std::uint32_t outer_id = cf.loops[0].loop_id;
  const std::uint32_t inner_id = cf.loops[1].loop_id;
  ASSERT_EQ(cf.edges.size(), 2u);
  EXPECT_EQ(cf.children_of(0), std::vector<std::uint32_t>{outer_id});
  EXPECT_EQ(cf.children_of(outer_id), std::vector<std::uint32_t>{inner_id});
  EXPECT_FALSE(cf.has_parent(outer_id));
  EXPECT_TRUE(cf.has_parent(inner_id));
}

TEST_F(RuntimeTest, StrayLoopMarkersAreCountedNotFatal) {
  // DP_LOOP_ITER / DP_LOOP_END on an empty per-thread loop stack (mismatched
  // instrumentation, or a thread entering mid-loop) must be ignored and
  // counted — never pop or advance another frame.
  Runtime::instance().attach(&recorder_);
  int a = 0;
  DP_LOOP_ITER();
  DP_LOOP_END();
  DP_WRITE(a);
  a = 1;
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].ctx, NestForest::kRoot) << "no nest context fabricated";
  const ControlFlowLog cf = Runtime::instance().control_flow();
  EXPECT_EQ(cf.stray_iters, 1u);
  EXPECT_EQ(cf.stray_ends, 1u);
  EXPECT_TRUE(cf.loops.empty());
}

TEST_F(RuntimeTest, ThreadEnteringMidLoopKeepsOwnNestCursor) {
  // An MT target thread that starts inside another thread's loop sees that
  // loop's iteration and end markers without ever having opened a frame.
  // Its accesses stay context-free and the opener's nest is untouched.
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  int a = 0;
  DP_LOOP_BEGIN();
  DP_LOOP_ITER();
  std::thread worker([&] {
    DP_LOOP_ITER();  // stray: this thread never entered the loop
    DP_WRITE(a);
    DP_LOOP_END();  // stray: must not pop the opener's frame
  });
  worker.join();
  DP_WRITE(a);
  a = 1;
  DP_LOOP_END();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  const std::uint16_t main_tid = Runtime::instance().thread_id();
  for (const auto& e : t.events) {
    if (e.tid == main_tid) {
      EXPECT_NE(e.ctx, NestForest::kRoot);
      EXPECT_EQ(e.iters[0], 1u);
    } else {
      EXPECT_EQ(e.ctx, NestForest::kRoot);
    }
  }
  const ControlFlowLog cf = Runtime::instance().control_flow();
  EXPECT_EQ(cf.stray_iters, 1u);
  EXPECT_EQ(cf.stray_ends, 1u);
  ASSERT_EQ(cf.loops.size(), 1u);
  EXPECT_EQ(cf.loops[0].entries, 1u);
  EXPECT_EQ(cf.loops[0].iterations, 1u);
}

TEST_F(RuntimeTest, ControlFlowLogRecordsLoops) {
  Runtime::instance().attach(&recorder_);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 5; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  Runtime::instance().detach();
  const ControlFlowLog cf = Runtime::instance().control_flow();
  ASSERT_EQ(cf.loops.size(), 1u);
  EXPECT_EQ(cf.loops[0].iterations, 5u);  // the Fig. 1 "END loop 1200" count
  EXPECT_EQ(cf.loops[0].entries, 1u);
  EXPECT_LT(SourceLocation::from_packed(cf.loops[0].begin_loc).line(),
            SourceLocation::from_packed(cf.loops[0].end_loc).line());
}

TEST_F(RuntimeTest, LoopIterationsAccumulateOverEntries) {
  Runtime::instance().attach(&recorder_);
  for (int round = 0; round < 3; ++round) {
    DP_LOOP_BEGIN();
    for (int i = 0; i < 4; ++i) DP_LOOP_ITER();
    DP_LOOP_END();
  }
  Runtime::instance().detach();
  const ControlFlowLog cf = Runtime::instance().control_flow();
  ASSERT_EQ(cf.loops.size(), 1u);
  EXPECT_EQ(cf.loops[0].iterations, 12u);
  EXPECT_EQ(cf.loops[0].entries, 3u);
}

TEST_F(RuntimeTest, FreeEmitsWordGranularLifetimeEvents) {
  Runtime::instance().attach(&recorder_);
  alignas(4) char buf[16];
  DP_FREE(buf, sizeof(buf));
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 4u);  // 16 bytes / 4-byte words
  for (const auto& e : t.events) EXPECT_TRUE(e.is_free());
  EXPECT_EQ(t.events[1].addr - t.events[0].addr, 4u);
}

TEST_F(RuntimeTest, LockRegionFlagsAccesses) {
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  int x = 0;
  DP_WRITE(x);  // outside any lock region
  x = 1;
  DP_LOCK_ENTER();
  DP_WRITE(x);  // inside
  x = 2;
  DP_LOCK_EXIT();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(t.events[0].flags & kInLockRegion, 0);
  EXPECT_NE(t.events[1].flags & kInLockRegion, 0);
}

TEST_F(RuntimeTest, TimestampsMonotoneInMtMode) {
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  int x = 0;
  DP_WRITE(x);
  x = 1;
  DP_READ(x);
  DP_READ(x);
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 3u);
  EXPECT_LT(t.events[0].ts, t.events[1].ts);
  EXPECT_LT(t.events[1].ts, t.events[2].ts);
}

TEST_F(RuntimeTest, NoTimestampsInSequentialMode) {
  Runtime::instance().attach(&recorder_, /*mt_mode=*/false);
  int x = 0;
  DP_WRITE(x);
  x = 1;
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 1u);
  EXPECT_EQ(t.events[0].ts, 0u);
}

TEST_F(RuntimeTest, ThreadIdsAssignedPerThread) {
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  int x = 0, y = 0;
  DP_WRITE(x);
  x = 1;
  std::thread worker([&] {
    DP_WRITE(y);
    y = 2;
  });
  worker.join();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_NE(t.events[0].tid, t.events[1].tid);
}

TEST_F(RuntimeTest, ResetStartsNewEpoch) {
  Runtime::instance().attach(&recorder_, true);
  int x = 0;
  DP_WRITE(x);
  x = 1;
  Runtime::instance().detach();
  const std::uint16_t tid_before = Runtime::instance().thread_id();
  Runtime::instance().reset();
  // After reset the calling thread re-registers and ids restart from 0.
  EXPECT_EQ(Runtime::instance().thread_id(), 0u);
  (void)tid_before;
  EXPECT_TRUE(Runtime::instance().control_flow().loops.empty());
}

TEST_F(RuntimeTest, ReductionLinesRecorded) {
  Runtime::instance().attach(&recorder_);
  double sum = 0.0;
  DP_REDUCTION(); DP_UPDATE(sum); sum += 1.0;
  Runtime::instance().detach();
  const auto lines = Runtime::instance().reduction_lines();
  ASSERT_EQ(lines.size(), 1u);
  // The reduction line matches the update's access line (same source line).
  const Trace& t = recorder_.trace();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_EQ(lines[0], t.events[0].loc);
}

TEST_F(RuntimeTest, UpdateEmitsReadThenWrite) {
  Runtime::instance().attach(&recorder_);
  double sum = 1.0;
  DP_UPDATE(sum);
  sum += 1.0;
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_TRUE(t.events[0].is_read());
  EXPECT_TRUE(t.events[1].is_write());
  EXPECT_EQ(t.events[0].addr, t.events[1].addr);
}

// --- lock-region boundary paths (regression + pins) -----------------------

TEST_F(RuntimeTest, LockRegionFreeIsFlaggedAndDeliveredImmediately) {
  // Regression: record_free used to buffer lock-region frees unflagged, so a
  // lock-protected free travelled the chunked path while the accesses around
  // it took the immediate one — another thread's post-free access could reach
  // the detector before the free cleared the word.  The free must be flagged
  // kInLockRegion and pushed before the target can release the lock.
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  alignas(4) char buf[4];
  DP_LOCK_ENTER();
  DP_FREE(buf, sizeof(buf));
  {
    // Still inside the lock region: the free is already at the sink.
    const Trace& t = recorder_.trace();
    ASSERT_EQ(t.events.size(), 1u);
    EXPECT_TRUE(t.events[0].is_free());
    EXPECT_NE(t.events[0].flags & kInLockRegion, 0);
  }
  DP_LOCK_EXIT();
}

TEST_F(RuntimeTest, LockExitFlushesBufferedAccesses) {
  // Pin: leaving the outermost lock region pushes the thread's buffered
  // accesses, so everything ordered before the release also arrives first.
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true);
  int x = 0;
  DP_WRITE(x);  // outside any lock region: buffered
  x = 1;
  EXPECT_TRUE(recorder_.trace().events.empty()) << "expected to stay buffered";
  DP_LOCK_ENTER();
  DP_LOCK_EXIT();
  EXPECT_EQ(recorder_.trace().events.size(), 1u)
      << "lock exit must flush before the target releases the lock";
}

// --- overhead-budget sampling gate ----------------------------------------

/// Minimal sink capturing both the event stream and the detach-time sampling
/// summary (TraceRecorder is final, so the override lives here).
class StatsRecorder : public AccessSink {
 public:
  void on_access(const AccessEvent& ev) override {
    trace_.events.push_back(ev);
  }
  void on_sampling_stats(std::uint64_t events_sampled_out,
                         std::uint64_t bursts,
                         std::uint64_t overhead_ppm) override {
    sampled_out_ = events_sampled_out;
    bursts_ = bursts;
    ppm_ = overhead_ppm;
    reported_ = true;
  }
  Trace trace_;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t ppm_ = 0;
  bool reported_ = false;
};

TEST_F(RuntimeTest, FixedSkipSamplingGatesWholeIterations) {
  SamplingConfig sampling;
  sampling.burst = 1;
  sampling.skip = 1;
  Runtime::instance().attach(&recorder_, false, false, sampling);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 4; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  const Trace& t = capture();
  // B=1/K=1 alternates whole outermost-loop iterations.  The loop entry
  // opens the first (profiled) unit, iteration 1 starts the skipped one, so
  // the kept iterations are 2 and 4 — and each kept event after a gap is
  // preceded by exactly one burst marker.
  ASSERT_EQ(t.events.size(), 4u);
  EXPECT_TRUE(t.events[0].is_burst_mark());
  EXPECT_TRUE(t.events[1].is_write());
  EXPECT_EQ(t.events[1].iters[0], 2u);
  EXPECT_TRUE(t.events[2].is_burst_mark());
  EXPECT_TRUE(t.events[3].is_write());
  EXPECT_EQ(t.events[3].iters[0], 4u);
}

TEST_F(RuntimeTest, AccessesOutsideLoopsBypassTheGate) {
  SamplingConfig sampling;
  sampling.burst = 1;
  sampling.skip = 7;
  Runtime::instance().attach(&recorder_, false, false, sampling);
  int a = 0;
  DP_LOOP_BEGIN();
  DP_LOOP_ITER();  // first skipped unit of the cycle
  DP_WRITE(a);     // dropped
  a = 1;
  DP_LOOP_END();
  DP_READ(a);  // outside any loop: always profiled, behind a gap marker
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 2u);
  EXPECT_TRUE(t.events[0].is_burst_mark());
  EXPECT_TRUE(t.events[1].is_read());
}

TEST_F(RuntimeTest, SamplingDisabledUnderMtMode) {
  // Cross-thread gaps would need a global cut; the per-thread unit cannot
  // provide one, so mt_mode forces the gate off no matter the config.
  SamplingConfig sampling;
  sampling.burst = 1;
  sampling.skip = 9;
  Runtime::instance().attach(&recorder_, /*mt_mode=*/true, false, sampling);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 6; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  const Trace& t = capture();
  ASSERT_EQ(t.events.size(), 6u);
  for (const auto& e : t.events) EXPECT_FALSE(e.is_burst_mark());
}

TEST_F(RuntimeTest, SamplingOffConfigEmitsNoMarkersOrStats) {
  StatsRecorder sink;
  SamplingConfig sampling;  // budget 1.0, skip 0: entirely off
  Runtime::instance().attach(&sink, false, false, sampling);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 4; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  Runtime::instance().detach();
  EXPECT_EQ(sink.trace_.events.size(), 4u);
  for (const auto& e : sink.trace_.events) EXPECT_FALSE(e.is_burst_mark());
  EXPECT_FALSE(sink.reported_) << "no stats callback when sampling is off";
}

TEST_F(RuntimeTest, SamplingStatsReportedOnDetach) {
  StatsRecorder sink;
  SamplingConfig sampling;
  sampling.burst = 1;
  sampling.skip = 1;
  Runtime::instance().attach(&sink, false, false, sampling);
  int a = 0;
  DP_LOOP_BEGIN();
  for (int i = 0; i < 4; ++i) {
    DP_LOOP_ITER();
    DP_WRITE(a);
    a = i;
  }
  DP_LOOP_END();
  Runtime::instance().detach();
  EXPECT_TRUE(sink.reported_);
  EXPECT_EQ(sink.sampled_out_, 2u);  // the writes of iterations 1 and 3
  EXPECT_EQ(sink.bursts_, 2u);       // one marker per closed gap
  EXPECT_EQ(sink.ppm_, 0u);          // fixed schedule: controller never ran
}

/// Sink whose reported profiling cost is a fixed 3/4 of elapsed wall time —
/// a measured overhead of cost/(wall-cost) = 3, far above any budget — so
/// the adaptive controller must raise the skip count deterministically.
class CostlySink : public AccessSink {
 public:
  CostlySink() : t0_(WallTimer::now()) {}
  void on_access(const AccessEvent&) override {}
  std::uint64_t profiling_cost_ns() const override {
    return (WallTimer::now() - t0_) * 3 / 4;
  }
  void on_sampling_stats(std::uint64_t events_sampled_out,
                         std::uint64_t bursts,
                         std::uint64_t overhead_ppm) override {
    sampled_out_ = events_sampled_out;
    bursts_ = bursts;
    ppm_ = overhead_ppm;
  }
  std::uint64_t sampled_out_ = 0;
  std::uint64_t bursts_ = 0;
  std::uint64_t ppm_ = 0;

 private:
  std::uint64_t t0_;
};

TEST_F(RuntimeTest, AdaptiveControllerThrottlesWhenOverBudget) {
  CostlySink sink;
  SamplingConfig sampling;
  sampling.budget = 0.05;
  sampling.burst = 2;
  Runtime::instance().attach(&sink, false, false, sampling);
  int a = 0;
  for (int round = 0; round < 200; ++round) {
    DP_LOOP_BEGIN();
    for (int i = 0; i < 8; ++i) {
      DP_LOOP_ITER();
      DP_WRITE(a);
      a = i;
    }
    DP_LOOP_END();
  }
  Runtime::instance().detach();
  EXPECT_GT(sink.sampled_out_, 0u) << "controller never raised the skip count";
  EXPECT_GE(sink.bursts_, 1u);
  EXPECT_GT(sink.ppm_, 0u) << "measured overhead never published";
}

}  // namespace
}  // namespace depprof
