// Tests for the trace substrate: containers, statistics, synthetic
// generators, recorder/replay, and binary trace I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_map>

#include "core/wire.hpp"
#include "trace/generators.hpp"
#include "trace/nest.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace depprof {
namespace {

TEST(Trace, StatisticsMatchGeneratorParams) {
  GenParams p;
  p.accesses = 10'000;
  p.distinct = 500;
  p.write_ratio = 0.3;
  const Trace t = gen_uniform(p);
  EXPECT_EQ(t.size(), 10'000u);
  EXPECT_LE(t.distinct_addresses(), 500u);
  EXPECT_GE(t.distinct_addresses(), 450u);  // nearly all touched
  EXPECT_NEAR(t.write_ratio(), 0.3, 0.05);
}

TEST(Generators, Deterministic) {
  GenParams p;
  p.accesses = 1'000;
  const Trace a = gen_uniform(p);
  const Trace b = gen_uniform(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].addr, b.events[i].addr);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }
}

TEST(Generators, SeedChangesStream) {
  GenParams p;
  p.accesses = 1'000;
  const Trace a = gen_uniform(p);
  p.seed = 99;
  const Trace b = gen_uniform(p);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff += a.events[i].addr != b.events[i].addr ? 1 : 0;
  EXPECT_GT(diff, 100u);
}

TEST(Generators, StridedSweepsLinearly) {
  GenParams p;
  p.accesses = 100;
  p.distinct = 50;
  p.stride = 16;
  const Trace t = gen_strided(p);
  for (std::size_t i = 1; i < 50; ++i)
    EXPECT_EQ(t.events[i].addr - t.events[i - 1].addr, 16u);
  EXPECT_EQ(t.events[50].addr, t.events[0].addr);  // second sweep restarts
}

TEST(Generators, ZipfIsHeavilySkewed) {
  GenParams p;
  p.accesses = 50'000;
  p.distinct = 1'000;
  const Trace t = gen_zipf(p, 1.2);
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (const auto& ev : t.events) ++counts[ev.addr];
  std::uint64_t max_count = 0;
  for (const auto& [addr, c] : counts) max_count = std::max(max_count, c);
  // The hottest address absorbs far more than a uniform share.
  EXPECT_GT(max_count, 50'000u / 1'000u * 10);
}

TEST(Generators, LoopTraceCarriesLoopContext) {
  GenParams p;
  p.distinct = 10;
  const Trace t = gen_loop(p, /*iters=*/3, /*carried=*/true, /*loop_id=*/7);
  ASSERT_EQ(t.size(), 3u * 10u * 2u);
  const NestForest& forest = nest_forest();
  for (const auto& ev : t.events) {
    ASSERT_NE(ev.ctx, NestForest::kRoot);
    EXPECT_EQ(forest.loop(ev.ctx), 7u);
    EXPECT_EQ(forest.depth(ev.ctx), 1u);
  }
  // All events share one dynamic loop entry; iters[0] tracks the iteration.
  EXPECT_EQ(t.events.back().ctx, t.events[0].ctx);
  EXPECT_EQ(t.events[0].iters[0], 0u);
  EXPECT_EQ(t.events.back().iters[0], 2u);
}

TEST(Generators, NestTraceBuildsDeepImperfectNests) {
  GenParams p;
  p.seed = 11;
  const Trace t = gen_nest(p, /*depth=*/3, /*width=*/3);
  ASSERT_FALSE(t.events.empty());
  const NestForest& forest = nest_forest();
  std::size_t max_depth = 0;
  std::size_t shallow = 0;  // events stamped above the deepest level
  for (const auto& ev : t.events) {
    ASSERT_LT(ev.ctx, forest.size());
    const std::size_t d = forest.depth(ev.ctx);
    max_depth = std::max(max_depth, d);
    if (d > 0 && d < 3) ++shallow;
  }
  EXPECT_EQ(max_depth, 3u);
  // The nest is imperfect: outer levels issue accesses of their own.
  EXPECT_GT(shallow, 0u);
}

TEST(Generators, ChurnTraceNestStampsAreConsistent) {
  GenParams p;
  p.accesses = 2'000;
  p.seed = 5;
  const Trace t = gen_churn(p, 0.2, /*threads=*/0, /*nest_depth=*/3);
  const NestForest& forest = nest_forest();
  std::size_t distinct_ctx = 0;
  std::uint32_t last_ctx = NestForest::kRoot;
  for (const auto& ev : t.events) {
    if (ev.is_free()) continue;
    ASSERT_NE(ev.ctx, NestForest::kRoot);
    EXPECT_EQ(forest.depth(ev.ctx), 3u);
    if (ev.ctx != last_ctx) {
      ++distinct_ctx;
      last_ctx = ev.ctx;
    }
  }
  // Sibling re-entry of the innermost loop creates fresh contexts mid-trace.
  EXPECT_GT(distinct_ctx, 1u);
}

TEST(Generators, MtTraceHasTimestampsAndThreads) {
  GenParams p;
  p.accesses = 1'000;
  const Trace t = gen_mt_producer_consumer(p, /*threads=*/4, /*shared=*/16);
  std::uint64_t prev_ts = 0;
  bool all_threads[4] = {};
  for (const auto& ev : t.events) {
    EXPECT_GT(ev.ts, prev_ts);
    prev_ts = ev.ts;
    ASSERT_LT(ev.tid, 4u);
    all_threads[ev.tid] = true;
  }
  for (bool seen : all_threads) EXPECT_TRUE(seen);
}

TEST(TraceRecorder, CapturesAndReplays) {
  GenParams p;
  p.accesses = 500;
  const Trace t = gen_uniform(p);
  TraceRecorder rec;
  replay(t, rec);
  ASSERT_EQ(rec.trace().size(), t.size());
  EXPECT_EQ(rec.trace().events[0].addr, t.events[0].addr);
}

TEST(TraceIo, RoundTrip) {
  GenParams p;
  p.accesses = 777;
  const Trace t = gen_zipf(p);
  const std::string path = "/tmp/depprof_trace_test.bin";
  ASSERT_TRUE(write_trace(t, path));
  Trace back;
  ASSERT_TRUE(read_trace(back, path));
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.events[i].addr, t.events[i].addr);
    EXPECT_EQ(back.events[i].loc, t.events[i].loc);
    EXPECT_EQ(back.events[i].kind, t.events[i].kind);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, NestContextsSurviveRoundTrip) {
  // Events stamped with interned nest contexts must come back with the same
  // nest *shape* (loop ids, depths, parent linkage, iteration windows) even
  // though the reader re-interns fresh forest ids.
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 40);
  const std::uint32_t in1 = forest.enter(outer, 41);
  const std::uint32_t in2 = forest.enter(outer, 41);  // sibling re-entry
  Trace t;
  AccessEvent ev;
  ev.kind = AccessKind::kWrite;
  ev.addr = 100;
  ev.ctx = in1;
  ev.iters[0] = 2;
  ev.iters[1] = 5;
  t.events.push_back(ev);
  ev.kind = AccessKind::kRead;
  ev.addr = 100;
  ev.ctx = in2;
  ev.iters[0] = 3;
  ev.iters[1] = 0;
  t.events.push_back(ev);
  ev.ctx = NestForest::kRoot;  // an event outside any loop
  t.events.push_back(ev);

  const std::string path = "/tmp/depprof_nest_trace_test.bin";
  ASSERT_TRUE(write_trace(t, path));
  Trace back;
  ASSERT_TRUE(read_trace(back, path));
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), 3u);

  const AccessEvent& a = back.events[0];
  const AccessEvent& b = back.events[1];
  EXPECT_EQ(forest.loop(a.ctx), 41u);
  EXPECT_EQ(forest.depth(a.ctx), 2u);
  EXPECT_EQ(forest.loop(forest.parent(a.ctx)), 40u);
  EXPECT_EQ(a.iters[0], 2u);
  EXPECT_EQ(a.iters[1], 5u);
  EXPECT_EQ(forest.loop(b.ctx), 41u);
  // The two sibling entries stay distinct but share the same parent entry.
  EXPECT_NE(a.ctx, b.ctx);
  EXPECT_EQ(forest.parent(a.ctx), forest.parent(b.ctx));
  EXPECT_EQ(back.events[2].ctx, NestForest::kRoot);
}

TEST(TraceIo, GeneratedNestTraceRoundTripsAttribution) {
  GenParams p;
  p.seed = 3;
  const Trace t = gen_nest(p, /*depth=*/3, /*width=*/3);
  const std::string path = "/tmp/depprof_nest_gen_trace_test.bin";
  ASSERT_TRUE(write_trace(t, path));
  Trace back;
  ASSERT_TRUE(read_trace(back, path));
  std::remove(path.c_str());
  ASSERT_EQ(back.size(), t.size());
  const NestForest& forest = nest_forest();
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Re-interned ids may differ; the per-event nest chain must not.
    std::uint32_t orig = t.events[i].ctx;
    std::uint32_t got = back.events[i].ctx;
    ASSERT_EQ(forest.depth(got), forest.depth(orig));
    while (orig != NestForest::kRoot) {
      EXPECT_EQ(forest.loop(got), forest.loop(orig));
      orig = forest.parent(orig);
      got = forest.parent(got);
    }
    EXPECT_EQ(got, NestForest::kRoot);
    for (std::size_t d = 0; d < kNestIters; ++d)
      EXPECT_EQ(back.events[i].iters[d], t.events[i].iters[d]);
  }
}

TEST(TraceIo, RejectsMalformedNestTables) {
  const std::string path = "/tmp/depprof_bad_nest_trace_test.bin";
  const char magic[8] = {'D', 'E', 'P', 'T', 'R', 'C', '0', '2'};
  Trace out;

  // Node table claims more nodes than the file holds.
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(magic, 1, sizeof(magic), f);
    const std::uint64_t node_count = 1'000'000;
    std::fwrite(&node_count, 1, sizeof(node_count), f);
    std::fclose(f);
    EXPECT_FALSE(read_trace(out, path));
  }

  // A node whose parent is itself / a later node (forward reference).
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(magic, 1, sizeof(magic), f);
    const std::uint64_t node_count = 1;
    std::fwrite(&node_count, 1, sizeof(node_count), f);
    const std::uint32_t node[2] = {1, 7};  // parent == own id
    std::fwrite(node, 1, sizeof(node), f);
    const std::uint64_t count = 0;
    std::fwrite(&count, 1, sizeof(count), f);
    std::fclose(f);
    EXPECT_FALSE(read_trace(out, path));
  }

  // An event referencing a context id beyond the declared node table.
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(magic, 1, sizeof(magic), f);
    const std::uint64_t node_count = 1;
    std::fwrite(&node_count, 1, sizeof(node_count), f);
    const std::uint32_t node[2] = {0, 7};
    std::fwrite(node, 1, sizeof(node), f);
    const std::uint64_t count = 1;
    std::fwrite(&count, 1, sizeof(count), f);
    AccessEvent ev;
    ev.ctx = 2;  // only node 1 was declared
    std::fwrite(&ev, 1, sizeof(ev), f);
    std::fclose(f);
    EXPECT_FALSE(read_trace(out, path));
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingAndMalformedFiles) {
  Trace out;
  EXPECT_FALSE(read_trace(out, "/tmp/depprof_does_not_exist.bin"));
  const std::string path = "/tmp/depprof_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_FALSE(read_trace(out, path));
  EXPECT_TRUE(out.events.empty());
  std::remove(path.c_str());
}

// Direct step-op coverage for the wire codec's nest-context delta coding.
// The profiler's dedup×pack lattice exercises the codec end-to-end; these
// pin each [op:2] transition individually.
class WireCodecTest : public ::testing::Test {
 protected:
  /// Encodes `ev` and immediately decodes it back, asserting the round trip
  /// is exact.  Returns true when the event fit a 16-byte delta record.
  bool round_trip(const AccessEvent& ev) {
    unsigned char buf[kMaxWireRecordBytes];
    bool escaped = false;
    const std::size_t wrote = enc_.encode(ev, 1, buf, escaped);
    AccessEvent back;
    std::uint32_t rep = 0;
    EXPECT_EQ(dec_.decode(buf, back, rep), wrote);
    EXPECT_EQ(rep, 1u);
    EXPECT_EQ(back.addr, ev.addr);
    EXPECT_EQ(back.ctx, ev.ctx);
    EXPECT_EQ(back.kind, ev.kind);
    EXPECT_EQ(back.loc, ev.loc);
    for (std::size_t i = 0; i < kNestIters; ++i)
      EXPECT_EQ(back.iters[i], ev.iters[i]) << "slot " << i;
    return !escaped;
  }

  WireEncoder enc_;
  WireDecoder dec_;
};

TEST_F(WireCodecTest, FirstRecordAlwaysEscapes) {
  AccessEvent ev;
  ev.addr = 64;
  EXPECT_FALSE(round_trip(ev));  // chunk base: full-size record
  ev.addr += 8;
  EXPECT_TRUE(round_trip(ev));  // second event delta-packs
}

TEST_F(WireCodecTest, IterAdvancePacksSameContext) {
  NestForest& forest = nest_forest();
  AccessEvent ev;
  ev.ctx = forest.enter(NestForest::kRoot, 30);
  round_trip(ev);  // base
  ev.iters[0] += 1;
  EXPECT_TRUE(round_trip(ev));  // op0: iters[0] += 1
  ev.iters[0] += 5;
  EXPECT_TRUE(round_trip(ev));  // op0 with payload > 1
  ev.iters[0] += kMaxStepPayload + 1;
  EXPECT_FALSE(round_trip(ev));  // beyond the 11-bit payload: escape
}

TEST_F(WireCodecTest, PushPopAndSiblingReentryPack) {
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 50);
  const std::uint32_t inner = forest.enter(outer, 51);
  AccessEvent ev;
  ev.ctx = outer;
  ev.iters[0] = 3;
  round_trip(ev);  // base
  ev.ctx = inner;  // op1 push: deeper entry, window unchanged
  EXPECT_TRUE(round_trip(ev));
  ev.iters[1] = 9;
  EXPECT_TRUE(round_trip(ev));  // op0 inside the inner loop
  ev.ctx = outer;  // op2 pop: back to the ancestor, deep slots zeroed
  ev.iters[1] = 0;
  EXPECT_TRUE(round_trip(ev));
  // op3 sibling re-entry: fresh inner entry, enclosing iter advances.
  ev.ctx = forest.enter(outer, 51);
  ev.iters[0] = 4;
  EXPECT_TRUE(round_trip(ev));
}

TEST_F(WireCodecTest, PopWithStaleDeepSlotsEscapes) {
  // A pop whose event still carries non-zero deep iteration slots cannot be
  // predicted by op2 (which zeroes them) and must escape — the codec never
  // emits a step whose replay diverges from the real event.
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 60);
  const std::uint32_t inner = forest.enter(outer, 61);
  AccessEvent ev;
  ev.ctx = inner;
  ev.iters[1] = 4;
  round_trip(ev);  // base
  ev.ctx = outer;
  // iters[1] left at 4: contradicts the pop transition.
  EXPECT_FALSE(round_trip(ev));
}

TEST_F(WireCodecTest, ThreadOrWideFieldChangesEscape) {
  AccessEvent ev;
  round_trip(ev);  // base
  ev.tid = 2;
  EXPECT_FALSE(round_trip(ev));  // tid change never packs
  ev.var = 0x1'0000;
  EXPECT_FALSE(round_trip(ev));  // var beyond 16 bits never packs
}

TEST_F(WireCodecTest, RunLengthTravelsInOneRecord) {
  AccessEvent ev;
  unsigned char buf[kMaxWireRecordBytes];
  bool escaped = false;
  const std::size_t wrote = enc_.encode(ev, kMaxWireRep, buf, escaped);
  AccessEvent back;
  std::uint32_t rep = 0;
  EXPECT_EQ(dec_.decode(buf, back, rep), wrote);
  EXPECT_EQ(rep, kMaxWireRep);
}

}  // namespace
}  // namespace depprof
