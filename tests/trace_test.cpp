// Tests for the trace substrate: containers, statistics, synthetic
// generators, recorder/replay, and binary trace I/O.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_map>

#include "trace/generators.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace depprof {
namespace {

TEST(Trace, StatisticsMatchGeneratorParams) {
  GenParams p;
  p.accesses = 10'000;
  p.distinct = 500;
  p.write_ratio = 0.3;
  const Trace t = gen_uniform(p);
  EXPECT_EQ(t.size(), 10'000u);
  EXPECT_LE(t.distinct_addresses(), 500u);
  EXPECT_GE(t.distinct_addresses(), 450u);  // nearly all touched
  EXPECT_NEAR(t.write_ratio(), 0.3, 0.05);
}

TEST(Generators, Deterministic) {
  GenParams p;
  p.accesses = 1'000;
  const Trace a = gen_uniform(p);
  const Trace b = gen_uniform(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events[i].addr, b.events[i].addr);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
  }
}

TEST(Generators, SeedChangesStream) {
  GenParams p;
  p.accesses = 1'000;
  const Trace a = gen_uniform(p);
  p.seed = 99;
  const Trace b = gen_uniform(p);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    diff += a.events[i].addr != b.events[i].addr ? 1 : 0;
  EXPECT_GT(diff, 100u);
}

TEST(Generators, StridedSweepsLinearly) {
  GenParams p;
  p.accesses = 100;
  p.distinct = 50;
  p.stride = 16;
  const Trace t = gen_strided(p);
  for (std::size_t i = 1; i < 50; ++i)
    EXPECT_EQ(t.events[i].addr - t.events[i - 1].addr, 16u);
  EXPECT_EQ(t.events[50].addr, t.events[0].addr);  // second sweep restarts
}

TEST(Generators, ZipfIsHeavilySkewed) {
  GenParams p;
  p.accesses = 50'000;
  p.distinct = 1'000;
  const Trace t = gen_zipf(p, 1.2);
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  for (const auto& ev : t.events) ++counts[ev.addr];
  std::uint64_t max_count = 0;
  for (const auto& [addr, c] : counts) max_count = std::max(max_count, c);
  // The hottest address absorbs far more than a uniform share.
  EXPECT_GT(max_count, 50'000u / 1'000u * 10);
}

TEST(Generators, LoopTraceCarriesLoopContext) {
  GenParams p;
  p.distinct = 10;
  const Trace t = gen_loop(p, /*iters=*/3, /*carried=*/true, /*loop_id=*/7);
  ASSERT_EQ(t.size(), 3u * 10u * 2u);
  for (const auto& ev : t.events) EXPECT_EQ(ev.loops[0].loop, 7u);
  EXPECT_EQ(t.events[0].loops[0].iter, 0u);
  EXPECT_EQ(t.events.back().loops[0].iter, 2u);
}

TEST(Generators, MtTraceHasTimestampsAndThreads) {
  GenParams p;
  p.accesses = 1'000;
  const Trace t = gen_mt_producer_consumer(p, /*threads=*/4, /*shared=*/16);
  std::uint64_t prev_ts = 0;
  bool all_threads[4] = {};
  for (const auto& ev : t.events) {
    EXPECT_GT(ev.ts, prev_ts);
    prev_ts = ev.ts;
    ASSERT_LT(ev.tid, 4u);
    all_threads[ev.tid] = true;
  }
  for (bool seen : all_threads) EXPECT_TRUE(seen);
}

TEST(TraceRecorder, CapturesAndReplays) {
  GenParams p;
  p.accesses = 500;
  const Trace t = gen_uniform(p);
  TraceRecorder rec;
  replay(t, rec);
  ASSERT_EQ(rec.trace().size(), t.size());
  EXPECT_EQ(rec.trace().events[0].addr, t.events[0].addr);
}

TEST(TraceIo, RoundTrip) {
  GenParams p;
  p.accesses = 777;
  const Trace t = gen_zipf(p);
  const std::string path = "/tmp/depprof_trace_test.bin";
  ASSERT_TRUE(write_trace(t, path));
  Trace back;
  ASSERT_TRUE(read_trace(back, path));
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.events[i].addr, t.events[i].addr);
    EXPECT_EQ(back.events[i].loc, t.events[i].loc);
    EXPECT_EQ(back.events[i].kind, t.events[i].kind);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingAndMalformedFiles) {
  Trace out;
  EXPECT_FALSE(read_trace(out, "/tmp/depprof_does_not_exist.bin"));
  const std::string path = "/tmp/depprof_garbage.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_FALSE(read_trace(out, path));
  EXPECT_TRUE(out.events.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace depprof
