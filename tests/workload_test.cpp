// Tests for the workload suites: registry consistency, determinism,
// native/profiled checksum equality (the profiler must not perturb the
// computation), loop ground-truth wiring, and parallel-variant agreement.

#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "instrument/runtime.hpp"
#include "workloads/workload.hpp"

namespace depprof {
namespace {

TEST(Registry, AllSuitesPresent) {
  EXPECT_EQ(workloads_in_suite("nas").size(), 8u);
  EXPECT_EQ(workloads_in_suite("starbench").size(), 11u);
  EXPECT_EQ(workloads_in_suite("splash").size(), 1u);
  EXPECT_EQ(workloads_in_suite("taskgraph").size(), 2u);
  EXPECT_EQ(all_workloads().size(), 22u);
}

TEST(Registry, LookupByName) {
  ASSERT_NE(find_workload("cg"), nullptr);
  EXPECT_EQ(find_workload("cg")->suite, "nas");
  EXPECT_EQ(find_workload("no-such-workload"), nullptr);
}

TEST(Registry, AllStarbenchHaveParallelVariants) {
  for (const Workload* w : workloads_in_suite("starbench"))
    EXPECT_TRUE(static_cast<bool>(w->run_parallel)) << w->name;
  EXPECT_GE(parallel_workloads().size(), 12u);  // 11 starbench + water
}

TEST(Registry, NasWorkloadsCarryLoopGroundTruth) {
  for (const Workload* w : workloads_in_suite("nas")) {
    EXPECT_FALSE(w->loops.empty()) << w->name;
    bool any_parallel = false;
    for (const auto& t : w->loops) any_parallel |= t.parallelizable;
    EXPECT_TRUE(any_parallel) << w->name;
  }
}

class WorkloadParam : public ::testing::TestWithParam<const Workload*> {};

TEST_P(WorkloadParam, DeterministicAcrossRuns) {
  const Workload* w = GetParam();
  Runtime::instance().reset();
  const auto a = w->run(1);
  const auto b = w->run(1);
  EXPECT_EQ(a.checksum, b.checksum) << w->name;
  EXPECT_NE(a.checksum, 0u) << w->name << ": checksum must not be trivial";
}

TEST_P(WorkloadParam, ProfilingDoesNotPerturbResult) {
  const Workload* w = GetParam();
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 18;
  RunOptions opts;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);
  EXPECT_EQ(m.native_checksum, m.profiled_checksum) << w->name;
  EXPECT_GT(m.stats.events, 100u) << w->name << ": workload must emit accesses";
}

TEST_P(WorkloadParam, InstrumentedLoopCountMatchesGroundTruth) {
  const Workload* w = GetParam();
  RunOptions opts;
  opts.native_reps = 1;
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  const RunMeasurement m = profile_workload(*w, cfg, opts);
  EXPECT_EQ(m.control_flow.loops.size(), w->loops.size())
      << w->name << ": LoopTruth entries must match instrumented loops";
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadParam,
    ::testing::ValuesIn([] {
      std::vector<const Workload*> v;
      for (const auto& w : all_workloads())
        if (w.run) v.push_back(&w);
      return v;
    }()),
    [](const auto& info) {
      std::string name = info.param->name;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

class ParallelWorkloadParam : public ::testing::TestWithParam<const Workload*> {
};

TEST_P(ParallelWorkloadParam, ParallelVariantMatchesSequentialResult) {
  // For workloads whose parallel decomposition is value-preserving (disjoint
  // writes or order-independent combination), the pthread variant must
  // compute exactly the sequential result at any thread count.  Workloads
  // with floating-point reduction order dependence (kmeans, streamcluster,
  // bodytrack, water-spatial) are exempt by construction of the list below.
  const Workload* w = GetParam();
  Runtime::instance().reset();
  const auto seq = w->run(1);
  const auto two = w->run_parallel(1, 2);
  const auto four = w->run_parallel(1, 4);
  EXPECT_EQ(seq.checksum, two.checksum) << w->name;
  EXPECT_EQ(seq.checksum, four.checksum) << w->name;
}

INSTANTIATE_TEST_SUITE_P(
    Deterministic, ParallelWorkloadParam,
    ::testing::ValuesIn([] {
      std::vector<const Workload*> v;
      for (const char* name : {"c-ray", "md5", "ray-rot", "rgbyuv", "rotate",
                               "rot-cc", "tinyjpeg", "h264dec"})
        if (const Workload* w = find_workload(name); w && w->run_parallel)
          v.push_back(w);
      return v;
    }()),
    [](const auto& info) {
      std::string name = info.param->name;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(ParallelWorkloads, ReductionWorkloadsProduceNonzeroChecksum) {
  for (const char* name :
       {"kmeans", "streamcluster", "bodytrack", "water-spatial"}) {
    const Workload* w = find_workload(name);
    ASSERT_NE(w, nullptr) << name;
    Runtime::instance().reset();
    EXPECT_NE(w->run_parallel(1, 4).checksum, 0u) << name;
  }
}

}  // namespace
}  // namespace depprof
