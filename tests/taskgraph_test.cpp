// Ground-truth tests for the task-graph race family (Sec. V-B, first-class
// --races mode): every injected race must be confirmed by name, race-free
// variants must confirm nothing, the per-site injection matrix must not
// cross-contaminate, the obs snapshot counters must agree with the report,
// and the race report must be identical across the serial profiler and the
// parallel pipeline for every store backend x queue kind combination.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/location.hpp"
#include "core/profiler.hpp"
#include "harness/runner.hpp"
#include "instrument/runtime.hpp"
#include "mt/race_report.hpp"
#include "queue/queues.hpp"
#include "trace/trace.hpp"
#include "workloads/taskgraph/task_graph.hpp"
#include "workloads/workload.hpp"

namespace depprof {
namespace {

ProfilerConfig races_cfg(StorageKind storage) {
  ProfilerConfig cfg;
  cfg.storage = storage;
  cfg.slots = 1u << 18;
  cfg.workers = 4;
  cfg.mt_targets = true;
  cfg.races = true;
  return cfg;
}

RunOptions mt_opts(unsigned threads) {
  RunOptions opts;
  opts.target_threads = threads;
  opts.parallel_pipeline = true;
  opts.native_reps = 1;
  return opts;
}

std::set<std::string> confirmed_vars(const RaceReport& report) {
  std::set<std::string> vars;
  for (const auto& f : report.findings)
    if (f.confirmed) vars.insert(std::string(var_registry().name(f.dep.var)));
  return vars;
}

std::uint64_t stage_sum(const ProfilerStats& st,
                        std::uint64_t obs::StageSnapshot::*counter) {
  std::uint64_t sum = 0;
  for (const auto& s : st.stages.stages) sum += s.*counter;
  return sum;
}

TEST(TaskGraphRaces, InjectedRacesAllConfirmedByName) {
  const Workload* w = find_workload("taskgraph-racy");
  ASSERT_NE(w, nullptr);
  ASSERT_EQ(w->races.size(), workloads::taskgraph::kRaceSites);

  const RunMeasurement m = profile_workload(*w, races_cfg(StorageKind::kPerfect),
                                            mt_opts(2));
  const RaceReport report = find_races(m.deps);
  const auto vars = confirmed_vars(report);
  for (const char* name : w->races)
    EXPECT_EQ(vars.count(name), 1u) << "injected race not confirmed: " << name;
  // The lock-protected tally path must be triaged as suppressed, not as an
  // unconfirmed candidate and certainly not as a race.
  EXPECT_GT(report.suppressed_by_lock, 0u);
  EXPECT_EQ(vars.count("tally"), 0u);
  EXPECT_EQ(vars.count("sum"), 0u);
}

TEST(TaskGraphRaces, RaceFreeVariantConfirmsNothing) {
  const Workload* w = find_workload("taskgraph");
  ASSERT_NE(w, nullptr);
  EXPECT_TRUE(w->races.empty());

  const RunMeasurement m = profile_workload(*w, races_cfg(StorageKind::kPerfect),
                                            mt_opts(4));
  const RaceReport report = find_races(m.deps);
  EXPECT_EQ(report.confirmed_count(), 0u);
  // The DAG still has ordered cross-thread communication and the lock-
  // protected tally, so triage has work to do — it just confirms none of it.
  EXPECT_GT(report.suppressed_by_lock, 0u);
}

TEST(TaskGraphRaces, PerSiteInjectionMatrixDoesNotCrossContaminate) {
  using namespace workloads::taskgraph;
  for (unsigned site = 0; site < kRaceSites; ++site) {
    Workload single;
    single.name = "taskgraph-single";
    const unsigned mask = 1u << site;
    single.run = [mask](int scale) {
      return WorkloadResult{run_task_graph(scale, 0, mask)};
    };
    single.run_parallel = [mask](int scale, unsigned threads) {
      return WorkloadResult{run_task_graph(scale, threads, mask)};
    };

    const RunMeasurement m =
        profile_workload(single, races_cfg(StorageKind::kPerfect), mt_opts(2));
    const auto vars = confirmed_vars(find_races(m.deps));
    for (unsigned other = 0; other < kRaceSites; ++other) {
      EXPECT_EQ(vars.count(race_var_name(other)), other == site ? 1u : 0u)
          << "site " << site << " vs " << race_var_name(other);
    }
  }
}

TEST(TaskGraphRaces, SnapshotCountersAgreeWithReport) {
  const Workload* w = find_workload("taskgraph-racy");
  ASSERT_NE(w, nullptr);
  const RunMeasurement m = profile_workload(*w, races_cfg(StorageKind::kPerfect),
                                            mt_opts(2));
  const RaceReport report = find_races(m.deps);
  EXPECT_EQ(stage_sum(m.stats, &obs::StageSnapshot::races_confirmed),
            report.confirmed_count());
  EXPECT_EQ(stage_sum(m.stats, &obs::StageSnapshot::races_unconfirmed),
            report.unconfirmed);
  EXPECT_EQ(stage_sum(m.stats, &obs::StageSnapshot::races_lock_suppressed),
            report.suppressed_by_lock);
}

TEST(TaskGraphRaces, SerialAndParallelReportsIdenticalAcrossBackendsAndQueues) {
  const Workload* w = find_workload("taskgraph-racy");
  ASSERT_NE(w, nullptr);

  // One MT-recorded trace feeds every profiler, so the 15-case matrix
  // compares identical inputs: 5 store backends x 3 queue kinds, each
  // parallel report against the same-backend serial reference.
  RunOptions ropts;
  ropts.target_threads = 2;
  const Trace trace = record_workload(*w, ropts);
  ASSERT_GT(trace.size(), 0u);

  const StorageKind backends[] = {StorageKind::kSignature, StorageKind::kPerfect,
                                  StorageKind::kShadow, StorageKind::kHashTable,
                                  StorageKind::kPacked};
  const QueueKind queues[] = {QueueKind::kLockFreeSpsc, QueueKind::kLockFreeMpmc,
                              QueueKind::kMutex};
  for (StorageKind backend : backends) {
    ProfilerConfig cfg = races_cfg(backend);
    auto serial = make_serial_profiler(cfg);
    ASSERT_NE(serial, nullptr);
    replay(trace, *serial);
    const std::string ref =
        format_race_report(find_races(serial->dependences(), true));
    if (backend == StorageKind::kPerfect) {
      const auto vars = confirmed_vars(find_races(serial->dependences()));
      for (const char* name : w->races) EXPECT_EQ(vars.count(name), 1u) << name;
    }
    for (QueueKind queue : queues) {
      ProfilerConfig pcfg = cfg;
      pcfg.queue = queue;
      auto parallel = make_parallel_profiler(pcfg);
      ASSERT_NE(parallel, nullptr);
      replay(trace, *parallel);
      EXPECT_EQ(format_race_report(find_races(parallel->dependences(), true)),
                ref)
          << storage_kind_name(backend) << " x " << queue_kind_name(queue);
    }
  }
}

TEST(TaskGraphRaces, FactoriesRejectRacesWithSampling) {
  ProfilerConfig cfg = races_cfg(StorageKind::kPerfect);
  cfg.budget = 0.5;
  EXPECT_EQ(make_serial_profiler(cfg), nullptr);
  EXPECT_EQ(make_parallel_profiler(cfg), nullptr);
  cfg.budget = 1.0;
  cfg.sampling_skip = 4;
  EXPECT_EQ(make_serial_profiler(cfg), nullptr);
  EXPECT_EQ(make_parallel_profiler(cfg), nullptr);
  cfg.sampling_skip = 0;
  cfg.mt_targets = false;
  EXPECT_EQ(make_serial_profiler(cfg), nullptr);
  cfg.mt_targets = true;
  EXPECT_NE(make_serial_profiler(cfg), nullptr);
}

}  // namespace
}  // namespace depprof
