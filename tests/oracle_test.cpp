// Oracle property test: an independent brute-force reference implementation
// of pair-wise dependence detection (plain per-address last-reader /
// last-writer maps, written without any shared code with the detector) is
// compared against the full profiler stack on randomized traces.  This
// catches regressions in Algorithm 1, the merge logic, and the pipeline
// that tests reusing DepDetector cannot.

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/hash.hpp"
#include "common/rng.hpp"
#include "core/profiler.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace depprof {
namespace {

struct OracleAccess {
  bool valid = false;
  std::uint32_t loc = 0;
  std::uint16_t tid = 0;
};

/// Brute-force reference: exact per-address last read / last write,
/// replicating the published algorithm's semantics directly from the paper
/// text (INIT on first write; WAW/WAR on writes; RAW on reads; RAR ignored;
/// lifetime events clear the address).
DepMap oracle(const Trace& trace) {
  std::unordered_map<std::uint64_t, OracleAccess> last_read, last_write;
  DepMap deps;
  for (const AccessEvent& ev : trace.events) {
    const std::uint64_t unit = word_addr(ev.addr);
    if (ev.is_free()) {
      last_read.erase(unit);
      last_write.erase(unit);
      continue;
    }
    DepKey k;
    k.sink_loc = ev.loc;
    k.var = ev.var;
    k.sink_tid = ev.tid;
    if (ev.is_write()) {
      auto w = last_write.find(unit);
      if (w != last_write.end()) {
        k.type = DepType::kWaw;
        k.src_loc = w->second.loc;
        k.src_tid = w->second.tid;
        deps.add(k, 0);
      } else {
        k.type = DepType::kInit;
        k.src_loc = 0;
        k.src_tid = 0;
        deps.add(k, 0);
      }
      auto r = last_read.find(unit);
      if (r != last_read.end()) {
        k.type = DepType::kWar;
        k.src_loc = r->second.loc;
        k.src_tid = r->second.tid;
        deps.add(k, 0);
      }
      last_write[unit] = {true, ev.loc, ev.tid};
    } else {
      auto w = last_write.find(unit);
      if (w != last_write.end()) {
        k.type = DepType::kRaw;
        k.src_loc = w->second.loc;
        k.src_tid = w->second.tid;
        deps.add(k, 0);
      }
      last_read[unit] = {true, ev.loc, ev.tid};
    }
  }
  return deps;
}

/// Random trace with reads, writes, and occasional lifetime events over a
/// small, heavily reused address pool — maximal dependence churn.
Trace random_trace(std::uint64_t seed, std::size_t events,
                   std::size_t addresses, bool mt) {
  Rng rng(seed);
  Trace t;
  t.events.reserve(events);
  std::uint64_t ts = 1;
  for (std::size_t i = 0; i < events; ++i) {
    AccessEvent ev;
    ev.addr = 0x2000 + rng.below(addresses) * 4;
    const double roll = rng.uniform();
    ev.kind = roll < 0.05   ? AccessKind::kFree
              : roll < 0.45 ? AccessKind::kWrite
                            : AccessKind::kRead;
    ev.loc = SourceLocation(1, 10 + static_cast<std::uint32_t>(rng.below(40)))
                 .packed();
    ev.var = static_cast<std::uint32_t>(rng.below(5));
    if (mt) {
      ev.tid = static_cast<std::uint16_t>(rng.below(4));
      ev.ts = ts++;
    }
    t.events.push_back(ev);
  }
  return t;
}

bool equal_sets(const DepMap& a, const DepMap& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [key, info] : a) {
    const DepInfo* other = b.find(key);
    if (other == nullptr || other->count != info.count) return false;
  }
  return true;
}

class OracleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleSweep, SerialPerfectMatchesOracle) {
  const Trace t = random_trace(GetParam(), 20'000, 256, false);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  auto prof = make_serial_profiler(cfg);
  replay(t, *prof);
  EXPECT_TRUE(equal_sets(oracle(t), prof->dependences()));
}

TEST_P(OracleSweep, SerialLargeSignatureMatchesOracle) {
  // With more slots than addresses (and modulo indexing over a compact
  // range) there are no collisions: the signature must be exact.
  const Trace t = random_trace(GetParam() ^ 0xABCD, 20'000, 256, false);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 16;
  auto prof = make_serial_profiler(cfg);
  replay(t, *prof);
  EXPECT_TRUE(equal_sets(oracle(t), prof->dependences()));
}

TEST_P(OracleSweep, ParallelPipelineMatchesOracle) {
  const Trace t = random_trace(GetParam() ^ 0x1234, 20'000, 256, false);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.workers = 4;
  cfg.chunk_size = 32;
  auto prof = make_parallel_profiler(cfg);
  replay(t, *prof);
  EXPECT_TRUE(equal_sets(oracle(t), prof->dependences()));
}

TEST_P(OracleSweep, MtEventsMatchOracleIncludingThreadIds) {
  // Single-producer replay of an MT-tagged trace: arrival order equals
  // program order, so thread-id-qualified dependences must match exactly.
  const Trace t = random_trace(GetParam() ^ 0x77, 20'000, 256, true);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  auto prof = make_serial_profiler(cfg);
  replay(t, *prof);
  EXPECT_TRUE(equal_sets(oracle(t), prof->dependences()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace depprof
