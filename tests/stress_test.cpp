// Concurrency stress tests for the parallel pipeline's producer and
// migration paths (ISSUE 2).  These are the TSan targets for the fixed
// races: the producer-slot publication in producer_for (formerly an
// unsynchronized double-checked load), the per-tid producer registry for
// thread ids beyond the fast-slot array (formerly all aliased one slot),
// the migration-mailbox handoff, and the parked-wait shutdown protocol.
// Queue capacities are deliberately tiny so every push exercises the
// bounded-backpressure wait and its wake hooks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/formatter.hpp"
#include "core/profiler.hpp"
#include "harness/accuracy.hpp"
#include "instrument/runtime.hpp"
#include "queue/wait_strategy.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

namespace depprof {
namespace {

bool same_deps(const DepMap& a, const DepMap& b) {
  const AccuracyResult r = compare_deps(a, b);
  return r.false_positives == 0 && r.false_negatives == 0 &&
         a.size() == b.size();
}

/// Deterministic per-thread access stream over a private address range:
/// writes then re-reads with a one-slot shift, producing RAW, WAR, and WAW
/// dependences whose endpoints carry `tid`.
std::vector<AccessEvent> thread_stream(std::uint16_t tid, std::uint64_t base,
                                       std::size_t rounds, std::size_t addrs) {
  std::vector<AccessEvent> evs;
  evs.reserve(rounds * addrs * 2);
  std::uint64_t ts = static_cast<std::uint64_t>(tid) << 32;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < addrs; ++i) {
      AccessEvent wv;
      wv.addr = base + i * 8;
      wv.kind = AccessKind::kWrite;
      wv.loc = SourceLocation(7, 10 + static_cast<std::uint32_t>(i % 5)).packed();
      wv.tid = tid;
      wv.ts = ++ts;
      evs.push_back(wv);
      AccessEvent rd;
      rd.addr = base + ((i + 1) % addrs) * 8;
      rd.kind = AccessKind::kRead;
      rd.loc = SourceLocation(7, 20 + static_cast<std::uint32_t>(i % 3)).packed();
      rd.tid = tid;
      rd.ts = ++ts;
      evs.push_back(rd);
    }
  }
  return evs;
}

// >= 8 concurrent target threads — thread ids straddling the old
// kMaxProducers=256 clamp, so several land in the mutex-guarded registry —
// each registering its producer while pushing through capacity-2 MPMC
// queues.  Address ranges are disjoint, so the merged map must equal a
// serial replay of the concatenated streams regardless of interleaving,
// for every wait strategy.
TEST(ParallelStress, ConcurrentProducersHighTidsTinyQueues) {
  constexpr std::uint16_t kTids[] = {3, 77, 255, 256, 300, 511, 1000, 40000};
  constexpr std::size_t kThreads = sizeof(kTids) / sizeof(kTids[0]);
  // Sized for the worst case: kSpin on a single-core host makes every
  // blocked push burn a scheduler quantum, so chunk count — not event
  // count — bounds the runtime (also under TSan in CI).
  constexpr std::size_t kRounds = 12;
  constexpr std::size_t kAddrs = 16;

  std::vector<std::vector<AccessEvent>> streams;
  Trace serial_trace;
  for (std::size_t i = 0; i < kThreads; ++i) {
    streams.push_back(thread_stream(kTids[i], 0x100000 + i * 0x10000, kRounds,
                                    kAddrs));
    serial_trace.events.insert(serial_trace.events.end(), streams[i].begin(),
                               streams[i].end());
  }

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  auto serial = make_serial_profiler(cfg);
  replay(serial_trace, *serial);

  for (WaitKind wait : {WaitKind::kSpin, WaitKind::kYield, WaitKind::kPark}) {
    cfg.workers = 4;
    cfg.chunk_size = 4;
    cfg.queue_capacity = 2;
    cfg.wait = wait;
    auto prof = make_parallel_profiler(cfg);
    ASSERT_NE(prof, nullptr);

    std::vector<std::thread> producers;
    for (std::size_t i = 0; i < kThreads; ++i)
      producers.emplace_back([&, i] {
        const std::vector<AccessEvent>& evs = streams[i];
        constexpr std::size_t kBatch = 16;
        for (std::size_t off = 0; off < evs.size(); off += kBatch)
          prof->on_batch(evs.data() + off,
                         std::min(kBatch, evs.size() - off));
      });
    for (auto& t : producers) t.join();
    prof->finish();

    const ProfilerStats st = prof->stats();
    const std::uint64_t total = kThreads * kRounds * kAddrs * 2;
    // No event may be lost or duplicated by producer registration races.
    EXPECT_EQ(st.events, total) << "wait=" << wait_kind_name(wait);
    EXPECT_EQ(st.stages.detect_events(), total) << "wait=" << wait_kind_name(wait);
    EXPECT_TRUE(same_deps(serial->dependences(), prof->dependences()))
        << "wait=" << wait_kind_name(wait);
  }
}

// Aggressive load-balancer migrations through capacity-2 queues: the
// mailbox handoff (including its parked wait and wake hooks) must never
// corrupt per-address signature state.
TEST(ParallelStress, MigrationsUnderTinyQueuesPreserveDeps) {
  GenParams p;
  p.accesses = 120'000;
  p.distinct = 1'000;
  const Trace t = gen_zipf(p, 1.4);

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  const DepMap serial = [&] {
    auto s = make_serial_profiler(cfg);
    replay(t, *s);
    return s->take_dependences();
  }();

  for (WaitKind wait : {WaitKind::kYield, WaitKind::kPark}) {
    cfg.workers = 4;
    cfg.chunk_size = 8;
    cfg.queue_capacity = 2;
    cfg.wait = wait;
    cfg.load_balance.enabled = true;
    cfg.load_balance.eval_interval_chunks = 100;
    cfg.load_balance.imbalance_threshold = 1.02;
    cfg.load_balance.top_k = 10;
    cfg.load_balance.max_rounds = 64;
    auto prof = make_parallel_profiler(cfg);
    replay(t, *prof);

    const ProfilerStats st = prof->stats();
    EXPECT_GT(st.migrated_addresses, 0u)
        << "migration path not exercised, wait=" << wait_kind_name(wait);
    EXPECT_TRUE(same_deps(serial, prof->dependences()))
        << "wait=" << wait_kind_name(wait);
  }
}

// Workers parked on empty queues must be woken by the stop sentinels: a
// profiler dropped (or finished) while all workers sleep must terminate
// rather than hang.  The ctest timeout is the hang detector.
TEST(ParallelStress, ShutdownWakesParkedWorkers) {
  for (int round = 0; round < 4; ++round) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kPerfect;
    cfg.workers = 4;
    cfg.wait = WaitKind::kPark;
    auto prof = make_parallel_profiler(cfg);
    AccessEvent e;
    e.addr = 0x1000;
    e.kind = AccessKind::kWrite;
    e.loc = SourceLocation(1, 1).packed();
    prof->on_access(e);
    // Let every worker drain its queue and park before shutdown.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (round % 2 == 0)
      prof->finish();
    // Odd rounds: destructor-only shutdown must also wake parked workers.
  }
}

// The parked strategy must actually park under starvation — the counters
// the backpressure layer reports have to reflect the blocking that
// happened (produce block time under a full queue, worker parks while
// starved).
TEST(ParallelStress, BackpressureCountersReflectBlocking) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.workers = 2;
  cfg.chunk_size = 1;
  cfg.queue_capacity = 1;
  cfg.wait = WaitKind::kPark;
  auto prof = make_parallel_profiler(cfg);

  // Starve the workers first so they run through spin -> yield -> park.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));

  GenParams p;
  p.accesses = 40'000;
  p.distinct = 64;
  const Trace t = gen_uniform(p);
  replay(t, *prof);

  const ProfilerStats st = prof->stats();
  const obs::StageSnapshot* produce = st.stages.find("produce");
  ASSERT_NE(produce, nullptr);
  EXPECT_GT(produce->stalls, 0u);
  EXPECT_GT(produce->block_ns, 0u);
  std::uint64_t worker_parks = 0, worker_idle = 0;
  for (const auto& s : st.stages.stages)
    if (s.stage.rfind("detect", 0) == 0) {
      worker_parks += s.parks;
      worker_idle += s.idle_ns;
    }
  EXPECT_GT(worker_parks, 0u);  // the pre-replay starvation guarantees parks
  EXPECT_GT(worker_idle, 0u);
}

// An explicit pool_chunks below the liveness floor (workers + 2) could
// deadlock the sealed pool: the producer stages its only chunk for one
// worker, then blocks forever acquiring one for the next — the pending
// chunk never flushes while the producer is blocked, and the workers have
// nothing to recycle.  Overhead-budget sampling makes the quiescent-producer
// window routine (a skipped unit produces nothing), so the plan must clamp
// the population up to the floor.  The ctest timeout is the hang detector.
TEST(ParallelStress, UndersizedSealedPoolIsClampedNotDeadlocked) {
  GenParams p;
  p.accesses = 60'000;
  p.distinct = 256;
  const Trace t = gen_uniform(p);

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  const DepMap serial = [&] {
    auto s = make_serial_profiler(cfg);
    replay(t, *s);
    return s->take_dependences();
  }();

  cfg.workers = 8;  // oversubscribed on most CI hosts
  cfg.chunk_size = 4;
  cfg.queue_capacity = 2;
  cfg.pool_chunks = 1;  // far below the workers + 2 floor
  cfg.wait = WaitKind::kPark;
  auto prof = make_parallel_profiler(cfg);
  // Bursty delivery with quiescent windows in between — the schedule a
  // mid-burst skip produces on a live run.
  constexpr std::size_t kBatch = 32;
  for (std::size_t off = 0; off < t.events.size(); off += kBatch) {
    prof->on_batch(t.events.data() + off,
                   std::min(kBatch, t.events.size() - off));
    if ((off / kBatch) % 64 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  prof->finish();
  EXPECT_TRUE(same_deps(serial, prof->dependences()));
}

// Target threads keep calling into the runtime while the main thread
// attaches and detaches profilers (ISSUE 3 satellite: the record path used
// to read the sink pointer twice, so a detach between the enabled() check
// and the buffer flush dereferenced a dying profiler).  TSan watches the
// snapshot protocol; the assertions check no event is delivered to a sink
// after its detach() returned.
TEST(ParallelStress, DetachUnderLoad) {
  /// Counts deliveries and flags any that arrive after detach() completed.
  class ClosableSink final : public AccessSink {
   public:
    void on_access(const AccessEvent&) override { on_batch(nullptr, 1); }
    void on_batch(const AccessEvent*, std::size_t count) override {
      events_.fetch_add(count, std::memory_order_relaxed);
      if (closed_.load(std::memory_order_relaxed))
        late_.fetch_add(count, std::memory_order_relaxed);
    }
    void finish() override {}
    void close() { closed_.store(true, std::memory_order_relaxed); }
    std::uint64_t events() const {
      return events_.load(std::memory_order_relaxed);
    }
    std::uint64_t late() const { return late_.load(std::memory_order_relaxed); }

   private:
    std::atomic<bool> closed_{false};
    std::atomic<std::uint64_t> events_{0};
    std::atomic<std::uint64_t> late_{0};
  };

  Runtime& rt = Runtime::instance();
  std::atomic<bool> stop{false};
  std::vector<std::thread> hammers;
  static int cells[64];
  for (int t = 0; t < 4; ++t)
    hammers.emplace_back([&, t] {
      std::uint32_t line = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i)
          rt.record(&cells[(t * 16 + i) % 64], 4, 1, 1 + line % 1000,
                    1, i % 2 == 0);
        rt.record_free(&cells[t * 16], 8);
        rt.sync_point();
        ++line;
      }
    });

  std::uint64_t total = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    ClosableSink sink;
    rt.attach(&sink, /*mt_mode=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    rt.detach();
    sink.close();
    // Give the hammers a beat: any still-unsynchronized record path would
    // now flush into the closed (stack-dead after this iteration) sink.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    EXPECT_EQ(sink.late(), 0u) << "events delivered after detach";
    total += sink.events();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : hammers) th.join();
  rt.reset();
  EXPECT_GT(total, 0u);  // the cycles actually observed traffic
}

}  // namespace
}  // namespace depprof
