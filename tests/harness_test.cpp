// Tests for the measurement harness: accuracy comparison, workload
// profiling runs, trace recording, and the Table II scorer.

#include <gtest/gtest.h>

#include "harness/accuracy.hpp"
#include "harness/runner.hpp"
#include "harness/table2.hpp"
#include "workloads/workload.hpp"

namespace depprof {
namespace {

DepKey key(DepType type, std::uint32_t sink, std::uint32_t src) {
  DepKey k;
  k.type = type;
  k.sink_loc = SourceLocation(1, sink).packed();
  k.src_loc = src ? SourceLocation(1, src).packed() : 0;
  return k;
}

TEST(Accuracy, IdenticalSetsAreClean) {
  DepMap a, b;
  a.add(key(DepType::kRaw, 20, 10), 0);
  b.add(key(DepType::kRaw, 20, 10), 0);
  const AccuracyResult r = compare_deps(a, b);
  EXPECT_EQ(r.false_positives, 0u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_EQ(r.fpr_percent(), 0.0);
  EXPECT_EQ(r.fnr_percent(), 0.0);
}

TEST(Accuracy, ExtraDepIsFalsePositive) {
  DepMap baseline, tested;
  baseline.add(key(DepType::kRaw, 20, 10), 0);
  tested.add(key(DepType::kRaw, 20, 10), 0);
  tested.add(key(DepType::kRaw, 20, 11), 0);  // corrupted source line
  const AccuracyResult r = compare_deps(baseline, tested);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_EQ(r.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(r.fpr_percent(), 50.0);
}

TEST(Accuracy, MissingDepIsFalseNegative) {
  DepMap baseline, tested;
  baseline.add(key(DepType::kRaw, 20, 10), 0);
  baseline.add(key(DepType::kWar, 21, 11), 0);
  tested.add(key(DepType::kRaw, 20, 10), 0);
  const AccuracyResult r = compare_deps(baseline, tested);
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(r.fnr_percent(), 50.0);
}

TEST(Accuracy, EmptySetsAreZeroRates) {
  DepMap a, b;
  const AccuracyResult r = compare_deps(a, b);
  EXPECT_EQ(r.fpr_percent(), 0.0);
  EXPECT_EQ(r.fnr_percent(), 0.0);
}

TEST(Runner, ProfileWorkloadFillsMeasurement) {
  const Workload* w = find_workload("ep");
  ASSERT_NE(w, nullptr);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  RunOptions opts;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);
  EXPECT_GT(m.native_sec, 0.0);
  EXPECT_GT(m.profiled_sec, 0.0);
  EXPECT_GE(m.slowdown(), 1.0);
  EXPECT_GT(m.deps.size(), 0u);
  EXPECT_FALSE(m.control_flow.loops.empty());
  EXPECT_EQ(m.native_checksum, m.profiled_checksum);
  EXPECT_GT(m.peak_component_bytes, 0);
}

TEST(Runner, SimulatedParallelTimeBounded) {
  const Workload* w = find_workload("is");
  ASSERT_NE(w, nullptr);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 16;
  cfg.workers = 4;
  RunOptions opts;
  opts.parallel_pipeline = true;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);
  // The simulated multi-core time can never exceed the single-core wall
  // time (which serializes producer and workers), and is at least the
  // producer's own CPU time.
  EXPECT_LE(m.simulated_parallel_sec(), m.profiled_sec * 1.5);
  EXPECT_GE(m.simulated_parallel_sec(), m.producer_cpu_sec);
}

TEST(Runner, RecordWorkloadCapturesTrace) {
  const Workload* w = find_workload("is");
  ASSERT_NE(w, nullptr);
  const Trace t = record_workload(*w);
  EXPECT_GT(t.size(), 1'000u);
  EXPECT_GT(t.distinct_addresses(), 100u);
  EXPECT_GT(t.write_ratio(), 0.0);
}

TEST(Runner, UnionOverInputsIsSuperset) {
  const Workload* w = find_workload("is");
  ASSERT_NE(w, nullptr);
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  RunOptions opts;
  opts.native_reps = 1;
  const RunMeasurement single = profile_workload(*w, cfg, opts);
  const DepMap unioned = union_over_inputs(*w, cfg, {1, 2});
  // The union over inputs contains every dependence of the single run.
  for (const auto& [key, info] : single.deps) {
    (void)info;
    EXPECT_NE(unioned.find(key), nullptr);
  }
  EXPECT_GE(unioned.size(), single.deps.size());
}

TEST(Table2Harness, PerfectAndLargeSignatureAgree) {
  const Workload* w = find_workload("ep");
  ASSERT_NE(w, nullptr);
  const Table2Row row = run_table2(*w, /*sig_slots=*/1u << 20);
  EXPECT_EQ(row.omp_loops, 1u);
  EXPECT_EQ(row.identified_dp, 1u);
  EXPECT_EQ(row.identified_sig, 1u);
  EXPECT_EQ(row.missed_sig, 0u);
  EXPECT_EQ(row.false_parallel_sig, 0u);
}

TEST(Table2Harness, AllNasRowsHealthyAtLargeSlots) {
  for (const Workload* w : workloads_in_suite("nas")) {
    const Table2Row row = run_table2(*w, 1u << 20);
    EXPECT_EQ(row.identified_dp, row.omp_loops) << w->name;
    EXPECT_EQ(row.missed_sig, 0u) << w->name;
    EXPECT_EQ(row.false_parallel_sig, 0u) << w->name;
  }
}

}  // namespace
}  // namespace depprof
