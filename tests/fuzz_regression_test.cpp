// Regression tests for fixed defects.  The ISSUE 3 fuzz findings: the
// word-span expansion of unaligned lifetime events, load-balancer
// statistics that never decayed, the trace reader trusting a hostile
// header, and shift-width UB in the route-stage sampler.  The ISSUE 4
// bugfixes: the end-of-run merge double-counting DepMap memory, the
// redistribution override table outliving its usefulness, and the
// hot-address spreading cursor skipping the least-loaded worker.  The
// detach/record race regression lives in stress_test.cpp (DetachUnderLoad)
// where TSan watches it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_stats.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/wire.hpp"
#include "instrument/dedup.hpp"
#include "instrument/runtime.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace depprof {
namespace {

// --- satellite 1: record_free must cover every touched word ---------------

std::set<std::uint64_t> freed_words(const Trace& trace) {
  std::set<std::uint64_t> words;
  for (const AccessEvent& ev : trace.events)
    if (ev.is_free()) words.insert(word_addr(ev.addr));
  return words;
}

TEST(FreeSpanRegression, UnalignedFreeCoversEveryTouchedWord) {
  alignas(8) static char buf[16];
  Runtime& rt = Runtime::instance();
  TraceRecorder rec;
  rt.attach(&rec);
  // Bytes buf[2..5] straddle the boundary between word(buf) and word(buf+4):
  // a span derived from the byte count alone (one word for four bytes) would
  // leave the second word's signature state alive.
  rt.record_free(&buf[2], 4);
  rt.detach();

  const std::set<std::uint64_t> words = freed_words(rec.trace());
  EXPECT_EQ(words.size(), 2u);
  EXPECT_TRUE(words.count(word_addr(reinterpret_cast<std::uint64_t>(&buf[2]))));
  EXPECT_TRUE(words.count(word_addr(reinterpret_cast<std::uint64_t>(&buf[5]))));
  rt.reset();
}

TEST(FreeSpanRegression, ZeroSizeFreeStillClearsBaseWord) {
  alignas(8) static char buf[8];
  Runtime& rt = Runtime::instance();
  TraceRecorder rec;
  rt.attach(&rec);
  rt.record_free(&buf[1], 0);
  rt.detach();

  const std::set<std::uint64_t> words = freed_words(rec.trace());
  EXPECT_EQ(words.size(), 1u);
  EXPECT_TRUE(words.count(word_addr(reinterpret_cast<std::uint64_t>(&buf[1]))));
  rt.reset();
}

TEST(FreeSpanRegression, WriteAfterUnalignedFreeIsInitNotWaw) {
  alignas(8) static int cells[4];
  Runtime& rt = Runtime::instance();
  TraceRecorder rec;
  rt.attach(&rec);
  rt.record(&cells[1], 4, 1, 10, 1, /*is_write=*/true);
  // Free bytes [cells+2, cells+6): unaligned, crossing into cells[1]'s word.
  rt.record_free(reinterpret_cast<char*>(cells) + 2, 4);
  rt.record(&cells[1], 4, 1, 20, 1, /*is_write=*/true);
  rt.detach();
  rt.reset();

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  auto profiler = make_serial_profiler(cfg);
  replay(rec.trace(), *profiler);

  const std::uint32_t second_write = SourceLocation(1, 20).packed();
  bool init_after_free = false;
  for (const auto& [key, info] : profiler->dependences()) {
    EXPECT_NE(key.type, DepType::kWaw)
        << "lifetime event failed to clear the written word";
    if (key.type == DepType::kInit && key.sink_loc == second_write)
      init_after_free = true;
  }
  EXPECT_TRUE(init_after_free);
}

// --- satellite 2: load-balancer statistics must decay ---------------------

ProfilerConfig balanced_cfg(unsigned workers) {
  ProfilerConfig cfg;
  cfg.workers = workers;
  cfg.load_balance.enabled = true;
  cfg.load_balance.sample_shift = 0;
  cfg.load_balance.eval_interval_chunks = 1;
  cfg.load_balance.imbalance_threshold = 1.25;
  cfg.load_balance.top_k = 4;
  cfg.load_balance.max_rounds = 16;
  return cfg;
}

TEST(LoadBalanceRegression, StatsDecayToZeroWithoutFreshTraffic) {
  const ProfilerConfig cfg = balanced_cfg(1);  // one worker: never imbalanced
  obs::StageStats stats;
  RouteStage route(cfg, cfg.workers, stats);
  const std::int64_t baseline =
      MemStats::instance().bytes(MemComponent::kAccessStats);

  for (int round = 0; round < 8; ++round)
    for (std::uint64_t a = 0; a < 64; ++a) route.record_access(a * 4);
  ASSERT_EQ(route.stat_entries(), 64u);

  // Counts are 8 per entry: halving reaches zero within four rounds.  An
  // evaluator that never ages its table keeps all 64 entries forever.
  for (std::uint64_t eval = 1; eval <= 5; ++eval) route.evaluate(eval);
  EXPECT_EQ(route.stat_entries(), 0u);
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kAccessStats), baseline);
}

TEST(LoadBalanceRegression, ExhaustedRoundsReleaseTheTable) {
  ProfilerConfig cfg = balanced_cfg(4);
  cfg.load_balance.max_rounds = 0;
  obs::StageStats stats;
  RouteStage route(cfg, cfg.workers, stats);
  const std::int64_t baseline =
      MemStats::instance().bytes(MemComponent::kAccessStats);

  for (std::uint64_t a = 0; a < 32; ++a) route.record_access(a * 4);
  ASSERT_EQ(route.stat_entries(), 32u);
  route.evaluate(1);
  EXPECT_EQ(route.stat_entries(), 0u);
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kAccessStats), baseline);
}

// --- satellite 5: sampler shift width -------------------------------------

TEST(LoadBalanceRegression, OversizedSampleShiftIsClampedNotUb) {
  for (const unsigned shift : {32u, 40u, 63u, 64u, 200u}) {
    ProfilerConfig cfg = balanced_cfg(4);
    cfg.load_balance.sample_shift = shift;
    obs::StageStats stats;
    RouteStage route(cfg, cfg.workers, stats);
    // With a >= 2^32 sampling period only the very first access lands in
    // the table.  The pre-fix 32-bit mask shifted by >= 32 was UB and could
    // sample everything (or nothing) depending on codegen.
    for (std::uint64_t a = 0; a < 100; ++a) route.record_access(a * 4);
    EXPECT_EQ(route.stat_entries(), 1u) << "shift " << shift;
    route.evaluate(1);  // return the MemStats bytes
  }
}

// --- satellite 3: read_trace must not trust the header --------------------

class TraceIoRegression : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  const std::string path_ = "fuzz_regression_trace.bin";
};

Trace small_trace(std::size_t n) {
  Trace t;
  for (std::size_t i = 0; i < n; ++i) {
    AccessEvent ev;
    ev.addr = 0x1000 + 4 * i;
    ev.kind = i % 2 ? AccessKind::kRead : AccessKind::kWrite;
    ev.loc = SourceLocation(1, static_cast<std::uint32_t>(i + 1)).packed();
    t.events.push_back(ev);
  }
  return t;
}

TEST_F(TraceIoRegression, RoundTripStillWorks) {
  const Trace t = small_trace(5);
  ASSERT_TRUE(write_trace(t, path_));
  Trace back;
  ASSERT_TRUE(read_trace(back, path_));
  ASSERT_EQ(back.size(), t.size());
  EXPECT_EQ(back.events[4].addr, t.events[4].addr);
}

TEST_F(TraceIoRegression, RejectsCountLargerThanFile) {
  ASSERT_TRUE(write_trace(small_trace(2), path_));
  {
    // Patch the header count to claim a gigabyte of events.
    std::fstream f(path_, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    f.seekp(8);
    const std::uint64_t lying_count = 1'000'000'000;
    f.write(reinterpret_cast<const char*>(&lying_count), sizeof(lying_count));
  }
  Trace out;
  out.events.push_back(AccessEvent{});
  EXPECT_FALSE(read_trace(out, path_));
  EXPECT_EQ(out.size(), 1u);  // untouched on failure
}

TEST_F(TraceIoRegression, RejectsTruncatedPayload) {
  ASSERT_TRUE(write_trace(small_trace(4), path_));
  {
    std::ifstream in(path_, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 40u);
    bytes.resize(bytes.size() - 40);  // chop into the last event
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  Trace out;
  EXPECT_FALSE(read_trace(out, path_));
}

TEST_F(TraceIoRegression, RejectsGarbageAndShortFiles) {
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f << "not a trace";
  }
  Trace out;
  EXPECT_FALSE(read_trace(out, path_));
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
  }
  EXPECT_FALSE(read_trace(out, path_));
}

// --- ISSUE 4 satellite 1: end-of-run merge must transfer, not copy --------

TEST(MergeAccountingRegression, FinishDoesNotDoubleCountDepMaps) {
  // Every address gets its own write→read pair at its own pair of source
  // lines, so each worker-local map holds keys no other worker produces and
  // the merged map is exactly the sum of the locals.  A fold that *copies*
  // a local before freeing it therefore doubles the kDepMaps footprint at
  // its peak; a transferring fold keeps the peak at the final size.
  Trace t;
  constexpr std::uint32_t kAddrs = 400;
  for (std::uint32_t i = 0; i < kAddrs; ++i) {
    AccessEvent w;
    w.addr = 0x10000 + 4 * i;
    w.kind = AccessKind::kWrite;
    w.loc = SourceLocation(1, 2 * i + 1).packed();
    t.events.push_back(w);
    AccessEvent r = w;
    r.kind = AccessKind::kRead;
    r.loc = SourceLocation(1, 2 * i + 2).packed();
    t.events.push_back(r);
  }

  MemStats::instance().reset();
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.workers = 4;
  auto prof = make_parallel_profiler(cfg);
  replay(t, *prof);

  const std::int64_t final_bytes =
      MemStats::instance().bytes(MemComponent::kDepMaps);
  const std::int64_t peak = MemStats::instance().peak(MemComponent::kDepMaps);
  EXPECT_EQ(prof->dependences().size(), 2u * kAddrs);  // INIT + RAW per addr
  ASSERT_GT(final_bytes, 0);
  EXPECT_LE(peak, final_bytes + final_bytes / 4)
      << "merge copied the worker-local maps instead of transferring them";
}

// --- ISSUE 4 satellite 2: override-table lifetime -------------------------

TEST(LoadBalanceRegression, StaleOverridesAreEvictedHomeward) {
  ProfilerConfig cfg = balanced_cfg(2);
  cfg.modulo_routing = true;
  cfg.load_balance.top_k = 2;
  obs::StageStats stats;
  RouteStage route(cfg, cfg.workers, stats);
  const std::int64_t baseline =
      MemStats::instance().bytes(MemComponent::kAccessStats);

  // Skewed traffic: unit 2 on worker 0, units 1/3/5 pile onto worker 1.
  for (int i = 0; i < 30; ++i) route.record_access(2);
  for (int i = 0; i < 25; ++i) route.record_access(1);
  for (int i = 0; i < 24; ++i) route.record_access(3);
  for (int i = 0; i < 23; ++i) route.record_access(5);
  ASSERT_EQ(route.evaluate(1).size(), 1u);
  ASSERT_EQ(route.override_entries(), 1u);
  ASSERT_EQ(route.route(1), 0u);  // overridden off its modulo home

  // No fresh traffic: the statistics decay away, and the override must go
  // with them — as a homeward migration, never a silent re-route (silent
  // re-routing strands the signature state at the override target).  The
  // pre-fix table kept the entry, and its memory, for the rest of the run.
  std::vector<Migration> home;
  for (std::uint64_t eval = 2; eval < 10 && home.empty(); ++eval)
    home = route.evaluate(eval);
  ASSERT_EQ(home.size(), 1u);
  EXPECT_EQ(home[0].addr, 1u);
  EXPECT_EQ(home[0].from, 0u);
  EXPECT_EQ(home[0].to, 1u);
  EXPECT_EQ(route.override_entries(), 0u);
  EXPECT_EQ(route.route(1), 1u);
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kAccessStats), baseline);
}

TEST(LoadBalanceRegression, MaxRoundsReleasesOverridesHomeward) {
  ProfilerConfig cfg = balanced_cfg(2);
  cfg.modulo_routing = true;
  cfg.load_balance.top_k = 2;
  cfg.load_balance.max_rounds = 1;
  obs::StageStats stats;
  RouteStage route(cfg, cfg.workers, stats);
  const std::int64_t baseline =
      MemStats::instance().bytes(MemComponent::kAccessStats);

  for (int i = 0; i < 30; ++i) route.record_access(2);
  for (int i = 0; i < 25; ++i) route.record_access(1);
  for (int i = 0; i < 24; ++i) route.record_access(3);
  for (int i = 0; i < 23; ++i) route.record_access(5);
  ASSERT_EQ(route.evaluate(1).size(), 1u);
  ASSERT_EQ(route.override_entries(), 1u);

  // Rounds exhausted: the next evaluation must send every overridden
  // address back to its formula-1 owner and free both tables for good.
  const std::vector<Migration> home = route.evaluate(2);
  ASSERT_EQ(home.size(), 1u);
  EXPECT_EQ(home[0].addr, 1u);
  EXPECT_EQ(home[0].from, 0u);
  EXPECT_EQ(home[0].to, 1u);
  EXPECT_EQ(route.override_entries(), 0u);
  EXPECT_EQ(route.stat_entries(), 0u);
  EXPECT_EQ(route.route(1), 1u);
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kAccessStats), baseline);
}

// --- ISSUE 4 satellite 3: spreading cursor advances only on a move --------

TEST(LoadBalanceRegression, SpreadingCursorDoesNotSkipLeastLoadedWorker) {
  // Two workers under modulo routing.  Unit 2 is the single hottest address
  // and already lives on the least-loaded worker 0; units 1/3/5 overload
  // worker 1 (load 30 vs 72, ratio 1.41 > threshold 1.25).  With top_k=2
  // the spreader considers [unit 2, unit 1] against the ascending-load
  // order [w0, w1].  Unit 2 stays put — and must not consume w0's slot: the
  // pre-fix cursor advanced anyway, offered unit 1 its *own* worker w1, and
  // the round moved nothing at all.
  ProfilerConfig cfg = balanced_cfg(2);
  cfg.modulo_routing = true;
  cfg.load_balance.top_k = 2;
  obs::StageStats stats;
  RouteStage route(cfg, cfg.workers, stats);

  for (int i = 0; i < 30; ++i) route.record_access(2);
  for (int i = 0; i < 25; ++i) route.record_access(1);
  for (int i = 0; i < 24; ++i) route.record_access(3);
  for (int i = 0; i < 23; ++i) route.record_access(5);

  const std::vector<Migration> moves = route.evaluate(1);
  ASSERT_EQ(moves.size(), 1u) << "hot address stranded on the busy worker";
  EXPECT_EQ(moves[0].addr, 1u);
  EXPECT_EQ(moves[0].from, 1u);
  EXPECT_EQ(moves[0].to, 0u);
  EXPECT_EQ(route.route(1), 0u);
  EXPECT_EQ(route.route(2), 0u);  // the resident hot address did not move
}

// --- ISSUE 5 satellite: record_free must invalidate the dedup cache -------

TEST(DedupRegression, FreeInvalidatesCachedWordSoReuseStartsAFreshLifetime) {
  // W(x); free(x); W(x) with byte-identical access identities — the pattern
  // a realloc-reuse produces.  The second write is a fresh INIT; without
  // the per-word cache invalidation in record_free it merges into the
  // *pre-free* write's record, the expanded stream decodes as W,W,F, and
  // the profiler reports a WAW inside what are two separate lifetimes
  // while the second INIT disappears.
  alignas(8) static int cell;
  Runtime& rt = Runtime::instance();
  rt.reset();
  TraceRecorder rec;
  rt.attach(&rec, /*mt_mode=*/false, /*dedup=*/true);
  rt.record(&cell, 4, 1, 10, 1, /*is_write=*/true);
  rt.record_free(&cell, 4);
  rt.record(&cell, 4, 1, 10, 1, /*is_write=*/true);
  rt.detach();
  rt.reset();

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  auto profiler = make_serial_profiler(cfg);
  replay(rec.trace(), *profiler);

  const std::uint32_t write_loc = SourceLocation(1, 10).packed();
  std::uint64_t init_instances = 0;
  for (const auto& [key, info] : profiler->dependences()) {
    EXPECT_NE(key.type, DepType::kWaw)
        << "dedup merged a write across the freed word's lifetime boundary";
    if (key.type == DepType::kInit && key.sink_loc == write_loc)
      init_instances += info.count;
  }
  EXPECT_EQ(init_instances, 2u) << "the post-free INIT was suppressed";
}

// --- ISSUE 5 satellite: the chunk pool is bounded --------------------------

TEST(ChunkPoolRegression, ProduceBurstDoesNotRatchetThePoolFootprint) {
  MemStats::instance().reset();
  {
    ChunkPool pool(/*max_pooled=*/8);
    // The free-list ring itself charges kQueues; measure chunks as a delta.
    const std::int64_t baseline =
        MemStats::instance().bytes(MemComponent::kQueues);
    // A burst holds many chunks in flight at once; before the bound, every
    // one of them was hoarded on the free list forever afterwards.
    std::vector<Chunk*> burst;
    for (int i = 0; i < 100; ++i) burst.push_back(pool.acquire());
    EXPECT_EQ(pool.allocated(), 100u);
    for (Chunk* c : burst) pool.release(c);
    EXPECT_EQ(pool.pool_size(), 8u);   // cap, not burst size
    EXPECT_EQ(pool.allocated(), 8u);   // the spill freed the rest
    EXPECT_EQ(MemStats::instance().bytes(MemComponent::kQueues) - baseline,
              static_cast<std::int64_t>(8 * sizeof(Chunk)));
    // Steady state recycles the retained chunks without allocating.
    Chunk* c = pool.acquire();
    EXPECT_EQ(pool.allocated(), 8u);
    pool.release(c);
  }
  // Teardown returns every charged byte.
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kQueues), 0);
  MemStats::instance().reset();
}

// --- ISSUE 8: the burst marker vs the front-end reduction layer ------------

TEST(WireRegression, BurstMarkWithHighFlagsCannotMasqueradeAsEscape) {
  // kind = kBurstMark (3) with flags 0x3F packs kind_flags to 0xFF — the
  // escape header.  The compact path would emit a 16-byte record whose
  // header byte reads as an escape, and the decoder would then interpret
  // whatever follows as a raw 64-byte event.  The encoder must detect the
  // collision and take the real escape path instead.
  WireEncoder enc;
  WireDecoder dec;
  unsigned char buf[kMaxWireRecordBytes];
  AccessEvent base;
  base.addr = 0x1000;
  base.kind = AccessKind::kRead;
  bool escaped = false;
  std::size_t n = enc.encode(base, 1, buf, escaped);
  AccessEvent out;
  std::uint32_t rep = 0;
  ASSERT_EQ(dec.decode(buf, out, rep), n);

  AccessEvent mark;
  mark.addr = 0x1004;
  mark.kind = AccessKind::kBurstMark;
  mark.flags = 0x3F;  // kind | flags << 2 == kWireEscape
  n = enc.encode(mark, 1, buf, escaped);
  EXPECT_TRUE(escaped) << "collision with the escape header went compact";
  ASSERT_EQ(n, kMaxWireRecordBytes);
  ASSERT_EQ(dec.decode(buf, out, rep), n);
  EXPECT_EQ(rep, 1u);
  EXPECT_EQ(std::memcmp(&out, &mark, sizeof(out)), 0)
      << "escape record did not roundtrip the marker";
}

TEST(DedupRegression, BurstMarkTerminatesRunsAndIsNeverMerged) {
  // A repeat separated from its first instance by a burst marker must not
  // merge: the marker clears all downstream detection state, and expanding
  // the run would move the repeat back across that clearing point — turning
  // the post-gap re-INIT into a pre-gap repeat the subset checker rejects.
  std::vector<AccessEvent> evs;
  AccessEvent w;
  w.addr = 0x2000;
  w.kind = AccessKind::kWrite;
  w.loc = SourceLocation(1, 5).packed();
  evs.push_back(w);
  evs.push_back(w);  // exact repeat: merges into a run of two
  AccessEvent mark;
  mark.kind = AccessKind::kBurstMark;
  evs.push_back(mark);
  evs.push_back(w);  // post-gap instance: must open a fresh record
  evs.push_back(w);  // ...which its own repeat may then join
  const RleStream rle = dedup_stream(evs.data(), evs.size());
  ASSERT_EQ(rle.events.size(), 3u);
  EXPECT_EQ(rle.reps[0], 2u);
  EXPECT_TRUE(rle.events[1].is_burst_mark());
  EXPECT_EQ(rle.reps[1], 1u);
  EXPECT_EQ(rle.reps[2], 2u);
  EXPECT_EQ(rle.logical_events(), 5u);
}

}  // namespace
}  // namespace depprof
