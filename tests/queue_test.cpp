// Unit, property, and stress tests for the concurrency substrate: the
// lock-free SPSC ring, the Vyukov MPMC queue, the mutex queue, and the
// chunk recycling pool.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "core/chunk.hpp"
#include "queue/queues.hpp"
#include "queue/wait_strategy.hpp"

namespace depprof {
namespace {

// ----------------------------------------------- common semantics (param.)

class QueueSemantics : public ::testing::TestWithParam<QueueKind> {};

TEST_P(QueueSemantics, FifoOrder) {
  auto q = make_queue<int>(GetParam(), 16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q->try_push(i));
  int v = -1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q->try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q->try_pop(v));
}

TEST_P(QueueSemantics, FullRejectsPush) {
  auto q = make_queue<int>(GetParam(), 4);
  EXPECT_EQ(q->capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q->try_push(i));
  EXPECT_FALSE(q->try_push(99));
  int v;
  ASSERT_TRUE(q->try_pop(v));
  EXPECT_TRUE(q->try_push(99));  // space reappears after a pop
}

TEST_P(QueueSemantics, EmptyRejectsPop) {
  auto q = make_queue<int>(GetParam(), 4);
  int v;
  EXPECT_FALSE(q->try_pop(v));
}

TEST_P(QueueSemantics, CapacityRoundsUpToPow2) {
  auto q = make_queue<int>(GetParam(), 5);
  EXPECT_EQ(q->capacity(), 8u);
}

TEST_P(QueueSemantics, SizeApproxTracksContent) {
  auto q = make_queue<int>(GetParam(), 16);
  EXPECT_EQ(q->size_approx(), 0u);
  q->try_push(1);
  q->try_push(2);
  EXPECT_EQ(q->size_approx(), 2u);
  int v;
  q->try_pop(v);
  EXPECT_EQ(q->size_approx(), 1u);
}

TEST_P(QueueSemantics, WrapAroundManyTimes) {
  auto q = make_queue<int>(GetParam(), 8);
  int v;
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q->try_push(round));
    ASSERT_TRUE(q->try_pop(v));
    EXPECT_EQ(v, round);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, QueueSemantics,
                         ::testing::Values(QueueKind::kLockFreeSpsc,
                                           QueueKind::kLockFreeMpmc,
                                           QueueKind::kMutex),
                         [](const auto& info) {
                           return std::string(queue_kind_name(info.param))
                                      .find("spsc") != std::string::npos
                                      ? "spsc"
                                  : queue_kind_name(info.param) ==
                                          std::string("lock-free-mpmc")
                                      ? "mpmc"
                                      : "mutex";
                         });

// -------------------------------------------------- cross-thread transfer

/// SPSC stress: one producer, one consumer, every element delivered exactly
/// once in order.
TEST(SpscQueue, ProducerConsumerStressPreservesOrder) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kItems = 200'000;
  std::thread consumer([&] {
    std::uint64_t expected = 0, v = 0;
    while (expected < kItems) {
      if (q.try_pop(v)) {
        ASSERT_EQ(v, expected);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kItems; ++i)
    while (!q.try_push(i)) std::this_thread::yield();
  consumer.join();
}

/// MPMC stress: multiple producers and consumers, every element delivered
/// exactly once (multiset equality), per-producer order preserved.
TEST(MpmcQueue, MultiProducerMultiConsumerExactlyOnce) {
  MpmcQueue<std::uint64_t> q(128);
  constexpr unsigned kProducers = 4, kConsumers = 4;
  constexpr std::uint64_t kPerProducer = 20'000;

  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::vector<std::uint64_t>> got(kConsumers);
  std::vector<std::thread> threads;

  for (unsigned c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::uint64_t v;
      while (consumed.load(std::memory_order_relaxed) <
             kProducers * kPerProducer) {
        if (q.try_pop(v)) {
          got[c].push_back(v);
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (unsigned p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(v)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();

  // Exactly-once delivery.
  std::set<std::uint64_t> all;
  std::size_t total = 0;
  for (const auto& vec : got) {
    total += vec.size();
    for (std::uint64_t v : vec) EXPECT_TRUE(all.insert(v).second);
  }
  EXPECT_EQ(total, kProducers * kPerProducer);
  // Per-producer FIFO within each consumer's stream.
  for (const auto& vec : got) {
    std::vector<std::uint64_t> prev(kProducers, 0);
    std::vector<bool> started(kProducers, false);
    for (std::uint64_t v : vec) {
      const auto p = static_cast<unsigned>(v >> 32);
      const std::uint64_t i = v & 0xFFFFFFFFull;
      if (started[p]) {
        EXPECT_GT(i, prev[p]);
      }
      prev[p] = i;
      started[p] = true;
    }
  }
}

/// The mutex queue must also survive concurrent producers/consumers.
TEST(MutexQueue, ConcurrentTransferDeliversAll) {
  MutexQueue<int> q(64);
  constexpr int kItems = 50'000;
  std::atomic<long long> sum{0};
  std::thread consumer([&] {
    int got = 0, v;
    while (got < kItems) {
      if (q.try_pop(v)) {
        sum.fetch_add(v);
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  long long expect = 0;
  for (int i = 0; i < kItems; ++i) {
    expect += i;
    while (!q.try_push(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), expect);
}

// ----------------------------------------------------------------- chunks

TEST(ChunkPool, RecyclesChunks) {
  ChunkPool pool;
  Chunk* a = pool.acquire();
  ASSERT_NE(a, nullptr);
  a->count = 17;
  a->kind = Chunk::Kind::kStop;
  pool.release(a);
  Chunk* b = pool.acquire();
  EXPECT_EQ(b, a);  // recycled, not reallocated
  EXPECT_EQ(b->count, 0u);  // reset on acquire
  EXPECT_EQ(b->kind, Chunk::Kind::kData);
  EXPECT_EQ(pool.allocated(), 1u);
}

TEST(ChunkPool, AllocatesWhenEmpty) {
  ChunkPool pool;
  Chunk* a = pool.acquire();
  Chunk* b = pool.acquire();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.allocated(), 2u);
  pool.release(a);
  pool.release(b);
}

TEST(ChunkPool, ChargesQueueMemory) {
  MemStats::instance().reset();
  {
    ChunkPool pool;
    (void)pool.acquire();
    EXPECT_GE(MemStats::instance().bytes(MemComponent::kQueues),
              static_cast<std::int64_t>(sizeof(Chunk)));
  }
  EXPECT_LE(MemStats::instance().bytes(MemComponent::kQueues), 0);
  MemStats::instance().reset();
}

TEST(Chunk, CapacityHoldsConfiguredEvents) {
  Chunk c;
  EXPECT_EQ(c.kind, Chunk::Kind::kData);
  static_assert(Chunk::kCapacity >= 512, "chunk capacity covers default config");
}

// -------------------------------------------------- wait strategies

TEST(WaitStrategy, NamesRoundTrip) {
  for (WaitKind k : {WaitKind::kSpin, WaitKind::kYield, WaitKind::kPark}) {
    WaitKind parsed{};
    ASSERT_TRUE(parse_wait_kind(wait_kind_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
  WaitKind parsed{};
  EXPECT_FALSE(parse_wait_kind("busyloop", parsed));
}

TEST(WaitStrategy, ImmediateConditionNeverWaits) {
  EventCount ec;
  for (WaitKind k : {WaitKind::kSpin, WaitKind::kYield, WaitKind::kPark}) {
    const WaitCounters wc = wait_until(k, ec, [] { return true; });
    EXPECT_EQ(wc.parks, 0u);
    EXPECT_EQ(wc.parked_ns, 0u);
    EXPECT_EQ(wc.yields, 0u);
  }
}

TEST(WaitStrategy, NotifyWithoutWaitersIsFree) {
  EventCount ec;
  EXPECT_EQ(ec.notify_all(), 0u);
}

// A park-strategy waiter must actually block (parks >= 1) and be released
// by the notifier — the wake hook protocol of the pipeline's three sites.
TEST(WaitStrategy, ParkedWaiterIsWokenByNotify) {
  EventCount ec;
  std::atomic<bool> ready{false};
  std::atomic<std::uint64_t> delivered{0};
  WaitCounters wc;
  std::thread waiter([&] {
    wc = wait_until(WaitKind::kPark, ec,
                    [&] { return ready.load(std::memory_order_acquire); });
  });
  // Give the waiter time to exhaust its spin/yield phases and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ready.store(true, std::memory_order_release);
  delivered += ec.notify_all();
  waiter.join();
  EXPECT_GE(wc.parks, 1u);
  EXPECT_GT(wc.parked_ns, 0u);
  // The notify may race with a backstop-timeout re-poll, so a delivered
  // wake is likely but not guaranteed; the waiter exiting is the contract.
}

// prepare/cancel/notify under concurrent churn: no waiter may be lost and
// no thread may hang (TSan covers the memory orders).
TEST(WaitStrategy, ManyWaitersAllReleased) {
  EventCount ec;
  std::atomic<int> released{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i)
    waiters.emplace_back([&] {
      (void)wait_until(WaitKind::kPark, ec,
                       [&] { return go.load(std::memory_order_acquire); });
      released.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  go.store(true, std::memory_order_release);
  (void)ec.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released.load(), 4);
}

}  // namespace
}  // namespace depprof
