// Unit and property tests for the signature substrate: fixed-size
// signature, perfect signature, shadow memory, hash-table recorder, and the
// formula-2 FPR model.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/huge_alloc.hpp"
#include "common/mem_stats.hpp"
#include "common/rng.hpp"
#include "sig/fpr_model.hpp"
#include "sig/hash_table_recorder.hpp"
#include "sig/packed_shadow_store.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/shadow_memory.hpp"
#include "sig/signature.hpp"
#include "sig/slots.hpp"

namespace depprof {
namespace {

SeqSlot slot_at(std::uint32_t line) {
  SeqSlot s;
  s.loc = SourceLocation(1, line).packed();
  return s;
}

// ---------------------------------------------------------------- Signature

TEST(Signature, InsertFindRemove) {
  Signature<SeqSlot> sig(1024);
  EXPECT_EQ(sig.find(42), nullptr);
  sig.insert(42, slot_at(10));
  ASSERT_NE(sig.find(42), nullptr);
  EXPECT_EQ(sig.find(42)->location().line(), 10u);
  EXPECT_EQ(sig.occupied(), 1u);
  sig.remove(42);
  EXPECT_EQ(sig.find(42), nullptr);
  EXPECT_EQ(sig.occupied(), 0u);
}

TEST(Signature, InsertOverwritesSlot) {
  Signature<SeqSlot> sig(1024);
  sig.insert(42, slot_at(10));
  sig.insert(42, slot_at(20));
  EXPECT_EQ(sig.find(42)->location().line(), 20u);
  EXPECT_EQ(sig.occupied(), 1u);
}

TEST(Signature, ModuloCollisionSharesSlot) {
  // Under modulo indexing, addr and addr + slot_count collide by design.
  Signature<SeqSlot> sig(128, SigHash::kModulo);
  sig.insert(5, slot_at(10));
  ASSERT_NE(sig.find(5 + 128), nullptr);  // approximate membership: false hit
  EXPECT_EQ(sig.find(5 + 128)->location().line(), 10u);
}

TEST(Signature, RemoveClearsCollidingResident) {
  // Removal clears whatever occupies the slot — the accepted approximation
  // of the variable-lifetime analysis.
  Signature<SeqSlot> sig(128, SigHash::kModulo);
  sig.insert(5, slot_at(10));
  sig.remove(5 + 128);
  EXPECT_EQ(sig.find(5), nullptr);
}

TEST(Signature, ExtractMovesState) {
  Signature<SeqSlot> sig(1024);
  sig.insert(7, slot_at(33));
  auto st = sig.extract(7);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->location().line(), 33u);
  EXPECT_EQ(sig.find(7), nullptr);
  EXPECT_FALSE(sig.extract(7).has_value());
}

TEST(Signature, IntersectCountsSharedSlots) {
  Signature<SeqSlot> a(256), b(256);
  a.insert(1, slot_at(1));
  b.insert(1, slot_at(2));
  a.insert(9, slot_at(1));
  // Address 1 was inserted into both: disambiguation must count it.
  EXPECT_GE(a.intersect_count(b), 1u);
}

TEST(Signature, ClearResetsEverything) {
  Signature<SeqSlot> sig(64);
  for (std::uint64_t i = 0; i < 50; ++i) sig.insert(i, slot_at(1));
  sig.clear();
  EXPECT_EQ(sig.occupied(), 0u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sig.find(i), nullptr);
}

TEST(Signature, BytesIsSlotCountTimesSlotSize) {
  Signature<SeqSlot> sig(1000);
  EXPECT_EQ(sig.bytes(), 1000 * sizeof(SeqSlot));
  Signature<MtSlot> mt(1000);
  EXPECT_EQ(mt.bytes(), 1000 * sizeof(MtSlot));
}

TEST(Signature, ZeroSlotCountClampsToOne) {
  Signature<SeqSlot> sig(0);
  EXPECT_EQ(sig.slot_count(), 1u);
  sig.insert(1, slot_at(1));
  EXPECT_NE(sig.find(999), nullptr);  // everything shares the single slot
}

TEST(Signature, MemoryAccountingCharged) {
  MemStats::instance().reset();
  {
    Signature<SeqSlot> sig(1024);
    EXPECT_EQ(MemStats::instance().bytes(MemComponent::kSignatures),
              static_cast<std::int64_t>(1024 * sizeof(SeqSlot)));
  }
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kSignatures), 0);
}

// Parameterized property: under both index functions, an element inserted
// and not removed is always found (no false negatives of *membership*).
class SignatureHashProperty : public ::testing::TestWithParam<SigHash> {};

TEST_P(SignatureHashProperty, MembershipNeverMissesInsertedElements) {
  Signature<SeqSlot> sig(1u << 14, GetParam());
  Rng rng(5);
  std::set<std::uint64_t> inserted;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng.below(1u << 20);
    sig.insert(addr, slot_at(1));
    inserted.insert(addr);
  }
  for (std::uint64_t addr : inserted) EXPECT_NE(sig.find(addr), nullptr);
}

TEST_P(SignatureHashProperty, OccupancyNeverExceedsInsertions) {
  Signature<SeqSlot> sig(1u << 10, GetParam());
  Rng rng(6);
  for (int i = 0; i < 500; ++i) sig.insert(rng(), slot_at(1));
  EXPECT_LE(sig.occupied(), 500u);
  EXPECT_LE(sig.occupied(), sig.slot_count());
}

INSTANTIATE_TEST_SUITE_P(BothHashes, SignatureHashProperty,
                         ::testing::Values(SigHash::kModulo, SigHash::kMix));

// -------------------------------------------------------- PerfectSignature

TEST(PerfectSignature, NeverCollides) {
  PerfectSignature<SeqSlot> sig;
  sig.insert(5, slot_at(10));
  EXPECT_EQ(sig.find(5 + 128), nullptr);
  EXPECT_EQ(sig.find(5 + (1u << 20)), nullptr);
  ASSERT_NE(sig.find(5), nullptr);
}

TEST(PerfectSignature, RemoveIsExact) {
  PerfectSignature<SeqSlot> sig;
  sig.insert(5, slot_at(10));
  sig.insert(6, slot_at(11));
  sig.remove(5);
  EXPECT_EQ(sig.find(5), nullptr);
  ASSERT_NE(sig.find(6), nullptr);
  EXPECT_EQ(sig.occupied(), 1u);
}

TEST(PerfectSignature, ExtractAndBytesGrowWithContent) {
  PerfectSignature<SeqSlot> sig;
  EXPECT_EQ(sig.bytes(), 0u);
  sig.insert(1, slot_at(1));
  EXPECT_GT(sig.bytes(), 0u);
  auto st = sig.extract(1);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(sig.bytes(), 0u);
}

// ------------------------------------------------------------ ShadowMemory

TEST(ShadowMemory, ExactWithinPage) {
  ShadowMemory<SeqSlot> shadow;
  shadow.insert(100, slot_at(10));
  ASSERT_NE(shadow.find(100), nullptr);
  EXPECT_EQ(shadow.find(101), nullptr);
  EXPECT_EQ(shadow.page_count(), 1u);
}

TEST(ShadowMemory, PagesAllocatedOnDemand) {
  ShadowMemory<SeqSlot> shadow;
  shadow.insert(0, slot_at(1));
  shadow.insert(ShadowMemory<SeqSlot>::kPageSlots + 5, slot_at(2));
  EXPECT_EQ(shadow.page_count(), 2u);
  EXPECT_GE(shadow.bytes(),
            2 * ShadowMemory<SeqSlot>::kPageSlots * sizeof(SeqSlot));
}

TEST(ShadowMemory, SparseAddressesBlowUpMemory) {
  // The Sec. III-B problem: widely spread addresses allocate a page each.
  ShadowMemory<SeqSlot> shadow;
  for (std::uint64_t i = 0; i < 64; ++i)
    shadow.insert(i * (ShadowMemory<SeqSlot>::kPageSlots * 4), slot_at(1));
  EXPECT_GE(shadow.page_count(), 32u);
  Signature<SeqSlot> sig(1024);
  EXPECT_GT(shadow.bytes(), sig.bytes() * 10);
}

TEST(ShadowMemory, RemoveAndExtract) {
  ShadowMemory<SeqSlot> shadow;
  shadow.insert(100, slot_at(10));
  auto st = shadow.extract(100);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(shadow.find(100), nullptr);
  shadow.remove(12345);  // removing absent address is a no-op
}

// -------------------------------------------------------- PackedShadowStore

using PackedSeq = PackedShadowStore<SeqSlot>;
using PackedMt = PackedShadowStore<MtSlot>;

TEST(PackedShadowStore, PackUnpackRoundTripsAtFieldBoundaries) {
  // All-ones loc must not bleed into the token half and vice versa.
  constexpr std::uint32_t kMaxLoc = 0xFFFFFFFFu;
  constexpr std::uint32_t kMaxToken = 0xFFFFFFFFu;
  static_assert(PackedSeq::word_loc(PackedSeq::pack_word(kMaxLoc, 0)) ==
                kMaxLoc);
  static_assert(PackedSeq::word_token(PackedSeq::pack_word(kMaxLoc, 0)) == 0u);
  static_assert(PackedSeq::word_loc(PackedSeq::pack_word(0, kMaxToken)) == 0u);
  static_assert(PackedSeq::word_token(PackedSeq::pack_word(0, kMaxToken)) ==
                kMaxToken);
  static_assert(PackedSeq::word_loc(PackedSeq::pack_word(kMaxLoc, kMaxToken)) ==
                kMaxLoc);
  static_assert(
      PackedSeq::word_token(PackedSeq::pack_word(kMaxLoc, kMaxToken)) ==
      kMaxToken);
  // The zero word doubles as the empty sentinel.
  static_assert(PackedSeq::pack_word(0, 0) == 0u);
  // Alternating bit patterns survive both directions (no sign extension).
  constexpr std::uint64_t w = PackedSeq::pack_word(0xAAAAAAAAu, 0x55555555u);
  static_assert(PackedSeq::word_loc(w) == 0xAAAAAAAAu);
  static_assert(PackedSeq::word_token(w) == 0x55555555u);
  SUCCEED();
}

TEST(PackedShadowStore, InsertFindRemove) {
  PackedSeq store;
  EXPECT_EQ(store.find(42), nullptr);
  store.insert(42, slot_at(10));
  ASSERT_NE(store.find(42), nullptr);
  EXPECT_EQ(store.find(42)->location().line(), 10u);
  EXPECT_EQ(store.find(42)->tag, addr_tag(42));  // recomputed, not stored
  EXPECT_EQ(store.occupied(), 1u);
  EXPECT_EQ(store.page_count(), 1u);
  store.remove(42);
  EXPECT_EQ(store.find(42), nullptr);
  EXPECT_EQ(store.occupied(), 0u);
  store.remove(12345);  // removing an absent address is a no-op
}

TEST(PackedShadowStore, MaxLocRoundTripsThroughPage) {
  // The largest packed SourceLocation occupies every loc bit; it must come
  // back intact (and must not read as a token).
  PackedSeq store;
  SeqSlot s;
  s.loc = 0xFFFFFFFFu;
  s.ctx = 7;
  s.iters[0] = 3;
  store.insert(99, s);
  const SeqSlot* got = store.find(99);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->loc, 0xFFFFFFFFu);
  EXPECT_EQ(got->ctx, 7u);
  EXPECT_EQ(got->iters[0], 3u);
}

TEST(PackedShadowStore, OverwriteReplacesSnapshotWithoutLeakingTokens) {
  PackedSeq store;
  SeqSlot s = slot_at(10);
  s.iters[0] = 1;
  store.insert(42, s);
  s = slot_at(20);
  s.iters[0] = 2;
  store.insert(42, s);
  EXPECT_EQ(store.occupied(), 1u);
  EXPECT_EQ(store.find(42)->location().line(), 20u);
  EXPECT_EQ(store.find(42)->iters[0], 2u);
  // Only the live snapshot remains interned after the overwrite.
  EXPECT_EQ(store.interned_snapshots(), 1u);
}

TEST(PackedShadowStore, InsertingEmptySlotReadsAsAbsent) {
  // Shadow semantics: writing an empty slot is a removal, so a store that
  // round-trips through extract/adopt behaves identically to ShadowMemory.
  PackedSeq store;
  store.insert(42, slot_at(10));
  store.insert(42, SeqSlot{});
  EXPECT_EQ(store.find(42), nullptr);
  EXPECT_EQ(store.occupied(), 0u);
  EXPECT_EQ(store.interned_snapshots(), 0u);
}

TEST(PackedShadowStore, TokenRecyclingBoundsTheInternTable) {
  // The wrap guard in practice: overwrite churn with ever-fresh snapshots
  // must recycle ids through the free list, not mint unboundedly toward the
  // 2^31 aliasing cliff.  Acquire-before-release means at most two ids are
  // live during one overwrite.
  PackedSeq store;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    SeqSlot s = slot_at(5);
    s.iters[0] = i;  // every insert carries a brand-new snapshot
    store.insert(7, s);
  }
  EXPECT_EQ(store.interned_snapshots(), 1u);
  EXPECT_LE(store.snapshot_high_water(), 2u);
  // Insert/remove churn never overlaps two snapshots at all.
  PackedSeq churn;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    SeqSlot s = slot_at(5);
    s.iters[0] = i;
    churn.insert(7, s);
    churn.remove(7);
  }
  EXPECT_EQ(churn.interned_snapshots(), 0u);
  EXPECT_EQ(churn.snapshot_high_water(), 1u);
}

TEST(PackedShadowStore, MtSidecarKeepsFlagBitsAndFullTimestamp) {
  // All-ones flags and a max timestamp must survive the sidecar round trip
  // without aliasing into each other, the tid, or the packed word — the
  // race check compares full 64-bit timestamps.
  PackedMt store;
  MtSlot s;
  s.loc = 0xFFFFFFFFu;
  s.ctx = 3;
  s.iters[0] = 9;
  s.tid = 0xFFFFFFFFu;
  s.flags = 0xFFFFFFFFu;
  s.ts = ~std::uint64_t{0};
  store.insert(1234, s);
  const MtSlot* got = store.find(1234);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->loc, 0xFFFFFFFFu);
  EXPECT_EQ(got->tid, 0xFFFFFFFFu);
  EXPECT_EQ(got->flags, 0xFFFFFFFFu);
  EXPECT_EQ(got->ts, ~std::uint64_t{0});
  EXPECT_EQ(got->iters[0], 9u);
  // A sibling word on the same page stays independent.
  MtSlot other;
  other.loc = 1;
  store.insert(1235, other);
  EXPECT_EQ(store.find(1234)->ts, ~std::uint64_t{0});
  EXPECT_EQ(store.find(1235)->ts, 0u);
}

TEST(PackedShadowStore, ExtractMovesState) {
  PackedSeq store;
  store.insert(7, slot_at(33));
  auto st = store.extract(7);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->location().line(), 33u);
  EXPECT_EQ(store.find(7), nullptr);
  EXPECT_FALSE(store.extract(7).has_value());
  EXPECT_EQ(store.interned_snapshots(), 0u);
}

TEST(PackedShadowStore, PagesAllocatedOnTouchOnly) {
  PackedSeq store;
  store.insert(0, slot_at(1));
  store.insert(PackedSeq::kPageWords + 5, slot_at(2));   // second leaf page
  store.insert((std::uint64_t{1} << 40) + 9, slot_at(3));  // far directory
  EXPECT_EQ(store.page_count(), 3u);
  ASSERT_NE(store.find((std::uint64_t{1} << 40) + 9), nullptr);
  EXPECT_EQ(store.find((std::uint64_t{1} << 40) + 8), nullptr);
}

TEST(PackedShadowStore, TeardownReleasesEveryByte) {
  // Page-table teardown must return every charged byte: clear() keeps only
  // the (re-zeroed) root directory, destruction releases that too.
  const std::int64_t base = MemStats::instance().bytes(MemComponent::kStore);
  std::int64_t after_clear = 0;
  {
    PackedSeq store;
    const std::int64_t rooted =
        MemStats::instance().bytes(MemComponent::kStore);
    EXPECT_GT(rooted, base);  // eager root directory
    for (std::uint64_t i = 0; i < 8; ++i)
      store.insert(i * PackedSeq::kPageWords, slot_at(1));
    EXPECT_EQ(store.page_count(), 8u);
    EXPECT_GT(MemStats::instance().bytes(MemComponent::kStore), rooted);
    store.clear();
    after_clear = MemStats::instance().bytes(MemComponent::kStore);
    EXPECT_EQ(after_clear, rooted);  // pages and directories all released
    EXPECT_EQ(store.page_count(), 0u);
    EXPECT_EQ(store.occupied(), 0u);
    // The store stays usable after a reset (burst-mark semantics).
    store.insert(42, slot_at(10));
    ASSERT_NE(store.find(42), nullptr);
  }
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kStore), base);
}

// ---------------------------------------------------------------- huge_alloc

TEST(HugeAlloc, ForcedFallbackCountsAndStaysUsable) {
  // When mmap/MADV_HUGEPAGE is unavailable the allocator must degrade to
  // operator new, count the degradation, zero the block (matching kernel
  // zero-fill semantics the packed store's empty sentinel relies on), and
  // free it through the right deallocator.
  const std::uint64_t before = huge::fallback_count();
  huge::set_force_fallback(true);
  void* p = huge::alloc(huge::kHugeThreshold);
  huge::set_force_fallback(false);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(huge::fallback_count(), before + 1);
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < huge::kHugeThreshold; i += 4096)
    ASSERT_EQ(bytes[i], 0u) << "fallback block not zeroed at offset " << i;
  huge::free(p, huge::kHugeThreshold);  // must route to the fallback path
  // Sub-threshold blocks never touch mmap and never count as fallbacks.
  const std::uint64_t small_before = huge::fallback_count();
  void* q = huge::alloc_zeroed(4096);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(huge::fallback_count(), small_before);
  huge::free(q, 4096);
}

TEST(HugeAlloc, PackedStoreSurvivesForcedFallback) {
  // The packed store's leaf pages are exactly one huge block each; with the
  // fast path gone it must still behave identically.
  huge::set_force_fallback(true);
  {
    PackedSeq store;
    store.insert(5, slot_at(11));
    store.insert(PackedSeq::kPageWords + 6, slot_at(12));
    ASSERT_NE(store.find(5), nullptr);
    EXPECT_EQ(store.find(5)->location().line(), 11u);
    EXPECT_EQ(store.page_count(), 2u);
  }
  huge::set_force_fallback(false);
}

// ------------------------------------------------------ HashTableRecorder

TEST(HashTableRecorder, ExactMembership) {
  HashTableRecorder<SeqSlot> table(16);  // tiny bucket count forces chains
  for (std::uint64_t i = 0; i < 100; ++i) table.insert(i, slot_at(i % 30 + 1));
  EXPECT_EQ(table.occupied(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_NE(table.find(i), nullptr);
    EXPECT_EQ(table.find(i)->location().line(), i % 30 + 1);
  }
  EXPECT_EQ(table.find(1000), nullptr);
}

TEST(HashTableRecorder, InsertUpdatesInPlace) {
  HashTableRecorder<SeqSlot> table(16);
  table.insert(1, slot_at(10));
  table.insert(1, slot_at(20));
  EXPECT_EQ(table.occupied(), 1u);
  EXPECT_EQ(table.find(1)->location().line(), 20u);
}

TEST(HashTableRecorder, ExtractFromChainMiddle) {
  HashTableRecorder<SeqSlot> table(1);  // single bucket: everything chains
  for (std::uint64_t i = 0; i < 10; ++i) table.insert(i, slot_at(i + 1));
  auto st = table.extract(5);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->location().line(), 6u);
  EXPECT_EQ(table.occupied(), 9u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (i == 5)
      EXPECT_EQ(table.find(i), nullptr);
    else
      EXPECT_NE(table.find(i), nullptr);
  }
}

// ---------------------------------------------------------------- FPR model

TEST(FprModel, MatchesClosedFormOnSmallValues) {
  // 1 - (1 - 1/m)^n computed directly.
  EXPECT_NEAR(predicted_fpr(10, 5), 1.0 - std::pow(0.9, 5), 1e-12);
  EXPECT_NEAR(predicted_fpr(100, 100), 1.0 - std::pow(0.99, 100), 1e-12);
}

TEST(FprModel, Monotonicity) {
  // More addresses => higher FPR; more slots => lower FPR.
  EXPECT_LT(predicted_fpr(1000, 10), predicted_fpr(1000, 100));
  EXPECT_GT(predicted_fpr(1000, 100), predicted_fpr(10000, 100));
}

TEST(FprModel, EdgeCases) {
  EXPECT_EQ(predicted_fpr(0, 100), 1.0);
  EXPECT_EQ(predicted_fpr(100, 0), 0.0);
  EXPECT_NEAR(predicted_fpr(1, 1), 1.0, 1e-12);
}

TEST(FprModel, SizingInvertsTheModel) {
  const std::size_t n = 100'000;
  for (double target : {0.3, 0.1, 0.01}) {
    const std::size_t m = slots_for_target_fpr(n, target);
    EXPECT_LE(predicted_fpr(m, n), target + 1e-9);
    // One slot fewer must overshoot (minimality, allowing rounding slack).
    if (m > 2) {
      EXPECT_GT(predicted_fpr(m - 2, n), target - 1e-3);
    }
  }
}

TEST(FprModel, SizingEdgeCases) {
  EXPECT_EQ(slots_for_target_fpr(0, 0.01), 1u);
  EXPECT_EQ(slots_for_target_fpr(100, 1.0), 1u);
}

// Property: measured occupancy after inserting n random addresses tracks
// formula 2 within a small tolerance (the formula-2 bench sweeps widely;
// this pins a few points as a regression test).
class Formula2Property
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(Formula2Property, OccupancyMatchesModel) {
  const auto [m, n] = GetParam();
  Signature<SeqSlot> sig(m);
  Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) sig.insert(rng(), slot_at(1));
  EXPECT_NEAR(sig.load_factor(), predicted_fpr(m, n), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Points, Formula2Property,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1u << 12, 1u << 10},
                      std::pair<std::size_t, std::size_t>{1u << 12, 1u << 12},
                      std::pair<std::size_t, std::size_t>{1u << 14, 1u << 12},
                      std::pair<std::size_t, std::size_t>{1u << 14, 1u << 15}));

}  // namespace
}  // namespace depprof
