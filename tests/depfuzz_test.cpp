// Tests for the differential-oracle harness stack (ISSUE 3): the exact
// reference oracle, the structured dependence diff, the expectation
// classifier and divergence budget, the ddmin shrinker, the repro corpus
// format, and the replay of every committed repro under tests/corpus.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "oracle/corpus.hpp"
#include "oracle/diff.hpp"
#include "oracle/exact_oracle.hpp"
#include "oracle/harness.hpp"
#include "oracle/shrinker.hpp"
#include "trace/generators.hpp"
#include "trace/nest.hpp"
#include "trace/trace.hpp"

namespace depprof {
namespace {

AccessEvent make_ev(AccessKind kind, std::uint64_t addr, std::uint32_t loc,
                    std::uint32_t var = 1, std::uint16_t tid = 0,
                    std::uint64_t ts = 0) {
  AccessEvent ev;
  ev.kind = kind;
  ev.addr = addr;
  ev.loc = loc;
  ev.var = var;
  ev.tid = tid;
  ev.ts = ts;
  return ev;
}

// --- exact oracle ---------------------------------------------------------

TEST(ExactOracle, BasicDependenceKinds) {
  Trace t;
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 11));  // INIT
  t.events.push_back(make_ev(AccessKind::kRead, 0x100, 12));   // RAW 12<-11
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 13));  // WAW + WAR
  t.events.push_back(make_ev(AccessKind::kRead, 0x100, 14));   // RAW 14<-13
  t.events.push_back(make_ev(AccessKind::kRead, 0x100, 15));   // RAR: ignored

  const DepMap deps = oracle_dependences(t, false);
  std::size_t init = 0, raw = 0, war = 0, waw = 0;
  for (const auto& [key, info] : deps) {
    switch (key.type) {
      case DepType::kInit: ++init; break;
      case DepType::kRaw: ++raw; break;
      case DepType::kWar: ++war; break;
      case DepType::kWaw: ++waw; break;
    }
  }
  EXPECT_EQ(init, 1u);
  EXPECT_EQ(raw, 3u);  // 12<-11, 14<-13, 15<-13 (distinct sink locations)
  EXPECT_EQ(war, 1u);
  EXPECT_EQ(waw, 1u);
}

TEST(ExactOracle, FreeRestartsLifetime) {
  Trace t;
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 11));
  t.events.push_back(make_ev(AccessKind::kFree, 0x100, 0, 0));
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 12));  // INIT again

  const DepMap deps = oracle_dependences(t, false);
  for (const auto& [key, info] : deps) EXPECT_NE(key.type, DepType::kWaw);
  EXPECT_EQ(deps.size(), 2u);  // two INITs
}

TEST(ExactOracle, LoopCarriedDistance) {
  const std::uint32_t entry = nest_forest().enter(NestForest::kRoot, 9);
  Trace t;
  for (std::uint32_t i = 0; i < 4; ++i) {
    AccessEvent w = make_ev(AccessKind::kWrite, 0x200, 21);
    w.ctx = entry;
    w.iters[0] = i;
    t.events.push_back(w);
    AccessEvent r = make_ev(AccessKind::kRead, 0x200, 22);
    r.ctx = entry;
    r.iters[0] = i + 1;  // reads the previous iteration's value
    t.events.push_back(r);
  }
  const DepMap deps = oracle_dependences(t, false);
  bool carried_raw = false;
  for (const auto& [key, info] : deps) {
    if (key.type != DepType::kRaw) continue;
    carried_raw = true;
    EXPECT_TRUE(info.flags & kLoopCarried);
    EXPECT_EQ(info.carried_level(), 1u);
    EXPECT_EQ(info.carried_loop(), 9u);
    EXPECT_EQ(info.levels[0].d1, 4u);  // every instance at distance 1
    EXPECT_EQ(info.levels[0].d2p, 0u);
    EXPECT_EQ(info.min_carried_bucket(), 1u);
  }
  EXPECT_TRUE(carried_raw);
}

TEST(ExactOracle, NestedCommonLoopAttribution) {
  // Sink and source in different entries of an inner loop, same iteration
  // gap of the shared outer loop: the dependence is carried by the *outer*
  // loop (level 1), and the inner loop never shows up as carrier.
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 5);
  const std::uint32_t in1 = forest.enter(outer, 6);
  const std::uint32_t in2 = forest.enter(outer, 6);
  Trace t;
  AccessEvent w = make_ev(AccessKind::kWrite, 0x300, 31);
  w.ctx = in1;
  w.iters[0] = 0;  // outer iteration
  w.iters[1] = 3;  // inner iteration
  t.events.push_back(w);
  AccessEvent r = make_ev(AccessKind::kRead, 0x300, 32);
  r.ctx = in2;
  r.iters[0] = 2;
  r.iters[1] = 3;
  t.events.push_back(r);
  const DepMap deps = oracle_dependences(t, false);
  bool found = false;
  for (const auto& [key, info] : deps) {
    if (key.type != DepType::kRaw) continue;
    found = true;
    EXPECT_TRUE(info.flags & kLoopCarried);
    EXPECT_TRUE(info.flags & kCrossLoop);
    EXPECT_EQ(info.carried_level(), 1u);
    EXPECT_EQ(info.carried_loop(), 5u);
    EXPECT_EQ(info.levels[0].d2p, 1u);  // outer distance 2
    EXPECT_EQ(info.levels[1].carried(), 0u);
  }
  EXPECT_TRUE(found);
}

TEST(ExactOracle, MtCrossThreadAndReversed) {
  Trace t;
  t.events.push_back(make_ev(AccessKind::kWrite, 0x300, 31, 1, /*tid=*/0,
                             /*ts=*/50));
  t.events.push_back(make_ev(AccessKind::kRead, 0x300, 32, 1, /*tid=*/1,
                             /*ts=*/10));  // earlier ts: reversed
  const DepMap deps = oracle_dependences(t, true);
  bool found = false;
  for (const auto& [key, info] : deps) {
    if (key.type != DepType::kRaw) continue;
    found = true;
    EXPECT_EQ(key.sink_tid, 1u);
    EXPECT_EQ(key.src_tid, 0u);
    EXPECT_TRUE(info.flags & kCrossThread);
    EXPECT_TRUE(info.flags & kReversed);
  }
  EXPECT_TRUE(found);
}

// --- diff -----------------------------------------------------------------

TEST(DepDiff, CountsMissingExtraMismatch) {
  DepKey init;
  init.sink_loc = 11;
  init.type = DepType::kInit;
  DepKey raw;
  raw.sink_loc = 12;
  raw.src_loc = 11;
  raw.type = DepType::kRaw;

  DepMap expected;
  expected.add(init, 0);
  expected.add(raw, 0);
  DepMap same;
  same.add(init, 0);
  same.add(raw, 0);
  EXPECT_TRUE(diff_deps(expected, same).identical());

  // Double-count one record and invent one key.
  DepMap mutated;
  mutated.add(init, 0);
  mutated.add(raw, 0);
  mutated.add(raw, 0);
  DepKey invented;
  invented.sink_loc = 999;
  invented.type = DepType::kWaw;
  mutated.add(invented, 0);
  const DepDiff d1 = diff_deps(expected, mutated);
  EXPECT_EQ(d1.extra, 1u);
  EXPECT_EQ(d1.mismatched, 1u);
  EXPECT_FALSE(d1.identical());
  EXPECT_FALSE(format_diff(d1, "oracle", "profiler").empty());

  // Drop one key.
  DepMap dropped;
  dropped.add(init, 0);
  const DepDiff d2 = diff_deps(expected, dropped);
  EXPECT_EQ(d2.missing, 1u);
}

// --- harness --------------------------------------------------------------

TEST(Harness, ClassifiesExpectations) {
  GenParams p;
  p.accesses = 500;
  p.distinct = 100;
  const Trace t = gen_uniform(p);

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  EXPECT_EQ(classify_expectation(cfg, t), Expectation::kExact);

  cfg.storage = StorageKind::kSignature;
  cfg.sig_hash = SigHash::kModulo;
  cfg.slots = 1u << 20;  // span of 100 strided words fits easily
  EXPECT_EQ(classify_expectation(cfg, t), Expectation::kExact);

  cfg.slots = 8;  // span exceeds the slot count: collisions possible
  EXPECT_EQ(classify_expectation(cfg, t), Expectation::kBounded);

  cfg.sig_hash = SigHash::kMix;
  cfg.slots = 1u << 20;  // mixed hash never proves injectivity
  EXPECT_EQ(classify_expectation(cfg, t), Expectation::kBounded);
}

TEST(Harness, ExactCasesHoldAcrossBackends) {
  GenParams p;
  p.accesses = 3000;
  p.distinct = 400;
  const Trace t = gen_churn(p, 0.2);
  for (const StorageKind storage :
       {StorageKind::kPerfect, StorageKind::kShadow, StorageKind::kHashTable,
        StorageKind::kPacked, StorageKind::kSignature}) {
    ProfilerConfig cfg;
    cfg.storage = storage;
    cfg.workers = 3;
    cfg.chunk_size = 16;
    const CaseOutcome outcome = run_case(t, cfg);
    EXPECT_TRUE(outcome.ok) << storage_kind_name(storage) << "\n"
                            << outcome.detail;
  }
}

TEST(Harness, BoundedBudgetGrowsWithPredictedFpr) {
  GenParams p;
  p.accesses = 2000;
  p.distinct = 1000;
  const Trace t = gen_uniform(p);
  ProfilerConfig small, large;
  small.slots = 256;
  large.slots = 1u << 20;
  const DivergenceBudget b_small = divergence_budget(small, t, 100);
  const DivergenceBudget b_large = divergence_budget(large, t, 100);
  EXPECT_GT(b_small.fpr, b_large.fpr);
  EXPECT_GE(b_small.max_divergent_keys, b_large.max_divergent_keys);
}

// --- overhead-budget sampling ---------------------------------------------

TEST(Harness, SampleStreamIsIdentityAtSkipZero) {
  GenParams p;
  p.accesses = 2000;
  p.distinct = 128;
  const Trace t = gen_loop(p, 24, true);
  const Trace s = sample_stream(t, 8, 0);
  ASSERT_EQ(s.events.size(), t.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(std::memcmp(&s.events[i], &t.events[i], sizeof(AccessEvent)), 0)
        << "event " << i << " diverged";
  }
}

TEST(Harness, SampleStreamDropsIterationsAndClosesGaps) {
  GenParams p;
  p.accesses = 2000;
  p.distinct = 128;
  const Trace t = gen_loop(p, 24, true);
  const Trace s = sample_stream(t, 1, 1);  // 50% duty, burst of one iteration
  ASSERT_LT(s.events.size(), t.events.size());
  // Every marker must directly precede a kept access (gap-close rule), and
  // at 50% duty with >1 outermost iteration at least one gap must close.
  std::size_t markers = 0;
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    if (!s.events[i].is_burst_mark()) continue;
    ++markers;
    ASSERT_LT(i + 1, s.events.size()) << "trailing marker";
    EXPECT_FALSE(s.events[i + 1].is_burst_mark());
  }
  EXPECT_GE(markers, 1u);
}

TEST(Harness, SampledOracleSatisfiesSubsetContract) {
  GenParams p;
  p.accesses = 4000;
  p.distinct = 256;
  for (const Trace& t : {gen_loop(p, 32, true), gen_churn(p, 0.25, 0, 3)}) {
    const DepMap full = oracle_dependences(t, false);
    for (const auto [burst, skip] : {std::pair{4u, 4u}, std::pair{1u, 9u}}) {
      const Trace s = sample_stream(t, burst, skip);
      const DepMap sampled = oracle_dependences(s, false);
      const SubsetReport rep = check_sampled_subset(full, sampled);
      EXPECT_TRUE(rep.ok) << "burst=" << burst << " skip=" << skip << "\n"
                          << rep.detail;
      EXPECT_LE(rep.recall, 1.0);
      EXPECT_LE(rep.sampled_edges, rep.full_edges);
    }
  }
}

TEST(Harness, SubsetCheckFlagsInventedEvidence) {
  // full: one RAW instance.  sampled-candidate A invents a second instance
  // of the same edge; candidate B invents a brand-new edge.  Both must be
  // flagged — sampling may only lose evidence.
  Trace base;
  base.events.push_back(make_ev(AccessKind::kWrite, 0x100, 1));
  base.events.push_back(make_ev(AccessKind::kRead, 0x100, 2));
  const DepMap full = oracle_dependences(base, false);

  Trace doubled = base;
  doubled.events.push_back(make_ev(AccessKind::kRead, 0x100, 2));
  const SubsetReport count_rep =
      check_sampled_subset(full, oracle_dependences(doubled, false));
  EXPECT_FALSE(count_rep.ok);
  EXPECT_NE(count_rep.detail.find("instance count"), std::string::npos);

  Trace foreign = base;
  foreign.events.push_back(make_ev(AccessKind::kWrite, 0x200, 3));
  foreign.events.push_back(make_ev(AccessKind::kRead, 0x200, 4));
  const SubsetReport absent_rep =
      check_sampled_subset(full, oracle_dependences(foreign, false));
  EXPECT_FALSE(absent_rep.ok);
  EXPECT_NE(absent_rep.detail.find("absent"), std::string::npos);
}

TEST(Harness, SampledCasesHoldAcrossBackends) {
  GenParams p;
  p.accesses = 3000;
  p.distinct = 256;
  const Trace t = gen_loop(p, 32, true);
  for (const StorageKind storage :
       {StorageKind::kPerfect, StorageKind::kShadow, StorageKind::kHashTable,
        StorageKind::kPacked, StorageKind::kSignature}) {
    ProfilerConfig cfg;
    cfg.storage = storage;
    cfg.workers = 3;
    cfg.chunk_size = 16;
    cfg.sampling_burst = 2;
    cfg.sampling_skip = 3;
    const CaseOutcome outcome = run_case(t, cfg);
    EXPECT_TRUE(outcome.ok) << storage_kind_name(storage) << "\n"
                            << outcome.detail;
  }
}

// --- shrinker -------------------------------------------------------------

TEST(Shrinker, MinimizesToThePlantedKernel) {
  // A big trace where the "failure" is the presence of one specific
  // write-read pair; ddmin should strip everything else.
  GenParams p;
  p.accesses = 400;
  p.distinct = 64;
  Trace t = gen_uniform(p);
  t.events.insert(t.events.begin() + 123,
                  make_ev(AccessKind::kWrite, 0xdead0, 77));
  t.events.insert(t.events.begin() + 301,
                  make_ev(AccessKind::kRead, 0xdead0, 78));

  const FailurePredicate planted = [](const Trace& trace,
                                      const ProfilerConfig&) {
    const DepMap deps = oracle_dependences(trace, false);
    for (const auto& [key, info] : deps)
      if (key.type == DepType::kRaw && key.sink_loc == 78 &&
          key.src_loc == 77)
        return true;
    return false;
  };

  ProfilerConfig cfg;
  ShrinkStats st;
  const Trace minimized = shrink_trace(t, cfg, planted, 10'000, &st);
  EXPECT_EQ(minimized.size(), 2u);
  EXPECT_TRUE(planted(minimized, cfg));
  EXPECT_EQ(st.initial_events, 402u);
  EXPECT_EQ(st.final_events, 2u);
  EXPECT_GT(st.evaluations, 0u);
}

TEST(Shrinker, FlattensNestWhenFailureSurvivesIt) {
  // The planted failure is an innermost-carried RAW: write and read share
  // one dynamic entry of the inner loop but sit in different iterations of
  // it.  That survives flattening (same entry stays same entry, the
  // innermost iteration moves to slot 0), so the shrinker must hand back a
  // depth-1 repro.
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 80);
  const std::uint32_t inner = forest.enter(outer, 81);
  Trace t;
  AccessEvent w = make_ev(AccessKind::kWrite, 0xbeef0, 91);
  w.ctx = inner;
  w.iters[0] = 2;
  w.iters[1] = 0;
  AccessEvent r = make_ev(AccessKind::kRead, 0xbeef0, 92);
  r.ctx = inner;
  r.iters[0] = 2;
  r.iters[1] = 1;
  t.events.push_back(w);
  t.events.push_back(r);

  const FailurePredicate carried_raw = [](const Trace& trace,
                                          const ProfilerConfig&) {
    const DepMap deps = oracle_dependences(trace, false);
    for (const auto& [key, info] : deps)
      if (key.type == DepType::kRaw && (info.flags & kLoopCarried) != 0 &&
          info.carried_loop() == 81)
        return true;
    return false;
  };

  ProfilerConfig cfg;
  const Trace flat = shrink_trace(t, cfg, carried_raw, 10'000);
  ASSERT_EQ(flat.size(), 2u);
  EXPECT_TRUE(carried_raw(flat, cfg));
  for (const auto& ev : flat.events) {
    EXPECT_EQ(forest.depth(ev.ctx), 1u);
    EXPECT_EQ(forest.loop(ev.ctx), 81u);  // innermost loop kept
    EXPECT_EQ(ev.iters[1], 0u);
  }
  // The innermost iteration moved to window slot 0.
  EXPECT_EQ(flat.events[0].iters[0], 0u);
  EXPECT_EQ(flat.events[1].iters[0], 1u);
}

TEST(Shrinker, KeepsNestWhenFlatteningLosesTheFailure) {
  // Here the failure is outer-level attribution: a dependence carried by
  // the *outer* loop of a two-deep nest.  Flattening drops the outer level,
  // so the rung's candidate no longer fails and the nest must be kept.
  NestForest& forest = nest_forest();
  const std::uint32_t outer = forest.enter(NestForest::kRoot, 85);
  const std::uint32_t in1 = forest.enter(outer, 86);
  const std::uint32_t in2 = forest.enter(outer, 86);
  Trace t;
  AccessEvent w = make_ev(AccessKind::kWrite, 0xfeed0, 95);
  w.ctx = in1;
  w.iters[0] = 0;
  AccessEvent r = make_ev(AccessKind::kRead, 0xfeed0, 96);
  r.ctx = in2;
  r.iters[0] = 1;
  t.events.push_back(w);
  t.events.push_back(r);

  const FailurePredicate outer_carried = [&](const Trace& trace,
                                             const ProfilerConfig&) {
    const DepMap deps = oracle_dependences(trace, false);
    for (const auto& [key, info] : deps)
      if (key.type == DepType::kRaw && info.carried_loop() == 85) return true;
    return false;
  };

  ProfilerConfig cfg;
  const Trace kept = shrink_trace(t, cfg, outer_carried, 10'000);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(outer_carried(kept, cfg));
  EXPECT_EQ(forest.depth(kept.events[0].ctx), 2u);
}

TEST(Shrinker, ConfigLadderSimplifiesWhenFailureIsConfigIndependent) {
  ProfilerConfig cfg;
  cfg.workers = 8;
  cfg.chunk_size = 1024;
  cfg.queue = QueueKind::kLockFreeMpmc;
  cfg.wait = WaitKind::kPark;
  cfg.load_balance.enabled = true;
  cfg.modulo_routing = true;
  Trace t;
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 11));

  const FailurePredicate always = [](const Trace&, const ProfilerConfig&) {
    return true;
  };
  const ProfilerConfig simple = shrink_config(t, cfg, always);
  EXPECT_EQ(simple.workers, 1u);
  EXPECT_EQ(simple.chunk_size, 1u);
  EXPECT_EQ(simple.queue, QueueKind::kMutex);
  EXPECT_EQ(simple.wait, WaitKind::kSpin);
  EXPECT_FALSE(simple.load_balance.enabled);
  EXPECT_FALSE(simple.modulo_routing);
  // The ladder also steps the batched kernel down to the per-event loop so
  // a repro that survives is known not to depend on batching.
  EXPECT_FALSE(simple.batched_detect);
  // Likewise the front-end reduction layers: a config-independent failure
  // must shrink to a repro with both dedup and pack off.
  EXPECT_FALSE(simple.dedup);
  EXPECT_FALSE(simple.pack);
}

TEST(Shrinker, KeepsConfigWhenSimplificationLosesTheFailure) {
  ProfilerConfig cfg;
  cfg.workers = 8;
  Trace t;
  t.events.push_back(make_ev(AccessKind::kWrite, 0x100, 11));
  const FailurePredicate needs_workers =
      [](const Trace&, const ProfilerConfig& c) { return c.workers >= 4; };
  const ProfilerConfig kept = shrink_config(t, cfg, needs_workers);
  EXPECT_EQ(kept.workers, 8u);
}

// --- corpus format --------------------------------------------------------

ReproCase sample_repro() {
  ReproCase r;
  r.note = "round-trip sample";
  r.cfg.storage = StorageKind::kShadow;
  r.cfg.slots = 4096;
  r.cfg.sig_hash = SigHash::kMix;
  r.cfg.mt_targets = true;
  r.cfg.workers = 3;
  r.cfg.queue = QueueKind::kLockFreeMpmc;
  r.cfg.wait = WaitKind::kYield;
  r.cfg.chunk_size = 7;
  r.cfg.queue_capacity = 32;
  r.cfg.modulo_routing = true;
  r.cfg.batched_detect = false;  // non-default: the round trip must keep it
  r.cfg.dedup = false;           // non-default, like batched_detect
  r.cfg.pack = false;
  r.cfg.load_balance.enabled = true;
  r.cfg.load_balance.sample_shift = 2;
  r.cfg.load_balance.eval_interval_chunks = 17;
  r.cfg.load_balance.imbalance_threshold = 1.5;
  r.cfg.load_balance.top_k = 3;
  r.cfg.load_balance.max_rounds = 9;
  r.cfg.budget = 0.5;  // non-default sampling: the file must carry the axes
  r.cfg.sampling_burst = 4;
  r.cfg.sampling_skip = 3;
  AccessEvent ev = make_ev(AccessKind::kWrite, 0xabc0, 41, 2, 1, 99);
  ev.flags = kInLockRegion;
  ev.ctx = nest_forest().enter(NestForest::kRoot, 5);
  ev.iters[0] = 7;
  r.trace.events.push_back(ev);
  r.trace.events.push_back(make_ev(AccessKind::kFree, 0xabc0, 0, 0, 1, 100));
  return r;
}

TEST(Corpus, FormatParseRoundTrip) {
  const ReproCase original = sample_repro();
  const std::string text = format_repro(original);
  ReproCase back;
  std::string error;
  ASSERT_TRUE(parse_repro(back, text, &error)) << error;

  EXPECT_EQ(back.note, original.note);
  EXPECT_EQ(back.cfg.storage, original.cfg.storage);
  EXPECT_EQ(back.cfg.slots, original.cfg.slots);
  EXPECT_EQ(back.cfg.sig_hash, original.cfg.sig_hash);
  EXPECT_EQ(back.cfg.mt_targets, original.cfg.mt_targets);
  EXPECT_EQ(back.cfg.workers, original.cfg.workers);
  EXPECT_EQ(back.cfg.queue, original.cfg.queue);
  EXPECT_EQ(back.cfg.wait, original.cfg.wait);
  EXPECT_EQ(back.cfg.chunk_size, original.cfg.chunk_size);
  EXPECT_EQ(back.cfg.queue_capacity, original.cfg.queue_capacity);
  EXPECT_EQ(back.cfg.modulo_routing, original.cfg.modulo_routing);
  EXPECT_EQ(back.cfg.batched_detect, original.cfg.batched_detect);
  EXPECT_EQ(back.cfg.dedup, original.cfg.dedup);
  EXPECT_EQ(back.cfg.pack, original.cfg.pack);
  EXPECT_DOUBLE_EQ(back.cfg.budget, original.cfg.budget);
  EXPECT_EQ(back.cfg.sampling_burst, original.cfg.sampling_burst);
  EXPECT_EQ(back.cfg.sampling_skip, original.cfg.sampling_skip);
  EXPECT_EQ(back.cfg.load_balance.enabled, original.cfg.load_balance.enabled);
  EXPECT_EQ(back.cfg.load_balance.eval_interval_chunks,
            original.cfg.load_balance.eval_interval_chunks);
  EXPECT_EQ(back.cfg.load_balance.top_k, original.cfg.load_balance.top_k);
  ASSERT_EQ(back.trace.size(), original.trace.size());
  const AccessEvent& ev = back.trace.events[0];
  EXPECT_EQ(ev.addr, 0xabc0u);
  EXPECT_EQ(ev.ts, 99u);
  EXPECT_EQ(ev.flags, kInLockRegion);
  // The nest table re-interns on parse: the context is a (possibly new)
  // forest node with the same shape.
  ASSERT_NE(ev.ctx, NestForest::kRoot);
  EXPECT_EQ(nest_forest().loop(ev.ctx), 5u);
  EXPECT_EQ(nest_forest().depth(ev.ctx), 1u);
  EXPECT_EQ(ev.iters[0], 7u);
  EXPECT_TRUE(back.trace.events[1].is_free());
}

TEST(Corpus, V3NestDirectivesRebuildChains) {
  const std::string text =
      "depfuzz-repro v3\n"
      "config storage=perfect dedup=0 pack=0\n"
      "nest id=1 parent=0 loop=50\n"
      "nest id=2 parent=1 loop=60\n"
      "ev W addr=0x100 loc=11 ctx=2 iters=3,4,0,0,0,0,0\n"
      "ev R addr=0x100 loc=12 ctx=1 iters=3,0,0,0,0,0,0\n";
  ReproCase out;
  std::string error;
  ASSERT_TRUE(parse_repro(out, text, &error)) << error;
  ASSERT_EQ(out.trace.size(), 2u);
  const NestForest& forest = nest_forest();
  const AccessEvent& inner = out.trace.events[0];
  const AccessEvent& outer = out.trace.events[1];
  EXPECT_EQ(forest.loop(inner.ctx), 60u);
  EXPECT_EQ(forest.depth(inner.ctx), 2u);
  EXPECT_EQ(forest.parent(inner.ctx), outer.ctx);
  EXPECT_EQ(forest.loop(outer.ctx), 50u);
  EXPECT_EQ(inner.iters[1], 4u);
}

TEST(Corpus, V3RejectsMalformedNests) {
  ReproCase out;
  std::string error;
  // Undeclared parent.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "nest id=2 parent=1 loop=60\n",
                           &error));
  // Duplicate id.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "nest id=1 parent=0 loop=50\n"
                           "nest id=1 parent=0 loop=60\n",
                           &error));
  // Event referencing an undeclared context.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "ev W addr=0x1 ctx=7\n",
                           &error));
  // nest directive is v3-only.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v2\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "nest id=1 parent=0 loop=50\n",
                           &error));
  EXPECT_NE(error.find("v3"), std::string::npos);
}

TEST(Corpus, LegacyLoopsTriplesReinternAsNestChains) {
  // v2 events carried three innermost-first (loop, entry, iter) triples.
  // They must still parse, re-interned into an equivalent nest chain: same
  // entry triple -> same node, different entry -> sibling node.
  const std::string text =
      "depfuzz-repro v2\n"
      "config storage=perfect dedup=0 pack=0\n"
      "ev W addr=0x100 loc=11 loops=60:1:2,50:1:3,0:0:0\n"
      "ev R addr=0x100 loc=12 loops=60:1:4,50:1:3,0:0:0\n"
      "ev R addr=0x100 loc=13 loops=60:2:0,50:1:3,0:0:0\n";
  ReproCase out;
  std::string error;
  ASSERT_TRUE(parse_repro(out, text, &error)) << error;
  ASSERT_EQ(out.trace.size(), 3u);
  const NestForest& forest = nest_forest();
  const AccessEvent& a = out.trace.events[0];
  const AccessEvent& b = out.trace.events[1];
  const AccessEvent& c = out.trace.events[2];
  // Triples are innermost-first: loop 50 is the outer level.
  EXPECT_EQ(forest.depth(a.ctx), 2u);
  EXPECT_EQ(forest.loop(a.ctx), 60u);
  EXPECT_EQ(forest.loop(forest.parent(a.ctx)), 50u);
  // iters become root-anchored: outer first.
  EXPECT_EQ(a.iters[0], 3u);
  EXPECT_EQ(a.iters[1], 2u);
  // Same (loop, entry) chain -> same interned node.
  EXPECT_EQ(a.ctx, b.ctx);
  // Different inner entry -> sibling node under the same parent.
  EXPECT_NE(c.ctx, a.ctx);
  EXPECT_EQ(forest.parent(c.ctx), forest.parent(a.ctx));
}

TEST(Corpus, StrictParserRejectsUnknownInput) {
  ReproCase out;
  std::string error;
  EXPECT_FALSE(parse_repro(out, "", &error));
  EXPECT_FALSE(parse_repro(out, "something else\n", &error));
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=perfect\nfrobnicate 1\n",
      &error));
  EXPECT_NE(error.find("frobnicate"), std::string::npos);
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=perfect bogus_key=1\n", &error));
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=warehouse\n", &error));
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=perfect\nev X addr=0x1\n",
      &error));
  // Missing the config line entirely.
  EXPECT_FALSE(parse_repro(out, "depfuzz-repro v1\nnote hi\n", &error));
}

TEST(Corpus, VersionedFrontEndReductionKeys) {
  ReproCase out;
  std::string error;
  // v2 hard-requires both front-end reduction keys: a repro omitting them
  // would silently replay under whatever the current defaults are.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v2\nconfig storage=perfect\n", &error));
  EXPECT_NE(error.find("dedup"), std::string::npos);
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v2\nconfig storage=perfect dedup=1\n", &error));
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v2\nconfig storage=perfect pack=0\n", &error));
  ASSERT_TRUE(parse_repro(
      out, "depfuzz-repro v2\nconfig storage=perfect dedup=1 pack=0\n",
      &error))
      << error;
  EXPECT_TRUE(out.cfg.dedup);
  EXPECT_FALSE(out.cfg.pack);
  // v1 predates the axes: the keys are unknown there, and an old corpus
  // file parses with both off — the semantics it was recorded under.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=perfect dedup=1 pack=1\n",
      &error));
  ASSERT_TRUE(
      parse_repro(out, "depfuzz-repro v1\nconfig storage=perfect\n", &error))
      << error;
  EXPECT_FALSE(out.cfg.dedup);
  EXPECT_FALSE(out.cfg.pack);
  // format_repro writes the lowest version whose grammar covers the case;
  // sample_repro has non-default sampling, which forces v5 with every
  // hard-required key present.
  const std::string text = format_repro(sample_repro());
  EXPECT_NE(text.find("depfuzz-repro v5"), std::string::npos);
  EXPECT_NE(text.find("dedup="), std::string::npos);
  EXPECT_NE(text.find("pack="), std::string::npos);
  EXPECT_NE(text.find("budget="), std::string::npos);
  EXPECT_NE(text.find("burst="), std::string::npos);
  EXPECT_NE(text.find("skip="), std::string::npos);
  EXPECT_NE(text.find("nest id=1"), std::string::npos);
}

TEST(Corpus, V5SamplingKeysHardRequired) {
  ReproCase out;
  std::string error;
  // v5 hard-requires the sampling axes, for the same reason v2 hard-required
  // dedup=/pack=: omitting them would silently replay under the defaults.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v5\nconfig storage=perfect dedup=0 pack=0\n",
      &error));
  EXPECT_NE(error.find("budget"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v5\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=0.5 burst=4\n",
                           &error));
  ASSERT_TRUE(parse_repro(out,
                          "depfuzz-repro v5\nconfig storage=perfect dedup=0 "
                          "pack=0 budget=0.5 burst=4 skip=3\n",
                          &error))
      << error;
  EXPECT_DOUBLE_EQ(out.cfg.budget, 0.5);
  EXPECT_EQ(out.cfg.sampling_burst, 4u);
  EXPECT_EQ(out.cfg.sampling_skip, 3u);
  // Below v5 the sampling keys are unknown, and older files replay with
  // sampling off — the semantics they were recorded under.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v4\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=0.5 burst=4 skip=3\n",
                           &error));
  ASSERT_TRUE(parse_repro(
      out, "depfuzz-repro v4\nconfig storage=perfect dedup=0 pack=0\n",
      &error))
      << error;
  EXPECT_DOUBLE_EQ(out.cfg.budget, 1.0);
  EXPECT_EQ(out.cfg.sampling_skip, 0u);
}

TEST(Corpus, V6RaceModeKeyAndConfigRule) {
  ReproCase out;
  std::string error;
  // v6 hard-requires the races= key: a repro omitting it would silently
  // replay under whatever the current race-mode default is.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=1 burst=8 skip=0 mt=1\n",
                           &error));
  EXPECT_NE(error.find("races"), std::string::npos);
  ASSERT_TRUE(parse_repro(out,
                          "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                          "pack=0 budget=1 burst=8 skip=0 mt=1 races=1\n",
                          &error))
      << error;
  EXPECT_TRUE(out.cfg.races);
  // The config rule mirrors races_config_ok(): race mode with sampling or
  // a sequential target could never have been recorded, so it must not
  // lint clean.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=0.5 burst=8 skip=0 mt=1 races=1\n",
                           &error));
  EXPECT_NE(error.find("races=1"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=1 burst=8 skip=4 mt=1 races=1\n",
                           &error));
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=1 burst=8 skip=0 mt=0 races=1\n",
                           &error));
  // races=0 carries no preconditions.
  ASSERT_TRUE(parse_repro(out,
                          "depfuzz-repro v6\nconfig storage=perfect dedup=0 "
                          "pack=0 budget=0.5 burst=8 skip=4 mt=0 races=0\n",
                          &error))
      << error;
  EXPECT_FALSE(out.cfg.races);
  // Below v6 the key is unknown, and older files replay with race mode off.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v5\nconfig storage=perfect dedup=0 "
                           "pack=0 budget=1 burst=8 skip=0 mt=1 races=1\n",
                           &error));
  ASSERT_TRUE(parse_repro(out,
                          "depfuzz-repro v5\nconfig storage=perfect dedup=0 "
                          "pack=0 budget=1 burst=8 skip=0 mt=1\n",
                          &error))
      << error;
  EXPECT_FALSE(out.cfg.races);
}

TEST(Corpus, RaceModeRoundTripsAtV6) {
  ReproCase r = sample_repro();
  r.cfg.races = true;
  r.cfg.budget = 1.0;  // race mode forbids sampling...
  r.cfg.sampling_burst = ProfilerConfig().sampling_burst;
  r.cfg.sampling_skip = 0;
  ASSERT_TRUE(r.cfg.mt_targets);  // ...and needs MT targets
  const std::string text = format_repro(r);
  EXPECT_NE(text.find("depfuzz-repro v6"), std::string::npos);
  // v6 inherits v5's hard-required sampling keys even when unsampled.
  EXPECT_NE(text.find("budget="), std::string::npos);
  EXPECT_NE(text.find("races=1"), std::string::npos);
  ReproCase back;
  std::string error;
  ASSERT_TRUE(parse_repro(back, text, &error)) << error;
  EXPECT_TRUE(back.cfg.races);
  EXPECT_TRUE(back.cfg.mt_targets);
  EXPECT_DOUBLE_EQ(back.cfg.budget, 1.0);
  ASSERT_EQ(back.trace.size(), r.trace.size());
}

TEST(Corpus, V7PackedStorageVersionGated) {
  ReproCase out;
  std::string error;
  // Below v7 "packed" is an unknown storage value: a repro recorded against
  // the packed backend must not silently replay as some other backend under
  // an old grammar.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v6\nconfig storage=packed dedup=0 "
                           "pack=0 budget=1 burst=8 skip=0 races=0\n",
                           &error));
  EXPECT_NE(error.find("storage=packed"), std::string::npos);
  // v7 accepts it and inherits every v5/v6 hard-required key.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v7\nconfig storage=packed dedup=0 pack=0\n",
      &error));
  EXPECT_NE(error.find("budget"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v7\nconfig storage=packed dedup=0 "
                           "pack=0 budget=1 burst=8 skip=0\n",
                           &error));
  EXPECT_NE(error.find("races"), std::string::npos);
  ASSERT_TRUE(parse_repro(out,
                          "depfuzz-repro v7\nconfig storage=packed dedup=0 "
                          "pack=0 budget=1 burst=8 skip=0 races=0\n",
                          &error))
      << error;
  EXPECT_EQ(out.cfg.storage, StorageKind::kPacked);
}

TEST(Corpus, PackedStorageRoundTripsAtV7) {
  ReproCase r = sample_repro();
  r.cfg.storage = StorageKind::kPacked;
  const std::string text = format_repro(r);
  EXPECT_NE(text.find("depfuzz-repro v7"), std::string::npos);
  EXPECT_NE(text.find("storage=packed"), std::string::npos);
  // v7 spells out the sampling and race axes even when the run neither
  // sampled nor raced (sample_repro samples; races stays 0 here).
  EXPECT_NE(text.find("budget="), std::string::npos);
  EXPECT_NE(text.find("races=0"), std::string::npos);
  ReproCase back;
  std::string error;
  ASSERT_TRUE(parse_repro(back, text, &error)) << error;
  EXPECT_EQ(back.cfg.storage, StorageKind::kPacked);
  EXPECT_FALSE(back.cfg.races);
  EXPECT_DOUBLE_EQ(back.cfg.budget, r.cfg.budget);
  ASSERT_EQ(back.trace.size(), r.trace.size());
}

TEST(Corpus, StrictParserRejectsAmbiguousShape) {
  ReproCase out;
  std::string error;
  // A duplicate key within one line would silently last-write-win.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nconfig storage=perfect storage=shadow\n",
      &error));
  EXPECT_NE(error.find("duplicate key 'storage'"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v1\nconfig storage=perfect\n"
                           "ev W addr=0x1 addr=0x2\n",
                           &error));
  EXPECT_NE(error.find("duplicate key 'addr'"), std::string::npos);
  EXPECT_NE(error.find("line 3"), std::string::npos);
  // A second config (or lb) line would retroactively rewrite the first.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v1\nconfig storage=perfect\n"
                           "config storage=shadow\n",
                           &error));
  EXPECT_NE(error.find("duplicate config line"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v1\nconfig storage=perfect\n"
                           "lb enabled=0\nlb enabled=1\n",
                           &error));
  EXPECT_NE(error.find("duplicate lb line"), std::string::npos);
  // Every directive except the provenance note needs the config line first.
  EXPECT_FALSE(parse_repro(
      out, "depfuzz-repro v1\nev W addr=0x1\nconfig storage=perfect\n",
      &error));
  EXPECT_NE(error.find("before the config line"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\nnest id=1 parent=0 loop=5\n"
                           "config storage=perfect dedup=0 pack=0\n",
                           &error));
  EXPECT_NE(error.find("before the config line"), std::string::npos);
  // nest directives must carry parent= and loop= explicitly: a defaulted
  // value would silently re-shape the nest.
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "nest id=1 loop=5\n",
                           &error));
  EXPECT_NE(error.find("parent="), std::string::npos);
  EXPECT_FALSE(parse_repro(out,
                           "depfuzz-repro v3\n"
                           "config storage=perfect dedup=0 pack=0\n"
                           "nest id=1 parent=0\n",
                           &error));
  EXPECT_NE(error.find("loop="), std::string::npos);
}

// --- committed corpus replays clean ---------------------------------------

TEST(Corpus, EveryCommittedReproReplaysClean) {
  const std::filesystem::path dir = DEPFUZZ_CORPUS_DIR;
  std::size_t seen = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    ++seen;
    ReproCase repro;
    std::string error;
    ASSERT_TRUE(read_repro(repro, entry.path().string(), &error))
        << entry.path() << ": " << error;
    const CaseOutcome outcome = run_case(repro.trace, repro.cfg);
    EXPECT_TRUE(outcome.ok) << entry.path() << " (" << repro.note << ")\n"
                            << outcome.detail;
  }
  EXPECT_GE(seen, 3u);  // the hand-written seeds must stay present
}

}  // namespace
}  // namespace depprof
