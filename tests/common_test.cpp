// Unit tests for the common substrate: locations, registries, hashing,
// statistics, timers, memory accounting, tables, heatmap.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/hash.hpp"
#include "common/heatmap.hpp"
#include "common/location.hpp"
#include "common/mem_stats.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace depprof {
namespace {

TEST(SourceLocation, PackAndUnpack) {
  const SourceLocation loc(3, 1234);
  EXPECT_EQ(loc.file_id(), 3u);
  EXPECT_EQ(loc.line(), 1234u);
  EXPECT_TRUE(loc.valid());
  EXPECT_EQ(loc.str(), "3:1234");
  EXPECT_EQ(SourceLocation::from_packed(loc.packed()), loc);
}

TEST(SourceLocation, DefaultIsInvalid) {
  const SourceLocation loc;
  EXPECT_FALSE(loc.valid());
  EXPECT_EQ(loc.packed(), 0u);
}

TEST(SourceLocation, LineLimit24Bits) {
  const SourceLocation loc(1, 0xFFFFFFu);
  EXPECT_EQ(loc.line(), 0xFFFFFFu);
  // Overflowing lines wrap into the 24-bit field rather than corrupting the
  // file id.
  const SourceLocation big(1, 0x1000001u);
  EXPECT_EQ(big.file_id(), 1u);
  EXPECT_EQ(big.line(), 1u);
}

TEST(SourceLocation, Ordering) {
  EXPECT_LT(SourceLocation(1, 10), SourceLocation(1, 11));
  EXPECT_LT(SourceLocation(1, 999), SourceLocation(2, 1));
}

TEST(StringRegistry, InternIsStable) {
  StringRegistry reg;
  const auto a = reg.intern("alpha");
  const auto b = reg.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("alpha"), a);
  EXPECT_EQ(reg.name(a), "alpha");
  EXPECT_EQ(reg.name(b), "beta");
}

TEST(StringRegistry, IdZeroIsEmpty) {
  StringRegistry reg;
  const auto a = reg.intern("x");
  EXPECT_GT(a, 0u);
  EXPECT_EQ(reg.name(0), "");
  EXPECT_EQ(reg.name(999), "?");
}

TEST(LocStr, WithAndWithoutTid) {
  const SourceLocation loc(4, 58);
  EXPECT_EQ(loc_str(loc), "4:58");
  EXPECT_EQ(loc_str(loc, 2), "4:58|2");  // Fig. 3 notation
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  // Distinct inputs produce distinct outputs (spot check).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10'000; ++i)
    EXPECT_TRUE(seen.insert(mix64(i)).second);
}

TEST(Hash, WordAddrUnifiesSubWordAccesses) {
  // Word-granularity: byte addresses within one 4-byte word share a unit.
  EXPECT_EQ(word_addr(0x1000), word_addr(0x1003));
  EXPECT_NE(word_addr(0x1000), word_addr(0x1004));
}

TEST(Hash, WorkerAssignmentInRange) {
  for (std::uint64_t a = 0; a < 1000; ++a) {
    EXPECT_LT(modulo_worker(a * 8 + 0x10000, 8), 8u);
    EXPECT_LT(hashed_worker(a * 8 + 0x10000, 8), 8u);
  }
}

TEST(Hash, HashedWorkerSpreadsStridedAddresses) {
  // A pure modulo on a stride-8 sequence with W=8 maps everything to one
  // worker; the mixed variant spreads it.
  std::set<std::uint32_t> modulo_targets, mixed_targets;
  for (std::uint64_t i = 0; i < 64; ++i) {
    modulo_targets.insert(modulo_worker(0x1000 + i * 8, 8));
    mixed_targets.insert(hashed_worker(0x1000 + i * 8, 8));
  }
  EXPECT_EQ(modulo_targets.size(), 1u);
  EXPECT_GT(mixed_targets.size(), 4u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
  EXPECT_NEAR(acc.stddev(), 1.29099, 1e-4);
}

TEST(StatAccumulator, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.cv(), 0.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
}

TEST(Timers, MonotoneAndNonNegative) {
  WallTimer w;
  ThreadCpuTimer c;
  volatile double sink = 0;
  for (int i = 0; i < 100'000; ++i) sink = sink + 1.0;
  EXPECT_GT(w.elapsed(), 0.0);
  EXPECT_GE(c.elapsed(), 0.0);
}

TEST(MemStats, ChargeAndRelease) {
  MemStats::instance().reset();
  {
    ScopedMemCharge charge(MemComponent::kSignatures, 1024);
    EXPECT_EQ(MemStats::instance().bytes(MemComponent::kSignatures), 1024);
    EXPECT_GE(MemStats::instance().peak(), 1024);
  }
  EXPECT_EQ(MemStats::instance().bytes(MemComponent::kSignatures), 0);
}

TEST(MemStats, PeakTracksHighWater) {
  MemStats::instance().reset();
  MemStats::instance().add(MemComponent::kQueues, 100);
  MemStats::instance().add(MemComponent::kQueues, -100);
  MemStats::instance().add(MemComponent::kQueues, 50);
  EXPECT_GE(MemStats::instance().peak(), 100);
  MemStats::instance().reset();
}

TEST(MemStats, ProcessRssIsPositive) {
  EXPECT_GT(MemStats::process_max_rss(), 0);
}

TEST(TextTable, PrintAndCsv) {
  TextTable t("title");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("title"), std::string::npos);
  EXPECT_NE(os.str().find("1"), std::string::npos);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n3,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Heatmap, RendersAllIntensities) {
  std::vector<std::vector<std::uint64_t>> m = {{0, 1}, {50, 100}};
  const std::string art = render_heatmap(m);
  EXPECT_NE(art.find("max=100"), std::string::npos);
  EXPECT_NE(art.find('.'), std::string::npos);  // zero cell
  EXPECT_NE(art.find('@'), std::string::npos);  // max cell
}

TEST(Heatmap, EmptyMatrix) {
  const std::string art = render_heatmap({});
  EXPECT_NE(art.find("max=0"), std::string::npos);
}

}  // namespace
}  // namespace depprof
