// Tests for the src/obs observability layer: counter semantics, snapshot
// shape, monotonicity of live snapshots, stall accounting under a
// capacity-1 queue, merge-stage population, and the report renderers.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "obs/report.hpp"
#include "obs/stage_stats.hpp"
#include "trace/event.hpp"

namespace depprof {
namespace {

AccessEvent access(std::uint64_t addr, AccessKind kind, std::uint32_t line) {
  AccessEvent ev;
  ev.addr = addr;
  ev.kind = kind;
  ev.loc = SourceLocation(1, line).packed();
  return ev;
}

/// True when every counter of `later` is >= the matching counter of
/// `earlier` — the component-wise order monotonic counters guarantee.
bool stage_ge(const obs::StageSnapshot& later, const obs::StageSnapshot& earlier) {
  return later.events >= earlier.events && later.chunks >= earlier.chunks &&
         later.stalls >= earlier.stalls &&
         later.queue_depth_hwm >= earlier.queue_depth_hwm &&
         later.busy_ns >= earlier.busy_ns && later.cpu_ns >= earlier.cpu_ns &&
         later.idle_ns >= earlier.idle_ns &&
         later.idle_cpu_ns >= earlier.idle_cpu_ns &&
         later.parked_ns >= earlier.parked_ns && later.parks >= earlier.parks &&
         later.block_ns >= earlier.block_ns && later.wakes >= earlier.wakes &&
         later.migrations >= earlier.migrations &&
         later.rounds >= earlier.rounds &&
         later.resident_pages >= earlier.resident_pages &&
         later.hugepage_fallbacks >= earlier.hugepage_fallbacks;
}

bool snapshot_ge(const obs::PipelineSnapshot& later,
                 const obs::PipelineSnapshot& earlier) {
  for (const auto& s : earlier.stages) {
    const obs::StageSnapshot* l = later.find(s.stage);
    if (l == nullptr || !stage_ge(*l, s)) return false;
  }
  return true;
}

TEST(StageStats, CountersAccumulate) {
  obs::StageStats s;
  s.add_events(3);
  s.add_events(4);
  s.add_chunks(2);
  s.add_stalls(1);
  s.add_busy_ns(10);
  s.add_cpu_ns(8);
  s.add_idle_ns(20);
  s.add_idle_cpu_ns(15);
  s.add_parked_ns(12);
  s.add_parks(2);
  s.add_block_ns(7);
  s.add_wakes(3);
  s.add_wakes(0);  // no-waiter fast path adds nothing
  s.add_migrations(5);
  s.add_rounds(1);
  s.add_resident_pages(6);
  s.add_hugepage_fallbacks(4);
  EXPECT_EQ(s.events.load(), 7u);
  EXPECT_EQ(s.chunks.load(), 2u);
  EXPECT_EQ(s.stalls.load(), 1u);
  EXPECT_EQ(s.busy_ns.load(), 10u);
  EXPECT_EQ(s.cpu_ns.load(), 8u);
  EXPECT_EQ(s.idle_ns.load(), 20u);
  EXPECT_EQ(s.idle_cpu_ns.load(), 15u);
  EXPECT_EQ(s.parked_ns.load(), 12u);
  EXPECT_EQ(s.parks.load(), 2u);
  EXPECT_EQ(s.block_ns.load(), 7u);
  EXPECT_EQ(s.wakes.load(), 3u);
  EXPECT_EQ(s.migrations.load(), 5u);
  EXPECT_EQ(s.rounds.load(), 1u);
  EXPECT_EQ(s.resident_pages.load(), 6u);
  EXPECT_EQ(s.hugepage_fallbacks.load(), 4u);
}

TEST(StageStats, QueueDepthIsHighWaterMark) {
  obs::StageStats s;
  s.raise_queue_depth(5);
  s.raise_queue_depth(3);  // lower: must not regress
  EXPECT_EQ(s.queue_depth_hwm.load(), 5u);
  s.raise_queue_depth(9);
  EXPECT_EQ(s.queue_depth_hwm.load(), 9u);
}

TEST(PipelineObs, SnapshotHasOneBlockPerStage) {
  obs::PipelineObs obs(3);
  obs.produce().add_events(10);
  obs.detect(1).add_events(4);
  obs.merge().add_chunks(3);

  const obs::PipelineSnapshot snap = obs.snapshot();
  ASSERT_EQ(snap.stages.size(), 3u + 3u);  // produce, route, 3x detect, merge
  EXPECT_EQ(snap.stages.front().stage, "produce");
  EXPECT_EQ(snap.stages.back().stage, "merge");
  ASSERT_NE(snap.find("detect[1]"), nullptr);
  EXPECT_EQ(snap.find("detect[1]")->events, 4u);
  EXPECT_EQ(snap.find("produce")->events, 10u);
  EXPECT_EQ(snap.detect_events(), 4u);
  EXPECT_EQ(snap.find("bogus"), nullptr);
}

TEST(PipelineObs, ZeroWorkersClampsToOne) {
  obs::PipelineObs obs(0);
  EXPECT_EQ(obs.workers(), 1u);
  EXPECT_EQ(obs.snapshot().stages.size(), 4u);
}

// Mid-run snapshots of a live parallel pipeline are component-wise <= every
// later snapshot: counters only ever increase.
TEST(PipelineObs, LiveSnapshotsAreMonotonic) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 14;
  cfg.workers = 2;
  cfg.chunk_size = 16;
  auto prof = make_parallel_profiler(cfg);
  ASSERT_NE(prof, nullptr);

  std::vector<obs::PipelineSnapshot> snaps;
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t i = 0; i < 2'000; ++i)
      prof->on_access(access(0x1000 + (i % 256) * 8,
                             i % 3 == 0 ? AccessKind::kWrite : AccessKind::kRead,
                             10 + static_cast<std::uint32_t>(i % 7)));
    snaps.push_back(prof->stats().stages);
  }
  prof->finish();
  snaps.push_back(prof->stats().stages);

  for (std::size_t i = 1; i < snaps.size(); ++i)
    EXPECT_TRUE(snapshot_ge(snaps[i], snaps[i - 1])) << "snapshot " << i;

  // Everything produced was eventually detected: after finish() the detect
  // stages have consumed exactly the produced events.
  const obs::PipelineSnapshot& last = snaps.back();
  EXPECT_EQ(last.find("produce")->events, 8'000u);
  EXPECT_EQ(last.detect_events(), 8'000u);
}

// A capacity-1 queue with single-access chunks forces the producer to find
// the queue full, so the produce-stage stall counter must fire.
TEST(PipelineObs, StallCounterFiresUnderTinyQueue) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 14;
  cfg.workers = 1;
  cfg.chunk_size = 1;
  cfg.queue_capacity = 1;
  auto prof = make_parallel_profiler(cfg);
  ASSERT_NE(prof, nullptr);

  for (std::uint64_t i = 0; i < 50'000; ++i)
    prof->on_access(access(0x2000 + (i % 64) * 8, AccessKind::kWrite, 11));
  prof->finish();

  const obs::PipelineSnapshot snap = prof->stats().stages;
  const obs::StageSnapshot* produce = snap.find("produce");
  ASSERT_NE(produce, nullptr);
  EXPECT_GT(produce->stalls, 0u);
  EXPECT_GE(produce->queue_depth_hwm, 1u);
  // Every stall runs one bounded-backpressure wait episode, so the producer
  // block time must be visible too.
  EXPECT_GT(produce->block_ns, 0u);
}

// The merge stage is empty while the pipeline runs and is populated by
// finish(): one folded chunk per worker, and the counters survive into
// ProfilerStats for both profilers.
TEST(PipelineObs, MergeStagePopulatedByFinish) {
  for (bool parallel : {false, true}) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = 1u << 14;
    cfg.workers = parallel ? 3 : 0;
    auto prof = parallel ? make_parallel_profiler(cfg) : make_serial_profiler(cfg);
    ASSERT_NE(prof, nullptr);

    for (std::uint64_t i = 0; i < 1'000; ++i) {
      prof->on_access(access(0x3000 + i * 8, AccessKind::kWrite, 21));
      prof->on_access(access(0x3000 + i * 8, AccessKind::kRead, 22));
    }
    const obs::PipelineSnapshot before = prof->stats().stages;
    EXPECT_EQ(before.find("merge")->chunks, 0u);

    prof->finish();
    const ProfilerStats st = prof->stats();
    const obs::StageSnapshot* merge = st.stages.find("merge");
    ASSERT_NE(merge, nullptr);
    EXPECT_EQ(merge->chunks, parallel ? 3u : 1u);
    EXPECT_GT(merge->events, 0u);  // folded dependence records
    EXPECT_EQ(st.workers, parallel ? 3u : 1u);
    EXPECT_EQ(st.events, 2'000u);
  }
}

TEST(Report, RenderersCoverEveryStage) {
  obs::PipelineObs obs(2);
  obs.produce().add_events(12);
  obs.detect(0).add_busy_ns(1'500'000'000);  // 1.5 s
  const obs::PipelineSnapshot snap = obs.snapshot();

  const std::string csv = obs::snapshot_csv(snap);
  EXPECT_NE(csv.find("stage,events,chunks,stalls,queue_depth_hwm,busy_sec"),
            std::string::npos);
  EXPECT_NE(csv.find("produce,12"), std::string::npos);
  EXPECT_NE(csv.find("detect[1]"), std::string::npos);

  const std::string json = obs::snapshot_json(snap);
  EXPECT_NE(json.find("\"stage\":\"produce\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\":\"merge\""), std::string::npos);
  EXPECT_NE(json.find("1.500000"), std::string::npos);
  // Backpressure fields are part of every rendering.
  EXPECT_NE(json.find("\"parked_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"block_sec\""), std::string::npos);
  EXPECT_NE(json.find("\"wakes\""), std::string::npos);
  EXPECT_NE(csv.find("parked_sec"), std::string::npos);
  // Store-residency fields likewise.
  EXPECT_NE(json.find("\"resident_pages\""), std::string::npos);
  EXPECT_NE(json.find("\"hugepage_fallbacks\""), std::string::npos);
  EXPECT_NE(csv.find("resident_pages"), std::string::npos);

  const std::string text = obs::snapshot_text(snap);
  EXPECT_NE(text.find("produce"), std::string::npos);
  EXPECT_NE(text.find("detect[0]"), std::string::npos);
}

TEST(Report, BenchReportEmitsMetricsAndBreakdowns) {
  obs::PipelineObs obs(1);
  obs.produce().add_events(7);

  obs::BenchReport report("obs_selftest");
  report.metric("ratio", 1.75);
  report.stages("serial", obs.snapshot());

  EXPECT_EQ(report.path(), "BENCH_obs_selftest.json");
  const std::string json = report.json();
  EXPECT_NE(json.find("\"bench\":\"obs_selftest\""), std::string::npos);
  EXPECT_NE(json.find("\"ratio\":1.75"), std::string::npos);
  EXPECT_NE(json.find("\"stage_breakdowns\":{\"serial\":"), std::string::npos);
  EXPECT_NE(json.find("\"events\":7"), std::string::npos);
}

}  // namespace
}  // namespace depprof
