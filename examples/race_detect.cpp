// Potential data-race detection (Sec. V-B): run two instrumented kernels —
// one properly synchronized with lock regions, one intentionally racy — and
// show that the timestamp-reversal check flags only the racy one.
//
//   $ ./race_detect

#include <atomic>
#include <cstdio>
#include <thread>

#include "core/profiler.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"
#include "mt/instrumented_mutex.hpp"
#include "mt/race_report.hpp"

DP_FILE("race_detect");

namespace {

using namespace depprof;

/// Properly synchronized counter: accesses (and their pushes, Fig. 4)
/// happen inside lock regions of an InstrumentedMutex.
void synchronized_kernel(int rounds) {
  long counter = 0;
  InstrumentedMutex mu;
  auto body = [&] {
    for (int i = 0; i < rounds; ++i) {
      std::lock_guard lock(mu);
      DP_UPDATE(counter);
      counter += 1;
    }
  };
  std::thread a(body), b(body);
  a.join();
  b.join();
  std::printf("  synchronized counter = %ld\n", counter);
}

/// Racy counter: two threads update a shared cell without any lock region.
/// Chunked buffering decouples access order from push order, and the
/// worker's timestamp check exposes the reversal.
void racy_kernel(int rounds) {
  std::atomic<long> counter{0};  // atomic so the *kernel* itself is benign
  auto body = [&] {
    for (int i = 0; i < rounds; ++i) {
      DP_READ(counter);
      DP_WRITE(counter);
      counter.fetch_add(1, std::memory_order_relaxed);
      if (i % 16 == 0) std::this_thread::yield();
    }
  };
  std::thread a(body), b(body);
  a.join();
  b.join();
  std::printf("  racy counter = %ld\n", counter.load());
}

RaceReport profile(void (*kernel)(int), int rounds) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.mt_targets = true;
  cfg.workers = 2;
  cfg.chunk_size = 64;
  auto prof = make_parallel_profiler(cfg);
  Runtime::instance().reset();
  Runtime::instance().attach(prof.get(), /*mt_mode=*/true);
  kernel(rounds);
  Runtime::instance().detach();
  return find_races(prof->dependences());
}

}  // namespace

int main() {
  std::printf("-- synchronized kernel (lock regions via InstrumentedMutex) --\n");
  const RaceReport clean = profile(&synchronized_kernel, 2000);
  std::fputs(format_race_report(clean).c_str(), stdout);

  std::printf("\n-- racy kernel (no lock regions) --\n");
  const RaceReport racy = profile(&racy_kernel, 2000);
  std::fputs(format_race_report(racy).c_str(), stdout);

  std::printf("\nsummary: %zu confirmed races in the synchronized kernel, "
              "%zu in the racy one\n",
              clean.confirmed_count(), racy.confirmed_count());
  return clean.confirmed_count() == 0 && racy.confirmed_count() > 0 ? 0 : 1;
}
