// Parallelism discovery (Sec. VII-A): profile a workload, feed the
// dependences and control-flow information to the DiscoPoP-style loop
// analysis, and print per-loop verdicts with the blocking dependences.
//
//   $ ./discover_parallelism [workload] [--slots N]
//
// Default workload: cg (mixed parallel and sequential loops).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/loop_parallelism.hpp"
#include "core/formatter.hpp"
#include "harness/runner.hpp"
#include "instrument/runtime.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace depprof;

  const char* name = "cg";
  std::size_t slots = 1u << 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc)
      slots = static_cast<std::size_t>(std::atoll(argv[++i]));
    else
      name = argv[i];
  }

  const Workload* w = find_workload(name);
  if (w == nullptr || !w->run) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", name);
    for (const auto& wl : all_workloads())
      std::fprintf(stderr, "  %s\n", wl.name.c_str());
    return 1;
  }

  // Profile with a signature-based serial profiler.
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = slots;
  RunOptions opts;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);

  std::printf("== %s: %llu accesses, %zu merged dependences ==\n\n",
              w->name.c_str(), static_cast<unsigned long long>(m.stats.events),
              m.deps.size());

  // Run the loop-parallelism analysis.
  LoopAnalysisOptions aopts;
  aopts.reduction_lines = Runtime::instance().reduction_lines();
  const auto verdicts = analyze_loops(m.deps, m.control_flow, aopts);
  std::fputs(format_loop_verdicts(verdicts).c_str(), stdout);

  // Compare against the workload's ground truth if available.
  if (verdicts.size() == w->loops.size()) {
    std::printf("\nground truth (OpenMP annotations of the analogue):\n");
    unsigned agree = 0;
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      const bool ok = verdicts[i].parallelizable() == w->loops[i].parallelizable;
      agree += ok ? 1 : 0;
      std::printf("  %-12s expected %-18s -> %s\n", w->loops[i].label,
                  w->loops[i].parallelizable ? "parallelizable" : "sequential",
                  ok ? "agrees" : "DISAGREES");
    }
    std::printf("%u/%zu verdicts agree\n", agree, verdicts.size());
  }
  return 0;
}
