// Communication-pattern detection (Sec. VII-B): profile a multi-threaded
// target with the MT pipeline and render the producer/consumer matrix
// derived from cross-thread RAW dependences — the Fig. 9 workflow.
//
//   $ ./comm_pattern [workload] [--threads N]
//
// Default: water-spatial (the paper's Fig. 9 subject) with 8 threads.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/comm_matrix.hpp"
#include "harness/runner.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace depprof;

  const char* name = "water-spatial";
  unsigned threads = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    else
      name = argv[i];
  }

  const Workload* w = find_workload(name);
  if (w == nullptr || !w->run_parallel) {
    std::fprintf(stderr, "'%s' has no parallel variant; options:\n", name);
    for (const Workload* p : parallel_workloads())
      std::fprintf(stderr, "  %s\n", p->name.c_str());
    return 1;
  }

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;  // exact dependences for the figure
  cfg.mt_targets = true;
  cfg.workers = 4;
  cfg.queue = QueueKind::kLockFreeMpmc;

  RunOptions opts;
  opts.target_threads = threads;
  opts.parallel_pipeline = true;
  opts.native_reps = 1;
  const RunMeasurement m = profile_workload(*w, cfg, opts);

  const CommMatrix matrix = build_comm_matrix(m.deps, threads + 1);
  std::printf("communication pattern of %s (%u target threads; thread 0 is "
              "the main thread):\n\n",
              w->name.c_str(), threads);
  std::fputs(format_comm_matrix(matrix).c_str(), stdout);
  std::printf("\ncross-thread RAW instances: %llu\n",
              static_cast<unsigned long long>(matrix.total()));
  return 0;
}
