// Capture-and-replay workflow: record a workload's access stream to a trace
// file, then re-profile the same stream under several signature sizes
// without re-running the target — the way one would tune the signature for
// a long-running program.
//
//   $ ./profile_trace [workload] [trace-file]

#include <cstdio>
#include <cstring>

#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "harness/accuracy.hpp"
#include "harness/runner.hpp"
#include "sig/fpr_model.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace depprof;

  const char* name = argc > 1 ? argv[1] : "kmeans";
  const char* path = argc > 2 ? argv[2] : "/tmp/depprof_capture.trace";

  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n", name);
    return 1;
  }

  // 1. Capture.
  const Trace trace = record_workload(*w);
  if (!write_trace(trace, path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  const std::size_t n = trace.distinct_addresses();
  std::printf("captured %zu accesses (%zu distinct addresses) to %s\n",
              trace.size(), n, path);

  // 2. Reload and replay under a perfect baseline.
  Trace loaded;
  if (!read_trace(loaded, path)) {
    std::fprintf(stderr, "cannot read %s back\n", path);
    return 1;
  }
  ProfilerConfig perfect;
  perfect.storage = StorageKind::kPerfect;
  auto base = make_serial_profiler(perfect);
  replay(loaded, *base);
  std::printf("perfect baseline: %zu merged dependences\n\n",
              base->dependences().size());

  // 3. Sweep signature sizes against the baseline, next to the formula-2
  //    sizing suggestion.
  std::printf("%-12s %-8s %-8s %-10s\n", "slots", "FPR%", "FNR%", "sig MiB");
  for (std::size_t slots : {n / 4, n, 4 * n, 16 * n}) {
    if (slots == 0) continue;
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = slots;
    auto prof = make_serial_profiler(cfg);
    replay(loaded, *prof);
    const AccuracyResult acc = compare_deps(base->dependences(), prof->dependences());
    std::printf("%-12zu %-8.2f %-8.2f %-10.2f\n", slots, acc.fpr_percent(),
                acc.fnr_percent(),
                static_cast<double>(prof->stats().signature_bytes) / 1048576.0);
  }
  std::printf("\nformula-2 sizing for 1%% slot-occupancy: %zu slots\n",
              slots_for_target_fpr(n, 0.01));
  return 0;
}
