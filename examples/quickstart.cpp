// Quickstart: profile a small instrumented kernel and print its dependences
// in the paper's Fig. 1 text format.
//
//   $ ./quickstart
//
// Demonstrates the core workflow: attach a profiler to the instrumentation
// runtime, run instrumented code, detach, and inspect the merged
// dependences plus the recorded control-flow (BGN/END loop) information.

#include <cstdio>
#include <vector>

#include "core/formatter.hpp"
#include "core/profiler.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"

DP_FILE("quickstart");

namespace {

// A tiny kernel with all three dependence types:
//   RAW: a[i] reads a[i-1] written in the previous iteration (loop-carried)
//   WAR/WAW: sum is read and rewritten every iteration
void kernel(std::vector<double>& a, double& sum) {
  DP_LOOP_BEGIN();
  for (std::size_t i = 1; i < a.size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(a[i - 1]);
    DP_WRITE(a[i]);
    a[i] = a[i - 1] * 0.5 + 1.0;
    DP_UPDATE(sum);
    sum += a[i];
  }
  DP_LOOP_END();
}

}  // namespace

int main() {
  using namespace depprof;

  // 1. Configure a profiler.  The serial profiler runs Algorithm 1 inline;
  //    swap in make_parallel_profiler for the Fig. 2 pipeline.
  ProfilerConfig config;
  config.storage = StorageKind::kSignature;
  config.slots = 1u << 20;  // per-signature slot count

  auto profiler = make_serial_profiler(config);

  // 2. Attach it to the instrumentation runtime and run instrumented code.
  Runtime::instance().reset();
  Runtime::instance().attach(profiler.get());
  std::vector<double> a(64, 1.0);
  double sum = 0.0;
  kernel(a, sum);
  Runtime::instance().detach();

  // 3. Inspect the result.
  const ControlFlowLog cf = Runtime::instance().control_flow();
  std::printf("%s\n", format_deps(profiler->dependences(), &cf).c_str());
  std::printf("(kernel checksum: %f)\n", sum);

  const auto stats = profiler->stats();
  std::printf("events processed : %llu\n",
              static_cast<unsigned long long>(stats.events));
  std::printf("merged dependences: %zu (from %llu instances)\n",
              profiler->dependences().size(),
              static_cast<unsigned long long>(profiler->dependences().instances()));
  return 0;
}
