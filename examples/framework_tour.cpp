// Tour of the Sec. VIII program-analysis framework: profile an instrumented
// program with function markers, build the ProgramModel, and walk its
// representations — call tree, loop table, dependence graph (with DOT
// export), and the plugin registry.
//
//   $ ./framework_tour

#include <cstdio>
#include <vector>

#include "core/profiler.hpp"
#include "framework/plugin.hpp"
#include "framework/program_model.hpp"
#include "instrument/macros.hpp"
#include "instrument/runtime.hpp"

DP_FILE("framework_tour");

namespace {

using namespace depprof;

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  DP_FUNCTION("dot");
  double sum = 0.0;
  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < a.size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(a[i]);
    DP_READ(b[i]);
    DP_REDUCTION(); DP_UPDATE(sum); sum += a[i] * b[i];
  }
  DP_LOOP_END();
  return sum;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  DP_FUNCTION("axpy");
  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < x.size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(x[i]);
    DP_UPDATE(y[i]);
    y[i] += alpha * x[i];
  }
  DP_LOOP_END();
}

double solve(std::vector<double>& x, std::vector<double>& r) {
  DP_FUNCTION("solve");
  double residual = 0.0;
  DP_LOOP_BEGIN();
  for (int it = 0; it < 4; ++it) {
    DP_LOOP_ITER();
    const double rr = dot(r, r);
    axpy(0.1 * rr / (1.0 + rr), r, x);
    DP_READ(residual);
    DP_WRITE(residual);
    residual = rr;  // convergence state: the carried dependence
  }
  DP_LOOP_END();
  return residual;
}

}  // namespace

int main() {
  // Profile an instrumented mini-solver.
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 18;
  auto profiler = make_serial_profiler(cfg);
  Runtime::instance().reset();
  Runtime::instance().attach(profiler.get());
  std::vector<double> x(256, 0.0), r(256, 1.0);
  const double res = solve(x, r);
  Runtime::instance().detach();
  std::printf("solver residual: %f\n\n", res);

  // Build the model; every representation derives from the one profiled run.
  const ProgramModel model = ProgramModel::from_run(*profiler);

  std::printf("== call tree ==\n%s\n", model.call_tree().render().c_str());
  std::printf("== loop table ==\n%s\n", model.loop_table().render().c_str());

  const DepGraph& graph = model.dep_graph();
  std::printf("== dependence graph: %zu nodes, %zu edges, RAW cycle: %s ==\n\n",
              graph.nodes().size(), graph.edge_count(),
              graph.has_raw_cycle() ? "yes" : "no");
  std::printf("DOT (render with `dot -Tsvg`):\n%s\n", graph.to_dot().c_str());

  std::printf("== plugins ==\n");
  for (AnalysisPlugin* plugin : PluginRegistry::instance().all()) {
    std::printf("\n-- %s: %s --\n%s", plugin->name().c_str(),
                plugin->description().c_str(), plugin->run(model).c_str());
  }
  return 0;
}
