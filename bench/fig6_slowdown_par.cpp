// Fig. 6: slowdown of the profiler on *parallel* Starbench analogues
// (pthread version, 4 target threads), with 8 and 16 profiling threads.
//
// As in the paper, native execution time of a parallel benchmark is the
// accumulated per-thread time (on our single-core host, wall time already
// is that accumulation).  Both the simulated multi-core slowdown and the
// measured wall slowdown are reported (see fig5 and DESIGN.md).  Paper
// comparison points: 346x (8T) and 261x (16T) on average.
//
// Usage: fig6_slowdown_par [--scale N] [--target-threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  int scale = 1;
  unsigned target_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--target-threads") == 0 && i + 1 < argc)
      target_threads = static_cast<unsigned>(std::atoi(argv[++i]));
  }

  TextTable table("Fig. 6 — profiler slowdown on parallel Starbench targets (" +
                  std::to_string(target_threads) + " target threads)");
  table.set_header({"program", "native_ms", "8T(sim)", "16T(sim)", "8T(wall)",
                    "16T(wall)"});

  StatAccumulator avg8, avg16;
  const unsigned worker_counts[2] = {8, 16};
  obs::BenchReport report("fig6_slowdown_par");
  obs::PipelineSnapshot last_stages[2];

  for (const Workload* w : workloads_in_suite("starbench")) {
    if (!w->run_parallel) continue;
    double sim[2] = {}, wall[2] = {}, native_ms = 0.0;
    for (int c = 0; c < 2; ++c) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = 1u << 17;
      cfg.mt_targets = true;
      cfg.workers = worker_counts[c];
      cfg.queue = QueueKind::kLockFreeMpmc;

      RunOptions opts;
      opts.scale = scale;
      opts.target_threads = target_threads;
      opts.parallel_pipeline = true;
      opts.native_reps = 3;

      const RunMeasurement m = profile_workload(*w, cfg, opts);
      native_ms = m.native_sec * 1e3;
      sim[c] = m.simulated_slowdown();
      wall[c] = m.slowdown();
      last_stages[c] = m.stats.stages;
    }
    avg8.add(sim[0]);
    avg16.add(sim[1]);
    table.add_row({w->name, TextTable::num(native_ms, 3),
                   TextTable::num(sim[0], 1), TextTable::num(sim[1], 1),
                   TextTable::num(wall[0], 1), TextTable::num(wall[1], 1)});
  }
  table.add_row({"average", "-", TextTable::num(avg8.mean(), 1),
                 TextTable::num(avg16.mean(), 1), "-", "-"});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference (Fig. 6): average 346x with 8 profiling threads, "
      "261x with 16; MT profiling costs more than sequential profiling "
      "(Fig. 5) because of added contention.\n");

  report.metric("avg_sim_8T", avg8.mean());
  report.metric("avg_sim_16T", avg16.mean());
  if (!last_stages[0].empty()) report.stages("8T_mpmc", last_stages[0]);
  if (!last_stages[1].empty()) report.stages("16T_mpmc", last_stages[1]);
  report.write();
  return 0;
}
