// Smoke harness: runs every registered workload once at scale 1 (natively,
// no profiler) and prints name, suite, and checksum.  Serves as the build
// sanity check for the benchmark layer.

#include <cstdio>

#include "workloads/workload.hpp"

int main() {
  for (const auto& w : depprof::all_workloads()) {
    const auto r = w.run ? w.run(1) : depprof::WorkloadResult{};
    std::printf("%-14s %-10s checksum=%llu\n", w.name.c_str(), w.suite.c_str(),
                static_cast<unsigned long long>(r.checksum));
  }
  return 0;
}
