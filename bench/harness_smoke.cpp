// Smoke harness: runs every registered workload once at scale 1 (natively,
// no profiler) and prints name, suite, and checksum, then profiles one
// small workload end to end so BENCH_harness_smoke.json carries a real
// pipeline stage breakdown.  Serves as the build sanity check for the
// benchmark layer.

#include <cstdio>

#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace depprof;

  obs::BenchReport report("harness_smoke");
  std::size_t count = 0;
  for (const auto& w : all_workloads()) {
    const auto r = w.run ? w.run(1) : WorkloadResult{};
    std::printf("%-14s %-10s checksum=%llu\n", w.name.c_str(), w.suite.c_str(),
                static_cast<unsigned long long>(r.checksum));
    ++count;
  }
  report.metric("workloads", static_cast<double>(count));

  // One small profiled run (serial and parallel) exercises the whole
  // harness path and populates the stage breakdown.
  if (const Workload* w = find_workload("kmeans")) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = 1u << 16;
    RunOptions opts;
    opts.native_reps = 1;
    const RunMeasurement serial = profile_workload(*w, cfg, opts);
    report.metric("serial_slowdown", serial.slowdown());
    report.stages("serial", serial.stats.stages);

    cfg.workers = 4;
    opts.parallel_pipeline = true;
    const RunMeasurement par = profile_workload(*w, cfg, opts);
    report.metric("parallel_sim_slowdown", par.simulated_slowdown());
    report.stages("parallel_4w", par.stats.stages);
  }
  report.write();
  return 0;
}
