// frontend — front-end event reduction A/B: the per-thread access-dedup
// cache (--dedup) and the compact chunk encoding (--pack), separately and
// together, against the PR-4 front end (both off).
//
// The primary stream is the regime the reduction targets (Sec. VI's
// observation that dependence instances repeat ~1e5 times per static
// dependence): a loop-heavy byte-granularity kernel whose iterations carry
// exact intra-iteration repeats — byte scans over word-granular shadow
// state (4 identical word events per word) and re-reads of a loop-invariant
// scalar from one source line.  A uniform-random stream with per-event
// random locations and alternating kinds is the disclosed adversarial
// secondary: no access identity ever repeats inside an iteration, so the
// dedup cache can only miss and packing is the only reduction left.
//
// Every configuration runs the identical target program through the real
// instrumentation runtime (dedup lives in Runtime::record, packing on the
// pipeline queues), and every resulting map is cross-checked byte-identical
// with oracle::diff_deps against the same profiler's raw (base) run before
// any number is reported — the reductions must be invisible in the output.
// The reference is per profiler because the signature backend's aliasing
// differs between one shared serial signature and per-worker signatures;
// that approximation gap predates this bench and is not what it measures.
//
// Metrics per (stream, profiler, config):
//   eps               end-to-end accesses/sec (attach..detach wall time)
//   bytes_per_access  produce-stage bytes_on_wire / logical accesses —
//                     the queue-traffic metric (64 = PR-4 front end; the
//                     serial profiler reports raw-equivalent stage-boundary
//                     bytes, so only the dedup axis moves it there)
//   dedup_ratio       logical accesses per surviving RLE record
//   pack_escapes      wire records that fell back to the 80-byte escape
//
// Usage: frontend [--iters N] [--uniform N] [--reps R] [--workers W]
//                 [--slots N] [--smoke]
//   --smoke   small stream + deterministic gates: maps identical across the
//             whole config lattice, >=2x wire-byte reduction per access on
//             the loop stream with dedup+pack, and a generous catastrophic
//             floor on the timing ratio; used as a tier-1 ctest.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/profiler.hpp"
#include "instrument/runtime.hpp"
#include "obs/bench_report.hpp"
#include "oracle/diff.hpp"

using namespace depprof;

namespace {

/// Carried-dependence ring in the loop kernel (write acc[i%R], read the
/// previous slot) — keeps the stream a real dependence workload, not just
/// cache filler.
constexpr std::size_t kRing = 64;
/// Bytes per scan per iteration.  16-byte scans start 16-aligned, so each
/// scan is exactly four word-granular runs of four identical events.
constexpr std::size_t kScanBytes = 16;
/// Logical accesses per loop-kernel iteration: two 16-byte scans, four
/// re-reads of the invariant scalar, and the ring read+write.
constexpr std::size_t kAccessesPerIter = 2 * kScanBytes + 4 + 2;

/// Loop-heavy kernel, driven through the live runtime.  Iteration i:
///   line 101: read  src[i*16 .. +16] byte-wise   (4 words x 4 repeats)
///   line 102: read  coef four times              (1 word  x 4 repeats)
///   line 103: write dst[i*16 .. +16] byte-wise   (4 words x 4 repeats)
///   line 104: read  acc[(i+R-1)%R]               (RAW, distance kRing)
///   line 105: write acc[i%R]                     (WAW, distance kRing)
/// 38 accesses, 11 surviving records per iteration (~3.45x dedup); the
/// loop_iter() boundary flushes the cache so no repeat crosses iterations.
std::uint64_t run_loop_kernel(Runtime& rt, std::size_t iters,
                              const unsigned char* src, unsigned char* dst,
                              std::size_t buf_bytes, const float* coef,
                              float* acc) {
  rt.loop_begin(1, 100);
  for (std::size_t i = 0; i < iters; ++i) {
    rt.loop_iter();
    const std::size_t base = (i * kScanBytes) % buf_bytes;
    for (std::size_t b = 0; b < kScanBytes; ++b)
      rt.record(src + base + b, 1, 1, 101, 1, /*is_write=*/false);
    for (int r = 0; r < 4; ++r)
      rt.record(coef, 4, 1, 102, 2, /*is_write=*/false);
    for (std::size_t b = 0; b < kScanBytes; ++b)
      rt.record(dst + base + b, 1, 1, 103, 3, /*is_write=*/true);
    rt.record(acc + (i + kRing - 1) % kRing, 4, 1, 104, 4, /*is_write=*/false);
    rt.record(acc + i % kRing, 4, 1, 105, 4, /*is_write=*/true);
  }
  rt.loop_end(1, 100);
  return static_cast<std::uint64_t>(iters) * kAccessesPerIter;
}

/// Adversarial kernel: every access hits a mixed-hash word of a large table
/// with a per-event pseudo-random location and alternating kind, 16 accesses
/// per loop iteration.  Identities never repeat within an iteration, so the
/// dedup cache is pure overhead here; address deltas are random (but fit the
/// wire record's i32), so packing still gets its fixed 4x minus escapes.
std::uint64_t run_uniform_kernel(Runtime& rt, std::size_t accesses,
                                 unsigned char* table,
                                 std::size_t table_words) {
  rt.loop_begin(1, 200);
  for (std::size_t i = 0; i < accesses; ++i) {
    if (i % 16 == 0) rt.loop_iter();
    const std::uint64_t r = mix64(0x9e3779b97f4a7c15ull + i);
    rt.record(table + (r % table_words) * 4, 4, 1,
              201 + static_cast<std::uint32_t>((r >> 40) % 61), 1,
              /*is_write=*/(r >> 32) % 2 == 0);
  }
  rt.loop_end(1, 200);
  return accesses;
}

using Kernel = std::function<std::uint64_t(Runtime&)>;

struct RunResult {
  double best_eps = 0;            ///< accesses/sec, attach..detach, best-of-reps
  double bytes_per_access = 64;   ///< produce bytes_on_wire / logical accesses
  double dedup_ratio = 1;         ///< logical accesses per surviving record
  std::uint64_t pack_escapes = 0;
  DepMap deps;
  obs::PipelineSnapshot stages;
};

/// One timed run of `kernel` through the live runtime into a freshly built
/// profiler.  The timer covers attach..detach, so the parallel numbers
/// include the full pipeline drain, and the reduction's record-side savings
/// land on the producer's critical path exactly as they would in a target.
void one_rep(const ProfilerConfig& cfg, bool parallel, const Kernel& kernel,
             bool last, RunResult& result) {
  Runtime& rt = Runtime::instance();
  rt.reset();
  auto profiler =
      parallel ? make_parallel_profiler(cfg) : make_serial_profiler(cfg);
  WallTimer t;
  rt.attach(profiler.get(), /*mt_mode=*/false, cfg.dedup);
  const std::uint64_t accesses = kernel(rt);
  rt.detach();
  const double eps = static_cast<double>(accesses) / t.elapsed();
  if (eps > result.best_eps) result.best_eps = eps;
  if (last) {
    obs::PipelineSnapshot snap = profiler->stats().stages;
    if (const obs::StageSnapshot* p = snap.find("produce")) {
      if (p->events > 0)
        result.bytes_per_access =
            static_cast<double>(p->bytes_on_wire) / static_cast<double>(p->events);
      const std::uint64_t records = p->events - p->events_deduped;
      if (records > 0)
        result.dedup_ratio =
            static_cast<double>(p->events) / static_cast<double>(records);
      result.pack_escapes = p->pack_escapes;
    }
    result.stages = std::move(snap);
    result.deps = profiler->take_dependences();
  }
}

struct FrontEnd {
  bool dedup;
  bool pack;
  const char* name;
};

constexpr FrontEnd kLattice[] = {{false, false, "base"},
                                 {true, false, "dedup"},
                                 {false, true, "pack"},
                                 {true, true, "both"}};

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 200'000;       // x38 = 7.6M accesses on the loop stream
  std::size_t uniform = 2'000'000;
  std::size_t slots = std::size_t{1} << 18;
  unsigned workers = 4;
  int reps = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc)
      iters = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--uniform" && i + 1 < argc)
      uniform = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--slots" && i + 1 < argc)
      slots = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--workers" && i + 1 < argc)
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (arg == "--reps" && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (arg == "--smoke")
      smoke = true;
  }
  if (smoke) {
    iters = 8'000;
    uniform = 100'000;
    slots = std::size_t{1} << 16;
    reps = 2;
  }

  // Target-program state.  The scan buffers wrap, so late iterations revisit
  // early words — extra carried dependences, identical in every config.  All
  // of it is carved from one arena: a program's loop working set lives in
  // one allocation region, and splitting it across glibc's brk heap and the
  // mmap'd large-allocation region would put >8 GiB (the wire record's i32
  // word delta) between consecutive accesses, turning every region switch
  // into an escape the real workload would not pay.
  const std::size_t buf_bytes = std::min<std::size_t>(
      std::size_t{1} << 22, ((iters * kScanBytes + 15) / 16) * 16);
  std::vector<unsigned char> arena(2 * buf_bytes + (1 + kRing) * sizeof(float));
  unsigned char* const src = arena.data();
  unsigned char* const dst = arena.data() + buf_bytes;
  float* const coef = reinterpret_cast<float*>(arena.data() + 2 * buf_bytes);
  float* const acc = coef + 1;
  const std::size_t table_words = std::size_t{1} << 20;
  std::vector<unsigned char> table(table_words * 4);

  const Kernel loop_kernel = [&](Runtime& rt) {
    return run_loop_kernel(rt, iters, src, dst, buf_bytes, coef, acc);
  };
  const Kernel uniform_kernel = [&](Runtime& rt) {
    return run_uniform_kernel(rt, uniform, table.data(), table_words);
  };

  TextTable table_out(
      "Front-end event reduction — dedup x pack A/B, end-to-end accesses/sec "
      "(" + std::to_string(iters * kAccessesPerIter) + " loop accesses, " +
      std::to_string(workers) + " workers)");
  table_out.set_header({"stream/profiler", "config", "acc/s", "B/access",
                        "dedup x", "escapes"});
  obs::BenchReport report("frontend");
  report.metric("loop_accesses", static_cast<double>(iters * kAccessesPerIter));
  report.metric("uniform_accesses", static_cast<double>(uniform));
  report.metric("workers", static_cast<double>(workers));

  bool ok = true;
  struct StreamSpec {
    const char* name;
    const Kernel* kernel;
  };
  const StreamSpec streams[] = {{"loop", &loop_kernel},
                                {"uniform", &uniform_kernel}};

  for (const StreamSpec& stream : streams) {
    ProfilerConfig cfg;
    cfg.slots = slots;
    cfg.workers = workers;

    for (bool parallel : {false, true}) {
      RunResult results[4];
      // Interleave the lattice rep by rep so host drift hits every config.
      for (int rep = 0; rep < reps; ++rep) {
        for (std::size_t c = 0; c < 4; ++c) {
          cfg.dedup = kLattice[c].dedup;
          cfg.pack = kLattice[c].pack;
          one_rep(cfg, parallel, *stream.kernel, rep == reps - 1, results[c]);
        }
      }
      const char* mode = parallel ? "parallel" : "serial";
      // The raw run of the same profiler is the identity reference.
      const RunResult& reference = results[0];
      for (std::size_t c = 0; c < 4; ++c) {
        const RunResult& r = results[c];
        const DepDiff diff = diff_deps(reference.deps, r.deps);
        if (!diff.identical()) {
          std::fprintf(stderr, "FAIL: %s/%s/%s: map diverges from the same "
                       "profiler's raw run:\n%s",
                       stream.name, mode, kLattice[c].name,
                       format_diff(diff, "reference", "reduced").c_str());
          ok = false;
          continue;
        }
        table_out.add_row({std::string(stream.name) + "/" + mode,
                           kLattice[c].name, TextTable::num(r.best_eps),
                           TextTable::num(r.bytes_per_access),
                           TextTable::num(r.dedup_ratio),
                           TextTable::num(static_cast<double>(r.pack_escapes))});
        const std::string key =
            std::string(stream.name) + "_" + mode + "_" + kLattice[c].name;
        report.metric(key + "_eps", r.best_eps);
        report.metric(key + "_bytes_per_access", r.bytes_per_access);
        report.metric(key + "_dedup_ratio", r.dedup_ratio);
        report.metric(key + "_pack_escapes",
                      static_cast<double>(r.pack_escapes));
      }
      const double speedup = results[3].best_eps / results[0].best_eps;
      const double wire_reduction =
          results[3].bytes_per_access > 0
              ? 64.0 / results[3].bytes_per_access
              : 0;
      const std::string prefix = std::string(stream.name) + "_" + mode;
      report.metric(prefix + "_e2e_speedup", speedup);
      report.metric(prefix + "_wire_reduction", wire_reduction);
      if (parallel) {
        report.stages(prefix + "/base", results[0].stages);
        report.stages(prefix + "/both", results[3].stages);
      }

      // Deterministic smoke gates — counter-based, immune to host noise.
      if (std::strcmp(stream.name, "loop") == 0 && parallel) {
        if (results[3].bytes_per_access > 32.0) {
          std::fprintf(stderr, "FAIL: loop/parallel/both: %.1f bytes/access "
                       "on the wire (need <= 32 for the 2x reduction)\n",
                       results[3].bytes_per_access);
          ok = false;
        }
        if (results[1].dedup_ratio < 2.0) {
          std::fprintf(stderr, "FAIL: loop/parallel/dedup: dedup ratio %.2f "
                       "(the stream repeats ~3.45x)\n",
                       results[1].dedup_ratio);
          ok = false;
        }
        // Catastrophic timing floor only: single-core CI is too noisy for a
        // speedup gate; the committed full-size run carries that claim.
        if (smoke && speedup < 0.5) {
          std::fprintf(stderr, "FAIL: loop/parallel: dedup+pack %.2fx the "
                       "raw front end (below the 0.5 noise floor)\n", speedup);
          ok = false;
        }
      }
    }
  }

  std::ostringstream os;
  table_out.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table_out.csv().c_str());
  report.write();
  return ok ? 0 : 1;
}
