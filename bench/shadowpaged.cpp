// shadowpaged — exact-store working-set sweep (SLAMP-style paged shadow
// memory vs the chained hash table and the two-level shadow map).
//
// The packed store's claim is about *scale*: at small working sets every
// exact backend fits in cache and they tie, but past the LLC the hash
// table pays a bucket probe plus a chain-node miss per access and an
// allocation per cold address, while the packed page table pays one 8-byte
// word on a huge-page-backed leaf (TLB-resident, prefetchable).  This
// bench sweeps the touched-word working set from 1M to 256M words and
// reports detect-stage throughput per backend per point, plus the packed
// store's resident-page footprint (memory proportional to touched pages,
// not address range).
//
// The stream is one profiling pass: each word of the working set is
// written once and read once (a distance-1 RAW chain), generated on the
// fly in chunks so the 256M-word point does not materialize a half-billion
// event trace.  Cold-path costs (node allocation, page zeroing) are part
// of the measurement on purpose — a profiler sees every access exactly
// once.
//
// Usage: shadowpaged [--reps R] [--max-words N] [--smoke]
//   --smoke   two small working-set points with byte-identity against the
//             perfect-signature reference and a deterministic
//             resident-page proportionality check (exit 1 on violation);
//             used as a tier-1 ctest.

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/mem_stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "oracle/diff.hpp"
#include "sig/packed_shadow_store.hpp"
#include "trace/event.hpp"

using namespace depprof;

namespace {

/// First touched word unit — off page-boundary so the sweep also exercises
/// pages entered mid-way.
constexpr std::uint64_t kBaseWord = (std::uint64_t{1} << 20) + 12345;

struct SweepRun {
  double best_eps = 0;          ///< detect-stage events/sec, best of reps
  std::uint64_t resident_pages = 0;  ///< paged backends: leaf pages at finish
  std::int64_t store_bytes = 0;      ///< MemStats kStore while profiler alive
  DepMap deps;
};

/// Feeds the 2W-event pass (write w[i]; read w[i-1]) in generated chunks.
void feed(IProfiler& prof, std::uint64_t words) {
  constexpr std::size_t kChunk = 4096;
  std::vector<AccessEvent> buf(kChunk);
  std::size_t fill = 0;
  for (std::uint64_t i = 0; i < words; ++i) {
    AccessEvent& w = buf[fill++];
    w = AccessEvent{};
    w.addr = (kBaseWord + i) * 4;
    w.kind = AccessKind::kWrite;
    w.loc = 1;
    w.var = 1;
    AccessEvent& r = buf[fill++];
    r = AccessEvent{};
    r.addr = (kBaseWord + (i > 0 ? i - 1 : 0)) * 4;
    r.kind = AccessKind::kRead;
    r.loc = 2;
    r.var = 1;
    if (fill == kChunk) {
      prof.on_batch(buf.data(), fill);
      fill = 0;
    }
  }
  if (fill > 0) prof.on_batch(buf.data(), fill);
}

bool measure(StorageKind storage, std::uint64_t words, int reps,
             SweepRun& out) {
  for (int rep = 0; rep < reps; ++rep) {
    ProfilerConfig cfg;
    cfg.storage = storage;
    cfg.slots = std::size_t{1} << 18;  // signature-family sizing; exact
                                       // backends grow with content
    // For the chained hash table `slots` is the *bucket* count: size it to
    // the working set (load factor ~1, the stand-in for a growing map).  A
    // fixed 2^18-bucket table at 64M+ entries would measure O(chain) walks,
    // not the store — the packed claim is against a well-sized table.
    if (storage == StorageKind::kHashTable)
      cfg.slots = static_cast<std::size_t>(std::bit_ceil(words));
    auto prof = make_serial_profiler(cfg);
    if (prof == nullptr) return false;
    feed(*prof, words);
    prof->finish();
    out.store_bytes = MemStats::instance().bytes(MemComponent::kStore);
    const obs::PipelineSnapshot snap = prof->stats().stages;
    double detect_sec = 0;
    out.resident_pages = 0;
    for (const auto& s : snap.stages)
      if (s.stage.rfind("detect", 0) == 0) {
        detect_sec += s.busy_sec();
        out.resident_pages += s.resident_pages;
      }
    const double eps =
        detect_sec > 0 ? static_cast<double>(2 * words) / detect_sec : 0;
    if (eps > out.best_eps) out.best_eps = eps;
    if (rep == reps - 1) out.deps = prof->take_dependences();
  }
  return true;
}

std::string point_name(std::uint64_t words) {
  if (words % (std::uint64_t{1} << 20) == 0)
    return std::to_string(words >> 20) + "Mw";
  return std::to_string(words >> 10) + "Kw";
}

/// Leaf pages one PackedShadowStore touches covering [kBaseWord, +words).
std::uint64_t expected_pages(std::uint64_t words) {
  using Packed = PackedShadowStore<SeqSlot>;
  const std::uint64_t first = kBaseWord / Packed::kPageWords;
  const std::uint64_t last = (kBaseWord + words - 1) / Packed::kPageWords;
  return last - first + 1;
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 1;
  std::uint64_t max_words = std::uint64_t{1} << 28;  // 256M words = 1 GiB target
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (arg == "--max-words" && i + 1 < argc)
      max_words = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (arg == "--smoke")
      smoke = true;
  }

  std::vector<std::uint64_t> points;
  if (smoke) {
    points = {std::uint64_t{1} << 18, std::uint64_t{1} << 20};
  } else {
    for (std::uint64_t w = std::uint64_t{1} << 20; w <= max_words; w <<= 2)
      points.push_back(w);
  }

  const StorageKind backends[] = {StorageKind::kPacked,
                                  StorageKind::kHashTable,
                                  StorageKind::kShadow};

  TextTable table("Exact-store working-set sweep — detect-stage events/sec "
                  "(one write + one read per word)");
  table.set_header({"words", "packed ev/s", "hashtable ev/s", "shadow ev/s",
                    "packed/hashtable", "packed pages", "packed MiB"});
  obs::BenchReport report("shadowpaged");
  report.metric("reps", reps);
  report.metric("points", static_cast<double>(points.size()));

  bool ok = true;
  for (const std::uint64_t words : points) {
    const std::string pt = point_name(words);
    SweepRun runs[3];
    for (int b = 0; b < 3; ++b) {
      if (!measure(backends[b], words, reps, runs[b])) {
        std::fprintf(stderr, "FAIL: %s: profiler construction failed\n",
                     storage_kind_name(backends[b]));
        return 1;
      }
    }
    SweepRun& packed = runs[0];
    SweepRun& hashtable = runs[1];
    SweepRun& shadow = runs[2];

    // Identity: the three exact backends must agree with each other (and,
    // at smoke/small sizes, with the perfect-signature reference) — a
    // throughput ratio between diverging maps compares different work.
    const DepDiff ph = diff_deps(packed.deps, hashtable.deps);
    if (!ph.identical()) {
      std::fprintf(stderr, "FAIL: %s: packed diverges from hashtable:\n%s",
                   pt.c_str(), format_diff(ph, "packed", "hashtable").c_str());
      ok = false;
    }
    if (words <= (std::uint64_t{1} << 22)) {
      SweepRun perfect;
      if (!measure(StorageKind::kPerfect, words, 1, perfect)) return 1;
      const DepDiff pp = diff_deps(packed.deps, perfect.deps);
      if (!pp.identical()) {
        std::fprintf(stderr, "FAIL: %s: packed diverges from perfect:\n%s",
                     pt.c_str(), format_diff(pp, "packed", "perfect").c_str());
        ok = false;
      }
    }

    // Footprint: resident pages must equal the pages the address range
    // covers, for both stores of the pair — memory proportional to touched
    // pages, deterministic and noise-immune.
    const std::uint64_t want_pages = 2 * expected_pages(words);
    if (packed.resident_pages != want_pages) {
      std::fprintf(stderr,
                   "FAIL: %s: packed resident_pages=%llu, expected %llu\n",
                   pt.c_str(),
                   static_cast<unsigned long long>(packed.resident_pages),
                   static_cast<unsigned long long>(want_pages));
      ok = false;
    }

    const double ratio =
        hashtable.best_eps > 0 ? packed.best_eps / hashtable.best_eps : 0;
    const double packed_mib =
        static_cast<double>(packed.store_bytes) / 1048576.0;
    table.add_row({pt, TextTable::num(packed.best_eps),
                   TextTable::num(hashtable.best_eps),
                   TextTable::num(shadow.best_eps), TextTable::num(ratio),
                   std::to_string(packed.resident_pages),
                   TextTable::num(packed_mib)});
    report.metric("packed_eps_" + pt, packed.best_eps);
    report.metric("hashtable_eps_" + pt, hashtable.best_eps);
    report.metric("shadow_eps_" + pt, shadow.best_eps);
    report.metric("packed_over_hashtable_" + pt, ratio);
    report.metric("packed_resident_pages_" + pt,
                  static_cast<double>(packed.resident_pages));
    report.metric("packed_store_mib_" + pt, packed_mib);

    // The committed full-size run is where the >=1.3x win at 64M+ words is
    // asserted; smoke skips it (two cache-resident points on a noisy host).
    if (!smoke && words >= (std::uint64_t{1} << 26) && ratio < 1.3) {
      std::fprintf(stderr,
                   "FAIL: %s: packed only %.2fx hashtable (want >= 1.3x at "
                   "64M+ words)\n",
                   pt.c_str(), ratio);
      ok = false;
    }
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  report.write();
  return ok ? 0 : 1;
}
