// Load-balance ablation (Sec. IV-A):
//   * routing — how evenly plain modulo (formula 1) and the mixed hash
//     spread uniform vs strided vs Zipf-skewed address streams over workers;
//   * redistribution — the parallel pipeline on a hot-skewed stream with the
//     access-statistics balancer off vs on: per-worker event imbalance (CV),
//     redistribution rounds (paper: at most 20 per benchmark, evaluated
//     every 50 000 chunks), and migrated addresses.

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/hash.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "trace/generators.hpp"

using namespace depprof;

namespace {

void routing_spread() {
  TextTable table("Routing spread over 8 workers (CV of per-worker address load)");
  table.set_header({"stream", "modulo (formula 1)", "mixed hash"});

  struct Case {
    const char* name;
    Trace trace;
  };
  GenParams p;
  p.accesses = 200'000;
  p.distinct = 20'000;
  Case cases[] = {{"uniform", gen_uniform(p)},
                  {"strided x8", [] {
                     GenParams q;
                     q.accesses = 200'000;
                     q.distinct = 20'000;
                     q.stride = 64;  // multiple of W*8: worst case for modulo
                     return gen_strided(q);
                   }()},
                  {"zipf s=1.2", gen_zipf(p, 1.2)}};

  for (auto& c : cases) {
    std::uint64_t mod_load[8] = {}, mix_load[8] = {};
    for (const auto& ev : c.trace.events) {
      ++mod_load[modulo_worker(word_addr(ev.addr), 8)];
      ++mix_load[hashed_worker(word_addr(ev.addr), 8)];
    }
    StatAccumulator mod_acc, mix_acc;
    for (int i = 0; i < 8; ++i) {
      mod_acc.add(static_cast<double>(mod_load[i]));
      mix_acc.add(static_cast<double>(mix_load[i]));
    }
    table.add_row({c.name, TextTable::num(mod_acc.cv(), 3),
                   TextTable::num(mix_acc.cv(), 3)});
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
}

void redistribution(obs::BenchReport& report) {
  GenParams p;
  p.accesses = 3'000'000;
  p.distinct = 30'000;
  const Trace trace = gen_zipf(p, 1.4);  // heavy hot set

  TextTable table("\nHot-address redistribution on a Zipf stream (8 workers)");
  table.set_header({"balancer", "worker-event CV", "max/mean", "rounds",
                    "migrated", "sim busy max (ms)"});

  for (bool enabled : {false, true}) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = 1u << 17;
    cfg.workers = 8;
    cfg.chunk_size = 64;
    cfg.modulo_routing = false;
    cfg.load_balance.enabled = enabled;
    cfg.load_balance.eval_interval_chunks = 2'000;
    cfg.load_balance.top_k = 10;

    auto profiler = make_parallel_profiler(cfg);
    for (const auto& ev : trace.events) profiler->on_access(ev);
    profiler->finish();
    const ProfilerStats st = profiler->stats();

    StatAccumulator events;
    double busy_max = 0.0;
    for (std::size_t i = 0; i < st.worker_events.size(); ++i) {
      events.add(static_cast<double>(st.worker_events[i]));
      busy_max = std::max(busy_max, st.worker_busy_sec[i]);
    }
    table.add_row({enabled ? "on" : "off", TextTable::num(events.cv(), 3),
                   TextTable::num(events.max() / std::max(1.0, events.mean()), 2),
                   std::to_string(st.redistribution_rounds),
                   std::to_string(st.migrated_addresses),
                   TextTable::num(busy_max * 1e3, 2)});

    const char* key = enabled ? "balancer_on" : "balancer_off";
    report.metric(std::string(key) + "_worker_event_cv", events.cv());
    report.metric(std::string(key) + "_rounds", st.redistribution_rounds);
    report.metric(std::string(key) + "_migrated", st.migrated_addresses);
    report.stages(key, st.stages);
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nPaper reference: modulo distributes addresses evenly but not "
      "accesses; monitoring access statistics and redistributing the top "
      "ten hottest addresses (at most ~20 rounds per run) bounds the "
      "imbalance.\n");
}

}  // namespace

int main() {
  obs::BenchReport report("ablation_loadbalance");
  routing_spread();
  redistribution(report);
  report.write();
  return 0;
}
