// Formula 2 validation (Sec. VI-A):
//
//     P_fp = 1 - (1 - 1/m)^n
//
// predicts the probability that a given slot is occupied after inserting n
// distinct addresses into m slots — the quantity driving false hits.  This
// bench inserts n distinct addresses and compares the measured final slot
// occupancy against the model, plus the average collision rate *during* the
// insertion stream (necessarily below the final value: the i-th insert sees
// only i-1 occupants).

#include <cstdio>
#include <sstream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "harness/accuracy.hpp"
#include "obs/bench_report.hpp"
#include "sig/fpr_model.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/signature.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

using namespace depprof;

namespace {

struct Measured {
  double occupancy = 0.0;        ///< occupied slots / m after all inserts
  double stream_collision = 0.0; ///< fraction of inserts landing on an occupied slot
};

Measured measure(std::size_t slots, std::size_t n) {
  // Formula 2 assumes each slot is selected with equal probability; random
  // addresses satisfy that under either slot-index function.
  Signature<SeqSlot> sig(slots);
  Rng rng(2025);
  std::size_t collisions = 0;
  SeqSlot s;
  s.loc = SourceLocation(1, 10).packed();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t addr = rng();
    if (sig.find(addr) != nullptr) ++collisions;
    sig.insert(addr, s);
  }
  Measured m;
  m.occupancy = sig.load_factor();
  m.stream_collision = static_cast<double>(collisions) / static_cast<double>(n);
  return m;
}

}  // namespace

int main() {
  TextTable table("Formula 2 — predicted vs measured slot occupancy");
  table.set_header({"m (slots)", "n (addresses)", "n/m", "predicted P_fp",
                    "measured occupancy", "stream collision rate"});

  const std::size_t ms[] = {1u << 14, 1u << 17, 1u << 20};
  const double ratios[] = {0.01, 0.1, 0.5, 1.0, 2.0};
  for (std::size_t m : ms) {
    for (double r : ratios) {
      const auto n = static_cast<std::size_t>(static_cast<double>(m) * r);
      if (n == 0) continue;
      const double predicted = predicted_fpr(m, n);
      const Measured meas = measure(m, n);
      table.add_row({std::to_string(m), std::to_string(n), TextTable::num(r),
                     TextTable::num(predicted, 4),
                     TextTable::num(meas.occupancy, 4),
                     TextTable::num(meas.stream_collision, 4)});
    }
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());

  std::printf("\nSizing helper (slots_for_target_fpr): n=1e6 @ 1%% -> %zu slots\n",
              slots_for_target_fpr(1'000'000, 0.01));

  obs::BenchReport report("formula2_validation");
  {
    // Model error at the mid-load point for the machine-readable record.
    const std::size_t m = 1u << 17;
    const auto n = static_cast<std::size_t>(m * 0.5);
    const Measured meas = measure(m, n);
    report.metric("predicted_pfp_halfload", predicted_fpr(m, n));
    report.metric("measured_occupancy_halfload", meas.occupancy);

    // The formula's subject never touches the pipeline; replay a uniform
    // stream through the serial signature profiler for the breakdown.
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = m;
    auto prof = make_serial_profiler(cfg);
    GenParams p;
    p.accesses = 100'000;
    p.distinct = n;
    replay(gen_uniform(p), *prof);
    report.stages("serial_sig_replay", prof->stats().stages);
  }
  report.write();
  return 0;
}
