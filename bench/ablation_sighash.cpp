// Slot-index ablation: modulo indexing (paper-style, the default) vs a
// strong 64-bit mixing hash, measured as end-to-end dependence FPR/FNR on
// the Starbench analogues.
//
// Under modulo indexing, a collision partner is the deterministic address m
// slots away — usually an element of the same data structure touched at the
// same source lines, so the fabricated record coincides with a true one and
// the measured FPR collapses as m grows.  A mixing hash randomizes partners
// across structures: every representable false line-pair eventually gets
// realized and FPR saturates.  This is why bounded FPR at modest signature
// sizes (Table I) depends on the indexing choice, not only on occupancy.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/accuracy.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  int scale = 1;
  std::size_t slots = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale" && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::string(argv[i]) == "--slots" && i + 1 < argc)
      slots = static_cast<std::size_t>(std::atoll(argv[++i]));
  }

  TextTable table("Slot-index ablation — FPR/FNR at " + std::to_string(slots) +
                  " slots");
  table.set_header({"program", "FPR modulo", "FNR modulo", "FPR mix", "FNR mix"});
  StatAccumulator fpr_mod, fnr_mod, fpr_mix, fnr_mix;
  obs::BenchReport report("ablation_sighash");
  obs::PipelineSnapshot last_stages[2];  // modulo / mix

  for (const Workload* w : workloads_in_suite("starbench")) {
    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;

    ProfilerConfig perfect;
    perfect.storage = StorageKind::kPerfect;
    const RunMeasurement base = profile_workload(*w, perfect, opts);

    AccuracyResult acc[2];
    const SigHash hashes[2] = {SigHash::kModulo, SigHash::kMix};
    for (int h = 0; h < 2; ++h) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = slots;
      cfg.sig_hash = hashes[h];
      const RunMeasurement m = profile_workload(*w, cfg, opts);
      acc[h] = compare_deps(base.deps, m.deps);
      last_stages[h] = m.stats.stages;
    }
    fpr_mod.add(acc[0].fpr_percent());
    fnr_mod.add(acc[0].fnr_percent());
    fpr_mix.add(acc[1].fpr_percent());
    fnr_mix.add(acc[1].fnr_percent());
    table.add_row({w->name, TextTable::num(acc[0].fpr_percent()),
                   TextTable::num(acc[0].fnr_percent()),
                   TextTable::num(acc[1].fpr_percent()),
                   TextTable::num(acc[1].fnr_percent())});
  }
  table.add_row({"average", TextTable::num(fpr_mod.mean()),
                 TextTable::num(fnr_mod.mean()), TextTable::num(fpr_mix.mean()),
                 TextTable::num(fnr_mix.mean())});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());

  report.metric("avg_fpr_modulo", fpr_mod.mean());
  report.metric("avg_fnr_modulo", fnr_mod.mean());
  report.metric("avg_fpr_mix", fpr_mix.mean());
  report.metric("avg_fnr_mix", fnr_mix.mean());
  if (!last_stages[0].empty()) report.stages("modulo", last_stages[0]);
  if (!last_stages[1].empty()) report.stages("mix", last_stages[1]);
  report.write();
  return 0;
}
