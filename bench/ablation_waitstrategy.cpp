// Wait-strategy ablation (ISSUE 2 tentpole):
//   How should pipeline threads wait at the three blocking sites (idle
//   workers, producers facing a full queue, the migration mailbox)?
//
// The paper's pipeline busy-waits (spin) — free when every thread owns a
// core, ruinous when the host is oversubscribed: spinning workers burn the
// CPU the producer needs.  This harness replays one fixed trace through the
// parallel pipeline, sweeping wait strategy x worker count, and reports
//   * wall time and events/s (throughput),
//   * worker idle CPU seconds (cycles burned while waiting — the cost spin
//     pays and park avoids),
//   * parked seconds, producer block seconds, and wake counts (the
//     backpressure counters of obs::StageStats).
//
// Expected shape: with few workers (cores free) all strategies are within
// ~10% throughput; oversubscribed, park slashes idle CPU burn relative to
// spin.  BENCH_ablation_waitstrategy.json carries the metrics and per-stage
// breakdowns.

#include <cstdio>
#include <string>
#include <thread>

#include "common/timer.hpp"
#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "queue/wait_strategy.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

using namespace depprof;

namespace {

struct RunResult {
  double wall_sec = 0.0;
  double events_per_sec = 0.0;
  double idle_cpu_sec = 0.0;   ///< summed over detect stages
  double parked_sec = 0.0;     ///< summed over all stages
  double block_sec = 0.0;      ///< producer wait on full queues + mailbox
  std::uint64_t wakes = 0;
  obs::PipelineSnapshot stages;
};

RunResult run_once(const Trace& t, WaitKind wait, unsigned workers) {
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kSignature;
  cfg.slots = 1u << 17;
  cfg.workers = workers;
  cfg.chunk_size = 64;   // small chunks keep the queues busy
  cfg.queue_capacity = 8;
  cfg.wait = wait;
  auto prof = make_parallel_profiler(cfg);

  WallTimer timer;
  replay(t, *prof);
  RunResult r;
  r.wall_sec = timer.elapsed();
  r.events_per_sec =
      r.wall_sec > 0 ? static_cast<double>(t.events.size()) / r.wall_sec : 0.0;

  r.stages = prof->stats().stages;
  for (const auto& s : r.stages.stages) {
    if (s.stage.rfind("detect", 0) == 0) r.idle_cpu_sec += s.idle_cpu_sec();
    r.parked_sec += s.parked_sec();
    r.block_sec += s.block_sec();
    r.wakes += s.wakes;
  }
  return r;
}

}  // namespace

int main() {
  GenParams p;
  p.accesses = 500'000;
  p.distinct = 10'000;
  const Trace t = gen_zipf(p, 1.2);

  const unsigned hw = std::thread::hardware_concurrency();
  // `few` leaves cores free next to the producer; `many` oversubscribes the
  // host so the waiting strategy decides who gets the cores.  Floor of 16
  // keeps the contrast on small (incl. single-core) hosts.
  const unsigned few = 2;
  const unsigned many = hw > 8 ? 2 * hw : 16;

  obs::BenchReport report("ablation_waitstrategy");
  report.metric("hardware_concurrency", static_cast<double>(hw));

  std::printf("Wait-strategy ablation: %zu events, workers in {%u, %u}\n\n",
              t.events.size(), few, many);
  std::printf("  %-8s %-8s %-10s %-12s %-11s %-10s %-10s %s\n", "workers",
              "wait", "wall_s", "events/s", "idlecpu_s", "parked_s", "block_s",
              "wakes");

  double spin_eps[2] = {}, park_eps[2] = {};
  double spin_idle[2] = {}, park_idle[2] = {};
  int idx = 0;
  for (unsigned workers : {few, many}) {
    for (WaitKind wait : {WaitKind::kSpin, WaitKind::kYield, WaitKind::kPark}) {
      const RunResult r = run_once(t, wait, workers);
      std::printf("  %-8u %-8s %-10.3f %-12.3e %-11.3f %-10.3f %-10.3f %llu\n",
                  workers, wait_kind_name(wait), r.wall_sec, r.events_per_sec,
                  r.idle_cpu_sec, r.parked_sec, r.block_sec,
                  static_cast<unsigned long long>(r.wakes));
      const std::string tag =
          std::string(wait_kind_name(wait)) + "_w" + std::to_string(workers);
      report.metric(tag + "_wall_sec", r.wall_sec);
      report.metric(tag + "_events_per_sec", r.events_per_sec);
      report.metric(tag + "_idle_cpu_sec", r.idle_cpu_sec);
      report.metric(tag + "_parked_sec", r.parked_sec);
      report.metric(tag + "_block_sec", r.block_sec);
      report.metric(tag + "_wakes", static_cast<double>(r.wakes));
      report.stages(tag, r.stages);
      if (wait == WaitKind::kSpin) {
        spin_eps[idx] = r.events_per_sec;
        spin_idle[idx] = r.idle_cpu_sec;
      } else if (wait == WaitKind::kPark) {
        park_eps[idx] = r.events_per_sec;
        park_idle[idx] = r.idle_cpu_sec;
      }
    }
    ++idx;
  }

  // Headline ratios: throughput parity when cores are free, idle-CPU
  // savings when oversubscribed.
  const double parity =
      spin_eps[0] > 0 ? park_eps[0] / spin_eps[0] : 0.0;
  const double idle_cut =
      spin_idle[1] > 0 ? park_idle[1] / spin_idle[1] : 0.0;
  report.metric("park_over_spin_throughput_free_cores", parity);
  report.metric("park_over_spin_idle_cpu_oversubscribed", idle_cut);
  std::printf(
      "\npark/spin throughput with free cores (%u workers): %.2fx\n"
      "park/spin idle CPU burn oversubscribed (%u workers): %.2fx\n",
      few, parity, many, idle_cut);

  report.write();
  return 0;
}
