// Fig. 9: communication pattern of the water-spatial analogue.
//
// Profiles the pthread water-spatial kernel with the MT pipeline and renders
// the producer/consumer matrix built from cross-thread RAW dependences.
// The expected shape is the paper's banded pattern: strong neighbour
// (t -> t±1) communication from halo exchange, plus weak scattered traffic
// from the global reduction.
//
// Usage: fig9_comm_matrix [--threads N] [--scale N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/comm_matrix.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  unsigned threads = 8;
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
  }

  const Workload* w = find_workload("water-spatial");
  if (w == nullptr || !w->run_parallel) {
    std::fprintf(stderr, "water-spatial workload unavailable\n");
    return 1;
  }

  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;  // exact deps for the pattern figure
  cfg.mt_targets = true;
  cfg.workers = 4;
  cfg.queue = QueueKind::kLockFreeMpmc;

  RunOptions opts;
  opts.scale = scale;
  opts.target_threads = threads;
  opts.parallel_pipeline = true;
  opts.native_reps = 1;

  RunMeasurement m = profile_workload(*w, cfg, opts);
  // Target thread ids: 0 is the coordinating main thread, workers 1..T.
  // As in the paper's figure, the matrix shows the worker threads only;
  // the main thread contributes one-shot initialization traffic.
  const CommMatrix full = build_comm_matrix(m.deps, threads + 1);
  CommMatrix matrix;
  matrix.counts.assign(threads, std::vector<std::uint64_t>(threads, 0));
  for (unsigned p = 0; p < threads; ++p)
    for (unsigned c = 0; c < threads; ++c)
      matrix.counts[p][c] = full.counts[p + 1][c + 1];

  std::printf("Fig. 9 — communication pattern of water-spatial (%u target threads)\n\n",
              threads);
  std::fputs(format_comm_matrix(matrix).c_str(), stdout);
  std::printf("\ntotal cross-thread RAW instances: %llu\n",
              static_cast<unsigned long long>(matrix.total()));

  std::printf("\nCSV (producer,consumer,count):\n");
  for (unsigned p = 0; p < matrix.threads(); ++p)
    for (unsigned c = 0; c < matrix.threads(); ++c)
      if (matrix.counts[p][c])
        std::printf("%u,%u,%llu\n", p, c,
                    static_cast<unsigned long long>(matrix.counts[p][c]));

  std::printf(
      "\nPaper reference: banded neighbour pattern (halo exchange) as in "
      "Fig. 9; expect strong (t, t+-1 mod T) cells.\n");

  obs::BenchReport report("fig9_comm_matrix");
  report.metric("target_threads", threads);
  report.metric("cross_thread_raw_instances",
                static_cast<double>(matrix.total()));
  report.stages("mt_pipeline", m.stats.stages);
  report.write();
  return 0;
}
