// Fig. 8: memory consumption of the profiler on *parallel* Starbench
// analogues (pthread version, 4 target threads): naive (perfect signature)
// vs 8 and 16 profiling threads.
//
// MT profiling costs more than sequential profiling because of the wider
// MtSlot layout (thread id + timestamp per slot, Sec. V), the MPMC queues,
// and the extended dependence representation — the same reasons the paper
// gives (995 MiB / 1920 MiB vs 505/1390 sequential).
//
// Usage: fig8_memory_par [--scale N] [--slots-per-worker N] [--target-threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/mem_stats.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

double mib(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  int scale = 1;
  std::size_t slots_per_worker = 125'000;
  unsigned target_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--slots-per-worker") == 0 && i + 1 < argc)
      slots_per_worker = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--target-threads") == 0 && i + 1 < argc)
      target_threads = static_cast<unsigned>(std::atoi(argv[++i]));
  }

  TextTable table("Fig. 8 — profiler memory on parallel Starbench targets (MiB)");
  table.set_header({"program", "naive", "8T", "16T"});
  StatAccumulator avg_naive, avg8, avg16;
  obs::BenchReport report("fig8_memory_par");
  obs::PipelineSnapshot last_stages[2];

  for (const Workload* w : workloads_in_suite("starbench")) {
    if (!w->run_parallel) continue;

    RunOptions opts;
    opts.scale = scale;
    opts.target_threads = target_threads;
    opts.native_reps = 1;

    // Naive baseline: exact per-address table behind the MT pipeline (the
    // serial profiler is single-producer only).
    ProfilerConfig naive;
    naive.storage = StorageKind::kPerfect;
    naive.mt_targets = true;
    naive.workers = 1;
    naive.queue = QueueKind::kLockFreeMpmc;
    RunOptions nopts = opts;
    nopts.parallel_pipeline = true;
    const RunMeasurement mn = profile_workload(*w, naive, nopts);
    const double naive_mib = mib(mn.peak_component_bytes);

    double peak[2] = {};
    const unsigned workers[2] = {8, 16};
    for (int c = 0; c < 2; ++c) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = slots_per_worker;
      cfg.mt_targets = true;
      cfg.workers = workers[c];
      cfg.queue = QueueKind::kLockFreeMpmc;
      RunOptions popts = opts;
      popts.parallel_pipeline = true;
      const RunMeasurement m = profile_workload(*w, cfg, popts);
      peak[c] = mib(m.peak_component_bytes);
      last_stages[c] = m.stats.stages;
    }

    avg_naive.add(naive_mib);
    avg8.add(peak[0]);
    avg16.add(peak[1]);
    table.add_row({w->name, TextTable::num(naive_mib), TextTable::num(peak[0]),
                   TextTable::num(peak[1])});
  }
  table.add_row({"average", TextTable::num(avg_naive.mean()),
                 TextTable::num(avg8.mean()), TextTable::num(avg16.mean())});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf("\nprocess max RSS: %.2f MiB\n", mib(MemStats::process_max_rss()));
  std::printf(
      "\nPaper reference (Fig. 8): 995 MiB (8T) and 1920 MiB (16T) on "
      "average — higher than the sequential Fig. 7 because of MT slots, "
      "MPMC queues, and thread-extended dependence records.\n");

  report.metric("avg_naive_mib", avg_naive.mean());
  report.metric("avg_8T_mib", avg8.mean());
  report.metric("avg_16T_mib", avg16.mean());
  if (!last_stages[0].empty()) report.stages("8T_mpmc", last_stages[0]);
  if (!last_stages[1].empty()) report.stages("16T_mpmc", last_stages[1]);
  report.write();
  return 0;
}
