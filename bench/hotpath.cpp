// hotpath — batched prefetching detect kernel vs the per-event kernel,
// measured as raw detect throughput (events/sec) per storage backend.
//
// The primary stream simulates what a profiler actually sees (Sec. VI's
// merge-factor observation: ~1e5 dynamic instances per static dependence):
// a program running loop phase after loop phase, each phase a small fixed
// set of source lines re-executed thousands of times.  The accumulated
// dependence map grows large (tens of thousands of keys, cache-cold), while
// the *instantaneous* key set of any batch stays tiny — the regime where
// the batched kernel's per-batch record aggregation replaces one cold map
// probe per record with an L1 table hit.  A uniform-random stream with
// per-event random locations is reported as a disclosed adversarial
// secondary: it has no key repetition for aggregation to collapse, so the
// batched kernel only breaks even there.
//
// The two kernels must be observationally identical — every run is
// cross-checked with oracle::diff_deps before a ratio is reported.
//
// Usage: hotpath [--events N] [--reps R] [--slots N] [--working-set N]
//                [--hist-words N] [--smoke]
//   --smoke   small stream + assertion that the batched kernel is no slower
//             than the per-event kernel beyond a generous noise margin on
//             every backend (exit 1 otherwise); used as a tier-1 ctest.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/profiler.hpp"
#include "trace/nest.hpp"
#include "obs/bench_report.hpp"
#include "oracle/diff.hpp"
#include "trace/event.hpp"

using namespace depprof;

namespace {

/// Iterations per simulated loop phase — each phase gets a fresh loop id,
/// dynamic entry, and source-line block for its dense accesses, so the
/// global dependence map accumulates keys phase after phase while the
/// *instantaneous* key set stays a dozen entries.
constexpr std::size_t kPhaseIters = 100;
/// Ring size of the reduction-style array `c` — sets the carried iteration
/// distance of its RAW/WAW dependences.
constexpr std::size_t kRing = 64;
/// Default histogram table size in words.  Sized so the table's signature
/// slots (~44 bytes per slot per signature, ~45 MiB for the read/write
/// pair) overflow the last-level cache — the sparse bucket probes are
/// genuine memory-latency stalls for the per-event kernel, while staying
/// within reach of the prefetched-stream bandwidth of one core.
constexpr std::size_t kHistWords = std::size_t{1} << 19;
/// Body accesses per simulated loop iteration.
constexpr std::size_t kBodyLines = 8;

/// Loop-phase stream modelled on the two access patterns of real hot loops:
/// dense streaming over per-phase arrays, and sparse indirect updates into
/// one long-lived table (histogram / hash-join style, `h[idx[i]] += ...`).
/// Iteration j of phase p executes (r1/r2 pseudo-random buckets):
///
///   line 1: read  a[j-1]   -> RAW  carried, distance 1
///   line 2: write a[j]     -> INIT
///   line 3: read  a[j]     -> RAW  intra-iteration
///   line 4: read  h[r1]    -> RAW  vs an earlier random iteration
///   line 5: write h[r1]    -> WAW + WAR vs line 4 (or INIT, cold bucket)
///   line 6: read  h[r2]    -> RAW
///   line 7: write h[r2]    -> WAW + WAR (or INIT)
///   line 8: write c[j%R]   -> WAW  carried, distance kRing
///
/// ~9 dependence records per iteration.  The dense lines (1-3, 8) use
/// phase-local locations (the map grows); the histogram lines use fixed
/// locations (their keys repeat for the whole run).  The histogram's
/// signature slots are cold — the regime the batched kernel's prefetches
/// target — while its dependence keys are hot — the regime its record
/// aggregation targets.
std::vector<AccessEvent> make_loop_stream(std::size_t events,
                                          std::size_t hist_words) {
  std::vector<AccessEvent> out;
  out.reserve(events);
  // Array bases in word units, spread so a/h/c do not collide in a
  // power-of-two signature.
  constexpr std::uint64_t kABase = 1'000'003;
  constexpr std::uint64_t kHBase = 150'000'017;
  constexpr std::uint64_t kCBase = 99'000'041;
  std::size_t phase = 0, j = 0, iter = 0;
  // One top-level dynamic entry per phase, interned on first use.
  std::vector<std::uint32_t> phase_ctx;
  auto push = [&](std::uint64_t unit, AccessKind kind, std::uint32_t loc,
                  std::uint32_t var) {
    AccessEvent ev;
    ev.addr = unit * 4;
    ev.kind = kind;
    ev.loc = loc;
    ev.var = var;
    while (phase_ctx.size() <= phase)
      phase_ctx.push_back(nest_forest().enter(
          NestForest::kRoot, static_cast<std::uint32_t>(phase_ctx.size()) + 1));
    ev.ctx = phase_ctx[phase];
    ev.iters[0] = static_cast<std::uint32_t>(j) + 1;
    out.push_back(ev);
  };
  while (out.size() + kBodyLines <= events) {
    const std::uint32_t block = static_cast<std::uint32_t>(phase) * 4 + 100;
    const std::uint64_t a = kABase + iter;
    const std::uint64_t h1 = kHBase + mix64(2 * iter) % hist_words;
    const std::uint64_t h2 = kHBase + mix64(2 * iter + 1) % hist_words;
    const std::uint64_t c = kCBase + (j % kRing);
    push(a - (iter > 0 ? 1 : 0), AccessKind::kRead, block + 0, 1);
    push(a, AccessKind::kWrite, block + 1, 1);
    push(a, AccessKind::kRead, block + 2, 1);
    push(h1, AccessKind::kRead, 4, 2);
    push(h1, AccessKind::kWrite, 5, 2);
    push(h2, AccessKind::kRead, 6, 2);
    push(h2, AccessKind::kWrite, 7, 2);
    push(c, AccessKind::kWrite, block + 3, 3);
    ++iter;
    if (++j == kPhaseIters) {
      j = 0;
      ++phase;
    }
  }
  while (out.size() < events) out.push_back(out.back());
  return out;
}

/// Adversarial stream: word-granular addresses spread over `working_set`
/// units by a mixing hash (cache-hostile order) and a *random* location per
/// event, so dependence keys almost never repeat within a batch and the
/// batched kernel's record aggregation has nothing to collapse.
std::vector<AccessEvent> make_uniform_stream(std::size_t events,
                                             std::size_t working_set) {
  std::vector<AccessEvent> out(events);
  for (std::size_t i = 0; i < events; ++i) {
    const std::uint64_t r = mix64(0x9e3779b97f4a7c15ull + i);
    AccessEvent& ev = out[i];
    ev.addr = 0x10000000ull + (r % working_set) * 4;
    ev.kind = (r >> 32) % 2 == 0 ? AccessKind::kWrite : AccessKind::kRead;
    ev.loc = static_cast<std::uint32_t>(1 + ((r >> 40) % 61));
    ev.var = 1;
  }
  return out;
}

struct KernelRun {
  double best_eps = 0;      ///< detect-stage throughput (the kernel itself)
  double best_e2e_eps = 0;  ///< whole-replay throughput (context metric)
  DepMap deps;
  obs::PipelineSnapshot stages;
};

/// One timed profiler run.  The primary metric is *detect-stage* throughput
/// — events over the stage's own busy time, which is exactly the code the
/// two kernels swap.  Whole-replay throughput is kept as a context metric:
/// it includes the driver's canonicalization copy and the merge, identical
/// work on both sides that only dilutes the comparison (and, on a noisy
/// single-core host, drowns it).  Best-of-reps for both.
void one_rep(const ProfilerConfig& cfg, const std::vector<AccessEvent>& stream,
             bool last, KernelRun& result) {
  constexpr std::size_t kFeed = 4096;
  auto profiler = make_serial_profiler(cfg);
  WallTimer t;
  for (std::size_t i = 0; i < stream.size(); i += kFeed)
    profiler->on_batch(stream.data() + i, std::min(kFeed, stream.size() - i));
  profiler->finish();
  const double e2e_eps = static_cast<double>(stream.size()) / t.elapsed();
  obs::PipelineSnapshot snap = profiler->stats().stages;
  double detect_sec = 0;
  for (const auto& s : snap.stages)
    if (s.stage.rfind("detect", 0) == 0) detect_sec += s.busy_sec();
  const double eps = detect_sec > 0
                         ? static_cast<double>(stream.size()) / detect_sec
                         : e2e_eps;
  if (eps > result.best_eps) result.best_eps = eps;
  if (e2e_eps > result.best_e2e_eps) result.best_e2e_eps = e2e_eps;
  if (last) {
    result.stages = std::move(snap);
    result.deps = profiler->take_dependences();
  }
}

/// Interleaved A/B measurement of both kernels on one backend+stream, with
/// the byte-identity cross-check.  Returns false (and prints) on divergence.
bool measure(ProfilerConfig cfg, const std::vector<AccessEvent>& stream,
             int reps, KernelRun& per_event, KernelRun& batched) {
  // Interleave the kernels rep by rep so drift on a noisy host (thermal,
  // neighbours) hits both sides equally; best-of-reps per kernel.
  for (int rep = 0; rep < reps; ++rep) {
    cfg.batched_detect = false;
    one_rep(cfg, stream, rep == reps - 1, per_event);
    cfg.batched_detect = true;
    one_rep(cfg, stream, rep == reps - 1, batched);
  }
  // The kernels differ only in prefetching, batching, and record
  // aggregation — the maps must be identical or the "ratio" compares
  // different work.
  const DepDiff diff = diff_deps(per_event.deps, batched.deps);
  if (!diff.identical()) {
    std::fprintf(stderr, "FAIL: %s: batched kernel diverges:\n%s",
                 storage_kind_name(cfg.storage),
                 format_diff(diff, "per-event", "batched").c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t events = 4'000'000;
  // Uniform-stream sizing: 16M distinct words against 8M slots of 44-byte
  // SeqSlots (~350 MiB per signature) busts even a large server LLC, so its
  // slot probes are genuine memory-latency stalls.
  std::size_t working_set = std::size_t{1} << 24;  // words
  std::size_t slots = std::size_t{1} << 23;
  std::size_t hist_words = kHistWords;
  int reps = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--events" && i + 1 < argc)
      events = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--working-set" && i + 1 < argc)
      working_set = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--slots" && i + 1 < argc)
      slots = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--hist-words" && i + 1 < argc)
      hist_words = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--reps" && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (arg == "--smoke")
      smoke = true;
  }
  if (smoke) {
    events = 240'000;
    working_set = std::size_t{1} << 19;
    slots = std::size_t{1} << 18;
    hist_words = std::size_t{1} << 16;
    reps = 2;
  }

  const std::vector<AccessEvent> loop_stream =
      make_loop_stream(events, hist_words);
  const std::vector<AccessEvent> uniform_stream =
      make_uniform_stream(events / 2, working_set);

  const StorageKind kinds[] = {StorageKind::kSignature, StorageKind::kPerfect,
                               StorageKind::kShadow, StorageKind::kHashTable,
                               StorageKind::kPacked};

  TextTable table("Detect hot path — batched kernel vs per-event, "
                  "detect-stage events/sec (" +
                  std::to_string(events) + " loop-phase events)");
  table.set_header({"backend", "per-event ev/s", "batched ev/s", "ratio"});
  obs::BenchReport report("hotpath");
  report.metric("events", static_cast<double>(events));
  report.metric("phase_iters", static_cast<double>(kPhaseIters));
  report.metric("hist_words", static_cast<double>(hist_words));
  report.metric("working_set_words", static_cast<double>(working_set));

  bool ok = true;
  for (StorageKind kind : kinds) {
    ProfilerConfig cfg;
    cfg.storage = kind;
    cfg.slots = slots;

    KernelRun per_event, batched;
    if (!measure(cfg, loop_stream, reps, per_event, batched)) {
      ok = false;
      continue;
    }

    const double ratio = batched.best_eps / per_event.best_eps;
    const std::string name = storage_kind_name(kind);
    table.add_row({name, TextTable::num(per_event.best_eps),
                   TextTable::num(batched.best_eps), TextTable::num(ratio)});
    report.metric(name + "_perevent_eps", per_event.best_eps);
    report.metric(name + "_batched_eps", batched.best_eps);
    report.metric(name + "_ratio", ratio);
    report.metric(name + "_perevent_e2e_eps", per_event.best_e2e_eps);
    report.metric(name + "_batched_e2e_eps", batched.best_e2e_eps);
    report.metric(name + "_e2e_ratio",
                  batched.best_e2e_eps / per_event.best_e2e_eps);
    report.stages(name + "/perevent", per_event.stages);
    report.stages(name + "/batched", batched.stages);

    // Smoke gate: batched must not regress beyond noise.  The margin is
    // generous because CI hosts are single-core and noisy; the committed
    // full-size run is where the >=1.3x signature-backend win is asserted.
    if (smoke && ratio < 0.7) {
      std::fprintf(stderr, "FAIL: %s: batched kernel %.2fx per-event "
                   "(below the 0.7 noise floor)\n", name.c_str(), ratio);
      ok = false;
    }
  }

  // Adversarial secondary (signature backend only): random locations defeat
  // record aggregation, so this reports the batched kernel's bounded
  // worst-case overhead rather than a win.
  {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = slots;
    KernelRun per_event, batched;
    if (!measure(cfg, uniform_stream, reps, per_event, batched)) {
      ok = false;
    } else {
      const double ratio = batched.best_eps / per_event.best_eps;
      table.add_row({"signature (uniform)", TextTable::num(per_event.best_eps),
                     TextTable::num(batched.best_eps), TextTable::num(ratio)});
      report.metric("signature_uniform_perevent_eps", per_event.best_eps);
      report.metric("signature_uniform_batched_eps", batched.best_eps);
      report.metric("signature_uniform_ratio", ratio);
      report.metric("signature_uniform_e2e_ratio",
                    batched.best_e2e_eps / per_event.best_e2e_eps);
      if (smoke && ratio < 0.7) {
        std::fprintf(stderr, "FAIL: signature (uniform): batched kernel "
                     "%.2fx per-event (below the 0.7 noise floor)\n", ratio);
        ok = false;
      }
    }
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  report.write();
  return ok ? 0 : 1;
}
