// Queue ablation (Sec. IV / Fig. 5 inset):
//   * micro — per-operation cost of the lock-free SPSC ring, the lock-free
//     MPMC queue, and the mutex queue, single-threaded and with a
//     producer/consumer thread pair;
//   * end-to-end — one representative workload through the parallel
//     pipeline with each queue kind, reporting simulated slowdown.
//
// Paper comparison point: the lock-free design is 1.6x (NAS) / 1.3x
// (Starbench) faster than the lock-based one.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "queue/queues.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

void pour_and_drain(benchmark::State& state, QueueKind kind) {
  auto q = make_queue<std::uint64_t>(kind, 1024);
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < 1024; ++i) benchmark::DoNotOptimize(q->try_push(i));
    std::uint64_t v;
    while (q->try_pop(v)) benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}

void BM_SpscPourDrain(benchmark::State& state) {
  pour_and_drain(state, QueueKind::kLockFreeSpsc);
}
BENCHMARK(BM_SpscPourDrain);

void BM_MpmcPourDrain(benchmark::State& state) {
  pour_and_drain(state, QueueKind::kLockFreeMpmc);
}
BENCHMARK(BM_MpmcPourDrain);

void BM_MutexPourDrain(benchmark::State& state) {
  pour_and_drain(state, QueueKind::kMutex);
}
BENCHMARK(BM_MutexPourDrain);

void threaded_transfer(benchmark::State& state, QueueKind kind) {
  constexpr std::uint64_t kItems = 50'000;
  for (auto _ : state) {
    auto q = make_queue<std::uint64_t>(kind, 256);
    std::thread consumer([&] {
      std::uint64_t got = 0, v = 0;
      while (got < kItems) {
        if (q->try_pop(v))
          ++got;
        else
          std::this_thread::yield();
      }
      benchmark::DoNotOptimize(v);
    });
    for (std::uint64_t i = 0; i < kItems; ++i)
      while (!q->try_push(i)) std::this_thread::yield();
    consumer.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
}

void BM_SpscThreaded(benchmark::State& state) {
  threaded_transfer(state, QueueKind::kLockFreeSpsc);
}
BENCHMARK(BM_SpscThreaded)->Unit(benchmark::kMillisecond);

void BM_MpmcThreaded(benchmark::State& state) {
  threaded_transfer(state, QueueKind::kLockFreeMpmc);
}
BENCHMARK(BM_MpmcThreaded)->Unit(benchmark::kMillisecond);

void BM_MutexThreaded(benchmark::State& state) {
  threaded_transfer(state, QueueKind::kMutex);
}
BENCHMARK(BM_MutexThreaded)->Unit(benchmark::kMillisecond);

/// End-to-end: the Fig. 5 lock-based vs lock-free comparison on one NAS
/// analogue, sweeping the chunk size.  Queue costs are per *chunk*, so the
/// lock-based penalty is largest at chunk=1 (one queue operation per
/// access, the regime where the paper's 1.3-1.6x gap lives) and is
/// amortized away by larger chunks.
void end_to_end(obs::BenchReport& report) {
  const Workload* w = find_workload("cg");
  if (w == nullptr) return;
  std::printf("\nEnd-to-end pipeline on '%s' (8 workers), sim slowdown:\n",
              w->name.c_str());
  std::printf("  %-10s %-12s %-15s %s\n", "chunk", "mutex", "lock-free-spsc",
              "mutex/lock-free");
  for (std::size_t chunk : {std::size_t{1}, std::size_t{16}, std::size_t{512}}) {
    double sim[2] = {};
    int idx = 0;
    for (QueueKind kind : {QueueKind::kMutex, QueueKind::kLockFreeSpsc}) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = 1u << 17;
      cfg.workers = 8;
      cfg.queue = kind;
      cfg.chunk_size = chunk;
      RunOptions opts;
      opts.parallel_pipeline = true;
      opts.native_reps = 2;
      const RunMeasurement m = profile_workload(*w, cfg, opts);
      sim[idx] = m.simulated_slowdown();
      const char* qname = idx == 0 ? "mutex" : "spsc";
      report.stages(std::string(qname) + "_chunk" + std::to_string(chunk),
                    m.stats.stages);
      ++idx;
    }
    report.metric("mutex_over_lockfree_chunk" + std::to_string(chunk),
                  sim[1] > 0 ? sim[0] / sim[1] : 0.0);
    std::printf("  %-10zu %-12.1f %-15.1f %.2fx\n", chunk, sim[0], sim[1],
                sim[1] > 0 ? sim[0] / sim[1] : 0.0);
  }
  std::printf(
      "\nPaper reference: lock-free queues gave 1.6x (NAS) / 1.3x "
      "(Starbench) over the lock-based design.\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  obs::BenchReport report("ablation_queue");
  end_to_end(report);
  report.write();
  return 0;
}
