// Fig. 5: slowdown of the profiler on sequential NAS and Starbench
// analogues: serial profiler, lock-based parallel (8 workers), lock-free
// parallel (8 workers), lock-free parallel (16 workers), plus per-suite
// averages.
//
// Single-core host note: real wall-clock cannot show parallel speedup here,
// so each parallel configuration reports BOTH the measured wall slowdown
// ("wall") and the simulated multi-core slowdown ("sim") reconstructed from
// per-thread CPU times (see DESIGN.md).  The paper's comparison points are
// serial 190x, 8T lock-based > 8T lock-free ~97-101x, 16T lock-free
// ~78-93x.
//
// Usage: fig5_slowdown_seq [--scale N] [--suite nas|starbench|all]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

struct ConfigPoint {
  const char* label;
  bool parallel;
  unsigned workers;
  QueueKind queue;
};

}  // namespace

int main(int argc, char** argv) {
  int scale = 1;
  std::string suite = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc)
      suite = argv[++i];
  }

  const ConfigPoint points[] = {
      {"serial", false, 0, QueueKind::kLockFreeSpsc},
      {"8T_lock-based", true, 8, QueueKind::kMutex},
      {"8T_lock-free", true, 8, QueueKind::kLockFreeSpsc},
      {"16T_lock-free", true, 16, QueueKind::kLockFreeSpsc},
  };

  TextTable table("Fig. 5 — profiler slowdown on sequential targets (x native)");
  table.set_header({"program", "suite", "native_ms", "serial", "8T_lock-based(sim)",
                    "8T_lock-free(sim)", "16T_lock-free(sim)",
                    "8T_lock-based(wall)", "8T_lock-free(wall)",
                    "16T_lock-free(wall)"});

  StatAccumulator suite_avg[2][4];  // [nas|starbench][config]
  obs::BenchReport report("fig5_slowdown_seq");
  obs::PipelineSnapshot last_stages[4];  // last profiled workload, per config

  for (const Workload& wl : all_workloads()) {
    const Workload* w = &wl;
    if (w->suite != "nas" && w->suite != "starbench") continue;
    if (suite != "all" && w->suite != suite) continue;

    double sim[4] = {}, wall[4] = {}, native_ms = 0.0;
    for (int c = 0; c < 4; ++c) {
      const ConfigPoint& p = points[c];
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = p.parallel ? (1u << 17) : (1u << 20);
      cfg.workers = p.workers;
      cfg.queue = p.queue;

      RunOptions opts;
      opts.scale = scale;
      opts.parallel_pipeline = p.parallel;
      opts.native_reps = 3;

      const RunMeasurement m = profile_workload(*w, cfg, opts);
      native_ms = m.native_sec * 1e3;
      wall[c] = m.slowdown();
      sim[c] = p.parallel ? m.simulated_slowdown() : m.slowdown();
      const int s = w->suite == "nas" ? 0 : 1;
      suite_avg[s][c].add(sim[c]);
      last_stages[c] = m.stats.stages;
    }

    table.add_row({w->name, w->suite, TextTable::num(native_ms, 3),
                   TextTable::num(sim[0], 1), TextTable::num(sim[1], 1),
                   TextTable::num(sim[2], 1), TextTable::num(sim[3], 1),
                   TextTable::num(wall[1], 1), TextTable::num(wall[2], 1),
                   TextTable::num(wall[3], 1)});
  }

  const char* suites[2] = {"NAS-average", "Starbench-average"};
  for (int s = 0; s < 2; ++s) {
    if (suite_avg[s][0].count() == 0) continue;
    table.add_row({suites[s], "-", "-", TextTable::num(suite_avg[s][0].mean(), 1),
                   TextTable::num(suite_avg[s][1].mean(), 1),
                   TextTable::num(suite_avg[s][2].mean(), 1),
                   TextTable::num(suite_avg[s][3].mean(), 1), "-", "-", "-"});
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference (Fig. 5): serial ~190x; 8T lock-free ~97x (NAS) / "
      "~101x (Starbench); 16T lock-free ~78x / ~93x; lock-based ~1.3-1.6x "
      "slower than lock-free.\n");

  const char* suite_keys[2] = {"nas", "starbench"};
  for (int s = 0; s < 2; ++s)
    for (int c = 0; c < 4; ++c)
      if (suite_avg[s][c].count() > 0)
        report.metric(std::string(suite_keys[s]) + "_avg_sim_" + points[c].label,
                      suite_avg[s][c].mean());
  for (int c = 0; c < 4; ++c)
    if (!last_stages[c].empty()) report.stages(points[c].label, last_stages[c]);
  report.write();
  return 0;
}
