// Fig. 7: memory consumption of the profiler on sequential NAS and
// Starbench analogues: naive (perfect-signature) vs 8-worker and 16-worker
// lock-free configurations with a fixed *aggregate* signature budget.
//
// As in the paper, the slot count is fixed *per worker* (the paper uses
// 6.25e6 per thread, 1e8 aggregate over 16 threads), so the 16-worker
// configuration costs twice the signature memory of the 8-worker one — the
// Fig. 7 shape.  Component-exact bytes (signatures, queues and chunks,
// dependence maps) and the in-process peak are reported.
//
// Usage: fig7_memory_seq [--scale N] [--slots-per-worker N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/mem_stats.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

double mib(std::int64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  int scale = 1;
  std::size_t slots_per_worker = 125'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--slots-per-worker") == 0 && i + 1 < argc)
      slots_per_worker = static_cast<std::size_t>(std::atoll(argv[++i]));
  }

  TextTable table("Fig. 7 — profiler memory on sequential targets (MiB, " +
                  std::to_string(slots_per_worker) + " slots/worker)");
  table.set_header({"program", "suite", "naive", "8T_lock-free", "16T_lock-free",
                    "sig8", "queues8", "deps8"});

  StatAccumulator avg_naive[2], avg8[2], avg16[2];
  obs::BenchReport report("fig7_memory_seq");
  obs::PipelineSnapshot last_stages[2];  // 8T / 16T of last workload

  for (const Workload& wl : all_workloads()) {
    const Workload* w = &wl;
    if (w->suite != "nas" && w->suite != "starbench") continue;
    const int s = w->suite == "nas" ? 0 : 1;

    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;

    // Naive: exact per-address table, serial.
    ProfilerConfig naive;
    naive.storage = StorageKind::kPerfect;
    const RunMeasurement mn = profile_workload(*w, naive, opts);
    const double naive_mib = mib(mn.peak_component_bytes);

    double peak[2] = {}, sig8 = 0, q8 = 0, d8 = 0;
    const unsigned workers[2] = {8, 16};
    for (int c = 0; c < 2; ++c) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = slots_per_worker;
      cfg.workers = workers[c];
      cfg.queue = QueueKind::kLockFreeSpsc;
      RunOptions popts = opts;
      popts.parallel_pipeline = true;
      const RunMeasurement m = profile_workload(*w, cfg, popts);
      peak[c] = mib(m.peak_component_bytes);
      last_stages[c] = m.stats.stages;
      if (c == 0) {
        sig8 = mib(m.component_bytes[static_cast<unsigned>(MemComponent::kSignatures)]);
        q8 = mib(m.component_bytes[static_cast<unsigned>(MemComponent::kQueues)]);
        d8 = mib(m.component_bytes[static_cast<unsigned>(MemComponent::kDepMaps)]);
      }
    }

    avg_naive[s].add(naive_mib);
    avg8[s].add(peak[0]);
    avg16[s].add(peak[1]);
    table.add_row({w->name, w->suite, TextTable::num(naive_mib),
                   TextTable::num(peak[0]), TextTable::num(peak[1]),
                   TextTable::num(sig8), TextTable::num(q8),
                   TextTable::num(d8)});
  }

  const char* labels[2] = {"NAS-average", "Starbench-average"};
  for (int s = 0; s < 2; ++s) {
    table.add_row({labels[s], "-", TextTable::num(avg_naive[s].mean()),
                   TextTable::num(avg8[s].mean()), TextTable::num(avg16[s].mean()),
                   "-", "-", "-"});
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf("\nprocess max RSS: %.2f MiB\n", mib(MemStats::process_max_rss()));
  std::printf(
      "\nPaper reference (Fig. 7): 473/505 MiB (8T), 649/1390 MiB (16T) for "
      "NAS/Starbench at 6.25e6 slots per worker; more workers => more "
      "signature memory, naive grows with the address footprint.\n");

  const char* suite_keys[2] = {"nas", "starbench"};
  for (int s = 0; s < 2; ++s) {
    if (avg_naive[s].count() == 0) continue;
    report.metric(std::string(suite_keys[s]) + "_avg_naive_mib",
                  avg_naive[s].mean());
    report.metric(std::string(suite_keys[s]) + "_avg_8T_mib", avg8[s].mean());
    report.metric(std::string(suite_keys[s]) + "_avg_16T_mib", avg16[s].mean());
  }
  if (!last_stages[0].empty()) report.stages("8T_lock-free", last_stages[0]);
  if (!last_stages[1].empty()) report.stages("16T_lock-free", last_stages[1]);
  report.write();
  return 0;
}
