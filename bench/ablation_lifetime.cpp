// Variable-lifetime ablation (Sec. III-B): "addresses that become obsolete
// after deallocating the corresponding variable are removed from
// signatures" — the optimization that stops memory *reuse* from fabricating
// dependences between unrelated variables.
//
// Two experiments:
//  1. a synthetic allocator-reuse scenario where every loop iteration
//     obtains a scratch buffer at the same address: without lifetime events
//     the stale write-signature entries fabricate carried RAW dependences
//     between independent iterations;
//  2. the workloads that emit DP_FREE (kmeans), replayed with and without
//     their lifetime events, measured as FPR against a perfect baseline
//     that honours the frees.

#include <cstdio>
#include <sstream>

#include "common/table.hpp"
#include "core/profiler.hpp"
#include "trace/nest.hpp"
#include "harness/accuracy.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

/// Trace of a loop that re-uses one scratch buffer per iteration: each
/// iteration writes *part* of the buffer (line 11), reads all of it
/// (line 12), then frees it.  Iterations are independent: reads of words
/// this iteration did not write target freshly (re)allocated memory.
/// Without lifetime events the stale signature entries of the previous
/// iteration survive and fabricate loop-carried RAW/WAR/WAW dependences.
Trace scratch_reuse_trace(std::size_t iters, std::size_t buf_words,
                          bool with_frees) {
  Trace t;
  const std::uint32_t ctx = nest_forest().enter(NestForest::kRoot, 1);
  for (std::size_t it = 0; it < iters; ++it) {
    for (std::size_t w = 0; w < buf_words; ++w) {
      AccessEvent ev;
      ev.addr = 0x5000 + w * 4;  // same scratch address every iteration
      ev.ctx = ctx;
      ev.iters[0] = static_cast<std::uint32_t>(it);
      if ((w + it) % 2 == 0) {  // partial initialization
        ev.kind = AccessKind::kWrite;
        ev.loc = SourceLocation(1, 11).packed();
        t.events.push_back(ev);
      }
      ev.kind = AccessKind::kRead;
      ev.loc = SourceLocation(1, 12).packed();
      t.events.push_back(ev);
    }
    if (with_frees) {
      for (std::size_t w = 0; w < buf_words; ++w) {
        AccessEvent ev;
        ev.addr = 0x5000 + w * 4;
        ev.kind = AccessKind::kFree;
        t.events.push_back(ev);
      }
    }
  }
  return t;
}

std::size_t carried_count(const DepMap& deps, DepType type) {
  std::size_t n = 0;
  for (const auto& [key, info] : deps)
    if (key.type == type && (info.flags & kLoopCarried)) ++n;
  return n;
}

DepMap run_trace(const Trace& t, StorageKind storage,
                 obs::PipelineSnapshot* stages = nullptr) {
  ProfilerConfig cfg;
  cfg.storage = storage;
  cfg.slots = 1u << 16;
  auto prof = make_serial_profiler(cfg);
  replay(t, *prof);
  if (stages != nullptr) *stages = prof->stats().stages;
  return prof->take_dependences();
}

Trace strip_frees(const Trace& t) {
  Trace out;
  for (const auto& ev : t.events)
    if (!ev.is_free()) out.events.push_back(ev);
  return out;
}

}  // namespace

int main() {
  obs::BenchReport report("ablation_lifetime");

  // -- 1. synthetic scratch reuse ----------------------------------------
  std::printf("Scratch-buffer reuse (64 iterations, one freed buffer):\n");
  for (bool frees : {true, false}) {
    const Trace t = scratch_reuse_trace(64, 16, frees);
    obs::PipelineSnapshot stages;
    const DepMap deps = run_trace(t, StorageKind::kSignature, &stages);
    report.metric(frees ? "carried_raw_with_frees" : "carried_raw_without_frees",
                  static_cast<double>(carried_count(deps, DepType::kRaw)));
    report.stages(frees ? "lifetime_on" : "lifetime_off", stages);
    std::printf(
        "  lifetime events %-3s -> %zu merged deps; carried RAW/WAR/WAW = "
        "%zu/%zu/%zu (%s)\n",
        frees ? "on" : "off", deps.size(),
        carried_count(deps, DepType::kRaw), carried_count(deps, DepType::kWar),
        carried_count(deps, DepType::kWaw),
        frees ? "iterations correctly independent"
              : "FABRICATED recurrences between independent iterations");
  }

  // -- 2. real workloads with DP_FREE -------------------------------------
  TextTable table("\nLifetime events on instrumented workloads (signature vs "
                  "free-honouring perfect baseline)");
  table.set_header({"workload", "free events", "FPR w/ lifetime",
                    "FPR w/o lifetime", "extra deps w/o"});
  for (const char* name : {"kmeans"}) {
    const Workload* w = find_workload(name);
    if (w == nullptr) continue;
    const Trace full = record_workload(*w);
    std::size_t frees = 0;
    for (const auto& ev : full.events) frees += ev.is_free() ? 1 : 0;

    const DepMap baseline = run_trace(full, StorageKind::kPerfect);
    const DepMap with_lifetime = run_trace(full, StorageKind::kSignature);
    const DepMap without = run_trace(strip_frees(full), StorageKind::kSignature);

    const AccuracyResult acc_with = compare_deps(baseline, with_lifetime);
    const AccuracyResult acc_without = compare_deps(baseline, without);
    report.metric(std::string(name) + "_fpr_with_lifetime",
                  acc_with.fpr_percent());
    report.metric(std::string(name) + "_fpr_without_lifetime",
                  acc_without.fpr_percent());
    table.add_row({name, std::to_string(frees),
                   TextTable::num(acc_with.fpr_percent()),
                   TextTable::num(acc_without.fpr_percent()),
                   std::to_string(acc_without.false_positives)});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf(
      "\nPaper reference (Sec. III-B): removing obsolete addresses from the "
      "signatures lowers the probability of building incorrect dependences; "
      "single-hash (non-Bloom) signatures exist precisely to allow this "
      "removal.\n");
  report.write();
  return 0;
}
