// sampling — overhead-budget sampling recall/overhead curve (ISSUE 8).
//
// The workload is a loop-heavy kernel whose iterations carry dependences at
// a spread of loop distances (rings of size 1, 2, 4, 8, 32 → carried RAW /
// WAW / WAR at distances 0..32), driven through the live instrumentation
// runtime so the real burst gate, gap-close markers, and dedup-cache flush
// points are on the path.  Each duty point runs the B-on / K-off schedule at
// outermost-loop-iteration granularity:
//
//   off     burst=8 skip=0   gate disarmed — must be byte-identical to a
//                            plain (no sampling argument) attach
//   b4k4    50% duty         intra-burst distances <= 3 survive
//   b2k6    25% duty         distances <= 1 survive
//   b1k9    10% duty         only intra-iteration evidence survives
//   budget  adaptive         skip retuned online against --budget
//
// For every sampled point the serial map must satisfy the subset contract
// against the full-trace reference (sampling may only lose evidence, never
// invent it), and serial == parallel must hold at each fixed point (the
// fixed schedule is deterministic, so two live runs see the same stream).
// Recall and the kept-event fraction are pure counter ratios — deterministic
// and monotone in the duty cycle — so they gate the smoke run; wall-clock
// overhead against the detached-runtime native baseline is reported for the
// committed curve but never gated (CI hosts are too noisy).
//
// Metrics per duty point:
//   recall          non-INIT dependence edges found / full-run edges
//   kept_fraction   accesses delivered / accesses executed
//   eps             end-to-end accesses/sec (attach..detach wall time)
//   overhead        attach..detach wall over the native run, minus 1
//   bursts          gap-close markers emitted
//
// Usage: sampling [--iters N] [--workers W] [--reps R] [--budget B] [--smoke]
//   --smoke   small stream, deterministic gates only: off-point identity,
//             subset contract everywhere, monotone recall and kept fraction
//             along the duty axis, serial == parallel per fixed point.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/profiler.hpp"
#include "instrument/runtime.hpp"
#include "obs/bench_report.hpp"
#include "oracle/diff.hpp"
#include "oracle/harness.hpp"

using namespace depprof;

namespace {

/// Ring sizes — one carried-dependence family per distance scale.  A burst
/// of B consecutive profiled iterations can re-observe a distance-d pair
/// only when d < B, so each duty point truncates the family differently.
constexpr std::size_t kRings[] = {1, 2, 4, 8, 32};
constexpr std::size_t kRingCount = sizeof(kRings) / sizeof(kRings[0]);
constexpr std::size_t kAccessesPerIter = 2 * kRingCount;

/// Iteration i, ring of size D (source lines 300+2k / 301+2k):
///   read  ring[(i+1) % D]   — RAW at distance D-1, WAR at distance 1
///   write ring[i % D]       — WAW at distance D
/// Every call sits behind the enabled() guard exactly as the DP_* macros
/// expand, so the detached-runtime native run costs one predicted branch
/// per access — the denominator of the overhead column.
std::uint64_t run_kernel(Runtime& rt, std::size_t iters,
                         float* const* rings) {
  if (rt.enabled()) rt.loop_begin(2, 100);
  for (std::size_t i = 0; i < iters; ++i) {
    if (rt.enabled()) rt.loop_iter();
    for (std::size_t k = 0; k < kRingCount; ++k) {
      const std::size_t d = kRings[k];
      const std::uint32_t line = 300 + 2 * static_cast<std::uint32_t>(k);
      if (rt.enabled())
        rt.record(rings[k] + (i + 1) % d, 4, 2, line,
                  static_cast<std::uint32_t>(k + 1), /*is_write=*/false);
      if (rt.enabled())
        rt.record(rings[k] + i % d, 4, 2, line + 1,
                  static_cast<std::uint32_t>(k + 1), /*is_write=*/true);
    }
  }
  if (rt.enabled()) rt.loop_end(2, 100);
  return static_cast<std::uint64_t>(iters) * kAccessesPerIter;
}

struct RunResult {
  double best_sec = 0;  ///< attach..detach wall, best-of-reps
  std::uint64_t accesses = 0;
  std::uint64_t sampled_out = 0;
  std::uint64_t bursts = 0;
  std::uint64_t overhead_ppm = 0;
  DepMap deps;
};

/// One profiled configuration, best-of-`reps` wall time; counters and the
/// map come from the final rep.
RunResult run_point(const ProfilerConfig& cfg, bool parallel,
                    const SamplingConfig& sampling, std::size_t iters,
                    float* const* rings, int reps) {
  RunResult result;
  Runtime& rt = Runtime::instance();
  for (int rep = 0; rep < reps; ++rep) {
    rt.reset();
    auto profiler =
        parallel ? make_parallel_profiler(cfg) : make_serial_profiler(cfg);
    WallTimer t;
    rt.attach(profiler.get(), /*mt_mode=*/false, /*dedup=*/false, sampling);
    result.accesses = run_kernel(rt, iters, rings);
    rt.detach();
    const double sec = t.elapsed();
    if (result.best_sec == 0 || sec < result.best_sec) result.best_sec = sec;
    if (rep == reps - 1) {
      const obs::PipelineSnapshot snap = profiler->stats().stages;
      if (const obs::StageSnapshot* p = snap.find("produce")) {
        result.sampled_out = p->events_sampled_out;
        result.bursts = p->bursts;
        result.overhead_ppm = p->sampled_overhead_ppm;
      }
      result.deps = profiler->take_dependences();
    }
  }
  return result;
}

struct DutyPoint {
  const char* name;
  unsigned burst;
  unsigned skip;
};

constexpr DutyPoint kDuties[] = {
    {"off", 8, 0}, {"b4k4", 4, 4}, {"b2k6", 2, 6}, {"b1k9", 1, 9}};
constexpr std::size_t kDutyCount = sizeof(kDuties) / sizeof(kDuties[0]);

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 400'000;  // x10 = 4M accesses
  unsigned workers = 4;
  int reps = 3;
  double budget = 0.25;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--iters" && i + 1 < argc)
      iters = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (arg == "--workers" && i + 1 < argc)
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    else if (arg == "--reps" && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (arg == "--budget" && i + 1 < argc)
      budget = std::atof(argv[++i]);
    else if (arg == "--smoke")
      smoke = true;
  }
  if (smoke) {
    iters = 20'000;
    reps = 2;
  }

  std::vector<float> arena(kRings[0] + kRings[1] + kRings[2] + kRings[3] +
                           kRings[4]);
  float* rings[kRingCount];
  std::size_t off = 0;
  for (std::size_t k = 0; k < kRingCount; ++k) {
    rings[k] = arena.data() + off;
    off += kRings[k];
  }

  Runtime& rt = Runtime::instance();
  ProfilerConfig cfg;
  cfg.storage = StorageKind::kPerfect;
  cfg.workers = workers;

  // Native baseline: same kernel, runtime disabled — the per-access cost is
  // one predicted branch, exactly the slowdown experiments' denominator.
  double native_sec = 0;
  for (int rep = 0; rep < reps; ++rep) {
    rt.reset();
    WallTimer t;
    run_kernel(rt, iters, rings);
    const double sec = t.elapsed();
    if (native_sec == 0 || sec < native_sec) native_sec = sec;
  }

  // Unsampled reference: a plain attach with no sampling argument at all.
  // The "off" duty point must reproduce this byte for byte — the budget=100%
  // no-op guarantee.
  const RunResult reference =
      run_point(cfg, /*parallel=*/false, SamplingConfig{}, iters, rings, reps);

  TextTable table(
      "Overhead-budget sampling — recall/overhead per duty point (" +
      std::to_string(iters * kAccessesPerIter) + " accesses, " +
      std::to_string(workers) + " workers)");
  table.set_header({"point", "duty", "recall", "kept", "acc/s", "overhead",
                    "bursts"});
  obs::BenchReport report("sampling");
  report.metric("accesses", static_cast<double>(iters * kAccessesPerIter));
  report.metric("workers", static_cast<double>(workers));
  report.metric("native_sec", native_sec);
  report.metric("full_edges", static_cast<double>(reference.deps.size()));

  bool ok = true;
  double recalls[kDutyCount] = {};
  double kept[kDutyCount] = {};

  for (std::size_t d = 0; d < kDutyCount; ++d) {
    const DutyPoint& duty = kDuties[d];
    SamplingConfig sampling;
    sampling.burst = duty.burst;
    sampling.skip = duty.skip;
    const RunResult serial =
        run_point(cfg, /*parallel=*/false, sampling, iters, rings, reps);
    const RunResult parallel =
        run_point(cfg, /*parallel=*/true, sampling, iters, rings, reps);

    // The fixed schedule is deterministic: two live runs gate the same
    // units, so serial and parallel see the same stream and must agree.
    const DepDiff sp = diff_deps(serial.deps, parallel.deps);
    if (!sp.identical()) {
      std::fprintf(stderr, "FAIL: %s: serial != parallel:\n%s", duty.name,
                   format_diff(sp, "serial", "parallel").c_str());
      ok = false;
    }

    double recall = 1.0;
    if (duty.skip == 0) {
      const DepDiff diff = diff_deps(reference.deps, serial.deps);
      if (!diff.identical()) {
        std::fprintf(stderr,
                     "FAIL: off: skip=0 diverges from the plain attach:\n%s",
                     format_diff(diff, "plain", "off").c_str());
        ok = false;
      }
      if (serial.bursts != 0 || serial.sampled_out != 0) {
        std::fprintf(stderr, "FAIL: off: gate engaged (dropped=%llu "
                     "bursts=%llu) with sampling disabled\n",
                     static_cast<unsigned long long>(serial.sampled_out),
                     static_cast<unsigned long long>(serial.bursts));
        ok = false;
      }
    } else {
      const SubsetReport sub =
          check_sampled_subset(reference.deps, serial.deps);
      if (!sub.ok) {
        std::fprintf(stderr, "FAIL: %s: subset contract violated: %s\n",
                     duty.name, sub.detail.c_str());
        ok = false;
      }
      recall = sub.recall;
    }
    recalls[d] = recall;
    kept[d] = serial.accesses > 0
                  ? 1.0 - static_cast<double>(serial.sampled_out) /
                              static_cast<double>(serial.accesses)
                  : 1.0;
    const double eps =
        static_cast<double>(serial.accesses) / serial.best_sec;
    const double overhead =
        native_sec > 0 ? serial.best_sec / native_sec - 1.0 : 0.0;
    const double duty_frac = static_cast<double>(duty.burst) /
                             static_cast<double>(duty.burst + duty.skip);
    table.add_row({duty.name, TextTable::num(duty_frac),
                   TextTable::num(recall), TextTable::num(kept[d]),
                   TextTable::num(eps), TextTable::num(overhead),
                   TextTable::num(static_cast<double>(serial.bursts))});
    const std::string key = duty.name;
    report.metric(key + "_duty", duty_frac);
    report.metric(key + "_recall", recall);
    report.metric(key + "_kept_fraction", kept[d]);
    report.metric(key + "_eps", eps);
    report.metric(key + "_overhead", overhead);
    report.metric(key + "_bursts", static_cast<double>(serial.bursts));
  }

  // Deterministic curve gates: lowering the duty cycle may only lose
  // evidence — recall and the kept fraction must both fall monotonically
  // along the duty axis, and the lowest point must still find something.
  for (std::size_t d = 1; d < kDutyCount; ++d) {
    if (recalls[d] > recalls[d - 1] + 1e-12) {
      std::fprintf(stderr, "FAIL: recall not monotone: %s=%.4f > %s=%.4f\n",
                   kDuties[d].name, recalls[d], kDuties[d - 1].name,
                   recalls[d - 1]);
      ok = false;
    }
    if (kept[d] >= kept[d - 1]) {
      std::fprintf(stderr,
                   "FAIL: kept fraction not decreasing: %s=%.4f >= %s=%.4f\n",
                   kDuties[d].name, kept[d], kDuties[d - 1].name,
                   kept[d - 1]);
      ok = false;
    }
  }
  if (recalls[kDutyCount - 1] <= 0.0) {
    std::fprintf(stderr, "FAIL: lowest duty point kept no evidence at all\n");
    ok = false;
  }

  // Adaptive point: the controller retunes the skip count online, so the
  // schedule — and therefore the map — is timing-dependent.  The subset
  // contract still binds (the gap-close rule is schedule-independent); the
  // achieved overhead is reported, not gated.
  {
    SamplingConfig sampling;
    sampling.budget = budget;
    sampling.burst = 8;
    const RunResult adaptive =
        run_point(cfg, /*parallel=*/false, sampling, iters, rings, reps);
    const SubsetReport sub =
        check_sampled_subset(reference.deps, adaptive.deps);
    if (!sub.ok) {
      std::fprintf(stderr, "FAIL: budget: subset contract violated: %s\n",
                   sub.detail.c_str());
      ok = false;
    }
    const double kept_frac =
        adaptive.accesses > 0
            ? 1.0 - static_cast<double>(adaptive.sampled_out) /
                        static_cast<double>(adaptive.accesses)
            : 1.0;
    const double overhead =
        native_sec > 0 ? adaptive.best_sec / native_sec - 1.0 : 0.0;
    table.add_row({"budget", TextTable::num(budget),
                   TextTable::num(sub.recall), TextTable::num(kept_frac),
                   TextTable::num(static_cast<double>(adaptive.accesses) /
                                  adaptive.best_sec),
                   TextTable::num(overhead),
                   TextTable::num(static_cast<double>(adaptive.bursts))});
    report.metric("budget_target", budget);
    report.metric("budget_recall", sub.recall);
    report.metric("budget_kept_fraction", kept_frac);
    report.metric("budget_overhead", overhead);
    report.metric("budget_measured_ppm",
                  static_cast<double>(adaptive.overhead_ppm));
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  report.write();
  return ok ? 0 : 1;
}
