// Sec. III-B claim: "Merging identical dependences decreased the average
// output file size for NAS benchmarks from 6.1 GB to 53 KB, corresponding
// to an average reduction by a factor of 1e5."
//
// For every NAS analogue this bench compares the bytes an unmerged record
// stream would occupy (one fixed-size record per dependence instance)
// against the merged map's size, and the resulting reduction factor.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scale" && i + 1 < argc)
      scale = std::atoi(argv[++i]);

  TextTable table("Dependence-merging reduction (NAS analogues)");
  table.set_header({"program", "instances", "merged", "raw_bytes", "merged_bytes",
                    "factor"});
  StatAccumulator factors;
  obs::BenchReport report("merge_factor");
  obs::PipelineSnapshot last_stages;

  for (const Workload* w : workloads_in_suite("nas")) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = 1u << 20;
    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;
    const RunMeasurement m = profile_workload(*w, cfg, opts);
    last_stages = m.stats.stages;

    const std::uint64_t instances = m.deps.instances();
    const std::uint64_t raw_bytes = instances * DepMap::kRawRecordBytes;
    const std::uint64_t merged_bytes = m.deps.bytes();
    const double factor = merged_bytes
                              ? static_cast<double>(raw_bytes) /
                                    static_cast<double>(merged_bytes)
                              : 0.0;
    factors.add(factor);
    table.add_row({w->name, std::to_string(instances),
                   std::to_string(m.deps.size()), std::to_string(raw_bytes),
                   std::to_string(merged_bytes), TextTable::num(factor, 1)});
  }
  table.add_row({"average", "-", "-", "-", "-", TextTable::num(factors.mean(), 1)});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference: 6.1 GB -> 53 KB, average reduction ~1e5x on NAS "
      "(full inputs; the factor scales with run length, so expect smaller "
      "factors at laptop scale and growth with --scale).\n");

  report.metric("avg_reduction_factor", factors.mean());
  if (!last_stages.empty()) report.stages("serial_sig", last_stages);
  report.write();
  return 0;
}
