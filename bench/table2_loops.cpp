// Table II: detection of parallelizable loops in the NAS analogues.
//
// "# OMP" counts the loops annotated parallel in the OpenMP version of each
// analogue (ground truth); "# identified (DP)" runs the DiscoPoP-style
// analysis on perfect-signature dependences; "# identified (sig)" runs the
// same analysis on finite-signature dependences; "# missed" is DP-but-not-
// sig.  The paper's headline: with sufficiently large signatures the sig
// column equals the DP column with zero missed loops.
//
// Usage: table2_loops [--slots N] [--scale N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/table.hpp"
#include "harness/runner.hpp"
#include "harness/table2.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  std::size_t slots = 1u << 20;
  int scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slots") == 0 && i + 1 < argc)
      slots = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
  }

  TextTable table("Table II — detection of parallelizable loops (NAS analogues, " +
                  std::to_string(slots) + " slots)");
  table.set_header({"program", "# OMP", "# identified (DP)",
                    "# identified (sig)", "# missed (sig)",
                    "# false-parallel (sig)"});

  unsigned omp = 0, dp = 0, sig = 0, missed = 0, false_par = 0;
  for (const Workload* w : workloads_in_suite("nas")) {
    const Table2Row row = run_table2(*w, slots, scale);
    table.add_row({row.program, std::to_string(row.omp_loops),
                   std::to_string(row.identified_dp),
                   std::to_string(row.identified_sig),
                   std::to_string(row.missed_sig),
                   std::to_string(row.false_parallel_sig)});
    omp += row.omp_loops;
    dp += row.identified_dp;
    sig += row.identified_sig;
    missed += row.missed_sig;
    false_par += row.false_parallel_sig;
  }
  table.add_row({"Overall", std::to_string(omp), std::to_string(dp),
                 std::to_string(sig), std::to_string(missed),
                 std::to_string(false_par)});

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference (Table II): 147 OMP loops, 136 identified by both "
      "DP and sig, 0 missed (92.5%%).\n");

  obs::BenchReport report("table2_loops");
  report.metric("omp_loops", omp);
  report.metric("identified_dp", dp);
  report.metric("identified_sig", sig);
  report.metric("missed_sig", missed);
  report.metric("false_parallel_sig", false_par);
  // run_table2 consumes its profilers internally; profile one NAS workload
  // at the same signature size for the stage breakdown.
  auto nas = workloads_in_suite("nas");
  if (!nas.empty()) {
    ProfilerConfig cfg;
    cfg.storage = StorageKind::kSignature;
    cfg.slots = slots;
    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;
    const RunMeasurement m = profile_workload(*nas.front(), cfg, opts);
    report.stages("serial_sig", m.stats.stages);
  }
  report.write();
  return 0;
}
