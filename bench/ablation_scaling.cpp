// Worker-scaling ablation: simulated slowdown of the lock-free pipeline as
// the worker count grows (1, 2, 4, 8, 16), against the serial profiler.
//
// The paper reports 190x serial -> 97x (8T) -> 78x (16T) on NAS, a 2.4x
// speedup at 16 threads.  The speedup saturates once the producing target
// thread becomes the bottleneck — on this reproduction the producer
// saturates earlier (coarser instrumentation means fewer cycles of worker
// work per produced event), so the knee sits at a smaller worker count; the
// curve's *shape* (monotone drop, then flat at the producer bound) is the
// reproduced result.

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/table.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  int scale = 1;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--scale" && i + 1 < argc)
      scale = std::atoi(argv[++i]);

  const char* names[] = {"cg", "is", "kmeans", "rgbyuv"};
  const unsigned workers[] = {1, 2, 4, 8, 16};

  TextTable table("Worker scaling — simulated slowdown (x native), lock-free queues");
  table.set_header({"program", "serial", "W=1", "W=2", "W=4", "W=8", "W=16",
                    "producer-bound"});

  obs::BenchReport report("ablation_scaling");
  obs::PipelineSnapshot last_stages[5];  // last workload, per worker count

  for (const char* name : names) {
    const Workload* w = find_workload(name);
    if (w == nullptr) continue;

    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 3;

    ProfilerConfig serial_cfg;
    serial_cfg.storage = StorageKind::kSignature;
    serial_cfg.slots = 1u << 20;
    const RunMeasurement serial = profile_workload(*w, serial_cfg, opts);

    std::vector<std::string> row = {w->name, TextTable::num(serial.slowdown(), 1)};
    double producer_bound = 0.0;
    int wi = 0;
    for (unsigned wc : workers) {
      ProfilerConfig cfg;
      cfg.storage = StorageKind::kSignature;
      cfg.slots = (1u << 21) / wc;
      cfg.workers = wc;
      cfg.queue = QueueKind::kLockFreeSpsc;
      RunOptions popts = opts;
      popts.parallel_pipeline = true;
      const RunMeasurement m = profile_workload(*w, cfg, popts);
      row.push_back(TextTable::num(m.simulated_slowdown(), 1));
      producer_bound = m.native_sec > 0 ? m.producer_cpu_sec / m.native_sec : 0;
      last_stages[wi++] = m.stats.stages;
    }
    report.metric(std::string(w->name) + "_serial_slowdown", serial.slowdown());
    report.metric(std::string(w->name) + "_producer_bound", producer_bound);
    row.push_back(TextTable::num(producer_bound, 1));
    table.add_row(std::move(row));
  }

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference: serial 190x -> 78x at 16 workers (2.4x pipeline "
      "speedup), saturating at the producer bound.\n");

  for (int i = 0; i < 5; ++i)
    if (!last_stages[i].empty())
      report.stages("W=" + std::to_string(workers[i]), last_stages[i]);
  report.write();
  return 0;
}
