// Storage ablation (Sec. III-B):
//   * time — "the hash table approach is about 1.5-3.7x slower than our
//     approach": identical access streams through Algorithm 1 backed by the
//     fixed-size signature, the chained hash table, the multi-level shadow
//     memory, and the perfect signature; google-benchmark measures ns/access.
//   * space — shadow memory's blow-up on sparse, widely spread address sets
//     vs the signature's fixed footprint.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <utility>

#include "common/timer.hpp"
#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "obs/bench_report.hpp"
#include "sig/hash_table_recorder.hpp"
#include "sig/packed_shadow_store.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/shadow_memory.hpp"
#include "sig/signature.hpp"
#include "trace/generators.hpp"
#include "trace/trace.hpp"

using namespace depprof;

namespace {

Trace shared_trace() {
  GenParams p;
  p.accesses = 200'000;
  p.distinct = 40'000;
  p.write_ratio = 0.35;
  return gen_uniform(p);
}

/// Steady-state per-access cost: structures are built and warmed once (the
/// paper's comparison concerns the instrumentation fast path over billions
/// of accesses, not one-time construction).
template <typename Store>
void run_detector(benchmark::State& state, Store make_read(), Store make_write()) {
  const Trace t = shared_trace();
  DetectorCore<Store> det(make_read(), make_write());
  DepMap deps;
  for (const auto& ev : t.events) det.process(ev, deps);  // warm-up pass
  for (auto _ : state) {
    for (const auto& ev : t.events) det.process(ev, deps);
    benchmark::DoNotOptimize(deps.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.events.size()));
}

void BM_Signature(benchmark::State& state) {
  run_detector<Signature<SeqSlot>>(
      state, +[] { return Signature<SeqSlot>(1u << 18); },
      +[] { return Signature<SeqSlot>(1u << 18); });
}
BENCHMARK(BM_Signature);

void BM_HashTable(benchmark::State& state) {
  run_detector<HashTableRecorder<SeqSlot>>(
      state, +[] { return HashTableRecorder<SeqSlot>(1u << 14); },
      +[] { return HashTableRecorder<SeqSlot>(1u << 14); });
}
BENCHMARK(BM_HashTable);

void BM_ShadowMemory(benchmark::State& state) {
  run_detector<ShadowMemory<SeqSlot>>(
      state, +[] { return ShadowMemory<SeqSlot>(); },
      +[] { return ShadowMemory<SeqSlot>(); });
}
BENCHMARK(BM_ShadowMemory);

void BM_PerfectSignature(benchmark::State& state) {
  run_detector<PerfectSignature<SeqSlot>>(
      state, +[] { return PerfectSignature<SeqSlot>(); },
      +[] { return PerfectSignature<SeqSlot>(); });
}
BENCHMARK(BM_PerfectSignature);

void BM_PackedShadowStore(benchmark::State& state) {
  run_detector<PackedShadowStore<SeqSlot>>(
      state, +[] { return PackedShadowStore<SeqSlot>(); },
      +[] { return PackedShadowStore<SeqSlot>(); });
}
BENCHMARK(BM_PackedShadowStore);

/// A/B point for the shadow-memory walk assist (one-entry page cache +
/// slot prefetch in the two-level walk): same stream, assist off vs on.
void BM_ShadowMemoryWalkAssistOff(benchmark::State& state) {
  ShadowMemory<SeqSlot>::set_walk_assist(false);
  run_detector<ShadowMemory<SeqSlot>>(
      state, +[] { return ShadowMemory<SeqSlot>(); },
      +[] { return ShadowMemory<SeqSlot>(); });
  ShadowMemory<SeqSlot>::set_walk_assist(true);
}
BENCHMARK(BM_ShadowMemoryWalkAssistOff);

/// Space comparison on a sparse, widely spread address set: the shadow
/// memory allocates a page per touched region while the signature stays
/// fixed.
void space_comparison() {
  // One shadow page covers 2^16 word units; with addresses one page apart,
  // every address costs a full page (65536 slots for 1 resident) while the
  // signature stays at its fixed footprint.  256 addresses already cost the
  // shadow memory ~0.7 GiB — the Sec. III-B ">16 GB on small programs"
  // effect, scaled to stay allocatable here.
  constexpr std::size_t kAddrs = 256;
  constexpr std::uint64_t kSpread =
      ShadowMemory<SeqSlot>::kPageSlots * 4;  // bytes: one page per address

  Signature<SeqSlot> sig(1u << 18);
  ShadowMemory<SeqSlot> shadow;
  HashTableRecorder<SeqSlot> table(1u << 14);
  PackedShadowStore<SeqSlot> packed;
  SeqSlot s;
  s.loc = SourceLocation(1, 1).packed();
  for (std::size_t i = 0; i < kAddrs; ++i) {
    const std::uint64_t addr = 0x10000 + i * kSpread;
    sig.insert(addr, s);
    shadow.insert(addr, s);
    table.insert(addr, s);
    packed.insert(addr, s);
  }
  std::printf("\nSpace on %zu sparse addresses (spread %llu B apart):\n", kAddrs,
              static_cast<unsigned long long>(kSpread));
  std::printf("  signature     : %10.2f MiB (fixed)\n",
              static_cast<double>(sig.bytes()) / 1048576.0);
  std::printf("  shadow memory : %10.2f MiB (%zu pages)\n",
              static_cast<double>(shadow.bytes()) / 1048576.0,
              shadow.page_count());
  std::printf("  hash table    : %10.2f MiB\n",
              static_cast<double>(table.bytes()) / 1048576.0);
  std::printf("  packed paged  : %10.2f MiB (%zu x 2 MiB pages; 8 B/word "
              "amortizes only on dense sets)\n",
              static_cast<double>(packed.bytes()) / 1048576.0,
              packed.page_count());
  std::printf(
      "\nPaper reference: signatures bound memory where shadow memory can "
      "exceed 16 GB on small programs; hash tables are exact but 1.5-3.7x "
      "slower per access.\n");
}

/// Steady-state ns/access with the same warm-up discipline as run_detector,
/// measured directly so the ratio lands in the machine-readable report
/// (google-benchmark keeps its own output format).
template <typename Store>
double measured_ns_per_access(const Trace& t, Store read, Store write) {
  DetectorCore<Store> det(std::move(read), std::move(write));
  DepMap deps;
  for (const auto& ev : t.events) det.process(ev, deps);  // warm-up pass
  constexpr int kReps = 3;
  const std::uint64_t t0 = WallTimer::now();
  for (int r = 0; r < kReps; ++r)
    for (const auto& ev : t.events) det.process(ev, deps);
  const std::uint64_t t1 = WallTimer::now();
  benchmark::DoNotOptimize(deps.size());
  return static_cast<double>(t1 - t0) /
         (static_cast<double>(kReps) * static_cast<double>(t.events.size()));
}

obs::PipelineSnapshot replay_stages(const Trace& t, StorageKind storage) {
  ProfilerConfig cfg;
  cfg.storage = storage;
  cfg.slots = 1u << 18;
  auto prof = make_serial_profiler(cfg);
  replay(t, *prof);
  return prof->stats().stages;
}

void machine_report() {
  obs::BenchReport report("ablation_storage");
  const Trace t = shared_trace();

  const double sig_ns = measured_ns_per_access<Signature<SeqSlot>>(
      t, Signature<SeqSlot>(1u << 18), Signature<SeqSlot>(1u << 18));
  const double table_ns = measured_ns_per_access<HashTableRecorder<SeqSlot>>(
      t, HashTableRecorder<SeqSlot>(1u << 14), HashTableRecorder<SeqSlot>(1u << 14));
  const double shadow_ns = measured_ns_per_access<ShadowMemory<SeqSlot>>(
      t, ShadowMemory<SeqSlot>(), ShadowMemory<SeqSlot>());
  const double perfect_ns = measured_ns_per_access<PerfectSignature<SeqSlot>>(
      t, PerfectSignature<SeqSlot>(), PerfectSignature<SeqSlot>());
  const double packed_ns = measured_ns_per_access<PackedShadowStore<SeqSlot>>(
      t, PackedShadowStore<SeqSlot>(), PackedShadowStore<SeqSlot>());
  ShadowMemory<SeqSlot>::set_walk_assist(false);
  const double shadow_raw_ns = measured_ns_per_access<ShadowMemory<SeqSlot>>(
      t, ShadowMemory<SeqSlot>(), ShadowMemory<SeqSlot>());
  ShadowMemory<SeqSlot>::set_walk_assist(true);

  report.metric("signature_ns_per_access", sig_ns);
  report.metric("hashtable_ns_per_access", table_ns);
  report.metric("shadow_ns_per_access", shadow_ns);
  report.metric("perfect_ns_per_access", perfect_ns);
  report.metric("packed_ns_per_access", packed_ns);
  report.metric("shadow_no_walk_assist_ns_per_access", shadow_raw_ns);
  report.metric("hashtable_over_signature", sig_ns > 0 ? table_ns / sig_ns : 0);
  report.metric("hashtable_over_packed", packed_ns > 0 ? table_ns / packed_ns : 0);
  std::printf("\nSteady-state hash-table/signature per-access ratio: %.2fx "
              "(paper band 1.5-3.7x)\n",
              sig_ns > 0 ? table_ns / sig_ns : 0.0);

  report.stages("serial_signature", replay_stages(t, StorageKind::kSignature));
  report.stages("serial_hashtable", replay_stages(t, StorageKind::kHashTable));
  report.stages("serial_shadow", replay_stages(t, StorageKind::kShadow));
  report.stages("serial_perfect", replay_stages(t, StorageKind::kPerfect));
  report.stages("serial_packed", replay_stages(t, StorageKind::kPacked));
  report.write();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  space_comparison();
  machine_report();
  return 0;
}
