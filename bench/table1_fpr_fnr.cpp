// Table I: false positive and false negative rates of profiled dependences
// for the Starbench analogues under three signature sizes, measured against
// the perfect signature.
//
// The paper uses 1e6 / 1e7 / 1e8 slots against benchmark runs touching
// 4e2..6e6 distinct addresses.  Our analogues touch ~1e2-1e3x fewer
// addresses (laptop-scale inputs), so the default sweep scales the slot
// counts down by 1e2 (1e4 / 1e5 / 1e6) to land in the same n/m regime; the
// paper's absolute sizes can be requested with --paper-slots.
//
// Usage: table1_fpr_fnr [--scale N] [--paper-slots]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/accuracy.hpp"
#include "harness/runner.hpp"
#include "obs/bench_report.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

int main(int argc, char** argv) {
  int scale = 1;
  bool paper_slots = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--paper-slots") == 0)
      paper_slots = true;
  }
  const std::size_t slots[3] = {
      paper_slots ? 1'000'000u : 10'000u,
      paper_slots ? 10'000'000u : 100'000u,
      paper_slots ? 100'000'000u : 1'000'000u,
  };

  TextTable table("Table I — FPR/FNR of profiled dependences (Starbench analogues)");
  table.set_header({"program", "#addresses", "#accesses", "#deps",
                    "FPR@" + std::to_string(slots[0]),
                    "FNR@" + std::to_string(slots[0]),
                    "FPR@" + std::to_string(slots[1]),
                    "FNR@" + std::to_string(slots[1]),
                    "FPR@" + std::to_string(slots[2]),
                    "FNR@" + std::to_string(slots[2])});

  StatAccumulator avg_fpr[3], avg_fnr[3];
  obs::BenchReport report("table1_fpr_fnr");
  obs::PipelineSnapshot last_stages;  // largest-slot signature run

  auto suite = workloads_in_suite("starbench");
  for (const Workload* w : suite) {
    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;

    // Trace statistics for the "# addresses" / "# accesses" columns.
    const Trace trace = record_workload(*w, opts);
    const std::size_t addresses = trace.distinct_addresses();
    const std::size_t accesses = trace.size();

    // Perfect baseline.
    ProfilerConfig perfect;
    perfect.storage = StorageKind::kPerfect;
    RunMeasurement base = profile_workload(*w, perfect, opts);

    std::vector<std::string> row = {w->name, std::to_string(addresses),
                                    std::to_string(accesses),
                                    std::to_string(base.deps.size())};
    for (int s = 0; s < 3; ++s) {
      ProfilerConfig sig;
      sig.storage = StorageKind::kSignature;
      sig.slots = slots[s];
      RunMeasurement m = profile_workload(*w, sig, opts);
      if (s == 2) last_stages = m.stats.stages;
      const AccuracyResult acc = compare_deps(base.deps, m.deps);
      avg_fpr[s].add(acc.fpr_percent());
      avg_fnr[s].add(acc.fnr_percent());
      row.push_back(TextTable::num(acc.fpr_percent()));
      row.push_back(TextTable::num(acc.fnr_percent()));
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg = {"average", "-", "-", "-"};
  for (int s = 0; s < 3; ++s) {
    avg.push_back(TextTable::num(avg_fpr[s].mean()));
    avg.push_back(TextTable::num(avg_fnr[s].mean()));
  }
  table.add_row(std::move(avg));

  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.csv().c_str());
  std::printf(
      "\nPaper reference (Table I averages): FPR 24.47/4.71/0.35 %%, "
      "FNR 5.42/0.71/0.04 %% at 1e6/1e7/1e8 slots.\n");

  for (int s = 0; s < 3; ++s) {
    report.metric("avg_fpr_at_" + std::to_string(slots[s]), avg_fpr[s].mean());
    report.metric("avg_fnr_at_" + std::to_string(slots[s]), avg_fnr[s].mean());
  }
  if (!last_stages.empty())
    report.stages("serial_sig_" + std::to_string(slots[2]), last_stages);
  report.write();
  return 0;
}
