// depfuzz: differential-oracle fuzzer for the profiler pipeline.
//
// Sweeps synthetic traces across the configuration lattice (storage backend
// x queue kind x wait strategy x workers x chunk size x load balancer x
// seq/MT) and checks every case against the exact reference oracle via the
// harness contract: exact stores must match the oracle byte-for-byte,
// finite signatures must stay within the formula-2 divergence budget.  On a
// mismatch the ddmin shrinker minimizes the (trace, config) pair and, with
// --corpus, writes a replayable repro for tests/corpus/.
//
//   depfuzz --smoke [--corpus DIR]       deterministic PR-gate lattice (~60 cases)
//   depfuzz --deep [--runs N] [--seconds S] [--seed S] [--corpus DIR]
//                                        randomized nightly sweep
//   depfuzz --schedules [--runs N] [--seed S] [--corpus DIR]
//                                        deterministic-schedule lattice: every
//                                        case runs the parallel pipeline under
//                                        the seeded interleaving controller
//                                        (src/sched/); --runs adds N extra
//                                        seeds on the flake-shaped point
//   depfuzz --replay FILE                re-run one committed repro (v4 repros
//                                        replay their recorded schedule)
//   depfuzz --replay-dir DIR             corpus lint: parse + re-run every repro
//   depfuzz --list                       print the smoke lattice
//
// Exit codes: 0 all cases hold, 1 mismatch or unreplayable repro, 2 usage.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "oracle/corpus.hpp"
#include "oracle/harness.hpp"
#include "oracle/shrinker.hpp"
#include "queue/queues.hpp"
#include "trace/generators.hpp"

namespace depprof {
namespace {

struct FuzzCase {
  std::string name;
  ProfilerConfig cfg;
  Trace trace;
  /// --schedules: run the parallel side under the interleaving controller.
  bool sched = false;
  SchedSpec sched_spec;
};

struct NamedTrace {
  const char* name;
  Trace trace;
  bool mt;
};

/// Storage half of the lattice.  The two signature points pin down both
/// regimes: modulo indexing over an in-span trace (structurally
/// collision-free, so exact) and the mixed hash over few slots (bounded).
struct StoragePoint {
  const char* name;
  StorageKind storage;
  std::size_t slots;
  SigHash hash;
};

constexpr StoragePoint kStorages[] = {
    {"sig-exact", StorageKind::kSignature, 1u << 18, SigHash::kModulo},
    {"sig-bounded", StorageKind::kSignature, 1u << 14, SigHash::kMix},
    {"perfect", StorageKind::kPerfect, 1u << 18, SigHash::kModulo},
    {"shadow", StorageKind::kShadow, 1u << 18, SigHash::kModulo},
    {"hashtable", StorageKind::kHashTable, 1u << 18, SigHash::kModulo},
    {"packed", StorageKind::kPacked, 1u << 18, SigHash::kModulo},
};
constexpr QueueKind kQueues[] = {QueueKind::kLockFreeSpsc,
                                 QueueKind::kLockFreeMpmc, QueueKind::kMutex};
constexpr WaitKind kWaits[] = {WaitKind::kSpin, WaitKind::kYield,
                               WaitKind::kPark};
constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};
constexpr std::size_t kChunkSizes[] = {1, 7, 1024};

/// A load-balancer tuned to actually fire on smoke-sized traces.
LoadBalanceConfig active_balancer() {
  LoadBalanceConfig lb;
  lb.enabled = true;
  lb.sample_shift = 0;
  lb.eval_interval_chunks = 8;
  lb.imbalance_threshold = 1.1;
  lb.top_k = 4;
  lb.max_rounds = 16;
  return lb;
}

std::vector<NamedTrace> smoke_traces(std::size_t accesses,
                                     std::size_t distinct) {
  GenParams p;
  p.accesses = accesses;
  p.distinct = distinct;
  std::vector<NamedTrace> traces;
  traces.push_back({"uniform", gen_uniform(p), false});
  traces.push_back({"strided", gen_strided(p), false});
  traces.push_back({"zipf", gen_zipf(p, 1.2), false});
  GenParams lp = p;
  lp.distinct = 256;
  traces.push_back({"loop-carried", gen_loop(lp, 24, true), false});
  GenParams cp = p;
  cp.distinct = 512;
  traces.push_back({"churn", gen_churn(cp, 0.3), false});
  // Nested traces: a deep imperfect nest (zero-iteration inner entries,
  // sibling re-entry) and churn stamped under a three-deep nest — the cases
  // that exercise common-loop attribution and the wire codec's push/pop/
  // sibling steps.
  GenParams np = p;
  np.accesses = accesses;
  traces.push_back({"nest3", gen_nest(np, 3, 4), false});
  traces.push_back({"churn-nest", gen_churn(cp, 0.2, 0, 3), false});
  traces.push_back({"mt-pc", gen_mt_producer_consumer(p, 4, 64), true});
  traces.push_back({"mt-churn", gen_churn(cp, 0.25, 4), true});
  return traces;
}

/// Deterministic smoke lattice: every storage x queue x chunk point, with
/// wait, workers, load-balance, and trace round-robined by case index, plus
/// one MT case per storage backend.
std::vector<FuzzCase> smoke_cases() {
  const std::vector<NamedTrace> traces = smoke_traces(6000, 1500);
  std::vector<FuzzCase> cases;
  std::size_t idx = 0;
  for (const StoragePoint& sp : kStorages) {
    for (const QueueKind queue : kQueues) {
      for (const std::size_t chunk : kChunkSizes) {
        const NamedTrace& tr = traces[idx % 7];  // sequential traces only
        FuzzCase c;
        c.cfg.storage = sp.storage;
        c.cfg.slots = sp.slots;
        c.cfg.sig_hash = sp.hash;
        c.cfg.queue = queue;
        c.cfg.chunk_size = chunk;
        c.cfg.wait = kWaits[idx % 3];
        c.cfg.workers = kWorkerCounts[idx % 4];
        if (idx % 2 == 0) c.cfg.load_balance = active_balancer();
        c.cfg.mt_targets = false;
        // Kernel axis: alternate batched and per-event detection so the
        // smoke gate always covers both against the oracle.
        c.cfg.batched_detect = idx % 2 == 0;
        // Front-end reduction axes: walk the full dedup x pack lattice as
        // the case index advances so every combination is smoke-gated.
        c.cfg.dedup = (idx / 2) % 2 == 0;
        c.cfg.pack = idx % 2 == 0;
        // Sampling axis: rotate off / 100% / 50% / 10% duty.  100% (skip=0)
        // drops nothing and must behave exactly like off; the 50% and 10%
        // points run the sampled-mode harness path — subset contract against
        // the full oracle, then exact/bounded judging against the sampled
        // one — on every storage backend as the index advances.
        const char* samp = "";
        switch (idx % 4) {
          case 1:
            c.cfg.sampling_burst = 8;
            c.cfg.sampling_skip = 0;
            samp = "/samp100";
            break;
          case 2:
            c.cfg.sampling_burst = 4;
            c.cfg.sampling_skip = 4;
            samp = "/samp50";
            break;
          case 3:
            c.cfg.sampling_burst = 1;
            c.cfg.sampling_skip = 9;
            samp = "/samp10";
            break;
          default:
            break;  // sampling off
        }
        c.trace = tr.trace;
        c.name = std::string(sp.name) + "/" + queue_kind_name(queue) +
                 "/chunk" + std::to_string(chunk) + "/" +
                 wait_kind_name(c.cfg.wait) + "/w" +
                 std::to_string(c.cfg.workers) +
                 (c.cfg.load_balance.enabled ? "/lb" : "") +
                 (c.cfg.batched_detect ? "/batch" : "/perev") +
                 (c.cfg.dedup ? "/dedup" : "") + (c.cfg.pack ? "/pack" : "") +
                 samp + "/" + tr.name;
        cases.push_back(std::move(c));
        ++idx;
      }
    }
  }
  for (std::size_t s = 0; s < std::size(kStorages); ++s) {
    const StoragePoint& sp = kStorages[s];
    const NamedTrace& tr = traces[7 + (s % 2)];  // mt-pc / mt-churn
    FuzzCase c;
    c.cfg.storage = sp.storage;
    c.cfg.slots = sp.slots;
    c.cfg.sig_hash = sp.hash;
    c.cfg.mt_targets = true;
    c.cfg.queue = kQueues[s % 3];
    c.cfg.chunk_size = kChunkSizes[s % 3];
    c.cfg.wait = kWaits[s % 3];
    c.cfg.workers = 4;
    if (s % 2 == 1) c.cfg.load_balance = active_balancer();
    c.cfg.batched_detect = s % 2 == 0;
    // MT events never dedup (fresh timestamps), but the axes still alter
    // the replay path (RLE delivery, packed escape-heavy chunks) — keep
    // both exercised under MT too.
    c.cfg.dedup = s % 2 == 0;
    c.cfg.pack = (s / 2) % 2 == 0;
    c.trace = tr.trace;
    c.name = std::string(sp.name) + "/mt/" + queue_kind_name(c.cfg.queue) +
             "/chunk" + std::to_string(c.cfg.chunk_size) +
             (c.cfg.batched_detect ? "/batch" : "/perev") +
             (c.cfg.dedup ? "/dedup" : "") + (c.cfg.pack ? "/pack" : "") +
             "/" + tr.name;
    cases.push_back(std::move(c));
  }
  return cases;
}

/// One randomized case for the deep sweep.
FuzzCase random_case(Rng& rng, std::uint64_t seq) {
  GenParams p;
  p.accesses = 2000 + rng.below(18'000);
  p.distinct = 64 + rng.below(4000);
  p.write_ratio = 0.1 + 0.8 * rng.uniform();
  p.stride = 4u << rng.below(3);
  p.seed = rng();

  FuzzCase c;
  const std::uint64_t gen = rng.below(9);
  bool mt = false;
  const char* gname = "?";
  switch (gen) {
    case 0: c.trace = gen_uniform(p); gname = "uniform"; break;
    case 1: c.trace = gen_strided(p); gname = "strided"; break;
    case 2: c.trace = gen_zipf(p, 1.0 + rng.uniform()); gname = "zipf"; break;
    case 3:
      p.distinct = 32 + rng.below(512);
      c.trace = gen_loop(p, 4 + rng.below(64), rng.below(2) == 0);
      gname = "loop";
      break;
    case 4:
      p.distinct = 64 + rng.below(1024);
      c.trace = gen_churn(p, 0.1 + 0.4 * rng.uniform());
      gname = "churn";
      break;
    case 7:
      c.trace = gen_nest(p, 2 + static_cast<std::uint32_t>(rng.below(3)),
                         2 + static_cast<std::size_t>(rng.below(4)));
      gname = "nest";
      break;
    case 8:
      p.distinct = 64 + rng.below(1024);
      c.trace = gen_churn(p, 0.1 + 0.4 * rng.uniform(), 0,
                          1 + static_cast<unsigned>(rng.below(3)));
      gname = "churn-nest";
      break;
    case 5:
      c.trace = gen_mt_producer_consumer(
          p, 2 + static_cast<unsigned>(rng.below(7)), 16 + rng.below(256));
      gname = "mt-pc";
      mt = true;
      break;
    default:
      p.distinct = 64 + rng.below(1024);
      c.trace = gen_churn(p, 0.1 + 0.4 * rng.uniform(),
                          2 + static_cast<unsigned>(rng.below(7)));
      gname = "mt-churn";
      mt = true;
      break;
  }

  const StoragePoint& sp = kStorages[rng.below(std::size(kStorages))];
  c.cfg.storage = sp.storage;
  c.cfg.slots = sp.slots;
  c.cfg.sig_hash = sp.hash;
  c.cfg.mt_targets = mt;
  c.cfg.queue = kQueues[rng.below(3)];
  c.cfg.wait = kWaits[rng.below(3)];
  c.cfg.workers = kWorkerCounts[rng.below(4)];
  c.cfg.chunk_size = kChunkSizes[rng.below(3)];
  c.cfg.queue_capacity = 4u << rng.below(5);
  c.cfg.modulo_routing = rng.below(2) == 0;
  c.cfg.batched_detect = rng.below(2) == 0;
  c.cfg.dedup = rng.below(2) == 0;
  c.cfg.pack = rng.below(2) == 0;
  // Sampling axis: half the sequential cases run sampled with a random
  // burst/skip duty point (MT traces replay unsampled — the runtime gate is
  // sequential-targets-only, and the harness mirrors that).
  std::string samp;
  if (!mt && rng.below(2) == 0) {
    c.cfg.sampling_burst = 1 + static_cast<unsigned>(rng.below(8));
    c.cfg.sampling_skip = 1 + static_cast<unsigned>(rng.below(11));
    samp = "/samp" + std::to_string(c.cfg.sampling_burst) + "-" +
           std::to_string(c.cfg.sampling_skip);
  }
  if (rng.below(2) == 0) {
    c.cfg.load_balance = active_balancer();
    c.cfg.load_balance.sample_shift = static_cast<unsigned>(rng.below(4));
    c.cfg.load_balance.eval_interval_chunks = 4 + rng.below(64);
  }
  c.name = "deep#" + std::to_string(seq) + "/" + sp.name + "/" + gname +
           (mt ? "/mt" : "") + samp;
  return c;
}

/// Deterministic-schedule lattice (ISSUE 7): queue x wait x pack at 2 and 8
/// workers, exact-expectation storages only (sig-exact / perfect alternate)
/// so any schedule-dependent divergence is a hard byte-level failure, with
/// the exploration seed and algorithm varied per case.  `extra` appends
/// that many additional seeds on the flake-shaped point — unpacked staging,
/// eight workers, the default SPSC/park transport — which is where the
/// cross-attribution bug this lattice exists to catch actually lived.
std::vector<FuzzCase> schedule_cases(std::uint64_t seed, std::size_t extra) {
  // Smaller traces than the plain smoke gate: every hand-off runs through
  // the controller (one grant per point), so case cost scales with the
  // point count, and 2.5k events already cross every chunk boundary kind.
  const std::vector<NamedTrace> traces = smoke_traces(2500, 800);
  std::vector<FuzzCase> cases;
  std::size_t idx = 0;
  auto make = [&](unsigned workers, QueueKind queue, WaitKind wait, bool pack,
                  std::uint64_t case_seed) {
    const StoragePoint& sp = kStorages[idx % 2 == 0 ? 0 : 2];
    FuzzCase c;
    c.cfg.storage = sp.storage;
    c.cfg.slots = sp.slots;
    c.cfg.sig_hash = sp.hash;
    c.cfg.workers = workers;
    c.cfg.queue = queue;
    c.cfg.wait = wait;
    c.cfg.pack = pack;
    c.cfg.dedup = (idx / 2) % 2 == 0;
    c.cfg.chunk_size = kChunkSizes[idx % 3];
    const NamedTrace& tr = traces[idx % 7];  // sequential traces only
    c.trace = tr.trace;
    c.sched = true;
    c.sched_spec.seed = case_seed;
    c.sched_spec.algo =
        idx % 2 == 0 ? sched::Algo::kRandomWalk : sched::Algo::kPct;
    c.name = std::string("sched/") + sp.name + "/w" + std::to_string(workers) +
             "/" + queue_kind_name(queue) + "/" + wait_kind_name(wait) +
             (pack ? "/pack" : "/nopack") + (c.cfg.dedup ? "/dedup" : "") +
             "/chunk" + std::to_string(c.cfg.chunk_size) + "/" + tr.name +
             "/" + sched::algo_name(c.sched_spec.algo) + "-seed" +
             std::to_string(case_seed);
    cases.push_back(std::move(c));
    ++idx;
  };
  for (const unsigned workers : {2u, 8u})
    for (const QueueKind queue : kQueues)
      for (const WaitKind wait : kWaits)
        for (const bool pack : {false, true})
          make(workers, queue, wait, pack, seed + idx);
  for (std::size_t i = 0; i < extra; ++i)
    make(8, QueueKind::kLockFreeSpsc, WaitKind::kPark, false,
         seed + 1000 + i);
  return cases;
}

/// Shrinks a failing case and (optionally) writes a corpus repro.  For a
/// scheduled case the ladder starts with the schedule itself (drop, then
/// truncate — see shrink_schedule); trace and config minimization then run
/// with the surviving schedule replayed, and the repro is written in the v4
/// format carrying it.
void handle_failure(const FuzzCase& c, const CaseOutcome& outcome,
                    const std::string& corpus_dir, std::size_t failure_no) {
  std::fprintf(stderr, "FAIL %s (%s expectation)\n%s\n", c.name.c_str(),
               expectation_name(outcome.expectation), outcome.detail.c_str());

  ReproCase repro;
  ShrinkStats st;
  if (c.sched) {
    // The failing exploration recorded the interleaving it took; replaying
    // that recording (not re-exploring) is what makes the shrink predicate
    // deterministic.
    const SchedFailurePredicate sched_fails =
        [&](const Trace& t, const ProfilerConfig& cfg,
            const sched::ScheduleTrace* schedule) {
          if (schedule == nullptr) return !run_case(t, cfg).ok;
          SchedSpec spec = c.sched_spec;
          spec.replay = *schedule;
          return !run_case(t, cfg, &spec).ok;
        };
    bool dropped = false;
    repro.schedule = shrink_schedule(c.trace, c.cfg, outcome.schedule,
                                     sched_fails, &st, &dropped);
    std::fprintf(stderr, "schedule shrunk: %zu -> %zu steps%s\n",
                 st.initial_events, st.final_events,
                 dropped ? " (dropped: fails free-running)" : "");
    repro.sched = !dropped;
    repro.sched_seed = c.sched_spec.seed;
    repro.sched_algo = c.sched_spec.algo;
    const FailurePredicate still_fails =
        [&](const Trace& t, const ProfilerConfig& cfg) {
          return sched_fails(t, cfg, repro.sched ? &repro.schedule : nullptr);
        };
    st = ShrinkStats{};
    repro.trace = shrink_trace(c.trace, c.cfg, still_fails, 400, &st);
    repro.cfg = shrink_config(repro.trace, c.cfg, still_fails);
  } else {
    const FailurePredicate still_fails =
        [](const Trace& t, const ProfilerConfig& cfg) {
          return !run_case(t, cfg).ok;
        };
    repro.trace = shrink_trace(c.trace, c.cfg, still_fails, 400, &st);
    repro.cfg = shrink_config(repro.trace, c.cfg, still_fails);
  }
  std::fprintf(stderr,
               "shrunk: %zu -> %zu events in %zu evaluations\n",
               st.initial_events, st.final_events, st.evaluations);

  if (corpus_dir.empty()) return;
  repro.note = c.name;
  std::error_code ec;
  std::filesystem::create_directories(corpus_dir, ec);
  const std::string path =
      corpus_dir + "/depfuzz-" + std::to_string(failure_no) + ".repro";
  if (write_repro(repro, path))
    std::fprintf(stderr, "repro written to %s\n", path.c_str());
  else
    std::fprintf(stderr, "could not write repro to %s\n", path.c_str());
}

int run_cases(const std::vector<FuzzCase>& cases,
              const std::string& corpus_dir) {
  std::size_t failures = 0;
  for (const FuzzCase& c : cases) {
    const CaseOutcome outcome =
        run_case(c.trace, c.cfg, c.sched ? &c.sched_spec : nullptr);
    if (outcome.ok) continue;
    handle_failure(c, outcome, corpus_dir, failures);
    ++failures;
  }
  std::printf("depfuzz: %zu/%zu cases hold\n", cases.size() - failures,
              cases.size());
  return failures == 0 ? 0 : 1;
}

int replay_file(const std::string& path) {
  ReproCase repro;
  std::string error;
  if (!read_repro(repro, path, &error)) {
    std::fprintf(stderr, "depfuzz: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  SchedSpec spec;
  if (repro.sched) {
    spec.seed = repro.sched_seed;
    spec.algo = repro.sched_algo;
    spec.replay = repro.schedule;
  }
  const CaseOutcome outcome =
      run_case(repro.trace, repro.cfg, repro.sched ? &spec : nullptr);
  if (!outcome.ok) {
    std::fprintf(stderr, "FAIL %s%s%s (%s expectation)\n%s\n", path.c_str(),
                 repro.note.empty() ? "" : ": ", repro.note.c_str(),
                 expectation_name(outcome.expectation), outcome.detail.c_str());
    return 1;
  }
  std::printf("ok %s (%zu events, %s expectation%s)\n", path.c_str(),
              repro.trace.size(), expectation_name(outcome.expectation),
              repro.sched ? ", scheduled" : "");
  return 0;
}

int replay_dir(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec))
    if (entry.path().extension() == ".repro")
      paths.push_back(entry.path().string());
  if (ec) {
    std::fprintf(stderr, "depfuzz: cannot read %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }
  if (paths.empty()) {
    std::fprintf(stderr, "depfuzz: no .repro files under %s\n", dir.c_str());
    return 1;
  }
  std::sort(paths.begin(), paths.end());
  int rc = 0;
  for (const std::string& path : paths)
    if (replay_file(path) != 0) rc = 1;
  return rc;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: depfuzz --smoke [--corpus DIR]\n"
      "       depfuzz --deep [--runs N] [--seconds S] [--seed S] [--corpus DIR]\n"
      "       depfuzz --schedules [--runs N] [--seed S] [--corpus DIR]\n"
      "       depfuzz --replay FILE | --replay-dir DIR | --list\n");
  return 2;
}

int depfuzz_main(int argc, char** argv) {
  enum class Mode { kNone, kSmoke, kDeep, kSchedules, kReplay, kReplayDir,
                    kList };
  Mode mode = Mode::kNone;
  std::string corpus_dir, replay_path;
  std::uint64_t seed = 1;
  std::size_t runs = 200;
  bool runs_set = false;
  long seconds = 0;

  auto value = [&](int& i) -> const char* {
    return i + 1 < argc ? argv[++i] : nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") mode = Mode::kSmoke;
    else if (arg == "--deep") mode = Mode::kDeep;
    else if (arg == "--schedules") mode = Mode::kSchedules;
    else if (arg == "--list") mode = Mode::kList;
    else if (arg == "--replay") {
      mode = Mode::kReplay;
      const char* v = value(i);
      if (v == nullptr) return usage();
      replay_path = v;
    } else if (arg == "--replay-dir") {
      mode = Mode::kReplayDir;
      const char* v = value(i);
      if (v == nullptr) return usage();
      replay_path = v;
    } else if (arg == "--corpus") {
      const char* v = value(i);
      if (v == nullptr) return usage();
      corpus_dir = v;
    } else if (arg == "--seed") {
      const char* v = value(i);
      if (v == nullptr) return usage();
      seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--runs") {
      const char* v = value(i);
      if (v == nullptr) return usage();
      runs = std::strtoull(v, nullptr, 0);
      runs_set = true;
    } else if (arg == "--seconds") {
      const char* v = value(i);
      if (v == nullptr) return usage();
      seconds = std::strtol(v, nullptr, 0);
    } else {
      return usage();
    }
  }

  switch (mode) {
    case Mode::kList: {
      for (const FuzzCase& c : smoke_cases())
        std::printf("%s (%zu events)\n", c.name.c_str(), c.trace.size());
      return 0;
    }
    case Mode::kSmoke:
      return run_cases(smoke_cases(), corpus_dir);
    case Mode::kSchedules:
      // The 36-case lattice is the bounded PR gate; --runs N appends N
      // extra exploration seeds for the nightly sweep.
      return run_cases(schedule_cases(seed, runs_set ? runs : 0), corpus_dir);
    case Mode::kDeep: {
      Rng rng(seed);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
      std::size_t failures = 0, executed = 0;
      for (std::size_t i = 0; i < runs; ++i) {
        if (seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
        const FuzzCase c = random_case(rng, i);
        const CaseOutcome outcome = run_case(c.trace, c.cfg);
        ++executed;
        if (!outcome.ok) {
          handle_failure(c, outcome, corpus_dir, failures);
          ++failures;
        }
      }
      std::printf("depfuzz: %zu/%zu cases hold (seed %llu)\n",
                  executed - failures, executed,
                  static_cast<unsigned long long>(seed));
      return failures == 0 ? 0 : 1;
    }
    case Mode::kReplay:
      return replay_file(replay_path);
    case Mode::kReplayDir:
      return replay_dir(replay_path);
    case Mode::kNone:
      break;
  }
  return usage();
}

}  // namespace
}  // namespace depprof

int main(int argc, char** argv) { return depprof::depfuzz_main(argc, argv); }
