// depprof — command-line front end.
//
// Profiles a bundled workload (or a recorded trace file) under a chosen
// profiler configuration and emits dependences in the paper's text format,
// CSV, or Graphviz DOT, optionally running analysis plugins.
//
// Usage:
//   depprof list
//   depprof plugins
//   depprof run <workload> [options]
//   depprof replay <trace-file> [options]
//   depprof report <workload> [options]   loop-parallelism verdicts over the
//                        run's loop-nest tree (DOALL-safe / reduction-suspect
//                        / serial), text by default
//
// Options:
//   --storage signature|perfect|shadow|hashtable|packed
//                        (default signature; packed = SLAMP-style paged
//                        shadow memory with packed 64-bit words — exact,
//                        memory proportional to touched pages)
//   --slots N            signature slots per signature   (default 1M)
//   --parallel           use the Fig. 2 pipeline
//   --workers N          pipeline workers                 (default 8)
//   --queue lockfree|mpmc|mutex                          (default lockfree)
//   --wait spin|yield|park   pipeline wait strategy at the blocking sites
//                        (idle workers, full queues, migration mailbox;
//                        default park — see src/queue/wait_strategy.hpp)
//   --batch / --no-batch run detection with the batched prefetching kernel
//                        or the per-event kernel (default --batch; results
//                        are byte-identical either way)
//   --dedup / --no-dedup front-end redundancy elision: collapse exact access
//                        repeats at record time (default --dedup; the merged
//                        map is identical either way — see DESIGN.md
//                        "Front-end event reduction")
//   --pack / --no-pack   compact chunk encoding: carry accesses as 16-byte
//                        delta records on the pipeline queues (default
//                        --pack; parallel runs only — the serial profiler
//                        has no queue to pack)
//   --budget F           overhead-budget sampling: adapt the burst duty
//                        cycle so profiling overhead tracks fraction F of
//                        target runtime (0 < F < 1; default 1 = profile
//                        everything).  Sequential targets only.
//   --burst N            profiled outermost-loop iterations per burst
//                        (default 8)
//   --skip N             fixed skipped iterations per cycle (deterministic
//                        sampling; overrides the --budget controller)
//   --races              first-class race mode (Sec. V-B): print the run's
//                        potential-data-race report (text, or JSON with
//                        --json) instead of the dependence listing.  Needs
//                        an MT target (--mt-threads for run, an MT-recorded
//                        trace for replay) and rejects the sampling flags —
//                        a dropped event can hide the reversal that
//                        confirms a race
//   --mt-threads N       run the pthread variant with N target threads
//   --scale N            workload scale factor            (default 1)
//   --format text|csv|dot                                (default text)
//   --distances          annotate per-level carried-distance buckets
//                        (text format): each level prints d0|d1|d2p — the
//                        iteration-local, distance-1, and distance>=2-or-
//                        unknown instance counts at that nest level
//   --json               (report) emit the report as JSON
//   --check              (report) score verdicts against the workload's
//                        OpenMP ground truth; exit 1 on any mismatch
//   --plugin NAME        run an analysis plugin (repeatable; 'all' = every)
//   --stats              print run statistics and the per-stage pipeline
//                        counters (produce/route/detect/merge); rendered as
//                        CSV or JSON when --format csv|json is given

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "core/formatter.hpp"
#include "framework/plugin.hpp"
#include "obs/report.hpp"
#include "framework/program_model.hpp"
#include "harness/runner.hpp"
#include "instrument/runtime.hpp"
#include "mt/race_report.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

using namespace depprof;

namespace {

int usage() {
  std::fputs(
      "usage: depprof <list|plugins|run <workload>|replay <trace>|"
      "report <workload>> [options]\n"
      "see the header of tools/depprof_cli.cpp or README.md for options\n",
      stderr);
  return 2;
}

struct CliOptions {
  ProfilerConfig cfg;
  bool parallel = false;
  unsigned mt_threads = 0;
  int scale = 1;
  std::string format = "text";
  bool distances = false;
  std::vector<std::string> plugins;
  bool stats = false;
  bool report_json = false;
  bool report_check = false;
  bool races = false;
};

bool parse(int argc, char** argv, int start, CliOptions& out) {
  bool saw_budget = false, saw_burst = false, saw_skip = false;
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--storage") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "signature") == 0)
        out.cfg.storage = StorageKind::kSignature;
      else if (std::strcmp(v, "perfect") == 0)
        out.cfg.storage = StorageKind::kPerfect;
      else if (std::strcmp(v, "shadow") == 0)
        out.cfg.storage = StorageKind::kShadow;
      else if (std::strcmp(v, "hashtable") == 0)
        out.cfg.storage = StorageKind::kHashTable;
      else if (std::strcmp(v, "packed") == 0)
        out.cfg.storage = StorageKind::kPacked;
      else
        return false;
    } else if (arg == "--slots") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cfg.slots = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--parallel") {
      out.parallel = true;
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cfg.workers = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--queue") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "mutex") == 0)
        out.cfg.queue = QueueKind::kMutex;
      else if (std::strcmp(v, "lockfree") == 0)
        out.cfg.queue = QueueKind::kLockFreeSpsc;
      else if (std::strcmp(v, "mpmc") == 0)
        out.cfg.queue = QueueKind::kLockFreeMpmc;
      else
        return false;
    } else if (arg == "--wait") {
      const char* v = next();
      if (v == nullptr || !parse_wait_kind(v, out.cfg.wait)) return false;
    } else if (arg == "--batch") {
      out.cfg.batched_detect = true;
    } else if (arg == "--no-batch") {
      out.cfg.batched_detect = false;
    } else if (arg == "--dedup") {
      out.cfg.dedup = true;
    } else if (arg == "--no-dedup") {
      out.cfg.dedup = false;
    } else if (arg == "--pack") {
      out.cfg.pack = true;
    } else if (arg == "--no-pack") {
      out.cfg.pack = false;
    } else if (arg == "--budget") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cfg.budget = std::atof(v);
      if (out.cfg.budget <= 0.0 || out.cfg.budget > 1.0) return false;
      saw_budget = true;
    } else if (arg == "--burst") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cfg.sampling_burst = static_cast<unsigned>(std::atoi(v));
      if (out.cfg.sampling_burst == 0) return false;
      saw_burst = true;
    } else if (arg == "--skip") {
      const char* v = next();
      if (v == nullptr) return false;
      out.cfg.sampling_skip = static_cast<unsigned>(std::atoi(v));
      saw_skip = true;
    } else if (arg == "--races") {
      out.races = true;
    } else if (arg == "--mt-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      out.mt_threads = static_cast<unsigned>(std::atoi(v));
      out.parallel = true;
    } else if (arg == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      out.scale = std::atoi(v);
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return false;
      out.format = v;
    } else if (arg == "--distances") {
      out.distances = true;
    } else if (arg == "--plugin") {
      const char* v = next();
      if (v == nullptr) return false;
      out.plugins.emplace_back(v);
    } else if (arg == "--stats") {
      out.stats = true;
    } else if (arg == "--json") {
      out.report_json = true;
    } else if (arg == "--check") {
      out.report_check = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  if (out.races) {
    // Hard reject, not a warning: the sampling subset guarantee covers
    // dependence edges, not race candidates — one dropped event can hide
    // the reversal that confirms a race, silently under-reporting.
    if (saw_budget || saw_burst || saw_skip) {
      std::fputs(
          "--races cannot be combined with sampling "
          "(--budget/--burst/--skip): a dropped event can hide the "
          "reversal that confirms a race\n",
          stderr);
      return false;
    }
    out.cfg.races = true;
    out.cfg.mt_targets = true;  // replay of MT-recorded traces
  }
  return true;
}

void emit(const ProgramModel& model, const CliOptions& opts) {
  if (opts.races) {
    const RaceReport report = find_races(model.deps());
    if (opts.report_json || opts.format == "json")
      std::fputs(race_report_json(report).c_str(), stdout);
    else
      std::fputs(format_race_report(report).c_str(), stdout);
  } else if (opts.format == "csv") {
    std::fputs(deps_csv(model.deps()).c_str(), stdout);
  } else if (opts.format == "dot") {
    std::fputs(model.dep_graph().to_dot().c_str(), stdout);
  } else {
    FormatOptions fmt;
    fmt.show_tids = opts.mt_threads > 0;
    fmt.show_distances = opts.distances;
    std::fputs(format_deps(model.deps(), &model.control_flow(), fmt).c_str(),
               stdout);
  }

  for (const std::string& name : opts.plugins) {
    if (name == "all") {
      for (AnalysisPlugin* p : PluginRegistry::instance().all())
        std::printf("\n== plugin %s ==\n%s", p->name().c_str(),
                    p->run(model).c_str());
      continue;
    }
    AnalysisPlugin* p = PluginRegistry::instance().find(name);
    if (p == nullptr) {
      std::fprintf(stderr, "unknown plugin '%s' (try `depprof plugins`)\n",
                   name.c_str());
      continue;
    }
    std::printf("\n== plugin %s ==\n%s", p->name().c_str(),
                p->run(model).c_str());
  }

  if (opts.stats) {
    const ProfilerStats& st = model.stats();
    std::printf("\n# events=%llu chunks=%llu workers=%u merged=%zu "
                "instances=%llu redistributions=%u sig_bytes=%zu\n",
                static_cast<unsigned long long>(st.events),
                static_cast<unsigned long long>(st.chunks), st.workers,
                model.deps().size(),
                static_cast<unsigned long long>(model.deps().instances()),
                st.redistribution_rounds, st.signature_bytes);
    if (opts.format == "csv")
      std::fputs(obs::snapshot_csv(st.stages).c_str(), stdout);
    else if (opts.format == "json")
      std::printf("%s\n", obs::snapshot_json(st.stages).c_str());
    else
      std::fputs(obs::snapshot_text(st.stages).c_str(), stdout);
  }
}

/// Profiles `w` under `opts` and builds the run's program model.  Returns
/// false when the configuration is unsupported.
bool profile_workload(const Workload& w, const CliOptions& opts,
                      ProgramModel& out) {
  ProfilerConfig cfg = opts.cfg;
  if (opts.mt_threads > 0) cfg.mt_targets = true;

  Runtime::instance().reset();
  // DEPPROF_SCHED=1 runs the pipeline under the deterministic schedule
  // controller (see harness/runner.hpp); sequential targets only — an MT
  // target's joins would stall the schedule.
  SchedEnvSession sched_session(opts.parallel && opts.mt_threads == 0);
  auto profiler = opts.parallel ? make_parallel_profiler(cfg)
                                : make_serial_profiler(cfg);
  if (!profiler) {
    std::fprintf(stderr, "storage kind not supported by this pipeline\n");
    return false;
  }
  SamplingConfig sampling;
  sampling.budget = cfg.budget;
  sampling.burst = cfg.sampling_burst;
  sampling.skip = cfg.sampling_skip;
  Runtime::instance().attach(profiler.get(), cfg.mt_targets, cfg.dedup,
                             sampling);
  if (opts.mt_threads > 0 && w.run_parallel)
    (void)w.run_parallel(opts.scale, opts.mt_threads);
  else
    (void)w.run(opts.scale);
  Runtime::instance().detach();
  out = ProgramModel::from_run(*profiler);
  return true;
}

int cmd_run(const char* name, const CliOptions& opts) {
  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try `depprof list`)\n", name);
    return 1;
  }
  if (opts.races && opts.mt_threads == 0) {
    std::fputs("--races needs an MT target: pass --mt-threads N\n", stderr);
    return usage();
  }
  if (opts.races && !w->run_parallel) {
    std::fprintf(stderr, "workload '%s' has no pthread variant to race\n",
                 name);
    return 1;
  }
  ProgramModel model;
  if (!profile_workload(*w, opts, model)) return 1;
  emit(model, opts);
  return 0;
}

int cmd_report(const char* name, const CliOptions& opts) {
  const Workload* w = find_workload(name);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try `depprof list`)\n", name);
    return 1;
  }
  ProgramModel model;
  if (!profile_workload(*w, opts, model)) return 1;

  LoopAnalysisOptions ao;
  ao.reduction_lines = model.reduction_lines();
  const std::vector<LoopVerdict> verdicts =
      analyze_loops(model.deps(), model.control_flow(), ao);
  ReportOptions ro;
  ro.json = opts.report_json;
  std::fputs(render_loop_report(verdicts, model.control_flow(), ro).c_str(),
             stdout);

  if (opts.report_check) {
    std::vector<LoopExpectation> truth;
    truth.reserve(w->loops.size());
    for (const LoopTruth& t : w->loops)
      truth.push_back({t.label, t.parallelizable});
    const ReportCheck chk = check_verdicts(verdicts, truth);
    std::printf("check: %u/%u loops match ground truth\n", chk.matched,
                chk.total);
    for (const std::string& m : chk.mismatches)
      std::printf("  mismatch: %s\n", m.c_str());
    if (!chk.ok()) return 1;
  }
  return 0;
}

int cmd_replay(const char* path, const CliOptions& opts) {
  Trace trace;
  if (!read_trace(trace, path)) {
    std::fprintf(stderr, "cannot read trace '%s'\n", path);
    return 1;
  }
  auto profiler = opts.parallel ? make_parallel_profiler(opts.cfg)
                                : make_serial_profiler(opts.cfg);
  if (!profiler) {
    std::fprintf(stderr, "storage kind not supported by this pipeline\n");
    return 1;
  }
  Runtime::instance().reset();
  replay(trace, *profiler);
  emit(ProgramModel(profiler->take_dependences(), {}, {}, {},
                    profiler->stats()),
       opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    for (const auto& w : all_workloads())
      std::printf("%-14s %-10s %s\n", w.name.c_str(), w.suite.c_str(),
                  w.run_parallel ? "(seq+pthread)" : "(seq)");
    return 0;
  }
  if (cmd == "plugins") {
    for (AnalysisPlugin* p : PluginRegistry::instance().all())
      std::printf("%-18s %s\n", p->name().c_str(), p->description().c_str());
    return 0;
  }
  if ((cmd == "run" || cmd == "replay" || cmd == "report") && argc >= 3) {
    CliOptions opts;
    if (!parse(argc, argv, 3, opts)) return usage();
    if (cmd == "run") return cmd_run(argv[2], opts);
    if (cmd == "report") return cmd_report(argv[2], opts);
    return cmd_replay(argv[2], opts);
  }
  return usage();
}
