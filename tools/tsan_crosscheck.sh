#!/bin/sh
# Cross-validates the profiler's race report (Sec. V-B) against
# ThreadSanitizer as an external oracle, in both directions, on the
# task-graph family:
#
#   depprof -> TSan   every var depprof confirms maps to a probe mode a
#                     native (profiler-free) TSan run also flags;
#   TSan -> depprof   the race-free DAG is silent under both tools.
#
# Wants a ThreadSanitizer build tree (-fsanitize=thread).  The depprof runs
# set TSAN_OPTIONS=exitcode=0 because the racy workload's *intentional*
# races would otherwise fail the profiling process itself; the probe runs
# use the default error exitcode as the corroboration signal.
#
# usage: tsan_crosscheck.sh <depprof-binary> <tsan_probe-binary>
set -eu

DEPPROF=${1:?usage: tsan_crosscheck.sh <depprof> <tsan_probe>}
PROBE=${2:?usage: tsan_crosscheck.sh <depprof> <tsan_probe>}

fail() { echo "tsan_crosscheck: FAIL: $*" >&2; exit 1; }

# Direction 1: depprof's report on the racy variant must confirm every
# injected site by name, and must confirm nothing on the race-free DAG.
# (stderr dropped: TSan rightly reports the workload's intentional races
# during the profiling run itself, which is noise here.)
json=$(TSAN_OPTIONS="exitcode=0" "$DEPPROF" run taskgraph-racy --races \
       --mt-threads 2 --storage perfect --format json 2>/dev/null) \
  || fail "depprof run on taskgraph-racy did not exit cleanly"
for var in race0 race1 race2; do
  echo "$json" | grep -q "\"var\": \"$var\".*\"confirmed\": true" \
    || fail "depprof did not confirm injected race '$var'"
done
clean=$(TSAN_OPTIONS="exitcode=0" "$DEPPROF" run taskgraph --races \
        --mt-threads 2 --storage perfect 2>/dev/null) \
  || fail "depprof run on taskgraph did not exit cleanly"
echo "$clean" | grep -q "0 confirmed" \
  || fail "depprof confirmed a race on the race-free DAG"

# Direction 2: TSan must corroborate each armed site on a native run (the
# probe exits with TSan's error exitcode when a race is reported) and must
# stay silent on the race-free mode.
for site in 0 1 2; do
  if TSAN_OPTIONS="exitcode=66" "$PROBE" "$site" >/dev/null 2>&1; then
    fail "TSan did not corroborate injected race site $site"
  fi
done
TSAN_OPTIONS="exitcode=66" "$PROBE" none >/dev/null 2>&1 \
  || fail "TSan flagged the race-free task graph"

echo "tsan_crosscheck: OK (3 sites corroborated, race-free DAG silent)"
