// Native task-graph runner for the external-oracle crosscheck
// (tsan_crosscheck.sh): runs the workload with no profiler attached, so a
// ThreadSanitizer build sees exactly the races the program itself
// contains — the injected ping-pong sites synchronize through relaxed
// atomics only (no happens-before), while every other edge in the DAG is
// ordered by the worker pool's mutex/condvar or an acquire/release
// rendezvous.
//
//   tsan_probe none    race-free DAG        (must be TSan-silent)
//   tsan_probe all     every site armed
//   tsan_probe <site>  one site armed       (0 .. kRaceSites-1)
//
// The probe itself always exits 0 on a valid mode; under a TSan build the
// runtime's default error exitcode (66) is the corroboration signal.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workloads/taskgraph/task_graph.hpp"

namespace {

int usage(const char* argv0) {
  using depprof::workloads::taskgraph::kRaceSites;
  std::fprintf(stderr, "usage: %s none|all|<site 0..%u>\n", argv0,
               kRaceSites - 1);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace depprof::workloads::taskgraph;
  if (argc != 2) return usage(argv[0]);
  unsigned mask = kRaceNone;
  if (std::strcmp(argv[1], "none") == 0) {
    mask = kRaceNone;
  } else if (std::strcmp(argv[1], "all") == 0) {
    mask = kRaceAll;
  } else {
    char* end = nullptr;
    const unsigned long site = std::strtoul(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || site >= kRaceSites)
      return usage(argv[0]);
    mask = 1u << static_cast<unsigned>(site);
    std::printf("site %lu -> var %s\n", site,
                race_var_name(static_cast<unsigned>(site)));
  }
  const std::uint64_t sum = run_task_graph(/*scale=*/1, /*threads=*/2, mask);
  std::printf("checksum: %llu\n", static_cast<unsigned long long>(sum));
  return 0;
}
