#pragma once
// Dependence graph (Sec. VIII framework representation).
//
// Nodes are source locations (statements); a directed edge source -> sink
// exists for every merged dependence (the source statement's access happens
// first).  Supports the queries dependence-based analyses need — outgoing/
// incoming dependences of a statement, reachability along RAW chains — and
// Graphviz DOT export for visual inspection.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dep.hpp"

namespace depprof {

struct DepEdge {
  std::uint32_t src_loc = 0;   ///< earlier access (0 for INIT pseudo-edges)
  std::uint32_t sink_loc = 0;  ///< later access
  DepType type = DepType::kRaw;
  std::uint32_t var = 0;
  std::uint64_t count = 0;
  std::uint8_t flags = 0;
};

class DepGraph {
 public:
  explicit DepGraph(const DepMap& deps);

  /// All statement locations appearing as an endpoint, sorted.
  const std::vector<std::uint32_t>& nodes() const { return nodes_; }

  /// Dependences whose *source* is `loc` (statements depending on loc).
  std::vector<const DepEdge*> out_edges(std::uint32_t loc) const;

  /// Dependences whose *sink* is `loc` (statements loc depends on).
  std::vector<const DepEdge*> in_edges(std::uint32_t loc) const;

  /// Locations reachable from `loc` along RAW edges (dataflow cone);
  /// excludes `loc` itself unless it sits on a RAW cycle.
  std::vector<std::uint32_t> raw_reachable(std::uint32_t loc) const;

  /// True if any RAW cycle exists (a recurrence — the dataflow pattern
  /// behind non-parallelizable loops).
  bool has_raw_cycle() const;

  std::size_t edge_count() const { return edges_.size(); }

  /// Graphviz DOT rendering; RAW edges solid, WAR/WAW dashed, loop-carried
  /// edges red.
  std::string to_dot() const;

 private:
  std::vector<DepEdge> edges_;
  std::vector<std::uint32_t> nodes_;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> out_;  // loc -> edge idx
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> in_;
};

}  // namespace depprof
