#pragma once
// Loop table (Sec. VIII framework representation).
//
// One row per instrumented loop, aggregating the control-flow record with
// the dependences whose endpoints fall inside the loop body: instrumented
// work, carried-RAW count (the parallelization blockers), and the verdict
// of the Sec. VII-A analysis.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/loop_parallelism.hpp"
#include "core/dep.hpp"
#include "trace/control_flow.hpp"

namespace depprof {

struct LoopRow {
  LoopRecord loop;
  std::uint64_t dep_instances = 0;   ///< dependence instances inside the body
  std::size_t dep_kinds = 0;         ///< merged dependences inside the body
  std::size_t carried_raw = 0;       ///< carried RAW deps attributed to this loop
  /// Smallest carried-RAW distance bucket attributed to this loop: 1 =
  /// adjacent iterations conflict, 2 = a gap of at least one independent
  /// iteration (or unknown for very deep nests), 0 = no carried RAW.
  std::uint32_t min_carried_bucket = 0;
  LoopVerdictKind verdict = LoopVerdictKind::kDoallSafe;
  bool parallelizable = true;
};

class LoopTable {
 public:
  LoopTable(const DepMap& deps, const ControlFlowLog& cf,
            const std::vector<std::uint32_t>& reduction_lines);

  const std::vector<LoopRow>& rows() const { return rows_; }

  /// Row for the loop whose entry location is `loop_id`; nullptr if absent.
  const LoopRow* find(std::uint32_t loop_id) const;

  /// Column-aligned text rendering.
  std::string render() const;

 private:
  std::vector<LoopRow> rows_;
};

}  // namespace depprof
