#include "framework/loop_table.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace depprof {

LoopTable::LoopTable(const DepMap& deps, const ControlFlowLog& cf,
                     const std::vector<std::uint32_t>& reduction_lines) {
  LoopAnalysisOptions opts;
  opts.reduction_lines = reduction_lines;
  const auto verdicts = analyze_loops(deps, cf, opts);

  auto is_reduction = [&](const DepKey& key) {
    if (key.sink_loc != key.src_loc) return false;
    for (auto loc : reduction_lines)
      if (loc == key.sink_loc) return true;
    return false;
  };

  rows_.reserve(cf.loops.size());
  for (std::size_t i = 0; i < cf.loops.size(); ++i) {
    LoopRow row;
    row.loop = cf.loops[i];
    for (const auto& [key, info] : deps) {
      const SourceLocation sink = SourceLocation::from_packed(key.sink_loc);
      if (!row.loop.contains(sink)) continue;
      // Work accounting is sink-based: every dependence instance whose later
      // access executes inside the body counts as body work.
      row.dep_instances += info.count;
      row.dep_kinds += 1;
      // Carried attribution comes straight from the per-level nest data,
      // consistent with the verdict; the reduction hints are respected.
      if (key.type == DepType::kRaw && info.carried_by(row.loop.loop_id) &&
          !is_reduction(key)) {
        row.carried_raw += 1;
        // The level attributed to this loop narrows the distance bucket.
        for (std::size_t d = 0; d < kNestLevels; ++d) {
          const DepLevel& lvl = info.levels[d];
          if (lvl.loop != row.loop.loop_id || lvl.carried() == 0) continue;
          const std::uint32_t bucket = lvl.d1 != 0 ? 1 : 2;
          row.min_carried_bucket =
              row.min_carried_bucket == 0
                  ? bucket
                  : std::min(row.min_carried_bucket, bucket);
        }
      }
    }
    if (i < verdicts.size()) {
      row.verdict = verdicts[i].kind;
      row.parallelizable = verdicts[i].parallelizable();
    }
    rows_.push_back(std::move(row));
  }
}

const LoopRow* LoopTable::find(std::uint32_t loop_id) const {
  for (const auto& row : rows_)
    if (row.loop.loop_id == loop_id) return &row;
  return nullptr;
}

std::string LoopTable::render() const {
  TextTable t("loop table");
  t.set_header({"loop", "iterations", "entries", "deps", "instances",
                "carried RAW", "min bucket", "verdict"});
  for (const auto& row : rows_) {
    t.add_row({SourceLocation::from_packed(row.loop.begin_loc).str() + "-" +
                   SourceLocation::from_packed(row.loop.end_loc).str(),
               std::to_string(row.loop.iterations),
               std::to_string(row.loop.entries), std::to_string(row.dep_kinds),
               std::to_string(row.dep_instances),
               std::to_string(row.carried_raw),
               row.min_carried_bucket == 0
                   ? "-"
                   : row.min_carried_bucket == 1 ? "1" : "2+",
               loop_verdict_name(row.verdict)});
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

}  // namespace depprof
