#include "framework/plugin.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/comm_matrix.hpp"
#include "analysis/loop_parallelism.hpp"
#include "common/table.hpp"
#include "mt/race_report.hpp"

namespace depprof {
namespace {

class LoopParallelismPlugin final : public AnalysisPlugin {
 public:
  std::string name() const override { return "loop-parallelism"; }
  std::string description() const override {
    return "DiscoPoP-style parallelizable-loop discovery (Sec. VII-A)";
  }
  std::string run(const ProgramModel& model) override {
    LoopAnalysisOptions opts;
    opts.reduction_lines = model.reduction_lines();
    return format_loop_verdicts(
        analyze_loops(model.deps(), model.control_flow(), opts));
  }
};

class CommMatrixPlugin final : public AnalysisPlugin {
 public:
  std::string name() const override { return "comm-matrix"; }
  std::string description() const override {
    return "producer/consumer communication matrix from cross-thread RAW "
           "dependences (Sec. VII-B)";
  }
  std::string run(const ProgramModel& model) override {
    return format_comm_matrix(build_comm_matrix(model.deps()));
  }
};

class RaceReportPlugin final : public AnalysisPlugin {
 public:
  std::string name() const override { return "race-report"; }
  std::string description() const override {
    return "potential data races from timestamp reversals (Sec. V-B)";
  }
  std::string run(const ProgramModel& model) override {
    return format_race_report(find_races(model.deps()));
  }
};

class HotDepsPlugin final : public AnalysisPlugin {
 public:
  explicit HotDepsPlugin(std::size_t top_n) : top_n_(top_n) {}
  std::string name() const override { return "hot-deps"; }
  std::string description() const override {
    return "dependences ranked by dynamic instance count";
  }
  std::string run(const ProgramModel& model) override {
    auto sorted = model.deps().sorted();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.count > b.second.count;
                     });
    std::ostringstream os;
    const std::size_t n = std::min(top_n_, sorted.size());
    for (std::size_t i = 0; i < n; ++i) {
      const auto& [key, info] = sorted[i];
      os << dep_type_name(key.type) << ' '
         << SourceLocation::from_packed(key.sink_loc).str() << " <- ";
      if (key.type == DepType::kInit)
        os << '*';
      else
        os << SourceLocation::from_packed(key.src_loc).str();
      os << " (" << var_registry().name(key.var) << ") x" << info.count
         << '\n';
    }
    return os.str();
  }

 private:
  std::size_t top_n_;
};

/// Kremlin-flavoured estimate: a loop with no carried RAW can run its
/// iterations concurrently (self-parallelism ~ iteration count); a carried
/// recurrence limits it to the carried dependence distance (d independent
/// consecutive iterations; distance-1 recurrences serialize fully).  Loops
/// are ranked by expected benefit = instrumented work inside the body x
/// (1 - 1/SP) — the savings an ideal parallelization would realize.
class SelfParallelismPlugin final : public AnalysisPlugin {
 public:
  std::string name() const override { return "self-parallelism"; }
  std::string description() const override {
    return "Kremlin-style per-loop parallelism estimate and benefit ranking";
  }
  std::string run(const ProgramModel& model) override {
    const LoopTable& table = model.loop_table();
    struct Row {
      const LoopRow* row;
      double sp;
      double benefit;
    };
    std::vector<Row> rows;
    for (const auto& r : table.rows()) {
      const double iters =
          std::max<double>(1.0, static_cast<double>(r.loop.iterations) /
                                    std::max<std::uint64_t>(1, r.loop.entries));
      // Bucketed distances: a d=1 recurrence serializes fully (SP 1); a
      // carried dependence with only d>=2 instances leaves at least one
      // independent iteration between conflicting ones (SP 2).
      const double sp =
          r.parallelizable
              ? iters
              : std::min(iters, std::max(1.0, static_cast<double>(
                                                  r.min_carried_bucket)));
      const double work = static_cast<double>(r.dep_instances);
      rows.push_back({&r, sp, work * (1.0 - 1.0 / std::max(1.0, sp))});
    }
    std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.benefit > b.benefit;
    });

    TextTable t("self-parallelism (ranked by expected benefit)");
    t.set_header({"loop", "iters/entry", "self-parallelism", "work", "benefit"});
    for (const auto& r : rows) {
      t.add_row({SourceLocation::from_packed(r.row->loop.begin_loc).str(),
                 TextTable::num(static_cast<double>(r.row->loop.iterations) /
                                    std::max<std::uint64_t>(1, r.row->loop.entries),
                                0),
                 TextTable::num(r.sp, 0),
                 std::to_string(r.row->dep_instances),
                 TextTable::num(r.benefit, 0)});
    }
    std::ostringstream os;
    t.print(os);
    return os.str();
  }
};

/// Alchemist-style distance report: for every carried RAW dependence, one
/// row per attributed nest level with the carrying loop and the carry-
/// distance buckets.  A carried dependence whose d=1 bucket is empty leaves
/// a gap of independent iterations — blocking/unrolling (or skewing) may
/// still apply, which is why distance profilers exist.
class DepDistancePlugin final : public AnalysisPlugin {
 public:
  std::string name() const override { return "dep-distance"; }
  std::string description() const override {
    return "carried iteration distances of RAW dependences (Alchemist-style)";
  }
  std::string run(const ProgramModel& model) override {
    TextTable t("carried RAW dependence distances");
    t.set_header({"sink", "source", "var", "loop", "level", "instances",
                  "d=1", "d>=2", "note"});
    for (const auto& [key, info] : model.deps().sorted()) {
      if (key.type != DepType::kRaw || (info.flags & kLoopCarried) == 0)
        continue;
      for (std::size_t d = 0; d < kNestLevels; ++d) {
        const DepLevel& lvl = info.levels[d];
        if (lvl.carried() == 0) continue;
        const char* note = lvl.d1 != 0
                               ? "serializing recurrence"
                               : "gapped: blocking/unrolling may apply";
        t.add_row({SourceLocation::from_packed(key.sink_loc).str(),
                   SourceLocation::from_packed(key.src_loc).str(),
                   var_registry().name(key.var),
                   SourceLocation::from_packed(lvl.loop).str(),
                   std::to_string(d + 1), std::to_string(info.count),
                   std::to_string(lvl.d1), std::to_string(lvl.d2p), note});
      }
    }
    std::ostringstream os;
    t.print(os);
    return os.str();
  }
};

}  // namespace

PluginRegistry& PluginRegistry::instance() {
  static PluginRegistry registry = [] {
    PluginRegistry r;
    r.add(make_loop_parallelism_plugin());
    r.add(make_comm_matrix_plugin());
    r.add(make_race_report_plugin());
    r.add(make_hot_deps_plugin());
    r.add(make_self_parallelism_plugin());
    r.add(make_dep_distance_plugin());
    return r;
  }();
  return registry;
}

void PluginRegistry::add(std::unique_ptr<AnalysisPlugin> plugin) {
  plugins_.push_back(std::move(plugin));
}

AnalysisPlugin* PluginRegistry::find(const std::string& name) const {
  for (const auto& p : plugins_)
    if (p->name() == name) return p.get();
  return nullptr;
}

std::vector<AnalysisPlugin*> PluginRegistry::all() const {
  std::vector<AnalysisPlugin*> out;
  out.reserve(plugins_.size());
  for (const auto& p : plugins_) out.push_back(p.get());
  return out;
}

std::unique_ptr<AnalysisPlugin> make_loop_parallelism_plugin() {
  return std::make_unique<LoopParallelismPlugin>();
}
std::unique_ptr<AnalysisPlugin> make_comm_matrix_plugin() {
  return std::make_unique<CommMatrixPlugin>();
}
std::unique_ptr<AnalysisPlugin> make_race_report_plugin() {
  return std::make_unique<RaceReportPlugin>();
}
std::unique_ptr<AnalysisPlugin> make_hot_deps_plugin(std::size_t top_n) {
  return std::make_unique<HotDepsPlugin>(top_n);
}
std::unique_ptr<AnalysisPlugin> make_self_parallelism_plugin() {
  return std::make_unique<SelfParallelismPlugin>();
}
std::unique_ptr<AnalysisPlugin> make_dep_distance_plugin() {
  return std::make_unique<DepDistancePlugin>();
}

}  // namespace depprof
