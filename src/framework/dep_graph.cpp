#include "framework/dep_graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace depprof {

DepGraph::DepGraph(const DepMap& deps) {
  std::set<std::uint32_t> node_set;
  for (const auto& [key, info] : deps.sorted()) {
    DepEdge e;
    e.src_loc = key.src_loc;
    e.sink_loc = key.sink_loc;
    e.type = key.type;
    e.var = key.var;
    e.count = info.count;
    e.flags = info.flags;
    const auto idx = static_cast<std::uint32_t>(edges_.size());
    edges_.push_back(e);
    node_set.insert(e.sink_loc);
    if (e.src_loc != 0) {
      node_set.insert(e.src_loc);
      out_[e.src_loc].push_back(idx);
    }
    in_[e.sink_loc].push_back(idx);
  }
  nodes_.assign(node_set.begin(), node_set.end());
}

std::vector<const DepEdge*> DepGraph::out_edges(std::uint32_t loc) const {
  std::vector<const DepEdge*> out;
  auto it = out_.find(loc);
  if (it != out_.end())
    for (auto idx : it->second) out.push_back(&edges_[idx]);
  return out;
}

std::vector<const DepEdge*> DepGraph::in_edges(std::uint32_t loc) const {
  std::vector<const DepEdge*> in;
  auto it = in_.find(loc);
  if (it != in_.end())
    for (auto idx : it->second) in.push_back(&edges_[idx]);
  return in;
}

std::vector<std::uint32_t> DepGraph::raw_reachable(std::uint32_t loc) const {
  std::set<std::uint32_t> visited;
  std::vector<std::uint32_t> stack{loc};
  while (!stack.empty()) {
    const std::uint32_t cur = stack.back();
    stack.pop_back();
    auto it = out_.find(cur);
    if (it == out_.end()) continue;
    for (auto idx : it->second) {
      const DepEdge& e = edges_[idx];
      if (e.type != DepType::kRaw) continue;
      if (visited.insert(e.sink_loc).second) stack.push_back(e.sink_loc);
    }
  }
  return {visited.begin(), visited.end()};
}

bool DepGraph::has_raw_cycle() const {
  // A node is on a RAW cycle iff it is RAW-reachable from itself.
  for (std::uint32_t n : nodes_) {
    const auto reach = raw_reachable(n);
    if (std::binary_search(reach.begin(), reach.end(), n)) return true;
  }
  return false;
}

std::string DepGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph deps {\n  rankdir=TB;\n  node [shape=box];\n";
  for (std::uint32_t n : nodes_)
    os << "  \"" << SourceLocation::from_packed(n).str() << "\";\n";
  for (const DepEdge& e : edges_) {
    if (e.type == DepType::kInit) continue;
    os << "  \"" << SourceLocation::from_packed(e.src_loc).str() << "\" -> \""
       << SourceLocation::from_packed(e.sink_loc).str() << "\" [label=\""
       << dep_type_name(e.type) << ' ' << var_registry().name(e.var) << " x"
       << e.count << '"';
    if (e.type != DepType::kRaw) os << ", style=dashed";
    if (e.flags & kLoopCarried) os << ", color=red";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace depprof
