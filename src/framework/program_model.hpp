#pragma once
// Program model — the Sec. VIII integrated-framework data hub.
//
// "An integrated program-analysis framework with APIs to retrieve
// dependence information is already in development.  The framework
// reorganizes profiled data into multiple representations, including
// dynamic execution tree, call tree, dependence graph, loop table, etc.,
// and a dependence-based program analysis can be implemented as a plugin."
//
// ProgramModel bundles one profiled run's outputs (merged dependences,
// control-flow log, call tree, reduction hints, run statistics) and lazily
// derives the framework representations from them.  Analyses access the
// model through AnalysisPlugin (plugin.hpp).

#include <memory>
#include <vector>

#include "core/dep.hpp"
#include "core/profiler.hpp"
#include "framework/dep_graph.hpp"
#include "framework/loop_table.hpp"
#include "trace/call_tree.hpp"
#include "trace/control_flow.hpp"

namespace depprof {

class ProgramModel {
 public:
  ProgramModel() = default;
  ProgramModel(DepMap deps, ControlFlowLog cf, CallTree calls,
               std::vector<std::uint32_t> reduction_lines,
               ProfilerStats stats = {})
      : deps_(std::move(deps)),
        cf_(std::move(cf)),
        calls_(std::move(calls)),
        reduction_lines_(std::move(reduction_lines)),
        stats_(stats) {}

  /// Builds a model from the currently attached/last detached Runtime
  /// session and a finished profiler.
  static ProgramModel from_run(IProfiler& profiler);

  // -- raw representations -------------------------------------------------
  const DepMap& deps() const { return deps_; }
  const ControlFlowLog& control_flow() const { return cf_; }
  const CallTree& call_tree() const { return calls_; }
  const std::vector<std::uint32_t>& reduction_lines() const {
    return reduction_lines_;
  }
  const ProfilerStats& stats() const { return stats_; }

  // -- derived representations (built on first access, then cached) --------
  const DepGraph& dep_graph() const;
  const LoopTable& loop_table() const;

 private:
  DepMap deps_;
  ControlFlowLog cf_;
  CallTree calls_;
  std::vector<std::uint32_t> reduction_lines_;
  ProfilerStats stats_;

  mutable std::unique_ptr<DepGraph> dep_graph_;
  mutable std::unique_ptr<LoopTable> loop_table_;
};

}  // namespace depprof
