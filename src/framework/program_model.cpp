#include "framework/program_model.hpp"

#include "instrument/runtime.hpp"

namespace depprof {

ProgramModel ProgramModel::from_run(IProfiler& profiler) {
  Runtime& rt = Runtime::instance();
  return ProgramModel(profiler.take_dependences(), rt.control_flow(),
                      rt.call_tree(), rt.reduction_lines(), profiler.stats());
}

const DepGraph& ProgramModel::dep_graph() const {
  if (!dep_graph_) dep_graph_ = std::make_unique<DepGraph>(deps_);
  return *dep_graph_;
}

const LoopTable& ProgramModel::loop_table() const {
  if (!loop_table_)
    loop_table_ = std::make_unique<LoopTable>(deps_, cf_, reduction_lines_);
  return *loop_table_;
}

}  // namespace depprof
