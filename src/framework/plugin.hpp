#pragma once
// Analysis-plugin interface (Sec. VIII): "a dependence-based program
// analysis can be implemented as a plugin".
//
// A plugin consumes the ProgramModel and produces a textual report (and
// whatever structured side effects it wants).  Built-in plugins re-package
// the Sec. VII analyses and add a Kremlin-style parallelism-metric pass:
//
//   loop-parallelism    — Sec. VII-A verdicts (format_loop_verdicts)
//   comm-matrix         — Sec. VII-B producer/consumer matrix
//   race-report         — Sec. V-B potential data races
//   hot-deps            — dependences ranked by dynamic instance count
//   self-parallelism    — Kremlin-flavoured per-loop parallelism estimate
//                         (iterations vs carried recurrences), ranking loops
//                         by expected parallelization benefit
//   dep-distance        — Alchemist-style carried-distance report: for each
//                         loop-carried RAW, the min/max iteration distance
//                         and the blocking it implies

#include <memory>
#include <string>
#include <vector>

#include "framework/program_model.hpp"

namespace depprof {

class AnalysisPlugin {
 public:
  virtual ~AnalysisPlugin() = default;
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  /// Runs the analysis over the model and returns a human-readable report.
  virtual std::string run(const ProgramModel& model) = 0;
};

/// Registry of available plugins.  Built-ins are pre-registered; user
/// plugins can be added at runtime.
class PluginRegistry {
 public:
  /// The process-wide registry, populated with the built-in plugins.
  static PluginRegistry& instance();

  void add(std::unique_ptr<AnalysisPlugin> plugin);
  AnalysisPlugin* find(const std::string& name) const;
  std::vector<AnalysisPlugin*> all() const;

 private:
  std::vector<std::unique_ptr<AnalysisPlugin>> plugins_;
};

/// Factory helpers for the built-in plugins (usable standalone, without the
/// registry).
std::unique_ptr<AnalysisPlugin> make_loop_parallelism_plugin();
std::unique_ptr<AnalysisPlugin> make_comm_matrix_plugin();
std::unique_ptr<AnalysisPlugin> make_race_report_plugin();
std::unique_ptr<AnalysisPlugin> make_hot_deps_plugin(std::size_t top_n = 10);
std::unique_ptr<AnalysisPlugin> make_self_parallelism_plugin();
std::unique_ptr<AnalysisPlugin> make_dep_distance_plugin();

}  // namespace depprof
