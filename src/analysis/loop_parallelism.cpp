#include "analysis/loop_parallelism.hpp"

#include <algorithm>
#include <sstream>

namespace depprof {
namespace {

bool is_reduction_self_dep(const DepKey& key,
                           const std::vector<std::uint32_t>& reduction_lines) {
  if (key.sink_loc != key.src_loc) return false;
  return std::find(reduction_lines.begin(), reduction_lines.end(),
                   key.sink_loc) != reduction_lines.end();
}

}  // namespace

std::vector<LoopVerdict> analyze_loops(const DepMap& deps,
                                       const ControlFlowLog& cf,
                                       const LoopAnalysisOptions& opts) {
  std::vector<LoopVerdict> verdicts;
  verdicts.reserve(cf.loops.size());
  for (const auto& loop : cf.loops) {
    LoopVerdict v;
    v.loop = loop;
    for (const auto& [key, info] : deps) {
      if (key.type != DepType::kRaw) continue;  // WAR/WAW: privatizable
      const SourceLocation sink = SourceLocation::from_packed(key.sink_loc);
      const SourceLocation src = SourceLocation::from_packed(key.src_loc);
      if (!loop.contains(sink) || !loop.contains(src)) continue;
      if (is_reduction_self_dep(key, opts.reduction_lines)) continue;

      bool carried = false;
      if ((info.flags & kLoopCarried) != 0 && info.loop == loop.loop_id) {
        // The detector saw this dependence cross an iteration boundary of
        // exactly this loop.
        carried = true;
      } else if ((info.flags & kCrossLoop) != 0) {
        // Endpoints in different innermost loops inside this loop's body: a
        // backward dependence in source order must be carried by the common
        // enclosing loop.
        carried = src.line() >= sink.line();
      } else if ((info.flags & kLoopCarried) != 0 && info.loop != loop.loop_id) {
        // Carried by an inner loop — does not block the outer loop.
        carried = false;
      }
      if (carried) {
        v.parallelizable = false;
        v.blockers.push_back(key);
      }
    }
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

std::string format_loop_verdicts(const std::vector<LoopVerdict>& verdicts) {
  std::ostringstream os;
  for (const auto& v : verdicts) {
    os << "loop " << SourceLocation::from_packed(v.loop.begin_loc).str() << "-"
       << SourceLocation::from_packed(v.loop.end_loc).str() << " ("
       << v.loop.iterations << " iterations): "
       << (v.parallelizable ? "parallelizable" : "NOT parallelizable") << '\n';
    for (const auto& b : v.blockers) {
      os << "    blocked by RAW "
         << SourceLocation::from_packed(b.sink_loc).str() << " <- "
         << SourceLocation::from_packed(b.src_loc).str() << " ("
         << var_registry().name(b.var) << ")\n";
    }
  }
  return os.str();
}

}  // namespace depprof
