#include "analysis/loop_parallelism.hpp"

#include <algorithm>
#include <sstream>

namespace depprof {
namespace {

bool is_reduction_self_dep(const DepKey& key,
                           const std::vector<std::uint32_t>& reduction_lines) {
  if (key.sink_loc != key.src_loc) return false;
  return std::find(reduction_lines.begin(), reduction_lines.end(),
                   key.sink_loc) != reduction_lines.end();
}

}  // namespace

const char* loop_verdict_name(LoopVerdictKind kind) {
  switch (kind) {
    case LoopVerdictKind::kDoallSafe:
      return "DOALL-safe";
    case LoopVerdictKind::kReductionSuspect:
      return "reduction-suspect";
    case LoopVerdictKind::kSerial:
      return "serial";
  }
  return "?";
}

std::vector<LoopVerdict> analyze_loops(const DepMap& deps,
                                       const ControlFlowLog& cf,
                                       const LoopAnalysisOptions& opts) {
  std::vector<LoopVerdict> verdicts;
  verdicts.reserve(cf.loops.size());
  for (const auto& loop : cf.loops) {
    LoopVerdict v;
    v.loop = loop;
    for (const auto& [key, info] : deps) {
      if (key.type == DepType::kInit) continue;
      // Carried by this loop means: at some nest level the innermost
      // common loop of the endpoints was this loop and the carried-distance
      // buckets (1, >=2/unknown) are non-empty there.  Inner-loop carries
      // and distance-0 instances leave those buckets untouched.
      if (!info.carried_by(loop.loop_id)) continue;
      if (key.type != DepType::kRaw) {
        v.privatizable.push_back(key);
        continue;
      }
      if (is_reduction_self_dep(key, opts.reduction_lines)) {
        v.reductions.push_back(key);
        continue;
      }
      v.blockers.push_back(key);
    }
    if (!v.blockers.empty())
      v.kind = LoopVerdictKind::kSerial;
    else if (!v.reductions.empty())
      v.kind = LoopVerdictKind::kReductionSuspect;
    else
      v.kind = LoopVerdictKind::kDoallSafe;
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

std::string format_loop_verdicts(const std::vector<LoopVerdict>& verdicts) {
  std::ostringstream os;
  for (const auto& v : verdicts) {
    os << "loop " << SourceLocation::from_packed(v.loop.begin_loc).str() << "-"
       << SourceLocation::from_packed(v.loop.end_loc).str() << " ("
       << v.loop.iterations << " iterations): " << loop_verdict_name(v.kind)
       << '\n';
    for (const auto& b : v.blockers) {
      os << "    blocked by carried RAW "
         << SourceLocation::from_packed(b.sink_loc).str() << " <- "
         << SourceLocation::from_packed(b.src_loc).str() << " ("
         << var_registry().name(b.var) << ")\n";
    }
    for (const auto& r : v.reductions) {
      os << "    reduction update at "
         << SourceLocation::from_packed(r.sink_loc).str() << " ("
         << var_registry().name(r.var) << ")\n";
    }
    for (const auto& p : v.privatizable) {
      os << "    privatize " << var_registry().name(p.var) << " ("
         << dep_type_name(p.type) << ' '
         << SourceLocation::from_packed(p.sink_loc).str() << " <- "
         << SourceLocation::from_packed(p.src_loc).str() << ")\n";
    }
  }
  return os.str();
}

}  // namespace depprof
