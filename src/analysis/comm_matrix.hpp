#pragma once
// Communication-pattern detection (Sec. VII-B).
//
// "Producer-consumer behavior describes a read-after-write relation between
// memory operations, which can be easily derived from the RAW dependences
// produced by our profiler.  With detailed information such as thread IDs
// available, we can generate the communication matrix directly."
//
// The matrix row is the producer (writing) thread, the column the consumer
// (reading) thread; cell intensity is the number of cross-thread RAW
// instances — Fig. 9 rendered via common/heatmap.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dep.hpp"

namespace depprof {

struct CommMatrix {
  /// counts[producer][consumer] = cross-thread RAW instances.
  std::vector<std::vector<std::uint64_t>> counts;

  std::uint64_t total() const;
  unsigned threads() const { return static_cast<unsigned>(counts.size()); }
};

/// Builds the communication matrix from a merged dependence map of an
/// MT-target run.  `num_threads` = 0 sizes the matrix from the largest
/// thread id observed.
CommMatrix build_comm_matrix(const DepMap& deps, unsigned num_threads = 0);

/// ASCII rendering in the style of Fig. 9.
std::string format_comm_matrix(const CommMatrix& m);

}  // namespace depprof
