#pragma once
// Parallelism discovery in loops (Sec. VII-A).
//
// A DiscoPoP-style classifier over the profiler's output: a loop is
// potentially parallelizable when no loop-carried RAW dependence connects
// two statements of its body.  Loop-carried instances are flagged by the
// detector at build time (src and sink share the innermost loop but differ
// in iteration); dependences whose endpoints lie in *different* innermost
// loops of the analysed loop's body use the classic source-order heuristic:
// a backward dependence (source line at or after the sink line) must cross
// an iteration of the common enclosing loop.
//
// WAR/WAW carried dependences do not block parallelization here (they are
// removable by privatization), and carried self-RAW updates on lines marked
// as reductions (DP_REDUCTION) are filtered — both standard DiscoPoP
// practice.  Table II compares this classification under perfect vs
// signature dependences.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dep.hpp"
#include "trace/control_flow.hpp"

namespace depprof {

struct LoopVerdict {
  LoopRecord loop;
  bool parallelizable = true;
  /// Carried RAW dependences that block parallelization.
  std::vector<DepKey> blockers;
};

struct LoopAnalysisOptions {
  /// Packed locations of reduction-update lines (Runtime::reduction_lines).
  std::vector<std::uint32_t> reduction_lines;
};

/// Classifies every loop in the control-flow log.
std::vector<LoopVerdict> analyze_loops(const DepMap& deps,
                                       const ControlFlowLog& cf,
                                       const LoopAnalysisOptions& opts = {});

/// Human-readable rendering.
std::string format_loop_verdicts(const std::vector<LoopVerdict>& verdicts);

}  // namespace depprof
