#pragma once
// Parallelism discovery in loops (Sec. VII-A).
//
// A DiscoPoP-style classifier over the profiler's output, driven entirely
// by the per-level nest attribution the detector records (core/dep.hpp):
// every dependence instance names the innermost *common* loop of its
// endpoints and the carried-distance bucket at that level, so "is this
// dependence carried by loop L" is a lookup, not a heuristic — the old
// source-order guess for cross-loop dependences is gone.
//
// Classification per loop L:
//   - serial             some RAW dependence is carried by L (nonzero
//                        distance bucket at L's level) and is not a marked
//                        reduction update.
//   - reduction-suspect  the only RAW dependences carried by L are
//                        self-updates on lines marked DP_REDUCTION — DOALL
//                        after rewriting the update as a reduction.
//   - DOALL-safe         no RAW dependence is carried by L.  Dependences
//                        carried by inner loops, iteration-local (distance
//                        0) dependences, and cross-loop dependences whose
//                        common loop is not L do not block L.
//
// WAR/WAW dependences carried by L never block — they are removable by
// privatization and are reported as the privatization work list.  Table II
// compares this classification under perfect vs signature dependences.

#include <cstdint>
#include <string>
#include <vector>

#include "core/dep.hpp"
#include "trace/control_flow.hpp"

namespace depprof {

enum class LoopVerdictKind {
  kDoallSafe = 0,
  kReductionSuspect = 1,
  kSerial = 2,
};

const char* loop_verdict_name(LoopVerdictKind kind);

struct LoopVerdict {
  LoopRecord loop;
  LoopVerdictKind kind = LoopVerdictKind::kDoallSafe;
  /// Carried RAW dependences (non-reduction) that force kSerial.
  std::vector<DepKey> blockers;
  /// Carried self-RAW updates on marked reduction lines.
  std::vector<DepKey> reductions;
  /// Carried WAR/WAW dependences — removable by privatizing their variable.
  std::vector<DepKey> privatizable;

  /// Table II compatibility: a loop counts as parallelizable unless serial.
  bool parallelizable() const { return kind != LoopVerdictKind::kSerial; }
};

struct LoopAnalysisOptions {
  /// Packed locations of reduction-update lines (Runtime::reduction_lines).
  std::vector<std::uint32_t> reduction_lines;
};

/// Classifies every loop in the control-flow log.
std::vector<LoopVerdict> analyze_loops(const DepMap& deps,
                                       const ControlFlowLog& cf,
                                       const LoopAnalysisOptions& opts = {});

/// Human-readable rendering.
std::string format_loop_verdicts(const std::vector<LoopVerdict>& verdicts);

}  // namespace depprof
