#pragma once
// Parallelism report — the `depprof report` subcommand's rendering layer.
//
// Turns the loop-parallelism verdicts (loop_parallelism.hpp) into a
// consumable report: a text tree that indents every loop under its
// enclosing loop (using the run's recorded nest edges), or a JSON document
// with the same nesting for tooling.  A ground-truth checker scores the
// verdicts against a workload's OpenMP annotations (Table II style), which
// is what CI's report smoke asserts.

#include <string>
#include <vector>

#include "analysis/loop_parallelism.hpp"

namespace depprof {

struct ReportOptions {
  bool json = false;
};

/// Renders the verdicts over the run's loop-nest tree.  Loops entered at
/// top level form the roots; a loop reached from several parents (nest DAG)
/// is printed under its first parent only.  Loops with no verdict (never
/// profiled) are skipped; verdicts whose loop never appears in the tree are
/// appended at top level so nothing is silently dropped.
std::string render_loop_report(const std::vector<LoopVerdict>& verdicts,
                               const ControlFlowLog& cf,
                               const ReportOptions& opts = {});

/// Ground truth for one loop, index-aligned with the verdict order
/// (ascending begin location — the order Workload::loops is declared in).
struct LoopExpectation {
  std::string label;
  bool parallelizable = false;  ///< annotated parallel in the OpenMP version
};

struct ReportCheck {
  unsigned matched = 0;
  unsigned total = 0;
  /// One line per disagreement (or per count mismatch).
  std::vector<std::string> mismatches;

  bool ok() const { return mismatches.empty(); }
};

/// Scores verdicts against ground truth.  A loop counts as found
/// parallelizable unless its verdict is serial — reduction-suspect loops
/// are parallelizable after the reduction rewrite, matching Table II.
ReportCheck check_verdicts(const std::vector<LoopVerdict>& verdicts,
                           const std::vector<LoopExpectation>& truth);

}  // namespace depprof
