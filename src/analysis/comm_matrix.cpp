#include "analysis/comm_matrix.hpp"

#include <algorithm>

#include "common/heatmap.hpp"

namespace depprof {

std::uint64_t CommMatrix::total() const {
  std::uint64_t sum = 0;
  for (const auto& row : counts)
    for (auto v : row) sum += v;
  return sum;
}

CommMatrix build_comm_matrix(const DepMap& deps, unsigned num_threads) {
  unsigned max_tid = 0;
  for (const auto& [key, info] : deps) {
    (void)info;
    max_tid = std::max<unsigned>(max_tid, key.sink_tid);
    max_tid = std::max<unsigned>(max_tid, key.src_tid);
  }
  const unsigned n = num_threads ? num_threads : max_tid + 1;

  CommMatrix m;
  m.counts.assign(n, std::vector<std::uint64_t>(n, 0));
  for (const auto& [key, info] : deps) {
    if (key.type != DepType::kRaw) continue;
    if (key.src_tid == key.sink_tid) continue;
    if (key.src_tid >= n || key.sink_tid >= n) continue;
    // The producer wrote (source of the RAW), the consumer read (sink).
    m.counts[key.src_tid][key.sink_tid] += info.count;
  }
  return m;
}

std::string format_comm_matrix(const CommMatrix& m) {
  return render_heatmap(m.counts, "producer", "consumer");
}

}  // namespace depprof
