#include "analysis/report.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace depprof {
namespace {

std::string loc_str(std::uint32_t packed) {
  return SourceLocation::from_packed(packed).str();
}

/// Verdicts indexed by loop id for tree traversal.
using VerdictIndex = std::unordered_map<std::uint32_t, const LoopVerdict*>;

void render_text_node(std::ostringstream& os, const LoopVerdict& v,
                      const ControlFlowLog& cf, const VerdictIndex& index,
                      std::unordered_set<std::uint32_t>& visited, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << "loop " << loc_str(v.loop.begin_loc) << "-"
     << loc_str(v.loop.end_loc) << "  iterations=" << v.loop.iterations
     << "  entries=" << v.loop.entries << "  verdict="
     << loop_verdict_name(v.kind) << '\n';
  for (const auto& b : v.blockers)
    os << indent << "  blocked by carried RAW " << loc_str(b.sink_loc)
       << " <- " << loc_str(b.src_loc) << " (" << var_registry().name(b.var)
       << ")\n";
  for (const auto& r : v.reductions)
    os << indent << "  reduction update at " << loc_str(r.sink_loc) << " ("
       << var_registry().name(r.var) << ")\n";
  for (const auto& p : v.privatizable)
    os << indent << "  privatize " << var_registry().name(p.var) << " ("
       << dep_type_name(p.type) << ")\n";
  for (std::uint32_t child : cf.children_of(v.loop.loop_id)) {
    const auto it = index.find(child);
    if (it == index.end() || !visited.insert(child).second) continue;
    render_text_node(os, *it->second, cf, index, visited, depth + 1);
  }
}

void render_json_node(std::ostringstream& os, const LoopVerdict& v,
                      const ControlFlowLog& cf, const VerdictIndex& index,
                      std::unordered_set<std::uint32_t>& visited, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2 + 2, ' ');
  os << indent << "{\"loop\":\"" << loc_str(v.loop.begin_loc) << "\","
     << "\"end\":\"" << loc_str(v.loop.end_loc) << "\","
     << "\"iterations\":" << v.loop.iterations << ","
     << "\"entries\":" << v.loop.entries << ","
     << "\"verdict\":\"" << loop_verdict_name(v.kind) << "\","
     << "\"parallelizable\":" << (v.parallelizable() ? "true" : "false") << ","
     << "\"blockers\":" << v.blockers.size() << ","
     << "\"reductions\":" << v.reductions.size() << ","
     << "\"privatizable\":" << v.privatizable.size() << ","
     << "\"children\":[";
  bool first = true;
  for (std::uint32_t child : cf.children_of(v.loop.loop_id)) {
    const auto it = index.find(child);
    if (it == index.end() || !visited.insert(child).second) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    render_json_node(os, *it->second, cf, index, visited, depth + 1);
  }
  if (!first) os << '\n' << indent;
  os << "]}";
}

void mark_reachable(std::uint32_t id, const ControlFlowLog& cf,
                    std::unordered_set<std::uint32_t>& reachable) {
  if (!reachable.insert(id).second) return;
  for (std::uint32_t child : cf.children_of(id))
    mark_reachable(child, cf, reachable);
}

}  // namespace

std::string render_loop_report(const std::vector<LoopVerdict>& verdicts,
                               const ControlFlowLog& cf,
                               const ReportOptions& opts) {
  VerdictIndex index;
  for (const auto& v : verdicts) index.emplace(v.loop.loop_id, &v);

  // Roots: loops entered at top level, then any verdict the nest edges
  // never reach (e.g. a replayed run with no control-flow log).
  std::vector<const LoopVerdict*> roots;
  std::unordered_set<std::uint32_t> reachable;
  for (std::uint32_t id : cf.children_of(0)) {
    const auto it = index.find(id);
    if (it == index.end() || reachable.count(id)) continue;
    roots.push_back(it->second);
    mark_reachable(id, cf, reachable);
  }
  for (const auto& v : verdicts)
    if (reachable.insert(v.loop.loop_id).second) roots.push_back(&v);

  std::ostringstream os;
  std::unordered_set<std::uint32_t> visited;
  if (opts.json) {
    os << "{\"loops\":[";
    bool first = true;
    for (const LoopVerdict* r : roots) {
      if (!visited.insert(r->loop.loop_id).second) continue;
      os << (first ? "\n" : ",\n");
      first = false;
      render_json_node(os, *r, cf, index, visited, 0);
    }
    if (!first) os << '\n';
    os << "]}\n";
  } else {
    for (const LoopVerdict* r : roots) {
      if (!visited.insert(r->loop.loop_id).second) continue;
      render_text_node(os, *r, cf, index, visited, 0);
    }
  }
  return os.str();
}

ReportCheck check_verdicts(const std::vector<LoopVerdict>& verdicts,
                           const std::vector<LoopExpectation>& truth) {
  ReportCheck out;
  out.total = static_cast<unsigned>(truth.size());
  if (verdicts.size() != truth.size()) {
    std::ostringstream os;
    os << "loop count mismatch: profiled " << verdicts.size()
       << ", ground truth lists " << truth.size();
    out.mismatches.push_back(os.str());
  }
  const std::size_t n = std::min(verdicts.size(), truth.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool found = verdicts[i].parallelizable();
    if (found == truth[i].parallelizable) {
      ++out.matched;
      continue;
    }
    std::ostringstream os;
    os << truth[i].label << " (loop "
       << SourceLocation::from_packed(verdicts[i].loop.begin_loc).str()
       << "): expected "
       << (truth[i].parallelizable ? "parallelizable" : "serial") << ", got "
       << loop_verdict_name(verdicts[i].kind);
    out.mismatches.push_back(os.str());
  }
  return out;
}

}  // namespace depprof
