#pragma once
// Workload registry — the NAS / Starbench / SPLASH analogue suites.
//
// Each workload is a compact, instrumented kernel reproducing the memory-
// access character of the corresponding benchmark (see the substitution
// table in DESIGN.md).  A workload binary runs identically with and without
// an attached profiler (macros cost one branch when disabled), providing the
// native baseline of the slowdown experiments.
//
// For Table II every sequential workload carries ground truth: for each
// instrumented loop, in source order of the loop's DP_LOOP_BEGIN, whether
// the loop is annotated parallel in the "OpenMP version" of the analogue.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace depprof {

struct WorkloadResult {
  /// Value derived from the computation; consumed by the harness so the
  /// optimizer cannot elide the kernel, and checked by tests for
  /// run-to-run determinism.
  std::uint64_t checksum = 0;
};

/// Ground truth for one instrumented loop (Table II).
struct LoopTruth {
  const char* label;
  bool parallelizable;  ///< annotated in the OpenMP version of the analogue
};

struct Workload {
  std::string name;
  std::string suite;  ///< "nas", "starbench", or "splash"
  /// Sequential kernel; `scale` multiplies the problem size (1 = default).
  std::function<WorkloadResult(int scale)> run;
  /// Pthread-style parallel variant (Starbench/SPLASH); empty if none.
  std::function<WorkloadResult(int scale, unsigned threads)> run_parallel;
  /// Ground truth per instrumented loop, in ascending order of the loop's
  /// begin location (the order ControlFlowLog::loops is sorted in).
  std::vector<LoopTruth> loops;
  /// Injected ground-truth data races (the racy task-graph variants): the
  /// variable names a `--races` run must report as confirmed findings.
  /// Empty for race-free workloads — a race-free workload must produce zero
  /// confirmed findings.
  std::vector<const char*> races;
};

/// All registered workloads (stable order: NAS, then Starbench, then SPLASH).
const std::vector<Workload>& all_workloads();

/// Lookup by name; nullptr if unknown.
const Workload* find_workload(std::string_view name);

/// Convenience filters.
std::vector<const Workload*> workloads_in_suite(std::string_view suite);
std::vector<const Workload*> parallel_workloads();

}  // namespace depprof
