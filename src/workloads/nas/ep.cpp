// NAS EP analogue: embarrassingly parallel random-pair generation with an
// annulus histogram (reduction).  One main loop, annotated parallel in the
// OpenMP version (reduction on the histogram and the two Gaussian sums).

#include <cmath>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("ep");

namespace depprof::workloads {

WorkloadResult run_ep(int scale) {
  const std::size_t n = 20'000 * static_cast<std::size_t>(scale);
  double q[10] = {};
  double sx = 0.0, sy = 0.0;
  Rng rng(271828);

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < n; ++i) {
    DP_LOOP_ITER();
    const double x = 2.0 * rng.uniform() - 1.0;
    const double y = 2.0 * rng.uniform() - 1.0;
    const double t = x * x + y * y;
    if (t <= 1.0) {
      const double f = std::sqrt(-2.0 * std::log(t <= 1e-300 ? 1e-300 : t) / (t <= 1e-300 ? 1.0 : t));
      const double gx = x * f, gy = y * f;
      const auto l = static_cast<std::size_t>(std::min(std::fabs(gx), 9.0));
      DP_REDUCTION(); DP_UPDATE(q[l]); q[l] += 1.0;
      DP_REDUCTION(); DP_UPDATE(sx); sx += gx;
      DP_REDUCTION(); DP_UPDATE(sy); sy += gy;
    }
  }
  DP_LOOP_END();

  double check = sx + sy;
  for (double v : q) check += v;
  return {static_cast<std::uint64_t>(std::fabs(check) * 1e3)};
}

Workload make_ep() {
  Workload w;
  w.name = "ep";
  w.suite = "nas";
  w.run = run_ep;
  w.loops = {{"main", true}};
  return w;
}

}  // namespace depprof::workloads
