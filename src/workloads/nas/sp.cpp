// NAS SP analogue: scalar pentadiagonal solver on a 2D grid.  Each grid line
// is smoothed independently (parallel over lines), but the in-line recurrence
// is carried; a final norm reduction closes the time step.
//
// Loops (source order):
//   line loop      — parallel (lines are independent rows of the grid)
//   time-step loop — NOT parallel (carried: grid updated in place each step)
//   norm loop      — parallel (reduction)

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("sp");

namespace depprof::workloads {

namespace {
constexpr std::size_t kLine = 96;
}

WorkloadResult run_sp(int scale) {
  const std::size_t rows = 24 * static_cast<std::size_t>(scale);
  Rng rng(202);
  std::vector<double> grid(rows * kLine);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    DP_WRITE(grid[i]);
    grid[i] = rng.uniform();
  }
  double norm = 0.0;

  DP_LOOP_BEGIN();
  for (std::size_t step = 0; step < 4; ++step) {
    DP_LOOP_ITER();

    DP_LOOP_BEGIN();
    for (std::size_t r = 0; r < rows; ++r) {
      DP_LOOP_ITER();
      // In-line pentadiagonal-style recurrence: sequential inside the line,
      // but instrumented at line granularity the row loop carries nothing
      // row-to-row.
      double carry = 0.0;
      for (std::size_t j = 2; j < kLine; ++j) {
        const std::size_t idx = r * kLine + j;
        DP_READ(grid[idx - 2]);
        DP_READ(grid[idx - 1]);
        DP_READ(grid[idx]);
        carry = 0.25 * (grid[idx - 2] + 2.0 * grid[idx - 1] + grid[idx]) + 0.1 * carry;
        DP_WRITE(grid[idx]);
        grid[idx] = carry;
      }
    }
    DP_LOOP_END();
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(grid[i]);
    DP_REDUCTION(); DP_UPDATE(norm); norm += grid[i] * grid[i];
  }
  DP_LOOP_END();

  return {static_cast<std::uint64_t>(std::sqrt(norm) * 1e6)};
}

Workload make_sp() {
  Workload w;
  w.name = "sp";
  w.suite = "nas";
  w.run = run_sp;
  w.loops = {{"time-step", false}, {"lines", true}, {"norm", true}};
  return w;
}

}  // namespace depprof::workloads
