// NAS CG analogue: conjugate-gradient iterations with a sparse matrix in CSR
// form.  Mat-vec rows and AXPY updates are parallel; the dot products are
// reductions; the outer CG iteration is carried through p, r, and the
// scalars alpha/beta (instrumented as memory since they live in the state
// struct, as in the Fortran original's common block).
//
// Loops (source order):
//   cg-outer — NOT parallel (carried via rho/p/r state)
//   matvec   — parallel
//   dot      — parallel (reduction)
//   axpy     — parallel

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("cg");

namespace depprof::workloads {

namespace {

struct Csr {
  std::vector<std::uint32_t> row_ptr;
  std::vector<std::uint32_t> col;
  std::vector<double> val;
};

Csr make_matrix(std::size_t n, std::size_t nnz_per_row, Rng& rng) {
  Csr m;
  m.row_ptr.resize(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    m.row_ptr[i + 1] = m.row_ptr[i] + static_cast<std::uint32_t>(nnz_per_row);
    for (std::size_t k = 0; k < nnz_per_row; ++k) {
      m.col.push_back(static_cast<std::uint32_t>(rng.below(n)));
      m.val.push_back(0.01 + rng.uniform());
      DP_WRITE(m.col.back());
      DP_WRITE(m.val.back());
    }
  }
  return m;
}

}  // namespace

WorkloadResult run_cg(int scale) {
  const std::size_t n = 1'500 * static_cast<std::size_t>(scale);
  const std::size_t iters = 6;
  Rng rng(505);
  Csr a = make_matrix(n, 8, rng);
  std::vector<double> x(n, 0.0), r(n, 1.0), p(n, 1.0), q(n, 0.0);
  double rho = static_cast<double>(n);

  DP_LOOP_BEGIN();
  for (std::size_t it = 0; it < iters; ++it) {
    DP_LOOP_ITER();

    // q = A * p
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      double sum = 0.0;
      for (std::uint32_t k = a.row_ptr[i]; k < a.row_ptr[i + 1]; ++k) {
        DP_READ(a.col[k]);
        DP_READ(a.val[k]);
        DP_READ(p[a.col[k]]);
        sum += a.val[k] * p[a.col[k]];
      }
      DP_WRITE(q[i]);
      q[i] = sum;
    }
    DP_LOOP_END();

    // alpha = rho / (p . q)
    double pq = 0.0;
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      DP_READ(p[i]);
      DP_READ(q[i]);
      DP_REDUCTION(); DP_UPDATE(pq); pq += p[i] * q[i];
    }
    DP_LOOP_END();
    DP_READ(rho);
    const double alpha = rho / (pq == 0.0 ? 1.0 : pq);

    // x += alpha p;  r -= alpha q;  rho' = r . r;  p = r + beta p
    double rho_new = 0.0;
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      DP_UPDATE(x[i]);
      x[i] += alpha * p[i];
      DP_UPDATE(r[i]);
      r[i] -= alpha * q[i];
      DP_REDUCTION(); DP_UPDATE(rho_new); rho_new += r[i] * r[i];
    }
    DP_LOOP_END();

    const double beta = rho_new / (rho == 0.0 ? 1.0 : rho);
    DP_WRITE(rho);
    rho = rho_new;
    for (std::size_t i = 0; i < n; ++i) {
      DP_READ(r[i]);
      DP_UPDATE(p[i]);
      p[i] = r[i] + beta * p[i];
    }
  }
  DP_LOOP_END();

  double check = 0.0;
  for (double v : x) check += v;
  return {static_cast<std::uint64_t>(std::fabs(check) * 1e3)};
}

Workload make_cg() {
  Workload w;
  w.name = "cg";
  w.suite = "nas";
  w.run = run_cg;
  // The NAS CG OpenMP version annotates only part of its loops (Table II:
  // 9 of 16); our analogue keeps the outer iteration sequential.
  w.loops = {{"cg-outer", false}, {"matvec", true}, {"dot", true}, {"axpy", true}};
  return w;
}

}  // namespace depprof::workloads
