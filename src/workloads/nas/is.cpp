// NAS IS analogue: integer bucket sort.  Key histogram is a reduction
// (parallel with reduction support), the bucket prefix sum is a scan
// (carried), the permutation pass writes disjoint slots (parallel), and the
// final verification is element-wise (parallel).
//
// Loops (source order):
//   histogram — parallel (reduction on bucket counts)
//   prefix    — NOT parallel (carried scan)
//   permute   — parallel (disjoint writes via per-key cursors)
//   verify    — parallel

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("is");

namespace depprof::workloads {

namespace {
constexpr std::size_t kBuckets = 256;
}

WorkloadResult run_is(int scale) {
  const std::size_t n = 20'000 * static_cast<std::size_t>(scale);
  Rng rng(404);
  std::vector<std::uint32_t> keys(n), sorted(n);
  std::vector<std::uint32_t> count(kBuckets, 0), start(kBuckets, 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    DP_WRITE(keys[i]);
    keys[i] = static_cast<std::uint32_t>(rng.below(kBuckets));
  }

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(keys[i]);
    DP_REDUCTION(); DP_UPDATE(count[keys[i]]); count[keys[i]] += 1;
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t b = 1; b < kBuckets; ++b) {
    DP_LOOP_ITER();
    DP_READ(start[b - 1]);
    DP_READ(count[b - 1]);
    DP_WRITE(start[b]);
    start[b] = start[b - 1] + count[b - 1];
  }
  DP_LOOP_END();

  std::vector<std::uint32_t> cursor = start;
  // Layout diagnostic (env-gated, off in normal runs): the word-distance
  // between the mid-run `cursor` allocation and `sorted` is the observable
  // behind the PR 7 cross-attribution flake — when `cursor` lands within
  // `sorted`'s span modulo the signature slot count, the modulo signature
  // aliases the two arrays and cross-attributes their dependences.  Kept so
  // schedule-sweep findings on this workload can be triaged to a layout
  // cause without rebuilding (see DESIGN.md, deterministic schedule
  // exploration).
  if (std::getenv("DEPPROF_LAYOUT_DIAG") != nullptr) {
    const long delta_words =
        (reinterpret_cast<const char*>(cursor.data()) -
         reinterpret_cast<const char*>(sorted.data())) /
        4;
    std::fprintf(stderr, "layout-diag: is cursor-sorted delta_words=%ld\n",
                 delta_words);
  }
  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(keys[i]);
    const std::uint32_t k = keys[i];
    DP_UPDATE(cursor[k]);
    const std::uint32_t pos = cursor[k]++;
    DP_WRITE(sorted[pos]);
    sorted[pos] = k;
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  DP_LOOP_BEGIN();
  for (std::size_t i = 1; i < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(sorted[i - 1]);
    DP_READ(sorted[i]);
    check += sorted[i] >= sorted[i - 1] ? 1 : 0;
  }
  DP_LOOP_END();

  DP_FREE(keys.data(), keys.size() * sizeof(std::uint32_t));
  return {check};
}

Workload make_is() {
  Workload w;
  w.name = "is";
  w.suite = "nas";
  w.run = run_is;
  // The permute pass advances per-bucket cursors: a genuine carried RAW, so
  // only 3 of 4 loops are annotated in the OpenMP analogue — IS is one of
  // the NAS benchmarks where not every loop is parallelized (Table II: 8 of
  // 11 identified).
  w.loops = {{"histogram", true}, {"prefix", false}, {"permute", false}, {"verify", true}};
  return w;
}

}  // namespace depprof::workloads
