// NAS LU analogue: SSOR on a 2D grid.  Jacobian-style coefficient assembly
// is element-wise (parallel); the lower and upper triangular sweeps are
// wavefront recurrences carried in both grid directions; the residual norm
// is a reduction.
//
// Loops (source order):
//   assembly  — parallel
//   lower sweep rows — NOT parallel (v[i][j] needs v[i-1][j] of this sweep)
//   upper sweep rows — NOT parallel (reverse wavefront)
//   norm      — parallel (reduction)

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("lu");

namespace depprof::workloads {

namespace {
constexpr std::size_t kN = 64;
}

WorkloadResult run_lu(int scale) {
  const std::size_t reps = static_cast<std::size_t>(scale);
  Rng rng(303);
  std::vector<double> v(kN * kN), coef(kN * kN);
  for (std::size_t i = 0; i < v.size(); ++i) {
    DP_WRITE(v[i]);
    v[i] = rng.uniform();
  }
  double norm = 0.0;

  for (std::size_t rep = 0; rep < reps; ++rep) {
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < kN * kN; ++i) {
      DP_LOOP_ITER();
      DP_READ(v[i]);
      DP_WRITE(coef[i]);
      coef[i] = 0.2 + 0.6 * v[i];
    }
    DP_LOOP_END();

    DP_LOOP_BEGIN();
    for (std::size_t i = 1; i < kN; ++i) {
      DP_LOOP_ITER();
      for (std::size_t j = 1; j < kN; ++j) {
        const std::size_t idx = i * kN + j;
        DP_READ(v[idx - kN]);
        DP_READ(v[idx - 1]);
        DP_READ(coef[idx]);
        DP_WRITE(v[idx]);
        v[idx] = coef[idx] * (v[idx - kN] + v[idx - 1]) * 0.5;
      }
    }
    DP_LOOP_END();

    DP_LOOP_BEGIN();
    for (std::size_t i = kN - 1; i-- > 0;) {
      DP_LOOP_ITER();
      for (std::size_t j = kN - 1; j-- > 0;) {
        const std::size_t idx = i * kN + j;
        DP_READ(v[idx + kN]);
        DP_READ(v[idx + 1]);
        DP_WRITE(v[idx]);
        v[idx] = 0.9 * v[idx] + 0.05 * (v[idx + kN] + v[idx + 1]);
      }
    }
    DP_LOOP_END();
  }

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < kN * kN; ++i) {
    DP_LOOP_ITER();
    DP_READ(v[i]);
    DP_REDUCTION(); DP_UPDATE(norm); norm += v[i] * v[i];
  }
  DP_LOOP_END();

  return {static_cast<std::uint64_t>(std::sqrt(norm) * 1e6)};
}

Workload make_lu() {
  Workload w;
  w.name = "lu";
  w.suite = "nas";
  w.run = run_lu;
  w.loops = {{"assembly", true}, {"lower", false}, {"upper", false}, {"norm", true}};
  return w;
}

}  // namespace depprof::workloads
