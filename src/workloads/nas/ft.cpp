// NAS FT analogue: iterative radix-2 FFT (Cooley-Tukey) on a complex array.
// The bit-reversal permutation and the butterflies *within* one stage touch
// disjoint elements (parallel); the stage loop is carried (each stage reads
// the previous stage's results in place); the spectrum checksum is a
// reduction.
//
// Loops (source order):
//   bit-reversal — parallel (disjoint swaps)
//   stages       — NOT parallel (in-place, stage s reads stage s-1)
//   butterflies  — parallel (disjoint pairs within a stage)
//   checksum     — parallel (reduction)

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("ft");

namespace depprof::workloads {

WorkloadResult run_ft(int scale) {
  std::size_t n = 4'096;
  for (int s = 1; s < scale; s *= 2) n *= 2;
  Rng rng(707);
  std::vector<double> re(n), im(n);
  for (std::size_t i = 0; i < n; ++i) {
    DP_WRITE(re[i]);
    re[i] = rng.uniform() - 0.5;
    DP_WRITE(im[i]);
    im[i] = 0.0;
  }

  // Bit-reversal permutation.
  DP_LOOP_BEGIN();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    DP_LOOP_ITER();
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      DP_READ(re[i]);
      DP_READ(re[j]);
      DP_WRITE(re[i]);
      DP_WRITE(re[j]);
      std::swap(re[i], re[j]);
      DP_READ(im[i]);
      DP_READ(im[j]);
      DP_WRITE(im[i]);
      DP_WRITE(im[j]);
      std::swap(im[i], im[j]);
    }
  }
  DP_LOOP_END();

  // Butterfly stages.
  DP_LOOP_BEGIN();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    DP_LOOP_ITER();
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    const double wr = std::cos(ang), wi = std::sin(ang);

    DP_LOOP_BEGIN();
    for (std::size_t base = 0; base < n; base += len) {
      DP_LOOP_ITER();
      double cr = 1.0, ci = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t a = base + k, b = base + k + len / 2;
        DP_READ(re[a]);
        DP_READ(im[a]);
        DP_READ(re[b]);
        DP_READ(im[b]);
        const double tr = re[b] * cr - im[b] * ci;
        const double ti = re[b] * ci + im[b] * cr;
        DP_WRITE(re[b]);
        DP_WRITE(im[b]);
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        DP_WRITE(re[a]);
        DP_WRITE(im[a]);
        re[a] += tr;
        im[a] += ti;
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
    DP_LOOP_END();
  }
  DP_LOOP_END();

  double checksum = 0.0;
  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(re[i]);
    DP_READ(im[i]);
    DP_REDUCTION(); DP_UPDATE(checksum); checksum += re[i] * re[i] + im[i] * im[i];
  }
  DP_LOOP_END();

  return {static_cast<std::uint64_t>(checksum * 1e3)};
}

Workload make_ft() {
  Workload w;
  w.name = "ft";
  w.suite = "nas";
  w.run = run_ft;
  // Loop ground truth ordered by begin line: bit-reversal, stages,
  // butterflies, checksum.
  w.loops = {{"bit-reversal", true}, {"stages", false}, {"butterflies", true},
             {"checksum", true}};
  return w;
}

}  // namespace depprof::workloads
