// NAS BT analogue: block-tridiagonal solver.  Right-hand-side assembly is a
// grid sweep with neighbour reads from a *separate* input array (parallel);
// the line solve is a forward/backward substitution carried along the line.
//
// Loops (source order):
//   rhs assembly   — parallel (reads u, writes rhs: disjoint arrays)
//   forward sweep  — NOT parallel (carried: rhs[i] depends on rhs[i-1])
//   back substitution — NOT parallel (carried: rhs[i] depends on rhs[i+1])
//   add/update     — parallel (u[i] += rhs[i], element-wise)

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("bt");

namespace depprof::workloads {

WorkloadResult run_bt(int scale) {
  const std::size_t n = 3'000 * static_cast<std::size_t>(scale);
  Rng rng(101);
  std::vector<double> u(n), rhs(n), a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    DP_WRITE(u[i]);
    u[i] = rng.uniform();
    DP_WRITE(a[i]);
    a[i] = 0.1 + 0.01 * rng.uniform();
    DP_WRITE(b[i]);
    b[i] = 2.0 + rng.uniform();
    DP_WRITE(c[i]);
    c[i] = 0.1 + 0.01 * rng.uniform();
  }

  // RHS assembly: central difference of u into rhs.
  DP_LOOP_BEGIN();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(u[i - 1]);
    DP_READ(u[i]);
    DP_READ(u[i + 1]);
    DP_WRITE(rhs[i]);
    rhs[i] = u[i - 1] - 2.0 * u[i] + u[i + 1];
  }
  DP_LOOP_END();

  // Forward elimination (Thomas algorithm): carried on rhs and c.
  DP_LOOP_BEGIN();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(c[i - 1]);
    DP_READ(b[i]);
    const double m = a[i] / (b[i] - a[i] * c[i - 1]);
    DP_WRITE(c[i]);
    c[i] = c[i] * m;
    DP_READ(rhs[i - 1]);
    DP_WRITE(rhs[i]);
    rhs[i] = (rhs[i] - a[i] * rhs[i - 1]) * m;
  }
  DP_LOOP_END();

  // Back substitution: carried on rhs in the reverse direction.
  DP_LOOP_BEGIN();
  for (std::size_t i = n - 2; i >= 1; --i) {
    DP_LOOP_ITER();
    DP_READ(rhs[i + 1]);
    DP_READ(c[i]);
    DP_WRITE(rhs[i]);
    rhs[i] = rhs[i] - c[i] * rhs[i + 1];
  }
  DP_LOOP_END();

  // Solution update: element-wise, parallel.
  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < n; ++i) {
    DP_LOOP_ITER();
    DP_READ(rhs[i]);
    DP_UPDATE(u[i]);
    u[i] += rhs[i];
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (double v : u) check += static_cast<std::uint64_t>(v * 1e3);
  return {check};
}

Workload make_bt() {
  Workload w;
  w.name = "bt";
  w.suite = "nas";
  w.run = run_bt;
  w.loops = {{"rhs", true}, {"forward", false}, {"backward", false}, {"add", true}};
  return w;
}

}  // namespace depprof::workloads
