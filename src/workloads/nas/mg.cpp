// NAS MG analogue: one multigrid V-cycle on a 1D hierarchy.  Smoothing is a
// Jacobi step reading the previous array and writing a fresh one (parallel);
// restriction and prolongation map between levels element-wise (parallel);
// the V-cycle loop itself is carried level to level.
//
// Loops (source order):
//   vcycle      — NOT parallel (levels depend on each other)
//   smooth      — parallel (separate in/out arrays)
//   restrict    — parallel
//   prolongate  — parallel
//   norm        — parallel (reduction)

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("mg");

namespace depprof::workloads {

WorkloadResult run_mg(int scale) {
  const std::size_t n0 = 4'096 * static_cast<std::size_t>(scale);
  constexpr std::size_t kLevels = 4;
  Rng rng(606);

  std::vector<std::vector<double>> u(kLevels), tmp(kLevels);
  for (std::size_t l = 0; l < kLevels; ++l) {
    u[l].assign(n0 >> l, 0.0);
    tmp[l].assign(n0 >> l, 0.0);
  }
  for (std::size_t i = 0; i < u[0].size(); ++i) {
    DP_WRITE(u[0][i]);
    u[0][i] = rng.uniform();
  }
  double norm = 0.0;

  DP_LOOP_BEGIN();
  for (std::size_t l = 0; l + 1 < kLevels; ++l) {
    DP_LOOP_ITER();
    auto& fine = u[l];
    auto& out = tmp[l];
    auto& coarse = u[l + 1];
    const std::size_t n = fine.size();

    DP_LOOP_BEGIN();
    for (std::size_t i = 1; i + 1 < n; ++i) {
      DP_LOOP_ITER();
      DP_READ(fine[i - 1]);
      DP_READ(fine[i + 1]);
      DP_WRITE(out[i]);
      out[i] = 0.5 * (fine[i - 1] + fine[i + 1]);
    }
    DP_LOOP_END();

    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < coarse.size(); ++i) {
      DP_LOOP_ITER();
      const std::size_t j = std::min(2 * i, n - 1);
      DP_READ(out[j]);
      DP_WRITE(coarse[i]);
      coarse[i] = out[j];
    }
    DP_LOOP_END();
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i + 1 < u[kLevels - 1].size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(u[kLevels - 1][i]);
    DP_UPDATE(u[kLevels - 2][2 * i]);
    u[kLevels - 2][2 * i] += 0.5 * u[kLevels - 1][i];
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t i = 0; i < u[kLevels - 2].size(); ++i) {
    DP_LOOP_ITER();
    DP_READ(u[kLevels - 2][i]);
    DP_REDUCTION(); DP_UPDATE(norm); norm += u[kLevels - 2][i] * u[kLevels - 2][i];
  }
  DP_LOOP_END();

  return {static_cast<std::uint64_t>(std::sqrt(norm) * 1e6)};
}

Workload make_mg() {
  Workload w;
  w.name = "mg";
  w.suite = "nas";
  w.run = run_mg;
  w.loops = {{"vcycle", false}, {"smooth", true}, {"restrict", true},
             {"prolongate", true}, {"norm", true}};
  return w;
}

}  // namespace depprof::workloads
