// SPLASH-2 water-spatial analogue (Fig. 9): spatial domain decomposition
// over a ring of cells.  Each thread owns a contiguous block and updates it
// from the previous step's values; the halo cells at block boundaries are
// read by the neighbouring thread, producing the banded producer/consumer
// communication matrix of the paper's Fig. 9.  A per-step energy reduction
// under a global lock adds the weak scattered communication the original
// trace also shows.
//
// Boundary-cell updates and the reduction run inside InstrumentedMutex lock
// regions, so the access/push atomicity requirement of Sec. V holds and no
// false races are reported; the interior is thread-private.

#include <algorithm>
#include <barrier>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "mt/instrumented_mutex.hpp"
#include "workloads/workload.hpp"

DP_FILE("water-spatial");

namespace depprof::workloads {
namespace {

constexpr std::size_t kHalo = 8;  // boundary cells shared with each neighbour

/// One cell update summing neighbour contributions within `radius` — the
/// short-range force evaluation of the original kernel.  Halo cells use the
/// full interaction radius (reaching into the neighbouring block); interior
/// cells use radius 1.
double cell_update(const double* cur, std::size_t i, std::size_t n,
                   std::size_t radius = 1) {
  double acc = 0.0;
  for (std::size_t r = 1; r <= radius; ++r) {
    const std::size_t left = (i + n - r) % n;
    const std::size_t right = (i + r) % n;
    DP_READ_AT(cur + left, 8, "cell");
    DP_READ_AT(cur + right, 8, "cell");
    acc += (cur[left] + cur[right]) / static_cast<double>(r);
  }
  DP_READ_AT(cur + i, 8, "cell");
  return 0.5 * cur[i] + 0.25 * acc / static_cast<double>(radius);
}

}  // namespace

WorkloadResult run_water_seq(int scale) {
  const std::size_t n = 4'096 * static_cast<std::size_t>(scale);
  const std::size_t steps = 4;
  Rng rng(1818);
  std::vector<double> buf[2];
  buf[0].resize(n);
  buf[1].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    DP_WRITE(buf[0][i]);
    buf[0][i] = rng.uniform();
  }
  double energy = 0.0;

  DP_LOOP_BEGIN();
  for (std::size_t s = 0; s < steps; ++s) {
    DP_LOOP_ITER();
    const double* cur = buf[s % 2].data();
    double* next = buf[(s + 1) % 2].data();

    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      const double v = cell_update(cur, i, n);
      DP_WRITE_AT(next + i, 8, "cell");
      next[i] = v;
      DP_REDUCTION(); DP_UPDATE(energy); energy += v;
    }
    DP_LOOP_END();
  }
  DP_LOOP_END();

  return {static_cast<std::uint64_t>(energy)};
}

WorkloadResult run_water_parallel(int scale, unsigned threads) {
  const std::size_t n = 4'096 * static_cast<std::size_t>(scale);
  const std::size_t steps = 4;
  Rng rng(1818);
  std::vector<double> buf[2];
  buf[0].resize(n);
  buf[1].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    DP_WRITE(buf[0][i]);
    buf[0][i] = rng.uniform();
  }
  DP_SYNC();  // thread creation orders the init writes before worker reads
  double energy = 0.0;

  // boundary_mu[t] guards the halo between thread t and thread (t+1) % T.
  std::vector<InstrumentedMutex> boundary_mu(threads);
  InstrumentedMutex energy_mu;
  std::barrier barrier(static_cast<std::ptrdiff_t>(threads));

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      // Thread t owns spatial block t; bind the id so dependence endpoints
      // (and the Fig. 9 axes) follow the spatial numbering.  Id 0 is the
      // main thread.
      Runtime::instance().bind_thread_id(static_cast<std::uint16_t>(t + 1));
      const std::size_t lo = n * t / threads;
      const std::size_t hi = n * (t + 1) / threads;
      const unsigned left_mu = (t + threads - 1) % threads;
      for (std::size_t s = 0; s < steps; ++s) {
        const double* cur = buf[s % 2].data();
        double* next = buf[(s + 1) % 2].data();
        double local_energy = 0.0;

        // Left halo: reads the left neighbour's cells (full radius).
        {
          std::lock_guard lock(boundary_mu[left_mu]);
          for (std::size_t i = lo; i < std::min(lo + kHalo, hi); ++i) {
            const double v = cell_update(cur, i, n, kHalo);
            DP_WRITE_AT(next + i, 8, "cell");
            next[i] = v;
            local_energy += v;
          }
        }
        // Interior: thread-private.
        for (std::size_t i = lo + kHalo; i + kHalo < hi; ++i) {
          const double v = cell_update(cur, i, n);
          DP_WRITE_AT(next + i, 8, "cell");
          next[i] = v;
          local_energy += v;
        }
        // Right halo: reads the right neighbour's cells (full radius).
        {
          std::lock_guard lock(boundary_mu[t]);
          for (std::size_t i = hi > kHalo ? std::max(lo + kHalo, hi - kHalo) : hi;
               i < hi; ++i) {
            const double v = cell_update(cur, i, n, kHalo);
            DP_WRITE_AT(next + i, 8, "cell");
            next[i] = v;
            local_energy += v;
          }
        }
        // Global energy reduction.
        {
          std::lock_guard lock(energy_mu);
          DP_UPDATE(energy);
          energy += local_energy;
        }
        DP_SYNC();  // the barrier orders this step's writes for all readers
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : pool) th.join();

  return {static_cast<std::uint64_t>(energy)};
}

Workload make_water_spatial() {
  Workload w;
  w.name = "water-spatial";
  w.suite = "splash";
  w.run = run_water_seq;
  w.run_parallel = run_water_parallel;
  w.loops = {{"steps", false}, {"cells", true}};
  return w;
}

}  // namespace depprof::workloads
