#include "workloads/workload.hpp"

namespace depprof::workloads {

// NAS analogues.
Workload make_bt();
Workload make_sp();
Workload make_lu();
Workload make_is();
Workload make_ep();
Workload make_cg();
Workload make_mg();
Workload make_ft();

// Starbench analogues.
Workload make_cray();
Workload make_kmeans();
Workload make_md5();
Workload make_rayrot();
Workload make_rgbyuv();
Workload make_rotate();
Workload make_rotcc();
Workload make_streamcluster();
Workload make_tinyjpeg();
Workload make_bodytrack();
Workload make_h264dec();

// SPLASH analogue.
Workload make_water_spatial();

// Task-graph family (race ground truth; see taskgraph/task_graph.hpp).
Workload make_taskgraph();
Workload make_taskgraph_racy();

}  // namespace depprof::workloads

namespace depprof {

const std::vector<Workload>& all_workloads() {
  static const std::vector<Workload> registry = [] {
    using namespace workloads;
    std::vector<Workload> v;
    v.push_back(make_bt());
    v.push_back(make_sp());
    v.push_back(make_lu());
    v.push_back(make_is());
    v.push_back(make_ep());
    v.push_back(make_cg());
    v.push_back(make_mg());
    v.push_back(make_ft());
    v.push_back(make_cray());
    v.push_back(make_kmeans());
    v.push_back(make_md5());
    v.push_back(make_rayrot());
    v.push_back(make_rgbyuv());
    v.push_back(make_rotate());
    v.push_back(make_rotcc());
    v.push_back(make_streamcluster());
    v.push_back(make_tinyjpeg());
    v.push_back(make_bodytrack());
    v.push_back(make_h264dec());
    v.push_back(make_water_spatial());
    v.push_back(make_taskgraph());
    v.push_back(make_taskgraph_racy());
    return v;
  }();
  return registry;
}

const Workload* find_workload(std::string_view name) {
  for (const auto& w : all_workloads())
    if (w.name == name) return &w;
  return nullptr;
}

std::vector<const Workload*> workloads_in_suite(std::string_view suite) {
  std::vector<const Workload*> out;
  for (const auto& w : all_workloads())
    if (w.suite == suite) out.push_back(&w);
  return out;
}

std::vector<const Workload*> parallel_workloads() {
  std::vector<const Workload*> out;
  for (const auto& w : all_workloads())
    if (w.run_parallel) out.push_back(&w);
  return out;
}

}  // namespace depprof
