// Task-graph workload family: see task_graph.hpp for the design contract.
//
// DAG shape (scale-independent; ids are topological by construction):
//
//   init ──┬── race pairs (a_i, b_i — unordered siblings, only when armed)
//          ├── stage0..stage3 (disjoint grid shards)
//          │        └── reduce ── tallyA / tallyB (lock-protected) ── sink
//
// All race-free state is integral so every combination order yields the same
// checksum; the racy cells never feed the checksum (a real race can lose
// updates).

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "instrument/macros.hpp"
#include "mt/instrumented_mutex.hpp"
#include "workloads/taskgraph/task_graph.hpp"
#include "workloads/workload.hpp"

DP_FILE("taskgraph");

namespace depprof::workloads::taskgraph {
namespace {

struct TaskCtx {
  bool concurrent;   ///< false in sequential mode: skip the handshakes
  unsigned workers;  ///< pool size (1 in sequential mode)
};

/// How a task touches a declared shared resource.
enum class Mode : std::uint8_t {
  kRead,
  kWrite,
  kLockedUpdate,  ///< read-modify-write under a common InstrumentedMutex
  kRacyUpdate,    ///< injected race: unordered and deliberately unprotected
};

struct Touch {
  unsigned task;
  unsigned resource;
  Mode mode;
};

constexpr unsigned kNoTask = ~0u;

/// Fork/join DAG with declared conflicts.  Tasks must be added in
/// topological order (every predecessor id < the task's id); the DAG is
/// capped at 64 tasks so the DePa-style order maintenance is one ancestor
/// bitmask per task.
class TaskGraph {
 public:
  unsigned add(const char* name, std::initializer_list<unsigned> preds,
               std::function<void(const TaskCtx&)> body) {
    const unsigned id = static_cast<unsigned>(tasks_.size());
    if (id >= 64) fail("task graph exceeds 64 tasks");
    Task t;
    t.name = name;
    t.body = std::move(body);
    for (unsigned p : preds) {
      if (p >= id) fail("predecessors must precede the task (topological ids)");
      t.preds |= 1ull << p;
      t.ancestors |= tasks_[p].ancestors | (1ull << p);
    }
    tasks_.push_back(std::move(t));
    return id;
  }

  void touch(unsigned task, unsigned resource, Mode mode) {
    touches_.push_back({task, resource, mode});
  }

  /// O(1) ordered query over the ancestor bitmasks.
  bool ordered(unsigned a, unsigned b) const {
    return ((tasks_[b].ancestors >> a) & 1u) || ((tasks_[a].ancestors >> b) & 1u);
  }

  /// The DePa-style startup check: every declared conflict (two tasks, same
  /// resource, at least one writer) must be DAG-ordered, lock-protected, or
  /// an explicitly injected race.  Anything else is an undeclared race in
  /// the workload itself — abort rather than corrupt the ground truth.
  void validate() const {
    for (std::size_t i = 0; i < touches_.size(); ++i) {
      for (std::size_t j = i + 1; j < touches_.size(); ++j) {
        const Touch& a = touches_[i];
        const Touch& b = touches_[j];
        if (a.resource != b.resource || a.task == b.task) continue;
        if (a.mode == Mode::kRead && b.mode == Mode::kRead) continue;
        if (ordered(a.task, b.task)) continue;
        if (a.mode == Mode::kLockedUpdate && b.mode == Mode::kLockedUpdate)
          continue;
        if (a.mode == Mode::kRacyUpdate && b.mode == Mode::kRacyUpdate)
          continue;
        std::fprintf(stderr,
                     "taskgraph: undeclared conflict on resource %u between "
                     "unordered tasks '%s' and '%s'\n",
                     a.resource, tasks_[a.task].name, tasks_[b.task].name);
        std::abort();
      }
    }
  }

  void run_sequential() {
    validate();
    const TaskCtx ctx{false, 1};
    for (const Task& t : tasks_) t.body(ctx);
  }

  void run_parallel(unsigned threads) {
    validate();
    const unsigned n = static_cast<unsigned>(tasks_.size());
    std::mutex mu;
    std::condition_variable cv;
    std::uint64_t done = 0;     // completion bitmask
    std::uint64_t claimed = 0;  // claim bitmask
    unsigned completed = 0;

    auto worker = [&](unsigned wid) {
      // Id 0 is the main thread.
      Runtime::instance().bind_thread_id(static_cast<std::uint16_t>(wid + 1));
      const TaskCtx ctx{true, threads};
      for (;;) {
        unsigned id = kNoTask;
        {
          std::unique_lock lock(mu);
          for (;;) {
            if (completed == n) return;
            id = kNoTask;
            // Claim the lowest-id ready task.  Racy pair halves are added
            // adjacently with identical predecessors, so the claimed set is
            // always a prefix of the ready order and at most one worker can
            // be parked inside an unmatched ping-pong handshake — no
            // deadlock for any pool of >= 2 workers.
            for (unsigned i = 0; i < n; ++i) {
              if ((claimed >> i) & 1u) continue;
              if ((tasks_[i].preds & done) == tasks_[i].preds) {
                id = i;
                break;
              }
            }
            if (id != kNoTask) {
              claimed |= 1ull << id;
              break;
            }
            cv.wait(lock);
          }
        }
        tasks_[id].body(ctx);
        // Flush this task's buffered accesses before publishing completion,
        // so a successor running on another thread records its accesses
        // strictly after ours reach the profiler (Sec. V-A ordering).
        DP_SYNC();
        {
          std::lock_guard lock(mu);
          done |= 1ull << id;
          ++completed;
        }
        cv.notify_all();
      }
    };

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

 private:
  struct Task {
    const char* name = nullptr;
    std::uint64_t preds = 0;
    std::uint64_t ancestors = 0;
    std::function<void(const TaskCtx&)> body;
  };

  [[noreturn]] static void fail(const char* msg) {
    std::fprintf(stderr, "taskgraph: %s\n", msg);
    std::abort();
  }

  std::vector<Task> tasks_;
  std::vector<Touch> touches_;
};

/// One injected race site: a plain cell plus the uninstrumented relaxed
/// handshake that alternates the two sibling tasks over it.
struct PingPong {
  std::atomic<unsigned> turn{0};
  std::uint64_t cell = 0;
};

/// Iterations per ping-pong side — enough accesses that each task spans
/// more than one delivery chunk, so the timestamp ranges of the two sides
/// interleave across chunk boundaries.
constexpr unsigned kPingPongRounds = 256;

const char* const kRaceVarNames[kRaceSites] = {"race0", "race1", "race2"};

/// One side of a ping-pong pair.  The handshake (`turn`) is deliberately
/// relaxed and uninstrumented: no happens-before edge exists between the two
/// tasks' cell accesses, which is exactly the race being injected.  The cell
/// updates commute (integer addition), so the race can interleave any way
/// without perturbing deterministic state.  Sequential mode runs the rounds
/// straight — alternation without concurrency would self-deadlock.
///
/// Templated on the site so each site gets its own DP_*_AT expansion: the
/// macros intern the variable name into a function-local static id, so a
/// shared function body would stamp every site with the first name it saw.
template <unsigned Site>
void ping_pong_side(PingPong& p, unsigned side, const TaskCtx& ctx) {
  for (unsigned k = 0; k < kPingPongRounds; ++k) {
    if (ctx.concurrent)
      while (p.turn.load(std::memory_order_relaxed) != side)
        std::this_thread::yield();
    DP_READ_AT(&p.cell, 8, kRaceVarNames[Site]);
    const std::uint64_t v = p.cell;
    DP_WRITE_AT(&p.cell, 8, kRaceVarNames[Site]);
    p.cell = v + k + side + 1;
    if (ctx.concurrent) p.turn.store(side ^ 1u, std::memory_order_relaxed);
  }
}

using PingPongFn = void (*)(PingPong&, unsigned, const TaskCtx&);
constexpr PingPongFn kPingPongFns[kRaceSites] = {
    &ping_pong_side<0>, &ping_pong_side<1>, &ping_pong_side<2>};

/// Shared state of one run.  Everything feeding the checksum is integral and
/// combined commutatively, so sequential and parallel execution (at any
/// thread count) produce identical results.
struct Data {
  std::vector<std::uint64_t> grid;
  std::vector<std::uint64_t> out;
  std::uint64_t sum = 0;
  std::uint64_t tally = 0;
  InstrumentedMutex tally_mu;
  /// Rendezvous so the two tally tasks provably overlap in time (and thus
  /// run on different workers): without it one worker can claim and finish
  /// both, and the lock-suppression triage path would see same-thread
  /// dependences only.  Acquire/release — a legitimate synchronization, not
  /// an injected race.
  std::atomic<unsigned> tally_arrivals{0};
  PingPong race[kRaceSites];
};

constexpr unsigned kShards = 4;

// Declared-resource ids.
constexpr unsigned kResGrid0 = 0;               // .. kResGrid0 + kShards - 1
constexpr unsigned kResOut0 = kResGrid0 + kShards;
constexpr unsigned kResSum = kResOut0 + kShards;
constexpr unsigned kResTally = kResSum + 1;
constexpr unsigned kResRace0 = kResTally + 1;   // .. kResRace0 + kRaceSites - 1

void build_graph(TaskGraph& g, Data& d, std::size_t n, unsigned race_mask) {
  const unsigned init = g.add("init", {}, [&d, n](const TaskCtx&) {
    for (std::size_t i = 0; i < n; ++i) {
      DP_WRITE_AT(&d.grid[i], 8, "grid");
      d.grid[i] = (i * 2654435761ull) ^ 0x9e3779b97f4a7c15ull;
    }
  });
  for (unsigned s = 0; s < kShards; ++s)
    g.touch(init, kResGrid0 + s, Mode::kWrite);

  // Injected races right after init so the pair halves sit adjacently at the
  // head of the ready order (see the claim-order comment in run_parallel).
  for (unsigned site = 0; site < kRaceSites; ++site) {
    if (!(race_mask & (1u << site))) continue;
    PingPong& p = d.race[site];
    const PingPongFn fn = kPingPongFns[site];
    const unsigned a = g.add("race-a", {init}, [&p, fn](const TaskCtx& ctx) {
      fn(p, 0, ctx);
    });
    const unsigned b = g.add("race-b", {init}, [&p, fn](const TaskCtx& ctx) {
      fn(p, 1, ctx);
    });
    g.touch(a, kResRace0 + site, Mode::kRacyUpdate);
    g.touch(b, kResRace0 + site, Mode::kRacyUpdate);
  }

  std::vector<unsigned> stages;
  for (unsigned s = 0; s < kShards; ++s) {
    const std::size_t lo = n * s / kShards;
    const std::size_t hi = n * (s + 1) / kShards;
    const unsigned id =
        g.add("stage", {init}, [&d, lo, hi](const TaskCtx&) {
          for (std::size_t i = lo; i < hi; ++i) {
            DP_READ_AT(&d.grid[i], 8, "grid");
            const std::uint64_t v = d.grid[i];
            DP_WRITE_AT(&d.out[i], 8, "out");
            d.out[i] = v * 2 + 1;
          }
        });
    g.touch(id, kResGrid0 + s, Mode::kRead);
    g.touch(id, kResOut0 + s, Mode::kWrite);
    stages.push_back(id);
  }

  const unsigned reduce =
      g.add("reduce", {stages[0], stages[1], stages[2], stages[3]},
            [&d, n](const TaskCtx&) {
              std::uint64_t acc = 0;
              for (std::size_t i = 0; i < n; ++i) {
                DP_READ_AT(&d.out[i], 8, "out");
                acc += d.out[i];
              }
              DP_WRITE_AT(&d.sum, 8, "sum");
              d.sum = acc;
            });
  for (unsigned s = 0; s < kShards; ++s)
    g.touch(reduce, kResOut0 + s, Mode::kRead);
  g.touch(reduce, kResSum, Mode::kWrite);

  // Two unordered siblings updating a shared tally under a common lock: the
  // end-to-end exercise of the suppressed-by-lock triage path.
  unsigned tally[2];
  for (unsigned side = 0; side < 2; ++side) {
    tally[side] = g.add("tally", {reduce}, [&d, side](const TaskCtx& ctx) {
      if (ctx.concurrent && ctx.workers >= 2) {
        d.tally_arrivals.fetch_add(1, std::memory_order_acq_rel);
        while (d.tally_arrivals.load(std::memory_order_acquire) < 2)
          std::this_thread::yield();
      }
      DP_READ_AT(&d.sum, 8, "sum");
      const std::uint64_t base = d.sum;
      std::lock_guard lock(d.tally_mu);
      DP_READ_AT(&d.tally, 8, "tally");
      DP_WRITE_AT(&d.tally, 8, "tally");
      d.tally += base / (side + 2) + side;
    });
    g.touch(tally[side], kResSum, Mode::kRead);
    g.touch(tally[side], kResTally, Mode::kLockedUpdate);
  }

  const unsigned sink =
      g.add("sink", {tally[0], tally[1]}, [&d](const TaskCtx&) {
        DP_READ_AT(&d.sum, 8, "sum");
        DP_READ_AT(&d.tally, 8, "tally");
        d.sum = d.sum * 31 + d.tally;
      });
  g.touch(sink, kResSum, Mode::kWrite);
  g.touch(sink, kResTally, Mode::kRead);
}

// Keeps the racy cells observable without letting them near the checksum.
volatile std::uint64_t g_race_cell_sink;

}  // namespace

const char* race_var_name(unsigned site) {
  return site < kRaceSites ? kRaceVarNames[site] : "?";
}

std::uint64_t run_task_graph(int scale, unsigned threads, unsigned race_mask) {
  const std::size_t n = 1'024 * static_cast<std::size_t>(scale);
  Data d;
  d.grid.resize(n);
  d.out.resize(n);

  TaskGraph g;
  build_graph(g, d, n, race_mask & kRaceAll);

  if (threads == 0) {
    g.run_sequential();
  } else {
    // A ping-pong pair needs both halves in flight at once.
    if (race_mask != 0 && threads < 2) threads = 2;
    DP_SYNC();  // thread creation orders pre-run writes before worker reads
    g.run_parallel(threads);
  }

  std::uint64_t cells = 0;
  for (const PingPong& p : d.race) cells += p.cell;
  g_race_cell_sink = cells;
  return d.sum;
}

}  // namespace depprof::workloads::taskgraph

namespace depprof::workloads {

Workload make_taskgraph() {
  Workload w;
  w.name = "taskgraph";
  w.suite = "taskgraph";
  w.run = [](int scale) {
    return WorkloadResult{taskgraph::run_task_graph(scale, 0, taskgraph::kRaceNone)};
  };
  w.run_parallel = [](int scale, unsigned threads) {
    return WorkloadResult{
        taskgraph::run_task_graph(scale, threads, taskgraph::kRaceNone)};
  };
  return w;
}

Workload make_taskgraph_racy() {
  Workload w;
  w.name = "taskgraph-racy";
  w.suite = "taskgraph";
  w.run = [](int scale) {
    return WorkloadResult{taskgraph::run_task_graph(scale, 0, taskgraph::kRaceAll)};
  };
  w.run_parallel = [](int scale, unsigned threads) {
    return WorkloadResult{
        taskgraph::run_task_graph(scale, threads, taskgraph::kRaceAll)};
  };
  for (unsigned site = 0; site < taskgraph::kRaceSites; ++site)
    w.races.push_back(taskgraph::race_var_name(site));
  return w;
}

}  // namespace depprof::workloads
