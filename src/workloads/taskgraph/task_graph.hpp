#pragma once
// Fork/join task-graph workload family with injectable ground-truth races.
//
// The kernel is a small task DAG (init → map stages → reduce → two
// lock-protected tally tasks → sink) executed either sequentially (topological
// order) or by a worker pool.  Every shared-data conflict between tasks is
// *declared*, and the engine verifies at startup — with DePa-style ancestor
// bitmasks giving O(1) ordered(a, b) queries — that each declared conflict is
// either DAG-ordered, protected by a common lock, or an explicitly injected
// race.  That makes the family's race ground truth exact by construction:
// `depprof run --races` must confirm every injected race and nothing else.
//
// Injected races are ping-pong pairs between two DAG-unordered sibling tasks
// that alternate strictly over a plain cell, handshaking through an
// UNinstrumented relaxed atomic.  Relaxed ordering means no happens-before
// edge, so ThreadSanitizer reports the cell as a real race (the external
// oracle in tools/tsan_probe.cpp), and strict alternation interleaves the
// profiler's access timestamps so chunked delivery is guaranteed to observe a
// reversal (Sec. V-B) no matter which thread's chunk arrives first.
//
// This header exposes the kernel directly (not just through the workload
// registry) so the TSan probe can execute it natively with no profiler
// attached.

#include <cstdint>

namespace depprof::workloads::taskgraph {

/// Number of injectable ping-pong race sites.
inline constexpr unsigned kRaceSites = 3;

/// Bitmask values for `race_mask`.
inline constexpr unsigned kRaceNone = 0;
inline constexpr unsigned kRaceAll = (1u << kRaceSites) - 1;

/// Instrumented variable name of race site `site` (0 <= site < kRaceSites):
/// "race0", "race1", "race2".  This is the ground truth a confirmed race
/// finding is matched against.
const char* race_var_name(unsigned site);

/// Runs the task DAG and returns the checksum of the race-free computation
/// (the racy cells are deliberately excluded: a data race may lose updates).
///
/// `threads` == 0 runs the tasks sequentially in topological order on the
/// calling thread; the ping-pong handshakes are skipped (they would
/// self-deadlock without concurrency).  With `threads` >= 1 a worker pool
/// executes the DAG; when `race_mask` is nonzero at least two workers are
/// used so each ping-pong pair can actually interleave.
std::uint64_t run_task_graph(int scale, unsigned threads, unsigned race_mask);

}  // namespace depprof::workloads::taskgraph
