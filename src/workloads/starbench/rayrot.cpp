// Starbench ray-rot analogue: ray tracing followed by rotation of the
// rendered frame — the combined kernel of the suite.  Both row loops are
// parallel; the rotation reads what the tracer wrote (a forward,
// non-carried inter-stage dependence).
//
// Loops (source order):
//   trace rows  — parallel
//   rotate rows — parallel

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("ray-rot");

namespace depprof::workloads {
namespace {

constexpr std::size_t kSpheres = 12;

struct Scene {
  double cx[kSpheres], cy[kSpheres], cz[kSpheres], rad[kSpheres];
};

Scene make_scene() {
  Rng rng(1313);
  Scene s{};
  for (std::size_t i = 0; i < kSpheres; ++i) {
    DP_WRITE(s.cx[i]);
    s.cx[i] = rng.uniform() * 8.0 - 4.0;
    DP_WRITE(s.cy[i]);
    s.cy[i] = rng.uniform() * 8.0 - 4.0;
    DP_WRITE(s.cz[i]);
    s.cz[i] = rng.uniform() * 4.0 + 2.0;
    DP_WRITE(s.rad[i]);
    s.rad[i] = 0.3 + rng.uniform();
  }
  return s;
}

double shade_pixel(const Scene& s, double dx, double dy) {
  const double norm = std::sqrt(dx * dx + dy * dy + 1.0);
  double best = 1e30, shade = 0.1;
  for (std::size_t i = 0; i < kSpheres; ++i) {
    DP_READ(s.cx[i]);
    DP_READ(s.cy[i]);
    DP_READ(s.cz[i]);
    DP_READ(s.rad[i]);
    const double b = (-s.cx[i] * dx - s.cy[i] * dy - s.cz[i]) / norm;
    const double c =
        s.cx[i] * s.cx[i] + s.cy[i] * s.cy[i] + s.cz[i] * s.cz[i] - s.rad[i] * s.rad[i];
    const double disc = b * b - c;
    if (disc > 0.0) {
      const double t = -b - std::sqrt(disc);
      if (t > 0.0 && t < best) {
        best = t;
        shade = 1.0 / (1.0 + 0.2 * t);
      }
    }
  }
  return shade;
}

void trace_rows(const Scene& s, std::size_t w, std::size_t h, std::size_t lo,
                std::size_t hi, float* frame) {
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      const double dx = 2.0 * static_cast<double>(x) / static_cast<double>(w) - 1.0;
      const double dy = 2.0 * static_cast<double>(y) / static_cast<double>(h) - 1.0;
      DP_WRITE_AT(frame + y * w + x, 4, "frame");
      frame[y * w + x] = static_cast<float>(shade_pixel(s, dx, dy));
    }
  }
}

void rotate_rows(const float* frame, std::size_t w, std::size_t h,
                 std::size_t lo, std::size_t hi, float* out) {
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      DP_READ_AT(frame + y * w + x, 4, "frame");
      DP_WRITE_AT(out + x * h + (h - 1 - y), 4, "out");
      out[x * h + (h - 1 - y)] = frame[y * w + x];
    }
  }
}

}  // namespace

WorkloadResult run_rayrot(int scale) {
  const std::size_t w = 96, h = 48 * static_cast<std::size_t>(scale);
  Scene s = make_scene();
  std::vector<float> frame(w * h, 0.0f), out(w * h, 0.0f);

  DP_LOOP_BEGIN();
  for (std::size_t y = 0; y < h; ++y) {
    DP_LOOP_ITER();
    trace_rows(s, w, h, y, y + 1, frame.data());
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t y = 0; y < h; ++y) {
    DP_LOOP_ITER();
    rotate_rows(frame.data(), w, h, y, y + 1, out.data());
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (float v : out) check += static_cast<std::uint64_t>(v * 255.0f);
  return {check};
}

WorkloadResult run_rayrot_parallel(int scale, unsigned threads) {
  const std::size_t w = 96, h = 48 * static_cast<std::size_t>(scale);
  Scene s = make_scene();
  std::vector<float> frame(w * h, 0.0f), out(w * h, 0.0f);

  DP_SYNC();  // spawning orders the scene-init writes
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
      pool.emplace_back([&, t] {
        trace_rows(s, w, h, h * t / threads, h * (t + 1) / threads, frame.data());
        DP_SYNC();  // thread exit orders the frame for the rotate stage
      });
    for (auto& th : pool) th.join();
  }
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t)
      pool.emplace_back([&, t] {
        rotate_rows(frame.data(), w, h, h * t / threads, h * (t + 1) / threads,
                    out.data());
      });
    for (auto& th : pool) th.join();
  }

  std::uint64_t check = 0;
  for (float v : out) check += static_cast<std::uint64_t>(v * 255.0f);
  return {check};
}

Workload make_rayrot() {
  Workload w;
  w.name = "ray-rot";
  w.suite = "starbench";
  w.run = run_rayrot;
  w.run_parallel = run_rayrot_parallel;
  w.loops = {{"trace-rows", true}, {"rotate-rows", true}};
  return w;
}

}  // namespace depprof::workloads
