// Starbench kmeans analogue: Lloyd iterations over N points in D dimensions.
// Memory character: streaming reads of the point array, hot read-mostly
// centroid array, small accumulator arrays with reduction updates.
//
// Loops (source order):
//   outer Lloyd iteration   — NOT parallel (centroids carried across iters)
//   assignment over points  — parallel in the pthread version
//   centroid update over K  — parallel
//
// The parallel variant partitions points among threads with thread-local
// accumulators merged under an InstrumentedMutex — the Starbench pattern.

#include <cmath>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "mt/instrumented_mutex.hpp"
#include "workloads/workload.hpp"

DP_FILE("kmeans");

namespace depprof::workloads {
namespace {

constexpr std::size_t kDims = 4;
constexpr std::size_t kClusters = 8;
constexpr std::size_t kIters = 4;

std::vector<double> make_points(std::size_t n) {
  Rng rng(12345);
  std::vector<double> pts(n * kDims);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    DP_WRITE(pts[i]);
    pts[i] = rng.uniform() * 100.0;
  }
  return pts;
}

std::size_t nearest(const std::vector<double>& pts, std::size_t i,
                    const std::vector<double>& centroids) {
  double best = 1e300;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < kClusters; ++k) {
    double d = 0.0;
    for (std::size_t d0 = 0; d0 < kDims; ++d0) {
      DP_READ(pts[i * kDims + d0]);
      DP_READ(centroids[k * kDims + d0]);
      const double diff = pts[i * kDims + d0] - centroids[k * kDims + d0];
      d += diff * diff;
    }
    if (d < best) {
      best = d;
      best_k = k;
    }
  }
  return best_k;
}

}  // namespace

WorkloadResult run_kmeans(int scale) {
  const std::size_t n = 2'000 * static_cast<std::size_t>(scale);
  std::vector<double> pts = make_points(n);
  std::vector<double> centroids(kClusters * kDims);
  for (std::size_t i = 0; i < centroids.size(); ++i) {
    DP_READ(pts[i]);
    DP_WRITE(centroids[i]);
    centroids[i] = pts[i];
  }
  std::vector<std::uint32_t> assign(n, 0);
  double prev_energy = 0.0;

  DP_LOOP_BEGIN();
  for (std::size_t it = 0; it < kIters; ++it) {
    DP_LOOP_ITER();

    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      const std::size_t k = nearest(pts, i, centroids);
      DP_WRITE(assign[i]);
      assign[i] = static_cast<std::uint32_t>(k);
    }
    DP_LOOP_END();

    std::vector<double> sum(kClusters * kDims, 0.0);
    std::vector<std::uint32_t> count(kClusters, 0);
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      DP_READ(assign[i]);
      const std::size_t k = assign[i];
      for (std::size_t d = 0; d < kDims; ++d) {
        DP_READ(pts[i * kDims + d]);
        DP_REDUCTION(); DP_UPDATE(sum[k * kDims + d]); sum[k * kDims + d] += pts[i * kDims + d];
      }
      DP_REDUCTION(); DP_UPDATE(count[k]); count[k] += 1;
    }
    DP_LOOP_END();

    for (std::size_t k = 0; k < kClusters; ++k) {
      if (count[k] == 0) continue;
      for (std::size_t d = 0; d < kDims; ++d) {
        DP_WRITE(centroids[k * kDims + d]);
        centroids[k * kDims + d] = sum[k * kDims + d] / count[k];
      }
    }
    DP_FREE(sum.data(), sum.size() * sizeof(double));
    DP_FREE(count.data(), count.size() * sizeof(std::uint32_t));

    // Convergence check: energy of this iteration vs the previous one — the
    // loop-carried RAW that makes the Lloyd outer loop sequential.
    double energy = 0.0;
    for (std::size_t k = 0; k < centroids.size(); ++k) energy += centroids[k];
    DP_READ(prev_energy);
    const double diff = energy - prev_energy;
    DP_WRITE(prev_energy);
    prev_energy = energy;
    if (std::fabs(diff) < 1e-12) break;
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (auto a : assign) check = check * 31 + a;
  for (auto c : centroids) check += static_cast<std::uint64_t>(c);
  return {check};
}

WorkloadResult run_kmeans_parallel(int scale, unsigned threads) {
  const std::size_t n = 2'000 * static_cast<std::size_t>(scale);
  std::vector<double> pts = make_points(n);
  std::vector<double> centroids(kClusters * kDims);
  for (std::size_t i = 0; i < centroids.size(); ++i) centroids[i] = pts[i];
  std::vector<std::uint32_t> assign(n, 0);
  InstrumentedMutex merge_mu;

  for (std::size_t it = 0; it < kIters; ++it) {
    DP_SYNC();  // spawning orders main's centroid writes before worker reads
    std::vector<double> sum(kClusters * kDims, 0.0);
    std::vector<std::uint32_t> count(kClusters, 0);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const std::size_t lo = n * t / threads;
        const std::size_t hi = n * (t + 1) / threads;
        std::vector<double> lsum(kClusters * kDims, 0.0);
        std::vector<std::uint32_t> lcount(kClusters, 0);
        for (std::size_t i = lo; i < hi; ++i) {
          const std::size_t k = nearest(pts, i, centroids);
          DP_WRITE(assign[i]);
          assign[i] = static_cast<std::uint32_t>(k);
          for (std::size_t d = 0; d < kDims; ++d)
            lsum[k * kDims + d] += pts[i * kDims + d];
          lcount[k] += 1;
        }
        std::lock_guard lock(merge_mu);
        for (std::size_t j = 0; j < lsum.size(); ++j) {
          DP_UPDATE(sum[j]);
          sum[j] += lsum[j];
        }
        for (std::size_t k = 0; k < kClusters; ++k) {
          DP_UPDATE(count[k]);
          count[k] += lcount[k];
        }
      });
    }
    for (auto& th : pool) th.join();

    for (std::size_t k = 0; k < kClusters; ++k) {
      if (count[k] == 0) continue;
      for (std::size_t d = 0; d < kDims; ++d) {
        DP_WRITE(centroids[k * kDims + d]);
        centroids[k * kDims + d] = sum[k * kDims + d] / count[k];
      }
    }
  }

  std::uint64_t check = 0;
  for (auto a : assign) check = check * 31 + a;
  for (auto c : centroids) check += static_cast<std::uint64_t>(c);
  return {check};
}

Workload make_kmeans() {
  Workload w;
  w.name = "kmeans";
  w.suite = "starbench";
  w.run = run_kmeans;
  w.run_parallel = run_kmeans_parallel;
  w.loops = {{"lloyd-outer", false}, {"assign", true}, {"update", true}};
  return w;
}

}  // namespace depprof::workloads
