// Starbench bodytrack analogue: a particle filter.  Per-particle likelihood
// evaluation against the observation is parallel; the cumulative-weight scan
// used for resampling is carried; the frame loop is carried (particle state
// evolves frame to frame).  Large particle state plus per-frame observation
// gives bodytrack its large address footprint (Table I).
//
// Loops (source order):
//   frames     — NOT parallel (particle state carried)
//   likelihood — parallel
//   scan       — NOT parallel (prefix sum)
//   resample   — parallel (reads via cumulative table, writes disjoint)

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("bodytrack");

namespace depprof::workloads {
namespace {

constexpr std::size_t kStateDim = 8;

double likelihood(const std::vector<double>& particles, std::size_t i,
                  const std::vector<double>& observation) {
  double err = 0.0;
  for (std::size_t d = 0; d < kStateDim; ++d) {
    DP_READ(particles[i * kStateDim + d]);
    DP_READ(observation[d]);
    const double diff = particles[i * kStateDim + d] - observation[d];
    err += diff * diff;
  }
  return std::exp(-0.5 * err);
}

}  // namespace

WorkloadResult run_bodytrack(int scale) {
  const std::size_t particles_n = 600 * static_cast<std::size_t>(scale);
  const std::size_t frames = 6;
  Rng rng(1616);
  std::vector<double> particles(particles_n * kStateDim);
  std::vector<double> next(particles_n * kStateDim);
  std::vector<double> weights(particles_n), cumulative(particles_n);
  std::vector<double> observation(kStateDim);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    DP_WRITE(particles[i]);
    particles[i] = rng.uniform();
  }

  std::uint64_t check = 0;
  DP_LOOP_BEGIN();
  for (std::size_t f = 0; f < frames; ++f) {
    DP_LOOP_ITER();
    for (std::size_t d = 0; d < kStateDim; ++d) {
      DP_WRITE(observation[d]);
      observation[d] = 0.5 + 0.1 * std::sin(static_cast<double>(f + d));
    }

    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < particles_n; ++i) {
      DP_LOOP_ITER();
      DP_WRITE(weights[i]);
      weights[i] = likelihood(particles, i, observation);
    }
    DP_LOOP_END();

    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < particles_n; ++i) {
      DP_LOOP_ITER();
      DP_READ(weights[i]);
      if (i == 0) {
        DP_WRITE(cumulative[0]);
        cumulative[0] = weights[0];
      } else {
        DP_READ(cumulative[i - 1]);
        DP_WRITE(cumulative[i]);
        cumulative[i] = cumulative[i - 1] + weights[i];
      }
    }
    DP_LOOP_END();

    const double total = cumulative[particles_n - 1];
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < particles_n; ++i) {
      DP_LOOP_ITER();
      const double u = (static_cast<double>(i) + 0.5) * total /
                       static_cast<double>(particles_n);
      // Binary search in the cumulative table.
      std::size_t lo = 0, hi = particles_n - 1;
      while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        DP_READ(cumulative[mid]);
        if (cumulative[mid] < u)
          lo = mid + 1;
        else
          hi = mid;
      }
      for (std::size_t d = 0; d < kStateDim; ++d) {
        DP_READ(particles[lo * kStateDim + d]);
        DP_WRITE(next[i * kStateDim + d]);
        next[i * kStateDim + d] =
            particles[lo * kStateDim + d] + 0.01 * (rng.uniform() - 0.5);
      }
    }
    DP_LOOP_END();

    particles.swap(next);
    check += static_cast<std::uint64_t>(total * 1e3);
  }
  DP_LOOP_END();

  return {check};
}

WorkloadResult run_bodytrack_parallel(int scale, unsigned threads) {
  const std::size_t particles_n = 600 * static_cast<std::size_t>(scale);
  const std::size_t frames = 6;
  Rng rng(1616);
  std::vector<double> particles(particles_n * kStateDim);
  std::vector<double> next(particles_n * kStateDim);
  std::vector<double> weights(particles_n), cumulative(particles_n);
  std::vector<double> observation(kStateDim);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    DP_WRITE(particles[i]);
    particles[i] = rng.uniform();
  }

  std::uint64_t check = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    for (std::size_t d = 0; d < kStateDim; ++d) {
      DP_WRITE(observation[d]);
      observation[d] = 0.5 + 0.1 * std::sin(static_cast<double>(f + d));
    }
    DP_SYNC();  // thread creation orders observation writes

    // Likelihoods in parallel.
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const std::size_t lo = particles_n * t / threads;
        const std::size_t hi = particles_n * (t + 1) / threads;
        for (std::size_t i = lo; i < hi; ++i) {
          DP_WRITE(weights[i]);
          weights[i] = likelihood(particles, i, observation);
        }
        DP_SYNC();  // thread exit orders the weight writes
      });
    }
    for (auto& th : pool) th.join();

    // Sequential scan on the main thread (as the real pipeline does).
    for (std::size_t i = 0; i < particles_n; ++i) {
      DP_READ(weights[i]);
      if (i == 0) {
        DP_WRITE(cumulative[0]);
        cumulative[0] = weights[0];
      } else {
        DP_READ(cumulative[i - 1]);
        DP_WRITE(cumulative[i]);
        cumulative[i] = cumulative[i - 1] + weights[i];
      }
    }

    // Resampling in parallel (deterministic per-index jitter).
    DP_SYNC();  // orders the cumulative-table writes before worker reads
    const double total = cumulative[particles_n - 1];
    std::vector<std::thread> rpool;
    for (unsigned t = 0; t < threads; ++t) {
      rpool.emplace_back([&, t] {
        Rng lrng(1616 + f * 31 + t);
        const std::size_t plo = particles_n * t / threads;
        const std::size_t phi = particles_n * (t + 1) / threads;
        for (std::size_t i = plo; i < phi; ++i) {
          const double u = (static_cast<double>(i) + 0.5) * total /
                           static_cast<double>(particles_n);
          std::size_t lo = 0, hi2 = particles_n - 1;
          while (lo < hi2) {
            const std::size_t mid = (lo + hi2) / 2;
            DP_READ(cumulative[mid]);
            if (cumulative[mid] < u)
              lo = mid + 1;
            else
              hi2 = mid;
          }
          for (std::size_t d = 0; d < kStateDim; ++d) {
            DP_READ(particles[lo * kStateDim + d]);
            DP_WRITE(next[i * kStateDim + d]);
            next[i * kStateDim + d] =
                particles[lo * kStateDim + d] + 0.01 * (lrng.uniform() - 0.5);
          }
        }
        DP_SYNC();  // thread exit orders the resampled-state writes
      });
    }
    for (auto& th : rpool) th.join();

    particles.swap(next);
    check += static_cast<std::uint64_t>(total * 1e3);
  }

  return {check};
}

Workload make_bodytrack() {
  Workload w;
  w.name = "bodytrack";
  w.suite = "starbench";
  w.run = run_bodytrack;
  w.run_parallel = run_bodytrack_parallel;
  w.loops = {{"frames", false}, {"likelihood", true}, {"scan", false},
             {"resample", true}};
  return w;
}

}  // namespace depprof::workloads
