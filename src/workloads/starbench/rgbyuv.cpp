// Starbench rgbyuv analogue: pixel-wise RGB -> YUV colour conversion.  One
// streaming pass over a large interleaved RGB buffer into three planes —
// very many distinct addresses with exactly one or two touches each, the
// pattern that gives rgbyuv the highest signature FPR in Table I.
//
// Loops (source order):
//   pixels — parallel

#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("rgbyuv");

namespace depprof::workloads {
namespace {

std::vector<std::uint8_t> make_image(std::size_t pixels) {
  Rng rng(1010);
  std::vector<std::uint8_t> rgb(pixels * 3);
  for (std::size_t p = 0; p < pixels; ++p) {
    DP_WRITE_AT(&rgb[p * 3], 3, "rgb");
    rgb[p * 3 + 0] = static_cast<std::uint8_t>(rng.below(256));
    rgb[p * 3 + 1] = static_cast<std::uint8_t>(rng.below(256));
    rgb[p * 3 + 2] = static_cast<std::uint8_t>(rng.below(256));
  }
  return rgb;
}

void convert_range(const std::vector<std::uint8_t>& rgb, std::size_t lo,
                   std::size_t hi, std::uint8_t* y, std::uint8_t* u,
                   std::uint8_t* v) {
  for (std::size_t p = lo; p < hi; ++p) {
    DP_READ(rgb[p * 3 + 0]);
    DP_READ(rgb[p * 3 + 1]);
    DP_READ(rgb[p * 3 + 2]);
    const int r = rgb[p * 3 + 0], g = rgb[p * 3 + 1], b = rgb[p * 3 + 2];
    DP_WRITE_AT(y + p, 1, "y[p]");
    y[p] = static_cast<std::uint8_t>((66 * r + 129 * g + 25 * b + 4096) >> 8);
    DP_WRITE_AT(u + p, 1, "u[p]");
    u[p] = static_cast<std::uint8_t>((-38 * r - 74 * g + 112 * b + 32768) >> 8);
    DP_WRITE_AT(v + p, 1, "v[p]");
    v[p] = static_cast<std::uint8_t>((112 * r - 94 * g - 18 * b + 32768) >> 8);
  }
}

}  // namespace

WorkloadResult run_rgbyuv(int scale) {
  const std::size_t pixels = 65'536 * static_cast<std::size_t>(scale);
  std::vector<std::uint8_t> rgb = make_image(pixels);
  std::vector<std::uint8_t> y(pixels), u(pixels), v(pixels);

  DP_LOOP_BEGIN();
  for (std::size_t p = 0; p < pixels; ++p) {
    DP_LOOP_ITER();
    convert_range(rgb, p, p + 1, y.data(), u.data(), v.data());
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (std::size_t p = 0; p < pixels; ++p) check += y[p] + u[p] + v[p];
  return {check};
}

WorkloadResult run_rgbyuv_parallel(int scale, unsigned threads) {
  const std::size_t pixels = 65'536 * static_cast<std::size_t>(scale);
  std::vector<std::uint8_t> rgb = make_image(pixels);
  std::vector<std::uint8_t> y(pixels), u(pixels), v(pixels);

  DP_SYNC();  // spawning orders the image-init writes
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      convert_range(rgb, pixels * t / threads, pixels * (t + 1) / threads,
                    y.data(), u.data(), v.data());
    });
  }
  for (auto& th : pool) th.join();

  std::uint64_t check = 0;
  for (std::size_t p = 0; p < pixels; ++p) check += y[p] + u[p] + v[p];
  return {check};
}

Workload make_rgbyuv() {
  Workload w;
  w.name = "rgbyuv";
  w.suite = "starbench";
  w.run = run_rgbyuv;
  w.run_parallel = run_rgbyuv_parallel;
  w.loops = {{"pixels", true}};
  return w;
}

}  // namespace depprof::workloads
