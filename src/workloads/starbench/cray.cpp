// Starbench c-ray analogue: a small sphere ray tracer.  Per-pixel work reads
// the read-only scene and writes one disjoint pixel — the classic
// embarrassingly parallel loop (rows in the pthread version).  Touches a
// large framebuffer, giving c-ray its "many distinct addresses" character
// that drives signature FPR up (Table I).
//
// Loops (source order):
//   pixels — parallel

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("c-ray");

namespace depprof::workloads {
namespace {

constexpr std::size_t kSpheres = 16;

struct Scene {
  std::vector<double> cx, cy, cz, rad;
};

Scene make_scene() {
  Rng rng(808);
  Scene s;
  for (std::size_t i = 0; i < kSpheres; ++i) {
    s.cx.push_back(rng.uniform() * 10.0 - 5.0);
    s.cy.push_back(rng.uniform() * 10.0 - 5.0);
    s.cz.push_back(rng.uniform() * 5.0 + 2.0);
    s.rad.push_back(0.2 + rng.uniform());
    DP_WRITE(s.cx[i]);
    DP_WRITE(s.cy[i]);
    DP_WRITE(s.cz[i]);
    DP_WRITE(s.rad[i]);
  }
  return s;
}

double trace_pixel(const Scene& s, std::size_t px, std::size_t py,
                   std::size_t w, std::size_t h) {
  const double dx = (static_cast<double>(px) / static_cast<double>(w)) * 2.0 - 1.0;
  const double dy = (static_cast<double>(py) / static_cast<double>(h)) * 2.0 - 1.0;
  const double norm = std::sqrt(dx * dx + dy * dy + 1.0);
  double best = 1e30, shade = 0.0;
  for (std::size_t i = 0; i < kSpheres; ++i) {
    DP_READ(s.cx[i]);
    DP_READ(s.cy[i]);
    DP_READ(s.cz[i]);
    DP_READ(s.rad[i]);
    // Ray-sphere intersection with the normalized view ray.
    const double ox = -s.cx[i], oy = -s.cy[i], oz = -s.cz[i];
    const double rdx = dx / norm, rdy = dy / norm, rdz = 1.0 / norm;
    const double b = ox * rdx + oy * rdy + oz * rdz;
    const double c = ox * ox + oy * oy + oz * oz - s.rad[i] * s.rad[i];
    const double disc = b * b - c;
    if (disc > 0.0) {
      const double t = -b - std::sqrt(disc);
      if (t > 0.0 && t < best) {
        best = t;
        shade = 1.0 / (1.0 + t * 0.1);
      }
    }
  }
  return shade;
}

}  // namespace

WorkloadResult run_cray(int scale) {
  const std::size_t w = 128, h = 64 * static_cast<std::size_t>(scale);
  Scene s = make_scene();
  std::vector<double> image(w * h, 0.0);

  DP_LOOP_BEGIN();
  for (std::size_t p = 0; p < w * h; ++p) {
    DP_LOOP_ITER();
    const double v = trace_pixel(s, p % w, p / w, w, h);
    DP_WRITE(image[p]);
    image[p] = v;
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (double v : image) check += static_cast<std::uint64_t>(v * 255.0);
  return {check};
}

WorkloadResult run_cray_parallel(int scale, unsigned threads) {
  const std::size_t w = 128, h = 64 * static_cast<std::size_t>(scale);
  Scene s = make_scene();
  std::vector<double> image(w * h, 0.0);

  DP_SYNC();  // spawning orders the scene-init writes
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::size_t lo = (w * h) * t / threads;
      const std::size_t hi = (w * h) * (t + 1) / threads;
      for (std::size_t p = lo; p < hi; ++p) {
        const double v = trace_pixel(s, p % w, p / w, w, h);
        DP_WRITE(image[p]);
        image[p] = v;
      }
    });
  }
  for (auto& th : pool) th.join();

  std::uint64_t check = 0;
  for (double v : image) check += static_cast<std::uint64_t>(v * 255.0);
  return {check};
}

Workload make_cray() {
  Workload w;
  w.name = "c-ray";
  w.suite = "starbench";
  w.run = run_cray;
  w.run_parallel = run_cray_parallel;
  w.loops = {{"pixels", true}};
  return w;
}

}  // namespace depprof::workloads
