// Starbench h264dec analogue: simplified video decode.  Within a frame,
// macroblock rows use intra prediction from the left neighbour (carried
// along the row) and motion compensation reads from the previous reference
// frame; independent slices decode in parallel (the Starbench h264dec
// parallelization).  The frame loop is carried through the reference frame.
//
// Loops (source order):
//   frames      — NOT parallel (reference frame carried)
//   slices      — parallel (slices are independent within a frame)
//   macroblocks — NOT parallel (left-neighbour intra prediction carried)

#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("h264dec");

namespace depprof::workloads {
namespace {

constexpr std::size_t kMbSize = 16;   // pixels per macroblock (1D simplification)
constexpr std::size_t kMbPerSlice = 24;
constexpr std::size_t kSlices = 4;
constexpr std::size_t kFrameLen = kMbSize * kMbPerSlice * kSlices;

/// Decodes one slice of a frame: each macroblock mixes motion compensation
/// (a shifted read from the reference frame) with intra prediction (the last
/// pixel of the left-neighbour macroblock in the *current* frame).
void decode_slice(const std::uint8_t* ref, std::uint8_t* cur, std::size_t slice,
                  std::uint32_t mv) {
  const std::size_t base = slice * kMbSize * kMbPerSlice;
  DP_LOOP_BEGIN();
  for (std::size_t mb = 0; mb < kMbPerSlice; ++mb) {
    DP_LOOP_ITER();
    const std::size_t mb_base = base + mb * kMbSize;
    std::uint8_t intra = 128;
    if (mb > 0) {
      DP_READ_AT(cur + mb_base - 1, 1, "cur");
      intra = cur[mb_base - 1];
    }
    for (std::size_t p = 0; p < kMbSize; ++p) {
      const std::size_t src = (mb_base + p + mv) % kFrameLen;
      DP_READ_AT(ref + src, 1, "ref");
      DP_WRITE_AT(cur + mb_base + p, 1, "cur");
      cur[mb_base + p] =
          static_cast<std::uint8_t>((ref[src] + intra + static_cast<int>(p)) / 2);
    }
  }
  DP_LOOP_END();
}

}  // namespace

WorkloadResult run_h264dec(int scale) {
  const std::size_t frames = 8 * static_cast<std::size_t>(scale);
  Rng rng(1717);
  std::vector<std::uint8_t> ref(kFrameLen), cur(kFrameLen);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    DP_WRITE(ref[i]);
    ref[i] = static_cast<std::uint8_t>(rng.below(256));
  }

  std::uint64_t check = 0;
  DP_LOOP_BEGIN();
  for (std::size_t f = 0; f < frames; ++f) {
    DP_LOOP_ITER();
    const auto mv = static_cast<std::uint32_t>(rng.below(64));

    DP_LOOP_BEGIN();
    for (std::size_t s = 0; s < kSlices; ++s) {
      DP_LOOP_ITER();
      decode_slice(ref.data(), cur.data(), s, mv);
    }
    DP_LOOP_END();

    ref.swap(cur);
    check += ref[f % kFrameLen];
  }
  DP_LOOP_END();

  return {check};
}

WorkloadResult run_h264dec_parallel(int scale, unsigned threads) {
  const std::size_t frames = 8 * static_cast<std::size_t>(scale);
  Rng rng(1717);
  std::vector<std::uint8_t> ref(kFrameLen), cur(kFrameLen);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    DP_WRITE(ref[i]);
    ref[i] = static_cast<std::uint8_t>(rng.below(256));
  }

  std::uint64_t check = 0;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto mv = static_cast<std::uint32_t>(rng.below(64));

    // Slices decode on worker threads (kSlices tasks over `threads` workers).
    DP_SYNC();  // spawning orders the previous frame's writes
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::size_t s = t; s < kSlices; s += threads)
          decode_slice(ref.data(), cur.data(), s, mv);
        DP_SYNC();  // thread exit orders this frame's writes
      });
    }
    for (auto& th : pool) th.join();

    ref.swap(cur);
    check += ref[f % kFrameLen];
  }

  return {check};
}

Workload make_h264dec() {
  Workload w;
  w.name = "h264dec";
  w.suite = "starbench";
  w.run = run_h264dec;
  w.run_parallel = run_h264dec_parallel;
  // Ascending begin-line order: the macroblock loop lives in decode_slice
  // above the frame and slice loops.
  w.loops = {{"macroblocks", false}, {"frames", false}, {"slices", true}};
  return w;
}

}  // namespace depprof::workloads
