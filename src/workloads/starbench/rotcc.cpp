// Starbench rot-cc analogue: rotation followed by colour conversion — the
// two-stage pipeline variant.  Stage one rotates into an intermediate
// buffer, stage two converts it; each stage's row loop is parallel, and the
// pthread version pipelines the stages.  The union of both footprints gives
// rot-cc the largest distinct-address count of the suite (highest FPR row in
// Table I).
//
// Loops (source order):
//   rotate rows  — parallel
//   convert rows — parallel

#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("rot-cc");

namespace depprof::workloads {
namespace {

std::vector<std::uint32_t> make_image(std::size_t w, std::size_t h) {
  Rng rng(1212);
  std::vector<std::uint32_t> img(w * h);
  for (std::size_t i = 0; i < img.size(); ++i) {
    DP_WRITE(img[i]);
    img[i] = static_cast<std::uint32_t>(rng.below(1u << 24));
  }
  return img;
}

void rotate_rows(const std::vector<std::uint32_t>& src, std::size_t w,
                 std::size_t h, std::size_t lo, std::size_t hi,
                 std::uint32_t* mid) {
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      DP_READ(src[y * w + x]);
      DP_WRITE_AT(mid + x * h + (h - 1 - y), 4, "mid");
      mid[x * h + (h - 1 - y)] = src[y * w + x];
    }
  }
}

void convert_rows(const std::uint32_t* mid, std::size_t w, std::size_t lo,
                  std::size_t hi, std::uint8_t* luma) {
  // After rotation the image is h x w (columns become rows); `w` here is the
  // rotated row length, i.e. the original height.
  for (std::size_t y = lo; y < hi; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      DP_READ_AT(mid + y * w + x, 4, "mid");
      const std::uint32_t p = mid[y * w + x];
      const int r = static_cast<int>(p & 0xFF);
      const int g = static_cast<int>((p >> 8) & 0xFF);
      const int b = static_cast<int>((p >> 16) & 0xFF);
      DP_WRITE_AT(luma + y * w + x, 1, "luma");
      luma[y * w + x] = static_cast<std::uint8_t>((66 * r + 129 * g + 25 * b + 4096) >> 8);
    }
  }
}

}  // namespace

WorkloadResult run_rotcc(int scale) {
  const std::size_t w = 256, h = 96 * static_cast<std::size_t>(scale);
  std::vector<std::uint32_t> src = make_image(w, h);
  std::vector<std::uint32_t> mid(w * h, 0);
  std::vector<std::uint8_t> luma(w * h, 0);

  DP_LOOP_BEGIN();
  for (std::size_t y = 0; y < h; ++y) {
    DP_LOOP_ITER();
    rotate_rows(src, w, h, y, y + 1, mid.data());
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t y = 0; y < w; ++y) {  // rotated image is h x w
    DP_LOOP_ITER();
    convert_rows(mid.data(), h, y, y + 1, luma.data());
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (auto p : luma) check += p;
  return {check};
}

WorkloadResult run_rotcc_parallel(int scale, unsigned threads) {
  const std::size_t w = 256, h = 96 * static_cast<std::size_t>(scale);
  std::vector<std::uint32_t> src = make_image(w, h);
  std::vector<std::uint32_t> mid(w * h, 0);
  std::vector<std::uint8_t> luma(w * h, 0);

  DP_SYNC();  // spawning orders the image-init writes
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        rotate_rows(src, w, h, h * t / threads, h * (t + 1) / threads, mid.data());
        DP_SYNC();  // thread exit orders the rotated rows for stage two
      });
    }
    for (auto& th : pool) th.join();
  }
  {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        convert_rows(mid.data(), h, w * t / threads, w * (t + 1) / threads,
                     luma.data());
      });
    }
    for (auto& th : pool) th.join();
  }

  std::uint64_t check = 0;
  for (auto p : luma) check += p;
  return {check};
}

Workload make_rotcc() {
  Workload w;
  w.name = "rot-cc";
  w.suite = "starbench";
  w.run = run_rotcc;
  w.run_parallel = run_rotcc_parallel;
  w.loops = {{"rotate-rows", true}, {"convert-rows", true}};
  return w;
}

}  // namespace depprof::workloads
