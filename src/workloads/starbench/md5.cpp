// Starbench md5 analogue: real MD5 over many independent buffers.  The
// buffer loop is parallel (the Starbench pthread version hashes buffers on
// worker threads); the block chain *within* one buffer is carried (each
// block folds into the running digest state).
//
// Loops (source order):
//   buffers — parallel
//   blocks  — NOT parallel (digest state carried block to block)

#include <array>
#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("md5");

namespace depprof::workloads {
namespace {

constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u};

constexpr std::uint32_t kK[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kS[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12,
                        17, 22, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
                        5, 9,  14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11,
                        16, 23, 4, 11, 16, 23, 6, 10, 15, 21, 6, 10, 15, 21,
                        6, 10, 15, 21, 6, 10, 15, 21};

std::uint32_t rotl(std::uint32_t x, int s) { return (x << s) | (x >> (32 - s)); }

/// One MD5 compression of a 64-byte block into the digest state.
void md5_block(std::uint32_t state[4], const std::uint8_t* block) {
  std::uint32_t m[16];
  std::memcpy(m, block, 64);
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) % 16;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) % 16;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) % 16;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kK[i] + m[g], kS[i]);
    a = tmp;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
}

std::uint64_t hash_buffer(const std::uint8_t* data, std::size_t blocks,
                          std::uint32_t* state) {
  DP_LOOP_BEGIN();
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    DP_LOOP_ITER();
    // One load per 32-bit message word, as the IR-level instrumentation of
    // the real decoder would see.
    for (std::size_t word = 0; word < 16; ++word)
      DP_READ_AT(data + blk * 64 + word * 4, 4, "block");
    DP_READ_AT(state, 16, "state");
    md5_block(state, data + blk * 64);
    DP_WRITE_AT(state, 16, "state");
  }
  DP_LOOP_END();
  return (static_cast<std::uint64_t>(state[0]) << 32) | state[1];
}

std::vector<std::uint8_t> make_data(std::size_t bytes) {
  Rng rng(909);
  std::vector<std::uint8_t> data(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (i % 64 == 0) DP_WRITE_AT(&data[i], 64, "data");
    data[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  return data;
}

}  // namespace

WorkloadResult run_md5(int scale) {
  const std::size_t buffers = 32 * static_cast<std::size_t>(scale);
  const std::size_t blocks = 64;  // 4 KiB per buffer
  std::vector<std::uint8_t> data = make_data(buffers * blocks * 64);
  std::vector<std::uint32_t> states(buffers * 4);
  std::uint64_t check = 0;

  DP_LOOP_BEGIN();
  for (std::size_t buf = 0; buf < buffers; ++buf) {
    DP_LOOP_ITER();
    std::uint32_t* st = &states[buf * 4];
    std::memcpy(st, kInit, sizeof(kInit));
    check ^= hash_buffer(data.data() + buf * blocks * 64, blocks, st);
  }
  DP_LOOP_END();

  return {check};
}

WorkloadResult run_md5_parallel(int scale, unsigned threads) {
  const std::size_t buffers = 32 * static_cast<std::size_t>(scale);
  const std::size_t blocks = 64;
  std::vector<std::uint8_t> data = make_data(buffers * blocks * 64);
  std::vector<std::uint32_t> states(buffers * 4);
  std::vector<std::uint64_t> partial(threads, 0);

  DP_SYNC();  // spawning orders the input-data writes
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::size_t lo = buffers * t / threads;
      const std::size_t hi = buffers * (t + 1) / threads;
      for (std::size_t buf = lo; buf < hi; ++buf) {
        std::uint32_t* st = &states[buf * 4];
        std::memcpy(st, kInit, sizeof(kInit));
        partial[t] ^= hash_buffer(data.data() + buf * blocks * 64, blocks, st);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::uint64_t check = 0;
  for (auto p : partial) check ^= p;
  return {check};
}

Workload make_md5() {
  Workload w;
  w.name = "md5";
  w.suite = "starbench";
  w.run = run_md5;
  w.run_parallel = run_md5_parallel;
  // Ascending begin-line order: the block chain inside hash_buffer is
  // defined before the buffer loop in this file.
  w.loops = {{"blocks", false}, {"buffers", true}};
  return w;
}

}  // namespace depprof::workloads
