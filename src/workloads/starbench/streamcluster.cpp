// Starbench streamcluster analogue: online facility-location clustering.
// Distance evaluation over all points is parallel (with a cost reduction);
// the decision loop over candidate centers is carried (each opened center
// changes the assignment the next candidate is judged against) — the small
// hot working set (few addresses, many touches) that makes streamcluster
// the *low*-FPR row of Table I.
//
// Loops (source order):
//   candidates — NOT parallel (carried via assignment/cost state)
//   distances  — parallel (reduction on cost)

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "mt/instrumented_mutex.hpp"
#include "workloads/workload.hpp"

DP_FILE("streamcluster");

namespace depprof::workloads {
namespace {

constexpr std::size_t kDims = 3;

double dist2(const std::vector<float>& pts, std::size_t a, std::size_t b) {
  double d = 0.0;
  for (std::size_t k = 0; k < kDims; ++k) {
    DP_READ(pts[a * kDims + k]);
    DP_READ(pts[b * kDims + k]);
    const double diff = pts[a * kDims + k] - pts[b * kDims + k];
    d += diff * diff;
  }
  return d;
}

std::vector<float> make_points(std::size_t n) {
  Rng rng(1414);
  std::vector<float> pts(n * kDims);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    DP_WRITE(pts[i]);
    pts[i] = static_cast<float>(rng.uniform());
  }
  return pts;
}

}  // namespace

WorkloadResult run_streamcluster(int scale) {
  const std::size_t n = 600 * static_cast<std::size_t>(scale);
  const std::size_t candidates = 24;
  std::vector<float> pts = make_points(n);
  std::vector<std::uint32_t> center(n, 0);
  std::vector<float> cost(n);
  for (std::size_t i = 0; i < n; ++i)
    cost[i] = static_cast<float>(dist2(pts, i, 0));
  double total_cost = 0.0;

  DP_LOOP_BEGIN();
  for (std::size_t c = 1; c <= candidates; ++c) {
    DP_LOOP_ITER();
    const std::size_t cand = (c * 37) % n;

    double gain = 0.0;
    DP_LOOP_BEGIN();
    for (std::size_t i = 0; i < n; ++i) {
      DP_LOOP_ITER();
      const double d = dist2(pts, i, cand);
      DP_READ(cost[i]);
      if (d < cost[i]) {
        DP_REDUCTION(); DP_UPDATE(gain); gain += cost[i] - d;
      }
    }
    DP_LOOP_END();

    if (gain > 1.0) {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = dist2(pts, i, cand);
        DP_READ(cost[i]);
        if (d < cost[i]) {
          DP_WRITE(cost[i]);
          cost[i] = static_cast<float>(d);
          DP_WRITE(center[i]);
          center[i] = static_cast<std::uint32_t>(cand);
        }
      }
    }
    DP_READ(total_cost);
    DP_WRITE(total_cost);
    total_cost = total_cost * 0.5 + gain;
  }
  DP_LOOP_END();

  std::uint64_t check = static_cast<std::uint64_t>(total_cost * 1e3);
  for (auto c : center) check += c;
  return {check};
}

WorkloadResult run_streamcluster_parallel(int scale, unsigned threads) {
  const std::size_t n = 600 * static_cast<std::size_t>(scale);
  const std::size_t candidates = 24;
  std::vector<float> pts = make_points(n);
  std::vector<std::uint32_t> center(n, 0);
  std::vector<float> cost(n);
  for (std::size_t i = 0; i < n; ++i)
    cost[i] = static_cast<float>(dist2(pts, i, 0));
  double total_cost = 0.0;
  InstrumentedMutex gain_mu;

  for (std::size_t c = 1; c <= candidates; ++c) {
    DP_SYNC();  // spawning orders main's cost/point writes for the workers
    const std::size_t cand = (c * 37) % n;
    double gain = 0.0;

    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        const std::size_t lo = n * t / threads;
        const std::size_t hi = n * (t + 1) / threads;
        double local = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          const double d = dist2(pts, i, cand);
          DP_READ(cost[i]);
          if (d < cost[i]) local += cost[i] - d;
        }
        std::lock_guard lock(gain_mu);
        DP_UPDATE(gain);
        gain += local;
      });
    }
    for (auto& th : pool) th.join();

    if (gain > 1.0) {
      std::vector<std::thread> upd;
      for (unsigned t = 0; t < threads; ++t) {
        upd.emplace_back([&, t] {
          const std::size_t lo = n * t / threads;
          const std::size_t hi = n * (t + 1) / threads;
          for (std::size_t i = lo; i < hi; ++i) {
            const double d = dist2(pts, i, cand);
            DP_READ(cost[i]);
            if (d < cost[i]) {
              DP_WRITE(cost[i]);
              cost[i] = static_cast<float>(d);
              DP_WRITE(center[i]);
              center[i] = static_cast<std::uint32_t>(cand);
            }
          }
          DP_SYNC();  // thread exit orders the cost updates
        });
      }
      for (auto& th : upd) th.join();
    }
    total_cost = total_cost * 0.5 + gain;
  }

  std::uint64_t check = static_cast<std::uint64_t>(total_cost * 1e3);
  for (auto c : center) check += c;
  return {check};
}

Workload make_streamcluster() {
  Workload w;
  w.name = "streamcluster";
  w.suite = "starbench";
  w.run = run_streamcluster;
  w.run_parallel = run_streamcluster_parallel;
  w.loops = {{"candidates", false}, {"distances", true}};
  return w;
}

}  // namespace depprof::workloads
