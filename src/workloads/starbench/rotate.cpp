// Starbench rotate analogue: 90-degree image rotation.  Reads stream
// row-major while writes land column-major (transposed stride) — large
// address footprint with a cache-hostile pattern, matching rotate's high
// FPR in Table I.  Rows are independent (parallel).
//
// Loops (source order):
//   rows — parallel

#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("rotate");

namespace depprof::workloads {
namespace {

std::vector<std::uint32_t> make_image(std::size_t w, std::size_t h) {
  Rng rng(1111);
  std::vector<std::uint32_t> img(w * h);
  for (std::size_t i = 0; i < img.size(); ++i) {
    DP_WRITE(img[i]);
    img[i] = static_cast<std::uint32_t>(rng.below(1u << 24));
  }
  return img;
}

void rotate_rows(const std::vector<std::uint32_t>& src, std::size_t w,
                 std::size_t h, std::size_t row_lo, std::size_t row_hi,
                 std::uint32_t* dst) {
  // dst is h x w: dst[x][h-1-y] = src[y][x].
  for (std::size_t y = row_lo; y < row_hi; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      DP_READ(src[y * w + x]);
      DP_WRITE_AT(dst + x * h + (h - 1 - y), 4, "dst");
      dst[x * h + (h - 1 - y)] = src[y * w + x];
    }
  }
}

}  // namespace

WorkloadResult run_rotate(int scale) {
  const std::size_t w = 256, h = 128 * static_cast<std::size_t>(scale);
  std::vector<std::uint32_t> src = make_image(w, h);
  std::vector<std::uint32_t> dst(w * h, 0);

  DP_LOOP_BEGIN();
  for (std::size_t y = 0; y < h; ++y) {
    DP_LOOP_ITER();
    rotate_rows(src, w, h, y, y + 1, dst.data());
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (auto p : dst) check += p & 0xFF;
  return {check};
}

WorkloadResult run_rotate_parallel(int scale, unsigned threads) {
  const std::size_t w = 256, h = 128 * static_cast<std::size_t>(scale);
  std::vector<std::uint32_t> src = make_image(w, h);
  std::vector<std::uint32_t> dst(w * h, 0);

  DP_SYNC();  // spawning orders the image-init writes
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      rotate_rows(src, w, h, h * t / threads, h * (t + 1) / threads, dst.data());
    });
  }
  for (auto& th : pool) th.join();

  std::uint64_t check = 0;
  for (auto p : dst) check += p & 0xFF;
  return {check};
}

Workload make_rotate() {
  Workload w;
  w.name = "rotate";
  w.suite = "starbench";
  w.run = run_rotate;
  w.run_parallel = run_rotate_parallel;
  w.loops = {{"rows", true}};
  return w;
}

}  // namespace depprof::workloads
