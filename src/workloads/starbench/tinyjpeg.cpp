// Starbench tinyjpeg analogue: JPEG-style decode.  The entropy-decode pass
// walks a bitstream with a carried cursor (sequential); the per-block IDCT
// pass is parallel over 8x8 blocks.  The tiny working set per block with
// heavy re-touching matches tinyjpeg's low distinct-address count in
// Table I.
//
// Loops (source order):
//   entropy — NOT parallel (bitstream cursor carried)
//   idct    — parallel (blocks independent)

#include <cmath>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "instrument/macros.hpp"
#include "workloads/workload.hpp"

DP_FILE("tinyjpeg");

namespace depprof::workloads {
namespace {

constexpr std::size_t kBlockSize = 64;  // 8x8 coefficients

void idct_block(const std::int16_t* coef, std::uint8_t* out) {
  // Separable 8-point transform approximation (sums over rows/cols).
  double tmp[kBlockSize];
  for (std::size_t u = 0; u < 8; ++u) {
    for (std::size_t x = 0; x < 8; ++x) {
      double s = 0.0;
      for (std::size_t v = 0; v < 8; ++v) {
        DP_READ_AT(coef + u * 8 + v, 2, "coef");
        s += coef[u * 8 + v] *
             std::cos((2.0 * static_cast<double>(x) + 1.0) *
                      static_cast<double>(v) * 0.19634954);
      }
      tmp[u * 8 + x] = s;
    }
  }
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    DP_WRITE_AT(out + i, 1, "pixels");
    const double v = tmp[i] / 8.0 + 128.0;
    out[i] = static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
  }
}

}  // namespace

WorkloadResult run_tinyjpeg(int scale) {
  const std::size_t blocks = 96 * static_cast<std::size_t>(scale);
  Rng rng(1515);
  std::vector<std::uint8_t> bitstream(blocks * 80);
  for (std::size_t i = 0; i < bitstream.size(); ++i) {
    DP_WRITE(bitstream[i]);
    bitstream[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  std::vector<std::int16_t> coef(blocks * kBlockSize, 0);
  std::vector<std::uint8_t> pixels(blocks * kBlockSize, 0);
  std::size_t cursor = 0;

  // Entropy decode: the bitstream cursor makes this strictly sequential.
  DP_LOOP_BEGIN();
  for (std::size_t b = 0; b < blocks; ++b) {
    DP_LOOP_ITER();
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      DP_READ(cursor);
      DP_READ(bitstream[cursor % bitstream.size()]);
      const std::uint8_t byte = bitstream[cursor % bitstream.size()];
      DP_WRITE(coef[b * kBlockSize + i]);
      coef[b * kBlockSize + i] = static_cast<std::int16_t>((byte & 0x3F) - 32);
      DP_WRITE(cursor);
      cursor += 1 + (byte >> 6);  // variable-length consume
    }
  }
  DP_LOOP_END();

  DP_LOOP_BEGIN();
  for (std::size_t b = 0; b < blocks; ++b) {
    DP_LOOP_ITER();
    idct_block(&coef[b * kBlockSize], &pixels[b * kBlockSize]);
  }
  DP_LOOP_END();

  std::uint64_t check = 0;
  for (auto p : pixels) check += p;
  return {check};
}

WorkloadResult run_tinyjpeg_parallel(int scale, unsigned threads) {
  const std::size_t blocks = 96 * static_cast<std::size_t>(scale);
  Rng rng(1515);
  std::vector<std::uint8_t> bitstream(blocks * 80);
  for (std::size_t i = 0; i < bitstream.size(); ++i) {
    DP_WRITE(bitstream[i]);
    bitstream[i] = static_cast<std::uint8_t>(rng.below(256));
  }
  std::vector<std::int16_t> coef(blocks * kBlockSize, 0);
  std::vector<std::uint8_t> pixels(blocks * kBlockSize, 0);
  std::size_t cursor = 0;

  // Entropy decode stays on the main thread (as in the real decoder)...
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      DP_READ(cursor);
      DP_READ(bitstream[cursor % bitstream.size()]);
      const std::uint8_t byte = bitstream[cursor % bitstream.size()];
      DP_WRITE(coef[b * kBlockSize + i]);
      coef[b * kBlockSize + i] = static_cast<std::int16_t>((byte & 0x3F) - 32);
      DP_WRITE(cursor);
      cursor += 1 + (byte >> 6);
    }
  }

  // ...while the IDCT fans out over worker threads.
  DP_SYNC();  // spawning orders the decoded coefficients for the workers
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      const std::size_t lo = blocks * t / threads;
      const std::size_t hi = blocks * (t + 1) / threads;
      for (std::size_t b = lo; b < hi; ++b)
        idct_block(&coef[b * kBlockSize], &pixels[b * kBlockSize]);
    });
  }
  for (auto& th : pool) th.join();

  std::uint64_t check = 0;
  for (auto p : pixels) check += p;
  return {check};
}

Workload make_tinyjpeg() {
  Workload w;
  w.name = "tinyjpeg";
  w.suite = "starbench";
  w.run = run_tinyjpeg;
  w.run_parallel = run_tinyjpeg_parallel;
  // Ascending begin-line order: idct_block's reads live above the loops but
  // carry no DP_LOOP of their own; the instrumented loops are entropy, idct.
  w.loops = {{"entropy", false}, {"idct", true}};
  return w;
}

}  // namespace depprof::workloads
