#include "harness/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/mem_stats.hpp"
#include "common/timer.hpp"
#include "instrument/runtime.hpp"
#include "sched/sched.hpp"

namespace depprof {

double RunMeasurement::simulated_parallel_sec() const {
  double worker_max = 0.0;
  for (double b : stats.worker_busy_sec) worker_max = std::max(worker_max, b);
  return std::max(producer_cpu_sec, worker_max) + stats.merge_sec;
}

namespace {

WorkloadResult invoke(const Workload& w, const RunOptions& opts) {
  if (opts.target_threads > 0 && w.run_parallel)
    return w.run_parallel(opts.scale, opts.target_threads);
  return w.run(opts.scale);
}

std::unique_ptr<IProfiler> make_profiler(const ProfilerConfig& cfg,
                                         const RunOptions& opts) {
  return opts.parallel_pipeline ? make_parallel_profiler(cfg)
                                : make_serial_profiler(cfg);
}

}  // namespace

SchedEnvSession::SchedEnvSession(bool enabled) {
  const char* on = std::getenv("DEPPROF_SCHED");
  if (!enabled || on == nullptr || std::string(on) == "0") return;
  sched::Options opts;
  if (const char* seed = std::getenv("DEPPROF_SCHED_SEED"))
    opts.seed = std::strtoull(seed, nullptr, 10);
  if (const char* algo = std::getenv("DEPPROF_SCHED_ALGO"))
    if (!sched::parse_algo(algo, opts.algo))
      std::fprintf(stderr, "sched: unknown DEPPROF_SCHED_ALGO '%s'\n", algo);
  if (const char* path = std::getenv("DEPPROF_SCHED_REPLAY")) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!in || !sched::ScheduleTrace::parse(opts.replay, text.str(), &error))
      std::fprintf(stderr, "sched: cannot replay %s: %s\n", path,
                   in ? error.c_str() : "unreadable");
  }
  sched::begin(opts);
  active_ = true;
}

SchedEnvSession::~SchedEnvSession() {
  if (!active_) return;
  const sched::Result r = sched::end();
  if (const char* path = std::getenv("DEPPROF_SCHED_RECORD")) {
    std::ofstream out(path);
    out << r.recorded.format();
    if (!out)
      std::fprintf(stderr, "sched: cannot write schedule to %s\n", path);
  }
  std::fprintf(stderr,
               "sched: steps=%llu divergences=%llu free_ran=%d "
               "violations=%llu\n",
               static_cast<unsigned long long>(r.steps),
               static_cast<unsigned long long>(r.divergences),
               r.free_ran ? 1 : 0,
               static_cast<unsigned long long>(sched::violation_count()));
}

double measure_native(const Workload& w, const RunOptions& opts) {
  // Warm-up run populates caches and the allocator.
  (void)invoke(w, opts);
  WallTimer t;
  for (int r = 0; r < std::max(1, opts.native_reps); ++r) (void)invoke(w, opts);
  return t.elapsed() / std::max(1, opts.native_reps);
}

DepMap union_over_inputs(const Workload& w, const ProfilerConfig& config,
                         const std::vector<int>& scales) {
  DepMap all;
  for (int scale : scales) {
    RunOptions opts;
    opts.scale = scale;
    opts.native_reps = 1;
    RunMeasurement m = profile_workload(w, config, opts);
    all.merge(m.deps);
  }
  return all;
}

Trace record_workload(const Workload& w, const RunOptions& opts) {
  TraceRecorder recorder;
  Runtime::instance().reset();
  Runtime::instance().attach(&recorder, opts.target_threads > 0);
  (void)invoke(w, opts);
  Runtime::instance().detach();
  return std::move(recorder.trace());
}

RunMeasurement profile_workload(const Workload& w, const ProfilerConfig& config,
                                const RunOptions& opts) {
  RunMeasurement m;

  // Native baseline (runtime detached: macros cost one predicted branch).
  Runtime::instance().reset();
  m.native_checksum = invoke(w, opts).checksum;  // warm-up + checksum
  {
    WallTimer t;
    for (int r = 0; r < std::max(1, opts.native_reps); ++r) (void)invoke(w, opts);
    m.native_sec = t.elapsed() / std::max(1, opts.native_reps);
  }

  // Profiled run (optionally under the deterministic schedule controller —
  // the session spans construction through finish so every pipeline thread
  // is scheduled from its first hand-off).
  ProfilerConfig cfg = config;
  if (opts.target_threads > 0) cfg.mt_targets = true;
  MemStats::instance().reset();
  Runtime::instance().reset();
  // MT targets are excluded: the main thread blocks joining target threads
  // mid-run, which the controller would (correctly) flag as a stall.
  SchedEnvSession sched_session(opts.parallel_pipeline &&
                                opts.target_threads == 0);
  auto profiler = make_profiler(cfg, opts);
  Runtime::instance().attach(profiler.get(), cfg.mt_targets);
  ThreadCpuTimer producer_cpu;
  WallTimer wall;
  m.profiled_checksum = invoke(w, opts).checksum;
  m.producer_cpu_sec = producer_cpu.elapsed();
  Runtime::instance().detach();  // calls finish(): drains, joins, merges
  m.profiled_sec = wall.elapsed();

  m.control_flow = Runtime::instance().control_flow();
  m.stats = profiler->stats();
  m.peak_component_bytes = MemStats::instance().peak();
  for (unsigned c = 0; c < static_cast<unsigned>(MemComponent::kCount); ++c)
    m.component_bytes[c] =
        MemStats::instance().bytes(static_cast<MemComponent>(c));
  m.deps = profiler->take_dependences();

  if (opts.target_threads > 0) {
    // MT targets run their accesses on their own threads; the main thread's
    // CPU time misses them.  Reconstruct the per-core producer share from
    // total wall time minus worker processing (single-core host: everything
    // is serialized), spread over the target threads.
    double worker_total = 0.0;
    for (double b : m.stats.worker_busy_sec) worker_total += b;
    m.producer_cpu_sec =
        std::max(0.0, m.profiled_sec - worker_total) /
        static_cast<double>(opts.target_threads);
  }
  return m;
}

}  // namespace depprof
