#include "harness/table2.hpp"

#include <algorithm>

#include "analysis/loop_parallelism.hpp"
#include "harness/runner.hpp"
#include "instrument/runtime.hpp"

namespace depprof {
namespace {

/// Maps analyzer verdicts (sorted by begin location, the ControlFlowLog
/// order) onto the workload's ground-truth list and scores them.
struct Scored {
  unsigned identified = 0;      ///< annotated loops found parallelizable
  unsigned false_parallel = 0;  ///< non-annotated loops found parallelizable
};

Scored score(const std::vector<LoopVerdict>& verdicts,
             const std::vector<LoopTruth>& truth) {
  Scored s;
  const std::size_t n = std::min(verdicts.size(), truth.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (truth[i].parallelizable) {
      s.identified += verdicts[i].parallelizable() ? 1 : 0;
    } else {
      s.false_parallel += verdicts[i].parallelizable() ? 1 : 0;
    }
  }
  return s;
}

std::vector<LoopVerdict> analyze_run(const Workload& w,
                                     const ProfilerConfig& cfg, int scale) {
  RunOptions opts;
  opts.scale = scale;
  opts.native_reps = 1;
  RunMeasurement m = profile_workload(w, cfg, opts);
  LoopAnalysisOptions aopts;
  aopts.reduction_lines = Runtime::instance().reduction_lines();
  return analyze_loops(m.deps, m.control_flow, aopts);
}

}  // namespace

Table2Row run_table2(const Workload& w, std::size_t sig_slots, int scale) {
  Table2Row row;
  row.program = w.name;
  for (const auto& t : w.loops) row.omp_loops += t.parallelizable ? 1 : 0;

  ProfilerConfig perfect;
  perfect.storage = StorageKind::kPerfect;
  const auto dp_verdicts = analyze_run(w, perfect, scale);
  const Scored dp = score(dp_verdicts, w.loops);
  row.identified_dp = dp.identified;

  ProfilerConfig sig;
  sig.storage = StorageKind::kSignature;
  sig.slots = sig_slots;
  const auto sig_verdicts = analyze_run(w, sig, scale);
  const Scored sg = score(sig_verdicts, w.loops);
  row.identified_sig = sg.identified;
  row.false_parallel_sig = sg.false_parallel;
  row.missed_sig =
      row.identified_dp > row.identified_sig
          ? row.identified_dp - row.identified_sig
          : 0;
  return row;
}

}  // namespace depprof
