#include "harness/accuracy.hpp"

namespace depprof {

AccuracyResult compare_deps(const DepMap& baseline, const DepMap& tested) {
  AccuracyResult r;
  r.baseline_deps = baseline.size();
  r.tested_deps = tested.size();
  for (const auto& [key, info] : tested) {
    (void)info;
    if (baseline.find(key) == nullptr) ++r.false_positives;
  }
  for (const auto& [key, info] : baseline) {
    (void)info;
    if (tested.find(key) == nullptr) ++r.false_negatives;
  }
  return r;
}

}  // namespace depprof
