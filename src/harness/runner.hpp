#pragma once
// Measurement harness shared by the benchmark binaries and examples.
//
// Runs a workload natively and under a configured profiler, and collects
// the quantities the paper's evaluation reports: slowdown (Sec. VI-B1),
// component memory (Sec. VI-B2), dependence sets for accuracy comparison
// (Sec. VI-A), and the control-flow log for the analyses of Sec. VII.
//
// Single-core host note (see DESIGN.md): besides the real wall-clock
// slowdown, parallel runs report a *simulated* parallel time — the time a
// machine with one core per pipeline thread would observe, reconstructed
// from the producer's CPU time and the per-worker busy times measured with
// CLOCK_THREAD_CPUTIME_ID.

#include <memory>

#include "common/mem_stats.hpp"
#include "core/dep.hpp"
#include "core/profiler.hpp"
#include "trace/control_flow.hpp"
#include "trace/trace.hpp"
#include "workloads/workload.hpp"

namespace depprof {

struct RunMeasurement {
  double native_sec = 0.0;       ///< uninstrumented wall time
  double profiled_sec = 0.0;     ///< instrumented wall time incl. finish()
  double producer_cpu_sec = 0.0; ///< CPU time of the target thread(s)
  ProfilerStats stats;
  std::int64_t peak_component_bytes = 0;  ///< MemStats high-water during the run
  /// Component bytes at end of run (profiler still alive), indexed by
  /// MemComponent: signatures, queues+chunks, dep-maps, access-stats,
  /// other, store-pages.
  std::int64_t component_bytes[static_cast<unsigned>(MemComponent::kCount)] =
      {};
  DepMap deps;                   ///< merged dependences of the profiled run
  ControlFlowLog control_flow;
  std::uint64_t native_checksum = 0;
  std::uint64_t profiled_checksum = 0;

  /// Real wall-clock slowdown (the Fig. 5/6 metric on a multicore host).
  double slowdown() const {
    return native_sec > 0.0 ? profiled_sec / native_sec : 0.0;
  }

  /// Wall time a W-core host would observe for the pipeline: the slower of
  /// the producing target and the busiest worker, plus the final merge.
  double simulated_parallel_sec() const;

  double simulated_slowdown() const {
    return native_sec > 0.0 ? simulated_parallel_sec() / native_sec : 0.0;
  }
};

struct RunOptions {
  int scale = 1;
  /// 0 = sequential workload via Workload::run; otherwise the pthread
  /// variant via Workload::run_parallel with this many target threads.
  unsigned target_threads = 0;
  /// Use the parallel (Fig. 2) pipeline instead of the serial profiler.
  bool parallel_pipeline = false;
  /// Repetitions of the native run (its time is averaged; tiny kernels need
  /// a few reps for a stable denominator).
  int native_reps = 3;
};

/// Runs `w` natively and under a profiler configured by `config`.
RunMeasurement profile_workload(const Workload& w, const ProfilerConfig& config,
                                const RunOptions& opts = {});

/// Environment-activated deterministic-schedule session (ISSUE 7).  When
/// constructed with `enabled` true and DEPPROF_SCHED=1 in the environment,
/// the scope runs under the schedule controller: DEPPROF_SCHED_SEED /
/// DEPPROF_SCHED_ALGO pick the exploration, DEPPROF_SCHED_REPLAY replays a
/// recorded schedule, DEPPROF_SCHED_RECORD writes the schedule taken, and a
/// one-line summary (steps/divergences/violations) goes to stderr at scope
/// exit.  Construct it BEFORE the parallel profiler: workers attach to the
/// controller as they spawn.
class SchedEnvSession {
 public:
  explicit SchedEnvSession(bool enabled);
  ~SchedEnvSession();
  SchedEnvSession(const SchedEnvSession&) = delete;
  SchedEnvSession& operator=(const SchedEnvSession&) = delete;

 private:
  bool active_ = false;
};

/// Runs only the native side (used when one native baseline serves many
/// profiler configurations).
double measure_native(const Workload& w, const RunOptions& opts = {});

/// Captures the workload's access stream into a trace (and the control-flow
/// log via Runtime::control_flow()).  Used for trace statistics (Table I's
/// "# addresses" / "# accesses" columns), replay tests, and ablations that
/// feed identical streams to different stores.
Trace record_workload(const Workload& w, const RunOptions& opts = {});

/// Unions dependences over several inputs — the paper's remedy for the
/// input sensitivity of dynamic profiling ("running the target program with
/// changing inputs and computing the union of all collected dependences",
/// Sec. I).  Runs the workload once per scale and merges the maps.
DepMap union_over_inputs(const Workload& w, const ProfilerConfig& config,
                         const std::vector<int>& scales);

}  // namespace depprof
