#pragma once
// Dependence-accuracy metrics (Sec. VI-A, Table I).
//
// "We use the perfect signature as the baseline to quantify the FPR and the
// FNR of the dependences delivered by our profiler."  A dependence is false
// positive when the signature-based profiler reports it but the perfect
// baseline does not (a hash collision fabricated it or corrupted its source
// location), and false negative when the baseline reports it but the
// signature run misses it (a collision overwrote the recording).

#include "core/dep.hpp"

namespace depprof {

struct AccuracyResult {
  std::size_t baseline_deps = 0;  ///< |perfect|
  std::size_t tested_deps = 0;    ///< |signature|
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  /// Percentage of reported dependences that are wrong.
  double fpr_percent() const {
    return tested_deps ? 100.0 * static_cast<double>(false_positives) /
                             static_cast<double>(tested_deps)
                       : 0.0;
  }
  /// Percentage of true dependences that are missed.
  double fnr_percent() const {
    return baseline_deps ? 100.0 * static_cast<double>(false_negatives) /
                               static_cast<double>(baseline_deps)
                         : 0.0;
  }
};

/// Compares the dependence set `tested` against the collision-free
/// `baseline`.  Dependence identity is the full DepKey (type, sink, source,
/// variable, thread ids); counts and flags are not compared.
AccuracyResult compare_deps(const DepMap& baseline, const DepMap& tested);

}  // namespace depprof
