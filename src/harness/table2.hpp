#pragma once
// Table II harness support: parallelizable-loop detection per workload.
//
// For one workload the harness runs the loop-parallelism analysis twice —
// once on perfect-signature dependences (the "DiscoPoP (DP)" column: the
// tool's own collision-free profiling component) and once on finite-
// signature dependences (the "(sig)" column) — and scores both against the
// workload's ground truth (the loops annotated parallel in the OpenMP
// version of the analogue).

#include <string>
#include <vector>

#include "core/profiler.hpp"
#include "workloads/workload.hpp"

namespace depprof {

struct Table2Row {
  std::string program;
  unsigned omp_loops = 0;        ///< loops annotated parallel (ground truth)
  unsigned identified_dp = 0;    ///< of those, found parallelizable w/ perfect deps
  unsigned identified_sig = 0;   ///< of those, found parallelizable w/ signature deps
  unsigned missed_sig = 0;       ///< identified by DP but not by sig
  unsigned false_parallel_sig = 0;  ///< non-annotated loops wrongly marked parallel
};

/// Runs the Table II experiment for one workload.  `sig_slots` configures
/// the finite signature; the DP column always uses the perfect store.
Table2Row run_table2(const Workload& w, std::size_t sig_slots, int scale = 1);

}  // namespace depprof
