#pragma once
// Lock-region-aware mutex for instrumented multi-threaded targets.
//
// The paper requires that "accesses to the same address from multiple
// threads are protected by locks, and we insert the push operation into the
// same lock region" (Sec. V, Fig. 4).  Wrapping the target's mutexes in this
// type keeps the instrumentation runtime informed of lock regions: accesses
// performed while the mutex is held are flagged and the producer's buffered
// chunks are pushed before the lock is released.
//
// Satisfies the BasicLockable/Lockable requirements, so std::lock_guard and
// std::unique_lock work unchanged.

#include <mutex>

#include "instrument/runtime.hpp"

namespace depprof {

class InstrumentedMutex {
 public:
  void lock() {
    mu_.lock();
    Runtime::instance().lock_enter();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    Runtime::instance().lock_enter();
    return true;
  }

  void unlock() {
    Runtime::instance().lock_exit();
    mu_.unlock();
  }

 private:
  std::mutex mu_;
};

}  // namespace depprof
