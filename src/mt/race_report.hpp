#pragma once
// Potential-data-race reporting (Sec. V-B).
//
// The worker threads expect increasing timestamps per address; a reversal
// proves the access/push pair of the recorded access and the current access
// were not mutually exclusive — the dependence is flagged kReversed and
// surfaced here as a potential data race.  Dependences that merely cross
// threads without a reversal are "incidental happens-before relationships";
// they are reported separately as unconfirmed.

#include <string>
#include <vector>

#include "core/dep.hpp"

namespace depprof {

struct RaceFinding {
  DepKey dep;
  std::uint64_t instances = 0;
  /// True when a timestamp reversal proved the absence of mutual exclusion.
  bool confirmed = false;
};

struct RaceReport {
  std::vector<RaceFinding> findings;

  std::size_t confirmed_count() const {
    std::size_t n = 0;
    for (const auto& f : findings) n += f.confirmed ? 1 : 0;
    return n;
  }
};

/// Extracts potential races from a merged dependence map of an MT-target
/// run.  `include_unconfirmed` additionally lists cross-thread dependences
/// whose enforcement is unknown (no reversal observed).
RaceReport find_races(const DepMap& deps, bool include_unconfirmed = false);

/// Human-readable rendering of the report.
std::string format_race_report(const RaceReport& report);

}  // namespace depprof
