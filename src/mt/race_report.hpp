#pragma once
// Potential-data-race reporting (Sec. V-B).
//
// The worker threads expect increasing timestamps per address; a reversal
// proves the access/push pair of the recorded access and the current access
// were not mutually exclusive — the dependence is flagged kReversed and
// surfaced here as a potential data race.  Dependences that merely cross
// threads without a reversal are "incidental happens-before relationships";
// they are reported separately as unconfirmed.

#include <string>
#include <vector>

#include "core/dep.hpp"

namespace depprof {

struct RaceFinding {
  DepKey dep;
  /// Racy evidence: for a confirmed finding, the number of instances whose
  /// timestamps arrived reversed (NOT the key's total merge count — one
  /// reversal among N merged instances is one reversal); for an unconfirmed
  /// candidate, the cross-thread instance total.
  std::uint64_t instances = 0;
  /// True when a timestamp reversal proved the absence of mutual exclusion.
  bool confirmed = false;
  /// All dynamic instances merged into the key (context for `instances`).
  std::uint64_t total = 0;
};

struct RaceReport {
  std::vector<RaceFinding> findings;
  /// What the caller asked find_races() for — rendering needs to know
  /// whether unconfirmed candidates were listed or only counted.
  bool include_unconfirmed = false;
  /// Cross-thread candidate keys with no reversal and at least one instance
  /// outside lock regions.  Counted whether or not they are listed.
  std::uint64_t unconfirmed = 0;
  /// Cross-thread keys excluded because *every* merged instance had both
  /// endpoints inside lock regions: the target's own mutual exclusion
  /// ordered each conflicting pair (Sec. V-B / Fig. 4).
  std::uint64_t suppressed_by_lock = 0;

  std::size_t confirmed_count() const {
    std::size_t n = 0;
    for (const auto& f : findings) n += f.confirmed ? 1 : 0;
    return n;
  }
};

/// Extracts potential races from a merged dependence map of an MT-target
/// run.  `include_unconfirmed` additionally lists cross-thread dependences
/// whose enforcement is unknown (no reversal observed, not fully inside
/// lock regions); those keys are counted in `unconfirmed` either way, and
/// fully lock-protected keys in `suppressed_by_lock`.
RaceReport find_races(const DepMap& deps, bool include_unconfirmed = false);

/// Human-readable rendering of the report.
std::string format_race_report(const RaceReport& report);

/// JSON rendering (machine-readable `--races --json` channel): summary
/// counters plus one object per listed finding.
std::string race_report_json(const RaceReport& report);

}  // namespace depprof
