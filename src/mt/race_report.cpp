#include "mt/race_report.hpp"

#include <sstream>

namespace depprof {

RaceReport find_races(const DepMap& deps, bool include_unconfirmed) {
  RaceReport report;
  report.include_unconfirmed = include_unconfirmed;
  for (const auto& [key, info] : deps.sorted()) {
    switch (classify_race_candidate(key, info)) {
      case RaceCandidate::kNone:
        break;
      case RaceCandidate::kConfirmed:
        report.findings.push_back({key, info.reversed, true, info.count});
        break;
      case RaceCandidate::kUnconfirmed:
        report.unconfirmed += 1;
        if (include_unconfirmed)
          report.findings.push_back({key, info.count, false, info.count});
        break;
      case RaceCandidate::kSuppressedByLock:
        report.suppressed_by_lock += 1;
        break;
    }
  }
  return report;
}

std::string format_race_report(const RaceReport& report) {
  std::ostringstream os;
  os << "potential data races: " << report.confirmed_count() << " confirmed, "
     << report.unconfirmed << " unconfirmed cross-thread candidates ("
     << (report.include_unconfirmed ? "listed" : "not listed") << "), "
     << report.suppressed_by_lock << " suppressed by lock regions\n";
  for (const auto& f : report.findings) {
    os << (f.confirmed ? "  [RACE] " : "  [dep ] ") << dep_type_name(f.dep.type)
       << ' ' << SourceLocation::from_packed(f.dep.sink_loc).str() << '|'
       << f.dep.sink_tid << " <- "
       << SourceLocation::from_packed(f.dep.src_loc).str() << '|'
       << f.dep.src_tid << " var=" << var_registry().name(f.dep.var) << " x"
       << f.instances;
    if (f.confirmed) {
      os << " of " << f.total
         << "  (timestamp reversal: no mutual exclusion)";
    }
    os << '\n';
  }
  return os.str();
}

std::string race_report_json(const RaceReport& report) {
  std::ostringstream os;
  os << "{\n  \"confirmed\": " << report.confirmed_count()
     << ",\n  \"unconfirmed\": " << report.unconfirmed
     << ",\n  \"unconfirmed_listed\": "
     << (report.include_unconfirmed ? "true" : "false")
     << ",\n  \"suppressed_by_lock\": " << report.suppressed_by_lock
     << ",\n  \"findings\": [";
  bool first = true;
  for (const auto& f : report.findings) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"type\": \"" << dep_type_name(f.dep.type) << "\", \"sink\": \""
       << SourceLocation::from_packed(f.dep.sink_loc).str()
       << "\", \"sink_tid\": " << f.dep.sink_tid << ", \"source\": \""
       << SourceLocation::from_packed(f.dep.src_loc).str()
       << "\", \"src_tid\": " << f.dep.src_tid << ", \"var\": \""
       << var_registry().name(f.dep.var) << "\", \"instances\": "
       << f.instances << ", \"total\": " << f.total << ", \"confirmed\": "
       << (f.confirmed ? "true" : "false") << "}";
  }
  os << (first ? "]\n}\n" : "\n  ]\n}\n");
  return os.str();
}

}  // namespace depprof
