#include "mt/race_report.hpp"

#include <sstream>

namespace depprof {

RaceReport find_races(const DepMap& deps, bool include_unconfirmed) {
  RaceReport report;
  for (const auto& [key, info] : deps.sorted()) {
    if (key.type == DepType::kInit) continue;
    const bool reversed = (info.flags & kReversed) != 0;
    const bool cross = (info.flags & kCrossThread) != 0;
    if (reversed) {
      report.findings.push_back({key, info.count, true});
    } else if (include_unconfirmed && cross) {
      report.findings.push_back({key, info.count, false});
    }
  }
  return report;
}

std::string format_race_report(const RaceReport& report) {
  std::ostringstream os;
  os << "potential data races: " << report.confirmed_count() << " confirmed, "
     << (report.findings.size() - report.confirmed_count())
     << " unconfirmed cross-thread dependences\n";
  for (const auto& f : report.findings) {
    os << (f.confirmed ? "  [RACE] " : "  [dep ] ") << dep_type_name(f.dep.type)
       << ' ' << SourceLocation::from_packed(f.dep.sink_loc).str() << '|'
       << f.dep.sink_tid << " <- "
       << SourceLocation::from_packed(f.dep.src_loc).str() << '|' << f.dep.src_tid
       << " var=" << var_registry().name(f.dep.var) << " x" << f.instances;
    if (f.confirmed) os << "  (timestamp reversal: no mutual exclusion)";
    os << '\n';
  }
  return os.str();
}

}  // namespace depprof
