#pragma once
// Thread-local event chunk buffer — the producer half of the batched event
// path.
//
// The instrumentation runtime appends each assembled AccessEvent to the
// calling thread's EventBuffer and flushes it through AccessSink::on_batch
// when the buffer fills, at lock-region boundaries (Fig. 4: access and push
// must stay atomic), at implicit synchronization points, and at detach.
// Trace replay streams its recorded events through the same on_batch entry
// point via replay_batched(), so live instrumentation and replay exercise
// one code path into the profilers.

#include <array>
#include <cstddef>

#include "trace/event.hpp"

namespace depprof {

class EventBuffer {
 public:
  /// Events buffered per thread before a flush (16 KiB per thread).
  static constexpr std::size_t kCapacity = 256;

  /// Appends one event; returns true when the buffer is full and must be
  /// flushed before the next add().
  bool add(const AccessEvent& ev) {
    events_[count_] = ev;
    reps_[count_] = 1;
    ++count_;
    return count_ == kCapacity;
  }

  /// Records one more identical instance of buffered record `index` (the
  /// dedup cache's run-length path).  False when the run's rep counter is
  /// saturated and the caller must append the event as a fresh record.
  bool bump_rep(std::size_t index) {
    if (reps_[index] == ~0u) return false;
    reps_[index] += 1;
    any_reps_ = true;
    return true;
  }

  /// The buffered record at `index` (dedup identity comparison).
  const AccessEvent& at(std::size_t index) const { return events_[index]; }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }

  /// Delivers the buffered events as one batch and empties the buffer.
  /// Run-length-compressed buffers go through on_batch_rle; untouched ones
  /// keep the plain on_batch path.
  void flush(AccessSink& sink) {
    if (count_ == 0) return;
    if (any_reps_)
      sink.on_batch_rle(events_.data(), reps_.data(), count_);
    else
      sink.on_batch(events_.data(), count_);
    count_ = 0;
    any_reps_ = false;
  }

  /// Drops buffered events without delivering them (stale events of a
  /// previous profiling session).
  void discard() {
    count_ = 0;
    any_reps_ = false;
  }

 private:
  std::array<AccessEvent, kCapacity> events_;
  std::array<std::uint32_t, kCapacity> reps_;
  std::size_t count_ = 0;
  bool any_reps_ = false;
};

/// Streams a contiguous event range through `sink` in EventBuffer-sized
/// batches — the same chunk granularity the live instrumentation produces.
inline void deliver_batched(const AccessEvent* events, std::size_t count,
                            AccessSink& sink) {
  for (std::size_t off = 0; off < count; off += EventBuffer::kCapacity) {
    const std::size_t n = count - off < EventBuffer::kCapacity
                              ? count - off
                              : EventBuffer::kCapacity;
    sink.on_batch(events + off, n);
  }
}

}  // namespace depprof
