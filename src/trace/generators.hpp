#pragma once
// Synthetic access-trace generators.
//
// The evaluation quantities of the paper (FPR/FNR, queue throughput, worker
// imbalance) are functions of the address-stream statistics: number of
// distinct addresses, access count, read/write mix, stride, and skew.  These
// generators produce streams with controlled statistics for the formula-2
// validation, the storage and queue ablations, and property tests.

#include <cstdint>

#include "trace/trace.hpp"

namespace depprof {

/// Parameters shared by the generators.
struct GenParams {
  std::size_t accesses = 100'000;      ///< events to generate
  std::size_t distinct = 10'000;       ///< distinct addresses (n of formula 2)
  double write_ratio = 0.3;            ///< fraction of writes
  std::uint64_t base_addr = 0x10'0000; ///< first address
  std::uint64_t stride = 8;            ///< address spacing
  std::uint64_t seed = 42;             ///< PRNG seed
};

/// Uniform random accesses over `distinct` addresses.
Trace gen_uniform(const GenParams& p);

/// Strided sweep: repeated linear passes over the address range — the
/// stride-dominated pattern SD3 compresses; stresses the modulo distribution.
Trace gen_strided(const GenParams& p);

/// Zipf-skewed accesses: a few addresses absorb most of the traffic — the
/// "some addresses may be accessed millions of times" case motivating the
/// Sec. IV-A load balancer.  `s` is the Zipf exponent.
Trace gen_zipf(const GenParams& p, double s = 1.2);

/// Loop-structured trace: `iters` iterations over an array with an optional
/// loop-carried RAW (element i reads element i-1's value written in the
/// previous iteration).  Ground truth for loop-parallelism tests.  The loop
/// is one dynamic entry interned into the process nest forest.
Trace gen_loop(const GenParams& p, std::size_t iters, bool carried,
               std::uint32_t loop_id = 1);

/// Nested-loop trace: an imperfect nest `depth` levels deep (body accesses
/// surround the child loop at every level), `width` iterations per level.
/// Each level carries a distance-1 RAW on its accumulator, each iteration a
/// distance-0 pair plus a recurring distance >= 2 WAW; some inner entries
/// execute zero iterations, every child entry is a sibling re-entry, and
/// two top-level nests make cross-loop pairs.  `depth` beyond the event's
/// iteration window (kNestIters) exercises the conservative deep-nest
/// attribution path.
Trace gen_nest(const GenParams& p, std::uint32_t depth = 3,
               std::size_t width = 4);

/// Multi-threaded interleaving: `threads` round-robin producers each with a
/// private range plus a shared region with cross-thread RAW (producer ->
/// consumer) dependences.  Timestamps increase in interleaving order.
Trace gen_mt_producer_consumer(const GenParams& p, unsigned threads,
                               std::size_t shared_addrs);

/// Lifetime-churn trace: uniform reads/writes over a small, heavily reused
/// address pool with a `free_ratio` fraction of kFree events — the
/// allocate/free/reallocate pattern that exercises the variable-lifetime
/// removal path (Sec. III-B) and, with `threads` > 0, a round-robin MT
/// interleaving of it (lock-region flagged, increasing timestamps).  Freed
/// words re-enter circulation immediately, so a store that fails to clear
/// them fabricates dependences.  With `nest_depth` > 0 the whole stream
/// runs inside a loop nest that depth deep whose innermost loop iterates
/// and is re-entered periodically, mixing lifetime churn with nest-context
/// changes.
Trace gen_churn(const GenParams& p, double free_ratio, unsigned threads = 0,
                std::size_t nest_depth = 0);

}  // namespace depprof
