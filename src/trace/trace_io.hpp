#pragma once
// Binary trace file I/O (capture on one run, replay into any profiler
// configuration later — the examples/profile_trace workflow).

#include <string>

#include "trace/trace.hpp"

namespace depprof {

/// Writes a trace to `path`.  Returns false on I/O failure.
bool write_trace(const Trace& trace, const std::string& path);

/// Reads a trace from `path`.  Returns false on I/O failure or a malformed
/// header; `out` is untouched on failure.
bool read_trace(Trace& out, const std::string& path);

}  // namespace depprof
