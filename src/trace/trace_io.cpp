#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "trace/nest.hpp"

namespace depprof {
namespace {

// v02: events carry interned nest-context ids, which are process-local, so
// the file embeds a nest node table (file-local ids, parents before
// children) and the reader re-interns it.  v01 files predate the context
// model: their fixed-size records embed ids from a dead forest, so they are
// rejected rather than silently misattributed.
constexpr char kMagic[8] = {'D', 'E', 'P', 'T', 'R', 'C', '0', '2'};

/// One serialized nest node: file-local parent id + static loop id.  The
/// file-local id of a node is its index + 1 (0 = root, never written).
struct WireNestNode {
  std::uint32_t parent = 0;
  std::uint32_t loop = 0;
};

}  // namespace

bool write_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));

  // Collect every forest node reachable from an event context.  Ascending
  // forest-id order is a valid parents-first declaration order (forest ids
  // grow child-after-parent), so a std::map doubles as the emit order.
  NestForest& forest = nest_forest();
  std::map<std::uint32_t, std::uint32_t> local_id;  // forest id -> file id
  local_id[NestForest::kRoot] = 0;
  for (const AccessEvent& ev : trace.events)
    for (std::uint32_t c = ev.ctx;
         c != NestForest::kRoot && !local_id.count(c); c = forest.parent(c))
      local_id[c] = 1;  // mark; numbered below
  std::vector<WireNestNode> nodes;
  nodes.reserve(local_id.size() - 1);
  for (auto& [fid, lid] : local_id) {
    if (fid == NestForest::kRoot) continue;
    lid = static_cast<std::uint32_t>(nodes.size() + 1);
    nodes.push_back({local_id[forest.parent(fid)], forest.loop(fid)});
  }
  const std::uint64_t node_count = nodes.size();
  os.write(reinterpret_cast<const char*>(&node_count), sizeof(node_count));
  os.write(reinterpret_cast<const char*>(nodes.data()),
           static_cast<std::streamsize>(node_count * sizeof(WireNestNode)));

  const std::uint64_t count = trace.events.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  // Events are written with the context id translated to its file-local id
  // so the file is self-contained across processes.
  for (AccessEvent ev : trace.events) {
    ev.ctx = local_id[ev.ctx];
    os.write(reinterpret_cast<const char*>(&ev), sizeof(ev));
  }
  return static_cast<bool>(os);
}

bool read_trace(Trace& out, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  is.seekg(0, std::ios::end);
  const std::streamoff end = is.tellg();
  is.seekg(0, std::ios::beg);
  if (!is || end < 0) return false;
  const auto file_size = static_cast<std::uint64_t>(end);
  char magic[8];
  is.read(magic, sizeof(magic));
  // Rejects v01 files along with garbage: their fixed-size records embed
  // context ids of a forest that no longer exists, and replaying them would
  // misattribute every nest.
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;

  // All counts below are untrusted: the payload a count claims must be
  // present in the file before anything is allocated for it.
  std::uint64_t remaining = file_size - sizeof(kMagic);
  std::uint64_t node_count = 0;
  if (remaining < sizeof(node_count)) return false;
  is.read(reinterpret_cast<char*>(&node_count), sizeof(node_count));
  remaining -= sizeof(node_count);
  if (!is || node_count > remaining / sizeof(WireNestNode)) return false;
  std::vector<WireNestNode> nodes(node_count);
  is.read(reinterpret_cast<char*>(nodes.data()),
          static_cast<std::streamsize>(node_count * sizeof(WireNestNode)));
  remaining -= node_count * sizeof(WireNestNode);
  if (!is) return false;

  // Re-intern the table.  File-local ids are positional (index + 1) and
  // parents must precede children, i.e. parent < own id.
  NestForest& forest = nest_forest();
  std::vector<std::uint32_t> id_map(node_count + 1, NestForest::kRoot);
  for (std::uint64_t i = 0; i < node_count; ++i) {
    if (nodes[i].parent > i) return false;  // forward/self reference
    id_map[i + 1] = forest.enter(id_map[nodes[i].parent], nodes[i].loop);
  }

  std::uint64_t count = 0;
  if (remaining < sizeof(count)) return false;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  remaining -= sizeof(count);
  if (!is || count > remaining / sizeof(AccessEvent)) return false;
  Trace t;
  t.events.resize(count);
  is.read(reinterpret_cast<char*>(t.events.data()),
          static_cast<std::streamsize>(count * sizeof(AccessEvent)));
  if (!is) return false;
  for (AccessEvent& ev : t.events) {
    if (ev.ctx > node_count) return false;  // dangling context reference
    ev.ctx = id_map[ev.ctx];
  }
  out = std::move(t);
  return true;
}

}  // namespace depprof
