#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>

namespace depprof {
namespace {

constexpr char kMagic[8] = {'D', 'E', 'P', 'T', 'R', 'C', '0', '1'};

}  // namespace

bool write_trace(const Trace& trace, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(kMagic, sizeof(kMagic));
  const std::uint64_t count = trace.events.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  os.write(reinterpret_cast<const char*>(trace.events.data()),
           static_cast<std::streamsize>(count * sizeof(AccessEvent)));
  return static_cast<bool>(os);
}

bool read_trace(Trace& out, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  is.seekg(0, std::ios::end);
  const std::streamoff end = is.tellg();
  is.seekg(0, std::ios::beg);
  if (!is || end < 0) return false;
  const auto file_size = static_cast<std::uint64_t>(end);
  char magic[8];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is) return false;
  // The header is untrusted input: a corrupt or truncated file can carry an
  // arbitrary count, and resizing to it would allocate gigabytes before the
  // read failed.  The payload the count claims must actually be present.
  constexpr std::uint64_t kHeaderBytes = sizeof(kMagic) + sizeof(count);
  if (file_size < kHeaderBytes ||
      count > (file_size - kHeaderBytes) / sizeof(AccessEvent))
    return false;
  Trace t;
  t.events.resize(count);
  is.read(reinterpret_cast<char*>(t.events.data()),
          static_cast<std::streamsize>(count * sizeof(AccessEvent)));
  if (!is) return false;
  out = std::move(t);
  return true;
}

}  // namespace depprof
