#pragma once
// Dynamic call tree.
//
// The paper's Sec. VIII sketches an integrated framework that reorganizes
// profiled data into "dynamic execution tree, call tree, dependence graph,
// loop table".  The call tree records, per distinct (caller path, callee)
// pair, how often the callee ran — the skeleton the execution tree and the
// per-region analyses hang off.
//
// Nodes are created by Runtime::func_enter from DP_FUNCTION guards; node 0
// is the synthetic root ("<program>").

#include <cstdint>
#include <string>
#include <vector>

#include "common/location.hpp"

namespace depprof {

struct CallNode {
  std::uint32_t func_loc = 0;   ///< packed location of the function entry
  std::uint32_t name_id = 0;    ///< var_registry id of the function name
  std::uint32_t parent = 0;     ///< index of the parent node (root: self)
  std::uint64_t calls = 0;      ///< times this path was entered
  std::vector<std::uint32_t> children;
};

class CallTree {
 public:
  CallTree() { nodes_.push_back(CallNode{}); }

  /// Child of `parent` for (func_loc, name_id), created on first use.
  std::uint32_t child_of(std::uint32_t parent, std::uint32_t func_loc,
                         std::uint32_t name_id);

  static constexpr std::uint32_t kRoot = 0;

  const CallNode& node(std::uint32_t idx) const { return nodes_[idx]; }
  CallNode& node(std::uint32_t idx) { return nodes_[idx]; }
  std::size_t size() const { return nodes_.size(); }

  /// Depth of a node (root = 0).
  unsigned depth(std::uint32_t idx) const;

  /// Indented text rendering: "name (file:line) xCALLS" per node.
  std::string render() const;

  void clear() {
    nodes_.clear();
    nodes_.push_back(CallNode{});
  }

 private:
  std::vector<CallNode> nodes_;
};

}  // namespace depprof
