#pragma once
// The loop-nest forest — interned dynamic loop entries.
//
// Every dynamic entry of a loop (one execution of its DP_LOOP_BEGIN) is
// interned as one node of a global append-only forest: (parent entry,
// static loop id, depth).  An access event then carries a single 32-bit
// context id — the innermost enclosing entry — instead of a fixed number of
// (loop, entry, iteration) triples, so arbitrarily deep nests cost the same
// four bytes per event (PROMPT's LoopHierarchy contexts work the same way).
//
// The attribution question the detector asks — "which loop carries this
// dependence?" — becomes a lowest-common-ancestor walk over two context
// ids: the innermost *common* entry of source and sink is the innermost
// loop whose iteration space contains both endpoints, and the carried
// distance is the difference of their iteration counters at that level
// (every level strictly above the common entry has, by construction, equal
// counters for both endpoints, so the common entry is the *only* candidate
// carrier).  Iteration counters travel in the event as a bounded
// root-anchored window (event.hpp); the walk itself only needs parent and
// depth lookups, which this forest serves lock-free.
//
// Growth and lifetime: one node per dynamic loop entry — the same rate the
// previous design burned its process-unique `entry` counter at.  Nodes are
// appended under a mutex (loop entry is already a slow path that takes the
// control-flow lock) and never mutated or freed afterwards, so readers need
// no synchronization beyond an acquire load of the size: context ids stay
// valid process-wide, across Runtime::reset() epochs, which is what lets
// in-memory traces and replay reuse them.  Storage is chunked so appends
// never move published nodes.

#include <atomic>
#include <cstdint>
#include <mutex>

namespace depprof {

class NestForest {
 public:
  /// Node id 0: the synthetic root ("not in any loop").
  static constexpr std::uint32_t kRoot = 0;

  struct Node {
    std::uint32_t parent = 0;  ///< enclosing entry (kRoot at top level)
    std::uint32_t loop = 0;    ///< static loop id (packed begin location)
    std::uint32_t depth = 0;   ///< nest depth; root = 0, top-level loops = 1
  };

  NestForest();
  NestForest(const NestForest&) = delete;
  NestForest& operator=(const NestForest&) = delete;
  ~NestForest();

  /// Interns a fresh dynamic entry of loop `loop` under `parent`; returns
  /// its id.  Thread-safe.
  std::uint32_t enter(std::uint32_t parent, std::uint32_t loop);

  /// Node lookup.  `id` must be < size(); id kRoot is always valid.
  const Node& node(std::uint32_t id) const {
    return chunk_[id >> kChunkShift].load(std::memory_order_acquire)
        [id & (kChunkNodes - 1)];
  }
  std::uint32_t parent(std::uint32_t id) const { return node(id).parent; }
  std::uint32_t loop(std::uint32_t id) const { return node(id).loop; }
  std::uint32_t depth(std::uint32_t id) const { return node(id).depth; }

  /// Nodes interned so far (ids are 0..size()-1, root included).
  std::uint32_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  static constexpr std::uint32_t kChunkShift = 12;
  static constexpr std::uint32_t kChunkNodes = 1u << kChunkShift;  // 4096
  /// 2^20 chunks x 4096 nodes covers the full 32-bit id space.
  static constexpr std::uint32_t kMaxChunks = 1u << 20;

  std::mutex mu_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<Node*>* chunk_;  // kMaxChunks pointers, allocated lazily
};

/// The process-wide forest every runtime, generator, and replayer interns
/// into (the var_registry() pattern).
NestForest& nest_forest();

}  // namespace depprof
