#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace depprof {
namespace {

AccessEvent make_event(std::uint64_t addr, bool write, std::uint32_t line,
                       std::uint16_t tid = 0, std::uint64_t ts = 0) {
  AccessEvent ev;
  ev.addr = addr;
  ev.kind = write ? AccessKind::kWrite : AccessKind::kRead;
  ev.loc = SourceLocation(1, line).packed();
  ev.var = 0;
  ev.tid = tid;
  ev.ts = ts;
  return ev;
}

}  // namespace

Trace gen_uniform(const GenParams& p) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const std::uint64_t idx = rng.below(p.distinct ? p.distinct : 1);
    const bool write = rng.uniform() < p.write_ratio;
    // Distinct source lines per (address bucket, kind) keep the dependence
    // space rich without being degenerate.
    const auto line = static_cast<std::uint32_t>(10 + (idx % 50) * 2 + (write ? 1 : 0));
    t.events.push_back(make_event(p.base_addr + idx * p.stride, write, line));
  }
  return t;
}

Trace gen_strided(const GenParams& p) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  std::size_t i = 0;
  while (i < p.accesses) {
    for (std::size_t k = 0; k < p.distinct && i < p.accesses; ++k, ++i) {
      const bool write = rng.uniform() < p.write_ratio;
      const auto line = static_cast<std::uint32_t>(write ? 21 : 20);
      t.events.push_back(make_event(p.base_addr + k * p.stride, write, line));
    }
  }
  return t;
}

Trace gen_zipf(const GenParams& p, double s) {
  Rng rng(p.seed);
  const std::size_t n = p.distinct ? p.distinct : 1;
  // Build the Zipf CDF once; ranks are mapped to shuffled addresses so the
  // hot set is not contiguous in memory.
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = sum;
  }
  for (auto& c : cdf) c /= sum;

  std::vector<std::uint64_t> addr_of_rank(n);
  for (std::size_t k = 0; k < n; ++k) addr_of_rank[k] = p.base_addr + k * p.stride;
  for (std::size_t k = n; k > 1; --k)
    std::swap(addr_of_rank[k - 1], addr_of_rank[rng.below(k)]);

  Trace t;
  t.events.reserve(p.accesses);
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto rank = static_cast<std::size_t>(it - cdf.begin());
    const bool write = rng.uniform() < p.write_ratio;
    const auto line = static_cast<std::uint32_t>(30 + (rank % 20) + (write ? 100 : 0));
    t.events.push_back(make_event(addr_of_rank[rank < n ? rank : n - 1], write, line));
  }
  return t;
}

Trace gen_loop(const GenParams& p, std::size_t iters, bool carried,
               std::uint32_t loop_id) {
  Trace t;
  const std::size_t len = p.distinct ? p.distinct : 1;
  t.events.reserve(iters * len * 2);
  for (std::size_t it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < len; ++i) {
      // Read a[i-1] (carried) or a[i] (independent), then write a[i].
      const std::size_t src = carried ? (i + len - 1) % len : i;
      AccessEvent rd = make_event(p.base_addr + src * p.stride, false, 40);
      rd.loops[0] = {loop_id, 1, static_cast<std::uint32_t>(it)};
      t.events.push_back(rd);
      AccessEvent wr = make_event(p.base_addr + i * p.stride, true, 41);
      wr.loops[0] = {loop_id, 1, static_cast<std::uint32_t>(it)};
      t.events.push_back(wr);
    }
  }
  return t;
}

Trace gen_churn(const GenParams& p, double free_ratio, unsigned threads) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  const std::size_t pool = p.distinct ? p.distinct : 1;
  std::uint64_t ts = 1;
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const std::uint64_t addr = p.base_addr + rng.below(pool) * p.stride;
    const double roll = rng.uniform();
    AccessEvent ev;
    ev.addr = addr;
    if (roll < free_ratio) {
      ev.kind = AccessKind::kFree;
    } else {
      const bool write = roll < free_ratio + (1.0 - free_ratio) * p.write_ratio;
      ev.kind = write ? AccessKind::kWrite : AccessKind::kRead;
      ev.loc = SourceLocation(1, 70 + static_cast<std::uint32_t>(rng.below(30)) +
                                     (write ? 100 : 0))
                   .packed();
      ev.var = static_cast<std::uint32_t>(rng.below(4));
    }
    if (threads > 0) {
      ev.tid = static_cast<std::uint16_t>(i % threads);
      ev.ts = ts++;
      // Lock-ordered interleaving: each access pushes atomically (Fig. 4),
      // so a single-threaded replay of this trace is order-faithful.
      ev.flags |= kInLockRegion;
    }
    t.events.push_back(ev);
  }
  return t;
}

Trace gen_mt_producer_consumer(const GenParams& p, unsigned threads,
                               std::size_t shared_addrs) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  std::uint64_t ts = 1;
  const std::size_t per_thread = p.distinct / (threads ? threads : 1) + 1;
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const auto tid = static_cast<std::uint16_t>(i % threads);
    const bool shared = shared_addrs > 0 && rng.uniform() < 0.2;
    std::uint64_t addr;
    bool write;
    if (shared) {
      // Neighbour communication: thread t writes slot s, thread t+1 reads it.
      const std::uint64_t s = rng.below(shared_addrs);
      addr = p.base_addr + (p.distinct + s) * p.stride;
      // Writers are even interleaving steps, readers odd — produces a stable
      // producer(t) -> consumer(t+1 mod T) RAW pattern.
      write = (s + tid) % 2 == 0;
    } else {
      addr = p.base_addr + (tid * per_thread + rng.below(per_thread)) * p.stride;
      write = rng.uniform() < p.write_ratio;
    }
    AccessEvent ev = make_event(addr, write, shared ? 60 : 50 + tid, tid, ts++);
    ev.flags = kInLockRegion;
    t.events.push_back(ev);
  }
  return t;
}

}  // namespace depprof
