#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "trace/nest.hpp"

namespace depprof {
namespace {

AccessEvent make_event(std::uint64_t addr, bool write, std::uint32_t line,
                       std::uint16_t tid = 0, std::uint64_t ts = 0) {
  AccessEvent ev;
  ev.addr = addr;
  ev.kind = write ? AccessKind::kWrite : AccessKind::kRead;
  ev.loc = SourceLocation(1, line).packed();
  ev.var = 0;
  ev.tid = tid;
  ev.ts = ts;
  return ev;
}

/// The generators' stand-in for the runtime's per-thread loop stack: interns
/// dynamic entries into the process-wide nest forest and stamps events with
/// the innermost entry plus the root-anchored iteration window, exactly as
/// Runtime::record does.
class NestStamper {
 public:
  void push(std::uint32_t loop) {
    const std::uint32_t parent =
        stack_.empty() ? NestForest::kRoot : stack_.back().node;
    stack_.push_back({nest_forest().enter(parent, loop), 0});
  }
  void iter() {
    if (!stack_.empty()) ++stack_.back().iter;
  }
  void pop() {
    if (!stack_.empty()) stack_.pop_back();
  }
  void stamp(AccessEvent& ev) const {
    if (stack_.empty()) return;
    ev.ctx = stack_.back().node;
    for (std::size_t i = 0; i < kNestIters && i < stack_.size(); ++i)
      ev.iters[i] = stack_[i].iter;
  }

 private:
  struct Level {
    std::uint32_t node = 0;
    std::uint32_t iter = 0;
  };
  std::vector<Level> stack_;
};

void gen_nest_level(Trace& t, NestStamper& nest, const GenParams& p, Rng& rng,
                    std::uint32_t level, std::uint32_t depth,
                    std::size_t width) {
  nest.push(level * 10);  // static loop id per nest level
  // Some dynamic entries of inner loops execute zero iterations — the
  // begin/end markers fire but no body access or DP_LOOP_ITER does.
  if (level > 1 && rng.below(4) == 0) {
    nest.pop();
    return;
  }
  const std::uint64_t acc_addr = p.base_addr + level * p.stride;
  for (std::size_t it = 0; it < width; ++it) {
    // Per-level accumulator: read-then-write every iteration gives a
    // distance-1 carried RAW at exactly this level.
    AccessEvent rd = make_event(acc_addr, false, 40 + level * 4);
    nest.stamp(rd);
    t.events.push_back(rd);
    // Per-iteration slot: write-then-read inside one iteration is
    // iteration-independent (distance 0); the slot recurs every 5
    // iterations, adding a distance >= 2 carried WAW.
    const std::uint64_t slot =
        p.base_addr + (100 + level * 8 + it % 5) * p.stride;
    AccessEvent wr0 = make_event(slot, true, 41 + level * 4);
    nest.stamp(wr0);
    t.events.push_back(wr0);
    // Imperfect nest: the child loop sits between body accesses, and its
    // every dynamic entry is a fresh forest node (sibling re-entry).
    if (level < depth) gen_nest_level(t, nest, p, rng, level + 1, depth, width);
    AccessEvent rd0 = make_event(slot, false, 42 + level * 4);
    nest.stamp(rd0);
    t.events.push_back(rd0);
    AccessEvent wr = make_event(acc_addr, true, 43 + level * 4);
    nest.stamp(wr);
    t.events.push_back(wr);
    nest.iter();
  }
  nest.pop();
}

}  // namespace

Trace gen_uniform(const GenParams& p) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const std::uint64_t idx = rng.below(p.distinct ? p.distinct : 1);
    const bool write = rng.uniform() < p.write_ratio;
    // Distinct source lines per (address bucket, kind) keep the dependence
    // space rich without being degenerate.
    const auto line = static_cast<std::uint32_t>(10 + (idx % 50) * 2 + (write ? 1 : 0));
    t.events.push_back(make_event(p.base_addr + idx * p.stride, write, line));
  }
  return t;
}

Trace gen_strided(const GenParams& p) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  std::size_t i = 0;
  while (i < p.accesses) {
    for (std::size_t k = 0; k < p.distinct && i < p.accesses; ++k, ++i) {
      const bool write = rng.uniform() < p.write_ratio;
      const auto line = static_cast<std::uint32_t>(write ? 21 : 20);
      t.events.push_back(make_event(p.base_addr + k * p.stride, write, line));
    }
  }
  return t;
}

Trace gen_zipf(const GenParams& p, double s) {
  Rng rng(p.seed);
  const std::size_t n = p.distinct ? p.distinct : 1;
  // Build the Zipf CDF once; ranks are mapped to shuffled addresses so the
  // hot set is not contiguous in memory.
  std::vector<double> cdf(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf[k] = sum;
  }
  for (auto& c : cdf) c /= sum;

  std::vector<std::uint64_t> addr_of_rank(n);
  for (std::size_t k = 0; k < n; ++k) addr_of_rank[k] = p.base_addr + k * p.stride;
  for (std::size_t k = n; k > 1; --k)
    std::swap(addr_of_rank[k - 1], addr_of_rank[rng.below(k)]);

  Trace t;
  t.events.reserve(p.accesses);
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto rank = static_cast<std::size_t>(it - cdf.begin());
    const bool write = rng.uniform() < p.write_ratio;
    const auto line = static_cast<std::uint32_t>(30 + (rank % 20) + (write ? 100 : 0));
    t.events.push_back(make_event(addr_of_rank[rank < n ? rank : n - 1], write, line));
  }
  return t;
}

Trace gen_loop(const GenParams& p, std::size_t iters, bool carried,
               std::uint32_t loop_id) {
  Trace t;
  const std::size_t len = p.distinct ? p.distinct : 1;
  t.events.reserve(iters * len * 2);
  NestStamper nest;
  nest.push(loop_id);
  for (std::size_t it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < len; ++i) {
      // Read a[i-1] (carried) or a[i] (independent), then write a[i].
      const std::size_t src = carried ? (i + len - 1) % len : i;
      AccessEvent rd = make_event(p.base_addr + src * p.stride, false, 40);
      nest.stamp(rd);
      t.events.push_back(rd);
      AccessEvent wr = make_event(p.base_addr + i * p.stride, true, 41);
      nest.stamp(wr);
      t.events.push_back(wr);
    }
    nest.iter();
  }
  return t;
}

Trace gen_nest(const GenParams& p, std::uint32_t depth, std::size_t width) {
  Trace t;
  Rng rng(p.seed);
  NestStamper nest;
  // Two sibling top-level nests: accesses shared across them exercise the
  // cross-loop (no common entry) attribution path.
  gen_nest_level(t, nest, p, rng, 1, depth ? depth : 1, width);
  gen_nest_level(t, nest, p, rng, 1, depth ? depth : 1, width);
  return t;
}

Trace gen_churn(const GenParams& p, double free_ratio, unsigned threads,
                std::size_t nest_depth) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  const std::size_t pool = p.distinct ? p.distinct : 1;
  std::uint64_t ts = 1;
  NestStamper nest;
  for (std::size_t d = 1; d <= nest_depth; ++d)
    nest.push(static_cast<std::uint32_t>(200 + d));
  for (std::size_t i = 0; i < p.accesses; ++i) {
    if (nest_depth > 0 && i > 0) {
      // Walk the nest while churning: the innermost loop iterates every 16
      // events and is re-entered (fresh forest node, enclosing level
      // advances) every 64, so frees and reuse land in varied contexts.
      if (i % 64 == 0) {
        nest.pop();
        nest.iter();
        nest.push(static_cast<std::uint32_t>(200 + nest_depth));
      } else if (i % 16 == 0) {
        nest.iter();
      }
    }
    const std::uint64_t addr = p.base_addr + rng.below(pool) * p.stride;
    const double roll = rng.uniform();
    AccessEvent ev;
    ev.addr = addr;
    if (roll < free_ratio) {
      ev.kind = AccessKind::kFree;
    } else {
      const bool write = roll < free_ratio + (1.0 - free_ratio) * p.write_ratio;
      ev.kind = write ? AccessKind::kWrite : AccessKind::kRead;
      ev.loc = SourceLocation(1, 70 + static_cast<std::uint32_t>(rng.below(30)) +
                                     (write ? 100 : 0))
                   .packed();
      ev.var = static_cast<std::uint32_t>(rng.below(4));
    }
    if (threads > 0) {
      ev.tid = static_cast<std::uint16_t>(i % threads);
      ev.ts = ts++;
      // Lock-ordered interleaving: each access pushes atomically (Fig. 4),
      // so a single-threaded replay of this trace is order-faithful.
      ev.flags |= kInLockRegion;
    }
    nest.stamp(ev);
    t.events.push_back(ev);
  }
  return t;
}

Trace gen_mt_producer_consumer(const GenParams& p, unsigned threads,
                               std::size_t shared_addrs) {
  Rng rng(p.seed);
  Trace t;
  t.events.reserve(p.accesses);
  std::uint64_t ts = 1;
  const std::size_t per_thread = p.distinct / (threads ? threads : 1) + 1;
  for (std::size_t i = 0; i < p.accesses; ++i) {
    const auto tid = static_cast<std::uint16_t>(i % threads);
    const bool shared = shared_addrs > 0 && rng.uniform() < 0.2;
    std::uint64_t addr;
    bool write;
    if (shared) {
      // Neighbour communication: thread t writes slot s, thread t+1 reads it.
      const std::uint64_t s = rng.below(shared_addrs);
      addr = p.base_addr + (p.distinct + s) * p.stride;
      // Writers are even interleaving steps, readers odd — produces a stable
      // producer(t) -> consumer(t+1 mod T) RAW pattern.
      write = (s + tid) % 2 == 0;
    } else {
      addr = p.base_addr + (tid * per_thread + rng.below(per_thread)) * p.stride;
      write = rng.uniform() < p.write_ratio;
    }
    AccessEvent ev = make_event(addr, write, shared ? 60 : 50 + tid, tid, ts++);
    ev.flags = kInLockRegion;
    t.events.push_back(ev);
  }
  return t;
}

}  // namespace depprof
