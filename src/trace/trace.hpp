#pragma once
// In-memory access traces and their statistics.
//
// Traces serve three roles: deterministic test inputs (serial vs parallel
// equivalence), synthetic workloads for the formula-2 and queue ablations,
// and replayable captures of instrumented runs (examples/profile_trace).

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "trace/event.hpp"
#include "trace/event_buffer.hpp"

namespace depprof {

/// A recorded sequence of access events in program order.
struct Trace {
  std::vector<AccessEvent> events;

  std::size_t size() const { return events.size(); }

  /// Number of distinct addresses touched — the `n` of formula 2.
  std::size_t distinct_addresses() const {
    std::unordered_set<std::uint64_t> set;
    set.reserve(events.size() / 4 + 1);
    for (const auto& ev : events)
      if (!ev.is_free()) set.insert(ev.addr);
    return set.size();
  }

  /// Fraction of write events (lifetime events excluded).
  double write_ratio() const {
    std::size_t writes = 0, total = 0;
    for (const auto& ev : events) {
      if (ev.is_free()) continue;
      ++total;
      writes += ev.is_write() ? 1 : 0;
    }
    return total ? static_cast<double>(writes) / static_cast<double>(total) : 0.0;
  }
};

/// AccessSink that records the stream into a Trace (capture-and-replay).
/// Thread-safe so multi-threaded targets can be recorded; events land in
/// arrival order (per-thread order preserved, cross-thread order by lock
/// acquisition, as in the real pipeline).
class TraceRecorder final : public AccessSink {
 public:
  void on_access(const AccessEvent& ev) override {
    std::lock_guard lock(mu_);
    trace_.events.push_back(ev);
  }
  void on_batch(const AccessEvent* events, std::size_t count) override {
    std::lock_guard lock(mu_);
    trace_.events.insert(trace_.events.end(), events, events + count);
  }
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

 private:
  std::mutex mu_;
  Trace trace_;
};

/// Replays a trace into any sink, preserving program order.  Events travel
/// through the same batched chunk path (AccessSink::on_batch) that live
/// instrumentation uses.
inline void replay(const Trace& trace, AccessSink& sink) {
  deliver_batched(trace.events.data(), trace.events.size(), sink);
  sink.finish();
}

}  // namespace depprof
