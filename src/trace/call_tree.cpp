#include "trace/call_tree.hpp"

#include <sstream>

namespace depprof {

std::uint32_t CallTree::child_of(std::uint32_t parent, std::uint32_t func_loc,
                                 std::uint32_t name_id) {
  for (std::uint32_t c : nodes_[parent].children) {
    if (nodes_[c].func_loc == func_loc && nodes_[c].name_id == name_id)
      return c;
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  CallNode node;
  node.func_loc = func_loc;
  node.name_id = name_id;
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(idx);
  return idx;
}

unsigned CallTree::depth(std::uint32_t idx) const {
  unsigned d = 0;
  while (idx != kRoot) {
    idx = nodes_[idx].parent;
    ++d;
  }
  return d;
}

std::string CallTree::render() const {
  std::ostringstream os;
  // Depth-first over the explicit child lists for stable output.
  std::vector<std::pair<std::uint32_t, unsigned>> stack{{kRoot, 0}};
  while (!stack.empty()) {
    const auto [idx, d] = stack.back();
    stack.pop_back();
    const CallNode& n = nodes_[idx];
    if (idx == kRoot) {
      os << "<program>\n";
    } else {
      os << std::string(d * 2, ' ')
         << var_registry().name(n.name_id) << " ("
         << SourceLocation::from_packed(n.func_loc).str() << ") x" << n.calls
         << '\n';
    }
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
      stack.emplace_back(*it, d + 1);
  }
  return os.str();
}

}  // namespace depprof
