#pragma once
// Runtime control-flow information (Sec. III-A).
//
// Besides pair-wise dependences the profiler records control regions: the
// entry/exit of every loop together with the number of iterations actually
// executed (Fig. 1: "1:60 BGN loop" ... "1:74 END loop 1200").  The
// parallelism-discovery analysis (Sec. VII-A) consumes the per-loop line
// ranges and iteration counts recorded here.

#include <cstdint>
#include <vector>

#include "common/location.hpp"

namespace depprof {

/// One static loop observed at runtime, aggregated over all entries.
struct LoopRecord {
  std::uint32_t loop_id = 0;
  std::uint32_t begin_loc = 0;  ///< packed location of the loop entry
  std::uint32_t end_loc = 0;    ///< packed location of the loop exit
  std::uint64_t iterations = 0; ///< total iterations executed (Fig. 1's "1200")
  std::uint64_t entries = 0;    ///< times the loop was entered

  /// True when `loc` lies within the loop's source-line range (same file).
  bool contains(SourceLocation loc) const {
    const SourceLocation b = SourceLocation::from_packed(begin_loc);
    const SourceLocation e = SourceLocation::from_packed(end_loc);
    return loc.file_id() == b.file_id() && loc.line() >= b.line() &&
           loc.line() <= e.line();
  }
};

/// One observed static nesting edge: `child_loop` was entered while
/// `parent_loop` (0 = no enclosing loop) was the innermost active loop of
/// the entering thread.  The edges form the run's loop-nest tree — or, for
/// loops reached from several contexts, a DAG; `entries` counts how often
/// the edge was taken.
struct NestEdge {
  std::uint32_t parent_loop = 0;
  std::uint32_t child_loop = 0;
  std::uint64_t entries = 0;
};

/// All control-flow records of a run.
struct ControlFlowLog {
  std::vector<LoopRecord> loops;
  /// Nest tree edges, sorted by (parent_loop, child_loop).
  std::vector<NestEdge> edges;
  /// Stray loop markers: DP_LOOP_ITER / DP_LOOP_END calls that found the
  /// calling thread's loop stack empty (a thread entering mid-loop, or
  /// mismatched instrumentation).  They are ignored — counted here so the
  /// harness can surface them instead of silently corrupting the nest.
  std::uint64_t stray_iters = 0;
  std::uint64_t stray_ends = 0;

  const LoopRecord* find(std::uint32_t loop_id) const {
    for (const auto& l : loops)
      if (l.loop_id == loop_id) return &l;
    return nullptr;
  }

  /// Loops observed directly inside `parent_loop` (0 = top level), in
  /// ascending loop id (= begin location) order.
  std::vector<std::uint32_t> children_of(std::uint32_t parent_loop) const {
    std::vector<std::uint32_t> out;
    for (const auto& e : edges)
      if (e.parent_loop == parent_loop) out.push_back(e.child_loop);
    return out;
  }

  /// True when `loop_id` was ever entered with an enclosing loop active.
  bool has_parent(std::uint32_t loop_id) const {
    for (const auto& e : edges)
      if (e.child_loop == loop_id && e.parent_loop != 0) return true;
    return false;
  }
};

}  // namespace depprof
