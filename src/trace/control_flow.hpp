#pragma once
// Runtime control-flow information (Sec. III-A).
//
// Besides pair-wise dependences the profiler records control regions: the
// entry/exit of every loop together with the number of iterations actually
// executed (Fig. 1: "1:60 BGN loop" ... "1:74 END loop 1200").  The
// parallelism-discovery analysis (Sec. VII-A) consumes the per-loop line
// ranges and iteration counts recorded here.

#include <cstdint>
#include <vector>

#include "common/location.hpp"

namespace depprof {

/// One static loop observed at runtime, aggregated over all entries.
struct LoopRecord {
  std::uint32_t loop_id = 0;
  std::uint32_t begin_loc = 0;  ///< packed location of the loop entry
  std::uint32_t end_loc = 0;    ///< packed location of the loop exit
  std::uint64_t iterations = 0; ///< total iterations executed (Fig. 1's "1200")
  std::uint64_t entries = 0;    ///< times the loop was entered

  /// True when `loc` lies within the loop's source-line range (same file).
  bool contains(SourceLocation loc) const {
    const SourceLocation b = SourceLocation::from_packed(begin_loc);
    const SourceLocation e = SourceLocation::from_packed(end_loc);
    return loc.file_id() == b.file_id() && loc.line() >= b.line() &&
           loc.line() <= e.line();
  }
};

/// All control-flow records of a run.
struct ControlFlowLog {
  std::vector<LoopRecord> loops;

  const LoopRecord* find(std::uint32_t loop_id) const {
    for (const auto& l : loops)
      if (l.loop_id == loop_id) return &l;
    return nullptr;
  }
};

}  // namespace depprof
