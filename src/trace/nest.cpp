#include "trace/nest.hpp"

#include <new>

namespace depprof {

NestForest::NestForest() {
  chunk_ = new std::atomic<Node*>[kMaxChunks];
  for (std::uint32_t i = 0; i < kMaxChunks; ++i)
    chunk_[i].store(nullptr, std::memory_order_relaxed);
  // Intern the root eagerly so node(kRoot) is always valid.
  Node* first = new Node[kChunkNodes];
  first[0] = Node{};
  chunk_[0].store(first, std::memory_order_release);
  size_.store(1, std::memory_order_release);
}

NestForest::~NestForest() {
  for (std::uint32_t i = 0; i < kMaxChunks; ++i)
    delete[] chunk_[i].load(std::memory_order_relaxed);
  delete[] chunk_;
}

std::uint32_t NestForest::enter(std::uint32_t parent, std::uint32_t loop) {
  std::lock_guard lock(mu_);
  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  const std::uint32_t c = id >> kChunkShift;
  Node* nodes = chunk_[c].load(std::memory_order_relaxed);
  if (nodes == nullptr) {
    nodes = new Node[kChunkNodes];
    chunk_[c].store(nodes, std::memory_order_release);
  }
  Node& n = nodes[id & (kChunkNodes - 1)];
  n.parent = parent < id ? parent : kRoot;  // parents precede children
  n.loop = loop;
  n.depth = node(n.parent).depth + 1;
  // Publish after the node is fully written: readers gate on size().
  size_.store(id + 1, std::memory_order_release);
  return id;
}

NestForest& nest_forest() {
  static NestForest* forest = new NestForest();  // never destroyed (see hpp)
  return *forest;
}

}  // namespace depprof
