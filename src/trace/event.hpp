#pragma once
// Memory-access events — the unit of work flowing through the profiler.
//
// The instrumentation boundary of the paper is an LLVM pass inserting a call
// per IR load/store (Fig. 4); our source-level macros produce the same
// per-access records.  Everything downstream (Algorithm 1, the Fig. 2
// pipeline, the analyses) consumes this event stream and nothing else.
//
// Each event carries the loop context of the access as one interned nest
// context id — the innermost dynamic loop entry, a node of the global
// NestForest (trace/nest.hpp) — plus a bounded, root-anchored window of
// iteration counters: iters[i] is the iteration of the enclosing loop at
// nest depth i+1, counted from the *outermost* loop.  A dependence is
// carried by the innermost loop entry common to source and sink when their
// iteration counters differ at that entry's depth.  Root-anchoring is what
// keeps the window sufficient: the common entry's depth never exceeds
// either endpoint's depth, so its counter sits inside both windows whenever
// the common depth is <= kNestIters, regardless of how deep the endpoints
// themselves are.  Deeper common levels (nests beyond kNestIters) degrade
// conservatively to "carried, distance >= 2" — never to a heuristic.

#include <cstdint>

#include "common/location.hpp"

namespace depprof {

enum class AccessKind : std::uint8_t {
  kRead = 0,
  kWrite = 1,
  /// Variable-lifetime event (Sec. III-B): the address range became obsolete
  /// (free / scope exit); remove it from the signatures.
  kFree = 2,
  /// Burst boundary of the overhead-budget sampling mode: one or more
  /// accesses were dropped immediately before this point.  Consumers must
  /// clear their last-access state so no dependence is attributed across
  /// the unobserved gap — that clearing is what makes every sampled
  /// dependence edge a true edge of the unsampled run (subset contract).
  kBurstMark = 3,
};

/// Event flag bits.
enum AccessFlags : std::uint8_t {
  /// The access happened inside an explicit lock region of the target
  /// (Sec. V, Fig. 4): access and push are atomic, so its timestamp order is
  /// trustworthy.
  kInLockRegion = 1u << 0,
};

/// Levels of the root-anchored iteration window carried per access.
inline constexpr std::size_t kNestIters = 7;

/// One instrumented memory access (or lifetime event).
struct AccessEvent {
  std::uint64_t addr = 0;  ///< byte address of the access
  std::uint64_t ts = 0;    ///< global timestamp (MT targets; 0 for sequential)
  std::uint32_t loc = 0;   ///< packed SourceLocation
  std::uint32_t var = 0;   ///< variable-name registry id
  /// Innermost enclosing dynamic loop entry — a NestForest node id
  /// (NestForest::kRoot = not inside any loop).
  std::uint32_t ctx = 0;
  /// Root-anchored iteration counters: iters[i] is the iteration of the
  /// enclosing loop at depth i+1 (outermost = depth 1).  Levels beyond the
  /// context's depth — and beyond kNestIters — are 0.
  std::uint32_t iters[kNestIters] = {};
  std::uint16_t tid = 0;   ///< target-program thread id
  AccessKind kind = AccessKind::kRead;
  std::uint8_t flags = 0;

  bool is_read() const { return kind == AccessKind::kRead; }
  bool is_write() const { return kind == AccessKind::kWrite; }
  bool is_free() const { return kind == AccessKind::kFree; }
  bool is_burst_mark() const { return kind == AccessKind::kBurstMark; }
  SourceLocation location() const { return SourceLocation::from_packed(loc); }
};

static_assert(sizeof(AccessEvent) == 64);  // exactly one cache line

/// Consumer of an instrumentation event stream.  Implemented by the serial
/// profiler, the parallel profiler's producer side, and the trace recorder.
class AccessSink {
 public:
  virtual ~AccessSink() = default;
  virtual void on_access(const AccessEvent& ev) = 0;
  /// Batched delivery — the chunk path shared by live instrumentation
  /// (thread-local EventBuffer flushes) and trace replay.  Sinks with a hot
  /// per-event loop override this so the stream pays one virtual call per
  /// batch instead of one per access.  Events of one batch all originate
  /// from the same target thread, in program order.
  virtual void on_batch(const AccessEvent* events, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) on_access(events[i]);
  }
  /// Run-length-encoded batch: `reps[i]` identical instances of `events[i]`
  /// (reps[i] >= 1), produced by the front-end dedup cache.  Expanding the
  /// runs in order yields exactly the stream on_batch would have carried, so
  /// the default implementation does that and sinks that never look at
  /// per-instance identity (recorders, profilers without a compressed fast
  /// path) need no override.  Profilers override this to keep the runs
  /// compressed through their produce/route stages.
  virtual void on_batch_rle(const AccessEvent* events,
                            const std::uint32_t* reps, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      for (std::uint32_t r = 0; r < reps[i]; ++r) on_access(events[i]);
  }
  /// A target thread left a lock region (Sec. V, Fig. 4): buffered accesses
  /// of that thread must be pushed before the lock is released so that
  /// access and push stay atomic.  No-op for sinks without buffering.
  virtual void on_unlock(std::uint16_t tid) { (void)tid; }
  /// Stream end: flush buffered state.
  virtual void finish() {}
  /// Profiling cost spent inside this sink so far, in nanoseconds of CPU
  /// time (sum of the pipeline stages' cpu_ns for profilers).  The
  /// overhead-budget sampling controller polls this between bursts to
  /// measure the achieved overhead fraction online; sinks without stage
  /// clocks report 0 and the controller falls back to its configured duty.
  virtual std::uint64_t profiling_cost_ns() const { return 0; }
  /// Sampling summary, delivered once at detach when the overhead-budget
  /// mode was active: accesses dropped in skipped units, burst boundaries
  /// emitted, and the controller's measured overhead in parts-per-million.
  virtual void on_sampling_stats(std::uint64_t events_sampled_out,
                                 std::uint64_t bursts,
                                 std::uint64_t overhead_ppm) {
    (void)events_sampled_out;
    (void)bursts;
    (void)overhead_ppm;
  }
};

}  // namespace depprof
