#pragma once
// Lock-free single-producer/single-consumer bounded ring buffer.
//
// This is the queue of the sequential-target pipeline (Fig. 2): the main
// thread is the only producer and each worker consumes exclusively from its
// own queue.  Progress is wait-free for both sides; synchronisation is a
// release store of the index paired with an acquire load on the other side.
// Cached peer indices keep the common case free of cross-core traffic.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mem_stats.hpp"
#include "queue/concurrent_queue.hpp"
#include "sched/sched.hpp"

namespace depprof {

template <typename T>
class SpscQueue final : public ConcurrentQueue<T> {
 public:
  explicit SpscQueue(std::size_t capacity)
      : mask_(round_up_pow2(capacity) - 1),
        buf_(mask_ + 1),
        charge_(MemComponent::kQueues,
                static_cast<std::int64_t>(sizeof(T) * (mask_ + 1))) {}

  bool try_push(const T& value) override {
    sched::point("spsc.push");
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_cache_ > mask_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ > mask_) return false;
    }
    buf_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) override {
    sched::point("spsc.pop");
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = buf_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t size_approx() const override {
    return head_.load(std::memory_order_relaxed) -
           tail_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const override { return mask_ + 1; }

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

 private:
  static constexpr std::size_t kCacheLine = 64;

  const std::size_t mask_;
  std::vector<T> buf_;
  ScopedMemCharge charge_;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // producer side
  alignas(kCacheLine) std::size_t tail_cache_ = 0;        // producer's view of tail
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // consumer side
  alignas(kCacheLine) std::size_t head_cache_ = 0;        // consumer's view of head
};

}  // namespace depprof
