#pragma once
// Wait strategies for the pipeline's blocking sites (ISSUE 2; cf. Inspector's
// adaptive waiting, Thalheim et al.).
//
// The Fig. 2 pipeline has three places where a thread must wait for a peer:
// an idle worker waiting for chunks, a producer waiting for space in a full
// worker queue, and a worker waiting for the migration mailbox to be
// published.  The paper's lock-free design busy-waits at all three, which is
// optimal when every pipeline thread owns a core but burns whole cores —
// and distorts every busy/idle measurement — as soon as the machine is
// oversubscribed.  `wait_until` bounds that burn with a three-phase policy:
//
//   kSpin  — pure busy-wait (pause instructions only); the paper's behaviour.
//   kYield — bounded spin, then sched_yield between polls.
//   kPark  — bounded spin, bounded yield, then block on an EventCount until
//            a peer publishes work (default; degrades gracefully under load).
//
// Parking requires wake hooks: whoever makes the awaited condition true must
// notify the site's EventCount afterwards.  EventCount::notify_all is a
// single atomic load when nobody is parked, so the hooks cost nothing on the
// hot path.  A bounded park timeout backstops the protocol: a (theoretical)
// missed wakeup degrades to a late poll, never to a deadlock — the property
// the CI stress test enforces under TSan.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <thread>

#include "sched/sched.hpp"

namespace depprof {

/// How a pipeline thread waits when it cannot make progress.
enum class WaitKind {
  kSpin,   ///< unbounded busy-wait (the paper's configuration)
  kYield,  ///< spin briefly, then yield the processor between polls
  kPark,   ///< spin, yield, then sleep on an eventcount until notified
};

inline const char* wait_kind_name(WaitKind kind) {
  switch (kind) {
    case WaitKind::kSpin: return "spin";
    case WaitKind::kYield: return "yield";
    case WaitKind::kPark: return "park";
  }
  return "?";
}

/// Parses a --wait flag value; returns false on unknown names.
inline bool parse_wait_kind(const char* name, WaitKind& out) {
  const std::string_view v = name;
  if (v == "spin") out = WaitKind::kSpin;
  else if (v == "yield") out = WaitKind::kYield;
  else if (v == "park") out = WaitKind::kPark;
  else return false;
  return true;
}

/// One polite busy-wait iteration (PAUSE on x86, YIELD on arm).
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Eventcount: the parking primitive behind WaitKind::kPark.
///
/// Waiter protocol:  key = prepare_wait(); if (poll()) cancel_wait();
///                   else wait(key);      // then re-poll
/// Notifier protocol: publish the condition, then notify_all().
///
/// prepare_wait/notify_all pair seq_cst fences so that either the notifier
/// observes the registered waiter (and bumps the epoch under the mutex, which
/// the blocked side re-checks under the same mutex — no lost wakeup) or the
/// waiter's re-poll observes the published condition.  wait() additionally
/// bounds each sleep, so even a missed wakeup only delays the next poll.
class EventCount {
 public:
  std::uint32_t prepare_wait() {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }

  void cancel_wait() { waiters_.fetch_sub(1, std::memory_order_release); }

  /// Blocks until the epoch moves past `key` (or the backstop timeout).
  void wait(std::uint32_t key) {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, kParkBackstop, [&] {
      return epoch_.load(std::memory_order_relaxed) != key;
    });
    lock.unlock();
    waiters_.fetch_sub(1, std::memory_order_release);
  }

  /// Wakes every parked waiter.  Returns 1 when waiters were present (a
  /// delivered wake, for the obs counters), 0 for the free fast path.
  std::uint64_t notify_all() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return 0;
    {
      std::lock_guard lock(mu_);
      epoch_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
    return 1;
  }

 private:
  static constexpr std::chrono::milliseconds kParkBackstop{10};

  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

/// Wake hooks of one bounded queue: consumers park on (and producers
/// notify) `not_empty`; blocked producers park on (and consumers notify)
/// `not_full`.  Padded so the two sides never share a cache line.
struct QueueGates {
  alignas(64) EventCount not_empty;
  alignas(64) EventCount not_full;
};

/// What one wait episode did — folded into the stage's obs counters.
struct WaitCounters {
  std::uint64_t yields = 0;     ///< sched_yield calls
  std::uint64_t parks = 0;      ///< times the thread blocked in the OS
  std::uint64_t parked_ns = 0;  ///< wall time spent blocked
};

/// Blocks until poll() returns true, escalating spin → yield → park as the
/// strategy permits.  `poll` must be safe to call repeatedly and is the only
/// way the wait exits; with kPark the peer that makes poll() true must
/// notify `ec` afterwards.
template <typename Poll>
WaitCounters wait_until(WaitKind kind, EventCount& ec, Poll&& poll) {
  constexpr int kSpinIters = 256;
  constexpr int kYieldIters = 16;
  WaitCounters out;
  if (sched::active()) {
    // Under deterministic scheduling the wait IS a schedule point: spinning
    // while serialized would livelock (the peer that makes poll() true can
    // never be granted a turn), and parking would stall the controller.
    // Each failed poll yields one step to the controller instead.
    while (!poll()) sched::point("wait.poll");
    return out;
  }
  for (;;) {
    for (int i = 0; i < kSpinIters; ++i) {
      if (poll()) return out;
      cpu_relax();
    }
    if (kind == WaitKind::kSpin) continue;
    for (int i = 0; i < kYieldIters; ++i) {
      if (poll()) return out;
      std::this_thread::yield();
      ++out.yields;
    }
    if (kind == WaitKind::kYield) continue;
    const std::uint32_t key = ec.prepare_wait();
    if (poll()) {
      ec.cancel_wait();
      return out;
    }
    const auto t0 = std::chrono::steady_clock::now();
    ec.wait(key);
    out.parked_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    ++out.parks;
  }
}

}  // namespace depprof
