#pragma once
// Lock-free bounded multi-producer/multi-consumer queue (Vyukov's design).
//
// Used in two places:
//  * the MT-target pipeline (Sec. V): every target-program thread produces
//    chunks, so worker queues need multiple producers;
//  * the chunk recycling pool (Fig. 2: "Empty chunks are recycled"), where
//    workers return chunks and producers grab them.
//
// Each cell carries a sequence number; producers and consumers claim cells
// with a single CAS on their index and then synchronise through the cell's
// sequence (release/acquire), so the queue is lock-free and linearizable.

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mem_stats.hpp"
#include "queue/concurrent_queue.hpp"
#include "queue/spsc_queue.hpp"
#include "sched/sched.hpp"

namespace depprof {

template <typename T>
class MpmcQueue final : public ConcurrentQueue<T> {
 public:
  explicit MpmcQueue(std::size_t capacity)
      : mask_(SpscQueue<T>::round_up_pow2(capacity) - 1),
        cells_(mask_ + 1),
        charge_(MemComponent::kQueues,
                static_cast<std::int64_t>(sizeof(Cell) * (mask_ + 1))) {
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  bool try_push(const T& value) override {
    sched::point("mpmc.push");
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff = static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    cell.value = value;
    cell.seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) override {
    sched::point("mpmc.pop");
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed))
          break;
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Cell& cell = cells_[pos & mask_];
    out = cell.value;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  std::size_t size_approx() const override {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    return h > t ? h - t : 0;
  }

  std::size_t capacity() const override { return mask_ + 1; }

 private:
  static constexpr std::size_t kCacheLine = 64;

  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  const std::size_t mask_;
  std::vector<Cell> cells_;
  ScopedMemCharge charge_;
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};
};

}  // namespace depprof
