#pragma once
// Umbrella header: all queue implementations plus the factory.

#include <memory>

#include "queue/concurrent_queue.hpp"
#include "queue/mpmc_queue.hpp"
#include "queue/mutex_queue.hpp"
#include "queue/spsc_queue.hpp"

namespace depprof {

template <typename T>
std::unique_ptr<ConcurrentQueue<T>> make_queue(QueueKind kind, std::size_t capacity) {
  switch (kind) {
    case QueueKind::kLockFreeSpsc:
      return std::make_unique<SpscQueue<T>>(capacity);
    case QueueKind::kLockFreeMpmc:
      return std::make_unique<MpmcQueue<T>>(capacity);
    case QueueKind::kMutex:
      return std::make_unique<MutexQueue<T>>(capacity);
  }
  return nullptr;
}

inline const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kLockFreeSpsc: return "lock-free-spsc";
    case QueueKind::kLockFreeMpmc: return "lock-free-mpmc";
    case QueueKind::kMutex: return "mutex";
  }
  return "?";
}

}  // namespace depprof
