#pragma once
// Lock-based bounded queue — the comparison point of Fig. 5.
//
// Same bounded-FIFO semantics as the lock-free queues but every operation
// takes a mutex, reproducing the "major synchronization overhead comes from
// locking and unlocking the queues" baseline the paper improves on.

#include <mutex>
#include <vector>

#include "common/mem_stats.hpp"
#include "queue/concurrent_queue.hpp"
#include "queue/spsc_queue.hpp"
#include "sched/sched.hpp"

namespace depprof {

template <typename T>
class MutexQueue final : public ConcurrentQueue<T> {
 public:
  explicit MutexQueue(std::size_t capacity)
      : mask_(SpscQueue<T>::round_up_pow2(capacity) - 1),
        buf_(mask_ + 1),
        charge_(MemComponent::kQueues,
                static_cast<std::int64_t>(sizeof(T) * (mask_ + 1))) {}

  bool try_push(const T& value) override {
    sched::point("mutex.push");
    std::lock_guard lock(mu_);
    if (head_ - tail_ > mask_) return false;
    buf_[head_ & mask_] = value;
    ++head_;
    return true;
  }

  bool try_pop(T& out) override {
    sched::point("mutex.pop");
    std::lock_guard lock(mu_);
    if (head_ == tail_) return false;
    out = buf_[tail_ & mask_];
    ++tail_;
    return true;
  }

  std::size_t size_approx() const override {
    std::lock_guard lock(mu_);
    return head_ - tail_;
  }

  std::size_t capacity() const override { return mask_ + 1; }

 private:
  const std::size_t mask_;
  std::vector<T> buf_;
  ScopedMemCharge charge_;
  mutable std::mutex mu_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace depprof
