#pragma once
// Bounded concurrent queue interface.
//
// The pipeline of Fig. 2 buffers chunks of memory accesses in one queue per
// worker.  "Since the major synchronization overhead comes from locking and
// unlocking the queues, we made the queues lock-free to lower the overhead."
// Fig. 5 compares the lock-based and lock-free designs; we keep both as
// first-class implementations behind this interface.  Queue operations are
// per *chunk*, so the virtual dispatch here is off the per-access fast path.

#include <cstdint>
#include <memory>

namespace depprof {

enum class QueueKind {
  kLockFreeSpsc,  ///< single-producer/single-consumer ring (sequential targets)
  kLockFreeMpmc,  ///< Vyukov bounded MPMC (multi-threaded targets, chunk pool)
  kMutex,         ///< lock-based baseline (Fig. 5 "8T_lock-based" series)
};

/// Bounded FIFO of T.  Implementations are linearizable for the producer/
/// consumer multiplicities they advertise.
template <typename T>
class ConcurrentQueue {
 public:
  virtual ~ConcurrentQueue() = default;

  /// Non-blocking push; false when the queue is full.
  virtual bool try_push(const T& value) = 0;

  /// Non-blocking pop; false when the queue is empty.
  virtual bool try_pop(T& out) = 0;

  /// Approximate number of queued elements (statistics only).
  virtual std::size_t size_approx() const = 0;

  virtual std::size_t capacity() const = 0;
};

/// Factory; `capacity` is rounded up to a power of two.
template <typename T>
std::unique_ptr<ConcurrentQueue<T>> make_queue(QueueKind kind, std::size_t capacity);

const char* queue_kind_name(QueueKind kind);

}  // namespace depprof
