#include "oracle/harness.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "common/hash.hpp"
#include "instrument/dedup.hpp"
#include "oracle/diff.hpp"
#include "oracle/exact_oracle.hpp"
#include "sig/fpr_model.hpp"
#include "trace/nest.hpp"

namespace depprof {
namespace {

/// Budget parameters: kMargin absorbs the difference between the per-probe
/// formula-2 estimate and the realized collision count of a concrete hash
/// over a concrete address set; kSlack keeps tiny traces from flagging a
/// single unlucky collision as a contract violation.
constexpr double kMargin = 4.0;
constexpr std::size_t kSlack = 16;

/// Word-unit span and distinct-unit count of the trace (free events
/// excluded: they only clear state).  The signature operates on word units,
/// so these — not byte addresses — are the n of formula 2.
struct UnitStats {
  std::uint64_t span = 0;   ///< max_unit - min_unit + 1 (0 for empty traces)
  std::size_t events = 0;   ///< non-free accesses
  std::size_t distinct = 0; ///< distinct word units
};

/// Depth-1 ancestor of a nest context — the outermost-loop invocation the
/// event executed under (kRoot for events outside any loop, or for context
/// ids the forest never interned, which only corrupt input can produce).
std::uint32_t outermost_invocation(const NestForest& forest,
                                   std::uint32_t ctx) {
  if (ctx == NestForest::kRoot || ctx >= forest.size())
    return NestForest::kRoot;
  std::uint32_t c = ctx;
  while (forest.parent(c) != NestForest::kRoot) c = forest.parent(c);
  return c;
}

UnitStats unit_stats(const Trace& trace) {
  UnitStats s;
  std::uint64_t lo = ~0ull, hi = 0;
  std::unordered_set<std::uint64_t> units;
  for (const AccessEvent& ev : trace.events) {
    if (ev.is_free()) continue;
    const std::uint64_t u = word_addr(ev.addr);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    units.insert(u);
    ++s.events;
  }
  if (s.events > 0) s.span = hi - lo + 1;
  s.distinct = units.size();
  return s;
}

}  // namespace

const char* expectation_name(Expectation e) {
  switch (e) {
    case Expectation::kExact: return "exact";
    case Expectation::kBounded: return "bounded";
  }
  return "?";
}

Expectation classify_expectation(const ProfilerConfig& cfg,
                                 const Trace& trace) {
  if (cfg.storage != StorageKind::kSignature) return Expectation::kExact;
  if (cfg.sig_hash == SigHash::kModulo &&
      unit_stats(trace).span <= cfg.slots)
    return Expectation::kExact;
  return Expectation::kBounded;
}

DivergenceBudget divergence_budget(const ProfilerConfig& cfg,
                                   const Trace& trace,
                                   std::size_t oracle_keys) {
  DivergenceBudget b;
  const UnitStats s = unit_stats(trace);
  b.fpr = predicted_fpr(cfg.slots, s.distinct);
  const double scaled =
      kMargin * b.fpr * static_cast<double>(oracle_keys + s.events);
  b.max_divergent_keys = kSlack + static_cast<std::size_t>(std::ceil(scaled));
  return b;
}

Trace sample_stream(const Trace& trace, unsigned burst, unsigned skip) {
  Trace out;
  out.events.reserve(trace.events.size());
  if (burst == 0) burst = 1;
  const NestForest& forest = nest_forest();
  const unsigned cycle = burst + skip;
  bool in_unit = false;
  std::uint32_t unit_root = NestForest::kRoot;
  std::uint32_t unit_iter = 0;
  unsigned pos = 0;       // index of the current unit within the B+K cycle
  bool off = false;       // current unit is skipped
  bool pending_gap = false;
  for (const AccessEvent& ev : trace.events) {
    const std::uint32_t root = outermost_invocation(forest, ev.ctx);
    if (root == NestForest::kRoot) {
      // Outside any loop: always profiled, and any open unit is over.
      in_unit = false;
      off = false;
    } else if (!in_unit || root != unit_root || ev.iters[0] != unit_iter) {
      // New unit: a fresh outermost-loop invocation (each dynamic entry is
      // a fresh forest node) or the next iteration of the current one.
      in_unit = true;
      unit_root = root;
      unit_iter = ev.iters[0];
      off = pos >= burst;
      pos += 1;
      if (pos >= cycle) pos = 0;
    }
    if (off) {
      pending_gap = true;
      continue;
    }
    if (pending_gap) {
      // Gap-close rule: the marker precedes the first kept event after any
      // drop, so nothing is ever detected against pre-gap store state.
      pending_gap = false;
      AccessEvent mark;
      mark.kind = AccessKind::kBurstMark;
      mark.tid = ev.tid;
      out.events.push_back(mark);
    }
    out.events.push_back(ev);
  }
  return out;
}

SubsetReport check_sampled_subset(const DepMap& full, const DepMap& sampled) {
  SubsetReport r;
  for (const auto& [k, info] : full)
    if (k.type != DepType::kInit) ++r.full_edges;
  std::size_t violations = 0;
  auto violate = [&](const DepKey& k, const char* what) {
    r.ok = false;
    ++violations;
    if (violations > 8) return;
    char line[192];
    std::snprintf(line, sizeof(line),
                  "subset violation: %s sink=%u src=%u var=%u tid=%u: %s\n",
                  dep_type_name(k.type), k.sink_loc, k.src_loc, k.var,
                  k.sink_tid, what);
    r.detail += line;
  };
  for (const auto& [k, info] : sampled) {
    if (k.type == DepType::kInit) continue;
    ++r.sampled_edges;
    const DepInfo* f = full.find(k);
    if (f == nullptr) {
      violate(k, "edge absent from the unsampled map");
      continue;
    }
    if (info.count > f->count)
      violate(k, "instance count exceeds the unsampled map");
    if ((info.flags & static_cast<std::uint8_t>(~f->flags)) != 0)
      violate(k, "qualifier flags are not a subset");
    for (std::size_t d = 0; d < kNestLevels; ++d) {
      if (info.levels[d].d0 > f->levels[d].d0 ||
          info.levels[d].d1 > f->levels[d].d1 ||
          info.levels[d].d2p > f->levels[d].d2p) {
        violate(k, "per-level distance bucket exceeds the unsampled map");
        break;
      }
    }
  }
  if (violations > 8) {
    char line[64];
    std::snprintf(line, sizeof(line), "(+%zu more violations)\n",
                  violations - 8);
    r.detail += line;
  }
  r.recall = r.full_edges == 0
                 ? 1.0
                 : static_cast<double>(r.sampled_edges) /
                       static_cast<double>(r.full_edges);
  return r;
}

CaseOutcome run_case(const Trace& trace, const ProfilerConfig& cfg,
                     const SchedSpec* sched_spec) {
  CaseOutcome out;

  auto fail = [&](const std::string& what) {
    out.ok = false;
    if (!out.detail.empty()) out.detail += '\n';
    out.detail += what;
  };

  // Sampled mode (sequential targets, fixed schedule): the profilers run
  // over the sampled stream and are judged against the sampled-trace
  // oracle; the sampled oracle itself must first satisfy the subset
  // contract against the full-trace oracle.
  const bool sampled = cfg.sampling_skip > 0 && !cfg.mt_targets;
  Trace sampled_trace;
  const Trace* effective = &trace;
  DepMap oracle;
  if (sampled) {
    DepMap full = oracle_dependences(trace, cfg.mt_targets);
    sampled_trace =
        sample_stream(trace, cfg.sampling_burst, cfg.sampling_skip);
    oracle = oracle_dependences(sampled_trace, cfg.mt_targets);
    const SubsetReport sub = check_sampled_subset(full, oracle);
    if (!sub.ok)
      fail("sampled map violates the subset contract:\n" + sub.detail);
    effective = &sampled_trace;
  } else {
    oracle = oracle_dependences(trace, cfg.mt_targets);
  }
  out.expectation = classify_expectation(cfg, *effective);

  // The dedup front end is checked (and applied) once for both profilers.
  RleStream rle;
  if (cfg.dedup) {
    // Map-preservation contract of the front-end dedup (instrument/dedup.hpp):
    // expanding the RLE stream must reproduce the oracle's map exactly, for
    // every configuration — this is stronger than the exact/bounded split
    // below and is checked against the oracle itself, so a dedup defect is
    // attributed to dedup rather than to whichever store runs under it.
    rle = dedup_stream(effective->events.data(), effective->events.size());
    Trace expanded;
    expanded.events = expand_rle(rle);
    const DepMap oracle_rle = oracle_dependences(expanded, cfg.mt_targets);
    const DepDiff dedup_diff = diff_deps(oracle, oracle_rle);
    if (!dedup_diff.identical())
      fail("dedup is not map-preserving:\n" +
           format_diff(dedup_diff, "oracle(raw)", "oracle(dedup-expanded)"));
  }

  auto serial = make_serial_profiler(cfg);
  if (cfg.dedup)
    replay_rle(rle, *serial);
  else
    replay(*effective, *serial);

  // Parallel run, optionally under the deterministic schedule controller.
  // The session spans construction through finish(): workers attach as they
  // spawn.  The hand-off invariant counter is diffed across the run either
  // way — a violation is a pipeline bug regardless of schedule mode.
  const std::uint64_t violations_before = sched::violation_count();
  if (sched_spec != nullptr) {
    sched::Options opts;
    opts.seed = sched_spec->seed;
    opts.algo = sched_spec->algo;
    opts.replay = sched_spec->replay;
    sched::begin(opts);
  }
  {
    auto parallel = make_parallel_profiler(cfg);
    if (cfg.dedup)
      replay_rle(rle, *parallel);
    else
      replay(*effective, *parallel);
    if (sched_spec != nullptr) {
      sched::Result r = sched::end();
      out.schedule = std::move(r.recorded);
      out.sched_divergences = r.divergences;
    }
    out.violations = sched::violation_count() - violations_before;
    if (out.violations > 0) {
      char head[96];
      std::snprintf(head, sizeof(head),
                    "%llu chunk hand-off invariant violation(s)",
                    static_cast<unsigned long long>(out.violations));
      fail(head);
    }

    const DepDiff serial_diff = diff_deps(oracle, serial->dependences());
    const DepDiff parallel_diff = diff_deps(oracle, parallel->dependences());

    if (out.expectation == Expectation::kExact) {
      if (!serial_diff.identical())
        fail(format_diff(serial_diff, "oracle", "serial"));
      if (!parallel_diff.identical())
        fail(format_diff(parallel_diff, "oracle", "parallel"));
    } else {
      const DivergenceBudget budget =
          divergence_budget(cfg, *effective, oracle.size());
      auto check_bounded = [&](const DepDiff& d, const char* name) {
        if (d.divergent_keys() <= budget.max_divergent_keys) return;
        char head[160];
        std::snprintf(head, sizeof(head),
                      "%s exceeds the formula-2 divergence budget: %zu "
                      "divergent keys > %zu allowed (P_fp=%.4f)\n",
                      name, d.divergent_keys(), budget.max_divergent_keys,
                      budget.fpr);
        fail(head + format_diff(d, "oracle", name));
      };
      check_bounded(serial_diff, "serial");
      check_bounded(parallel_diff, "parallel");
    }
  }
  return out;
}

}  // namespace depprof
