#include "oracle/exact_oracle.hpp"

#include <vector>

#include "common/hash.hpp"
#include "trace/nest.hpp"

namespace depprof {
namespace {

/// Independent nest attribution: collect each context's ancestor chain
/// (innermost -> root), then scan for the deepest entry present in both.
/// Deliberately a different algorithm than the detector's lockstep
/// depth-levelled walk — same forest data, independently derived answer —
/// so an off-by-one in either side shows up as a differential divergence.
struct OracleAttr {
  std::uint32_t loop = 0;
  std::uint32_t level = 0;
  std::uint32_t distance = 0;
  bool distance_known = true;
};

OracleAttr oracle_attribute(std::uint32_t src_ctx,
                            const std::uint32_t* src_iters,
                            std::uint32_t sink_ctx,
                            const std::uint32_t* sink_iters) {
  OracleAttr r;
  const NestForest& forest = nest_forest();
  // Ancestor chain of the source context, innermost first.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t c = src_ctx; c != NestForest::kRoot;
       c = forest.parent(c))
    chain.push_back(c);
  // Walk the sink's chain outward; the first hit in the source chain is the
  // deepest common entry.
  for (std::uint32_t c = sink_ctx; c != NestForest::kRoot;
       c = forest.parent(c)) {
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (chain[i] != c) continue;
      r.loop = forest.loop(c);
      r.level = forest.depth(c);
      if (r.level <= kNestIters) {
        const std::uint32_t ia = src_iters[r.level - 1];
        const std::uint32_t ib = sink_iters[r.level - 1];
        r.distance = ib > ia ? ib - ia : ia - ib;
      } else {
        r.distance_known = false;
      }
      return r;
    }
  }
  return r;
}

}  // namespace

ExactOracle::LastAccess ExactOracle::remember(const AccessEvent& ev) {
  LastAccess a;
  a.loc = ev.loc;
  a.tid = ev.tid;
  a.flags = ev.flags;
  a.ts = ev.ts;
  a.ctx = ev.ctx;
  for (std::size_t i = 0; i < kNestIters; ++i) a.iters[i] = ev.iters[i];
  return a;
}

void ExactOracle::emit(const AccessEvent& sink, const LastAccess& src,
                       DepType type) {
  const OracleAttr attr =
      oracle_attribute(src.ctx, src.iters, sink.ctx, sink.iters);
  std::uint8_t flags = 0;
  if (attr.loop != 0 && (!attr.distance_known || attr.distance != 0))
    flags |= kLoopCarried;
  if (src.ctx != sink.ctx && (src.ctx != 0 || sink.ctx != 0))
    flags |= kCrossLoop;
  if (mt_) {
    if (src.tid != sink.tid) flags |= kCrossThread;
    if (src.ts > sink.ts) flags |= kReversed;
    if ((src.flags & kInLockRegion) != 0 &&
        (sink.flags & kInLockRegion) != 0)
      flags |= kLockProtected;
  }
  DepKey k;
  k.sink_loc = sink.loc;
  k.src_loc = src.loc;
  k.var = sink.var;
  k.sink_tid = sink.tid;
  if (mt_) k.src_tid = src.tid;
  k.type = type;
  DepAttribution at;
  at.loop = attr.loop;
  at.level = attr.level;
  at.distance = attr.distance;
  at.distance_known = attr.distance_known;
  deps_.add(k, flags, at);
}

void ExactOracle::on_access(const AccessEvent& ev) {
  if (ev.is_burst_mark()) {
    // Sampling gap: the same clearing rule the detectors apply, derived
    // independently — forget every last access so no dependence spans the
    // unobserved region.
    last_read_.clear();
    last_write_.clear();
    return;
  }
  const std::uint64_t unit = word_addr(ev.addr);
  if (ev.is_free()) {
    last_read_.erase(unit);
    last_write_.erase(unit);
    return;
  }
  if (ev.is_write()) {
    if (auto w = last_write_.find(unit); w != last_write_.end()) {
      emit(ev, w->second, DepType::kWaw);
    } else {
      DepKey k;
      k.sink_loc = ev.loc;
      k.src_loc = 0;
      k.var = ev.var;
      k.sink_tid = ev.tid;
      k.type = DepType::kInit;
      deps_.add(k, 0);
    }
    if (auto r = last_read_.find(unit); r != last_read_.end())
      emit(ev, r->second, DepType::kWar);
    last_write_[unit] = remember(ev);
  } else {
    if (auto w = last_write_.find(unit); w != last_write_.end())
      emit(ev, w->second, DepType::kRaw);
    last_read_[unit] = remember(ev);
  }
}

DepMap oracle_dependences(const Trace& trace, bool mt_targets) {
  ExactOracle oracle(mt_targets);
  for (const AccessEvent& ev : trace.events) oracle.on_access(ev);
  return oracle.take_dependences();
}

}  // namespace depprof
