#include "oracle/exact_oracle.hpp"

#include "common/hash.hpp"

namespace depprof {
namespace {

/// The loop carrying the dependence from `src` to `sink` (0 = none) and the
/// iteration distance, plus whether the two contexts share *any* dynamic
/// loop entry.  Matches the sink's innermost level first; the first shared
/// entry with differing iterations decides the carrying loop.
struct OracleCarried {
  std::uint32_t loop = 0;
  std::uint32_t distance = 0;
  bool matched = false;
};

OracleCarried oracle_carried(const LoopCtx* src, const LoopCtx* sink) {
  OracleCarried r;
  for (std::size_t t = 0; t < kLoopLevels; ++t)
    for (std::size_t s = 0; s < kLoopLevels; ++s) {
      const LoopCtx& a = src[s];
      const LoopCtx& b = sink[t];
      if (a.loop == 0 || a.loop != b.loop || a.entry != b.entry) continue;
      r.matched = true;
      if (a.iter != b.iter && r.loop == 0) {
        r.loop = b.loop;
        r.distance = b.iter > a.iter ? b.iter - a.iter : a.iter - b.iter;
        return r;
      }
    }
  return r;
}

}  // namespace

ExactOracle::LastAccess ExactOracle::remember(const AccessEvent& ev) {
  LastAccess a;
  a.loc = ev.loc;
  a.tid = ev.tid;
  a.ts = ev.ts;
  for (std::size_t i = 0; i < kLoopLevels; ++i) a.loops[i] = ev.loops[i];
  return a;
}

void ExactOracle::emit(const AccessEvent& sink, const LastAccess& src,
                       DepType type) {
  const OracleCarried carried = oracle_carried(src.loops, sink.loops);
  std::uint8_t flags = 0;
  if (carried.loop != 0) {
    flags |= kLoopCarried;
  } else if (!carried.matched &&
             (src.loops[0].loop != 0 || sink.loops[0].loop != 0)) {
    flags |= kCrossLoop;
  }
  if (mt_) {
    if (src.tid != sink.tid) flags |= kCrossThread;
    if (src.ts > sink.ts) flags |= kReversed;
  }
  DepKey k;
  k.sink_loc = sink.loc;
  k.src_loc = src.loc;
  k.var = sink.var;
  k.sink_tid = sink.tid;
  if (mt_) k.src_tid = src.tid;
  k.type = type;
  deps_.add(k, flags, carried.loop, carried.distance);
}

void ExactOracle::on_access(const AccessEvent& ev) {
  const std::uint64_t unit = word_addr(ev.addr);
  if (ev.is_free()) {
    last_read_.erase(unit);
    last_write_.erase(unit);
    return;
  }
  if (ev.is_write()) {
    if (auto w = last_write_.find(unit); w != last_write_.end()) {
      emit(ev, w->second, DepType::kWaw);
    } else {
      DepKey k;
      k.sink_loc = ev.loc;
      k.src_loc = 0;
      k.var = ev.var;
      k.sink_tid = ev.tid;
      k.type = DepType::kInit;
      deps_.add(k, 0);
    }
    if (auto r = last_read_.find(unit); r != last_read_.end())
      emit(ev, r->second, DepType::kWar);
    last_write_[unit] = remember(ev);
  } else {
    if (auto w = last_write_.find(unit); w != last_write_.end())
      emit(ev, w->second, DepType::kRaw);
    last_read_[unit] = remember(ev);
  }
}

DepMap oracle_dependences(const Trace& trace, bool mt_targets) {
  ExactOracle oracle(mt_targets);
  for (const AccessEvent& ev : trace.events) oracle.on_access(ev);
  return oracle.take_dependences();
}

}  // namespace depprof
