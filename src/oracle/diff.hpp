#pragma once
// Structured comparison of two dependence maps.
//
// The differential harness never wants a bare bool: when a profiler
// diverges from the oracle it needs to know *how* — keys the profiler
// missed (false negatives: a colliding insert evicted the true slot), keys
// it invented (false positives: a probe hit a foreign slot), and keys whose
// aggregated facts disagree (instance counts, qualifier flags, carried loop
// or distances).  The diff powers the pass/fail decision (exact stores must
// be identical; finite signatures must stay within the formula-2 budget),
// the human-readable failure report, and the shrinker's predicate.

#include <cstddef>
#include <string>
#include <vector>

#include "core/dep.hpp"

namespace depprof {

/// One divergent dependence record.
struct DepDiffEntry {
  enum class Kind { kMissing, kExtra, kMismatch };
  Kind kind = Kind::kMissing;
  DepKey key;
  DepInfo expected;  ///< zero-initialised for kExtra
  DepInfo actual;    ///< zero-initialised for kMissing
};

/// Aggregate diff between an expected (oracle) and an actual map.
struct DepDiff {
  std::size_t missing = 0;     ///< keys only in expected
  std::size_t extra = 0;       ///< keys only in actual
  std::size_t mismatched = 0;  ///< shared keys with differing DepInfo
  std::size_t expected_size = 0;
  std::size_t actual_size = 0;
  /// First few divergent records, for the report (capped at collection).
  std::vector<DepDiffEntry> samples;

  bool identical() const { return missing + extra + mismatched == 0; }
  /// Number of divergent keys — the quantity the FPR budget bounds.
  std::size_t divergent_keys() const { return missing + extra + mismatched; }
};

/// Full comparison: keys, instance counts, flags, carried loop/distances.
DepDiff diff_deps(const DepMap& expected, const DepMap& actual,
                  std::size_t max_samples = 8);

/// Human-readable rendering of a diff ("" when identical).
std::string format_diff(const DepDiff& diff, const std::string& expected_name,
                        const std::string& actual_name);

}  // namespace depprof
