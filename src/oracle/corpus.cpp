#include "oracle/corpus.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "queue/queues.hpp"
#include "trace/nest.hpp"

namespace depprof {
namespace {

// v2 added the front-end reduction axes and hard-requires their keys: a
// repro that omits dedup=/pack= would silently replay under whatever the
// current defaults are, which is exactly the ambiguity the corpus lint
// exists to reject.  v1 files predate the axes and replay with both off —
// the semantics they were recorded under.  v3 replaced the three fixed
// (loop, entry, iter) triples per event with interned nest-context ids
// (`nest` directives + ctx=/iters= keys); v1/v2 files still parse, their
// triples re-interned into an equivalent nest chain.
constexpr std::string_view kVersionLineV1 = "depfuzz-repro v1";
constexpr std::string_view kVersionLineV2 = "depfuzz-repro v2";
constexpr std::string_view kVersionLineV3 = "depfuzz-repro v3";
// v4 adds the deterministic-schedule section (`sched` + `sstep` lines);
// v1-v3 files parse with the section absent.
constexpr std::string_view kVersionLineV4 = "depfuzz-repro v4";
// v5 adds the overhead-budget sampling axes and hard-requires their keys
// (budget=/burst=/skip=) for the same reason v2 hard-required dedup=/pack=:
// a repro that omits them would silently replay under whatever the current
// sampling defaults are.  v1-v4 files parse with sampling off.
constexpr std::string_view kVersionLineV5 = "depfuzz-repro v5";
// v6 adds the first-class race mode and hard-requires its key (races=).
// A races=1 config that also samples (budget<1 or skip>0) or profiles a
// sequential target (mt=0) is a parse error, mirroring races_config_ok():
// the profiler factories refuse such configs, so a repro claiming one
// could never have been recorded and must not lint clean.  v1-v5 files
// parse with race mode off.
constexpr std::string_view kVersionLineV6 = "depfuzz-repro v6";
// v7 adds the packed paged exact store (`storage=packed`); the name is an
// unknown storage value below v7 so a repro recorded against the packed
// backend cannot silently replay as a hash-table one under an old grammar.
// A v7 file inherits every v5/v6 hard-required key (budget=/burst=/skip=/
// races=) regardless of whether the run sampled or raced.
constexpr std::string_view kVersionLineV7 = "depfuzz-repro v7";

/// File-scoped nest state threaded through event parsing.
struct NestParseState {
  /// v3: file-local nest id -> process forest id (id 0 preseeded to root).
  std::unordered_map<std::uint32_t, std::uint32_t> id_map{{0, 0}};
  /// v1/v2 compat: (parent forest id, loop, entry) -> forest id, so the
  /// same dynamic entry named by several events re-interns to one node.
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      legacy_chain;
};

const char* sig_hash_name(SigHash h) {
  return h == SigHash::kModulo ? "modulo" : "mix";
}

bool parse_storage(std::string_view v, int version, StorageKind& out) {
  if (v == "signature") out = StorageKind::kSignature;
  else if (v == "perfect") out = StorageKind::kPerfect;
  else if (v == "shadow") out = StorageKind::kShadow;
  else if (v == "hashtable") out = StorageKind::kHashTable;
  // v7-only backend; an unknown storage value below v7.
  else if (v == "packed" && version >= 7) out = StorageKind::kPacked;
  else return false;
  return true;
}

bool parse_queue(std::string_view v, QueueKind& out) {
  if (v == "lock-free-spsc") out = QueueKind::kLockFreeSpsc;
  else if (v == "lock-free-mpmc") out = QueueKind::kLockFreeMpmc;
  else if (v == "mutex") out = QueueKind::kMutex;
  else return false;
  return true;
}

bool parse_sig_hash(std::string_view v, SigHash& out) {
  if (v == "modulo") out = SigHash::kModulo;
  else if (v == "mix") out = SigHash::kMix;
  else return false;
  return true;
}

bool parse_u64(std::string_view v, std::uint64_t& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::string s(v);
  out = std::strtoull(s.c_str(), &end, 0);  // base 0: accepts 0x...
  return end != nullptr && *end == '\0';
}

bool parse_double(std::string_view v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  const std::string s(v);
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parse_bool(std::string_view v, bool& out) {
  if (v == "0") out = false;
  else if (v == "1") out = true;
  else return false;
  return true;
}

/// Splits one whitespace-separated token into key and value at '='.
bool split_kv(std::string_view token, std::string_view& key,
              std::string_view& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

bool set_error(std::string* error, std::size_t line_no,
               const std::string& what) {
  if (error != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "line %zu: ", line_no);
    *error = buf + what;
  }
  return false;
}

/// Rejects a key seen twice on one directive line: a duplicate would
/// silently last-write-win, which is exactly the ambiguity the corpus lint
/// exists to reject.
bool note_key(std::vector<std::string_view>& seen, std::string_view key,
              std::string& err) {
  if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
    err = "duplicate key '" + std::string(key) + "'";
    return false;
  }
  seen.push_back(key);
  return true;
}

/// Which hard-required config keys the line actually carried (checked
/// against the file's version by the caller).
struct ConfigKeysSeen {
  bool dedup = false;
  bool pack = false;
  bool budget = false;
  bool burst = false;
  bool skip = false;
  bool races = false;
};

bool parse_config_line(const std::vector<std::string_view>& toks, int version,
                       ProfilerConfig& cfg, ConfigKeysSeen& saw,
                       std::string& err) {
  std::vector<std::string_view> keys;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(toks[i], key, value)) {
      err = "bad config token '" + std::string(toks[i]) + "'";
      return false;
    }
    if (!note_key(keys, key, err)) return false;
    std::uint64_t u = 0;
    bool ok;
    if (key == "storage") ok = parse_storage(value, version, cfg.storage);
    else if (key == "slots") ok = parse_u64(value, u), cfg.slots = u;
    else if (key == "sighash") ok = parse_sig_hash(value, cfg.sig_hash);
    else if (key == "mt") ok = parse_bool(value, cfg.mt_targets);
    else if (key == "workers")
      ok = parse_u64(value, u), cfg.workers = static_cast<unsigned>(u);
    else if (key == "queue") ok = parse_queue(value, cfg.queue);
    else if (key == "wait") ok = parse_wait_kind(std::string(value).c_str(), cfg.wait);
    else if (key == "chunk") ok = parse_u64(value, u), cfg.chunk_size = u;
    else if (key == "qcap") ok = parse_u64(value, u), cfg.queue_capacity = u;
    else if (key == "modulo_routing") ok = parse_bool(value, cfg.modulo_routing);
    // Written by every repro since the batched kernel landed; optional on
    // read so older committed corpus files still parse.
    else if (key == "batch") ok = parse_bool(value, cfg.batched_detect);
    // v2-only front-end reduction axes; in a v1 file they are unknown keys
    // (strictness over permissiveness — see the version-line comment).
    else if (key == "dedup" && version >= 2)
      ok = parse_bool(value, cfg.dedup), saw.dedup = true;
    else if (key == "pack" && version >= 2)
      ok = parse_bool(value, cfg.pack), saw.pack = true;
    // v5-only overhead-budget sampling axes; unknown keys below v5.
    else if (key == "budget" && version >= 5)
      ok = parse_double(value, cfg.budget), saw.budget = true;
    else if (key == "burst" && version >= 5)
      ok = parse_u64(value, u), cfg.sampling_burst = static_cast<unsigned>(u),
      saw.burst = true;
    else if (key == "skip" && version >= 5)
      ok = parse_u64(value, u), cfg.sampling_skip = static_cast<unsigned>(u),
      saw.skip = true;
    // v6-only first-class race mode; unknown key below v6.
    else if (key == "races" && version >= 6)
      ok = parse_bool(value, cfg.races), saw.races = true;
    else ok = false;
    if (!ok) {
      err = "bad config token '" + std::string(toks[i]) + "'";
      return false;
    }
  }
  return true;
}

bool parse_lb_line(const std::vector<std::string_view>& toks,
                   LoadBalanceConfig& lb, std::string& err) {
  std::vector<std::string_view> keys;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(toks[i], key, value)) {
      err = "bad lb token '" + std::string(toks[i]) + "'";
      return false;
    }
    if (!note_key(keys, key, err)) return false;
    std::uint64_t u = 0;
    double d = 0.0;
    bool ok;
    if (key == "enabled") ok = parse_bool(value, lb.enabled);
    else if (key == "sample_shift")
      ok = parse_u64(value, u), lb.sample_shift = static_cast<unsigned>(u);
    else if (key == "interval")
      ok = parse_u64(value, u), lb.eval_interval_chunks = u;
    else if (key == "threshold")
      ok = parse_double(value, d), lb.imbalance_threshold = d;
    else if (key == "top_k")
      ok = parse_u64(value, u), lb.top_k = static_cast<unsigned>(u);
    else if (key == "max_rounds")
      ok = parse_u64(value, u), lb.max_rounds = static_cast<unsigned>(u);
    else ok = false;
    if (!ok) {
      err = "bad lb token '" + std::string(toks[i]) + "'";
      return false;
    }
  }
  return true;
}

/// v4 `sched seed=N algo=<name>` directive.
bool parse_sched_line(const std::vector<std::string_view>& toks,
                      ReproCase& repro, std::string& err) {
  std::vector<std::string_view> keys;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(toks[i], key, value)) {
      err = "bad sched token '" + std::string(toks[i]) + "'";
      return false;
    }
    if (!note_key(keys, key, err)) return false;
    bool ok;
    if (key == "seed") ok = parse_u64(value, repro.sched_seed);
    else if (key == "algo")
      ok = sched::parse_algo(std::string(value).c_str(), repro.sched_algo);
    else ok = false;
    if (!ok) {
      err = "bad sched token '" + std::string(toks[i]) + "'";
      return false;
    }
  }
  repro.sched = true;
  return true;
}

/// v3 `nest id=N parent=P loop=L` directive: interns one dynamic entry.
/// Parents must be declared (or 0) before their children; all three keys
/// are required — a defaulted parent/loop would silently re-shape the nest.
bool parse_nest_line(const std::vector<std::string_view>& toks,
                     NestParseState& nest, std::string& err) {
  std::uint64_t id = 0, parent = 0, loop = 0;
  bool saw_id = false, saw_parent = false, saw_loop = false;
  std::vector<std::string_view> keys;
  for (std::size_t i = 1; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(toks[i], key, value)) {
      err = "bad nest token '" + std::string(toks[i]) + "'";
      return false;
    }
    if (!note_key(keys, key, err)) return false;
    bool ok;
    if (key == "id") ok = parse_u64(value, id), saw_id = true;
    else if (key == "parent") ok = parse_u64(value, parent), saw_parent = true;
    else if (key == "loop") ok = parse_u64(value, loop), saw_loop = true;
    else ok = false;
    if (!ok) {
      err = "bad nest token '" + std::string(toks[i]) + "'";
      return false;
    }
  }
  if (!saw_parent || !saw_loop) {
    err = std::string("nest directive missing ") +
          (!saw_parent ? "parent=" : "loop=") + " key";
    return false;
  }
  if (!saw_id || id == 0 || nest.id_map.count(static_cast<std::uint32_t>(id))) {
    err = "bad nest token 'id'";
    return false;
  }
  const auto pit = nest.id_map.find(static_cast<std::uint32_t>(parent));
  if (pit == nest.id_map.end()) {
    err = "bad nest token 'parent'";
    return false;
  }
  nest.id_map[static_cast<std::uint32_t>(id)] =
      nest_forest().enter(pit->second, static_cast<std::uint32_t>(loop));
  return true;
}

/// Re-interns a v1/v2 `loops=` value (three innermost-first (loop, entry,
/// iter) triples, 0 = unused) as a nest chain and stamps ctx/iters.
bool apply_legacy_loops(AccessEvent& ev, std::string_view value,
                        NestParseState& nest) {
  unsigned l[3], e[3], it[3];
  const std::string s(value);
  if (std::sscanf(s.c_str(), "%u:%u:%u,%u:%u:%u,%u:%u:%u", &l[0], &e[0],
                  &it[0], &l[1], &e[1], &it[1], &l[2], &e[2], &it[2]) != 9)
    return false;
  std::uint32_t parent = NestForest::kRoot;
  std::size_t depth = 0;
  for (int i = 2; i >= 0; --i) {  // triples were stored innermost-first
    if (l[i] == 0) continue;
    const auto key = std::make_tuple(parent, l[i], e[i]);
    auto [pos, inserted] = nest.legacy_chain.try_emplace(key, 0);
    if (inserted) pos->second = nest_forest().enter(parent, l[i]);
    parent = pos->second;
    if (depth < kNestIters) ev.iters[depth] = it[i];
    ++depth;
  }
  ev.ctx = parent;
  return true;
}

bool parse_event_line(const std::vector<std::string_view>& toks,
                      AccessEvent& ev, int version, NestParseState& nest,
                      std::string& err) {
  if (toks.size() < 2) {
    err = "bad event token 'missing event kind'";
    return false;
  }
  if (toks[1] == "R") ev.kind = AccessKind::kRead;
  else if (toks[1] == "W") ev.kind = AccessKind::kWrite;
  else if (toks[1] == "F") ev.kind = AccessKind::kFree;
  else {
    err = "bad event token '" + std::string(toks[1]) + "'";
    return false;
  }
  std::vector<std::string_view> keys;
  for (std::size_t i = 2; i < toks.size(); ++i) {
    std::string_view key, value;
    if (!split_kv(toks[i], key, value)) {
      err = "bad event token '" + std::string(toks[i]) + "'";
      return false;
    }
    if (!note_key(keys, key, err)) return false;
    std::uint64_t u = 0;
    bool ok = true;
    if (key == "addr") ok = parse_u64(value, ev.addr);
    else if (key == "loc")
      ok = parse_u64(value, u), ev.loc = static_cast<std::uint32_t>(u);
    else if (key == "var")
      ok = parse_u64(value, u), ev.var = static_cast<std::uint32_t>(u);
    else if (key == "tid")
      ok = parse_u64(value, u), ev.tid = static_cast<std::uint16_t>(u);
    else if (key == "ts") ok = parse_u64(value, ev.ts);
    else if (key == "flags")
      ok = parse_u64(value, u), ev.flags = static_cast<std::uint8_t>(u);
    else if (key == "loops" && version <= 2)
      ok = apply_legacy_loops(ev, value, nest);
    else if (key == "ctx" && version >= 3) {
      ok = parse_u64(value, u);
      if (ok) {
        const auto it = nest.id_map.find(static_cast<std::uint32_t>(u));
        ok = it != nest.id_map.end();
        if (ok) ev.ctx = it->second;
      }
    } else if (key == "iters" && version >= 3) {
      const std::string s(value);
      std::size_t idx = 0;
      const char* p = s.c_str();
      char* end = nullptr;
      while (*p != '\0' && idx < kNestIters) {
        ev.iters[idx++] = static_cast<std::uint32_t>(std::strtoul(p, &end, 0));
        if (end == p) break;
        p = *end == ',' ? end + 1 : end;
      }
      ok = end != nullptr && *end == '\0';
    } else ok = false;
    if (!ok) {
      err = "bad event token '" + std::string(toks[i]) + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string format_repro(const ReproCase& repro) {
  std::ostringstream os;
  const ProfilerConfig& c = repro.cfg;
  // Lowest version whose grammar covers the case: the packed backend forces
  // v7, race mode forces v6, sampling axes force v5 (their keys/values are
  // unknown below those versions), a schedule section forces v4, and
  // everything else keeps writing v3 so packed-, race-, schedule- and
  // sampling-free corpus files stay byte-stable across profiler growth.
  const ProfilerConfig defaults;
  const bool sampled = c.budget != defaults.budget ||
                       c.sampling_burst != defaults.sampling_burst ||
                       c.sampling_skip != defaults.sampling_skip;
  const bool packed = c.storage == StorageKind::kPacked;
  os << (packed     ? kVersionLineV7
         : c.races  ? kVersionLineV6
         : sampled  ? kVersionLineV5
         : repro.sched ? kVersionLineV4
                       : kVersionLineV3)
     << '\n';
  if (!repro.note.empty()) os << "note " << repro.note << '\n';
  os << "config storage=" << storage_kind_name(c.storage)
     << " slots=" << c.slots << " sighash=" << sig_hash_name(c.sig_hash)
     << " mt=" << (c.mt_targets ? 1 : 0) << " workers=" << c.workers
     << " queue=" << queue_kind_name(c.queue)
     << " wait=" << wait_kind_name(c.wait) << " chunk=" << c.chunk_size
     << " qcap=" << c.queue_capacity
     << " modulo_routing=" << (c.modulo_routing ? 1 : 0)
     << " batch=" << (c.batched_detect ? 1 : 0)
     << " dedup=" << (c.dedup ? 1 : 0) << " pack=" << (c.pack ? 1 : 0);
  // A v6 file inherits v5's hard-required sampling keys (so race-mode
  // repros carry them even when unsampled), and a v7 file inherits both
  // sets — packed repros always spell out their sampling and race axes.
  if (sampled || c.races || packed)
    os << " budget=" << c.budget << " burst=" << c.sampling_burst
       << " skip=" << c.sampling_skip;
  if (c.races || packed) os << " races=" << (c.races ? 1 : 0);
  os << '\n';
  const LoadBalanceConfig& lb = c.load_balance;
  os << "lb enabled=" << (lb.enabled ? 1 : 0)
     << " sample_shift=" << lb.sample_shift
     << " interval=" << lb.eval_interval_chunks
     << " threshold=" << lb.imbalance_threshold << " top_k=" << lb.top_k
     << " max_rounds=" << lb.max_rounds << '\n';
  if (repro.sched) {
    os << "sched seed=" << repro.sched_seed
       << " algo=" << sched::algo_name(repro.sched_algo) << '\n';
    for (const sched::ScheduleStep& s : repro.schedule.steps)
      os << "sstep " << s.thread << ' ' << s.site << '\n';
  }
  // Nest table: every forest node reachable from an event context, written
  // ancestors-first (forest ids grow child-after-parent, so ascending
  // forest-id order is a valid declaration order) with dense file-local
  // ids.  Parsing re-interns them, so repros stay self-contained across
  // processes.
  NestForest& forest = nest_forest();
  std::map<std::uint32_t, std::uint32_t> local_id;  // forest id -> file id
  local_id[NestForest::kRoot] = 0;
  for (const AccessEvent& ev : repro.trace.events)
    for (std::uint32_t c = ev.ctx;
         c != NestForest::kRoot && !local_id.count(c); c = forest.parent(c))
      local_id[c] = 1;  // mark; numbered below in ascending order
  std::uint32_t next_id = 1;
  for (auto& [fid, lid] : local_id) {
    if (fid == NestForest::kRoot) continue;
    lid = next_id++;
    os << "nest id=" << lid << " parent=" << local_id[forest.parent(fid)]
       << " loop=" << forest.loop(fid) << '\n';
  }
  static_assert(kNestIters == 7, "update the iters= format below");
  for (const AccessEvent& ev : repro.trace.events) {
    const char kind = ev.is_free() ? 'F' : ev.is_write() ? 'W' : 'R';
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "ev %c addr=0x%llx loc=%u var=%u tid=%u ts=%llu flags=%u "
                  "ctx=%u iters=%u,%u,%u,%u,%u,%u,%u\n",
                  kind, static_cast<unsigned long long>(ev.addr), ev.loc,
                  ev.var, ev.tid, static_cast<unsigned long long>(ev.ts),
                  ev.flags, local_id[ev.ctx], ev.iters[0], ev.iters[1],
                  ev.iters[2], ev.iters[3], ev.iters[4], ev.iters[5],
                  ev.iters[6]);
    os << buf;
  }
  return os.str();
}

bool parse_repro(ReproCase& out, std::string_view text, std::string* error) {
  ReproCase repro;
  int version = 0;
  bool saw_config = false;
  bool saw_lb = false;
  ConfigKeysSeen saw;
  NestParseState nest;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  // Every directive except the provenance note needs the config line first:
  // a directive parsed before the config could be reinterpreted (or a
  // second config could retroactively invalidate it), so ordering is part
  // of the strictness contract rather than a formatting convention.
  auto after_config = [&](const char* directive) {
    return saw_config ||
           set_error(error, line_no,
                     std::string(directive) +
                         " directive before the config line");
  };
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (version == 0) {
      if (line == kVersionLineV1) {
        version = 1;
        // v1 predates the front-end reduction axes; such repros were
        // recorded (and minimized) against the raw event path.
        repro.cfg.dedup = false;
        repro.cfg.pack = false;
      } else if (line == kVersionLineV2) {
        version = 2;
      } else if (line == kVersionLineV3) {
        version = 3;
      } else if (line == kVersionLineV4) {
        version = 4;
      } else if (line == kVersionLineV5) {
        version = 5;
      } else if (line == kVersionLineV6) {
        version = 6;
      } else if (line == kVersionLineV7) {
        version = 7;
      } else {
        return set_error(error, line_no,
                         "expected version line '" +
                             std::string(kVersionLineV1) + "' .. '" +
                             std::string(kVersionLineV7) + "'");
      }
      // v1-v4 predate the sampling axes: replay with sampling off, the
      // semantics those repros were recorded under.
      if (version < 5) {
        repro.cfg.budget = 1.0;
        repro.cfg.sampling_skip = 0;
      }
      // v1-v5 predate the race mode: replay with it off.
      if (version < 6) repro.cfg.races = false;
      continue;
    }
    if (line[0] == '#') continue;
    const std::vector<std::string_view> toks = tokens_of(line);
    if (toks.empty()) continue;
    std::string err;
    if (toks[0] == "note") {
      const std::size_t at = line.find("note ");
      repro.note = at == std::string_view::npos
                       ? ""
                       : std::string(line.substr(at + 5));
    } else if (toks[0] == "config") {
      if (saw_config)
        return set_error(error, line_no, "duplicate config line");
      if (!parse_config_line(toks, version, repro.cfg, saw, err))
        return set_error(error, line_no, err);
      if (version >= 2 && (!saw.dedup || !saw.pack))
        return set_error(error, line_no,
                         "v2 config requires dedup= and pack= keys");
      if (version >= 5 && (!saw.budget || !saw.burst || !saw.skip))
        return set_error(error, line_no,
                         "v5 config requires budget=, burst= and skip= keys");
      if (version >= 6 && !saw.races)
        return set_error(error, line_no, "v6 config requires the races= key");
      // Semantic rule, not just grammar: the profiler factories refuse a
      // race-mode config that samples or targets a sequential program, so
      // a repro claiming one could never have been recorded.
      if (!races_config_ok(repro.cfg))
        return set_error(error, line_no,
                         "races=1 requires mt=1 and no sampling "
                         "(budget=1, skip=0)");
      saw_config = true;
    } else if (toks[0] == "lb") {
      if (!after_config("lb")) return false;
      if (saw_lb) return set_error(error, line_no, "duplicate lb line");
      if (!parse_lb_line(toks, repro.cfg.load_balance, err))
        return set_error(error, line_no, err);
      saw_lb = true;
    } else if (toks[0] == "sched") {
      if (version < 4)
        return set_error(error, line_no, "sched directive requires v4");
      if (!after_config("sched")) return false;
      if (repro.sched)
        return set_error(error, line_no, "duplicate sched line");
      if (!parse_sched_line(toks, repro, err))
        return set_error(error, line_no, err);
    } else if (toks[0] == "sstep") {
      if (version < 4)
        return set_error(error, line_no, "sstep directive requires v4");
      if (!repro.sched)
        return set_error(error, line_no, "sstep before sched directive");
      if (toks.size() != 3)
        return set_error(error, line_no, "sstep wants '<thread> <site>'");
      repro.schedule.steps.push_back(
          {std::string(toks[1]), std::string(toks[2])});
    } else if (toks[0] == "nest") {
      if (version < 3)
        return set_error(error, line_no, "nest directive requires v3");
      if (!after_config("nest")) return false;
      if (!parse_nest_line(toks, nest, err))
        return set_error(error, line_no, err);
    } else if (toks[0] == "ev") {
      if (!after_config("ev")) return false;
      AccessEvent ev;
      if (!parse_event_line(toks, ev, version, nest, err))
        return set_error(error, line_no, err);
      repro.trace.events.push_back(ev);
    } else {
      return set_error(error, line_no,
                       "unknown directive '" + std::string(toks[0]) + "'");
    }
  }
  if (version == 0) return set_error(error, 0, "empty file");
  if (!saw_config) return set_error(error, line_no, "missing config line");
  out = std::move(repro);
  return true;
}

bool write_repro(const ReproCase& repro, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return false;
  os << format_repro(repro);
  return static_cast<bool>(os);
}

bool read_repro(ReproCase& out, const std::string& path, std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse_repro(out, buf.str(), error);
}

}  // namespace depprof
