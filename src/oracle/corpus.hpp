#pragma once
// On-disk repro format for differential-harness findings.
//
// A repro is one minimized (trace, config) pair in a line-oriented text
// format so it diffs and reviews like source.  Every repro committed under
// tests/corpus/ is replayed by the corpus regression test on each CI run,
// turning yesterday's fuzz finding into tomorrow's regression gate.
//
//   depfuzz-repro v6
//   # free-form provenance comment
//   note <one-line description>
//   config storage=perfect slots=1048576 sighash=modulo mt=1 workers=4
//          ... queue=lock-free-spsc wait=park chunk=7 qcap=64 modulo_routing=0
//          ... batch=1 dedup=1 pack=1 budget=1 burst=8 skip=0 races=1
//   lb enabled=1 sample_shift=0 interval=200 threshold=1.25 top_k=10
//          ... max_rounds=64
//   sched seed=7 algo=pct
//   sstep w0 queue.pop
//   sstep main produce.stage
//   nest id=1 parent=0 loop=16777276
//   nest id=2 parent=1 loop=16777280
//   ev W addr=0x2000 loc=16777226 var=0 tid=0 ts=0 flags=0
//          ... ctx=2 iters=3,1,0,0,0,0,0
//
// (`config` and `lb` are single lines; they are wrapped here for the
// comment only.)  `ev` kinds are R / W / F.  Unknown directives or keys,
// duplicate keys within a line, duplicate config/lb/sched lines, and any
// directive other than `note` appearing before the config line are hard
// parse errors with the offending line number — the corpus lint relies on
// strictness, so a typo in a committed repro fails CI instead of silently
// replaying something else.
//
// Versioning: v6 (current) adds the first-class race mode (Sec. V-B) and
// hard-requires its key (races=) on the config line.  races=1 combined
// with sampling (budget<1 or skip>0) or a sequential target (mt=0) is a
// hard parse error mirroring races_config_ok(): the profiler factories
// refuse such configs, so a repro claiming one could never have been
// recorded and must not lint clean.  v1–v5 files replay with race mode
// off.  v5 added the overhead-budget sampling axes and hard-requires
// their keys (budget=/burst=/skip=) on the config line, so a repro can
// never silently replay under whichever sampling defaults happen to be
// current; v1–v4 files replay with sampling off, the semantics they were
// recorded under.  v4 added the deterministic-schedule section for
// interleaving-dependent findings: a `sched` directive (exploration seed
// and algorithm) plus zero or more `sstep <thread> <site>` lines — the
// recorded schedule the failing run took, replayed verbatim by the
// controller (src/sched/) when the repro is re-run.  The worker count and
// queue kind a schedule is only meaningful against were already on the
// config line (workers=, queue=).  v3 carries the loop-nest context as
// interned `nest` directives (file-local ids, parents declared before
// children) referenced by each event's ctx= key, plus the root-anchored
// iteration window iters=; parsing re-interns the table into the process
// nest forest.  v2 files, whose events carried three fixed innermost-first
// (loop, entry, iter) triples under loops=, still parse: the triples are
// re-interned into an equivalent nest chain keyed by (parent, loop,
// entry).  v2 also introduced — and every later version keeps — the
// hard-required front-end reduction keys dedup= and pack= on the config
// line.  v1 files (which predate those axes) still parse, with both axes
// off.  v1–v3 files parse with the schedule section absent (sched
// disabled).  format_repro writes the lowest version whose grammar covers
// the case (race mode forces v6, sampling v5, a schedule section v4,
// everything else v3), so committed files stay byte-stable across
// profiler growth.
//
// MT repros replay order-faithfully from a single thread: the parallel
// pipeline stages events by producing thread, not by event tid, so a
// one-thread replay of a mixed-tid stream delivers the recorded
// cross-thread order regardless of lock-region flags.

#include <string>
#include <string_view>

#include "core/profiler.hpp"
#include "sched/sched.hpp"
#include "trace/trace.hpp"

namespace depprof {

/// One parsed/parseable repro case.
struct ReproCase {
  std::string note;  ///< one-line provenance ("" allowed)
  ProfilerConfig cfg;
  Trace trace;
  /// Deterministic-schedule section (v4).  When sched is true the case is
  /// replayed under the schedule controller: `schedule` non-empty replays
  /// that exact interleaving, empty re-explores from (sched_seed,
  /// sched_algo).  v1–v3 files parse with sched == false.
  bool sched = false;
  std::uint64_t sched_seed = 1;
  sched::Algo sched_algo = sched::Algo::kRandomWalk;
  sched::ScheduleTrace schedule;
};

/// Renders `repro` in the lowest text-format version whose grammar covers
/// it (see the versioning note above; the sched section is present only
/// when the case carries one).
std::string format_repro(const ReproCase& repro);

/// Strict parser: returns false and sets `error` (when non-null, prefixed
/// with the offending line number) on any unknown directive, unknown or
/// duplicate key, malformed value, missing required key, duplicate
/// config/lb/sched line, directive before the config line, or missing
/// section.
bool parse_repro(ReproCase& out, std::string_view text,
                 std::string* error = nullptr);

/// File round-trip helpers.
bool write_repro(const ReproCase& repro, const std::string& path);
bool read_repro(ReproCase& out, const std::string& path,
                std::string* error = nullptr);

}  // namespace depprof
