#pragma once
// Exact reference profiler for differential testing.
//
// The profiler stack's whole value proposition is that the lossy, lock-free
// pipeline (signatures + chunked queues + migration) produces the *same*
// dependences an exact profiler would, modulo a quantified signature error
// (Sec. VI-A).  This oracle is the other side of that contract: a naive
// per-address last-writer/last-reader map over the raw event stream — no
// signatures, no chunking, no pipeline — implemented independently of
// DetectorCore so that a bug in Algorithm 1, the slot classification, the
// chunk path, or the merge shows up as a divergence instead of being
// replicated on both sides.
//
// Semantics replicated from the paper text (and deliberately not from the
// detector sources): INIT on the first write to a live address; WAW against
// the last write; WAR against the last read (the signature keeps one read
// slot per address, so only the most recent read is a WAR source); RAW
// against the last write; RAR ignored (Sec. III-B); kFree clears the
// address.  Loop-carried classification resolves the two recorded nest
// contexts to their innermost common loop entry — via an ancestor-chain
// scan implemented independently of the detector's lockstep LCA walk (same
// forest data, independently derived answer) — and buckets the carried
// distance per nest level exactly as DepMap does; MT mode adds thread ids
// to the dependence endpoints and flags timestamp reversals (Sec. V-B).

#include <cstdint>
#include <unordered_map>

#include "core/dep.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace depprof {

/// The exact profiler: an AccessSink accumulating the reference DepMap.
class ExactOracle final : public AccessSink {
 public:
  /// `mt_targets` mirrors ProfilerConfig::mt_targets: thread ids land in the
  /// dependence endpoints and timestamp reversals are flagged.
  explicit ExactOracle(bool mt_targets = false) : mt_(mt_targets) {}

  void on_access(const AccessEvent& ev) override;

  const DepMap& dependences() const { return deps_; }
  DepMap take_dependences() { return std::move(deps_); }

 private:
  /// Everything remembered about the most recent read or write of one
  /// address — the exact analogue of a signature slot, without the tag.
  struct LastAccess {
    std::uint32_t loc = 0;
    std::uint16_t tid = 0;
    std::uint8_t flags = 0;  ///< AccessFlags (kInLockRegion) of that access
    std::uint64_t ts = 0;
    std::uint32_t ctx = 0;                 ///< innermost dynamic loop entry
    std::uint32_t iters[kNestIters] = {};  ///< root-anchored iteration window
  };

  static LastAccess remember(const AccessEvent& ev);
  void emit(const AccessEvent& sink, const LastAccess& src, DepType type);

  bool mt_;
  std::unordered_map<std::uint64_t, LastAccess> last_read_;
  std::unordered_map<std::uint64_t, LastAccess> last_write_;
  DepMap deps_;
};

/// Convenience: the exact dependences of a whole trace.
DepMap oracle_dependences(const Trace& trace, bool mt_targets = false);

}  // namespace depprof
