#pragma once
// Differential-oracle harness: one trace, one profiler configuration, three
// executions, one verdict.
//
// For every case the harness runs the exact oracle, the serial profiler,
// and the parallel profiler over the same trace and checks the paper's
// correctness contract:
//
//   * exact stores (PerfectSignature, ShadowMemory, HashTableRecorder) and
//     signatures operating in the collision-free regime must produce maps
//     byte-identical to the oracle — keys, instance counts, qualifier
//     flags, carried loops and distances;
//   * finite signatures may diverge, but only within a budget derived from
//     the formula-2 false-positive model (see divergence_budget);
//   * serial and parallel must agree with each other under the same rules
//     (identical for exact stores; each within budget of the oracle for
//     finite signatures — their collision sets legitimately differ because
//     the per-worker signatures partition the address space);
//   * front-end redundancy elision (ProfilerConfig::dedup) is
//     map-preserving, not merely bounded: the exact oracle over the
//     expanded RLE stream must be byte-identical to the oracle over the
//     raw trace for *every* configuration, and the profilers are then fed
//     the deduplicated stream under the same exact/bounded rules as above.
//     Compact chunk encoding (ProfilerConfig::pack) is exercised implicitly
//     by the parallel run — the wire codec is lossless by construction and
//     any decode defect shows up as a divergence here.
//
// The harness is the one definition of "the pipeline is correct" shared by
// tools/depfuzz, the corpus regression tests, and the CI smoke job.

#include <cstdint>
#include <string>

#include "core/profiler.hpp"
#include "sched/sched.hpp"
#include "trace/trace.hpp"

namespace depprof {

/// What the configuration promises relative to the oracle.
enum class Expectation {
  kExact,    ///< byte-identical dependence maps
  kBounded,  ///< divergence within the formula-2 budget
};

const char* expectation_name(Expectation e);

/// Divergence budget for a finite-signature configuration: divergent keys
/// (missing + extra + mismatched) per comparison must not exceed
/// max_divergent_keys, which is kSlack + kMargin * P_fp * (oracle keys +
/// events).  P_fp is formula 2 evaluated at the trace's distinct address
/// count; for saturated signatures (P_fp -> 1) the bound is honest but
/// weak — the paper itself only claims accuracy while the signature is
/// sized for the working set.
struct DivergenceBudget {
  double fpr = 0.0;
  std::size_t max_divergent_keys = 0;
};

/// Classifies what `cfg` promises on `trace`.  Exact stores are always
/// kExact.  A signature is kExact when collisions are structurally
/// impossible: modulo indexing with the trace's word-unit span no larger
/// than the slot count (any two in-span units then map to distinct slots).
Expectation classify_expectation(const ProfilerConfig& cfg, const Trace& trace);

DivergenceBudget divergence_budget(const ProfilerConfig& cfg,
                                   const Trace& trace,
                                   std::size_t oracle_keys);

/// Deterministic-schedule directive for a case (ISSUE 7): run the parallel
/// profiler under the schedule controller, either exploring from `seed`
/// with `algo` or replaying a recorded schedule.
struct SchedSpec {
  std::uint64_t seed = 1;
  sched::Algo algo = sched::Algo::kRandomWalk;
  /// Non-empty: replay this schedule instead of exploring.
  sched::ScheduleTrace replay;
};

/// Verdict for one (trace, config) case.
struct CaseOutcome {
  bool ok = true;
  Expectation expectation = Expectation::kExact;
  std::string detail;  ///< failure report ("" when ok)
  /// Hand-off invariant violations observed during the case (always
  /// checked; any violation fails the case).
  std::uint64_t violations = 0;
  /// Schedule the parallel run took (recorded under a SchedSpec session;
  /// empty otherwise) — what a failing case commits as its repro.
  sched::ScheduleTrace schedule;
  std::uint64_t sched_divergences = 0;
};

/// Trace-replay twin of the runtime's overhead-budget sampling gate
/// (instrument/runtime.cpp): applies the deterministic B-on / K-off burst
/// schedule at outermost-loop-iteration granularity and returns the stream
/// a sampled run would have delivered.  A sampling unit is identified by
/// (root-ancestor nest node, outermost iteration counter); events outside
/// any loop are always kept; after any dropped event a kBurstMark precedes
/// the next kept event, whatever it is — the gap-close rule that makes the
/// sampled map a subset of the unsampled one.  With skip == 0 the output is
/// the input, marker-free.
Trace sample_stream(const Trace& trace, unsigned burst, unsigned skip);

/// Verdict of the sampled-vs-unsampled subset contract.
struct SubsetReport {
  bool ok = true;
  std::string detail;  ///< first few violations ("" when ok)
  /// Non-INIT dependence edges in each map.  INIT keys are excluded from
  /// the contract: INIT marks the burst-local first observed write, so a
  /// post-gap write legitimately re-INITs an address the unsampled run saw
  /// written earlier — a sampling artifact, not a dependence edge.
  std::size_t full_edges = 0;
  std::size_t sampled_edges = 0;
  /// Edge recall: sampled_edges / full_edges (1.0 for an empty full map).
  double recall = 1.0;
};

/// Checks that `sampled` is a subset of `full` per non-INIT dependence
/// edge: every sampled key exists in the full map with no larger instance
/// count, a subset of its qualifier flags, and component-wise no larger
/// per-level distance buckets.  This is the correctness claim of sampling —
/// gaps may only *lose* evidence, never invent or misattribute it.
SubsetReport check_sampled_subset(const DepMap& full, const DepMap& sampled);

/// Runs oracle + serial + parallel over `trace` under `cfg` and checks the
/// contract above.  The parallel run uses cfg as-is (workers, queue, wait,
/// chunking, load balancer); the serial run shares the storage half of cfg.
/// With a SchedSpec the parallel run executes under the deterministic
/// schedule controller; the ownership/epoch invariant is checked either
/// way.
///
/// With cfg.sampling_skip > 0 (and sequential targets) the case runs in
/// sampled mode: the full-trace oracle is computed first, the trace is
/// passed through sample_stream, the sampled-trace oracle must satisfy the
/// subset contract against the full one, and both profilers then run over
/// the sampled stream under the usual exact/bounded rules relative to the
/// sampled oracle.
CaseOutcome run_case(const Trace& trace, const ProfilerConfig& cfg,
                     const SchedSpec* sched = nullptr);

}  // namespace depprof
