#include "oracle/diff.hpp"

#include <cstdio>

#include "common/location.hpp"

namespace depprof {
namespace {

bool same_info(const DepInfo& a, const DepInfo& b) {
  if (a.count != b.count || a.flags != b.flags ||
      a.reversed != b.reversed || a.locked != b.locked)
    return false;
  for (std::size_t d = 0; d < kNestLevels; ++d) {
    if (a.levels[d].loop != b.levels[d].loop ||
        a.levels[d].d0 != b.levels[d].d0 || a.levels[d].d1 != b.levels[d].d1 ||
        a.levels[d].d2p != b.levels[d].d2p)
      return false;
  }
  return true;
}

void append_key(std::string& out, const DepKey& k) {
  const SourceLocation sink = SourceLocation::from_packed(k.sink_loc);
  const SourceLocation src = SourceLocation::from_packed(k.src_loc);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s sink=%u:%u(t%u) src=%u:%u(t%u) var=%u",
                dep_type_name(k.type), sink.file_id(), sink.line(), k.sink_tid,
                src.file_id(), src.line(), k.src_tid, k.var);
  out += buf;
}

void append_info(std::string& out, const DepInfo& i) {
  char buf[120];
  std::snprintf(buf, sizeof(buf), "count=%llu flags=0x%x rev=%llu lock=%llu",
                static_cast<unsigned long long>(i.count), i.flags,
                static_cast<unsigned long long>(i.reversed),
                static_cast<unsigned long long>(i.locked));
  out += buf;
  for (std::size_t d = 0; d < kNestLevels; ++d) {
    const DepLevel& l = i.levels[d];
    if (l.loop == 0 && l.d0 == 0 && l.d1 == 0 && l.d2p == 0) continue;
    std::snprintf(buf, sizeof(buf), " L%zu[loop=%u d0=%llu d1=%llu d2p=%llu]",
                  d + 1, l.loop, static_cast<unsigned long long>(l.d0),
                  static_cast<unsigned long long>(l.d1),
                  static_cast<unsigned long long>(l.d2p));
    out += buf;
  }
}

}  // namespace

DepDiff diff_deps(const DepMap& expected, const DepMap& actual,
                  std::size_t max_samples) {
  DepDiff d;
  d.expected_size = expected.size();
  d.actual_size = actual.size();
  for (const auto& [key, info] : expected) {
    const DepInfo* other = actual.find(key);
    if (other == nullptr) {
      ++d.missing;
      if (d.samples.size() < max_samples)
        d.samples.push_back({DepDiffEntry::Kind::kMissing, key, info, {}});
    } else if (!same_info(info, *other)) {
      ++d.mismatched;
      if (d.samples.size() < max_samples)
        d.samples.push_back({DepDiffEntry::Kind::kMismatch, key, info, *other});
    }
  }
  for (const auto& [key, info] : actual) {
    if (expected.find(key) == nullptr) {
      ++d.extra;
      if (d.samples.size() < max_samples)
        d.samples.push_back({DepDiffEntry::Kind::kExtra, key, {}, info});
    }
  }
  return d;
}

std::string format_diff(const DepDiff& diff, const std::string& expected_name,
                        const std::string& actual_name) {
  if (diff.identical()) return {};
  std::string out;
  char head[200];
  std::snprintf(head, sizeof(head),
                "%s (%zu deps) vs %s (%zu deps): %zu missing, %zu extra, "
                "%zu mismatched\n",
                expected_name.c_str(), diff.expected_size, actual_name.c_str(),
                diff.actual_size, diff.missing, diff.extra, diff.mismatched);
  out += head;
  for (const DepDiffEntry& e : diff.samples) {
    switch (e.kind) {
      case DepDiffEntry::Kind::kMissing:
        out += "  missing  ";
        append_key(out, e.key);
        out += "  ";
        append_info(out, e.expected);
        break;
      case DepDiffEntry::Kind::kExtra:
        out += "  extra    ";
        append_key(out, e.key);
        out += "  ";
        append_info(out, e.actual);
        break;
      case DepDiffEntry::Kind::kMismatch:
        out += "  mismatch ";
        append_key(out, e.key);
        out += "\n    expected ";
        append_info(out, e.expected);
        out += "\n    actual   ";
        append_info(out, e.actual);
        break;
    }
    out += '\n';
  }
  return out;
}

}  // namespace depprof
