#pragma once
// Delta-debugging minimizer for failing differential cases.
//
// When the harness flags a (trace, config) mismatch, the raw repro is
// typically tens of thousands of events under an eight-worker pipeline —
// useless for debugging.  The shrinker reduces it on two axes while the
// failure keeps reproducing:
//
//   * trace minimization: classic ddmin over the event list — try dropping
//     ever-smaller chunks, restart the granularity ladder after every
//     successful reduction, stop when no single event can be removed (or
//     the evaluation budget runs out); a final rung tries flattening the
//     loop nest (every event rewritten onto a depth-1 entry of its
//     innermost loop) so repros that do not need the nest say so;
//   * config simplification: a fixed ladder of "simpler" settings (fewer
//     workers, chunk size 1, mutex queue, spin wait, load balancer off),
//     each kept only if the shrunk trace still fails under it.
//
// The predicate re-runs the real profilers, so every evaluation costs a
// pipeline spin-up; the budget caps worst-case shrink time.  Parallel-only
// failures can be schedule-dependent — the caller may wrap its predicate
// with retries if it needs to shrink a flaky repro.

#include <cstddef>
#include <functional>

#include "core/profiler.hpp"
#include "trace/trace.hpp"

namespace depprof {

/// Returns true when (trace, cfg) still reproduces the failure.
using FailurePredicate =
    std::function<bool(const Trace&, const ProfilerConfig&)>;

struct ShrinkStats {
  std::size_t evaluations = 0;
  std::size_t initial_events = 0;
  std::size_t final_events = 0;
};

/// ddmin over the event list.  Returns the smallest still-failing trace
/// found within `max_evals` predicate evaluations.
Trace shrink_trace(Trace failing, const ProfilerConfig& cfg,
                   const FailurePredicate& still_fails, std::size_t max_evals,
                   ShrinkStats* stats = nullptr);

/// Config-simplification ladder.  Returns the simplest configuration that
/// still fails on `trace`.
ProfilerConfig shrink_config(const Trace& trace, ProfilerConfig cfg,
                             const FailurePredicate& still_fails,
                             ShrinkStats* stats = nullptr);

}  // namespace depprof
