#pragma once
// Delta-debugging minimizer for failing differential cases.
//
// When the harness flags a (trace, config) mismatch, the raw repro is
// typically tens of thousands of events under an eight-worker pipeline —
// useless for debugging.  The shrinker reduces it on two axes while the
// failure keeps reproducing:
//
//   * trace minimization: classic ddmin over the event list — try dropping
//     ever-smaller chunks, restart the granularity ladder after every
//     successful reduction, stop when no single event can be removed (or
//     the evaluation budget runs out); a final rung tries flattening the
//     loop nest (every event rewritten onto a depth-1 entry of its
//     innermost loop) so repros that do not need the nest say so;
//   * config simplification: a fixed ladder of "simpler" settings (fewer
//     workers, chunk size 1, mutex queue, spin wait, load balancer off),
//     each kept only if the shrunk trace still fails under it;
//   * schedule minimization (v4 repros): first try dropping the recorded
//     schedule entirely — a failure that reproduces free-running did not
//     need the interleaving and the repro should say so — then truncate
//     the schedule from the back (replay past the last recorded step
//     continues unscheduled, so every prefix is a valid schedule).
//
// The predicate re-runs the real profilers, so every evaluation costs a
// pipeline spin-up; the budget caps worst-case shrink time.  Parallel-only
// failures can be schedule-dependent — that is exactly what the schedule
// section of a v4 repro pins down; for legacy flaky repros the caller may
// still wrap its predicate with retries.

#include <cstddef>
#include <functional>

#include "core/profiler.hpp"
#include "sched/sched.hpp"
#include "trace/trace.hpp"

namespace depprof {

/// Returns true when (trace, cfg) still reproduces the failure.
using FailurePredicate =
    std::function<bool(const Trace&, const ProfilerConfig&)>;

struct ShrinkStats {
  std::size_t evaluations = 0;
  std::size_t initial_events = 0;
  std::size_t final_events = 0;
};

/// ddmin over the event list.  Returns the smallest still-failing trace
/// found within `max_evals` predicate evaluations.
Trace shrink_trace(Trace failing, const ProfilerConfig& cfg,
                   const FailurePredicate& still_fails, std::size_t max_evals,
                   ShrinkStats* stats = nullptr);

/// Config-simplification ladder.  Returns the simplest configuration that
/// still fails on `trace`.
ProfilerConfig shrink_config(const Trace& trace, ProfilerConfig cfg,
                             const FailurePredicate& still_fails,
                             ShrinkStats* stats = nullptr);

/// Extended predicate for interleaving-dependent cases: `schedule` is the
/// recorded interleaving to replay, nullptr means run free (no controller).
using SchedFailurePredicate = std::function<bool(
    const Trace&, const ProfilerConfig&, const sched::ScheduleTrace*)>;

/// Schedule-minimization rung for v4 repros.  Tries dropping the schedule
/// outright, then binary-truncates it from the back while the failure keeps
/// reproducing under replay.  Returns the smallest still-failing schedule
/// (empty with *dropped == true when the failure is not
/// schedule-dependent).
sched::ScheduleTrace shrink_schedule(const Trace& trace,
                                     const ProfilerConfig& cfg,
                                     sched::ScheduleTrace schedule,
                                     const SchedFailurePredicate& still_fails,
                                     ShrinkStats* stats = nullptr,
                                     bool* dropped = nullptr);

}  // namespace depprof
