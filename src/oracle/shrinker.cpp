#include "oracle/shrinker.hpp"

#include <algorithm>
#include <unordered_map>

#include "trace/nest.hpp"

namespace depprof {
namespace {

/// `events` minus the half-open index range [begin, end).
std::vector<AccessEvent> without_range(const std::vector<AccessEvent>& events,
                                       std::size_t begin, std::size_t end) {
  std::vector<AccessEvent> kept;
  kept.reserve(events.size() - (end - begin));
  kept.insert(kept.end(), events.begin(),
              events.begin() + static_cast<std::ptrdiff_t>(begin));
  kept.insert(kept.end(), events.begin() + static_cast<std::ptrdiff_t>(end),
              events.end());
  return kept;
}

/// Rewrites every event onto a depth-1 nest: each dynamic context is
/// replaced by a fresh entry of its innermost loop directly under the root,
/// and the innermost iteration moves to window slot 0.  Distinct dynamic
/// entries stay distinct, so same-entry/different-entry relationships (and
/// hence carried-vs-independent classification at the innermost level)
/// survive; only the enclosing levels are discarded.
Trace flatten_nest(const Trace& t) {
  NestForest& forest = nest_forest();
  std::unordered_map<std::uint32_t, std::uint32_t> flat;  // ctx -> flat ctx
  Trace out;
  out.events.reserve(t.events.size());
  for (AccessEvent ev : t.events) {
    if (ev.ctx != NestForest::kRoot) {
      const std::size_t depth = forest.depth(ev.ctx);
      auto [it, fresh] = flat.try_emplace(ev.ctx, NestForest::kRoot);
      if (fresh)
        it->second = forest.enter(NestForest::kRoot, forest.loop(ev.ctx));
      const std::uint32_t inner =
          depth >= 1 && depth <= kNestIters ? ev.iters[depth - 1] : 0;
      ev.ctx = it->second;
      ev.iters[0] = inner;
      for (std::size_t i = 1; i < kNestIters; ++i) ev.iters[i] = 0;
    }
    out.events.push_back(ev);
  }
  return out;
}

/// True when any event sits deeper than one loop level.
bool has_deep_nest(const Trace& t) {
  const NestForest& forest = nest_forest();
  for (const AccessEvent& ev : t.events)
    if (ev.ctx != NestForest::kRoot && forest.depth(ev.ctx) > 1) return true;
  return false;
}

}  // namespace

Trace shrink_trace(Trace failing, const ProfilerConfig& cfg,
                   const FailurePredicate& still_fails, std::size_t max_evals,
                   ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st.initial_events = failing.events.size();

  std::size_t granularity = 2;
  while (failing.events.size() >= 2 && st.evaluations < max_evals) {
    const std::size_t chunk =
        std::max<std::size_t>(1, (failing.events.size() + granularity - 1) /
                                     granularity);
    bool reduced = false;
    for (std::size_t begin = 0;
         begin < failing.events.size() && st.evaluations < max_evals;) {
      const std::size_t end =
          std::min(begin + chunk, failing.events.size());
      Trace candidate;
      candidate.events = without_range(failing.events, begin, end);
      ++st.evaluations;
      if (!candidate.events.empty() && still_fails(candidate, cfg)) {
        failing.events = std::move(candidate.events);
        // Keep the granularity relative to the smaller trace and retry from
        // the front: earlier chunks may have become removable.
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        begin = 0;
      } else {
        begin = end;
      }
    }
    if (!reduced) {
      if (chunk <= 1) break;  // single-event granularity exhausted
      granularity = std::min(granularity * 2, failing.events.size());
    }
  }
  // Final rung: flatten the loop nest.  A repro that still fails with every
  // event rewritten onto a depth-1 entry of its innermost loop did not need
  // the enclosing levels, and the flat form is far easier to read.
  if (st.evaluations < max_evals && has_deep_nest(failing)) {
    Trace candidate = flatten_nest(failing);
    ++st.evaluations;
    if (still_fails(candidate, cfg)) failing = std::move(candidate);
  }
  st.final_events = failing.events.size();
  return failing;
}

ProfilerConfig shrink_config(const Trace& trace, ProfilerConfig cfg,
                             const FailurePredicate& still_fails,
                             ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;

  auto try_apply = [&](auto mutate) {
    ProfilerConfig candidate = cfg;
    mutate(candidate);
    ++st.evaluations;
    if (still_fails(trace, candidate)) cfg = candidate;
  };

  // Most-simplifying first: each step is kept only if the failure survives.
  if (cfg.load_balance.enabled)
    try_apply([](ProfilerConfig& c) { c.load_balance.enabled = false; });
  if (cfg.workers > 1) {
    try_apply([](ProfilerConfig& c) { c.workers = 1; });
    if (cfg.workers > 2) try_apply([](ProfilerConfig& c) { c.workers = 2; });
  }
  if (cfg.chunk_size != 1)
    try_apply([](ProfilerConfig& c) { c.chunk_size = 1; });
  if (cfg.queue != QueueKind::kMutex)
    try_apply([](ProfilerConfig& c) { c.queue = QueueKind::kMutex; });
  if (cfg.wait != WaitKind::kSpin)
    try_apply([](ProfilerConfig& c) { c.wait = WaitKind::kSpin; });
  if (cfg.modulo_routing)
    try_apply([](ProfilerConfig& c) { c.modulo_routing = false; });
  // The per-event kernel is the simpler diagnosis target (no prefetching,
  // no scatter), so prefer it when the failure reproduces without batching.
  if (cfg.batched_detect)
    try_apply([](ProfilerConfig& c) { c.batched_detect = false; });
  // Strip the front-end reduction layers independently: a failure that
  // survives with dedup (or pack) off did not need that layer, and the
  // repro should say so.
  if (cfg.dedup) try_apply([](ProfilerConfig& c) { c.dedup = false; });
  if (cfg.pack) try_apply([](ProfilerConfig& c) { c.pack = false; });
  // Backend-simplification rung: the packed paged store and the plain
  // perfect hash map implement the same exact-store contract, so a failure
  // that survives on kPerfect was not about the paged layout — and the
  // perfect map is the simpler diagnosis target (no page table, no token
  // intern, no sidecar).
  if (cfg.storage == StorageKind::kPacked)
    try_apply([](ProfilerConfig& c) { c.storage = StorageKind::kPerfect; });
  // Sampling-off rung: a failure that survives with the burst gate removed
  // did not need sampling, and the repro then judges the profilers against
  // the plain full-trace oracle — the simpler diagnosis target.
  if (cfg.sampling_skip != 0 || cfg.budget < 1.0)
    try_apply([](ProfilerConfig& c) {
      c.sampling_skip = 0;
      c.budget = 1.0;
    });
  return cfg;
}

sched::ScheduleTrace shrink_schedule(const Trace& trace,
                                     const ProfilerConfig& cfg,
                                     sched::ScheduleTrace schedule,
                                     const SchedFailurePredicate& still_fails,
                                     ShrinkStats* stats, bool* dropped) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st.initial_events = schedule.steps.size();
  if (dropped != nullptr) *dropped = false;

  // Rung 1: no controller at all.  A failure that reproduces free-running
  // is not schedule-dependent; the repro then needs no sched section.
  ++st.evaluations;
  if (still_fails(trace, cfg, nullptr)) {
    if (dropped != nullptr) *dropped = true;
    st.final_events = 0;
    return sched::ScheduleTrace{};
  }

  // Rung 2: truncate from the back with geometric back-off.  Replay runs
  // free after the last recorded step, so every prefix is a valid schedule
  // — the shortest failing prefix localizes the decisive hand-off.
  std::size_t cut = schedule.steps.size() / 2;
  while (cut >= 1) {
    sched::ScheduleTrace candidate;
    candidate.steps.assign(schedule.steps.begin(),
                           schedule.steps.end() -
                               static_cast<std::ptrdiff_t>(cut));
    ++st.evaluations;
    if (still_fails(trace, cfg, &candidate)) {
      schedule.steps = std::move(candidate.steps);
      cut = std::min(cut, schedule.steps.size() / 2);
    } else {
      cut /= 2;
    }
  }
  st.final_events = schedule.steps.size();
  return schedule;
}

}  // namespace depprof
