#pragma once
// Plain-text table and CSV writers used by the benchmark harness to print
// the paper's tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace depprof {

/// Column-aligned text table with an optional title, printed to any ostream.
/// Also exports CSV so figure series can be re-plotted.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row.  Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience for numeric cells.
  static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;
  std::string csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace depprof
