#pragma once
// Deterministic PRNG for workloads and synthetic trace generators.
// xoshiro256** seeded via SplitMix64; reproducible across runs and platforms.

#include <cstdint>

#include "common/hash.hpp"

namespace depprof {

/// xoshiro256** generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9E3779B97F4A7C15ull;
      s = mix64(x);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  n must be > 0.
  constexpr std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace depprof
