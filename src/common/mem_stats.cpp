#include "common/mem_stats.hpp"

#include <sys/resource.h>

namespace depprof {

MemStats& MemStats::instance() {
  static MemStats stats;
  return stats;
}

std::int64_t MemStats::total() const {
  std::int64_t sum = 0;
  for (const auto& b : bytes_) sum += b.load(std::memory_order_relaxed);
  return sum;
}

void MemStats::reset() {
  for (auto& b : bytes_) b.store(0, std::memory_order_relaxed);
  for (auto& p : component_peak_) p.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

void MemStats::raise(std::atomic<std::int64_t>& mark, std::int64_t value) {
  std::int64_t cur = mark.load(std::memory_order_relaxed);
  while (value > cur &&
         !mark.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void MemStats::update_peak() {
  raise(peak_, total());
}

std::int64_t MemStats::process_max_rss() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;  // Linux: KiB
}

std::string MemStats::component_name(MemComponent c) {
  switch (c) {
    case MemComponent::kSignatures: return "signatures";
    case MemComponent::kQueues: return "queues+chunks";
    case MemComponent::kDepMaps: return "dep-maps";
    case MemComponent::kAccessStats: return "access-stats";
    case MemComponent::kOther: return "other";
    case MemComponent::kStore: return "store-pages";
    case MemComponent::kCount: break;
  }
  return "?";
}

}  // namespace depprof
