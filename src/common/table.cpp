#include "common/table.hpp"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace depprof {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  if (!title_.empty()) os << title_ << '\n';
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace depprof
