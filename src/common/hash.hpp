#pragma once
// Address hash functions.
//
// The signature (Sec. III-B) uses a single hash function mapping memory
// addresses to slot indices — one function rather than the k functions of a
// Bloom filter, so that elements can be *removed* for variable-lifetime
// analysis.  These mixers are also used for worker assignment (Sec. IV-A).

#include <cstdint>

namespace depprof {

/// SplitMix64 finalizer: a strong 64-bit mixer (Stafford variant 13).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58'476D'1CE4'E5B9ull;
  x ^= x >> 27;
  x *= 0x94D0'49BB'1331'11EBull;
  x ^= x >> 31;
  return x;
}

/// Canonical address unit: profiling is word-granular (4 bytes), matching
/// the paper's per-IR-load/store instrumentation.  The profilers
/// canonicalize byte addresses once on entry; every store, router, and tag
/// downstream operates on units.
constexpr std::uint64_t word_addr(std::uint64_t byte_addr) {
  return byte_addr >> 2;
}

/// Hash of a canonical address unit for signature indexing.
constexpr std::uint64_t hash_address(std::uint64_t unit) { return mix64(unit); }

/// The paper distributes addresses to workers with a plain modulo
/// (formula 1: worker = addr % W).  Exposed verbatim for the load-balance
/// ablation; the pipeline defaults to the mixed variant below.
constexpr std::uint32_t modulo_worker(std::uint64_t unit, std::uint32_t workers) {
  return static_cast<std::uint32_t>(unit % workers);
}

/// Mixed worker assignment: modulo after mixing, robust to strided layouts.
constexpr std::uint32_t hashed_worker(std::uint64_t unit, std::uint32_t workers) {
  return static_cast<std::uint32_t>(mix64(unit) % workers);
}

}  // namespace depprof
