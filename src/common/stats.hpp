#pragma once
// Streaming statistics accumulators and histograms used by the evaluation
// harness (slowdown averages, imbalance metrics, FPR/FNR aggregation).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace depprof {

/// Welford streaming accumulator: count / min / max / mean / stddev.
class StatAccumulator {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }

  /// Coefficient of variation — the load-imbalance metric of Sec. IV-A.
  double cv() const { return mean_ != 0.0 ? stddev() / mean_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  void add(double x) {
    const double t = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace depprof
