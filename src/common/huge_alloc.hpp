#pragma once
// Transparent-huge-page allocator for large flat arrays.
//
// A profiler-sized signature (hundreds of MB of slots) accessed in hashed
// order misses the dTLB on nearly every probe when backed by 4 KiB pages,
// and the resulting page walks serialize on the handful of hardware walkers
// — a stall that software prefetching cannot hide (prefetches are dropped
// on a TLB miss).  Backing the slot array with 2 MiB pages keeps the whole
// array TLB-resident, which is what makes the batched kernel's slot
// prefetches effective (see DESIGN.md, "Batched detect kernel").
//
// Allocations below kHugeThreshold, or on platforms without mmap/madvise,
// fall back to operator new — behaviour is identical either way.  An mmap
// that *fails* at runtime (strict vm.overcommit, locked-down CI container,
// exhausted map count) also degrades to operator new instead of aborting
// the profile: the fall-back is counted (fallback_count feeds the
// hugepage_fallbacks obs counter) and the pointer is remembered so free()
// releases it through the matching deallocator.
//
// Zeroing contract: huge-eligible allocations (bytes >= kHugeThreshold) are
// returned zero-filled on every path — anonymous mmap pages are zeroed by
// the kernel, and the fall-back memsets to match.  Sub-threshold operator
// new allocations are NOT zeroed; callers that need zeroed directories use
// alloc_zeroed().

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <unordered_set>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace depprof {

namespace huge {

constexpr std::size_t kHugeThreshold = 2u << 20;  // one huge page

namespace detail {

inline std::atomic<std::uint64_t>& fallback_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

inline std::atomic<bool>& force_fallback_flag() {
  static std::atomic<bool> force{false};
  return force;
}

/// Huge-eligible blocks that came from operator new instead of mmap, so
/// free() can pick the matching deallocator.  Mutex-guarded: entries only
/// exist after an mmap failure (or under the test hook), never on the
/// steady-state path.
struct FallbackRegistry {
  std::mutex mu;
  std::unordered_set<void*> blocks;

  static FallbackRegistry& instance() {
    static FallbackRegistry reg;
    return reg;
  }

  void insert(void* p) {
    std::lock_guard lock(mu);
    blocks.insert(p);
  }
  bool erase(void* p) {
    std::lock_guard lock(mu);
    return blocks.erase(p) != 0;
  }
};

inline void* alloc_fallback(std::size_t bytes) {
  void* p = ::operator new(bytes);
  std::memset(p, 0, bytes);  // match the kernel's zero-fill of mmap pages
  FallbackRegistry::instance().insert(p);
  fallback_counter().fetch_add(1, std::memory_order_relaxed);
  return p;
}

}  // namespace detail

/// Huge-eligible allocations that degraded to operator new since process
/// start (monotone; drivers publish the per-run delta as the
/// hugepage_fallbacks obs counter).
inline std::uint64_t fallback_count() {
  return detail::fallback_counter().load(std::memory_order_relaxed);
}

/// Test hook: pretend mmap/MADV_HUGEPAGE is unavailable so the fall-back
/// path can be exercised deterministically on hosts where mmap works.
inline void set_force_fallback(bool on) {
  detail::force_fallback_flag().store(on, std::memory_order_relaxed);
}

#if defined(__linux__)
inline void* alloc(std::size_t bytes) {
  if (bytes < kHugeThreshold) return ::operator new(bytes);
  if (detail::force_fallback_flag().load(std::memory_order_relaxed))
    return detail::alloc_fallback(bytes);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return detail::alloc_fallback(bytes);
#if defined(MADV_HUGEPAGE)
  (void)::madvise(p, bytes, MADV_HUGEPAGE);  // advisory; 4K pages still work
#endif
  return p;
}

inline void free(void* p, std::size_t bytes) {
  if (bytes < kHugeThreshold) {
    ::operator delete(p);
    return;
  }
  if (detail::FallbackRegistry::instance().erase(p)) {
    ::operator delete(p);
    return;
  }
  ::munmap(p, bytes);
}
#else
inline void* alloc(std::size_t bytes) {
  if (bytes < kHugeThreshold) return ::operator new(bytes);
  return detail::alloc_fallback(bytes);
}
inline void free(void* p, std::size_t bytes) {
  if (bytes >= kHugeThreshold)
    (void)detail::FallbackRegistry::instance().erase(p);
  ::operator delete(p);
}
#endif

/// alloc() with a zero-fill guarantee at every size — page-table directories
/// (PackedShadowStore) read pointer slots before ever writing them.
inline void* alloc_zeroed(std::size_t bytes) {
  void* p = alloc(bytes);
  if (bytes < kHugeThreshold) std::memset(p, 0, bytes);
  return p;
}

}  // namespace huge

/// std::allocator drop-in backing large arrays with transparent huge pages.
template <typename T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  HugePageAllocator(const HugePageAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(huge::alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { huge::free(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const HugePageAllocator<U>&) const { return true; }
};

}  // namespace depprof
