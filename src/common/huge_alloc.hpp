#pragma once
// Transparent-huge-page allocator for large flat arrays.
//
// A profiler-sized signature (hundreds of MB of slots) accessed in hashed
// order misses the dTLB on nearly every probe when backed by 4 KiB pages,
// and the resulting page walks serialize on the handful of hardware walkers
// — a stall that software prefetching cannot hide (prefetches are dropped
// on a TLB miss).  Backing the slot array with 2 MiB pages keeps the whole
// array TLB-resident, which is what makes the batched kernel's slot
// prefetches effective (see DESIGN.md, "Batched detect kernel").
//
// Allocations below kHugeThreshold, or on platforms without mmap/madvise,
// fall back to operator new — behaviour is identical either way.

#include <cstddef>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace depprof {

namespace huge {

constexpr std::size_t kHugeThreshold = 2u << 20;  // one huge page

#if defined(__linux__)
inline void* alloc(std::size_t bytes) {
  if (bytes < kHugeThreshold) return ::operator new(bytes);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::bad_alloc();
#if defined(MADV_HUGEPAGE)
  (void)::madvise(p, bytes, MADV_HUGEPAGE);  // advisory; 4K pages still work
#endif
  return p;
}

inline void free(void* p, std::size_t bytes) {
  if (bytes < kHugeThreshold) {
    ::operator delete(p);
    return;
  }
  ::munmap(p, bytes);
}
#else
inline void* alloc(std::size_t bytes) { return ::operator new(bytes); }
inline void free(void* p, std::size_t) { ::operator delete(p); }
#endif

}  // namespace huge

/// std::allocator drop-in backing large arrays with transparent huge pages.
template <typename T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  HugePageAllocator(const HugePageAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(huge::alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { huge::free(p, n * sizeof(T)); }

  template <typename U>
  bool operator==(const HugePageAllocator<U>&) const { return true; }
};

}  // namespace depprof
