#pragma once
// In-process memory accounting.
//
// The paper measures profiler memory via `/usr/bin/time -v` max RSS
// (Sec. VI-B2).  For component-exact Figures 7/8 we additionally account the
// bytes owned by each profiler component (signatures, queues/chunks,
// dependence maps); process max RSS is still reported from getrusage.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace depprof {

/// Component categories tracked by the profiler.
enum class MemComponent : unsigned {
  kSignatures = 0,
  kQueues,
  kDepMaps,
  kAccessStats,
  kOther,
  kStore,  ///< paged exact-store leaf pages + directories (PackedShadowStore)
  kCount,
};

/// Process-wide byte counters per component.  Thread-safe (relaxed atomics —
/// the counters are statistics, not synchronisation).
class MemStats {
 public:
  static MemStats& instance();

  void add(MemComponent c, std::int64_t bytes) {
    const unsigned i = static_cast<unsigned>(c);
    const std::int64_t now =
        bytes_[i].fetch_add(bytes, std::memory_order_relaxed) + bytes;
    raise(component_peak_[i], now);
    update_peak();
  }

  std::int64_t bytes(MemComponent c) const {
    return bytes_[static_cast<unsigned>(c)].load(std::memory_order_relaxed);
  }

  /// Sum over all components.
  std::int64_t total() const;

  /// High-water mark of total() since construction or reset().
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

  /// High-water mark of one component since construction or reset() — what
  /// the merge-accounting regression test watches: a merge that copies the
  /// worker-local maps before freeing them doubles peak(kDepMaps).
  std::int64_t peak(MemComponent c) const {
    return component_peak_[static_cast<unsigned>(c)].load(
        std::memory_order_relaxed);
  }

  void reset();

  /// Current process max resident set size in bytes (getrusage).
  static std::int64_t process_max_rss();

  static std::string component_name(MemComponent c);

 private:
  static void raise(std::atomic<std::int64_t>& mark, std::int64_t value);
  void update_peak();
  std::atomic<std::int64_t> bytes_[static_cast<unsigned>(MemComponent::kCount)]{};
  std::atomic<std::int64_t> component_peak_[static_cast<unsigned>(MemComponent::kCount)]{};
  std::atomic<std::int64_t> peak_{0};
};

/// RAII registration of a fixed-size allocation against a component.
class ScopedMemCharge {
 public:
  ScopedMemCharge(MemComponent c, std::int64_t bytes) : c_(c), bytes_(bytes) {
    MemStats::instance().add(c_, bytes_);
  }
  ~ScopedMemCharge() { MemStats::instance().add(c_, -bytes_); }
  ScopedMemCharge(const ScopedMemCharge&) = delete;
  ScopedMemCharge& operator=(const ScopedMemCharge&) = delete;
  ScopedMemCharge(ScopedMemCharge&& o) noexcept : c_(o.c_), bytes_(o.bytes_) {
    o.bytes_ = 0;
  }
  ScopedMemCharge& operator=(ScopedMemCharge&&) = delete;

 private:
  MemComponent c_;
  std::int64_t bytes_;
};

}  // namespace depprof
