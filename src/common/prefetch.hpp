#pragma once
// Software prefetch wrappers for the batched detect kernel.
//
// The detect hot loop is a chain of dependent loads: slot index -> slot line
// -> compare/update.  Issuing the slot lines K events ahead of the compare
// overlaps the misses (memory-level parallelism), which is where the batched
// kernel's throughput win comes from (see DESIGN.md, "Batched detect
// kernel").
//
// Write intent matters: almost every probed slot is immediately re-written
// (Algorithm 1 inserts on every non-free access), so fetching the line in
// exclusive state spares the insert a second ownership round-trip — the
// store would otherwise sit in the store buffer waiting for the RFO.

namespace depprof {

/// Read-intent prefetch (lines that are only compared, e.g. chained nodes).
inline void prefetch_ro(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Write-intent prefetch (slot lines that the kernel will overwrite).
inline void prefetch_rw(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Prefetches every cache line of the object at [p, p + bytes) with write
/// intent.  Signature slots are 44/56 bytes, so a slot regularly straddles
/// two lines; the second line's miss is otherwise exposed on the insert's
/// store, which find() never touched.
inline void prefetch_obj_rw(const void* p, unsigned long bytes) {
  const char* c = static_cast<const char*>(p);
  prefetch_rw(c);
  if (((reinterpret_cast<unsigned long>(c) + bytes - 1) & ~63ul) !=
      (reinterpret_cast<unsigned long>(c) & ~63ul))
    prefetch_rw(c + bytes - 1);
}

}  // namespace depprof
