#include "common/heatmap.hpp"

#include <algorithm>
#include <sstream>

namespace depprof {

std::string render_heatmap(const std::vector<std::vector<std::uint64_t>>& matrix,
                           const std::string& row_label,
                           const std::string& col_label) {
  static constexpr char kRamp[] = {'.', ':', '-', '=', '+', '*', '#', '%', '@'};
  static constexpr int kLevels = static_cast<int>(sizeof(kRamp));

  std::uint64_t max_v = 0;
  for (const auto& row : matrix)
    for (auto v : row) max_v = std::max(max_v, v);

  std::ostringstream os;
  os << row_label << " (rows) x " << col_label << " (cols), max=" << max_v << '\n';
  os << "     ";
  for (std::size_t c = 0; c < (matrix.empty() ? 0 : matrix[0].size()); ++c)
    os << (c % 10) << ' ';
  os << '\n';
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    os << (r < 10 ? "  " : " ") << r << " |";
    for (auto v : matrix[r]) {
      char ch = '.';
      if (v > 0 && max_v > 0) {
        // Map (0, max] to ramp levels 1..kLevels-1.
        auto level = static_cast<int>(
            1 + (static_cast<double>(v) / static_cast<double>(max_v)) * (kLevels - 2) + 0.5);
        ch = kRamp[std::clamp(level, 1, kLevels - 1)];
      }
      os << ch << ' ';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace depprof
