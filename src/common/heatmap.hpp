#pragma once
// ASCII heatmap renderer.
//
// Figure 9 of the paper shows the communication matrix of water-spatial as a
// grid whose cell darkness encodes communication intensity between a
// producer thread (row) and a consumer thread (column).  This renderer
// reproduces that figure on a terminal with a density ramp.

#include <cstdint>
#include <string>
#include <vector>

namespace depprof {

/// Renders a dense matrix (row = producer, column = consumer) as ASCII art.
/// Intensities are normalised to the matrix maximum; zero cells print '.'.
std::string render_heatmap(const std::vector<std::vector<std::uint64_t>>& matrix,
                           const std::string& row_label = "producer",
                           const std::string& col_label = "consumer");

}  // namespace depprof
