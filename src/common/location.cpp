#include "common/location.hpp"

namespace depprof {

std::string SourceLocation::str() const {
  return std::to_string(file_id()) + ":" + std::to_string(line());
}

std::uint32_t StringRegistry::intern(std::string_view name) {
  std::lock_guard lock(mu_);
  if (names_.empty()) {
    names_.emplace_back();
    ids_.emplace(std::string{}, 0);
  }
  auto [it, inserted] =
      ids_.try_emplace(std::string(name), static_cast<std::uint32_t>(names_.size()));
  if (inserted) names_.emplace_back(name);
  return it->second;
}

std::string StringRegistry::name(std::uint32_t id) const {
  std::lock_guard lock(mu_);
  if (id >= names_.size()) return "?";
  return names_[id];
}

std::size_t StringRegistry::size() const {
  std::lock_guard lock(mu_);
  return names_.size();
}

StringRegistry& file_registry() {
  static StringRegistry reg;
  return reg;
}

StringRegistry& var_registry() {
  static StringRegistry reg;
  return reg;
}

std::string loc_str(SourceLocation loc, int tid) {
  std::string s = loc.str();
  if (tid >= 0) {
    s += '|';
    s += std::to_string(tid);
  }
  return s;
}

}  // namespace depprof
