#pragma once
// Wall-clock and per-thread CPU timers.
//
// The evaluation reports slowdown = instrumented wall time / native wall
// time (Sec. VI-B).  On the single-core reproduction host true parallel wall
// time cannot materialise, so parallel benches additionally report a
// *simulated* parallel time built from per-thread CPU busy times
// (DESIGN.md, substitution table) — ThreadCpuTimer provides those.

#include <ctime>
#include <cstdint>

namespace depprof {

/// Monotonic wall-clock timer, nanosecond resolution.
class WallTimer {
 public:
  WallTimer() { reset(); }
  void reset() { start_ = now(); }
  /// Elapsed seconds since construction or last reset().
  double elapsed() const { return static_cast<double>(now() - start_) * 1e-9; }

  static std::uint64_t now() {
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

 private:
  std::uint64_t start_ = 0;
};

/// Per-thread CPU-time clock.  Must be read on the thread being measured.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset() { start_ = now(); }
  /// CPU seconds consumed by the calling thread since reset().
  double elapsed() const { return static_cast<double>(now() - start_) * 1e-9; }

  static std::uint64_t now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }

 private:
  std::uint64_t start_ = 0;
};

}  // namespace depprof
