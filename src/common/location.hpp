#pragma once
// Source-code locations and string registries.
//
// The paper represents every dependence endpoint as a source location of the
// form "fileId:line" (Fig. 1) and stores the line number inside signature
// slots using 3 bytes (Sec. III-B).  We pack a location into a single u32
// (8-bit file id, 24-bit line) so it fits a slot exactly as in the paper.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace depprof {

/// Packed source location: 8-bit file id, 24-bit line number.
/// Value 0 is reserved as "unknown / none".
class SourceLocation {
 public:
  constexpr SourceLocation() = default;
  constexpr SourceLocation(std::uint32_t file_id, std::uint32_t line)
      : packed_((file_id & 0xFFu) << 24 | (line & 0xFF'FFFFu)) {}

  /// Rebuild from a previously obtained packed value.
  static constexpr SourceLocation from_packed(std::uint32_t packed) {
    SourceLocation loc;
    loc.packed_ = packed;
    return loc;
  }

  constexpr std::uint32_t file_id() const { return packed_ >> 24; }
  constexpr std::uint32_t line() const { return packed_ & 0xFF'FFFFu; }
  constexpr std::uint32_t packed() const { return packed_; }
  constexpr bool valid() const { return packed_ != 0; }

  /// Renders as "fileId:line", e.g. "1:60" — the paper's notation.
  std::string str() const;

  friend constexpr bool operator==(SourceLocation a, SourceLocation b) {
    return a.packed_ == b.packed_;
  }
  friend constexpr auto operator<=>(SourceLocation a, SourceLocation b) {
    return a.packed_ <=> b.packed_;
  }

 private:
  std::uint32_t packed_ = 0;
};

/// Interns strings (file names, variable names) to dense small ids.
/// Thread-safe; ids are stable for the lifetime of the registry.
class StringRegistry {
 public:
  /// Returns the id for `name`, interning it on first use.  Id 0 is always
  /// the empty string ("unknown").
  std::uint32_t intern(std::string_view name);

  /// Name for an id; returns "?" for out-of-range ids.
  std::string name(std::uint32_t id) const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::uint32_t> ids_;
  std::vector<std::string> names_;
};

/// Process-wide registries used by the instrumentation runtime and the
/// output formatter.  Separate registries keep file ids inside 8 bits.
StringRegistry& file_registry();
StringRegistry& var_registry();

/// Convenience: format a location with an optional thread id, matching the
/// paper's parallel notation "4:58|2" (Fig. 3).  `tid < 0` omits the id.
std::string loc_str(SourceLocation loc, int tid = -1);

}  // namespace depprof
