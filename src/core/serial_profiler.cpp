// Serial profiler (Sec. III): the one-worker degenerate case of the shared
// pipeline.  Batches go produce → detect with no queue in between; finish()
// folds the single local map through the merge stage.  The store backend is
// resolved once at construction (core/store_factory.hpp), so the detect
// loop is one monomorphized DetectorCore instantiation.

#include <algorithm>
#include <array>

#include "common/hash.hpp"
#include "common/huge_alloc.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/store_factory.hpp"

namespace depprof {
namespace {

template <AccessStore Store>
class SerialProfiler final : public IProfiler {
 public:
  SerialProfiler(Store sig_read, Store sig_write, std::size_t signature_bytes,
                 bool batched, std::uint64_t hugepage_baseline)
      : obs_(1),
        detect_(std::move(sig_read), std::move(sig_write), obs_.detect(0),
                batched),
        merge_(obs_.merge()),
        signature_bytes_(signature_bytes),
        hugepage_baseline_(hugepage_baseline) {}

  void on_access(const AccessEvent& ev) override { on_batch(&ev, 1); }

  void on_batch(const AccessEvent* events, std::size_t count) override {
    if (count == 0) return;
    obs_.produce().add_events(count);
    obs_.produce().add_chunks(1);
    // No queue between produce and detect here, so the "wire" cost is the
    // raw event bytes handed across the stage boundary — the serial
    // baseline the packed parallel encoding is measured against.
    obs_.produce().add_bytes_on_wire(count * sizeof(AccessEvent));
    // Canonicalize to the word-granular address unit once, here.
    std::array<AccessEvent, kUnitBatch> unit;
    while (count > 0) {
      const std::size_t n = std::min(count, unit.size());
      for (std::size_t i = 0; i < n; ++i) {
        unit[i] = events[i];
        unit[i].addr = word_addr(events[i].addr);
      }
      detect_.process(unit.data(), n);
      events += n;
      count -= n;
    }
  }

  void on_batch_rle(const AccessEvent* events, const std::uint32_t* reps,
                    std::size_t count) override {
    if (count == 0) return;
    std::uint64_t logical = 0;
    for (std::size_t i = 0; i < count; ++i) logical += reps[i];
    obs_.produce().add_events(logical);
    obs_.produce().add_chunks(1);
    obs_.produce().add_events_deduped(logical - count);
    // One record per RLE run crosses the stage boundary.
    obs_.produce().add_bytes_on_wire(count * sizeof(AccessEvent));
    // Expand runs during the canonicalization copy: the detect kernel
    // consumes the same raw event stream either way.
    std::array<AccessEvent, kUnitBatch> unit;
    std::size_t fill = 0;
    for (std::size_t i = 0; i < count; ++i) {
      AccessEvent ev = events[i];
      ev.addr = word_addr(events[i].addr);
      std::uint32_t rep = reps[i];
      while (rep > 0) {
        const std::size_t n = std::min<std::size_t>(rep, unit.size() - fill);
        std::fill_n(unit.data() + fill, n, ev);
        fill += n;
        rep -= static_cast<std::uint32_t>(n);
        if (fill == unit.size()) {
          detect_.process(unit.data(), fill);
          fill = 0;
        }
      }
    }
    if (fill > 0) detect_.process(unit.data(), fill);
  }

  void finish() override {
    if (finished_) return;
    finished_ = true;
    // Footprint counters, published once so snapshots stay monotone: the
    // paged stores' resident leaf pages, and any huge allocations this run
    // that degraded to operator new (delta against the construction-time
    // process total).
    detect_.publish_residency();
    obs_.produce().add_hugepage_fallbacks(huge::fallback_count() -
                                          hugepage_baseline_);
    merge_.fold(global_, detect_.deps());
    // MT targets only: the triage is meaningful only where the detector
    // stamps timestamps and thread ids into the slots.
    if constexpr (std::is_same_v<typename Store::slot_type, MtSlot>)
      publish_race_counters(global_, obs_.produce());
  }

  std::uint64_t profiling_cost_ns() const override {
    return obs_.total_cpu_ns();
  }

  void on_sampling_stats(std::uint64_t events_sampled_out,
                         std::uint64_t bursts,
                         std::uint64_t overhead_ppm) override {
    obs_.produce().add_events_sampled_out(events_sampled_out);
    obs_.produce().add_bursts(bursts);
    obs_.produce().raise_sampled_overhead_ppm(overhead_ppm);
  }

  const DepMap& dependences() const override { return global_; }

  DepMap take_dependences() override { return std::move(global_); }

  ProfilerStats stats() const override {
    ProfilerStats st;
    st.signature_bytes = signature_bytes_;
    fill_stats_from(obs_.snapshot(), st);
    return st;
  }

 private:
  // Matches Chunk capacity: bigger batches amortize the batched kernel's
  // per-batch record-table flush over more events (the INIT key space is
  // small, so instances-per-key grows with the batch).
  static constexpr std::size_t kUnitBatch = 1024;

  obs::PipelineObs obs_;
  DetectStage<Store> detect_;
  MergeStage merge_;
  DepMap global_;
  std::size_t signature_bytes_;
  const std::uint64_t hugepage_baseline_;
  bool finished_ = false;
};

}  // namespace

const char* storage_kind_name(StorageKind kind) {
  switch (kind) {
    case StorageKind::kSignature: return "signature";
    case StorageKind::kPerfect: return "perfect";
    case StorageKind::kShadow: return "shadow";
    case StorageKind::kHashTable: return "hashtable";
    case StorageKind::kPacked: return "packed";
  }
  return "?";
}

std::unique_ptr<IProfiler> make_serial_profiler(const ProfilerConfig& config) {
  if (!races_config_ok(config)) return nullptr;
  // Baseline BEFORE the stores are built: a signature slot array that falls
  // back during construction belongs to this run's counter.
  const std::uint64_t hp0 = huge::fallback_count();
  return with_store(
      config,
      [&]<typename Store>(std::type_identity<Store>) -> std::unique_ptr<IProfiler> {
        Store r = make_store<Store>(config);
        Store w = make_store<Store>(config);
        const std::size_t bytes = r.bytes() + w.bytes();
        return std::make_unique<SerialProfiler<Store>>(
            std::move(r), std::move(w), bytes, config.batched_detect, hp0);
      });
}

}  // namespace depprof
