// Serial profiler (Sec. III): Algorithm 1 executed inline on the
// instrumented thread.  One detector instance; store backend and slot layout
// chosen by the configuration.

#include <variant>

#include "common/timer.hpp"
#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "sig/hash_table_recorder.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/shadow_memory.hpp"
#include "sig/signature.hpp"

namespace depprof {
namespace {

template <typename Store, typename Slot>
class SerialProfiler final : public IProfiler {
 public:
  SerialProfiler(Store sig_read, Store sig_write, std::size_t signature_bytes)
      : detector_(std::move(sig_read), std::move(sig_write)),
        signature_bytes_(signature_bytes) {}

  void on_access(const AccessEvent& ev) override {
    ++events_;
    // Canonicalize to the word-granular address unit once, here.
    AccessEvent unit = ev;
    unit.addr = word_addr(ev.addr);
    detector_.process(unit, deps_);
  }

  void finish() override {}

  const DepMap& dependences() const override { return deps_; }

  DepMap take_dependences() override { return std::move(deps_); }

  ProfilerStats stats() const override {
    ProfilerStats st;
    st.events = events_;
    st.signature_bytes = signature_bytes_;
    return st;
  }

 private:
  DepDetector<Store, Slot> detector_;
  DepMap deps_;
  std::uint64_t events_ = 0;
  std::size_t signature_bytes_;
};

template <typename Slot>
std::unique_ptr<IProfiler> make_for_slot(const ProfilerConfig& c) {
  switch (c.storage) {
    case StorageKind::kSignature: {
      Signature<Slot> r(c.slots, c.sig_hash), w(c.slots, c.sig_hash);
      const std::size_t bytes = r.bytes() + w.bytes();
      return std::make_unique<SerialProfiler<Signature<Slot>, Slot>>(
          std::move(r), std::move(w), bytes);
    }
    case StorageKind::kPerfect:
      return std::make_unique<SerialProfiler<PerfectSignature<Slot>, Slot>>(
          PerfectSignature<Slot>{}, PerfectSignature<Slot>{}, 0);
    case StorageKind::kShadow:
      return std::make_unique<SerialProfiler<ShadowMemory<Slot>, Slot>>(
          ShadowMemory<Slot>{}, ShadowMemory<Slot>{}, 0);
    case StorageKind::kHashTable:
      return std::make_unique<SerialProfiler<HashTableRecorder<Slot>, Slot>>(
          HashTableRecorder<Slot>(c.slots), HashTableRecorder<Slot>(c.slots), 0);
  }
  return nullptr;
}

}  // namespace

const char* storage_kind_name(StorageKind kind) {
  switch (kind) {
    case StorageKind::kSignature: return "signature";
    case StorageKind::kPerfect: return "perfect";
    case StorageKind::kShadow: return "shadow";
    case StorageKind::kHashTable: return "hashtable";
  }
  return "?";
}

std::unique_ptr<IProfiler> make_serial_profiler(const ProfilerConfig& config) {
  return config.mt_targets ? make_for_slot<MtSlot>(config)
                           : make_for_slot<SeqSlot>(config);
}

}  // namespace depprof
