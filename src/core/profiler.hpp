#pragma once
// Profiler configuration and the common profiler interface.
//
// Both the serial profiler (Sec. III) and the parallel pipeline (Sec. IV/V)
// are AccessSinks: the instrumentation runtime (or a trace replay) feeds
// them events; after finish() the merged global dependence map and the run
// statistics are available.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dep.hpp"
#include "obs/stage_stats.hpp"
#include "queue/concurrent_queue.hpp"
#include "queue/wait_strategy.hpp"
#include "sig/signature.hpp"
#include "trace/event.hpp"

namespace depprof {

/// Which access store backs Algorithm 1.
enum class StorageKind {
  kSignature,  ///< fixed-size signature (the paper's design)
  kPerfect,    ///< collision-free baseline (Sec. VI-A)
  kShadow,     ///< multi-level shadow memory baseline (Sec. III-B)
  kHashTable,  ///< chained hash table baseline (Sec. III-B)
  kPacked,     ///< SLAMP-style paged shadow memory, packed 64-bit words
};

const char* storage_kind_name(StorageKind kind);

/// Load-balancing knobs (Sec. IV-A).
struct LoadBalanceConfig {
  bool enabled = false;
  /// Access statistics are updated every 2^sample_shift events (0 = every
  /// access, the paper's configuration).
  unsigned sample_shift = 0;
  /// Evaluate the distribution after this many produced chunks (the paper
  /// re-checks every 50 000 chunks).
  std::size_t eval_interval_chunks = 50'000;
  /// Redistribute when max worker load exceeds this multiple of the mean.
  double imbalance_threshold = 1.25;
  /// How many of the hottest addresses are kept evenly distributed (the
  /// paper balances the top ten).
  unsigned top_k = 10;
  /// Safety cap on redistribution rounds (the paper observes at most 20).
  unsigned max_rounds = 64;
};

struct ProfilerConfig {
  StorageKind storage = StorageKind::kSignature;
  /// Signature slots per signature (each detector has a read and a write
  /// signature of this size).  In the parallel profiler this is per worker;
  /// Fig. 7 uses 6.25e6 slots per thread = 1e8 aggregate over 16 threads.
  std::size_t slots = 1u << 20;
  /// Slot-index function (see sig/signature.hpp); modulo is paper-faithful.
  SigHash sig_hash = SigHash::kModulo;
  /// True for multi-threaded target programs (Sec. V): MtSlot layout,
  /// thread ids in dependence endpoints, timestamp race check.
  bool mt_targets = false;
  /// First-class race mode (Sec. V-B): the run is being profiled *for* its
  /// race report.  Requires mt_targets and forbids sampling — the sampling
  /// subset guarantee covers dependence edges, not race candidates (a
  /// dropped event can hide the reversal that confirms a race), so the
  /// factories refuse the combination (see races_config_ok()).
  bool races = false;

  // Parallel pipeline (ignored by the serial profiler).
  unsigned workers = 8;
  QueueKind queue = QueueKind::kLockFreeSpsc;
  std::size_t chunk_size = 512;          ///< accesses per chunk (<= Chunk capacity)
  std::size_t queue_capacity = 64;       ///< chunks per worker queue
  /// How pipeline threads wait at the three blocking sites (idle workers,
  /// producers facing a full queue, migration-mailbox handoff).  kSpin is
  /// the paper's busy-wait; kPark (default) degrades gracefully when the
  /// host is oversubscribed.  See queue/wait_strategy.hpp.
  WaitKind wait = WaitKind::kPark;
  LoadBalanceConfig load_balance;
  /// Route addresses to workers with the paper's plain modulo (formula 1)
  /// instead of the mixed hash; exercised by the load-balance ablation.
  bool modulo_routing = false;
  /// Detect-stage kernel: process whole chunks with signature-slot
  /// prefetching K events ahead (DetectorCore::process_batch) instead of one
  /// event at a time.  The dependence maps are byte-identical either way;
  /// the flag exists for the hotpath ablation and the depfuzz kernel axis.
  bool batched_detect = true;
  /// Front-end redundancy elision: exact repeats of an access (same word,
  /// kind, loc, var, tid, loop context) are run-length encoded before they
  /// enter the pipeline (on_batch_rle), so the produce/route/queue path
  /// handles one record per run instead of one per instance.  Map-preserving
  /// (see DESIGN.md "Front-end event reduction"); the flag exists for the
  /// frontend ablation and the depfuzz dedup axis.
  bool dedup = true;
  /// Compact chunk encoding: events travel the producer->worker queues as
  /// ~16-byte delta-packed wire records (core/wire.hpp) instead of raw
  /// 64-byte AccessEvents, and are decoded back before detection.  The
  /// dependence maps are byte-identical either way.
  bool pack = true;
  // Overhead-budget sampling (sequential targets only; see DESIGN.md
  // "Overhead-budget sampling").  The sampling unit is one iteration of an
  // outermost loop: a profiled unit is observed whole, so every inner-loop
  // invocation inside it is profiled end to end and loop-carried distances
  // stay exact within a burst.  Dropped units are bracketed by a
  // kBurstMark event that clears all detection state, which makes the
  // sampled map a provable subset (per non-INIT dependence edge) of the
  // unsampled map.
  /// Target overhead fraction for the adaptive controller: < 1.0 enables
  /// feedback mode (profiling cost measured online from the sink's stage
  /// CPU clocks, the skip count adjusted between bursts).  >= 1.0 with
  /// sampling_skip == 0 means sampling is entirely off — byte-identical
  /// output to an unsampled run.
  double budget = 1.0;
  /// Units profiled per burst (the deterministic B of the B-on / K-off
  /// cycle; also the adaptive controller's burst length).
  unsigned sampling_burst = 8;
  /// Units skipped between bursts.  > 0 selects the deterministic fixed
  /// schedule (budget is then ignored) — the mode the equivalence matrix,
  /// the depfuzz lattice, and bench/sampling sweep.
  unsigned sampling_skip = 0;
  /// Chunks preallocated by the pipeline's pool before the target starts
  /// running (0 = auto: enough for full queues + in-flight + migration).
  /// For sequential targets the pool is *sealed* to this population — an
  /// empty free list blocks for a recycled chunk instead of allocating, so
  /// steady-state profiling never touches the heap the target is mutating
  /// (the root cause of the unpacked cross-attribution flake; see
  /// core/chunk.hpp).  MT targets keep a growable pool, seeded to the same
  /// size.
  std::size_t pool_chunks = 0;
};

/// Post-run statistics.  Both profilers fill every field the same way: the
/// serial profiler is the one-worker case (workers == 1, one busy/events
/// entry, chunks counts delivered batches).  The per-stage `stages` snapshot
/// is the source the scalar fields are derived from (see core/pipeline.hpp).
struct ProfilerStats {
  std::uint64_t events = 0;              ///< accesses processed
  std::uint64_t chunks = 0;              ///< chunks/batches produced
  unsigned workers = 0;                  ///< detect-stage instances
  std::vector<double> worker_busy_sec;   ///< per-worker CPU time spent processing
  std::vector<std::uint64_t> worker_events;  ///< per-worker accesses processed
  double merge_sec = 0.0;                ///< global merge time
  unsigned redistribution_rounds = 0;    ///< load-balancer activity
  std::uint64_t migrated_addresses = 0;
  std::size_t signature_bytes = 0;       ///< aggregate signature footprint
  obs::PipelineSnapshot stages;          ///< per-stage counter snapshot
};

/// Common interface of the serial and parallel profilers.
class IProfiler : public AccessSink {
 public:
  /// Merged global dependences; valid after finish().
  virtual const DepMap& dependences() const = 0;
  /// Moves the merged dependences out (the profiler's map is left empty).
  virtual DepMap take_dependences() = 0;
  virtual ProfilerStats stats() const = 0;
};

/// API-level enforcement of the race-mode preconditions: races needs the MT
/// slot layout (timestamps) and a complete event stream (no sampling).  The
/// profiler factories return nullptr when this is false; the CLI rejects
/// the same combinations with a usage error before ever building a config.
inline bool races_config_ok(const ProfilerConfig& c) {
  if (!c.races) return true;
  const bool sampled = c.budget < 1.0 || c.sampling_skip > 0;
  return c.mt_targets && !sampled;
}

/// Serial profiler (Sec. III): Algorithm 1 on the calling thread.  Its
/// on_access is NOT thread-safe: events must come from a single thread (or
/// a replayed trace).  Multi-threaded targets need the parallel profiler,
/// whose producer side is per-thread.
std::unique_ptr<IProfiler> make_serial_profiler(const ProfilerConfig& config);

/// Parallel profiler (Sec. IV/V): the Fig. 2 pipeline.  Worker threads are
/// spawned on construction and joined by finish().
std::unique_ptr<IProfiler> make_parallel_profiler(const ProfilerConfig& config);

}  // namespace depprof
