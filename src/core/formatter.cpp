#include "core/formatter.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

namespace depprof {
namespace {

/// Output order on equal lines: BGN first, then NOM sinks, then END —
/// matching Fig. 1 where "1:60 BGN loop" precedes "1:60 NOM ..." and
/// "1:74 NOM ..." precedes "1:74 END loop 1200".
enum LineOrder { kBgn = 0, kNom = 1, kEnd = 2 };

/// Fig. 1 lists RAW before WAR before WAW, with INIT always last.
int type_rank(DepType t) {
  return t == DepType::kInit ? 4 : static_cast<int>(t);
}

std::string source_str(const DepKey& k, const DepInfo& info,
                       const FormatOptions& opts) {
  std::ostringstream os;
  os << '{' << dep_type_name(k.type) << ' ';
  if (k.type == DepType::kInit) {
    os << '*';
  } else {
    os << SourceLocation::from_packed(k.src_loc).str();
    if (opts.show_tids) os << '|' << k.src_tid;
    os << '|' << var_registry().name(k.var);
  }
  if (opts.show_counts) os << " x" << info.count;
  if (opts.show_distances) {
    // One term per attributed nest level: L<level>=<d0>|<d1>|<d2p> — the
    // instance counts per carry-distance bucket (0, 1, >=2-or-unknown) at
    // that level's common loop.
    for (std::size_t d = 0; d < kNestLevels; ++d) {
      const DepLevel& lvl = info.levels[d];
      if (lvl.loop == 0 && lvl.d0 == 0 && lvl.d1 == 0 && lvl.d2p == 0)
        continue;
      os << " L" << (d + 1) << '=' << lvl.d0 << '|' << lvl.d1 << '|'
         << lvl.d2p;
    }
  }
  if (opts.mark_races && (info.flags & kReversed)) os << '!';
  os << '}';
  return os.str();
}

}  // namespace

std::string format_deps(const DepMap& deps, const ControlFlowLog* cf,
                        const FormatOptions& opts) {
  struct Line {
    std::uint32_t loc;
    int order;
    std::uint32_t tid;
    std::string text;
  };
  std::vector<Line> lines;

  // Dependences grouped by aggregated sink (location + thread id).
  auto sorted = deps.sorted();
  std::size_t i = 0;
  while (i < sorted.size()) {
    const std::uint32_t sink_loc = sorted[i].first.sink_loc;
    const std::uint16_t sink_tid = sorted[i].first.sink_tid;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].first.sink_loc == sink_loc &&
           sorted[j].first.sink_tid == sink_tid)
      ++j;
    std::stable_sort(sorted.begin() + static_cast<std::ptrdiff_t>(i),
                     sorted.begin() + static_cast<std::ptrdiff_t>(j),
                     [](const auto& a, const auto& b) {
                       return type_rank(a.first.type) < type_rank(b.first.type);
                     });
    std::ostringstream os;
    os << SourceLocation::from_packed(sink_loc).str();
    if (opts.show_tids) os << '|' << sink_tid;
    os << " NOM";
    for (std::size_t k = i; k < j; ++k)
      os << ' ' << source_str(sorted[k].first, sorted[k].second, opts);
    lines.push_back({sink_loc, kNom, sink_tid, os.str()});
    i = j;
  }

  // Control regions (loops) from the control-flow log.
  if (cf != nullptr) {
    for (const auto& loop : cf->loops) {
      lines.push_back({loop.begin_loc, kBgn, 0,
                       SourceLocation::from_packed(loop.begin_loc).str() +
                           " BGN loop"});
      lines.push_back({loop.end_loc, kEnd, 0,
                       SourceLocation::from_packed(loop.end_loc).str() +
                           " END loop " + std::to_string(loop.iterations)});
    }
  }

  std::stable_sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    return std::tie(a.loc, a.order, a.tid) < std::tie(b.loc, b.order, b.tid);
  });

  std::string out;
  for (const auto& line : lines) {
    out += line.text;
    out += '\n';
  }
  return out;
}

std::string deps_csv(const DepMap& deps) {
  std::ostringstream os;
  os << "type,sink,sink_tid,source,src_tid,var,count,carried,cross_thread,"
        "reversed,locked,carried_level,carried_loop,d0,d1,d2p\n";
  for (const auto& [key, info] : deps.sorted()) {
    os << dep_type_name(key.type) << ','
       << SourceLocation::from_packed(key.sink_loc).str() << ',' << key.sink_tid
       << ',';
    if (key.type == DepType::kInit)
      os << '*';
    else
      os << SourceLocation::from_packed(key.src_loc).str();
    std::uint64_t d0 = 0, d1 = 0, d2p = 0;
    for (std::size_t d = 0; d < kNestLevels; ++d) {
      d0 += info.levels[d].d0;
      d1 += info.levels[d].d1;
      d2p += info.levels[d].d2p;
    }
    const std::uint32_t clevel = info.carried_level();
    os << ',' << key.src_tid << ',' << var_registry().name(key.var) << ','
       << info.count << ',' << ((info.flags & kLoopCarried) ? 1 : 0) << ','
       << ((info.flags & kCrossThread) ? 1 : 0) << ','
       // Race evidence as instance counts, not flags: how many instances
       // arrived timestamp-reversed / fully lock-protected (Sec. V-B).
       << info.reversed << ',' << info.locked << ',' << clevel << ',';
    if (clevel != 0)
      os << SourceLocation::from_packed(info.carried_loop()).str();
    os << ',' << d0 << ',' << d1 << ',' << d2p << '\n';
  }
  return os.str();
}

}  // namespace depprof
