#pragma once
// Dependence output formatting.
//
// Reproduces the textual format of Fig. 1 (sequential) and Fig. 3 (parallel)
// exactly: one line per aggregated sink, `NOM` for plain statements, and
// `BGN loop` / `END loop <iterations>` lines for control regions.
//
//   1:60 BGN loop
//   1:60 NOM {RAW 1:60|i} {WAR 1:60|i} {INIT *}
//   ...
//   1:74 END loop 1200
//
// With thread ids (Fig. 3) sinks become "4:58|2" and sources "4:77|2|iter".

#include <string>

#include "core/dep.hpp"
#include "trace/control_flow.hpp"

namespace depprof {

struct FormatOptions {
  /// Print thread ids on sinks and sources (parallel targets, Fig. 3).
  bool show_tids = false;
  /// Append instance counts as "xN" after each dependence (extension; the
  /// paper's format omits counts).
  bool show_counts = false;
  /// Mark potential data races detected via timestamp reversal (Sec. V-B)
  /// with a trailing '!' on the dependence.
  bool mark_races = true;
  /// Append carried iteration distances as "d=min" or "d=min..max"
  /// (extension; Alchemist-style distance profiling).
  bool show_distances = false;
};

/// Renders the merged dependences (and optionally the loop control regions)
/// in the paper's text format.
std::string format_deps(const DepMap& deps, const ControlFlowLog* cf = nullptr,
                        const FormatOptions& opts = {});

/// Machine-readable CSV: type,sink,sink_tid,source,src_tid,var,count,flags.
std::string deps_csv(const DepMap& deps);

}  // namespace depprof
