#include "core/dep.hpp"

#include <algorithm>
#include <tuple>

#include "common/hash.hpp"

namespace depprof {

const char* dep_type_name(DepType t) {
  switch (t) {
    case DepType::kInit: return "INIT";
    case DepType::kRaw: return "RAW";
    case DepType::kWar: return "WAR";
    case DepType::kWaw: return "WAW";
  }
  return "?";
}

std::size_t DepKeyHash::operator()(const DepKey& k) const {
  std::uint64_t h = k.sink_loc;
  h = mix64(h ^ (static_cast<std::uint64_t>(k.src_loc) << 32));
  h = mix64(h ^ k.var ^ (static_cast<std::uint64_t>(k.sink_tid) << 32) ^
            (static_cast<std::uint64_t>(k.src_tid) << 48) ^
            (static_cast<std::uint64_t>(k.type) << 60));
  return static_cast<std::size_t>(h);
}

DepMap::~DepMap() { clear(); }

DepMap::DepMap(DepMap&& o) noexcept
    : map_(std::move(o.map_)), instances_(o.instances_) {
  o.map_.clear();
  o.instances_ = 0;
}

DepMap& DepMap::operator=(DepMap&& o) noexcept {
  if (this != &o) {
    clear();
    map_ = std::move(o.map_);
    instances_ = o.instances_;
    o.map_.clear();
    o.instances_ = 0;
  }
  return *this;
}

void DepMap::add(const DepKey& key, std::uint8_t flags,
                 const DepAttribution& at) {
  ++instances_;
  auto [it, inserted] = map_.try_emplace(key);
  if (inserted)
    MemStats::instance().add(MemComponent::kDepMaps,
                             static_cast<std::int64_t>(kEntryBytes));
  apply_dep_instance(it->second, flags, at);
}

void DepMap::add_many(const DepKey& key, std::uint64_t n) {
  DepInfo info;
  info.count = n;
  fold(key, info);
}

namespace {

void fold_info(DepInfo& into, const DepInfo& info) {
  into.count += info.count;
  into.reversed += info.reversed;
  into.locked += info.locked;
  into.flags |= info.flags;
  for (std::size_t d = 0; d < kNestLevels; ++d) {
    into.levels[d].loop = std::max(into.levels[d].loop, info.levels[d].loop);
    into.levels[d].d0 += info.levels[d].d0;
    into.levels[d].d1 += info.levels[d].d1;
    into.levels[d].d2p += info.levels[d].d2p;
  }
}

}  // namespace

void DepMap::fold(const DepKey& key, const DepInfo& info) {
  if (info.count == 0) return;
  instances_ += info.count;
  auto [it, inserted] = map_.try_emplace(key);
  if (inserted)
    MemStats::instance().add(MemComponent::kDepMaps,
                             static_cast<std::int64_t>(kEntryBytes));
  fold_info(it->second, info);
}

void DepMap::merge(const DepMap& other) {
  for (const auto& [key, info] : other.map_) {
    auto [it, inserted] = map_.try_emplace(key);
    if (inserted)
      MemStats::instance().add(MemComponent::kDepMaps,
                               static_cast<std::int64_t>(kEntryBytes));
    fold_info(it->second, info);
  }
  instances_ += other.instances_;
}

void DepMap::merge_from(DepMap& other) {
  if (this == &other) return;
  for (auto src = other.map_.begin(); src != other.map_.end();
       src = other.map_.erase(src)) {
    auto [it, inserted] = map_.try_emplace(src->first);
    fold_info(it->second, src->second);
    // A transferred entry keeps its existing kDepMaps credit; a collapsed
    // duplicate releases it.  Erasing incrementally keeps the accounting
    // exact at every step of the merge window.
    if (!inserted)
      MemStats::instance().add(MemComponent::kDepMaps,
                               -static_cast<std::int64_t>(kEntryBytes));
  }
  instances_ += other.instances_;
  other.instances_ = 0;
}

const DepInfo* DepMap::find(const DepKey& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

std::vector<std::pair<DepKey, DepInfo>> DepMap::sorted() const {
  std::vector<std::pair<DepKey, DepInfo>> out(map_.begin(), map_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    const DepKey& x = a.first;
    const DepKey& y = b.first;
    return std::tie(x.sink_loc, x.sink_tid, x.type, x.src_loc, x.src_tid, x.var) <
           std::tie(y.sink_loc, y.sink_tid, y.type, y.src_loc, y.src_tid, y.var);
  });
  return out;
}

void DepMap::clear() {
  MemStats::instance().add(
      MemComponent::kDepMaps,
      -static_cast<std::int64_t>(kEntryBytes * map_.size()));
  map_.clear();
  instances_ = 0;
}

}  // namespace depprof
