#pragma once
// Shared pipeline-stage components of the Fig. 2 profiler.
//
// Both profilers are thin drivers over the same four stages:
//
//   produce — batch accesses into chunks (one instance per target thread)
//   route   — address ownership (formula 1) plus the Sec. IV-A load balancer
//   detect  — Algorithm 1 per worker (DetectorCore over any AccessStore)
//   merge   — fold the worker-local dependence maps into the global map
//
// The serial profiler is the one-worker degenerate case: its events go
// produce → detect with no queue in between, and merge folds a single local
// map.  Every stage updates its obs::StageStats block, which is what gives
// ProfilerStats one well-defined shape for both profilers.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.hpp"
#include "common/mem_stats.hpp"
#include "common/timer.hpp"
#include "core/chunk.hpp"
#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "core/wire.hpp"
#include "obs/stage_stats.hpp"
#include "sig/access_store.hpp"

namespace depprof {

/// Produce stage: stages accesses of one producer thread into per-worker
/// chunks.  The driver decides when a returned chunk is pushed (queue) or
/// processed inline (serial).
class ProduceStage {
 public:
  ProduceStage(std::size_t workers, ChunkPool& pool)
      : pending_(workers, nullptr), encoders_(workers), pool_(&pool) {}

  /// Appends `ev` to the pending chunk for worker `w`; returns the chunk
  /// once it reaches `fill` events and must be handed on, else nullptr.
  Chunk* add(unsigned w, const AccessEvent& ev, std::size_t fill) {
    Chunk*& pending = pending_[w];
    if (pending == nullptr) pending = pool_->acquire();
    pending->events[pending->count++] = ev;
    return pending->count >= fill ? take(w) : nullptr;
  }

  /// Appends a contiguous run of `n` events, all owned by worker `w`, to
  /// its pending chunk — the batch path's bulk variant of add().  Chunks
  /// that reach `fill` are handed to `push(chunk, w)` as the run is copied,
  /// so a run longer than the remaining chunk room spans several chunks.
  template <typename Push>
  void add_run(unsigned w, const AccessEvent* events, std::size_t n,
               std::size_t fill, Push&& push) {
    sched::point("produce.stage");
    Chunk*& pending = pending_[w];
    while (n > 0) {
      if (pending == nullptr) pending = pool_->acquire();
      const std::size_t room = std::min(n, fill - pending->count);
      std::copy_n(events, room, pending->events.data() + pending->count);
      pending->count += static_cast<std::uint32_t>(room);
      events += room;
      n -= room;
      if (pending->count >= fill) {
        Chunk* full = pending;
        pending = nullptr;
        push(full, w);
      }
    }
  }

  /// Raw-mode staging of RLE records: expands each run back into identical
  /// raw events as it is copied (dedup on, pack off — the queue savings of
  /// dedup need the packed encoding; this path only keeps the semantics).
  template <typename Push>
  void add_run_rle(unsigned w, const AccessEvent* events,
                   const std::uint32_t* reps, std::size_t n, std::size_t fill,
                   Push&& push) {
    if (reps == nullptr) {
      add_run(w, events, n, fill, std::forward<Push>(push));
      return;
    }
    sched::point("produce.stage");
    Chunk*& pending = pending_[w];
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t rep = reps[i];
      while (rep > 0) {
        if (pending == nullptr) pending = pool_->acquire();
        const std::size_t room = std::min(rep, fill - pending->count);
        std::fill_n(pending->events.data() + pending->count, room, events[i]);
        pending->count += static_cast<std::uint32_t>(room);
        rep -= room;
        if (pending->count >= fill) {
          Chunk* full = pending;
          pending = nullptr;
          push(full, w);
        }
      }
    }
  }

  /// Packed-mode twin of add_run: stages a run of RLE records (`reps[i]`
  /// instances of `events[i]`; reps == nullptr means all 1) as delta-packed
  /// wire records (core/wire.hpp).  A chunk is closed when the next record
  /// might not fit its byte budget — `fill` keeps its raw-equivalent
  /// meaning, so a packed chunk carries the same queue-byte footprint as a
  /// raw chunk of `fill` events while holding ~4x the accesses.  Escape
  /// records are counted into `stats` (pack_escapes).
  template <typename Push>
  void add_run_packed(unsigned w, const AccessEvent* events,
                      const std::uint32_t* reps, std::size_t n,
                      std::size_t fill, obs::StageStats& stats, Push&& push) {
    sched::point("produce.stage");
    Chunk*& pending = pending_[w];
    WireEncoder& enc = encoders_[w];
    const std::size_t budget =
        std::min(fill * sizeof(AccessEvent), Chunk::kPayloadBytes);
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t rep = reps != nullptr ? reps[i] : 1;
      while (rep > 0) {
        const std::uint32_t r = std::min(rep, kMaxWireRep);
        if (pending == nullptr) {
          pending = pool_->acquire();
          pending->packed = true;
          enc.reset();
        }
        // Close on the conservative worst case (escape record) so a record
        // never straddles chunks; always admit at least one record so tiny
        // fills (chunk_size == 1) still make progress.
        if (pending->records > 0 &&
            pending->bytes + kMaxWireRecordBytes > budget) {
          Chunk* full = pending;
          pending = nullptr;
          push(full, w);
          continue;
        }
        bool escaped = false;
        const std::size_t wrote =
            enc.encode(events[i], r, pending->payload_bytes() + pending->bytes,
                       escaped);
        pending->bytes += static_cast<std::uint32_t>(wrote);
        pending->records += 1;
        pending->count += r;
        if (escaped) stats.add_pack_escapes(1);
        rep -= r;
      }
    }
  }

  /// Removes and returns the non-empty pending chunk for worker `w`
  /// (nullptr when nothing is staged) — lock-region and finish() flushes.
  Chunk* take(unsigned w) {
    Chunk* c = pending_[w];
    if (c == nullptr || c->count == 0) return nullptr;
    pending_[w] = nullptr;
    return c;
  }

  std::size_t workers() const { return pending_.size(); }

 private:
  std::vector<Chunk*> pending_;
  std::vector<WireEncoder> encoders_;
  ChunkPool* pool_;
};

/// A load-balancer decision: ownership of `addr` moves from worker `from`
/// to worker `to`.  The driver executes the signature-state handoff
/// (Sec. IV-A) — the routing change itself is already installed.
struct Migration {
  std::uint64_t addr = 0;
  unsigned from = 0;
  unsigned to = 0;
};

/// Flat open-addressing map from address unit to overriding worker — the
/// load balancer's redistribution table.  Replaces the per-event
/// `unordered_map` probe on the route hot path: the table is tiny (top-k
/// addresses per round), so a linear-probe lookup is one or two contiguous
/// cache lines instead of a node-based bucket walk, and the common
/// balancer-inactive case is a single size check.  Deletion is backward-
/// shift (no tombstones), so probe chains never grow stale.  Capacity bytes
/// are charged to MemComponent::kAccessStats — before this table the
/// override map was invisible to MemStats entirely.
class OverrideTable {
 public:
  OverrideTable() = default;
  ~OverrideTable() { release(); }
  OverrideTable(const OverrideTable&) = delete;
  OverrideTable& operator=(const OverrideTable&) = delete;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  const std::uint32_t* find(std::uint64_t addr) const {
    if (size_ == 0) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = home(addr, mask);; i = (i + 1) & mask) {
      if (slots_[i].key == kEmptyKey) return nullptr;
      if (slots_[i].key == addr) return &slots_[i].worker;
    }
  }

  void insert(std::uint64_t addr, std::uint32_t worker) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = home(addr, mask);; i = (i + 1) & mask) {
      if (slots_[i].key == addr) {
        slots_[i].worker = worker;
        return;
      }
      if (slots_[i].key == kEmptyKey) {
        slots_[i] = {addr, worker};
        ++size_;
        return;
      }
    }
  }

  bool erase(std::uint64_t addr) {
    if (size_ == 0) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = home(addr, mask);
    for (;; i = (i + 1) & mask) {
      if (slots_[i].key == kEmptyKey) return false;
      if (slots_[i].key == addr) break;
    }
    // Backward-shift deletion: pull every displaced follower of the probe
    // chain one step back so lookups never need tombstones.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (slots_[j].key == kEmptyKey) break;
      const std::size_t h = home(slots_[j].key, mask);
      if (((j - h) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].key = kEmptyKey;
    --size_;
    return true;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& e : slots_)
      if (e.key != kEmptyKey) fn(e.key, e.worker);
  }

  /// Frees the backing storage (terminal release at max_rounds).
  void release() {
    if (slots_.empty()) return;
    MemStats::instance().add(
        MemComponent::kAccessStats,
        -static_cast<std::int64_t>(slots_.size() * sizeof(Entry)));
    slots_.clear();
    slots_.shrink_to_fit();
    size_ = 0;
  }

 private:
  // Addresses are canonical word units (byte >> 2), so the all-ones key is
  // unreachable and serves as the empty sentinel.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  struct Entry {
    std::uint64_t key = kEmptyKey;
    std::uint32_t worker = 0;
  };

  static std::size_t home(std::uint64_t addr, std::size_t mask) {
    return static_cast<std::size_t>(mix64(addr)) & mask;
  }

  void grow() {
    std::vector<Entry> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Entry{});
    MemStats::instance().add(
        MemComponent::kAccessStats,
        static_cast<std::int64_t>((cap - old.size()) * sizeof(Entry)));
    size_ = 0;
    for (const Entry& e : old)
      if (e.key != kEmptyKey) insert(e.key, e.worker);
  }

  std::vector<Entry> slots_;
  std::size_t size_ = 0;
};

/// Route stage: formula-1 address ownership, with the redistribution map
/// installed by the load balancer taking precedence.  All members are
/// touched only by the producer side (the load balancer is disabled for
/// multi-producer MT targets), so no locking is needed; the obs counters it
/// bumps are atomics and safe to snapshot concurrently.
class RouteStage {
 public:
  RouteStage(const ProfilerConfig& cfg, unsigned workers,
             obs::StageStats& stats)
      : cfg_(cfg), workers_(workers ? workers : 1), stats_(&stats) {}

  unsigned route(std::uint64_t addr) const {
    if (!overrides_.empty()) {
      if (const std::uint32_t* w = overrides_.find(addr)) return *w;
    }
    return base_route(addr);
  }

  /// Formula-1 ownership before any load-balancer override.
  unsigned base_route(std::uint64_t addr) const {
    return cfg_.modulo_routing ? modulo_worker(addr, workers_)
                               : hashed_worker(addr, workers_);
  }

  /// Routes a whole batch of canonicalized events in one pass — the scatter
  /// half of the batched hot path.  The override-table check and the routing-
  /// function branch are hoisted out of the loop: while the balancer is
  /// inactive (the common case, and always once max_rounds is exhausted)
  /// each event costs exactly one modulo/mix, no table probe.
  void route_batch(const AccessEvent* events, std::size_t count,
                   unsigned* dest) const {
    if (!overrides_.empty()) {
      for (std::size_t i = 0; i < count; ++i) dest[i] = route(events[i].addr);
    } else if (cfg_.modulo_routing) {
      for (std::size_t i = 0; i < count; ++i)
        dest[i] = modulo_worker(events[i].addr, workers_);
    } else {
      for (std::size_t i = 0; i < count; ++i)
        dest[i] = hashed_worker(events[i].addr, workers_);
    }
  }

  /// Samples one access into the load-balancer statistics (every
  /// 2^sample_shift events, Sec. IV-A).  The 64-bit mask matches the 64-bit
  /// tick, and the shift is clamped: 1 << s is undefined for s >= the
  /// operand width, and a 32-bit mask would alias every 2^32 ticks.
  void record_access(std::uint64_t addr) {
    const unsigned shift = std::min(cfg_.load_balance.sample_shift, 63u);
    const std::uint64_t mask = (std::uint64_t{1} << shift) - 1;
    if ((stat_tick_++ & mask) != 0) return;
    auto [it, inserted] = access_counts_.try_emplace(addr, 0);
    if (inserted)
      MemStats::instance().add(MemComponent::kAccessStats, kStatEntryBytes);
    ++it->second;
  }

  /// True when enough chunks were produced since the last evaluation.
  bool due(std::uint64_t chunks_produced) const {
    return chunks_produced - last_eval_chunks_ >=
           cfg_.load_balance.eval_interval_chunks;
  }

  /// Re-evaluates the distribution (Sec. IV-A): when the maximum worker
  /// load exceeds the imbalance threshold, the top-k hottest addresses are
  /// spread over the workers in ascending-load order.  Installs the new
  /// routing and returns the decisions for the driver to execute.
  std::vector<Migration> evaluate(std::uint64_t chunks_produced) {
    last_eval_chunks_ = chunks_produced;
    if (rounds_ >= cfg_.load_balance.max_rounds) {
      // No further rounds will run: the statistics table is dead weight and
      // the overrides would pin hot addresses to stale decisions (and their
      // memory) forever — migrate everything home and free both tables.
      release_stats();
      return release_overrides();
    }
    if (access_counts_.empty()) return evict_stale_overrides();

    std::vector<double> load(workers_, 0.0);
    for (const auto& [addr, count] : access_counts_)
      load[route(addr)] += static_cast<double>(count);
    double total = 0.0, max_load = 0.0;
    for (double l : load) {
      total += l;
      max_load = std::max(max_load, l);
    }
    const double mean = total / static_cast<double>(load.size());
    if (mean <= 0.0 ||
        max_load <= cfg_.load_balance.imbalance_threshold * mean) {
      decay_stats();
      return evict_stale_overrides();
    }

    // Top-k hottest addresses.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hot(
        access_counts_.begin(), access_counts_.end());
    const std::size_t k =
        std::min<std::size_t>(cfg_.load_balance.top_k, hot.size());
    std::partial_sort(
        hot.begin(), hot.begin() + static_cast<std::ptrdiff_t>(k), hot.end(),
        [](const auto& a, const auto& b) { return a.second > b.second; });

    // Spread them over workers in ascending-load order.  The target cursor
    // advances only on an actual move: a hot address already sitting on the
    // current target must not consume the slot, or the next hot address
    // skips the least-loaded worker and piles onto a busier one.
    std::vector<unsigned> order(workers_);
    for (unsigned i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) { return load[a] < load[b]; });

    std::vector<Migration> moves;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t addr = hot[i].first;
      const unsigned from = route(addr);
      const unsigned to = order[cursor % order.size()];
      if (from == to) continue;
      moves.push_back({addr, from, to});
      overrides_.insert(addr, to);
      ++cursor;
    }
    if (!moves.empty()) {
      ++rounds_;
      stats_->add_rounds(1);
      stats_->add_migrations(moves.size());
    }
    decay_stats();
    evict_stale_overrides(moves);
    return moves;
  }

  /// Live entries in the load-balancer statistics table (tests/observability).
  std::size_t stat_entries() const { return access_counts_.size(); }

  /// Live entries in the redistribution override table.
  std::size_t override_entries() const { return overrides_.size(); }

 private:
  static constexpr std::int64_t kStatEntryBytes = 32;

  /// Ages the access statistics after an evaluation round.  Without decay,
  /// phase-1 hot addresses dominate every later round and the table grows
  /// without bound over a long run; halving keeps recent traffic twice as
  /// influential as the previous round's and drops cold entries entirely.
  void decay_stats() {
    std::size_t erased = 0;
    for (auto it = access_counts_.begin(); it != access_counts_.end();) {
      it->second >>= 1;
      if (it->second == 0) {
        it = access_counts_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    if (erased != 0)
      MemStats::instance().add(
          MemComponent::kAccessStats,
          -static_cast<std::int64_t>(erased) * kStatEntryBytes);
  }

  /// Drops the whole statistics table (terminal: max_rounds reached).
  void release_stats() {
    if (access_counts_.empty()) return;
    MemStats::instance().add(
        MemComponent::kAccessStats,
        -static_cast<std::int64_t>(access_counts_.size()) * kStatEntryBytes);
    access_counts_.clear();
  }

  /// Evicts overrides whose statistics decayed away: the address is no
  /// longer hot, so keeping it pinned to a past decision only grows the
  /// table.  Eviction is itself a migration (back to the formula-1 route) —
  /// silently re-routing would strand the signature state at the override
  /// target and break serial==parallel equivalence.  `fresh` excludes the
  /// moves installed this very round, whose statistics were just halved.
  std::vector<Migration> evict_stale_overrides() {
    std::vector<Migration> none;
    evict_stale_overrides(none);
    return none;
  }

  void evict_stale_overrides(std::vector<Migration>& moves) {
    if (overrides_.empty()) return;
    const std::size_t fresh = moves.size();
    std::vector<std::uint64_t> stale;
    overrides_.for_each([&](std::uint64_t addr, std::uint32_t) {
      if (access_counts_.find(addr) != access_counts_.end()) return;
      for (std::size_t i = 0; i < fresh; ++i)
        if (moves[i].addr == addr) return;
      stale.push_back(addr);
    });
    for (const std::uint64_t addr : stale) {
      const std::uint32_t* cur = overrides_.find(addr);
      const unsigned from = *cur;
      const unsigned home = base_route(addr);
      overrides_.erase(addr);
      if (from != home) {
        moves.push_back({addr, from, home});
        stats_->add_migrations(1);
      }
    }
    if (overrides_.empty()) overrides_.release();
  }

  /// Terminal release (max_rounds reached): migrates every overridden
  /// address back to its formula-1 owner and frees the table — route() is a
  /// plain hash from here on and the capacity bytes return to MemStats.
  std::vector<Migration> release_overrides() {
    std::vector<Migration> moves;
    if (overrides_.empty()) return moves;
    overrides_.for_each([&](std::uint64_t addr, std::uint32_t from) {
      const unsigned home = base_route(addr);
      if (from != home) moves.push_back({addr, from, home});
    });
    // The moves carry the pre-release routing in `from`; installing the
    // release before the driver executes them is safe because hand-off
    // chunks ride the same FIFOs as the data routed afterwards.
    overrides_.release();
    stats_->add_migrations(moves.size());
    return moves;
  }

  const ProfilerConfig cfg_;
  const unsigned workers_;
  obs::StageStats* stats_;
  OverrideTable overrides_;
  std::unordered_map<std::uint64_t, std::uint64_t> access_counts_;
  std::uint64_t stat_tick_ = 0;
  std::uint64_t last_eval_chunks_ = 0;
  unsigned rounds_ = 0;
};

/// Detect stage: one Algorithm 1 instance (DetectorCore) plus the
/// worker-local dependence map.  Each call is one chunk/batch of owned
/// accesses in program order; the tight loop is fully monomorphized.
template <AccessStore Store>
class DetectStage {
 public:
  DetectStage(Store sig_read, Store sig_write, obs::StageStats& stats,
              bool batched = true)
      : core_(std::move(sig_read), std::move(sig_write)),
        stats_(&stats),
        batched_(batched) {}

  void process(const AccessEvent* events, std::size_t count) {
    // Both clock domains (see obs/stage_stats.hpp): wall busy_ns pairs with
    // the wall idle_ns for consistent busy/idle ratios; thread-CPU cpu_ns
    // excludes preemption and feeds the simulated parallel time.
    const std::uint64_t w0 = WallTimer::now();
    const std::uint64_t c0 = ThreadCpuTimer::now();
    if (batched_) {
      stats_->add_prefetches(core_.process_batch(events, count, deps_));
      stats_->add_kernel_batches(1);
    } else {
      for (std::size_t i = 0; i < count; ++i) core_.process(events[i], deps_);
    }
    stats_->add_cpu_ns(ThreadCpuTimer::now() - c0);
    stats_->add_busy_ns(WallTimer::now() - w0);
    stats_->add_events(count);
    stats_->add_chunks(1);
  }

  DetectorCore<Store>& core() { return core_; }
  DepMap& deps() { return deps_; }
  obs::StageStats& stats() { return *stats_; }

  /// Publishes the store's residency (leaf pages of the paged backends)
  /// into this stage's counters.  Runs once, at finish(), so the counter
  /// stays monotone for concurrent snapshots; non-paged backends have no
  /// page_count() and publish nothing.
  void publish_residency() {
    const auto pages = [](const auto& store) -> std::uint64_t {
      if constexpr (requires { store.page_count(); })
        return store.page_count();
      else
        return 0;
    };
    const std::uint64_t resident =
        pages(core_.read_signature()) + pages(core_.write_signature());
    if (resident != 0) stats_->add_resident_pages(resident);
  }

 private:
  DetectorCore<Store> core_;
  DepMap deps_;
  obs::StageStats* stats_;
  bool batched_;
};

/// Merge stage: folds one worker-local map into the global map.  "Merging
/// incurs only minor overhead since the local maps are free of duplicates";
/// the stage's busy time is the number the merge_factor bench validates.
class MergeStage {
 public:
  explicit MergeStage(obs::StageStats& stats) : stats_(&stats) {}

  void fold(DepMap& global, DepMap& local) {
    const std::uint64_t w0 = WallTimer::now();
    const std::uint64_t c0 = ThreadCpuTimer::now();
    stats_->add_events(local.size());
    // Transfer merge: the worker-local map is being retired, so entries move
    // rather than duplicate — peak kDepMaps stays at the live entry count
    // instead of double-counting every local entry for the merge window.
    global.merge_from(local);
    stats_->add_cpu_ns(ThreadCpuTimer::now() - c0);
    stats_->add_busy_ns(WallTimer::now() - w0);
    stats_->add_chunks(1);
  }

 private:
  obs::StageStats* stats_;
};

/// Publishes the Sec. V-B race triage of the merged global map into the
/// produce-stage counters.  Runs once, at finish() after the global merge,
/// so the counters stay monotone for concurrent snapshots; both profiler
/// drivers call it for MT targets, and find_races() applies the identical
/// classification, so the snapshot counters and the rendered race report
/// agree by construction.
inline void publish_race_counters(const DepMap& global,
                                  obs::StageStats& produce) {
  std::uint64_t confirmed = 0, unconfirmed = 0, suppressed = 0;
  for (const auto& [key, info] : global) {
    switch (classify_race_candidate(key, info)) {
      case RaceCandidate::kConfirmed: ++confirmed; break;
      case RaceCandidate::kUnconfirmed: ++unconfirmed; break;
      case RaceCandidate::kSuppressedByLock: ++suppressed; break;
      case RaceCandidate::kNone: break;
    }
  }
  produce.add_races_confirmed(confirmed);
  produce.add_races_unconfirmed(unconfirmed);
  produce.add_races_lock_suppressed(suppressed);
}

/// Derives the classic ProfilerStats fields from a pipeline snapshot — the
/// one place that defines their meaning, used by both profilers.
inline void fill_stats_from(obs::PipelineSnapshot snap, ProfilerStats& st) {
  if (const auto* p = snap.find("produce")) {
    st.events = p->events;
    st.chunks = p->chunks;
  }
  if (const auto* r = snap.find("route")) {
    st.redistribution_rounds = static_cast<unsigned>(r->rounds);
    st.migrated_addresses = r->migrations;
  }
  for (const auto& s : snap.stages) {
    if (s.stage.rfind("detect", 0) == 0) {
      // CPU seconds, not wall: worker_busy_sec is the simulated-parallel-time
      // input, so it must exclude preemption and parked sleep (DESIGN.md).
      st.worker_busy_sec.push_back(s.cpu_sec());
      st.worker_events.push_back(s.events);
    }
  }
  if (const auto* m = snap.find("merge")) st.merge_sec = m->busy_sec();
  st.workers = static_cast<unsigned>(st.worker_busy_sec.size());
  st.stages = std::move(snap);
}

}  // namespace depprof
