// Parallel profiler — the Fig. 2 pipeline.
//
// The instrumented target thread(s) act as producers: accesses are buffered
// into chunks and pushed to the queue of the worker that owns the address
// (formula 1; a redistribution map installed by the load balancer takes
// precedence).  Each worker runs Algorithm 1 on its own pair of signatures
// and stores dependences in a thread-local map; local maps are merged into
// the global map at the end, which "incurs only minor overhead since the
// local maps are free of duplicates".
//
// Multi-threaded targets (Sec. V): every target thread is a producer with
// its own pending chunks, worker queues become MPMC, accesses carry global
// timestamps, and accesses inside explicit lock regions are flushed at
// unlock so that the access and its push stay atomic (Fig. 4).

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "common/timer.hpp"
#include "core/chunk.hpp"
#include "core/detector.hpp"
#include "core/profiler.hpp"
#include "sig/perfect_signature.hpp"
#include "sig/signature.hpp"

namespace depprof {
namespace {

constexpr std::size_t kMaxProducers = 256;

/// One-shot handoff cell for migrating an address's signature state from its
/// old owner to its new owner (Sec. IV-A: "If an address is moved to another
/// thread, its signature state has to be moved as well").
template <typename Slot>
struct Mailbox {
  std::atomic<std::uint32_t> ready{0};
  bool has_read = false;
  bool has_write = false;
  Slot read_slot{};
  Slot write_slot{};
};

template <typename Store, typename Slot>
class ParallelProfiler final : public IProfiler {
 public:
  ParallelProfiler(const ProfilerConfig& cfg, std::vector<Store> read_sigs,
                   std::vector<Store> write_sigs, std::size_t signature_bytes)
      : cfg_(cfg),
        chunk_fill_(std::min<std::size_t>(cfg.chunk_size ? cfg.chunk_size : 1,
                                          Chunk::kCapacity)),
        signature_bytes_(signature_bytes),
        lb_enabled_(cfg.load_balance.enabled),
        mailboxes_(kMailboxCount),
        mailbox_free_(kMailboxCount) {
    const unsigned w = cfg_.workers ? cfg_.workers : 1;
    // Multiple producers (MT targets) need multi-producer queues regardless
    // of the configured kind; the mutex queue supports both multiplicities.
    QueueKind qk = cfg_.queue;
    if (cfg_.mt_targets && qk == QueueKind::kLockFreeSpsc)
      qk = QueueKind::kLockFreeMpmc;
    for (unsigned i = 0; i < w; ++i) {
      workers_.push_back(std::make_unique<Worker>(std::move(read_sigs[i]),
                                                  std::move(write_sigs[i])));
      queues_.push_back(make_queue<Chunk*>(qk, cfg_.queue_capacity));
    }
    for (std::uint32_t i = 0; i < kMailboxCount; ++i)
      (void)mailbox_free_.try_push(i);
    threads_.reserve(w);
    for (unsigned i = 0; i < w; ++i)
      threads_.emplace_back([this, i] { worker_main(i); });
  }

  ~ParallelProfiler() override {
    // Dropping the profiler without finish() must still terminate the
    // workers: they spin on their queues until a stop sentinel arrives.
    if (!finished_) finish();
  }

  void on_access(const AccessEvent& ev) override {
    events_.fetch_add(1, std::memory_order_relaxed);
    // Canonicalize to the word-granular address unit once, here; routing,
    // statistics, migration, and the detectors all operate on units.
    AccessEvent unit = ev;
    unit.addr = word_addr(ev.addr);
    Producer& prod = producer_for(unit.tid);
    const unsigned w = route(unit.addr);
    Chunk*& pending = prod.pending[w];
    if (pending == nullptr) pending = pool_.acquire();
    pending->events[pending->count++] = unit;
    const bool lock_region = (unit.flags & kInLockRegion) != 0;
    if (pending->count >= chunk_fill_ || lock_region) push_chunk(prod, w);

    if (lb_enabled_ && !cfg_.mt_targets) record_access_stat(unit.addr, prod);
  }

  void on_unlock(std::uint16_t tid) override {
    Producer& prod = producer_for(tid);
    for (unsigned w = 0; w < workers_.size(); ++w)
      if (prod.pending[w] != nullptr && prod.pending[w]->count > 0)
        push_chunk(prod, w);
  }

  void finish() override {
    if (finished_) return;
    // Flush every producer's partial chunks, then send stop sentinels.
    for (auto& p : producers_) {
      if (!p) continue;
      for (unsigned w = 0; w < workers_.size(); ++w)
        if (p->pending[w] != nullptr && p->pending[w]->count > 0)
          push_chunk(*p, w);
    }
    for (unsigned w = 0; w < workers_.size(); ++w) {
      Chunk* stop = pool_.acquire();
      stop->kind = Chunk::Kind::kStop;
      enqueue(w, stop);
    }
    join_workers();
    WallTimer merge_timer;
    for (auto& worker : workers_) global_.merge(worker->deps);
    merge_sec_ = merge_timer.elapsed();
    finished_ = true;
  }

  const DepMap& dependences() const override { return global_; }

  DepMap take_dependences() override { return std::move(global_); }

  ProfilerStats stats() const override {
    ProfilerStats st;
    st.events = events_.load(std::memory_order_relaxed);
    st.chunks = chunks_produced_;
    for (const auto& worker : workers_) {
      st.worker_busy_sec.push_back(static_cast<double>(worker->busy_ns) * 1e-9);
      st.worker_events.push_back(worker->events);
    }
    st.merge_sec = merge_sec_;
    st.redistribution_rounds = redistribution_rounds_;
    st.migrated_addresses = migrated_;
    st.signature_bytes = signature_bytes_;
    return st;
  }

 private:
  static constexpr std::uint32_t kMailboxCount = 64;

  struct Producer {
    std::vector<Chunk*> pending;
    explicit Producer(std::size_t workers) : pending(workers, nullptr) {}
  };

  struct Worker {
    DepDetector<Store, Slot> detector;
    DepMap deps;
    std::uint64_t busy_ns = 0;
    std::uint64_t events = 0;
    Worker(Store r, Store w) : detector(std::move(r), std::move(w)) {}
  };

  Producer& producer_for(std::uint16_t tid) {
    const std::size_t idx = tid < kMaxProducers ? tid : kMaxProducers - 1;
    Producer* p = producers_[idx].get();
    if (p != nullptr) return *p;
    std::lock_guard lock(producer_mu_);
    if (!producers_[idx])
      producers_[idx] = std::make_unique<Producer>(workers_.size());
    return *producers_[idx];
  }

  unsigned route(std::uint64_t addr) const {
    if (!redistribution_.empty()) {
      auto it = redistribution_.find(addr);
      if (it != redistribution_.end()) return it->second;
    }
    const auto w = static_cast<std::uint32_t>(workers_.size());
    return cfg_.modulo_routing ? modulo_worker(addr, w) : hashed_worker(addr, w);
  }

  void push_chunk(Producer& prod, unsigned w) {
    Chunk* c = prod.pending[w];
    prod.pending[w] = nullptr;
    enqueue(w, c);
    ++chunks_produced_;
    if (lb_enabled_ && !cfg_.mt_targets &&
        chunks_produced_ - last_eval_chunks_ >= cfg_.load_balance.eval_interval_chunks)
      evaluate_balance();
  }

  void enqueue(unsigned w, Chunk* c) {
    while (!queues_[w]->try_push(c)) std::this_thread::yield();
  }

  // --- load balancing (Sec. IV-A) -------------------------------------

  void record_access_stat(std::uint64_t addr, Producer&) {
    if ((stat_tick_++ & ((1u << cfg_.load_balance.sample_shift) - 1)) != 0) return;
    auto [it, inserted] = access_counts_.try_emplace(addr, 0);
    if (inserted)
      MemStats::instance().add(MemComponent::kAccessStats, kStatEntryBytes);
    ++it->second;
  }

  void evaluate_balance() {
    last_eval_chunks_ = chunks_produced_;
    if (redistribution_rounds_ >= cfg_.load_balance.max_rounds) return;
    if (access_counts_.empty()) return;

    std::vector<double> load(workers_.size(), 0.0);
    for (const auto& [addr, count] : access_counts_)
      load[route(addr)] += static_cast<double>(count);
    double total = 0.0, max_load = 0.0;
    for (double l : load) {
      total += l;
      max_load = std::max(max_load, l);
    }
    const double mean = total / static_cast<double>(load.size());
    if (mean <= 0.0 || max_load <= cfg_.load_balance.imbalance_threshold * mean)
      return;

    // Top-k hottest addresses.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hot(access_counts_.begin(),
                                                             access_counts_.end());
    const std::size_t k = std::min<std::size_t>(cfg_.load_balance.top_k, hot.size());
    std::partial_sort(hot.begin(), hot.begin() + static_cast<std::ptrdiff_t>(k),
                      hot.end(),
                      [](const auto& a, const auto& b) { return a.second > b.second; });

    // Spread them over workers in ascending-load order.
    std::vector<unsigned> order(workers_.size());
    for (unsigned i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](unsigned a, unsigned b) { return load[a] < load[b]; });

    bool moved_any = false;
    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t addr = hot[i].first;
      const unsigned from = route(addr);
      const unsigned to = order[i % order.size()];
      if (from == to) continue;
      migrate(addr, from, to);
      moved_any = true;
    }
    if (moved_any) ++redistribution_rounds_;
  }

  void migrate(std::uint64_t addr, unsigned from, unsigned to) {
    // The single producer orchestrates; FIFO order makes the handoff sound
    // (see chunk.hpp).  Only reachable with sequential targets (producer 0).
    Producer& prod = producer_for(0);
    if (prod.pending[from] != nullptr && prod.pending[from]->count > 0)
      push_chunk(prod, from);

    std::uint32_t mb = 0;
    while (!mailbox_free_.try_pop(mb)) std::this_thread::yield();
    mailboxes_[mb].ready.store(0, std::memory_order_relaxed);

    Chunk* out = pool_.acquire();
    out->kind = Chunk::Kind::kMigrateOut;
    out->addr = addr;
    out->payload = mb;
    enqueue(from, out);

    Chunk* in = pool_.acquire();
    in->kind = Chunk::Kind::kAdopt;
    in->addr = addr;
    in->payload = mb;
    enqueue(to, in);

    redistribution_[addr] = to;
    ++migrated_;
  }

  // --- worker side ------------------------------------------------------

  void worker_main(unsigned w) {
    Worker& me = *workers_[w];
    for (;;) {
      Chunk* c = nullptr;
      if (!queues_[w]->try_pop(c)) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t t0 = ThreadCpuTimer::now();
      bool stop = false;
      switch (c->kind) {
        case Chunk::Kind::kData:
          for (std::uint32_t i = 0; i < c->count; ++i)
            me.detector.process(c->events[i], me.deps);
          me.events += c->count;
          pool_.release(c);
          break;
        case Chunk::Kind::kStop:
          pool_.release(c);
          stop = true;
          break;
        case Chunk::Kind::kMigrateOut: {
          auto st = me.detector.extract_state(c->addr);
          Mailbox<Slot>& box = mailboxes_[c->payload];
          box.has_read = st.has_read;
          box.has_write = st.has_write;
          box.read_slot = st.read_slot;
          box.write_slot = st.write_slot;
          box.ready.store(1, std::memory_order_release);
          pool_.release(c);
          break;
        }
        case Chunk::Kind::kAdopt: {
          Mailbox<Slot>& box = mailboxes_[c->payload];
          while (box.ready.load(std::memory_order_acquire) == 0)
            std::this_thread::yield();
          typename DepDetector<Store, Slot>::AddrState st;
          st.has_read = box.has_read;
          st.has_write = box.has_write;
          st.read_slot = box.read_slot;
          st.write_slot = box.write_slot;
          me.detector.adopt_state(c->addr, st);
          (void)mailbox_free_.try_push(c->payload);
          pool_.release(c);
          break;
        }
      }
      me.busy_ns += ThreadCpuTimer::now() - t0;
      if (stop) return;
    }
  }

  void join_workers() {
    for (auto& t : threads_)
      if (t.joinable()) t.join();
  }

  static constexpr std::int64_t kStatEntryBytes = 32;

  ProfilerConfig cfg_;
  const std::size_t chunk_fill_;
  const std::size_t signature_bytes_;
  const bool lb_enabled_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<ConcurrentQueue<Chunk*>>> queues_;
  std::vector<std::thread> threads_;
  ChunkPool pool_;

  std::array<std::unique_ptr<Producer>, kMaxProducers> producers_{};
  std::mutex producer_mu_;

  std::vector<Mailbox<Slot>> mailboxes_;
  MpmcQueue<std::uint32_t> mailbox_free_;

  std::unordered_map<std::uint64_t, std::uint32_t> redistribution_;
  std::unordered_map<std::uint64_t, std::uint64_t> access_counts_;
  std::uint64_t stat_tick_ = 0;
  std::uint64_t chunks_produced_ = 0;
  std::uint64_t last_eval_chunks_ = 0;
  unsigned redistribution_rounds_ = 0;
  std::uint64_t migrated_ = 0;

  DepMap global_;
  std::atomic<std::uint64_t> events_{0};
  double merge_sec_ = 0.0;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<IProfiler> make_parallel_profiler(const ProfilerConfig& config) {
  const unsigned w = config.workers ? config.workers : 1;
  auto build = [&]<typename Slot>() -> std::unique_ptr<IProfiler> {
    switch (config.storage) {
      case StorageKind::kSignature: {
        std::vector<Signature<Slot>> reads, writes;
        std::size_t bytes = 0;
        for (unsigned i = 0; i < w; ++i) {
          reads.emplace_back(config.slots, config.sig_hash);
          writes.emplace_back(config.slots, config.sig_hash);
          bytes += reads.back().bytes() + writes.back().bytes();
        }
        return std::make_unique<ParallelProfiler<Signature<Slot>, Slot>>(
            config, std::move(reads), std::move(writes), bytes);
      }
      case StorageKind::kPerfect: {
        std::vector<PerfectSignature<Slot>> reads(w), writes(w);
        return std::make_unique<ParallelProfiler<PerfectSignature<Slot>, Slot>>(
            config, std::move(reads), std::move(writes), 0);
      }
      default:
        // The shadow-memory and hash-table baselines are serial-only
        // (they exist for the Sec. III-B comparisons).
        return nullptr;
    }
  };
  return config.mt_targets ? build.template operator()<MtSlot>()
                           : build.template operator()<SeqSlot>();
}

}  // namespace depprof
