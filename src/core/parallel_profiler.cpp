// Parallel profiler — the Fig. 2 pipeline as a driver over the shared
// stage components (core/pipeline.hpp).
//
// The instrumented target thread(s) act as producers: accesses are staged
// into per-worker chunks (ProduceStage) and pushed to the queue of the
// worker that owns the address (RouteStage: formula 1, with the load
// balancer's redistribution map taking precedence).  Each worker runs one
// DetectStage — Algorithm 1 on its own pair of signatures with a
// thread-local dependence map; the merge stage folds the local maps into
// the global map at the end, which "incurs only minor overhead since the
// local maps are free of duplicates".
//
// Multi-threaded targets (Sec. V): every target thread is a producer with
// its own staged chunks, worker queues become MPMC, accesses carry global
// timestamps, and accesses inside explicit lock regions are flushed at
// unlock so that the access and its push stay atomic (Fig. 4).
//
// Every storage backend runs here: the factory resolves StorageKind to a
// concrete store once (core/store_factory.hpp), and the worker loop only
// switches on the chunk kind — never on the backend.
//
// Waiting is a policy (queue/wait_strategy.hpp): the three blocking sites —
// idle workers, producers facing a full queue, and the migration-mailbox
// handoff — run the configured spin/yield/park strategy instead of spinning
// unboundedly, with per-site backpressure accounting in the obs counters
// and wake hooks so that parked threads are woken by whoever unblocks them
// (including the stop sentinels at shutdown).

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/hash.hpp"
#include "common/huge_alloc.hpp"
#include "common/timer.hpp"
#include "core/chunk.hpp"
#include "core/pipeline.hpp"
#include "core/profiler.hpp"
#include "core/store_factory.hpp"
#include "queue/wait_strategy.hpp"
#include "sched/sched.hpp"

namespace depprof {
namespace {

/// Process-unique profiler instance id, used to invalidate the thread-local
/// producer-stage caches of earlier (possibly freed) profiler instances.
std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Chunk-pool population plan.  Auto sizing covers the pipeline's maximum
/// in-flight census — per worker: a full queue (capacity rounds up to a
/// power of two) + one chunk being processed + one staged in the producer —
/// plus slack for the stop sentinels and a migration pair in flight.  With
/// that population a sealed acquire can always be satisfied by a future
/// release, so blocking instead of allocating cannot deadlock.
std::size_t planned_pool_chunks(const ProfilerConfig& cfg, unsigned workers) {
  if (cfg.pool_chunks != 0) {
    // Liveness floor for an explicit population.  The producer alone can
    // pin one pending (staged, part-full) chunk per worker plus the one it
    // is acquiring; every other chunk in flight (queued, being processed,
    // migration pair) is eventually released by a live worker.  Below
    // workers + 2 a sealed pool can deadlock: with pool_chunks = 1 and two
    // workers the producer stages its only chunk for worker 0, then blocks
    // forever acquiring one for worker 1 — the pending never flushes while
    // the producer is blocked, and the workers have nothing to recycle.
    // Sampling makes the quiescent-producer window routine (a skipped unit
    // produces nothing), so the floor is enforced rather than documented.
    const std::size_t floor = static_cast<std::size_t>(workers) + 2;
    return std::max(cfg.pool_chunks, floor);
  }
  const std::size_t qcap =
      SpscQueue<Chunk*>::round_up_pow2(cfg.queue_capacity);
  return workers * (qcap + 2) + 8;
}

/// One-shot handoff cell for migrating an address's signature state from its
/// old owner to its new owner (Sec. IV-A: "If an address is moved to another
/// thread, its signature state has to be moved as well").
template <typename Slot>
struct Mailbox {
  std::atomic<std::uint32_t> ready{0};
  bool has_read = false;
  bool has_write = false;
  Slot read_slot{};
  Slot write_slot{};
};

template <AccessStore Store>
class ParallelProfiler final : public IProfiler {
  using Slot = typename Store::slot_type;

 public:
  ParallelProfiler(const ProfilerConfig& cfg, std::vector<Store> read_sigs,
                   std::vector<Store> write_sigs, std::size_t signature_bytes,
                   std::uint64_t hugepage_baseline)
      : cfg_(cfg),
        hugepage_baseline_(hugepage_baseline),
        chunk_fill_(std::min<std::size_t>(cfg.chunk_size ? cfg.chunk_size : 1,
                                          Chunk::kCapacity)),
        signature_bytes_(signature_bytes),
        lb_enabled_(cfg.load_balance.enabled),
        wait_(cfg.wait),
        obs_(cfg.workers ? cfg.workers : 1),
        router_(cfg, obs_.workers(), obs_.route()),
        merge_(obs_.merge()),
        // The whole chunk population is allocated here, before the target
        // starts running; sequential targets seal the pool so the steady
        // state never allocates (see ChunkPool).  MT targets have an
        // unbounded producer count, so their pool may still grow.
        pool_(std::max<std::size_t>(
                  256, planned_pool_chunks(cfg, obs_.workers())),
              planned_pool_chunks(cfg, obs_.workers()),
              /*sealed=*/!cfg.mt_targets, cfg.wait),
        gates_(std::make_unique<QueueGates[]>(obs_.workers())),
        mailboxes_(kMailboxCount),
        mailbox_free_(kMailboxCount) {
    const unsigned w = obs_.workers();
    // Under a schedule-exploration session, publish the thread census first
    // so no grant is made before every pipeline thread has attached — the
    // first scheduling decisions must not depend on spawn timing.  The
    // constructing thread attaches LAST (below), after the workers are
    // spawned: an attached thread parks at its next schedule point until
    // the census is met, and this thread is the one doing the spawning.
    sched::expect_threads(static_cast<std::size_t>(w) + 1);
    // Multiple producers (MT targets) need multi-producer queues regardless
    // of the configured kind; the mutex queue supports both multiplicities.
    QueueKind qk = cfg_.queue;
    if (cfg_.mt_targets && qk == QueueKind::kLockFreeSpsc)
      qk = QueueKind::kLockFreeMpmc;
    detectors_.reserve(w);
    for (unsigned i = 0; i < w; ++i) {
      detectors_.push_back(std::make_unique<DetectStage<Store>>(
          std::move(read_sigs[i]), std::move(write_sigs[i]), obs_.detect(i),
          cfg_.batched_detect));
      queues_.push_back(make_queue<Chunk*>(qk, cfg_.queue_capacity));
    }
    for (std::uint32_t i = 0; i < kMailboxCount; ++i)
      (void)mailbox_free_.try_push(i);
    threads_.reserve(w);
    for (unsigned i = 0; i < w; ++i)
      threads_.emplace_back([this, i] { worker_main(i); });
    // The constructing thread is the pipeline's producer: it joins the
    // schedule as "main" and is serialized from its first hand-off on.
    sched::attach("main");
  }

  ~ParallelProfiler() override {
    // Dropping the profiler without finish() must still terminate the
    // workers: the stop sentinels wake any parked worker via the gates.
    if (!finished_) finish();
  }

  void on_access(const AccessEvent& ev) override { on_batch(&ev, 1); }

  void on_batch(const AccessEvent* events, std::size_t count) override {
    if (count == 0) return;
    obs_.produce().add_events(count);
    obs_.route().add_events(count);
    ProduceStage& prod = producer_for_caller();
    while (count > 0) {
      const std::size_t n = std::min(count, kScatterBatch);
      scatter(prod, events, nullptr, n);
      events += n;
      count -= n;
    }
  }

  void on_batch_rle(const AccessEvent* events, const std::uint32_t* reps,
                    std::size_t count) override {
    if (count == 0) return;
    std::uint64_t logical = 0;
    for (std::size_t i = 0; i < count; ++i) logical += reps[i];
    // Produce/route report the *logical* access count — the stream the
    // target executed — while events_deduped says how many of those rode an
    // existing record instead of their own.
    obs_.produce().add_events(logical);
    obs_.route().add_events(logical);
    obs_.produce().add_events_deduped(logical - count);
    ProduceStage& prod = producer_for_caller();
    while (count > 0) {
      const std::size_t n = std::min(count, kScatterBatch);
      scatter(prod, events, reps, n);
      events += n;
      reps += n;
      count -= n;
    }
  }

  void on_unlock(std::uint16_t) override {
    // The unlocking thread flushes its own staged chunks (Fig. 4).
    ProduceStage& prod = producer_for_caller();
    for (unsigned w = 0; w < obs_.workers(); ++w)
      if (Chunk* c = prod.take(w)) push_chunk(c, w);
  }

  void finish() override {
    if (finished_) return;
    // Flush every producer's partial chunks, then send stop sentinels.  By
    // contract all target threads have quiesced before finish(), so the
    // registry lock is uncontended and the pending chunks are visible.
    {
      std::lock_guard lock(producer_mu_);
      for (const auto& p : producer_owned_)
        for (unsigned w = 0; w < obs_.workers(); ++w)
          if (Chunk* c = p->take(w)) push_chunk(c, w);
    }
    for (unsigned w = 0; w < obs_.workers(); ++w) {
      Chunk* stop = pool_.acquire();
      stop->kind = Chunk::Kind::kStop;
      enqueue(w, stop);  // enqueue's wake hook rouses a parked worker
    }
    join_workers();
    // Footprint counters, published once the workers have quiesced: each
    // detect stage's resident leaf pages (paged backends), and the run's
    // huge-allocation fallbacks as a delta against the construction-time
    // process total.
    for (auto& d : detectors_) d->publish_residency();
    obs_.produce().add_hugepage_fallbacks(huge::fallback_count() -
                                          hugepage_baseline_);
    for (auto& d : detectors_) merge_.fold(global_, d->deps());
    // MT targets only: triage the merged map for Sec. V-B race counters
    // once the workers' maps are folded (slots carry timestamps then).
    if constexpr (std::is_same_v<typename Store::slot_type, MtSlot>)
      publish_race_counters(global_, obs_.produce());
    // A sealed pool that had to wait for recycled chunks was a producer
    // stall: fold it into the produce-stage backpressure counter.
    obs_.produce().add_stalls(pool_.acquire_stalls());
    finished_ = true;
  }

  const DepMap& dependences() const override { return global_; }

  DepMap take_dependences() override { return std::move(global_); }

  ProfilerStats stats() const override {
    ProfilerStats st;
    st.signature_bytes = signature_bytes_;
    fill_stats_from(obs_.snapshot(), st);
    return st;
  }

  std::uint64_t profiling_cost_ns() const override {
    return obs_.total_cpu_ns();
  }

  void on_sampling_stats(std::uint64_t events_sampled_out,
                         std::uint64_t bursts,
                         std::uint64_t overhead_ppm) override {
    obs_.produce().add_events_sampled_out(events_sampled_out);
    obs_.produce().add_bursts(bursts);
    obs_.produce().raise_sampled_overhead_ppm(overhead_ppm);
  }

 private:
  static constexpr std::uint32_t kMailboxCount = 64;
  /// Scatter granularity: one routing pass + one counting sort per this many
  /// events.  Matches the instrumentation flush batch; the scratch buffers
  /// (two event arrays + destinations) stay comfortably on the stack, which
  /// keeps the scatter path reentrant for concurrent MT producers.
  static constexpr std::size_t kScatterBatch = 256;
  /// Counting-sort scratch is stack-sized for this many workers; a (absurd)
  /// wider pipeline falls back to the per-event path.
  static constexpr unsigned kMaxScatterWorkers = 128;

  /// The batched produce/route half of the hot path: canonicalize and route
  /// the whole sub-batch once (route_batch hoists the override-table and
  /// hash-kind branches), then counting-sort the events into contiguous
  /// per-worker runs appended chunk-wise.  `reps` (nullable) carries the
  /// front-end RLE run lengths: a run is routed and staged once — packed
  /// with its rep count, or expanded at staging when packing is off.
  /// Batches containing lock-region accesses keep the per-event path: those
  /// must push the moment they are staged so access + push stay atomic
  /// (Fig. 4).
  void scatter(ProduceStage& prod, const AccessEvent* events,
               const std::uint32_t* reps, std::size_t n) {
    std::array<AccessEvent, kScatterBatch> unit;
    std::array<unsigned, kScatterBatch> dest;
    bool lock_region = false;
    bool has_marker = false;
    for (std::size_t i = 0; i < n; ++i) {
      // Canonicalize to the word-granular address unit once, here; routing,
      // statistics, migration, and the detectors all operate on units.
      unit[i] = events[i];
      unit[i].addr = word_addr(events[i].addr);
      lock_region |= (unit[i].flags & kInLockRegion) != 0;
      has_marker |= unit[i].is_burst_mark();
    }
    const bool sample = lb_enabled_ && !cfg_.mt_targets;
    const unsigned W = obs_.workers();
    if (lock_region || has_marker || W > kMaxScatterWorkers) {
      // Per-event fallback.  Routing is re-consulted per event because a
      // push below can trigger a rebalance that changes it mid-batch.  With
      // packing on, staging must stay packed: a worker's pending chunk may
      // already hold wire records, and a raw append would corrupt it.
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t rep = reps != nullptr ? reps[i] : 1;
        if (unit[i].is_burst_mark()) {
          // A sampling gap cuts the WHOLE stream, so the marker is
          // broadcast: every worker's signatures hold addresses whose
          // pre-gap accesses must not pair with post-gap ones.  Staged
          // in-order into each worker's pending chunk, the per-worker FIFO
          // delivers it after all pre-gap and before all post-gap events
          // of that worker — exactly the serial clearing point.  (The
          // bursts counter is fed by on_sampling_stats, not here: the gate
          // lives in the runtime, and counting markers again would double
          // the stat on live runs.)
          for (unsigned w = 0; w < W; ++w) {
            if (cfg_.pack) {
              const std::uint32_t one = 1;
              prod.add_run_packed(w, &unit[i], &one, 1, chunk_fill_,
                                  obs_.produce(),
                                  [this](Chunk* c, unsigned worker) {
                                    push_chunk(c, worker);
                                  });
            } else if (Chunk* ready = prod.add(w, unit[i], chunk_fill_)) {
              push_chunk(ready, w);
            }
          }
          continue;
        }
        const unsigned w = router_.route(unit[i].addr);
        if (cfg_.pack) {
          prod.add_run_packed(w, &unit[i], &rep, 1, chunk_fill_,
                              obs_.produce(),
                              [this](Chunk* c, unsigned worker) {
                                push_chunk(c, worker);
                              });
          // Lock-region accesses must be pushed the moment they are staged
          // (Fig. 4), even from a part-full chunk.
          if ((unit[i].flags & kInLockRegion) != 0)
            if (Chunk* ready = prod.take(w)) push_chunk(ready, w);
        } else {
          // Runs expanded — lock-region events are never deduped, so reps
          // beyond 1 only reach here via trace replay.
          for (std::uint32_t r = 0; r < rep; ++r) {
            Chunk* ready = prod.add(w, unit[i], chunk_fill_);
            if (ready == nullptr && (unit[i].flags & kInLockRegion) != 0)
              ready = prod.take(w);
            if (ready != nullptr) push_chunk(ready, w);
          }
        }
        if (sample) router_.record_access(unit[i].addr);
      }
      return;
    }
    router_.route_batch(unit.data(), n, dest.data());
    if (sample)
      for (std::size_t i = 0; i < n; ++i) router_.record_access(unit[i].addr);
    // Counting sort into contiguous per-worker runs (stable, so per-worker
    // program order is preserved — the soundness invariant of Fig. 2).
    std::array<std::uint32_t, kMaxScatterWorkers> offset{};
    for (std::size_t i = 0; i < n; ++i) ++offset[dest[i]];
    std::uint32_t sum = 0;
    for (unsigned w = 0; w < W; ++w) {
      const std::uint32_t c = offset[w];
      offset[w] = sum;
      sum += c;
    }
    std::array<AccessEvent, kScatterBatch> run;
    std::array<std::uint32_t, kScatterBatch> run_reps;
    std::array<std::uint32_t, kMaxScatterWorkers> start;
    for (unsigned w = 0; w < W; ++w) start[w] = offset[w];
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t slot = offset[dest[i]]++;
      run[slot] = unit[i];
      run_reps[slot] = reps != nullptr ? reps[i] : 1;
    }
    // Rebalancing is deferred to the end of the sub-batch: the destinations
    // above were computed against the current routing, and a mid-batch
    // routing change would strand the tail of a run on the old owner.
    const auto push = [this](Chunk* c, unsigned worker) {
      enqueue(worker, c);
      obs_.produce().chunks.fetch_add(1, std::memory_order_relaxed);
    };
    for (unsigned w = 0; w < W; ++w) {
      if (start[w] == offset[w]) continue;
      const std::size_t len = offset[w] - start[w];
      if (cfg_.pack)
        prod.add_run_packed(w, run.data() + start[w],
                            run_reps.data() + start[w], len, chunk_fill_,
                            obs_.produce(), push);
      else if (reps != nullptr)
        prod.add_run_rle(w, run.data() + start[w], run_reps.data() + start[w],
                         len, chunk_fill_, push);
      else
        prod.add_run(w, run.data() + start[w], len, chunk_fill_, push);
    }
    if (sample) {
      const std::uint64_t produced =
          obs_.produce().chunks.load(std::memory_order_relaxed);
      if (router_.due(produced)) rebalance(produced);
    }
  }

  /// Stage of the *calling* thread.  Keying on the caller (not on the
  /// event's recorded tid) partitions exactly like per-tid keying on live
  /// MT targets — every target thread produces from its own OS thread — but
  /// gives a single-threaded caller replaying an MT-recorded trace ONE
  /// stage, so delivery stays order-faithful to the stream.  Per-tid keying
  /// split such a replay across stagings and scrambled cross-thread order
  /// at chunk-fill granularity, which made serial and parallel replays of
  /// the same trace disagree (different slot-pairing order per address).
  ///
  /// The thread-local cache keeps the hot path lock-free; the instance id
  /// guards against a recycled profiler allocation reviving a stale entry.
  ProduceStage& producer_for_caller() {
    struct Cache {
      std::uint64_t owner = 0;
      ProduceStage* stage = nullptr;
    };
    static thread_local Cache cache;
    if (cache.owner == instance_id_) return *cache.stage;
    std::lock_guard lock(producer_mu_);
    ProduceStage*& slot = producer_registry_[std::this_thread::get_id()];
    if (slot == nullptr) slot = new_producer();
    cache = {instance_id_, slot};
    return *slot;
  }

  /// Creates and registers a stage; caller holds producer_mu_.
  ProduceStage* new_producer() {
    producer_owned_.push_back(
        std::make_unique<ProduceStage>(obs_.workers(), pool_));
    return producer_owned_.back().get();
  }

  void push_chunk(Chunk* c, unsigned w) {
    enqueue(w, c);
    const std::uint64_t produced =
        obs_.produce().chunks.fetch_add(1, std::memory_order_relaxed) + 1;
    if (lb_enabled_ && !cfg_.mt_targets && router_.due(produced))
      rebalance(produced);
  }

  /// Pushes `c`, applying the wait strategy when worker w's queue is full
  /// (bounded backpressure: the block time is charged to the produce stage)
  /// and waking the worker if it parked on an empty queue.
  void enqueue(unsigned w, Chunk* c) {
    obs::StageStats& prod = obs_.produce();
    if (c->kind == Chunk::Kind::kData) prod.add_bytes_on_wire(c->wire_bytes());
    // Commit ownership to worker w's queue BEFORE the push publishes the
    // chunk — the worker may pop it the instant try_push succeeds.
    chunk_handoff(*c, Chunk::kOwnerProducer, Chunk::kOwnerQueued | w,
                  "queue.push");
    if (!queues_[w]->try_push(c)) {
      prod.add_stalls(1);
      const std::uint64_t t0 = WallTimer::now();
      const WaitCounters wc = wait_until(
          wait_, gates_[w].not_full, [&] { return queues_[w]->try_push(c); });
      prod.add_block_ns(WallTimer::now() - t0);
      prod.add_parked_ns(wc.parked_ns);
      prod.add_parks(wc.parks);
    }
    prod.add_wakes(gates_[w].not_empty.notify_all());
    prod.raise_queue_depth(queues_[w]->size_approx());
  }

  // --- load balancing (Sec. IV-A) ---------------------------------------

  void rebalance(std::uint64_t chunks_produced) {
    for (const Migration& m : router_.evaluate(chunks_produced)) {
      // Flush staged accesses of the old owner so they arrive before the
      // handoff chunk; FIFO order makes the migration sound (see
      // chunk.hpp).  Only reachable with sequential targets, whose single
      // producing thread is the caller.
      ProduceStage& prod = producer_for_caller();
      if (Chunk* c = prod.take(m.from)) push_chunk(c, m.from);
      hand_off(m);
    }
  }

  void hand_off(const Migration& m) {
    std::uint32_t mb = 0;
    if (!mailbox_free_.try_pop(mb)) {
      // All mailboxes in flight: wait for an adopting worker to return one
      // (it notifies mailbox_ec_).  Producer-side backpressure.
      const std::uint64_t t0 = WallTimer::now();
      const WaitCounters wc = wait_until(
          wait_, mailbox_ec_, [&] { return mailbox_free_.try_pop(mb); });
      obs_.produce().add_block_ns(WallTimer::now() - t0);
      obs_.produce().add_parked_ns(wc.parked_ns);
      obs_.produce().add_parks(wc.parks);
    }
    mailboxes_[mb].ready.store(0, std::memory_order_relaxed);

    Chunk* out = pool_.acquire();
    out->kind = Chunk::Kind::kMigrateOut;
    out->addr = m.addr;
    out->payload = mb;
    enqueue(m.from, out);

    Chunk* in = pool_.acquire();
    in->kind = Chunk::Kind::kAdopt;
    in->addr = m.addr;
    in->payload = mb;
    enqueue(m.to, in);
  }

  // --- worker side ------------------------------------------------------

  void worker_main(unsigned w) {
    char sched_name[16];
    std::snprintf(sched_name, sizeof(sched_name), "w%u", w);
    sched::ThreadGuard sched_guard(sched_name);
    DetectStage<Store>& me = *detectors_[w];
    obs::StageStats& stats = obs_.detect(w);
    ConcurrentQueue<Chunk*>& queue = *queues_[w];
    QueueGates& gate = gates_[w];
    for (;;) {
      Chunk* c = nullptr;
      if (!queue.try_pop(c)) {
        // Idle: wait for the producer side with the configured strategy.
        // Wall idle vs CPU-while-idle are tracked separately — the latter is
        // what pure spinning burns on an oversubscribed host.
        const std::uint64_t w0 = WallTimer::now();
        const std::uint64_t c0 = ThreadCpuTimer::now();
        const WaitCounters wc =
            wait_until(wait_, gate.not_empty, [&] { return queue.try_pop(c); });
        stats.add_idle_cpu_ns(ThreadCpuTimer::now() - c0);
        stats.add_idle_ns(WallTimer::now() - w0);
        stats.add_parked_ns(wc.parked_ns);
        stats.add_parks(wc.parks);
      }
      // A producer blocked on this full queue can take the freed cell.
      stats.add_wakes(gate.not_full.notify_all());
      // A popped chunk must have been queued to *this* worker: a wrong-
      // worker delivery or double pop fires the invariant counter here,
      // before its contents can pollute the local signatures.
      chunk_handoff(*c, Chunk::kOwnerQueued | w, Chunk::kOwnerWorker | w,
                    "queue.pop");
      switch (c->kind) {
        case Chunk::Kind::kData:
          if (c->packed)
            process_packed(me, *c);
          else
            me.process(c->events.data(), c->count);
          pool_.release(c);
          break;
        case Chunk::Kind::kStop:
          pool_.release(c);
          return;
        case Chunk::Kind::kMigrateOut: {
          const std::uint64_t w0 = WallTimer::now();
          const std::uint64_t c0 = ThreadCpuTimer::now();
          auto st = me.core().extract_state(c->addr);
          Mailbox<Slot>& box = mailboxes_[c->payload];
          box.has_read = st.has_read;
          box.has_write = st.has_write;
          box.read_slot = st.read_slot;
          box.write_slot = st.write_slot;
          sched::point("mailbox.publish");
          box.ready.store(1, std::memory_order_release);
          // Wake the adopting worker (and anyone waiting for a mailbox).
          stats.add_wakes(mailbox_ec_.notify_all());
          pool_.release(c);
          stats.add_cpu_ns(ThreadCpuTimer::now() - c0);
          stats.add_busy_ns(WallTimer::now() - w0);
          break;
        }
        case Chunk::Kind::kAdopt: {
          Mailbox<Slot>& box = mailboxes_[c->payload];
          sched::point("mailbox.adopt");
          if (box.ready.load(std::memory_order_acquire) == 0) {
            // Handoff not published yet: blocked on a peer stage, so the
            // time is backpressure (block_ns), not input starvation.
            const std::uint64_t t0 = WallTimer::now();
            const WaitCounters wc = wait_until(wait_, mailbox_ec_, [&] {
              return box.ready.load(std::memory_order_acquire) != 0;
            });
            stats.add_block_ns(WallTimer::now() - t0);
            stats.add_parked_ns(wc.parked_ns);
            stats.add_parks(wc.parks);
          }
          const std::uint64_t w0 = WallTimer::now();
          const std::uint64_t c0 = ThreadCpuTimer::now();
          typename DetectorCore<Store>::AddrState st;
          st.has_read = box.has_read;
          st.has_write = box.has_write;
          st.read_slot = box.read_slot;
          st.write_slot = box.write_slot;
          me.core().adopt_state(c->addr, st);
          (void)mailbox_free_.try_push(c->payload);
          // A producer may be waiting in hand_off for a free mailbox.
          stats.add_wakes(mailbox_ec_.notify_all());
          pool_.release(c);
          stats.add_cpu_ns(ThreadCpuTimer::now() - c0);
          stats.add_busy_ns(WallTimer::now() - w0);
          break;
        }
      }
    }
  }

  /// Decodes a packed chunk back into raw AccessEvents (expanding RLE runs)
  /// and feeds the detect kernel in slab-sized sub-batches.  The wire format
  /// never reaches DetectorCore — Algorithm 1 consumes the same 64-byte
  /// events it always did.
  static void process_packed(DetectStage<Store>& me, const Chunk& c) {
    constexpr std::size_t kSlab = 512;
    std::array<AccessEvent, kSlab> slab;
    std::size_t fill = 0;
    WireDecoder dec;
    dec.reset();
    const unsigned char* src = c.payload_bytes();
    for (std::uint32_t r = 0; r < c.records; ++r) {
      AccessEvent ev;
      std::uint32_t rep = 0;
      src += dec.decode(src, ev, rep);
      while (rep > 0) {
        const std::size_t n = std::min<std::size_t>(rep, kSlab - fill);
        std::fill_n(slab.data() + fill, n, ev);
        fill += n;
        rep -= static_cast<std::uint32_t>(n);
        if (fill == kSlab) {
          me.process(slab.data(), fill);
          fill = 0;
        }
      }
    }
    if (fill > 0) me.process(slab.data(), fill);
  }

  void join_workers() {
    // pthread_join is a blocking region the schedule controller cannot see
    // through: leave the schedule so the draining workers are not waiting
    // for a grant that depends on this (blocked) thread reaching a point.
    sched::DetachScope leave_schedule;
    for (auto& t : threads_)
      if (t.joinable()) t.join();
  }

  ProfilerConfig cfg_;
  const std::uint64_t hugepage_baseline_;
  const std::size_t chunk_fill_;
  const std::size_t signature_bytes_;
  const bool lb_enabled_;
  const WaitKind wait_;

  obs::PipelineObs obs_;
  RouteStage router_;
  MergeStage merge_;

  std::vector<std::unique_ptr<DetectStage<Store>>> detectors_;
  std::vector<std::unique_ptr<ConcurrentQueue<Chunk*>>> queues_;
  std::vector<std::thread> threads_;
  ChunkPool pool_;

  /// Per-worker wake hooks for the park strategy (one pair per queue).
  std::unique_ptr<QueueGates[]> gates_;

  /// Producer stages, one per producing OS thread (see producer_for_caller);
  /// producer_owned_ holds ownership, producer_mu_ guards the registry.
  std::unordered_map<std::thread::id, ProduceStage*> producer_registry_;
  std::vector<std::unique_ptr<ProduceStage>> producer_owned_;
  std::mutex producer_mu_;
  const std::uint64_t instance_id_ = next_instance_id();

  std::vector<Mailbox<Slot>> mailboxes_;
  MpmcQueue<std::uint32_t> mailbox_free_;
  EventCount mailbox_ec_;

  DepMap global_;
  bool finished_ = false;
};

}  // namespace

std::unique_ptr<IProfiler> make_parallel_profiler(const ProfilerConfig& config) {
  if (!races_config_ok(config)) return nullptr;
  const unsigned w = config.workers ? config.workers : 1;
  // Baseline BEFORE the stores are built: a signature slot array that falls
  // back during construction belongs to this run's counter.
  const std::uint64_t hp0 = huge::fallback_count();
  return with_store(
      config,
      [&]<typename Store>(std::type_identity<Store>) -> std::unique_ptr<IProfiler> {
        std::vector<Store> reads, writes;
        reads.reserve(w);
        writes.reserve(w);
        std::size_t bytes = 0;
        for (unsigned i = 0; i < w; ++i) {
          reads.push_back(make_store<Store>(config));
          writes.push_back(make_store<Store>(config));
          bytes += reads.back().bytes() + writes.back().bytes();
        }
        return std::make_unique<ParallelProfiler<Store>>(
            config, std::move(reads), std::move(writes), bytes, hp0);
      });
}

}  // namespace depprof
