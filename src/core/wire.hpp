#pragma once
// Compact chunk encoding — the pack half of the front-end event reduction
// layer (see DESIGN.md "Front-end event reduction").
//
// A raw AccessEvent costs one 64-byte cache line of queue bandwidth per
// access.  Within one producer's stream, consecutive events differ in only
// a few fields — the address moves a little, the location and variable
// change, the loop iteration advances — so each event is carried on the
// wire as a 16-byte delta record against the previous event of the same
// chunk, with a full-size escape record for anything that does not fit
// (and, always, for the first record of a chunk, which doubles as the
// per-chunk base).  Each record also carries a run-length count, so the
// front-end dedup cache's RLE runs travel as one record.
//
// The codec is strictly chunk-local: the encoder and decoder both start
// from "no previous event" at every chunk boundary, so chunks stay
// independently decodable regardless of queue interleaving or migration.
// Decoding happens at the head of the worker's detect loop, back into the
// 64-byte AccessEvent the DetectorCore consumes — Algorithm 1 never sees
// the wire format.

#include <cstdint>
#include <cstring>

#include "trace/event.hpp"

namespace depprof {

/// One packed wire record.  kind_flags holds (kind | flags << 2) and the
/// reserved value 0xFF marks an escape record: the 16-byte header (its rep
/// still meaningful) followed by the raw 64-byte AccessEvent.
struct WireRecord {
  std::uint32_t loc = 0;
  std::int32_t addr_delta = 0;   ///< address units vs previous event
  std::uint16_t var = 0;
  std::uint16_t ts_delta = 0;    ///< timestamp advance vs previous event
  std::uint16_t iter_delta = 0;  ///< loops[0].iter advance vs previous event
  std::uint8_t kind_flags = 0;   ///< kind | flags << 2; 0xFF = escape
  std::uint8_t rep = 0;          ///< run length - 1
};

static_assert(sizeof(WireRecord) == 16, "wire record is a quarter line");

inline constexpr std::uint8_t kWireEscape = 0xFF;

/// Upper bound on the bytes one encode step may write (escape record).
inline constexpr std::size_t kMaxWireRecordBytes =
    sizeof(WireRecord) + sizeof(AccessEvent);

/// Longest run one wire record can carry (8-bit rep field).
inline constexpr std::uint32_t kMaxWireRep = 256;

/// Chunk-local encoder.  reset() at every chunk boundary.
class WireEncoder {
 public:
  void reset() { has_prev_ = false; }

  /// Encodes one run (`rep` in [1, kMaxWireRep] identical instances of
  /// `ev`) at `dst`; returns bytes written (16 or 16+64).  Sets `escaped`
  /// when the full-size record was needed.
  std::size_t encode(const AccessEvent& ev, std::uint32_t rep,
                     unsigned char* dst, bool& escaped) {
    WireRecord r;
    r.rep = static_cast<std::uint8_t>(rep - 1);
    // kind_flags can never collide with the escape marker for valid kinds
    // (kind <= 2), but flags with bits above 0x3F would be truncated by the
    // << 2 packing, so such events take the escape path.
    bool fit = has_prev_ && ev.tid == prev_.tid && ev.var <= 0xFFFF &&
               (ev.flags >> 6) == 0 &&
               ev.ts >= prev_.ts && ev.ts - prev_.ts <= 0xFFFF &&
               ev.loops[1] == prev_.loops[1] && ev.loops[2] == prev_.loops[2] &&
               ev.loops[0].loop == prev_.loops[0].loop &&
               ev.loops[0].entry == prev_.loops[0].entry &&
               ev.loops[0].iter >= prev_.loops[0].iter &&
               ev.loops[0].iter - prev_.loops[0].iter <= 0xFFFF;
    if (fit) {
      const std::int64_t da = static_cast<std::int64_t>(ev.addr) -
                              static_cast<std::int64_t>(prev_.addr);
      fit = da >= INT32_MIN && da <= INT32_MAX;
      if (fit) {
        r.addr_delta = static_cast<std::int32_t>(da);
        r.ts_delta = static_cast<std::uint16_t>(ev.ts - prev_.ts);
        r.iter_delta = static_cast<std::uint16_t>(ev.loops[0].iter -
                                                  prev_.loops[0].iter);
      }
    }
    prev_ = ev;
    has_prev_ = true;
    if (!fit) {
      r.kind_flags = kWireEscape;
      std::memcpy(dst, &r, sizeof(r));
      std::memcpy(dst + sizeof(r), &ev, sizeof(ev));
      escaped = true;
      return sizeof(r) + sizeof(ev);
    }
    r.loc = ev.loc;
    r.var = static_cast<std::uint16_t>(ev.var);
    r.kind_flags = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(ev.kind) |
        static_cast<std::uint8_t>(ev.flags << 2));
    std::memcpy(dst, &r, sizeof(r));
    escaped = false;
    return sizeof(r);
  }

 private:
  AccessEvent prev_;
  bool has_prev_ = false;
};

/// Chunk-local decoder.  reset() at every chunk boundary; decode() mirrors
/// WireEncoder::encode exactly.
class WireDecoder {
 public:
  void reset() { has_prev_ = false; }

  /// Decodes one record at `src` into `ev` and its run length `rep`;
  /// returns bytes consumed.
  std::size_t decode(const unsigned char* src, AccessEvent& ev,
                     std::uint32_t& rep) {
    WireRecord r;
    std::memcpy(&r, src, sizeof(r));
    rep = static_cast<std::uint32_t>(r.rep) + 1;
    if (r.kind_flags == kWireEscape) {
      std::memcpy(&ev, src + sizeof(r), sizeof(ev));
      prev_ = ev;
      has_prev_ = true;
      return sizeof(r) + sizeof(ev);
    }
    ev = prev_;
    ev.addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev_.addr) +
                                         r.addr_delta);
    ev.ts = prev_.ts + r.ts_delta;
    ev.loc = r.loc;
    ev.var = r.var;
    ev.loops[0].iter = prev_.loops[0].iter + r.iter_delta;
    ev.kind = static_cast<AccessKind>(r.kind_flags & 0x3);
    ev.flags = static_cast<std::uint8_t>(r.kind_flags >> 2);
    prev_ = ev;
    return sizeof(r);
  }

 private:
  AccessEvent prev_;
  bool has_prev_ = false;
};

}  // namespace depprof
