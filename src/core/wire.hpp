#pragma once
// Compact chunk encoding — the pack half of the front-end event reduction
// layer (see DESIGN.md "Front-end event reduction").
//
// A raw AccessEvent costs one 64-byte cache line of queue bandwidth per
// access.  Within one producer's stream, consecutive events differ in only
// a few fields — the address moves a little, the location and variable
// change, the nest context takes one step through the loop tree — so each
// event is carried on the wire as a 16-byte delta record against the
// previous event of the same chunk, with a full-size escape record for
// anything that does not fit (and, always, for the first record of a chunk,
// which doubles as the per-chunk base).  Each record also carries a
// run-length count, so the front-end dedup cache's RLE runs travel as one
// record.
//
// The nest context and iteration window are delta-coded through the 16-bit
// `step` field, [op:2][idx:3][payload:11]:
//
//   op 0  iter advance   iters[idx] += payload; ctx unchanged.  payload 0
//                        (with idx 0) means "identical context".
//   op 1  push           ctx += payload (NestForest ids grow monotonically,
//                        so a child entered now has a larger id than any
//                        earlier node); iters unchanged — the new level's
//                        window slot was already 0 in the previous event.
//   op 2  pop            ctx = payload-th parent of the previous ctx (the
//                        decoder consults the process-wide nest forest,
//                        which is interned before any event referencing a
//                        node is published); window slots at or beyond the
//                        new depth are zeroed.
//   op 3  sibling        ctx += payload; iters[idx] += 1 (the enclosing
//         re-entry       loop advanced one iteration); deeper slots are
//                        zeroed.  This is the inner-loop-exits-and-re-
//                        enters step that dominates nested hot loops.
//
// The encoder never trusts these shapes: it builds the candidate step,
// applies the decoder's own transition function to the previous event, and
// emits the step only when the prediction equals the real event exactly.
// Anything else escapes.  Encoder and decoder therefore cannot drift — they
// share apply_wire_step().
//
// The codec is strictly chunk-local: the encoder and decoder both start
// from "no previous event" at every chunk boundary, so chunks stay
// independently decodable regardless of queue interleaving or migration.
// Decoding happens at the head of the worker's detect loop, back into the
// 64-byte AccessEvent the DetectorCore consumes — Algorithm 1 never sees
// the wire format.

#include <cstdint>
#include <cstring>

#include "trace/event.hpp"
#include "trace/nest.hpp"

namespace depprof {

/// One packed wire record.  kind_flags holds (kind | flags << 2) and the
/// reserved value 0xFF marks an escape record: the 16-byte header (its rep
/// still meaningful) followed by the raw 64-byte AccessEvent.
struct WireRecord {
  std::uint32_t loc = 0;
  std::int32_t addr_delta = 0;  ///< address units vs previous event
  std::uint16_t var = 0;
  std::uint16_t ts_delta = 0;   ///< timestamp advance vs previous event
  std::uint16_t step = 0;       ///< nest-context step: [op:2][idx:3][payload:11]
  std::uint8_t kind_flags = 0;  ///< kind | flags << 2; 0xFF = escape
  std::uint8_t rep = 0;         ///< run length - 1
};

static_assert(sizeof(WireRecord) == 16, "wire record is a quarter line");

inline constexpr std::uint8_t kWireEscape = 0xFF;

/// Upper bound on the bytes one encode step may write (escape record).
inline constexpr std::size_t kMaxWireRecordBytes =
    sizeof(WireRecord) + sizeof(AccessEvent);

/// Longest run one wire record can carry (8-bit rep field).
inline constexpr std::uint32_t kMaxWireRep = 256;

/// Largest step payload ([op:2][idx:3][payload:11]).
inline constexpr std::uint32_t kMaxStepPayload = 0x7FF;

inline constexpr std::uint16_t make_wire_step(unsigned op, std::size_t idx,
                                              std::uint32_t payload) {
  return static_cast<std::uint16_t>((op << 14) | (idx << 11) | payload);
}

/// The shared context-transition function: patches `ev`'s ctx/iters (which
/// on entry hold the previous event's values) according to `step`.  The
/// decoder applies it verbatim; the encoder applies it to validate a
/// candidate step by prediction equality before emitting it.
inline void apply_wire_step(AccessEvent& ev, std::uint16_t step) {
  const unsigned op = step >> 14;
  const std::size_t idx = (step >> 11) & 0x7;
  const std::uint32_t payload = step & kMaxStepPayload;
  switch (op) {
    case 0:  // iteration advance within the same dynamic nest entry
      ev.iters[idx] += payload;
      break;
    case 1:  // push: deeper entry; the new level's slot was already 0
      ev.ctx += payload;
      break;
    case 2: {  // pop: payload-th ancestor; zero slots at/beyond new depth
      NestForest& forest = nest_forest();
      std::uint32_t c = ev.ctx;
      for (std::uint32_t k = 0; k < payload && c != NestForest::kRoot; ++k)
        c = forest.parent(c);
      ev.ctx = c;
      for (std::size_t i = forest.depth(c); i < kNestIters; ++i)
        ev.iters[i] = 0;
      break;
    }
    case 3:  // sibling re-entry: enclosing level advanced, deeper reset
      ev.ctx += payload;
      ev.iters[idx] += 1;
      for (std::size_t i = idx + 1; i < kNestIters; ++i) ev.iters[i] = 0;
      break;
  }
}

/// Chunk-local encoder.  reset() at every chunk boundary.
class WireEncoder {
 public:
  void reset() { has_prev_ = false; }

  /// Encodes one run (`rep` in [1, kMaxWireRep] identical instances of
  /// `ev`) at `dst`; returns bytes written (16 or 16+64).  Sets `escaped`
  /// when the full-size record was needed.
  std::size_t encode(const AccessEvent& ev, std::uint32_t rep,
                     unsigned char* dst, bool& escaped) {
    WireRecord r;
    r.rep = static_cast<std::uint8_t>(rep - 1);
    // Flags with bits above 0x3F would be truncated by the << 2 packing, and
    // a (kind, flags) combination whose packed byte equals 0xFF — possible
    // since kBurstMark made kind = 3 representable — would masquerade as an
    // escape header; both take the escape path instead.
    const std::uint8_t kf = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(ev.kind) |
        static_cast<std::uint8_t>(ev.flags << 2));
    bool fit = has_prev_ && ev.tid == prev_.tid && ev.var <= 0xFFFF &&
               (ev.flags >> 6) == 0 && kf != kWireEscape &&
               ev.ts >= prev_.ts && ev.ts - prev_.ts <= 0xFFFF &&
               find_step(ev, r.step);
    if (fit) {
      const std::int64_t da = static_cast<std::int64_t>(ev.addr) -
                              static_cast<std::int64_t>(prev_.addr);
      fit = da >= INT32_MIN && da <= INT32_MAX;
      if (fit) {
        r.addr_delta = static_cast<std::int32_t>(da);
        r.ts_delta = static_cast<std::uint16_t>(ev.ts - prev_.ts);
      }
    }
    prev_ = ev;
    has_prev_ = true;
    if (!fit) {
      r.kind_flags = kWireEscape;
      std::memcpy(dst, &r, sizeof(r));
      std::memcpy(dst + sizeof(r), &ev, sizeof(ev));
      escaped = true;
      return sizeof(r) + sizeof(ev);
    }
    r.loc = ev.loc;
    r.var = static_cast<std::uint16_t>(ev.var);
    r.kind_flags = kf;
    std::memcpy(dst, &r, sizeof(r));
    escaped = false;
    return sizeof(r);
  }

 private:
  /// Selects a step whose decoder-side prediction reproduces ev's ctx and
  /// iteration window exactly.  Returns false (-> escape) when none does.
  bool find_step(const AccessEvent& ev, std::uint16_t& step) const {
    NestForest& forest = nest_forest();
    // A context id the forest has not interned (possible only for corrupt
    // replayed input) must not reach the decoder's parent walk.
    if (ev.ctx >= forest.size() || prev_.ctx >= forest.size()) return false;
    if (ev.ctx == prev_.ctx) {
      // At most one window slot may advance, by at most the payload range.
      std::size_t idx = 0;
      int ndiff = 0;
      for (std::size_t i = 0; i < kNestIters; ++i) {
        if (ev.iters[i] != prev_.iters[i]) {
          idx = i;
          ++ndiff;
        }
      }
      if (ndiff == 0) {
        step = make_wire_step(0, 0, 0);
        return true;
      }
      if (ndiff == 1 && ev.iters[idx] > prev_.iters[idx] &&
          ev.iters[idx] - prev_.iters[idx] <= kMaxStepPayload) {
        step = make_wire_step(0, idx, ev.iters[idx] - prev_.iters[idx]);
        return true;
      }
      return false;
    }
    if (ev.ctx > prev_.ctx) {
      const std::uint32_t dc = ev.ctx - prev_.ctx;
      if (dc > kMaxStepPayload) return false;
      if (predicts(ev, make_wire_step(1, 0, dc))) {
        step = make_wire_step(1, 0, dc);
        return true;
      }
      // Sibling re-entry: the first slot that differs must be the advancing
      // enclosing level; deeper ones must reset.  predicts() verifies.
      for (std::size_t i = 0; i < kNestIters; ++i) {
        if (ev.iters[i] != prev_.iters[i]) {
          if (predicts(ev, make_wire_step(3, i, dc))) {
            step = make_wire_step(3, i, dc);
            return true;
          }
          return false;
        }
      }
      return false;
    }
    // ctx decreased: pop to an ancestor, if ev.ctx is one within range.
    const std::uint32_t dp = forest.depth(prev_.ctx);
    const std::uint32_t de = forest.depth(ev.ctx);
    if (de >= dp || dp - de > kMaxStepPayload) return false;
    if (predicts(ev, make_wire_step(2, 0, dp - de))) {
      step = make_wire_step(2, 0, dp - de);
      return true;
    }
    return false;
  }

  /// True when applying `step` to the previous event reproduces ev's ctx
  /// and iteration window byte-for-byte.
  bool predicts(const AccessEvent& ev, std::uint16_t step) const {
    AccessEvent t = prev_;
    apply_wire_step(t, step);
    if (t.ctx != ev.ctx) return false;
    for (std::size_t i = 0; i < kNestIters; ++i)
      if (t.iters[i] != ev.iters[i]) return false;
    return true;
  }

  AccessEvent prev_;
  bool has_prev_ = false;
};

/// Chunk-local decoder.  reset() at every chunk boundary; decode() mirrors
/// WireEncoder::encode exactly (they share apply_wire_step).
class WireDecoder {
 public:
  void reset() { has_prev_ = false; }

  /// Decodes one record at `src` into `ev` and its run length `rep`;
  /// returns bytes consumed.
  std::size_t decode(const unsigned char* src, AccessEvent& ev,
                     std::uint32_t& rep) {
    WireRecord r;
    std::memcpy(&r, src, sizeof(r));
    rep = static_cast<std::uint32_t>(r.rep) + 1;
    if (r.kind_flags == kWireEscape) {
      std::memcpy(&ev, src + sizeof(r), sizeof(ev));
      prev_ = ev;
      has_prev_ = true;
      return sizeof(r) + sizeof(ev);
    }
    ev = prev_;
    ev.addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(prev_.addr) +
                                         r.addr_delta);
    ev.ts = prev_.ts + r.ts_delta;
    ev.loc = r.loc;
    ev.var = r.var;
    apply_wire_step(ev, r.step);
    ev.kind = static_cast<AccessKind>(r.kind_flags & 0x3);
    ev.flags = static_cast<std::uint8_t>(r.kind_flags >> 2);
    prev_ = ev;
    return sizeof(r);
  }

 private:
  AccessEvent prev_;
  bool has_prev_ = false;
};

}  // namespace depprof
