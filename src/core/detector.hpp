#pragma once
// Algorithm 1: signature-based data-dependence detection.
//
// One detector owns a read signature and a write signature and turns an
// ordered stream of accesses to *its* addresses into merged dependences.
// The serial profiler has one detector; the parallel pipeline has one per
// worker (Fig. 2), which is sound because every address is owned by exactly
// one worker and workers see their addresses in program order.
//
// Note on the published pseudocode: the INIT branch and the WAR branch are
// independent.  Fig. 1 line "1:65 NOM ... {WAR 1:67|temp2} {INIT *}" shows a
// sink that is simultaneously an initialization (first write) and the sink
// of a WAR against an earlier read, so a write checks the read signature
// regardless of whether the write signature already held the address.
//
// DetectorCore is the single Algorithm 1 implementation, templated over any
// type satisfying the AccessStore concept: the fixed-size Signature, the
// PerfectSignature baseline, the ShadowMemory baseline, and the
// HashTableRecorder baseline.  The slot layout is deduced from the store
// (Store::slot_type), so each (backend, target kind) pair is one full
// monomorphization — there is no per-access branch on the storage kind
// anywhere in the detect loop.

#include <algorithm>
#include <array>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/hash.hpp"
#include "core/dep.hpp"
#include "sig/access_store.hpp"
#include "sig/slots.hpp"
#include "trace/event.hpp"

namespace depprof {

/// Builds the slot recorded for an access.
template <typename Slot>
Slot make_slot(const AccessEvent& ev) {
  Slot s;
  s.loc = ev.loc;
  s.tag = addr_tag(ev.addr);
  for (std::size_t i = 0; i < kLoopLevels; ++i) s.loops[i] = ev.loops[i];
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    s.tid = ev.tid;
    s.ts = ev.ts;
  }
  return s;
}

/// Result of the loop-context comparison: the carrying loop (0 = not
/// carried) and the carried iteration distance (Alchemist-style).
struct CarriedResult {
  std::uint32_t loop = 0;
  std::uint32_t distance = 0;
};

/// Level-pair match: src context `a` and sink context `b` refer to the same
/// dynamic entry of the same loop.  Sets `matched`; returns the loop id and
/// iteration distance when the iterations differ (the dependence is carried
/// by that loop).
inline CarriedResult match_loop_level(const LoopCtx& a, const LoopCtx& b,
                                      bool& matched) {
  if (a.loop != 0 && a.loop == b.loop && a.entry == b.entry) {
    matched = true;
    if (a.iter != b.iter)
      return {b.loop, b.iter > a.iter ? b.iter - a.iter : a.iter - b.iter};
  }
  return {};
}

/// The loop carrying the dependence from recorded source `src` to current
/// sink `sink` (loop 0 = none).  Matches on the sink's innermost level
/// first.  `matched` reports whether src and sink share *any* dynamic loop
/// entry — if not, the analysis must fall back to its source-order
/// heuristic.
template <typename Slot>
CarriedResult carried_by(const Slot& src, const AccessEvent& sink,
                         bool& matched) {
  matched = false;
  for (std::size_t t = 0; t < kLoopLevels; ++t)
    for (std::size_t s = 0; s < kLoopLevels; ++s) {
      const CarriedResult r = match_loop_level(src.loops[s], sink.loops[t], matched);
      if (r.loop != 0) return r;
    }
  return {};
}

/// Flags qualifying the dependence built from recorded source `src` and
/// current sink `sink`.
///
/// When the slot's address tag does not match the sink's address, the slot
/// was written by a *colliding* address: the dependence record itself is
/// still built (the paper's approximate-membership semantics), but the
/// loop-context and timestamp comparisons would compare two unrelated
/// accesses, so no qualifying flags are derived (see slots.hpp).
template <typename Slot>
std::uint8_t classify_dep(const Slot& src, const AccessEvent& sink,
                          CarriedResult& carried) {
  std::uint8_t f = 0;
  carried = {};
  const bool same_address = src.tag == addr_tag(sink.addr);
  if (same_address) {
    bool matched = false;
    carried = carried_by(src, sink, matched);
    if (carried.loop != 0) {
      f |= kLoopCarried;
    } else if (!matched && (src.loops[0].loop != 0 || sink.loops[0].loop != 0)) {
      f |= kCrossLoop;
    }
  }
  if constexpr (std::is_same_v<Slot, MtSlot>) {
    if (src.tid != sink.tid) f |= kCrossThread;
    // A worker expects increasing timestamps per address (Sec. V-B); a
    // reversal proves the access/push pair was not mutually excluded with
    // the recorded one — a potential data race.
    if (same_address && src.ts > sink.ts) f |= kReversed;
  }
  return f;
}

template <AccessStore Store>
class DetectorCore {
 public:
  using Slot = typename Store::slot_type;

  /// Takes ownership of the two (empty) signatures.
  DetectorCore(Store sig_read, Store sig_write)
      : sig_read_(std::move(sig_read)), sig_write_(std::move(sig_write)) {}

  /// Processes one access in program order (Algorithm 1).
  void process(const AccessEvent& ev, DepMap& deps) {
    process_one(ev, [&](const DepKey& k, std::uint8_t flags,
                        std::uint32_t loop, std::uint32_t distance) {
      deps.add(k, flags, loop, distance);
    });
  }

  /// Distance (in events) between a prefetch and its consuming compare.
  /// Far enough to cover an LLC miss at ~4 events' work per miss, small
  /// enough that the prefetched lines are still resident when reached.
  static constexpr std::size_t kPrefetchDistance = 8;

  /// Batched Algorithm 1: identical results to calling process() per event,
  /// with the two batch-only optimizations of the hot path:
  ///
  ///  - the read/write store slots of the event kPrefetchDistance ahead are
  ///    software-prefetched (write intent) before each compare/update,
  ///    overlapping the slot misses of the per-event kernel;
  ///  - dependence records — which repeat the same few (sink, source, var)
  ///    keys throughout a batch — are aggregated in a small stack table and
  ///    folded into the map once per distinct key (DepMap::fold) instead of
  ///    one map probe per event.
  ///
  /// Returns the number of prefetch pairs issued (obs accounting).
  std::size_t process_batch(const AccessEvent* events, std::size_t count,
                            DepMap& deps) {
    DepBatch batch;
    std::size_t prefetched = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t ahead = i + kPrefetchDistance;
      if (ahead < count) {
        sig_read_.prefetch(events[ahead].addr);
        sig_write_.prefetch(events[ahead].addr);
        ++prefetched;
      }
      process_one(events[i], [&](const DepKey& k, std::uint8_t flags,
                                 std::uint32_t loop, std::uint32_t distance) {
        if (!batch.accumulate(k, flags, loop, distance))
          deps.add(k, flags, loop, distance);
      });
    }
    batch.flush(deps);
    return prefetched;
  }

  Store& read_signature() { return sig_read_; }
  Store& write_signature() { return sig_write_; }

  /// Migration support (Sec. IV-A): extract/adopt the per-address state.
  struct AddrState {
    bool has_read = false;
    bool has_write = false;
    Slot read_slot{};
    Slot write_slot{};
  };

  AddrState extract_state(std::uint64_t addr) {
    AddrState st;
    if (auto r = sig_read_.extract(addr)) {
      st.has_read = true;
      st.read_slot = *r;
    }
    if (auto w = sig_write_.extract(addr)) {
      st.has_write = true;
      st.write_slot = *w;
    }
    return st;
  }

  void adopt_state(std::uint64_t addr, const AddrState& st) {
    if (st.has_read) sig_read_.insert(addr, st.read_slot);
    if (st.has_write) sig_write_.insert(addr, st.write_slot);
  }

 private:
  /// Algorithm 1 for one access.  Every dependence record (including INIT)
  /// goes through `sink(key, flags, loop, distance)` instead of touching the
  /// map directly, so the batch kernel can aggregate records per batch while
  /// the per-event kernel adds them straight to the map.
  template <typename Sink>
  void process_one(const AccessEvent& ev, Sink&& sink) {
    if (ev.is_free()) {
      // Variable-lifetime analysis: obsolete addresses leave the signatures
      // so later re-use of the memory does not fabricate dependences.
      sig_read_.remove(ev.addr);
      sig_write_.remove(ev.addr);
      return;
    }
    if (ev.is_write()) {
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kWaw, sink);
      } else {
        sink(init_key(ev), 0, 0, 0);
      }
      if (const Slot* r = sig_read_.find(ev.addr)) {
        emit(ev, *r, DepType::kWar, sink);
      }
      sig_write_.insert(ev.addr, make_slot<Slot>(ev));
    } else {
      // RAR dependences are ignored (Sec. III-B): most analyses do not need
      // them, so reads only consult the write signature.
      if (const Slot* w = sig_write_.find(ev.addr)) {
        emit(ev, *w, DepType::kRaw, sink);
      }
      sig_read_.insert(ev.addr, make_slot<Slot>(ev));
    }
  }

  /// Per-batch record accumulator: a small linear-probe table keyed by
  /// DepKey, applying DepMap::add's per-instance update rules locally.
  /// Flushing folds each entry into the map with DepMap::fold, whose result
  /// is exactly that of replaying the instances one add() at a time (every
  /// per-key update is a commutative join: flags OR, count sum, min/max
  /// distance, max carried loop).  Occupancy sentinel is count == 0.  Probes are capped; a record
  /// that finds neither its key nor a free slot within the cap goes straight
  /// to the map, which keeps the table loss-free and bounded.
  struct DepBatch {
    // Power of two (the probe sequence masks); sized for the instantaneous
    // key set of a hot loop (tens of keys), not the whole program's map.
    static constexpr std::size_t kSlots = 128;
    static constexpr std::size_t kMaxProbe = 8;
    static_assert((kSlots & (kSlots - 1)) == 0);
    struct Entry {
      DepKey key;
      DepInfo info;  ///< info.count == 0 = slot free
    };
    std::array<Entry, kSlots> entries{};

    /// Applies one instance; false if the record must go to the map.
    bool accumulate(const DepKey& key, std::uint8_t flags, std::uint32_t loop,
                    std::uint32_t distance) {
      // A throwaway 128-slot table does not need DepKeyHash's full-strength
      // mixing — one multiply per field keeps the accumulate cheaper than
      // the map probe it replaces; collisions just fall through to the map.
      std::size_t i =
          (key.sink_loc * 0x9E3779B9u + key.src_loc * 0x85EBCA6Bu +
           key.var * 0xC2B2AE35u + key.sink_tid + key.src_tid +
           static_cast<std::size_t>(key.type)) &
          (kSlots - 1);
      for (std::size_t probe = 0; probe < kMaxProbe; ++probe) {
        Entry& e = entries[i];
        if (e.info.count != 0 && !(e.key == key)) {
          i = (i + 1) & (kSlots - 1);
          continue;
        }
        if (e.info.count == 0) e.key = key;
        // Mirror DepMap::add's per-instance update exactly.
        e.info.count += 1;
        e.info.flags |= flags;
        if (loop != 0 && (flags & kLoopCarried)) {
          e.info.loop = std::max(e.info.loop, loop);
          if (distance != 0) {
            e.info.min_distance = e.info.min_distance == 0
                                      ? distance
                                      : std::min(e.info.min_distance, distance);
            e.info.max_distance = std::max(e.info.max_distance, distance);
          }
        }
        return true;
      }
      return false;
    }

    void flush(DepMap& deps) {
      for (const Entry& e : entries)
        if (e.info.count != 0) deps.fold(e.key, e.info);
    }
  };

  template <typename Sink>
  void emit(const AccessEvent& sink_ev, const Slot& src, DepType type,
            Sink&& sink) {
    CarriedResult carried;
    const std::uint8_t flags = classify_dep(src, sink_ev, carried);
    DepKey k;
    k.sink_loc = sink_ev.loc;
    k.src_loc = src.loc;
    k.var = sink_ev.var;
    k.sink_tid = sink_ev.tid;
    if constexpr (std::is_same_v<Slot, MtSlot>)
      k.src_tid = static_cast<std::uint16_t>(src.tid);
    k.type = type;
    sink(k, flags, carried.loop, carried.distance);
  }

  static DepKey init_key(const AccessEvent& sink) {
    DepKey k;
    k.sink_loc = sink.loc;
    k.src_loc = 0;
    k.var = sink.var;
    k.sink_tid = sink.tid;
    k.type = DepType::kInit;
    return k;
  }

  Store sig_read_;
  Store sig_write_;
};

}  // namespace depprof
